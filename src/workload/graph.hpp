// Random general graphs: sharing (DAG edges) and cycles. Smart RPC's
// swizzling handles both (the data allocation table deduplicates by
// identity; cycles terminate because a pointer received twice maps to the
// same location), while the eager baseline must reject cycles — property
// tests exercise exactly that contrast.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "core/runtime.hpp"
#include "core/world.hpp"

namespace srpc::workload {

inline constexpr std::uint32_t kGraphFanout = 4;

struct GraphNode {
  GraphNode* edges[kGraphFanout] = {nullptr, nullptr, nullptr, nullptr};
  std::int64_t value = 0;
};

Result<TypeId> register_graph_type(World& world);

struct GraphSpec {
  std::uint32_t node_count = 64;
  double edge_probability = 0.5;  // per edge slot
  bool allow_cycles = true;       // false: edges only point "forward"
  std::uint64_t seed = 1;
};

// Builds a random graph per `spec`; returns node 0 (every node is
// reachable from it via a forced spanning path).
Result<GraphNode*> build_graph(Runtime& rt, const GraphSpec& spec);

Status free_graph(Runtime& rt, GraphNode* root);

// Sum of values reachable from `root` (visited-set traversal), plus the
// reachable node count via `out_nodes` if non-null.
std::int64_t sum_reachable(const GraphNode* root, std::uint64_t* out_nodes = nullptr);

}  // namespace srpc::workload
