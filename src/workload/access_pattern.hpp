// Randomised operation scripts for property tests: deterministic sequences
// of reads and writes against a remote structure, replayed both remotely
// (through the smart-RPC cache) and locally (ground truth) and compared.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace srpc::workload {

enum class OpKind : std::uint8_t { kRead, kWrite };

struct Op {
  OpKind kind = OpKind::kRead;
  std::uint32_t target = 0;   // node index (caller defines the indexing)
  std::int64_t operand = 0;   // written/added value for kWrite
};

struct AccessPattern {
  std::vector<Op> ops;
};

// `write_ratio` in [0,1]; targets uniform in [0, target_count).
AccessPattern make_pattern(std::uint32_t op_count, std::uint32_t target_count,
                           double write_ratio, std::uint64_t seed);

}  // namespace srpc::workload
