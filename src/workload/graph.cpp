#include "workload/graph.hpp"

#include <unordered_set>
#include <vector>

namespace srpc::workload {

Result<TypeId> register_graph_type(World& world) {
  auto builder = world.describe<GraphNode>("GraphNode");
  builder.pointer_array_field("edges", &GraphNode::edges, builder.id())
      .field("value", &GraphNode::value);
  return world.register_type(builder);
}

Result<GraphNode*> build_graph(Runtime& rt, const GraphSpec& spec) {
  if (spec.node_count == 0) return static_cast<GraphNode*>(nullptr);
  auto type = rt.host_types().find<GraphNode>();
  if (!type) return type.status();

  Rng rng(spec.seed);
  std::vector<GraphNode*> nodes(spec.node_count);
  for (std::uint32_t i = 0; i < spec.node_count; ++i) {
    auto mem = rt.heap().allocate(type.value(), 1);
    if (!mem) return mem.status();
    nodes[i] = static_cast<GraphNode*>(mem.value());
    nodes[i]->value = static_cast<std::int64_t>(i) * 7 + 1;
  }
  for (std::uint32_t i = 0; i < spec.node_count; ++i) {
    // Slot 0 forces a spanning path so everything is reachable from 0.
    if (i + 1 < spec.node_count) nodes[i]->edges[0] = nodes[i + 1];
    for (std::uint32_t e = 1; e < kGraphFanout; ++e) {
      if (!rng.next_bool(spec.edge_probability)) continue;
      std::uint32_t target = 0;
      if (spec.allow_cycles) {
        target = static_cast<std::uint32_t>(rng.next_below(spec.node_count));
      } else if (i + 1 < spec.node_count) {
        target = i + 1 + static_cast<std::uint32_t>(
                             rng.next_below(spec.node_count - i - 1));
      } else {
        continue;
      }
      nodes[i]->edges[e] = nodes[target];
    }
  }
  return nodes[0];
}

Status free_graph(Runtime& rt, GraphNode* root) {
  if (root == nullptr) return Status::ok();
  std::unordered_set<GraphNode*> visited;
  std::vector<GraphNode*> stack{root};
  visited.insert(root);
  std::vector<GraphNode*> order;
  while (!stack.empty()) {
    GraphNode* node = stack.back();
    stack.pop_back();
    order.push_back(node);
    for (GraphNode* edge : node->edges) {
      if (edge != nullptr && visited.insert(edge).second) {
        stack.push_back(edge);
      }
    }
  }
  for (GraphNode* node : order) {
    SRPC_RETURN_IF_ERROR(rt.heap().free(node));
  }
  return Status::ok();
}

std::int64_t sum_reachable(const GraphNode* root, std::uint64_t* out_nodes) {
  if (root == nullptr) {
    if (out_nodes != nullptr) *out_nodes = 0;
    return 0;
  }
  std::unordered_set<const GraphNode*> visited{root};
  std::vector<const GraphNode*> stack{root};
  std::int64_t sum = 0;
  while (!stack.empty()) {
    const GraphNode* node = stack.back();
    stack.pop_back();
    sum += node->value;
    for (const GraphNode* edge : node->edges) {
      if (edge != nullptr && visited.insert(edge).second) {
        stack.push_back(edge);
      }
    }
  }
  if (out_nodes != nullptr) *out_nodes = visited.size();
  return sum;
}

}  // namespace srpc::workload
