#include "workload/tree.hpp"

#include <deque>
#include <vector>

namespace srpc::workload {

Result<TypeId> register_tree_type(World& world) {
  auto builder = world.describe<TreeNode>("TreeNode");
  builder.pointer_field("left", &TreeNode::left, builder.id())
      .pointer_field("right", &TreeNode::right, builder.id())
      .field("data", &TreeNode::data);
  return world.register_type(builder);
}

Result<TreeNode*> build_complete_tree(Runtime& rt, std::uint32_t node_count) {
  if (node_count == 0) return static_cast<TreeNode*>(nullptr);
  auto type = rt.host_types().find<TreeNode>();
  if (!type) return type.status();

  std::vector<TreeNode*> nodes(node_count);
  for (std::uint32_t i = 0; i < node_count; ++i) {
    auto mem = rt.heap().allocate(type.value(), 1);
    if (!mem) return mem.status();
    nodes[i] = static_cast<TreeNode*>(mem.value());
    nodes[i]->data = static_cast<std::int64_t>(i);
  }
  for (std::uint32_t i = 0; i < node_count; ++i) {
    const std::uint64_t l = 2ULL * i + 1;
    const std::uint64_t r = 2ULL * i + 2;
    if (l < node_count) nodes[i]->left = nodes[l];
    if (r < node_count) nodes[i]->right = nodes[r];
  }
  return nodes[0];
}

Status free_tree(Runtime& rt, TreeNode* root) {
  if (root == nullptr) return Status::ok();
  // Iterative: the tree can be deeper than a recursive free should assume.
  std::deque<TreeNode*> queue{root};
  while (!queue.empty()) {
    TreeNode* node = queue.front();
    queue.pop_front();
    if (node->left != nullptr) queue.push_back(node->left);
    if (node->right != nullptr) queue.push_back(node->right);
    SRPC_RETURN_IF_ERROR(rt.heap().free(node));
  }
  return Status::ok();
}

std::int64_t visit_prefix(const TreeNode* root, std::uint64_t limit) {
  std::int64_t sum = 0;
  std::uint64_t visited = 0;
  // Explicit stack pre-order DFS (the paper visits depth-first until the
  // target ratio is reached).
  std::vector<const TreeNode*> stack;
  if (root != nullptr) stack.push_back(root);
  while (!stack.empty() && visited < limit) {
    const TreeNode* node = stack.back();
    stack.pop_back();
    sum += node->data;
    ++visited;
    if (node->right != nullptr) stack.push_back(node->right);
    if (node->left != nullptr) stack.push_back(node->left);
  }
  return sum;
}

std::int64_t update_prefix(TreeNode* root, std::uint64_t limit, std::int64_t delta) {
  std::int64_t sum = 0;
  std::uint64_t visited = 0;
  std::vector<TreeNode*> stack;
  if (root != nullptr) stack.push_back(root);
  while (!stack.empty() && visited < limit) {
    TreeNode* node = stack.back();
    stack.pop_back();
    node->data += delta;  // the store that makes the page dirty
    sum += node->data;
    ++visited;
    if (node->right != nullptr) stack.push_back(node->right);
    if (node->left != nullptr) stack.push_back(node->left);
  }
  return sum;
}

std::int64_t update_sparse(TreeNode* root, std::uint64_t limit,
                           std::uint64_t stride, std::int64_t delta) {
  if (stride == 0) stride = 1;
  std::int64_t sum = 0;
  std::uint64_t visited = 0;
  std::vector<TreeNode*> stack;
  if (root != nullptr) stack.push_back(root);
  while (!stack.empty() && visited < limit) {
    TreeNode* node = stack.back();
    stack.pop_back();
    if (visited % stride == 0) node->data += delta;
    sum += node->data;
    ++visited;
    if (node->right != nullptr) stack.push_back(node->right);
    if (node->left != nullptr) stack.push_back(node->left);
  }
  return sum;
}

std::int64_t walk_random_paths(const TreeNode* root, std::uint32_t paths,
                               std::uint64_t seed) {
  std::int64_t sum = 0;
  Rng rng(seed);
  for (std::uint32_t i = 0; i < paths; ++i) {
    const TreeNode* node = root;
    while (node != nullptr) {
      sum += node->data;
      node = rng.next_bool(0.5) ? node->left : node->right;
    }
  }
  return sum;
}

std::uint64_t nodes_visited(std::uint32_t node_count, std::uint64_t limit) {
  return limit < node_count ? limit : node_count;
}

}  // namespace srpc::workload
