// Singly-linked list workload: the "pass a pointer to a subroutine" case
// the paper's introduction motivates. Used by the quickstart example and
// by tests that need a deep, narrow structure (worst case for closure
// prefetching, best case for eager inline encoding depth).
#pragma once

#include <cstdint>
#include <functional>

#include "core/runtime.hpp"
#include "core/world.hpp"

namespace srpc::workload {

struct ListNode {
  ListNode* next = nullptr;
  std::int64_t value = 0;
};

Result<TypeId> register_list_type(World& world);

// Builds a list of `length` nodes; node i holds value(i).
Result<ListNode*> build_list(Runtime& rt, std::uint32_t length,
                             const std::function<std::int64_t(std::uint32_t)>& value);

Status free_list(Runtime& rt, ListNode* head);

std::int64_t sum_list(const ListNode* head);

// Multiplies every value by `factor` (write workload for coherency tests).
void scale_list(ListNode* head, std::int64_t factor);

}  // namespace srpc::workload
