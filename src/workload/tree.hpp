// The paper's experimental subject (§4.1): a complete binary tree whose
// nodes are 16 bytes — two 4-byte pointers and 8-byte data on SPARC; the
// same struct here is 24 bytes on the 64-bit host, which only scales the
// in-memory footprint, not the wire shapes.
//
// Traversals mirror the paper exactly: depth-first visits of a prefix of
// the node population (Fig. 4/5/7), and repeated root-to-leaf walks
// (Fig. 6). Every traversal works identically on local data and on
// swizzled remote pointers — that transparency is the system under test.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "core/runtime.hpp"
#include "core/world.hpp"

namespace srpc::workload {

struct TreeNode {
  TreeNode* left = nullptr;
  TreeNode* right = nullptr;
  std::int64_t data = 0;
};

// Registers TreeNode with the world's type system and host-type map.
// Idempotent per world? No — call once per World.
Result<TypeId> register_tree_type(World& world);

// Builds a complete binary tree of `node_count` nodes in rt's managed heap
// (level order; node i holds data = i). node_count of 2^k - 1 gives the
// paper's perfect trees (16383 / 32767 / 65535).
Result<TreeNode*> build_complete_tree(Runtime& rt, std::uint32_t node_count);

// Frees a tree built by build_complete_tree.
Status free_tree(Runtime& rt, TreeNode* root);

// Depth-first (pre-order) visit of at most `limit` nodes; returns the sum
// of visited data. Works on local and remote trees alike.
std::int64_t visit_prefix(const TreeNode* root, std::uint64_t limit);

// Same traversal, but adds `delta` to each visited node (Fig. 7's update
// workload: identical access pattern, plus stores).
std::int64_t update_prefix(TreeNode* root, std::uint64_t limit, std::int64_t delta);

// Same traversal again, but only every `stride`-th visited node is updated —
// the sparse-update workload where delta-encoded modified sets shine: the
// pages all go dirty, yet only a few bytes per page actually change.
std::int64_t update_sparse(TreeNode* root, std::uint64_t limit,
                           std::uint64_t stride, std::int64_t delta);

// `paths` root-to-leaf walks choosing left/right pseudo-randomly from
// `seed` (Fig. 6's repeated searches); returns the sum of visited data.
std::int64_t walk_random_paths(const TreeNode* root, std::uint32_t paths,
                               std::uint64_t seed);

// Number of nodes a visit_prefix(root, limit) touches on an n-node tree
// (= min(limit, n)); kept as a function for readability at call sites.
std::uint64_t nodes_visited(std::uint32_t node_count, std::uint64_t limit);

}  // namespace srpc::workload
