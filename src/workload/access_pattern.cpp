#include "workload/access_pattern.hpp"

namespace srpc::workload {

AccessPattern make_pattern(std::uint32_t op_count, std::uint32_t target_count,
                           double write_ratio, std::uint64_t seed) {
  AccessPattern pattern;
  pattern.ops.reserve(op_count);
  Rng rng(seed);
  for (std::uint32_t i = 0; i < op_count; ++i) {
    Op op;
    op.kind = rng.next_bool(write_ratio) ? OpKind::kWrite : OpKind::kRead;
    op.target = target_count == 0
                    ? 0
                    : static_cast<std::uint32_t>(rng.next_below(target_count));
    op.operand = rng.next_in(-1000, 1000);
    pattern.ops.push_back(op);
  }
  return pattern;
}

}  // namespace srpc::workload
