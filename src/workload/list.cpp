#include "workload/list.hpp"

#include <vector>

namespace srpc::workload {

Result<TypeId> register_list_type(World& world) {
  auto builder = world.describe<ListNode>("ListNode");
  builder.pointer_field("next", &ListNode::next, builder.id())
      .field("value", &ListNode::value);
  return world.register_type(builder);
}

Result<ListNode*> build_list(Runtime& rt, std::uint32_t length,
                             const std::function<std::int64_t(std::uint32_t)>& value) {
  if (length == 0) return static_cast<ListNode*>(nullptr);
  auto type = rt.host_types().find<ListNode>();
  if (!type) return type.status();

  ListNode* head = nullptr;
  ListNode* tail = nullptr;
  for (std::uint32_t i = 0; i < length; ++i) {
    auto mem = rt.heap().allocate(type.value(), 1);
    if (!mem) return mem.status();
    auto* node = static_cast<ListNode*>(mem.value());
    node->value = value(i);
    if (tail == nullptr) {
      head = node;
    } else {
      tail->next = node;
    }
    tail = node;
  }
  return head;
}

Status free_list(Runtime& rt, ListNode* head) {
  while (head != nullptr) {
    ListNode* next = head->next;
    SRPC_RETURN_IF_ERROR(rt.heap().free(head));
    head = next;
  }
  return Status::ok();
}

std::int64_t sum_list(const ListNode* head) {
  std::int64_t sum = 0;
  for (; head != nullptr; head = head->next) {
    sum += head->value;
  }
  return sum;
}

void scale_list(ListNode* head, std::int64_t factor) {
  for (; head != nullptr; head = head->next) {
    head->value *= factor;
  }
}

}  // namespace srpc::workload
