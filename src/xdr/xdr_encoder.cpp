#include "xdr/xdr_encoder.hpp"

#include <bit>
#include <cstring>
#include <stdexcept>

namespace srpc::xdr {

namespace {
// Encoded on the wire big-endian regardless of host order.
void put_be32(ByteBuffer& out, std::uint32_t v) {
  const std::uint8_t bytes[4] = {
      static_cast<std::uint8_t>(v >> 24), static_cast<std::uint8_t>(v >> 16),
      static_cast<std::uint8_t>(v >> 8), static_cast<std::uint8_t>(v)};
  out.append(bytes, sizeof bytes);
}
}  // namespace

void Encoder::put_u32(std::uint32_t v) { put_be32(out_, v); }

void Encoder::put_u64(std::uint64_t v) {
  put_be32(out_, static_cast<std::uint32_t>(v >> 32));
  put_be32(out_, static_cast<std::uint32_t>(v));
}

void Encoder::put_f32(float v) {
  static_assert(sizeof(float) == 4, "IEEE-754 single required");
  put_u32(std::bit_cast<std::uint32_t>(v));
}

void Encoder::put_f64(double v) {
  static_assert(sizeof(double) == 8, "IEEE-754 double required");
  put_u64(std::bit_cast<std::uint64_t>(v));
}

void Encoder::put_opaque_fixed(std::span<const std::uint8_t> bytes) {
  out_.append(bytes);
  for (std::size_t i = 0; i < padding(bytes.size()); ++i) out_.append_byte(0);
}

void Encoder::put_opaque(std::span<const std::uint8_t> bytes) {
  if (bytes.size() > 0xFFFFFFFFULL) {
    throw std::length_error("XDR opaque exceeds u32 length");
  }
  put_u32(static_cast<std::uint32_t>(bytes.size()));
  put_opaque_fixed(bytes);
}

void Encoder::put_string(std::string_view s) {
  put_opaque(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
}

std::size_t Encoder::reserve_u32() { return out_.append_zeros(kUnit); }

void Encoder::patch_u32(std::size_t offset, std::uint32_t v) {
  const std::uint8_t bytes[4] = {
      static_cast<std::uint8_t>(v >> 24), static_cast<std::uint8_t>(v >> 16),
      static_cast<std::uint8_t>(v >> 8), static_cast<std::uint8_t>(v)};
  out_.overwrite(offset, bytes, sizeof bytes);
}

}  // namespace srpc::xdr
