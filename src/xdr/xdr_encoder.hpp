#pragma once

#include <cstdint>
#include <span>
#include <string_view>

#include "common/byte_buffer.hpp"
#include "xdr/xdr.hpp"

namespace srpc::xdr {

// Appends XDR-encoded items to a ByteBuffer. The encoder does not own the
// buffer, so several encoders (argument marshalling, coherency payloads)
// can interleave into one wire message.
class Encoder {
 public:
  explicit Encoder(ByteBuffer& out) : out_(out) {}

  void put_u32(std::uint32_t v);
  void put_i32(std::int32_t v) { put_u32(static_cast<std::uint32_t>(v)); }
  void put_u64(std::uint64_t v);  // XDR "unsigned hyper"
  void put_i64(std::int64_t v) { put_u64(static_cast<std::uint64_t>(v)); }
  void put_bool(bool v) { put_u32(v ? 1U : 0U); }
  void put_f32(float v);
  void put_f64(double v);

  // Fixed-length opaque: bytes as-is, zero-padded to the XDR unit.
  void put_opaque_fixed(std::span<const std::uint8_t> bytes);

  // Variable-length opaque: u32 length, then bytes, then padding.
  void put_opaque(std::span<const std::uint8_t> bytes);

  // XDR string: identical wire form to variable-length opaque.
  void put_string(std::string_view s);

  // Reserves a u32 slot (for back-patched counts); patch with patch_u32.
  [[nodiscard]] std::size_t reserve_u32();
  void patch_u32(std::size_t offset, std::uint32_t v);

  // Capacity hint: `extra` more bytes are coming (see ByteBuffer::reserve).
  void reserve(std::size_t extra) { out_.reserve(extra); }

  [[nodiscard]] ByteBuffer& buffer() noexcept { return out_; }

 private:
  ByteBuffer& out_;
};

}  // namespace srpc::xdr
