#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/byte_buffer.hpp"
#include "common/status.hpp"
#include "xdr/xdr.hpp"

namespace srpc::xdr {

// Consumes XDR items from a ByteBuffer's read cursor. Every accessor
// returns a Result so malformed wire data surfaces as PROTOCOL_ERROR /
// OUT_OF_RANGE instead of undefined behaviour.
class Decoder {
 public:
  explicit Decoder(ByteBuffer& in) : in_(in) {}

  Result<std::uint32_t> get_u32();
  Result<std::int32_t> get_i32();
  Result<std::uint64_t> get_u64();
  Result<std::int64_t> get_i64();
  Result<bool> get_bool();
  Result<float> get_f32();
  Result<double> get_f64();

  // Fixed-length opaque of exactly `len` data bytes (consumes padding too).
  Result<std::vector<std::uint8_t>> get_opaque_fixed(std::size_t len);

  // Variable-length opaque. `max_len` bounds hostile lengths.
  Result<std::vector<std::uint8_t>> get_opaque(std::size_t max_len = 1ULL << 30);

  Result<std::string> get_string(std::size_t max_len = 1ULL << 30);

  [[nodiscard]] bool exhausted() const noexcept { return in_.exhausted(); }
  [[nodiscard]] std::size_t remaining() const noexcept { return in_.remaining(); }
  [[nodiscard]] ByteBuffer& buffer() noexcept { return in_; }

 private:
  ByteBuffer& in_;
};

}  // namespace srpc::xdr
