#include "xdr/xdr_decoder.hpp"

#include <bit>

namespace srpc::xdr {

Result<std::uint32_t> Decoder::get_u32() {
  std::uint8_t bytes[4];
  SRPC_RETURN_IF_ERROR(in_.read(bytes, sizeof bytes));
  return (static_cast<std::uint32_t>(bytes[0]) << 24) |
         (static_cast<std::uint32_t>(bytes[1]) << 16) |
         (static_cast<std::uint32_t>(bytes[2]) << 8) |
         static_cast<std::uint32_t>(bytes[3]);
}

Result<std::int32_t> Decoder::get_i32() {
  auto v = get_u32();
  if (!v) return v.status();
  return static_cast<std::int32_t>(v.value());
}

Result<std::uint64_t> Decoder::get_u64() {
  auto hi = get_u32();
  if (!hi) return hi.status();
  auto lo = get_u32();
  if (!lo) return lo.status();
  return (static_cast<std::uint64_t>(hi.value()) << 32) | lo.value();
}

Result<std::int64_t> Decoder::get_i64() {
  auto v = get_u64();
  if (!v) return v.status();
  return static_cast<std::int64_t>(v.value());
}

Result<bool> Decoder::get_bool() {
  auto v = get_u32();
  if (!v) return v.status();
  if (v.value() > 1) {
    return protocol_error("XDR bool out of range: " + std::to_string(v.value()));
  }
  return v.value() == 1;
}

Result<float> Decoder::get_f32() {
  auto v = get_u32();
  if (!v) return v.status();
  return std::bit_cast<float>(v.value());
}

Result<double> Decoder::get_f64() {
  auto v = get_u64();
  if (!v) return v.status();
  return std::bit_cast<double>(v.value());
}

Result<std::vector<std::uint8_t>> Decoder::get_opaque_fixed(std::size_t len) {
  std::vector<std::uint8_t> out(len);
  if (len > 0) {
    SRPC_RETURN_IF_ERROR(in_.read(out.data(), len));
  }
  std::uint8_t pad[kUnit];
  const std::size_t pad_len = padding(len);
  if (pad_len > 0) {
    SRPC_RETURN_IF_ERROR(in_.read(pad, pad_len));
  }
  return out;
}

Result<std::vector<std::uint8_t>> Decoder::get_opaque(std::size_t max_len) {
  auto len = get_u32();
  if (!len) return len.status();
  if (len.value() > max_len) {
    return protocol_error("XDR opaque length " + std::to_string(len.value()) +
                          " exceeds limit");
  }
  return get_opaque_fixed(len.value());
}

Result<std::string> Decoder::get_string(std::size_t max_len) {
  auto bytes = get_opaque(max_len);
  if (!bytes) return bytes.status();
  return std::string(bytes.value().begin(), bytes.value().end());
}

}  // namespace srpc::xdr
