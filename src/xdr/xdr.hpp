// XDR (External Data Representation, RFC 1014) — the canonical wire form.
//
// The paper uses SunOS's XDR library as the canonical representation between
// heterogeneous CPUs; we implement the same wire format: every item occupies
// a multiple of 4 bytes, integers are big-endian two's complement, strings
// and variable-length opaques carry a 4-byte length and are zero-padded to a
// 4-byte boundary.
#pragma once

#include <cstddef>
#include <cstdint>

namespace srpc::xdr {

inline constexpr std::size_t kUnit = 4;  // fundamental XDR block size

// Bytes of zero padding needed to round `len` up to the XDR unit.
constexpr std::size_t padding(std::size_t len) noexcept {
  return (kUnit - (len % kUnit)) % kUnit;
}

constexpr std::size_t padded_size(std::size_t len) noexcept {
  return len + padding(len);
}

}  // namespace srpc::xdr
