// ManagedHeap — the per-space heap "under the system control".
//
// The paper assumes "all data referenced by long pointers are ... located in
// the heap area under the system control": the runtime must be able to map
// any home address back to a typed object (to serve fetches, apply
// write-backs, and unswizzle local pointers). ManagedHeap provides that:
// typed allocation plus an interval index from address to allocation record.
//
// Concurrency: every operation on a space — user code, incoming fetch
// service, write-back application — runs on that space's single worker
// thread (the RPC execution model in paper §3.1), so the heap is
// deliberately unsynchronised.
//
// Foreign architectures: a space modelling a CPU with pointers narrower
// than the host's (e.g. the paper's 32-bit SPARC) must hand out addresses
// its own pointer fields can hold, so its heap allocates from the low 2 GiB
// via mmap(MAP_32BIT) — every home address then fits a 4-byte pointer.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/ids.hpp"
#include "common/status.hpp"
#include "types/arch.hpp"
#include "types/layout.hpp"
#include "types/type_registry.hpp"

namespace srpc {

class ManagedHeap {
 public:
  struct Record {
    // Full type of the allocation: for count > 1 this is the interned
    // T[count] array type, so a long pointer to the base names the whole
    // datum and a fetch transfers all of it.
    TypeId type = kInvalidTypeId;
    std::uint32_t count = 1;     // element count (introspection)
    std::uint64_t size = 0;      // total bytes
    std::uint8_t* base = nullptr;
    bool adopted = false;        // registered, not owned: never deallocated here
    bool mapped = false;         // low-address mmap (foreign-arch space)
    // Remote provenance, for orphan reclamation: which space/session asked
    // for this storage via extended_malloc (ALLOC_BATCH). Local allocations
    // stay untagged. A committed session promotes its allocations to
    // untagged (they are durable home data from then on).
    SpaceId owner_space = kInvalidSpaceId;
    SessionId owner_session = kNoSession;
  };

  ManagedHeap(TypeRegistry& registry, const LayoutEngine& layouts,
              const ArchModel& arch, SpaceId owner)
      : registry_(registry), layouts_(layouts), arch_(arch), owner_(owner) {}
  ~ManagedHeap();
  ManagedHeap(const ManagedHeap&) = delete;
  ManagedHeap& operator=(const ManagedHeap&) = delete;

  // Allocates `count` contiguous objects of `type` laid out for this
  // space's architecture, zero-initialised.
  Result<void*> allocate(TypeId type, std::uint32_t count = 1);

  // Registers externally-owned memory (e.g. a buffer the application built)
  // so long pointers can reference it. The caller keeps ownership and must
  // keep it alive until release() or heap destruction.
  Status adopt(void* base, TypeId type, std::uint32_t count = 1);

  // Frees an allocation (or unregisters an adopted range). `p` must be the
  // base address. In retain-freed mode the record is unregistered but the
  // storage is kept until heap destruction (see set_retain_freed).
  Status free(void* p);

  // Crash-recovery restore: re-registers a predecessor incarnation's range
  // verbatim (full type, count, size, ownership tags) without recomputing
  // the layout. The range is adopted — the predecessor's heap still owns
  // the storage and releases it at world teardown.
  Status restore(void* base, TypeId full_type, std::uint32_t count,
                 std::uint64_t size, SpaceId owner_space,
                 SessionId owner_session);

  // Recovery mode: freed (and reclaimed) allocations are unregistered but
  // their storage is retired, not released, until the heap dies. Two
  // things depend on this: log replay may restore-then-free a range that
  // was freed before the crash, and no logged address can ever be handed
  // out again by the system allocator while its log records are live.
  void set_retain_freed(bool on) noexcept { retain_freed_ = on; }

  // Containing allocation for any (possibly interior) address.
  [[nodiscard]] const Record* find(const void* addr) const;

  // Allocation whose base is exactly `addr`.
  [[nodiscard]] const Record* find_base(std::uint64_t addr) const;

  // --- Orphan reclamation (remote extended_malloc provenance) ---

  // Tags the allocation based at `addr` with the requesting space/session.
  Status tag_owner(std::uint64_t addr, SpaceId space, SessionId session);

  // Clears the tags of every allocation owned by `session`: its data
  // committed and now belongs to the home like any local allocation.
  // Returns the number of allocations promoted.
  std::size_t promote_session(SessionId session);

  // Frees every still-tagged allocation owned by `session` (its owner
  // aborted or died before committing). Returns bytes reclaimed.
  std::uint64_t reclaim_session(SessionId session);

  // Frees every still-tagged allocation owned by `space`, any session
  // (the space was declared dead). Returns bytes reclaimed.
  std::uint64_t reclaim_owned_by(SpaceId space);

  // Live bytes still tagged to some remote owner (not yet promoted).
  [[nodiscard]] std::uint64_t owned_bytes(SpaceId space) const;

  // Live bytes still tagged to any uncommitted session, all owners. Zero
  // after quiescence means no session leaked orphan storage.
  [[nodiscard]] std::uint64_t session_owned_bytes() const;

  [[nodiscard]] bool contains(const void* addr) const { return find(addr) != nullptr; }

  [[nodiscard]] SpaceId owner() const noexcept { return owner_; }
  [[nodiscard]] std::size_t live_allocations() const noexcept { return records_.size(); }
  [[nodiscard]] std::uint64_t live_bytes() const noexcept { return live_bytes_; }

  // Visits every live allocation in address order (introspection/dumps).
  template <typename F>
  void for_each(F&& fn) const {
    for (const auto& [base, record] : records_) {
      fn(record);
    }
  }

 private:
  // Unregisters a record: releases it, or retires it in retain-freed mode.
  void discard(Record& record);

  TypeRegistry& registry_;
  const LayoutEngine& layouts_;
  const ArchModel& arch_;
  SpaceId owner_;
  std::map<std::uintptr_t, Record> records_;
  std::vector<Record> retired_;  // retain-freed mode: released in ~ManagedHeap
  std::uint64_t live_bytes_ = 0;
  bool retain_freed_ = false;
};

}  // namespace srpc
