#include "mem/remote_allocator.hpp"

#include <algorithm>

namespace srpc {

Result<void*> RemoteAllocator::allocate(SpaceId home, TypeId type, std::uint64_t size,
                                        std::uint32_t align) {
  // Provisional identities are spaced 1 TiB apart so the allocation table's
  // home-range overlap check never sees two provisional objects collide,
  // whatever their sizes.
  const std::uint64_t provisional = kProvisionalAddressBit | (next_provisional_++ << 40);
  if (size >= (1ULL << 40)) {
    return invalid_argument("extended_malloc larger than 1 TiB");
  }
  const LongPointer id{home, provisional, type};
  auto slot = cache_.allocate_resident(id, size, align);
  if (!slot) return slot.status();
  batches_[home].allocs.push_back(PendingAlloc{provisional, type});
  return slot;
}

Status RemoteAllocator::release(const LongPointer& id) {
  if (is_provisional_address(id.address)) {
    // Never reached the home: cancel the pending allocation entirely.
    auto it = batches_.find(id.space);
    if (it != batches_.end()) {
      auto& allocs = it->second.allocs;
      auto match = std::find_if(allocs.begin(), allocs.end(),
                                [&](const PendingAlloc& a) {
                                  return a.provisional == id.address;
                                });
      if (match != allocs.end()) {
        allocs.erase(match);
        return cache_.remove_entry(id);
      }
    }
    return not_found("release of unknown provisional allocation: " + id.to_string());
  }
  SRPC_RETURN_IF_ERROR(cache_.remove_entry(id));
  batches_[id.space].frees.push_back(id.address);
  return Status::ok();
}

std::vector<SpaceId> RemoteAllocator::pending_homes() const {
  std::vector<SpaceId> homes;
  homes.reserve(batches_.size());
  for (const auto& [home, batch] : batches_) {
    if (!batch.allocs.empty() || !batch.frees.empty()) homes.push_back(home);
  }
  return homes;
}

RemoteAllocator::Batch RemoteAllocator::take_batch(SpaceId home) {
  auto it = batches_.find(home);
  if (it == batches_.end()) return {};
  Batch batch = std::move(it->second);
  batches_.erase(it);
  return batch;
}

Status RemoteAllocator::apply_assignments(
    SpaceId home, std::span<const std::pair<std::uint64_t, std::uint64_t>> assigned) {
  for (const auto& [provisional, real] : assigned) {
    const LongPointer old_id{home, provisional, kInvalidTypeId};
    // The table keys identity on (space, address); find the stored entry to
    // learn its type for the rebound identity.
    const AllocationEntry* entry = cache_.lookup(old_id);
    if (entry == nullptr) {
      return not_found("alloc reply for unknown provisional " + old_id.to_string());
    }
    LongPointer new_id = entry->pointer;
    new_id.address = real;
    SRPC_RETURN_IF_ERROR(cache_.rebind(entry->pointer, new_id));
  }
  return Status::ok();
}

}  // namespace srpc
