#include "mem/managed_heap.hpp"

#include <sys/mman.h>

#include <cerrno>
#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <new>

namespace srpc {

namespace {
void release_record(const ManagedHeap::Record& record) noexcept {
  if (record.adopted) return;
  if (record.mapped) {
    ::munmap(record.base, record.size);
  } else {
    ::operator delete(record.base, std::align_val_t{alignof(std::max_align_t)});
  }
}
}  // namespace

ManagedHeap::~ManagedHeap() {
  for (auto& [base, record] : records_) {
    release_record(record);
  }
  for (auto& record : retired_) {
    release_record(record);
  }
}

void ManagedHeap::discard(Record& record) {
  if (retain_freed_ && !record.adopted) {
    retired_.push_back(record);
    return;
  }
  release_record(record);
}

Result<void*> ManagedHeap::allocate(TypeId type, std::uint32_t count) {
  if (count == 0) {
    return invalid_argument("allocate: zero count");
  }
  const TypeId full = count > 1 ? registry_.array_of(type, count) : type;
  auto layout = layouts_.layout_of(arch_, full);
  if (!layout) return layout.status();
  const std::uint64_t size = layout.value()->size;

  std::uint8_t* base = nullptr;
  bool mapped = false;
  const std::uint64_t addr_limit =
      arch_.pointer_size >= 8 ? ~0ULL : (1ULL << (8 * arch_.pointer_size));
  if (arch_.pointer_size < 8) {
    // Foreign narrow-pointer space: addresses must fit its pointer fields.
#if defined(__x86_64__) && defined(MAP_32BIT)
    void* mem = ::mmap(nullptr, size, PROT_READ | PROT_WRITE,
                       MAP_PRIVATE | MAP_ANONYMOUS | MAP_32BIT, -1, 0);
    if (mem == MAP_FAILED) {
      return resource_exhausted(std::string("mmap(MAP_32BIT): ") +
                                std::strerror(errno));
    }
    base = static_cast<std::uint8_t*>(mem);
    mapped = true;
#else
    return unimplemented(
        "foreign narrow-pointer heaps need MAP_32BIT (x86-64 Linux)");
#endif
    if (reinterpret_cast<std::uint64_t>(base) + size > addr_limit) {
      ::munmap(base, size);
      return resource_exhausted("low-address region exhausted for foreign heap");
    }
  } else {
    base = static_cast<std::uint8_t*>(
        ::operator new(size, std::align_val_t{alignof(std::max_align_t)}));
    std::memset(base, 0, size);
  }
  records_.emplace(reinterpret_cast<std::uintptr_t>(base),
                   Record{full, count, size, base, /*adopted=*/false, mapped});
  live_bytes_ += size;
  return static_cast<void*>(base);
}

Status ManagedHeap::adopt(void* base, TypeId type, std::uint32_t count) {
  if (base == nullptr || count == 0) {
    return invalid_argument("adopt: null base or zero count");
  }
  const TypeId full = count > 1 ? registry_.array_of(type, count) : type;
  auto layout = layouts_.layout_of(arch_, full);
  if (!layout) return layout.status();
  const std::uint64_t size = layout.value()->size;
  const auto key = reinterpret_cast<std::uintptr_t>(base);
  // Reject overlap with existing records.
  auto next = records_.upper_bound(key);
  if (next != records_.end() && next->first < key + size) {
    return already_exists("adopt: range overlaps existing allocation");
  }
  if (next != records_.begin()) {
    auto prev = std::prev(next);
    if (prev->first + prev->second.size > key) {
      return already_exists("adopt: range overlaps existing allocation");
    }
  }
  records_.emplace(key, Record{full, count, size, static_cast<std::uint8_t*>(base),
                               /*adopted=*/true});
  live_bytes_ += size;
  return Status::ok();
}

Status ManagedHeap::free(void* p) {
  const auto key = reinterpret_cast<std::uintptr_t>(p);
  auto it = records_.find(key);
  if (it == records_.end()) {
    return not_found("free: not an allocation base");
  }
  live_bytes_ -= it->second.size;
  discard(it->second);
  records_.erase(it);
  return Status::ok();
}

Status ManagedHeap::restore(void* base, TypeId full_type, std::uint32_t count,
                            std::uint64_t size, SpaceId owner_space,
                            SessionId owner_session) {
  if (base == nullptr || size == 0) {
    return invalid_argument("restore: null base or zero size");
  }
  const auto key = reinterpret_cast<std::uintptr_t>(base);
  auto next = records_.upper_bound(key);
  if (next != records_.end() && next->first < key + size) {
    return already_exists("restore: range overlaps existing allocation");
  }
  if (next != records_.begin()) {
    auto prev = std::prev(next);
    if (prev->first + prev->second.size > key) {
      return already_exists("restore: range overlaps existing allocation");
    }
  }
  Record record{full_type, count, size, static_cast<std::uint8_t*>(base),
                /*adopted=*/true};
  record.owner_space = owner_space;
  record.owner_session = owner_session;
  records_.emplace(key, record);
  live_bytes_ += size;
  return Status::ok();
}

const ManagedHeap::Record* ManagedHeap::find(const void* addr) const {
  const auto target = reinterpret_cast<std::uintptr_t>(addr);
  auto it = records_.upper_bound(target);
  if (it == records_.begin()) return nullptr;
  --it;
  if (target >= it->first + it->second.size) return nullptr;
  return &it->second;
}

const ManagedHeap::Record* ManagedHeap::find_base(std::uint64_t addr) const {
  auto it = records_.find(static_cast<std::uintptr_t>(addr));
  return it == records_.end() ? nullptr : &it->second;
}

Status ManagedHeap::tag_owner(std::uint64_t addr, SpaceId space,
                              SessionId session) {
  auto it = records_.find(static_cast<std::uintptr_t>(addr));
  if (it == records_.end()) {
    return not_found("tag_owner: not an allocation base");
  }
  it->second.owner_space = space;
  it->second.owner_session = session;
  return Status::ok();
}

std::size_t ManagedHeap::promote_session(SessionId session) {
  std::size_t promoted = 0;
  for (auto& [base, record] : records_) {
    if (record.owner_session == session) {
      record.owner_space = kInvalidSpaceId;
      record.owner_session = kNoSession;
      ++promoted;
    }
  }
  return promoted;
}

std::uint64_t ManagedHeap::reclaim_session(SessionId session) {
  std::uint64_t reclaimed = 0;
  for (auto it = records_.begin(); it != records_.end();) {
    if (it->second.owner_session == session) {
      reclaimed += it->second.size;
      live_bytes_ -= it->second.size;
      discard(it->second);
      it = records_.erase(it);
    } else {
      ++it;
    }
  }
  return reclaimed;
}

std::uint64_t ManagedHeap::reclaim_owned_by(SpaceId space) {
  std::uint64_t reclaimed = 0;
  for (auto it = records_.begin(); it != records_.end();) {
    if (it->second.owner_space == space) {
      reclaimed += it->second.size;
      live_bytes_ -= it->second.size;
      discard(it->second);
      it = records_.erase(it);
    } else {
      ++it;
    }
  }
  return reclaimed;
}

std::uint64_t ManagedHeap::owned_bytes(SpaceId space) const {
  std::uint64_t bytes = 0;
  for (const auto& [base, record] : records_) {
    if (record.owner_space == space) bytes += record.size;
  }
  return bytes;
}

std::uint64_t ManagedHeap::session_owned_bytes() const {
  std::uint64_t bytes = 0;
  for (const auto& [base, record] : records_) {
    if (record.owner_session != kNoSession) bytes += record.size;
  }
  return bytes;
}

}  // namespace srpc
