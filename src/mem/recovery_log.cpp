#include "mem/recovery_log.hpp"

#include <cstdio>
#include <cstring>

#include "common/byte_buffer.hpp"
#include "common/logging.hpp"
#include "mem/managed_heap.hpp"
#include "xdr/xdr_decoder.hpp"
#include "xdr/xdr_encoder.hpp"

namespace srpc {

namespace {

const char* kind_name(RecoveryLog::Kind k) {
  switch (k) {
    case RecoveryLog::Kind::kAlloc:
      return "ALLOC";
    case RecoveryLog::Kind::kFree:
      return "FREE";
    case RecoveryLog::Kind::kPrepare:
      return "PREPARE";
    case RecoveryLog::Kind::kCommit:
      return "COMMIT";
    case RecoveryLog::Kind::kAbort:
      return "ABORT";
    case RecoveryLog::Kind::kSettle:
      return "SETTLE";
    case RecoveryLog::Kind::kDecision:
      return "DECISION";
    case RecoveryLog::Kind::kCheckpoint:
      return "CHECKPOINT";
  }
  return "?";
}

}  // namespace

void RecoveryLog::append(Record&& r) {
  std::lock_guard<std::mutex> lock(mutex_);
  bytes_logged_ += r.bytes.size();
  if (!backing_path_.empty()) {
    if (std::FILE* f = std::fopen(backing_path_.c_str(), "a")) {
      std::fprintf(f, "%s session=%llu epoch=%llu peer=%u addr=%llx %zuB\n",
                   kind_name(r.kind),
                   static_cast<unsigned long long>(r.session),
                   static_cast<unsigned long long>(r.epoch), r.peer,
                   static_cast<unsigned long long>(r.addr), r.bytes.size());
      std::fclose(f);
    }
  }
  records_.push_back(std::move(r));
}

void RecoveryLog::note_alloc(std::uint64_t addr, TypeId full_type,
                             std::uint32_t count, std::uint64_t size,
                             SpaceId owner_space, SessionId owner_session) {
  Record r;
  r.kind = Kind::kAlloc;
  r.addr = addr;
  r.type = full_type;
  r.count = count;
  r.size = size;
  r.peer = owner_space;
  r.session = owner_session;
  append(std::move(r));
}

void RecoveryLog::note_free(std::uint64_t addr) {
  Record r;
  r.kind = Kind::kFree;
  r.addr = addr;
  append(std::move(r));
}

void RecoveryLog::note_prepare(SessionId session, std::uint64_t epoch,
                               SpaceId from, const std::uint8_t* staged,
                               std::size_t len) {
  Record r;
  r.kind = Kind::kPrepare;
  r.session = session;
  r.epoch = epoch;
  r.peer = from;
  r.bytes.assign(staged, staged + len);
  append(std::move(r));
}

void RecoveryLog::note_commit(SessionId session, std::uint64_t epoch) {
  Record r;
  r.kind = Kind::kCommit;
  r.session = session;
  r.epoch = epoch;
  append(std::move(r));
}

void RecoveryLog::note_abort(SessionId session, std::uint64_t epoch) {
  Record r;
  r.kind = Kind::kAbort;
  r.session = session;
  r.epoch = epoch;
  append(std::move(r));
}

void RecoveryLog::note_settle(SessionId session, bool aborted) {
  Record r;
  r.kind = Kind::kSettle;
  r.session = session;
  r.aborted = aborted;
  append(std::move(r));
}

void RecoveryLog::note_decision(SessionId session, std::uint64_t epoch,
                                bool committed) {
  Record r;
  r.kind = Kind::kDecision;
  r.session = session;
  r.epoch = epoch;
  r.committed = committed;
  append(std::move(r));
}

// Checkpoint image layout (all XDR):
//   n u32 | n x { addr u64 | type u32 | count u32 | owner_space u32
//                | owner_session u64 | size u64 | bytes (size, padded) }
void RecoveryLog::checkpoint(const ManagedHeap& heap) {
  ByteBuffer image;
  xdr::Encoder enc(image);
  std::uint32_t n = 0;
  heap.for_each([&](const ManagedHeap::Record&) { ++n; });
  enc.put_u32(n);
  heap.for_each([&](const ManagedHeap::Record& rec) {
    enc.put_u64(reinterpret_cast<std::uint64_t>(rec.base));
    enc.put_u32(rec.type);
    enc.put_u32(rec.count);
    enc.put_u32(rec.owner_space);
    enc.put_u64(rec.owner_session);
    enc.put_u64(rec.size);
    enc.put_opaque_fixed({rec.base, static_cast<std::size_t>(rec.size)});
  });
  Record r;
  r.kind = Kind::kCheckpoint;
  r.count = n;
  r.bytes.assign(image.data(), image.data() + image.size());
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++checkpoints_;
  }
  append(std::move(r));
}

Status RecoveryLog::restore_checkpoint(const Record& image, ManagedHeap& heap) {
  if (image.kind != Kind::kCheckpoint) {
    return invalid_argument("restore_checkpoint: not a checkpoint record");
  }
  ByteBuffer buf;
  buf.append({image.bytes.data(), image.bytes.size()});
  xdr::Decoder dec(buf);
  auto n = dec.get_u32();
  if (!n) return n.status();
  for (std::uint32_t i = 0; i < n.value(); ++i) {
    auto addr = dec.get_u64();
    if (!addr) return addr.status();
    auto type = dec.get_u32();
    if (!type) return type.status();
    auto count = dec.get_u32();
    if (!count) return count.status();
    auto owner_space = dec.get_u32();
    if (!owner_space) return owner_space.status();
    auto owner_session = dec.get_u64();
    if (!owner_session) return owner_session.status();
    auto size = dec.get_u64();
    if (!size) return size.status();
    auto bytes = dec.get_opaque_fixed(static_cast<std::uint32_t>(size.value()));
    if (!bytes) return bytes.status();
    // The predecessor's storage is still mapped (the zombie runtime keeps
    // it alive until world teardown), so the successor re-registers the
    // exact range — peers' long pointers stay valid — and rolls the bytes
    // back to the checkpointed image.
    auto* base = reinterpret_cast<std::uint8_t*>(addr.value());
    SRPC_RETURN_IF_ERROR(heap.restore(base, type.value(), count.value(),
                                      size.value(), owner_space.value(),
                                      owner_session.value()));
    std::memcpy(base, bytes.value().data(), bytes.value().size());
  }
  return Status::ok();
}

std::vector<RecoveryLog::Record> RecoveryLog::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_;
}

std::vector<RecoveryDecision> RecoveryLog::decisions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<RecoveryDecision> out;
  for (const Record& r : records_) {
    if (r.kind == Kind::kDecision) {
      out.push_back(RecoveryDecision{r.session, r.epoch, r.committed});
    }
  }
  return out;
}

std::size_t RecoveryLog::records() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_.size();
}

std::size_t RecoveryLog::checkpoints() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return checkpoints_;
}

std::uint64_t RecoveryLog::bytes_logged() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytes_logged_;
}

void RecoveryLog::set_backing_path(std::string path) {
  std::lock_guard<std::mutex> lock(mutex_);
  backing_path_ = std::move(path);
}

}  // namespace srpc
