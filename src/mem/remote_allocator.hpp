// RemoteAllocator — batched extended_malloc / extended_free (paper §3.5).
//
// "Our solution ... is that the runtime system batches the memory
// allocation and release operation requests to the original address
// spaces. The batch operations are performed when the activity of the
// thread moves to another address space."
//
// allocate() hands back a *usable object immediately*: a born-resident,
// born-dirty cache location under a provisional identity. The creator
// initialises it in place; when control next leaves this space the runtime
// flushes the batch, the home assigns real addresses, the provisional
// identities are rebound, and the initial values then travel with the
// ordinary modified data set — no extra mechanism needed.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/ids.hpp"
#include "common/status.hpp"
#include "core/cache_manager.hpp"
#include "swizzle/long_pointer.hpp"

namespace srpc {

// Provisional home addresses carry this bit; no real user-space address
// does. They must never appear on the wire outside an ALLOC_BATCH.
inline constexpr std::uint64_t kProvisionalAddressBit = 1ULL << 63;

inline bool is_provisional_address(std::uint64_t addr) noexcept {
  return (addr & kProvisionalAddressBit) != 0;
}

class RemoteAllocator {
 public:
  explicit RemoteAllocator(CacheManager& cache) : cache_(cache) {}
  RemoteAllocator(const RemoteAllocator&) = delete;
  RemoteAllocator& operator=(const RemoteAllocator&) = delete;

  struct PendingAlloc {
    std::uint64_t provisional = 0;
    TypeId type = kInvalidTypeId;  // full type (arrays pre-interned)
  };
  struct Batch {
    std::vector<PendingAlloc> allocs;
    std::vector<std::uint64_t> frees;  // real home addresses to release
  };

  // Allocates a local born-dirty location for a new object of `type`
  // (size/align already resolved by the caller) homed at `home`.
  Result<void*> allocate(SpaceId home, TypeId type, std::uint64_t size,
                         std::uint32_t align);

  // Records the release of a cached remote datum. If `id` is provisional
  // the pending allocation is cancelled instead and nothing is sent.
  Status release(const LongPointer& id);

  [[nodiscard]] bool has_pending() const noexcept { return !batches_.empty(); }
  [[nodiscard]] std::vector<SpaceId> pending_homes() const;

  // Removes and returns the batch destined for `home`.
  Batch take_batch(SpaceId home);

  // Applies a home's ALLOC_REPLY: rebinds each provisional identity to the
  // assigned real address.
  Status apply_assignments(
      SpaceId home, std::span<const std::pair<std::uint64_t, std::uint64_t>> assigned);

  // Session teardown.
  void clear() { batches_.clear(); }

 private:
  CacheManager& cache_;
  std::uint64_t next_provisional_ = 1;
  std::map<SpaceId, Batch> batches_;
};

}  // namespace srpc
