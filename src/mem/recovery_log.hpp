// RecoveryLog — the home-side durable write-ahead record behind space
// reincarnation (PROTOCOL.md "Incarnations, fencing & rejoin").
//
// Every state transition a *peer* depends on is appended before it is
// acknowledged: ALLOC_BATCH ownership (a peer holds long pointers into the
// storage), two-phase WB_PREPARE stages and their COMMIT/ABORT outcomes,
// session settlement (INVALIDATE), and — on the coordinator side — the
// final decision for each two-phase epoch. Periodic heap checkpoints bound
// replay: a checkpoint captures every live allocation with its bytes and
// ownership tags, superseding the alloc/commit history before it.
//
// On restart the runtime replays the log (Runtime::recover_from_log):
// restore the last checkpoint, re-apply subsequent allocs/frees, re-stage
// in-doubt prepares, re-apply commits, and collect the decision records
// that the REJOIN announcement ships to peers so they can resolve their
// own in-doubt stages.
//
// The log is owned by the World, *outside* the Runtime it records, so it
// survives the crash/reincarnation of its space — the in-memory stand-in
// for a file or NVRAM region (set_backing_path() additionally mirrors
// appends to a file for inspection; replay always uses the in-memory
// image).
//
// Thread-safety: appends come from the recording space's worker; replay
// and inspection come from the successor incarnation's worker and test
// threads. Every method takes the internal mutex.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/status.hpp"
#include "types/type_registry.hpp"

namespace srpc {

class ManagedHeap;

// Coordinator-side outcome of one two-phase session, shipped in REJOIN so
// peers holding in-doubt stages for this space can roll forward or back.
struct RecoveryDecision {
  SessionId session = kNoSession;
  std::uint64_t epoch = 0;
  bool committed = false;
};

class RecoveryLog {
 public:
  enum class Kind : std::uint8_t {
    kAlloc = 1,   // ALLOC_BATCH granted storage to a remote session
    kFree,        // ALLOC_BATCH freed an allocation base
    kPrepare,     // WB_PREPARE staged (bytes = the staged modified set)
    kCommit,      // WB_COMMIT applied the stage for {session, epoch}
    kAbort,       // WB_ABORT discarded the stage
    kSettle,      // INVALIDATE settled the session (aborted flag)
    kDecision,    // coordinator's final verdict for {session, epoch}
    kCheckpoint,  // full heap image (bytes = serialized allocations)
  };

  struct Record {
    Kind kind = Kind::kAlloc;
    SessionId session = kNoSession;
    std::uint64_t epoch = 0;
    SpaceId peer = kInvalidSpaceId;  // alloc owner / prepare sender
    std::uint64_t addr = 0;          // alloc/free base address
    TypeId type = kInvalidTypeId;    // alloc: full (possibly array) type
    std::uint32_t count = 1;         // alloc: element count
    std::uint64_t size = 0;          // alloc: byte size
    bool aborted = false;            // settle
    bool committed = false;          // decision
    std::vector<std::uint8_t> bytes;  // prepare stage / checkpoint image
  };

  RecoveryLog() = default;
  RecoveryLog(const RecoveryLog&) = delete;
  RecoveryLog& operator=(const RecoveryLog&) = delete;

  void note_alloc(std::uint64_t addr, TypeId full_type, std::uint32_t count,
                  std::uint64_t size, SpaceId owner_space,
                  SessionId owner_session);
  void note_free(std::uint64_t addr);
  void note_prepare(SessionId session, std::uint64_t epoch, SpaceId from,
                    const std::uint8_t* staged, std::size_t len);
  void note_commit(SessionId session, std::uint64_t epoch);
  void note_abort(SessionId session, std::uint64_t epoch);
  void note_settle(SessionId session, bool aborted);
  void note_decision(SessionId session, std::uint64_t epoch, bool committed);

  // Serializes every live allocation of `heap` (tags and bytes) into one
  // kCheckpoint record. Replay restores the latest checkpoint and then
  // applies only the records appended after it.
  void checkpoint(const ManagedHeap& heap);

  // Re-registers every allocation of `image` (a kCheckpoint record) into
  // `heap` and copies its saved bytes back over the still-mapped storage.
  // INVALID_ARGUMENT if `image` is not a checkpoint.
  static Status restore_checkpoint(const Record& image, ManagedHeap& heap);

  // Snapshot of the journal for replay, oldest first.
  [[nodiscard]] std::vector<Record> snapshot() const;

  // Coordinator decisions across the whole journal, for REJOIN payloads.
  [[nodiscard]] std::vector<RecoveryDecision> decisions() const;

  [[nodiscard]] std::size_t records() const;
  [[nodiscard]] std::size_t checkpoints() const;
  [[nodiscard]] std::uint64_t bytes_logged() const;

  // Mirrors a human-readable line per append to `path` (best-effort; the
  // in-memory journal stays authoritative for replay).
  void set_backing_path(std::string path);

 private:
  void append(Record&& r);

  mutable std::mutex mutex_;
  std::vector<Record> records_;
  std::size_t checkpoints_ = 0;
  std::uint64_t bytes_logged_ = 0;
  std::string backing_path_;
};

}  // namespace srpc
