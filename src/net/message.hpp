// Runtime messages exchanged between address spaces.
//
// One message vocabulary serves the whole system: conventional RPC
// (call/return), the smart-RPC fetch protocol (paper §3.2), the coherency
// write-back and invalidation traffic (§3.4), batched remote memory
// management (§3.5), and the fully-lazy baseline's per-dereference
// callbacks (§2).
#pragma once

#include <cstdint>
#include <string_view>

#include "common/byte_buffer.hpp"
#include "common/ids.hpp"
#include "net/shm_arena.hpp"
#include "obs/trace_context.hpp"

namespace srpc {

enum class MessageType : std::uint8_t {
  kCall = 1,       // invoke a remote procedure (args + piggybacked payloads)
  kReturn,         // procedure result (+ piggybacked payloads)
  kFetch,          // request the data allocated to a faulted page
  kFetchReply,     // graph payload filling the page (+ eager closure)
  kAllocBatch,     // batched extended_malloc/extended_free requests
  kAllocReply,     // home-assigned addresses for the batch
  kWriteBack,      // session-end write-back of the modified data set
  kWriteBackAck,
  kInvalidate,     // session-end multicast: drop all cached data
  kInvalidateAck,
  kDeref,          // fully-lazy baseline: dereference one long pointer
  kDerefReply,
  kError,          // remote failure terminating the pending operation
  kShutdown,       // world teardown: stop the space's worker loop
  kWbPrepare,      // two-phase write-back: stage modified set in a shadow buffer
  kWbPrepareAck,
  kWbCommit,       // apply the staged shadow buffer for {session, epoch}
  kWbCommitAck,
  kWbAbort,        // discard the staged shadow buffer
  kWbAbortAck,
  kPing,           // failure-detector probe
  kPong,
  kRejoin,         // restarted space announces {incarnation, decision log}
  kRejoinAck,
};

std::string_view to_string(MessageType t) noexcept;

struct Message {
  MessageType type = MessageType::kShutdown;
  SpaceId from = kInvalidSpaceId;
  SpaceId to = kInvalidSpaceId;
  SessionId session = kNoSession;
  std::uint64_t seq = 0;  // matches replies to requests
  TraceContext trace;     // causal identity (trace_id == 0: none attached)
  // Incarnation fencing (PROTOCOL.md "Incarnations, fencing & rejoin"):
  // `incarnation` is the sender's current incarnation, `to_incarnation` the
  // sender's belief about the destination's. Zero means "not stamped"
  // (legacy peer or recovery disabled) and is never fenced. Receivers drop
  // any message whose stamps are below their own knowledge — a frame from a
  // crashed predecessor, or one addressed to it, must never be acted upon.
  std::uint32_t incarnation = 0;
  std::uint32_t to_incarnation = 0;
  // Simulation-only arrival timestamp (virtual ns) stamped by SimNetwork;
  // the receiver advances its clock to it on dequeue. Never framed on the
  // wire and not part of wire_size().
  std::uint64_t arrive_ns = 0;
  ByteBuffer payload;
  // Zero-copy lane (PROTOCOL.md "Zero-copy payload lane"): when valid, the
  // payload bytes live in a shared arena region and only this descriptor
  // crosses the wire; `payload` is empty in flight and the receiver binds
  // it back over the region with bind_view_payload(). The view's hold is
  // the pin — a dropped message releases the region by plain destruction.
  PayloadView view;

  [[nodiscard]] bool shm_backed() const noexcept { return view.valid(); }

  // Receiver edge: rebind `payload` as a borrowed buffer over the arena
  // region so every handler decodes exactly as if the bytes had been
  // framed. The buffer shares the pin, so moving the payload out of the
  // message (e.g. into a cache fill) keeps the region alive.
  void bind_view_payload() {
    if (!shm_backed()) return;
    payload = ByteBuffer::borrow(view.bytes(), view.hold);
  }

  [[nodiscard]] std::size_t wire_size() const noexcept;
};

// Fixed per-message wire overhead (header fields as framed by rpc/wire.cpp).
inline constexpr std::size_t kMessageHeaderWireSize = 32;
// Shm-lane descriptor: arena_id u32 | region u64 | offset u32 | len u32.
inline constexpr std::size_t kShmDescriptorWireSize = 20;
// Incarnation extension: incarnation u32 | to_incarnation u32.
inline constexpr std::size_t kIncarnationWireSize = 8;

inline std::size_t Message::wire_size() const noexcept {
  // The trace-context extension is charged only when attached, so runs
  // with tracing off price (and simulate) identically to pre-trace builds.
  // Shm-lane messages are charged header + descriptor only: the payload
  // bytes never cross the wire, which is the whole point of the lane.
  // Incarnation stamps ride the same only-when-attached rule, so worlds
  // without recovery price identically to pre-recovery builds.
  const std::size_t body =
      shm_backed() ? kShmDescriptorWireSize : payload.size();
  return kMessageHeaderWireSize + (trace.valid() ? kTraceContextWireSize : 0) +
         ((incarnation != 0 || to_incarnation != 0) ? kIncarnationWireSize
                                                    : 0) +
         body;
}

}  // namespace srpc
