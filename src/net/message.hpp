// Runtime messages exchanged between address spaces.
//
// One message vocabulary serves the whole system: conventional RPC
// (call/return), the smart-RPC fetch protocol (paper §3.2), the coherency
// write-back and invalidation traffic (§3.4), batched remote memory
// management (§3.5), and the fully-lazy baseline's per-dereference
// callbacks (§2).
#pragma once

#include <cstdint>
#include <string_view>

#include "common/byte_buffer.hpp"
#include "common/ids.hpp"
#include "obs/trace_context.hpp"

namespace srpc {

enum class MessageType : std::uint8_t {
  kCall = 1,       // invoke a remote procedure (args + piggybacked payloads)
  kReturn,         // procedure result (+ piggybacked payloads)
  kFetch,          // request the data allocated to a faulted page
  kFetchReply,     // graph payload filling the page (+ eager closure)
  kAllocBatch,     // batched extended_malloc/extended_free requests
  kAllocReply,     // home-assigned addresses for the batch
  kWriteBack,      // session-end write-back of the modified data set
  kWriteBackAck,
  kInvalidate,     // session-end multicast: drop all cached data
  kInvalidateAck,
  kDeref,          // fully-lazy baseline: dereference one long pointer
  kDerefReply,
  kError,          // remote failure terminating the pending operation
  kShutdown,       // world teardown: stop the space's worker loop
  kWbPrepare,      // two-phase write-back: stage modified set in a shadow buffer
  kWbPrepareAck,
  kWbCommit,       // apply the staged shadow buffer for {session, epoch}
  kWbCommitAck,
  kWbAbort,        // discard the staged shadow buffer
  kWbAbortAck,
  kPing,           // failure-detector probe
  kPong,
};

std::string_view to_string(MessageType t) noexcept;

struct Message {
  MessageType type = MessageType::kShutdown;
  SpaceId from = kInvalidSpaceId;
  SpaceId to = kInvalidSpaceId;
  SessionId session = kNoSession;
  std::uint64_t seq = 0;  // matches replies to requests
  TraceContext trace;     // causal identity (trace_id == 0: none attached)
  // Simulation-only arrival timestamp (virtual ns) stamped by SimNetwork;
  // the receiver advances its clock to it on dequeue. Never framed on the
  // wire and not part of wire_size().
  std::uint64_t arrive_ns = 0;
  ByteBuffer payload;

  [[nodiscard]] std::size_t wire_size() const noexcept;
};

// Fixed per-message wire overhead (header fields as framed by rpc/wire.cpp).
inline constexpr std::size_t kMessageHeaderWireSize = 32;

inline std::size_t Message::wire_size() const noexcept {
  // The trace-context extension is charged only when attached, so runs
  // with tracing off price (and simulate) identically to pre-trace builds.
  return kMessageHeaderWireSize + (trace.valid() ? kTraceContextWireSize : 0) +
         payload.size();
}

}  // namespace srpc
