// FaultTransport — a seedable fault-injection decorator for any Transport.
//
// Wraps SimNetwork or SocketHub and subjects traffic to deterministic,
// seeded message loss, duplication, and delay/reordering. Tests use it to
// prove the deadline/retry/dedup layer: a dropped message exercises
// retransmission and DEADLINE_EXCEEDED, a duplicated one exercises
// request-id dedup, a delayed one exercises stale-reply absorption and
// session tombstones.
//
// Injection model per send of a targeted message kind:
//   * drop:      with P(drop) the message is silently discarded (send still
//                returns OK — the loss a real network would inflict);
//   * duplicate: with P(duplicate) the message is delivered twice;
//   * delay:     with P(delay) the message is held back and delivered only
//                after `delay_window` later sends have passed through,
//                which reorders it behind younger traffic.
// Drops can also be scheduled precisely with drop_next(kind, n), which
// discards the next n sends of that kind regardless of rates — the tool
// for deterministic "lose exactly one reply" tests.
//
// Topology faults model whole-space failure rather than per-message loss:
//   * partition(dst): every message to or from `dst` is silently discarded
//     until heal(dst)/heal_all() — a two-way network cut. Healable.
//   * crash_space(id): same cut, but held until restart_space(id) lifts it
//     for the space's next incarnation — the process is gone, not the
//     link. disarm() heals partitions but never crashes.
// Both are independent of arm()/disarm() rates and of the target mask.
//
// Thread-safety: send() may be called from any thread, including the
// SIGSEGV fault path (same discipline as every Transport). All state is
// guarded by one mutex; the inner transport is invoked outside callbacks
// into this object, so there is no lock cycle.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "common/rng.hpp"
#include "net/message.hpp"
#include "net/transport.hpp"

namespace srpc {

struct FaultOptions {
  std::uint64_t seed = 0x5EEDF00DULL;
  double drop = 0.0;       // P(silently lose a targeted message)
  double duplicate = 0.0;  // P(deliver a targeted message twice)
  double delay = 0.0;      // P(hold a targeted message back)
  std::uint32_t delay_window = 2;  // later sends a held message waits for
};

struct FaultStats {
  std::uint64_t seen = 0;        // sends entering the decorator
  std::uint64_t delivered = 0;   // forwards to the inner transport
  std::uint64_t dropped = 0;     // rate- or drop_next-injected losses
  std::uint64_t duplicated = 0;  // extra copies delivered
  std::uint64_t delayed = 0;     // messages held back at least once
  std::uint64_t partition_drops = 0;  // losses from partition(dst) cuts
  std::uint64_t crash_drops = 0;      // losses from crash_space(id)
  std::uint64_t corrupted = 0;        // corrupt_next-injected payload damage
  std::uint64_t shm_downgrades = 0;   // views privatised before corruption
};

class FaultTransport final : public Transport {
 public:
  explicit FaultTransport(Transport& inner, FaultOptions options = {})
      : inner_(inner), options_(options), rng_(options.seed) {}

  Status send(Message&& msg) override;

  // Starts injecting with `options` (reseeds the RNG from options.seed).
  void arm(const FaultOptions& options);

  // Stops rate-based injection and releases every held-back message; the
  // fuse and any pending drop_next() counts are cleared too. After
  // disarm() the decorator is a pure pass-through.
  void disarm();

  // Drops the next `n` sends of `kind`, independent of rates and of
  // arm()/disarm() state.
  void drop_next(MessageType kind, std::uint32_t n);

  // Corrupts the payload of the next `n` sends of `kind` (every byte is
  // bit-flipped; the receiver sees a decode failure, not a crash). A
  // shm-backed message is downgraded to a private byte copy first so the
  // shared arena region — which other pinned views still read — is never
  // scribbled; the downgrade also re-prices the message at full payload
  // bytes, i.e. corruption forces the legacy lane.
  void corrupt_next(MessageType kind, std::uint32_t n);

  // Restricts rate-based injection to the listed kinds (default: all).
  void target(std::initializer_list<MessageType> kinds);
  void target_all();

  // Two-way network cut around `dst`: messages to or from it are silently
  // lost (send still returns OK) until healed.
  void partition(SpaceId dst);
  void heal(SpaceId dst);
  void heal_all();
  [[nodiscard]] bool is_partitioned(SpaceId dst) const;

  // Process-death cut: messages in both directions are silently lost.
  // disarm() never heals it — only restart_space(id), which models the
  // space's next incarnation coming back up on the same address. Held-back
  // messages from the prior life survive the restart (flush() then
  // delivers them into the successor, which must fence them).
  void crash_space(SpaceId id);
  void restart_space(SpaceId id);
  [[nodiscard]] bool is_crashed(SpaceId id) const;

  // Delivers every held-back message now.
  void flush();

  [[nodiscard]] FaultStats stats() const;

 private:
  [[nodiscard]] bool targeted(MessageType t) const;  // mutex held
  [[nodiscard]] bool cut(const Message& msg);        // mutex held; counts stats

  Transport& inner_;
  mutable std::mutex mutex_;
  FaultOptions options_;
  Rng rng_;
  bool armed_ = false;
  std::uint32_t target_mask_ = 0;  // bit per MessageType value; 0 = all
  std::uint32_t pending_drops_[32] = {};
  std::uint32_t pending_corrupts_[32] = {};
  struct Held {
    Message msg;
    std::uint32_t remaining = 0;
  };
  std::vector<Held> held_;
  std::unordered_set<SpaceId> partitioned_;
  std::unordered_set<SpaceId> crashed_;
  FaultStats stats_;
};

}  // namespace srpc
