#include "net/sim_network.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace srpc {

void SimNetwork::attach(SpaceId space, Mailbox* mailbox) {
  mailboxes_[space] = mailbox;
}

void SimNetwork::detach(SpaceId space) { mailboxes_.erase(space); }

Status SimNetwork::send(Message&& msg) {
  auto it = mailboxes_.find(msg.to);
  if (it == mailboxes_.end()) {
    return not_found("send to unknown space " + std::to_string(msg.to));
  }
  const std::uint64_t wire = msg.wire_size();
  // Sender CPU: XDR encode happens before anything hits the wire.
  clock_.advance(wire * cost_.per_marshal_byte_ns);
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    // Wire occupancy (shared medium, one frame at a time) and arrival
    // edge; link_free_ns_ shares the stats mutex, which send() may already
    // take on the SIGSEGV fault path — same discipline.
    const std::uint64_t depart = std::max(clock_.now(), link_free_ns_);
    const std::uint64_t wire_done = depart + wire * cost_.per_wire_byte_ns;
    link_free_ns_ = wire_done;
    msg.arrive_ns =
        wire_done + cost_.per_message_ns + wire * cost_.per_marshal_byte_ns;
    stats_.messages += 1;
    stats_.wire_bytes += wire;
    stats_.messages_by_type[static_cast<std::size_t>(msg.type)] += 1;
    stats_.bytes_by_type[static_cast<std::size_t>(msg.type)] += wire;
  }
  SRPC_DEBUG << "net: " << to_string(msg.type) << " " << msg.from << "->" << msg.to
             << " session=" << msg.session << " seq=" << msg.seq << " bytes=" << wire;
  return it->second->push(std::move(msg));
}

NetworkStats SimNetwork::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

void SimNetwork::reset_stats() {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  stats_ = NetworkStats{};
  link_free_ns_ = 0;  // callers reset the clock with the stats (world.cpp)
}

}  // namespace srpc
