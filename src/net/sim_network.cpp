#include "net/sim_network.hpp"

#include "common/logging.hpp"

namespace srpc {

void SimNetwork::attach(SpaceId space, Mailbox* mailbox) {
  mailboxes_[space] = mailbox;
}

void SimNetwork::detach(SpaceId space) { mailboxes_.erase(space); }

Status SimNetwork::send(Message msg) {
  auto it = mailboxes_.find(msg.to);
  if (it == mailboxes_.end()) {
    return not_found("send to unknown space " + std::to_string(msg.to));
  }
  const std::uint64_t wire = msg.wire_size();
  clock_.advance(cost_.message_cost(wire));
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.messages += 1;
    stats_.wire_bytes += wire;
    stats_.messages_by_type[static_cast<std::size_t>(msg.type)] += 1;
    stats_.bytes_by_type[static_cast<std::size_t>(msg.type)] += wire;
  }
  SRPC_DEBUG << "net: " << to_string(msg.type) << " " << msg.from << "->" << msg.to
             << " session=" << msg.session << " seq=" << msg.seq << " bytes=" << wire;
  return it->second->push(std::move(msg));
}

NetworkStats SimNetwork::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

void SimNetwork::reset_stats() {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  stats_ = NetworkStats{};
}

}  // namespace srpc
