// Shared-memory payload arena — the zero-copy lane for same-host peers.
//
// All spaces in a World live in one process, so a payload that would
// otherwise be XDR-framed and copied across the simulated wire can instead
// be *published* into a reference-counted arena region and travel as a
// 20-byte {arena_id, region, offset, len} descriptor (see PROTOCOL.md
// "Zero-copy payload lane"). A PayloadView is both the descriptor and the
// pin: any live copy of the view keeps the region's bytes alive, and the
// region is recycled when the last view drops (RAII — a dropped, timed-out,
// or fault-injected message releases its region by plain destruction).
//
// The arena never hands out mutable aliases: regions are published by
// *moving* an owned byte vector in, and every reader sees `const` bytes.
// Capacity is a soft budget on live published bytes — publish() fails
// cleanly when it would be exceeded and the sender falls back to the
// legacy XDR+copy lane (tested by the arena-exhaustion test).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/status.hpp"

namespace srpc {

struct ShmArenaStats {
  std::uint64_t regions_published = 0;  // successful publish() calls
  std::uint64_t regions_released = 0;   // regions whose last pin dropped
  std::uint64_t regions_live = 0;       // currently pinned regions
  std::uint64_t bytes_live = 0;         // bytes held by live regions
  std::uint64_t peak_bytes_live = 0;
  std::uint64_t publish_failures = 0;   // capacity exceeded -> XDR fallback
  std::uint64_t stashed_inflight = 0;   // views parked for socket frames
};

// Descriptor + pin for one published payload region. Copyable: each copy
// holds its own reference to the bytes. `hold` is what keeps the region
// alive; the integer fields are what crosses the wire.
struct PayloadView {
  std::uint32_t arena_id = 0;
  std::uint64_t region = 0;  // unique publish ticket within the arena
  std::uint32_t offset = 0;
  std::uint32_t len = 0;
  std::shared_ptr<const std::vector<std::uint8_t>> hold;

  [[nodiscard]] bool valid() const noexcept { return hold != nullptr; }
  [[nodiscard]] std::span<const std::uint8_t> bytes() const noexcept {
    if (!hold) return {};
    return {hold->data() + offset, len};
  }
  void reset() noexcept {
    hold.reset();
    arena_id = region = 0;
    offset = len = 0;
  }
};

// One arena per World. Thread-safe: senders on any space's worker publish
// concurrently, and releases run from whichever thread drops the last view.
class ShmArena {
 public:
  explicit ShmArena(std::size_t capacity_bytes);
  ~ShmArena();
  ShmArena(const ShmArena&) = delete;
  ShmArena& operator=(const ShmArena&) = delete;

  // Adopts `bytes` into a new refcounted region and returns the pinned
  // view. On capacity exhaustion returns RESOURCE_EXHAUSTED and leaves
  // `bytes` untouched so the caller can fall back to the byte lane.
  Result<PayloadView> publish(std::vector<std::uint8_t>&& bytes);

  [[nodiscard]] std::uint32_t id() const noexcept;
  [[nodiscard]] std::size_t capacity() const noexcept;
  [[nodiscard]] ShmArenaStats stats() const;

  // Socket lane hand-off: a frame carries only the descriptor, so the
  // sender parks the pin here (stash) and the receiver — which shares the
  // process — redeems it (claim). Both resolve the arena by the view's
  // arena_id through a process-wide registry (frames don't carry object
  // handles). A claim ticket is one-shot; claiming an unknown or
  // already-claimed ticket fails (the frame outlived its pin, e.g. the
  // arena died first) and the sender falls back to framing the bytes.
  static Result<std::uint64_t> stash(PayloadView view);
  static Result<PayloadView> claim(std::uint32_t arena_id, std::uint64_t ticket);

  struct State;  // public so the translation-unit registry can hold weak refs

 private:
  std::shared_ptr<State> state_;
};

}  // namespace srpc
