#include "net/message.hpp"

namespace srpc {

std::string_view to_string(MessageType t) noexcept {
  switch (t) {
    case MessageType::kCall:
      return "CALL";
    case MessageType::kReturn:
      return "RETURN";
    case MessageType::kFetch:
      return "FETCH";
    case MessageType::kFetchReply:
      return "FETCH_REPLY";
    case MessageType::kAllocBatch:
      return "ALLOC_BATCH";
    case MessageType::kAllocReply:
      return "ALLOC_REPLY";
    case MessageType::kWriteBack:
      return "WRITE_BACK";
    case MessageType::kWriteBackAck:
      return "WRITE_BACK_ACK";
    case MessageType::kInvalidate:
      return "INVALIDATE";
    case MessageType::kInvalidateAck:
      return "INVALIDATE_ACK";
    case MessageType::kDeref:
      return "DEREF";
    case MessageType::kDerefReply:
      return "DEREF_REPLY";
    case MessageType::kError:
      return "ERROR";
    case MessageType::kShutdown:
      return "SHUTDOWN";
    case MessageType::kWbPrepare:
      return "WB_PREPARE";
    case MessageType::kWbPrepareAck:
      return "WB_PREPARE_ACK";
    case MessageType::kWbCommit:
      return "WB_COMMIT";
    case MessageType::kWbCommitAck:
      return "WB_COMMIT_ACK";
    case MessageType::kWbAbort:
      return "WB_ABORT";
    case MessageType::kWbAbortAck:
      return "WB_ABORT_ACK";
    case MessageType::kPing:
      return "PING";
    case MessageType::kPong:
      return "PONG";
    case MessageType::kRejoin:
      return "REJOIN";
    case MessageType::kRejoinAck:
      return "REJOIN_ACK";
  }
  return "UNKNOWN";
}

}  // namespace srpc
