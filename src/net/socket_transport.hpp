// SocketHub — a real-bytes transport over AF_UNIX socket pairs.
//
// Where SimNetwork moves Message objects and charges virtual time, the hub
// pushes every message through actual kernel sockets using the frame format
// in rpc/wire.hpp: sender writes a frame on its socket, a switch thread
// routes it to the destination's socket, and a per-space reader thread
// decodes it into the destination mailbox. Integration tests run the full
// smart-RPC stack over this to prove the protocol is sound at byte level,
// not just as in-memory object passing.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/transport.hpp"

namespace srpc {

class SocketHub final : public Transport {
 public:
  SocketHub() = default;
  ~SocketHub() override;
  SocketHub(const SocketHub&) = delete;
  SocketHub& operator=(const SocketHub&) = delete;

  // Creates the socket pair and reader thread for `space`. All spaces must
  // be attached before start().
  Status attach(SpaceId space, Mailbox* mailbox);

  // Launches the switch thread. No sends before this.
  Status start();

  // Stops the switch and reader threads and closes all sockets. Called by
  // the destructor; idempotent.
  void stop();

  Status send(Message&& msg) override;

 private:
  struct Endpoint {
    int space_fd = -1;  // the space writes/reads frames here
    int hub_fd = -1;    // the switch's side of the pair
    Mailbox* mailbox = nullptr;
    std::thread reader;
  };

  void switch_loop();
  void reader_loop(Endpoint& ep);

  std::mutex send_mutex_;  // serialises concurrent writers per design (see .cpp)
  std::unordered_map<SpaceId, std::unique_ptr<Endpoint>> endpoints_;
  std::thread switch_thread_;
  std::atomic<bool> running_{false};
  bool stopped_ = false;
};

}  // namespace srpc
