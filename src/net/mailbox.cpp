#include "net/mailbox.hpp"

namespace srpc {

Status Mailbox::push_item(MailItem item) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) {
      return unavailable("mailbox closed");
    }
    queue_.push_back(std::move(item));
  }
  cv_.notify_one();
  return Status::ok();
}

Status Mailbox::push(Message&& msg) { return push_item(std::move(msg)); }

Status Mailbox::push_task(Task task) {
  if (!task) {
    return invalid_argument("push_task: empty task");
  }
  return push_item(std::move(task));
}

namespace {

// Marks the single blocked consumer for the duration of a wait; the flag is
// only read and written under the mailbox mutex (condition_variable waits
// reacquire it before the guard is cleared).
class ConsumerGuard {
 public:
  explicit ConsumerGuard(bool& flag) : flag_(flag) { flag_ = true; }
  ~ConsumerGuard() { flag_ = false; }
  ConsumerGuard(const ConsumerGuard&) = delete;
  ConsumerGuard& operator=(const ConsumerGuard&) = delete;

 private:
  bool& flag_;
};

Status concurrent_consumer() {
  return failed_precondition(
      "mailbox already has a blocked consumer (single-consumer contract)");
}

}  // namespace

Result<MailItem> Mailbox::pop() {
  std::unique_lock<std::mutex> lock(mutex_);
  if (consumer_blocked_) return concurrent_consumer();
  ConsumerGuard guard(consumer_blocked_);
  cv_.wait(lock, [this] { return !queue_.empty() || closed_; });
  if (queue_.empty()) {
    return unavailable("mailbox closed");
  }
  MailItem item = std::move(queue_.front());
  queue_.pop_front();
  return item;
}

Result<MailItem> Mailbox::pop_until(std::chrono::steady_clock::time_point deadline) {
  if (deadline == std::chrono::steady_clock::time_point::max()) {
    return pop();  // wait_until with time_point::max overflows on some libs
  }
  std::unique_lock<std::mutex> lock(mutex_);
  if (consumer_blocked_) return concurrent_consumer();
  ConsumerGuard guard(consumer_blocked_);
  if (!cv_.wait_until(lock, deadline,
                      [this] { return !queue_.empty() || closed_; })) {
    return deadline_exceeded("mailbox wait timed out");
  }
  if (queue_.empty()) {
    return unavailable("mailbox closed");
  }
  MailItem item = std::move(queue_.front());
  queue_.pop_front();
  return item;
}

std::optional<MailItem> Mailbox::try_pop() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (queue_.empty()) return std::nullopt;
  MailItem item = std::move(queue_.front());
  queue_.pop_front();
  return item;
}

void Mailbox::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool Mailbox::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

std::size_t Mailbox::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

}  // namespace srpc
