#include "net/fault_transport.hpp"

#include "common/logging.hpp"

namespace srpc {

bool FaultTransport::targeted(MessageType t) const {
  if (target_mask_ == 0) return true;
  return (target_mask_ & (1u << static_cast<std::uint32_t>(t))) != 0;
}

bool FaultTransport::cut(const Message& msg) {
  // Mutex held. Crash wins over partition for attribution; both lose the
  // message silently in either direction.
  if (crashed_.contains(msg.to) || crashed_.contains(msg.from)) {
    ++stats_.crash_drops;
    return true;
  }
  if (partitioned_.contains(msg.to) || partitioned_.contains(msg.from)) {
    ++stats_.partition_drops;
    return true;
  }
  return false;
}

Status FaultTransport::send(Message&& msg) {
  bool drop = false;
  bool duplicate = false;
  bool hold = false;
  bool corrupt = false;
  std::vector<Message> due;  // held messages whose window just expired
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.seen;

    if (cut(msg)) {
      SRPC_DEBUG << "fault: cut " << to_string(msg.type) << " " << msg.from
                 << "->" << msg.to << " seq=" << msg.seq;
      return Status::ok();  // silent loss, like any network drop
    }

    const auto kind = static_cast<std::uint32_t>(msg.type);
    if (kind < 32 && pending_corrupts_[kind] > 0) {
      --pending_corrupts_[kind];
      corrupt = true;
      ++stats_.corrupted;
      if (msg.shm_backed()) ++stats_.shm_downgrades;
    }
    if (kind < 32 && pending_drops_[kind] > 0) {
      --pending_drops_[kind];
      drop = true;
    } else if (armed_ && targeted(msg.type)) {
      // Independent draws, first match wins: a message is dropped,
      // duplicated, or delayed — never more than one at once.
      if (rng_.next_bool(options_.drop)) {
        drop = true;
      } else if (rng_.next_bool(options_.duplicate)) {
        duplicate = true;
      } else if (rng_.next_bool(options_.delay)) {
        hold = true;
      }
    }

    if (drop) ++stats_.dropped;
    if (duplicate) ++stats_.duplicated;

    // Every send ages the holdback queue, so delayed traffic always gets
    // delivered once anything else moves (retransmits count).
    for (auto it = held_.begin(); it != held_.end();) {
      if (it->remaining == 0 || --it->remaining == 0) {
        due.push_back(std::move(it->msg));
        it = held_.erase(it);
      } else {
        ++it;
      }
    }

    if (hold) {
      ++stats_.delayed;
      held_.push_back(Held{std::move(msg), options_.delay_window});
    }
  }

  if (corrupt && !drop) {
    // Privatise a view-backed payload before damaging it: other pinned
    // readers of the arena region must keep seeing the original bytes.
    // The downgraded message travels the legacy lane (full wire price).
    if (msg.shm_backed()) {
      msg.bind_view_payload();
      msg.view.reset();
    }
    std::uint8_t* p = msg.payload.data();  // detaches a borrowed buffer
    for (std::size_t i = 0; i < msg.payload.size(); ++i) p[i] ^= 0xFF;
    SRPC_DEBUG << "fault: corrupting " << to_string(msg.type) << " "
               << msg.from << "->" << msg.to << " seq=" << msg.seq;
  }

  Status result = Status::ok();
  if (!drop && !hold) {
    Message copy;
    if (duplicate) copy = msg;  // ByteBuffer payload copies
    result = inner_.send(std::move(msg));
    if (result.is_ok()) {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.delivered;
    }
    if (result.is_ok() && duplicate) {
      Status dup = inner_.send(std::move(copy));
      if (dup.is_ok()) {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.delivered;
      }
    }
  } else if (drop) {
    SRPC_DEBUG << "fault: dropping " << to_string(msg.type) << " " << msg.from
               << "->" << msg.to << " seq=" << msg.seq;
  }

  // Reordered traffic rides out after the current message (unless the
  // destination got cut while the message was held).
  for (auto& late : due) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (cut(late)) continue;
    }
    Status s = inner_.send(std::move(late));
    if (s.is_ok()) {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.delivered;
    } else {
      SRPC_DEBUG << "fault: delayed delivery failed: " << s.to_string();
    }
  }
  return result;
}

void FaultTransport::arm(const FaultOptions& options) {
  std::lock_guard<std::mutex> lock(mutex_);
  options_ = options;
  rng_ = Rng(options.seed);
  armed_ = true;
}

void FaultTransport::disarm() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    armed_ = false;
    for (auto& n : pending_drops_) n = 0;
    for (auto& n : pending_corrupts_) n = 0;
    partitioned_.clear();  // crashes stay: the process is gone for good
  }
  flush();
}

void FaultTransport::drop_next(MessageType kind, std::uint32_t n) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto idx = static_cast<std::uint32_t>(kind);
  if (idx < 32) pending_drops_[idx] += n;
}

void FaultTransport::corrupt_next(MessageType kind, std::uint32_t n) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto idx = static_cast<std::uint32_t>(kind);
  if (idx < 32) pending_corrupts_[idx] += n;
}

void FaultTransport::target(std::initializer_list<MessageType> kinds) {
  std::lock_guard<std::mutex> lock(mutex_);
  target_mask_ = 0;
  for (MessageType t : kinds) {
    target_mask_ |= 1u << static_cast<std::uint32_t>(t);
  }
}

void FaultTransport::target_all() {
  std::lock_guard<std::mutex> lock(mutex_);
  target_mask_ = 0;
}

void FaultTransport::partition(SpaceId dst) {
  std::lock_guard<std::mutex> lock(mutex_);
  partitioned_.insert(dst);
}

void FaultTransport::heal(SpaceId dst) {
  std::lock_guard<std::mutex> lock(mutex_);
  partitioned_.erase(dst);
}

void FaultTransport::heal_all() {
  std::lock_guard<std::mutex> lock(mutex_);
  partitioned_.clear();
}

bool FaultTransport::is_partitioned(SpaceId dst) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return partitioned_.contains(dst);
}

void FaultTransport::crash_space(SpaceId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  crashed_.insert(id);
}

bool FaultTransport::is_crashed(SpaceId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return crashed_.contains(id);
}

void FaultTransport::restart_space(SpaceId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  crashed_.erase(id);
}

void FaultTransport::flush() {
  std::vector<Held> held;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    held.swap(held_);
  }
  for (auto& h : held) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (cut(h.msg)) continue;
    }
    Status s = inner_.send(std::move(h.msg));
    if (s.is_ok()) {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.delivered;
    }
  }
}

FaultStats FaultTransport::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace srpc
