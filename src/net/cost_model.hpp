// Cost model for the simulated wire (see DESIGN.md §2).
//
// The paper measured SPARCstations (28.5 MIPS) on 10 Mbps Ethernet with
// TCP_NODELAY. Our address spaces live in one process, so SimNetwork charges
// a VirtualClock with what that hardware would have spent:
//   - a fixed per-message cost (protocol stack, interrupt, small-packet
//     latency),
//   - a per-byte wire cost (10 Mbps = 800 ns/byte), and
//   - a per-byte marshal cost on EACH side (XDR encode + decode on a
//     ~28.5 MIPS CPU — the paper stresses that its numbers include this
//     heterogeneity-conversion overhead),
// plus a per-access-violation cost for the MMU path (signal delivery,
// handler dispatch and the mprotect pair, SunOS-era pricing).
//
// Constants were calibrated against the paper's Figure 4 anchors: the
// fully-eager method ≈ 2–3 s flat, the fully-lazy method ≈ 12 s at access
// ratio 1.0 (≈32 k callbacks → ≈0.37 ms per callback round trip).
#pragma once

#include <cstdint>

namespace srpc {

struct CostModel {
  std::uint64_t per_message_ns = 120'000;   // 120 us per message
  std::uint64_t per_wire_byte_ns = 800;     // 10 Mbps
  std::uint64_t per_marshal_byte_ns = 1200; // per side (encode or decode)
  std::uint64_t per_fault_ns = 1'000'000;   // signal + mprotect pair, 1 ms

  // Virtual nanoseconds one message of `wire_bytes` costs end to end
  // (send-side marshal + wire + receive-side unmarshal + fixed latency).
  [[nodiscard]] std::uint64_t message_cost(std::uint64_t wire_bytes) const noexcept {
    return per_message_ns + wire_bytes * (per_wire_byte_ns + 2 * per_marshal_byte_ns);
  }

  // The paper's testbed. (Default-constructed CostModel is the same.)
  static CostModel sparc_ethernet() noexcept { return CostModel{}; }

  // A free wire: virtual time stands still. Used by unit tests that assert
  // on behaviour, not cost.
  static CostModel zero() noexcept { return CostModel{0, 0, 0, 0}; }
};

}  // namespace srpc
