// Transport abstraction: how a message leaves one address space and lands
// in another's mailbox. Production analogue would be TCP; the repo ships a
// simulated network (sim_network.hpp, with the cost model and virtual
// clock) and a real loopback-socket transport (socket_transport.hpp).
#pragma once

#include "common/status.hpp"
#include "net/mailbox.hpp"
#include "net/message.hpp"

namespace srpc {

class Transport {
 public:
  virtual ~Transport() = default;

  // Delivers `msg` to msg.to's mailbox. Must be callable from any thread,
  // including the SIGSEGV fault path (no allocation-free guarantee is
  // required — the handler runs on a normal stack for a synchronous fault —
  // but it must not touch protected cache pages).
  //
  // Move-only by signature: a payload is handed over, never duplicated.
  // Decorators that need a second delivery (FaultTransport's duplicate
  // fault) make the copy explicitly and pay for it visibly.
  virtual Status send(Message&& msg) = 0;
};

}  // namespace srpc
