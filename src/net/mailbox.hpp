// Per-space inbound queue: network messages plus locally-posted tasks.
//
// Every operation a space performs — serving a call, a fetch, a write-back,
// or running ground-thread user code — executes on the space's single
// worker thread, which blocks here. Tasks never cross the transport; they
// are how AddressSpace::run() injects user code into the worker.
//
// Threading note: the fault path (vm/fault_dispatcher) waits on this mailbox
// *inside a SIGSEGV handler*. That is the classic user-level-DSM discipline
// and it is safe under one invariant, enforced throughout the runtime: no
// code ever touches a protected cache page while holding the mailbox mutex
// (or any other runtime lock), so the faulting thread can never deadlock
// against itself.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <variant>

#include "common/status.hpp"
#include "net/message.hpp"

namespace srpc {

using Task = std::function<void()>;
using MailItem = std::variant<Message, Task>;

class Mailbox {
 public:
  Mailbox() = default;
  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  // Enqueues a message; wakes one waiter. Fails after close(). Move-only:
  // the queue adopts the payload, it is never duplicated on the way in.
  Status push(Message&& msg);

  // Enqueues a local task for the owning thread.
  Status push_task(Task task);

  // Blocks until an item arrives or the mailbox is closed.
  // Returns UNAVAILABLE when closed and drained.
  //
  // Single-consumer contract: a mailbox belongs to its space's one worker
  // thread, and the multiplexed endpoint relies on that — every blocked
  // pop is THE pump, and a reply popped by anyone else is a stolen
  // completion. A second thread blocking while a consumer already waits is
  // therefore a typed FAILED_PRECONDITION error, never a silent steal.
  // (Re-entrant pops on the same thread are naturally sequential and
  // unaffected; try_pop() never blocks and stays exempt.)
  Result<MailItem> pop();

  // Deadline-aware pop: additionally returns DEADLINE_EXCEEDED once
  // `deadline` passes with the queue still empty. A deadline of
  // time_point::max() waits forever (equivalent to pop()). Enforces the
  // same single-consumer contract as pop().
  Result<MailItem> pop_until(std::chrono::steady_clock::time_point deadline);

  // Duration flavour of pop_until.
  Result<MailItem> wait_for(std::chrono::nanoseconds timeout) {
    if (timeout == std::chrono::nanoseconds::max()) return pop();
    return pop_until(std::chrono::steady_clock::now() + timeout);
  }

  // Non-blocking variant; returns nullopt when empty.
  std::optional<MailItem> try_pop();

  // Wakes all waiters; subsequent pushes fail, pops drain then fail.
  void close();

  [[nodiscard]] bool closed() const;
  [[nodiscard]] std::size_t size() const;

 private:
  Status push_item(MailItem item);

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<MailItem> queue_;
  bool closed_ = false;
  bool consumer_blocked_ = false;  // a pop()/pop_until() waits on cv_
};

}  // namespace srpc
