#include "net/shm_arena.hpp"

#include <mutex>
#include <unordered_map>
#include <utility>

namespace srpc {

// Live-arena registry: maps arena_id to its state so a socket frame's
// descriptor can be redeemed by id alone. Weak pointers — a destroyed
// World's arena drops out and late claims fail cleanly.
namespace {
std::mutex g_registry_mu;
std::uint32_t g_next_arena_id = 1;
std::unordered_map<std::uint32_t, std::weak_ptr<ShmArena::State>>* g_registry;
}  // namespace

struct ShmArena::State {
  explicit State(std::size_t cap) : capacity(cap) {}

  mutable std::mutex mu;
  const std::size_t capacity;
  std::uint32_t arena_id = 0;
  std::uint64_t next_region = 1;
  std::uint64_t next_ticket = 1;
  ShmArenaStats stats;
  // Views parked while their descriptor crosses a socket frame.
  std::unordered_map<std::uint64_t, PayloadView> stashed;

  void on_release(std::size_t n) {
    std::lock_guard<std::mutex> lock(mu);
    ++stats.regions_released;
    --stats.regions_live;
    stats.bytes_live -= n;
  }
};

ShmArena::ShmArena(std::size_t capacity_bytes)
    : state_(std::make_shared<State>(capacity_bytes)) {
  std::lock_guard<std::mutex> lock(g_registry_mu);
  if (g_registry == nullptr) {
    g_registry =
        new std::unordered_map<std::uint32_t, std::weak_ptr<State>>();
  }
  state_->arena_id = g_next_arena_id++;
  (*g_registry)[state_->arena_id] = state_;
}

ShmArena::~ShmArena() {
  std::lock_guard<std::mutex> lock(g_registry_mu);
  if (g_registry != nullptr) g_registry->erase(state_->arena_id);
}

std::uint32_t ShmArena::id() const noexcept { return state_->arena_id; }

std::size_t ShmArena::capacity() const noexcept { return state_->capacity; }

ShmArenaStats ShmArena::stats() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->stats;
}

Result<PayloadView> ShmArena::publish(std::vector<std::uint8_t>&& bytes) {
  const std::size_t n = bytes.size();
  PayloadView view;
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    // Budget check happens before the move: on failure the caller's vector
    // is untouched and it re-encodes nothing — the byte lane just keeps it.
    if (state_->stats.bytes_live + n > state_->capacity) {
      ++state_->stats.publish_failures;
      return resource_exhausted("shm arena full (" +
                                std::to_string(state_->stats.bytes_live) +
                                " live + " + std::to_string(n) + " > " +
                                std::to_string(state_->capacity) + ")");
    }
    ++state_->stats.regions_published;
    ++state_->stats.regions_live;
    state_->stats.bytes_live += n;
    if (state_->stats.bytes_live > state_->stats.peak_bytes_live) {
      state_->stats.peak_bytes_live = state_->stats.bytes_live;
    }
    view.arena_id = state_->arena_id;
    view.region = state_->next_region++;
  }
  // The deleter is the release edge: it fires from whichever thread drops
  // the last pin (worker, mailbox teardown, or a fault-dropped message).
  auto* region = new std::vector<std::uint8_t>(std::move(bytes));
  std::weak_ptr<State> weak = state_;
  view.hold = std::shared_ptr<const std::vector<std::uint8_t>>(
      region, [weak, n](const std::vector<std::uint8_t>* p) {
        if (auto st = weak.lock()) st->on_release(n);
        delete p;
      });
  view.offset = 0;
  view.len = static_cast<std::uint32_t>(n);
  return view;
}

namespace {
std::shared_ptr<ShmArena::State> find_arena(std::uint32_t arena_id) {
  std::lock_guard<std::mutex> lock(g_registry_mu);
  if (g_registry == nullptr) return nullptr;
  auto it = g_registry->find(arena_id);
  return it != g_registry->end() ? it->second.lock() : nullptr;
}
}  // namespace

Result<std::uint64_t> ShmArena::stash(PayloadView view) {
  std::shared_ptr<State> state = find_arena(view.arena_id);
  if (!state) {
    return not_found("shm stash: arena " + std::to_string(view.arena_id) +
                     " is gone");
  }
  std::lock_guard<std::mutex> lock(state->mu);
  const std::uint64_t ticket = state->next_ticket++;
  state->stashed.emplace(ticket, std::move(view));
  ++state->stats.stashed_inflight;
  return ticket;
}

Result<PayloadView> ShmArena::claim(std::uint32_t arena_id,
                                    std::uint64_t ticket) {
  std::shared_ptr<State> state = find_arena(arena_id);
  if (!state) {
    return not_found("shm claim: arena " + std::to_string(arena_id) +
                     " is gone");
  }
  std::lock_guard<std::mutex> lock(state->mu);
  auto it = state->stashed.find(ticket);
  if (it == state->stashed.end()) {
    return not_found("shm claim: ticket " + std::to_string(ticket) +
                     " unknown or already claimed");
  }
  PayloadView view = std::move(it->second);
  state->stashed.erase(it);
  --state->stats.stashed_inflight;
  return view;
}

}  // namespace srpc
