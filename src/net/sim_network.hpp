// SimNetwork — the simulated 10 Mbps Ethernet connecting address spaces.
//
// Delivery is immediate (an in-process mailbox push); *cost* is charged to
// the world's VirtualClock per the CostModel. Because an RPC session has a
// single active thread, charges are sequential and the resulting virtual
// timeline is deterministic — benches report it as the paper reported
// wall-clock seconds.
//
// SimNetwork also keeps per-message-type counters; Figure 5 ("number of
// callbacks") is read straight off these.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "common/virtual_clock.hpp"
#include "net/cost_model.hpp"
#include "net/transport.hpp"

namespace srpc {

struct NetworkStats {
  std::uint64_t messages = 0;
  std::uint64_t wire_bytes = 0;
  // Indexed by MessageType's underlying value.
  std::array<std::uint64_t, 32> messages_by_type{};
  std::array<std::uint64_t, 32> bytes_by_type{};

  [[nodiscard]] std::uint64_t count(MessageType t) const noexcept {
    return messages_by_type[static_cast<std::size_t>(t)];
  }
  [[nodiscard]] std::uint64_t bytes(MessageType t) const noexcept {
    return bytes_by_type[static_cast<std::size_t>(t)];
  }
};

class SimNetwork final : public Transport {
 public:
  explicit SimNetwork(CostModel cost = CostModel::sparc_ethernet()) : cost_(cost) {}

  // Registers a space's mailbox. Not thread-safe against concurrent send();
  // worlds attach all spaces before traffic starts.
  void attach(SpaceId space, Mailbox* mailbox);
  void detach(SpaceId space);

  Status send(Message msg) override;

  // Charges the MMU access-violation cost (called by the cache manager for
  // every fault taken on a protected page).
  void charge_fault() noexcept { clock_.advance(cost_.per_fault_ns); }

  [[nodiscard]] VirtualClock& clock() noexcept { return clock_; }
  [[nodiscard]] const CostModel& cost_model() const noexcept { return cost_; }

  [[nodiscard]] NetworkStats stats() const;
  void reset_stats();

 private:
  CostModel cost_;
  VirtualClock clock_;
  std::unordered_map<SpaceId, Mailbox*> mailboxes_;
  mutable std::mutex stats_mutex_;
  NetworkStats stats_;
};

}  // namespace srpc
