// SimNetwork — the simulated 10 Mbps Ethernet connecting address spaces.
//
// Delivery is immediate (an in-process mailbox push); *cost* is charged to
// the world's VirtualClock per the CostModel, split so pipelined requests
// can genuinely overlap:
//   - send-side marshal is CPU work on the sender: advance() at send();
//   - wire occupancy is serialized on the shared Ethernet: each message
//     departs when both the sender is done encoding and the link is free
//     (link_free_ns_), then holds the link for its transmission time;
//   - fixed latency and receive-side unmarshal are charged on the message's
//     arrival timestamp (arrive_ns); the receiving endpoint advance_to()s
//     the clock when it dequeues the message.
// For a blocking request/reply chain this decomposition telescopes to
// exactly the old per-message advance(message_cost(bytes)) — sequential
// benches and tests see identical virtual time — but N requests in flight
// now share the latency term instead of paying it N times. Charging the
// receive-side unmarshal on the arrival edge models distinct receiving
// CPUs; for a fan-in of replies to one space it slightly under-charges
// that space (bounded by the overlapped replies' marshal bytes).
//
// SimNetwork also keeps per-message-type counters; Figure 5 ("number of
// callbacks") is read straight off these.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "common/virtual_clock.hpp"
#include "net/cost_model.hpp"
#include "net/transport.hpp"

namespace srpc {

struct NetworkStats {
  std::uint64_t messages = 0;
  std::uint64_t wire_bytes = 0;
  // Indexed by MessageType's underlying value.
  std::array<std::uint64_t, 32> messages_by_type{};
  std::array<std::uint64_t, 32> bytes_by_type{};

  [[nodiscard]] std::uint64_t count(MessageType t) const noexcept {
    return messages_by_type[static_cast<std::size_t>(t)];
  }
  [[nodiscard]] std::uint64_t bytes(MessageType t) const noexcept {
    return bytes_by_type[static_cast<std::size_t>(t)];
  }
};

class SimNetwork final : public Transport {
 public:
  explicit SimNetwork(CostModel cost = CostModel::sparc_ethernet()) : cost_(cost) {}

  // Registers a space's mailbox. Not thread-safe against concurrent send();
  // worlds attach all spaces before traffic starts.
  void attach(SpaceId space, Mailbox* mailbox);
  void detach(SpaceId space);

  Status send(Message&& msg) override;

  // Charges the MMU access-violation cost (called by the cache manager for
  // every fault taken on a protected page).
  void charge_fault() noexcept { clock_.advance(cost_.per_fault_ns); }

  [[nodiscard]] VirtualClock& clock() noexcept { return clock_; }
  [[nodiscard]] const CostModel& cost_model() const noexcept { return cost_; }

  [[nodiscard]] NetworkStats stats() const;
  void reset_stats();

 private:
  CostModel cost_;
  VirtualClock clock_;
  std::unordered_map<SpaceId, Mailbox*> mailboxes_;
  mutable std::mutex stats_mutex_;
  NetworkStats stats_;
  std::uint64_t link_free_ns_ = 0;  // shared Ethernet is busy until then
};

}  // namespace srpc
