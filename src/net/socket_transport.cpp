#include "net/socket_transport.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/logging.hpp"
#include "rpc/wire.hpp"

namespace srpc {

SocketHub::~SocketHub() { stop(); }

Status SocketHub::attach(SpaceId space, Mailbox* mailbox) {
  if (running_.load()) {
    return failed_precondition("attach after start()");
  }
  if (endpoints_.contains(space)) {
    return already_exists("space " + std::to_string(space) + " already attached");
  }
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    return internal_error(std::string("socketpair: ") + std::strerror(errno));
  }
  auto ep = std::make_unique<Endpoint>();
  ep->space_fd = fds[0];
  ep->hub_fd = fds[1];
  ep->mailbox = mailbox;
  endpoints_.emplace(space, std::move(ep));
  return Status::ok();
}

Status SocketHub::start() {
  if (running_.exchange(true)) {
    return failed_precondition("hub already started");
  }
  for (auto& [space, ep] : endpoints_) {
    ep->reader = std::thread([this, e = ep.get()] { reader_loop(*e); });
  }
  switch_thread_ = std::thread([this] { switch_loop(); });
  return Status::ok();
}

void SocketHub::stop() {
  if (stopped_) return;
  stopped_ = true;
  running_.store(false);
  for (auto& [space, ep] : endpoints_) {
    // shutdown() (not close()) wakes threads blocked in read().
    ::shutdown(ep->space_fd, SHUT_RDWR);
    ::shutdown(ep->hub_fd, SHUT_RDWR);
  }
  if (switch_thread_.joinable()) switch_thread_.join();
  for (auto& [space, ep] : endpoints_) {
    if (ep->reader.joinable()) ep->reader.join();
    ::close(ep->space_fd);
    ::close(ep->hub_fd);
  }
}

Status SocketHub::send(Message&& msg) {
  if (!running_.load()) {
    return unavailable("hub not running");
  }
  auto it = endpoints_.find(msg.from);
  if (it == endpoints_.end()) {
    return not_found("send from unknown space " + std::to_string(msg.from));
  }
  if (!endpoints_.contains(msg.to)) {
    return not_found("send to unknown space " + std::to_string(msg.to));
  }
  // One writer at a time per socket is all we need; a single hub-wide lock
  // keeps it simple (traffic over this transport is test-scale).
  std::lock_guard<std::mutex> lock(send_mutex_);
  return write_frame(it->second->space_fd, msg);
}

void SocketHub::switch_loop() {
  std::vector<pollfd> fds;
  std::vector<Endpoint*> eps;
  for (auto& [space, ep] : endpoints_) {
    fds.push_back({ep->hub_fd, POLLIN, 0});
    eps.push_back(ep.get());
  }
  while (running_.load()) {
    const int n = ::poll(fds.data(), fds.size(), 100 /*ms*/);
    if (n < 0) {
      if (errno == EINTR) continue;
      SRPC_ERROR << "hub poll: " << std::strerror(errno);
      return;
    }
    if (n == 0) continue;
    for (std::size_t i = 0; i < fds.size(); ++i) {
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      auto msg = read_frame(fds[i].fd);
      if (!msg) {
        if (!running_.load()) return;
        SRPC_DEBUG << "hub: endpoint read ended: " << msg.status().to_string();
        fds[i].events = 0;  // stop polling this endpoint
        continue;
      }
      auto dest = endpoints_.find(msg.value().to);
      if (dest == endpoints_.end()) {
        SRPC_WARN << "hub: dropping frame to unknown space " << msg.value().to;
        continue;
      }
      Status s = write_frame(dest->second->hub_fd, msg.value());
      if (!s.is_ok() && running_.load()) {
        SRPC_WARN << "hub: forward failed: " << s.to_string();
      }
    }
  }
}

void SocketHub::reader_loop(Endpoint& ep) {
  while (running_.load()) {
    auto msg = read_frame(ep.space_fd);
    if (!msg) {
      if (running_.load()) {
        SRPC_DEBUG << "reader: " << msg.status().to_string();
      }
      return;
    }
    Status s = ep.mailbox->push(std::move(msg).value());
    if (!s.is_ok()) return;  // mailbox closed: space is shutting down
  }
}

}  // namespace srpc
