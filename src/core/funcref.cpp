#include "core/funcref.hpp"

namespace srpc {

Result<ByteBuffer> invoke_raw(Runtime& rt, const FuncRef& ref, ByteBuffer args,
                              std::span<const std::uint64_t> pointer_roots) {
  if (ref.is_null()) {
    return invalid_argument("invoke through null function reference");
  }
  if (ref.space != rt.id()) {
    return rt.call_raw(ref.space, ref.name, std::move(args), pointer_roots);
  }
  // Local reference: dispatch directly to the binding; no wire, no
  // coherency traffic (the data is already here).
  const RawHandler* handler = rt.services().find(ref.name);
  if (handler == nullptr) {
    return not_found("no local procedure bound as '" + ref.name + "'");
  }
  CallContext ctx{rt, rt.current_session(), rt.id()};
  ByteBuffer results;
  std::vector<std::uint64_t> result_roots;
  SRPC_RETURN_IF_ERROR((*handler)(ctx, args, results, result_roots));
  results.reset_cursor();
  return results;
}

}  // namespace srpc
