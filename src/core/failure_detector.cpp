#include "core/failure_detector.hpp"

#include <algorithm>

namespace srpc {

std::string_view to_string(PeerHealth h) noexcept {
  switch (h) {
    case PeerHealth::kAlive:
      return "ALIVE";
    case PeerHealth::kSuspect:
      return "SUSPECT";
    case PeerHealth::kDead:
      return "DEAD";
    case PeerHealth::kRejoining:
      return "REJOINING";
  }
  return "UNKNOWN";
}

void FailureDetector::note_contact(SpaceId peer, std::uint64_t vnow_ns) {
  std::lock_guard<std::mutex> lock(mutex_);
  PeerState& st = peers_[peer];
  if (st.health == PeerHealth::kDead) return;  // dead is terminal
  st.health = PeerHealth::kAlive;
  st.consecutive_misses = 0;
  if (vnow_ns > st.last_contact_ns) st.last_contact_ns = vnow_ns;
}

PeerHealth FailureDetector::note_miss(SpaceId peer) {
  std::lock_guard<std::mutex> lock(mutex_);
  PeerState& st = peers_[peer];
  if (st.health == PeerHealth::kDead) return PeerHealth::kDead;
  ++st.consecutive_misses;
  if (st.consecutive_misses >= options_.dead_after) {
    st.health = PeerHealth::kDead;
  } else if (st.consecutive_misses >= options_.suspect_after) {
    st.health = PeerHealth::kSuspect;
  }
  return st.health;
}

void FailureDetector::mark_suspect(SpaceId peer) {
  std::lock_guard<std::mutex> lock(mutex_);
  PeerState& st = peers_[peer];
  if (st.health == PeerHealth::kDead) return;
  st.health = PeerHealth::kSuspect;
  if (st.consecutive_misses < options_.suspect_after) {
    st.consecutive_misses = options_.suspect_after;
  }
}

bool FailureDetector::mark_dead(SpaceId peer) {
  std::lock_guard<std::mutex> lock(mutex_);
  PeerState& st = peers_[peer];
  if (st.health == PeerHealth::kDead) return false;
  st.health = PeerHealth::kDead;
  return true;
}

void FailureDetector::note_rejoin(SpaceId peer) {
  std::lock_guard<std::mutex> lock(mutex_);
  PeerState& st = peers_[peer];
  if (st.health != PeerHealth::kDead) return;  // only the dead rejoin
  st.health = PeerHealth::kRejoining;
  st.consecutive_misses = 0;
}

PeerHealth FailureDetector::health(SpaceId peer) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = peers_.find(peer);
  return it == peers_.end() ? PeerHealth::kAlive : it->second.health;
}

std::uint64_t FailureDetector::last_contact_ns(SpaceId peer) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = peers_.find(peer);
  return it == peers_.end() ? 0 : it->second.last_contact_ns;
}

std::vector<FailureDetector::PeerSnapshot> FailureDetector::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<PeerSnapshot> out;
  out.reserve(peers_.size());
  for (const auto& [id, st] : peers_) {
    out.push_back({id, st.health, st.consecutive_misses, st.last_contact_ns});
  }
  std::sort(out.begin(), out.end(),
            [](const PeerSnapshot& a, const PeerSnapshot& b) {
              return a.peer < b.peer;
            });
  return out;
}

std::vector<SpaceId> FailureDetector::dead_peers() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SpaceId> out;
  for (const auto& [id, st] : peers_) {
    if (st.health == PeerHealth::kDead) out.push_back(id);
  }
  return out;
}

}  // namespace srpc
