#include "core/address_space.hpp"

namespace srpc {

Status AddressSpace::start() {
  if (started_) {
    return failed_precondition("address space already started");
  }
  SRPC_RETURN_IF_ERROR(runtime_->init());
  worker_ = std::thread([this] { runtime_->serve_forever(); });
  started_ = true;
  stopped_ = false;
  return Status::ok();
}

void AddressSpace::shutdown() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  runtime_->mailbox().close();
  if (worker_.joinable()) worker_.join();
}

void AddressSpace::halt() {
  if (!started_ || stopped_) return;
  runtime_->mailbox().close();
  if (worker_.joinable()) worker_.join();
  // Restartable, unlike shutdown(): start() after reincarnate() spins up
  // the successor incarnation's worker.
  started_ = false;
}

Status AddressSpace::reincarnate() {
  if (started_ && !stopped_) {
    return failed_precondition("halt the space before reincarnating");
  }
  // The dead incarnation keeps its heap storage mapped (zombie): peers
  // hold long pointers into it, and the successor's log replay restore()s
  // the exact address ranges.
  zombies_.push_back(std::move(runtime_));
  runtime_ = make_runtime();
  started_ = false;
  stopped_ = false;
  return Status::ok();
}

}  // namespace srpc
