#include "core/address_space.hpp"

namespace srpc {

Status AddressSpace::start() {
  if (started_) {
    return failed_precondition("address space already started");
  }
  SRPC_RETURN_IF_ERROR(runtime_->init());
  worker_ = std::thread([this] { runtime_->serve_forever(); });
  started_ = true;
  return Status::ok();
}

void AddressSpace::shutdown() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  runtime_->mailbox().close();
  if (worker_.joinable()) worker_.join();
}

}  // namespace srpc
