#include "core/runtime.hpp"

#include <algorithm>
#include <cstring>
#include <map>
#include <set>

#include "common/logging.hpp"
#include "core/graph_payload.hpp"
#include "xdr/xdr_decoder.hpp"
#include "xdr/xdr_encoder.hpp"

namespace srpc {

// ---------------------------------------------------------------------------
// Wire payload layouts (all sections XDR):
//   CALL        proc string | modified-set | closures | marshalled args
//   RETURN      modified-set | closures | marshalled results
//   FETCH       budget u64 | wide u32 | base u64 | count u32
//               | count x (delta u32 | addr u64)     (addresses only: the
//               home resolves types from its own heap; compactness matters
//               because every fault re-requests a whole page of entries)
//   FETCH_REPLY count u32 | count x graph payload
//   ALLOC_BATCH nalloc u32 | nalloc x {provisional u64, type u32}
//               | nfree u32 | nfree x {addr u64}
//   ALLOC_REPLY n u32 | n x {provisional u64, real u64}
//   WRITE_BACK  modified-set            (acked empty)
//   WB_PREPARE  epoch u64 | modified-set  (acked empty; staged, not applied)
//   WB_COMMIT   epoch u64               (acked empty; applies the stage)
//   WB_ABORT    epoch u64               (acked empty; discards the stage)
//   INVALIDATE  empty or aborted u32    (acked empty; empty = normal end)
//   PING        empty                   (PONG, empty)
//   DEREF       long pointer
//   DEREF_REPLY canonical value bytes
//   ERROR       code u32 | message string
// where closures are "count u32 | count x graph payload" sections and
// modified-set is either that same legacy layout or the MODIFIED_DELTA
// format (rpc/wire.hpp), auto-detected by its leading magic.
// ---------------------------------------------------------------------------

Runtime::Runtime(SpaceId self, std::string name, const ArchModel& arch,
                 TypeRegistry& registry, const LayoutEngine& layouts,
                 HostTypeMap& host_types, Transport& transport, SimNetwork* sim,
                 CacheOptions cache_options,
                 std::function<std::vector<SpaceId>()> directory,
                 TimeoutConfig timeouts,
                 std::function<std::uint32_t(SpaceId)> peer_caps)
    : self_(self),
      name_(std::move(name)),
      arch_(arch),
      registry_(registry),
      layouts_(layouts),
      codec_{registry, layouts},
      host_types_(host_types),
      sim_(sim),
      directory_(std::move(directory)),
      peer_caps_(std::move(peer_caps)),
      pointer_index_(registry, layouts, arch),
      endpoint_(self, transport, mailbox_),
      heap_(registry, layouts, arch, self),
      cache_(registry, layouts, arch, self, cache_options, *this),
      allocator_(cache_),
      packer_(codec_, arch, *this),
      timeouts_(timeouts),
      telemetry_(self, name_),
      cache_options_(cache_options) {
  full_dispatcher_ = [this](Message msg) { return dispatch(std::move(msg)); };
  if (sim_ != nullptr) {
    telemetry_.set_clock([this] { return vnow_ns(); });
    // The simulated wire stamps arrival timestamps instead of charging the
    // whole message cost at send (that is what lets pipelined requests
    // overlap their latency); the receive edge lands here, when the worker
    // dequeues the message.
    endpoint_.set_delivery_hook([this](const Message& msg) {
      if (msg.arrive_ns != 0) sim_->clock().advance_to(msg.arrive_ns);
    });
  }
  endpoint_.set_telemetry(&telemetry_);
  cache_.set_telemetry(&telemetry_);
}

Status Runtime::init() { return cache_.init(); }

// ---------------------------------------------------------------------------
// Zero-copy shm payload lane (PROTOCOL.md "Zero-copy payload lane")
// ---------------------------------------------------------------------------

void Runtime::set_shm_arena(ShmArena* arena) {
  shm_arena_ = arena;
  if (arena == nullptr) {
    endpoint_.set_payload_lane({});
    return;
  }
  endpoint_.set_payload_lane([this](Message& msg) { elevate_payload(msg); });
}

void Runtime::elevate_payload(Message& msg) {
  // Retransmits re-enter here with an owned copy of the original bytes and
  // get a fresh region; a message that somehow already carries a view
  // passes through untouched. Empty payloads have nothing to elevate.
  if (msg.shm_backed() || msg.payload.size() == 0) return;
  const std::uint64_t n = msg.payload.size();
  const bool eligible = shm_payload_enabled_ && !msg.payload.borrowed() &&
                        peer_caps_ && (peer_caps_(msg.to) & kCapShmPayload) != 0;
  if (eligible) {
    std::vector<std::uint8_t> bytes = msg.payload.take_bytes();
    auto published = shm_arena_->publish(std::move(bytes));
    if (published) {
      msg.view = std::move(published).value();
      ++stats_.shm_payloads_published;
      telemetry_.count("rpc.bytes_zero_copy", {}, n);
      return;
    }
    // Arena full: `bytes` is untouched (publish checks capacity before
    // adopting), put it back and take the byte lane.
    msg.payload = ByteBuffer(std::move(bytes));
    ++stats_.shm_publish_fallbacks;
    telemetry_.flight().event(FlightEventKind::kArenaPublishFail, vnow_ns(),
                              msg.to, to_string(msg.type),
                              static_cast<std::int64_t>(n), msg.session);
  }
  telemetry_.count("rpc.bytes_copied", {}, n);
}

// ---------------------------------------------------------------------------
// Session-state resolution (multi-session mode)
// ---------------------------------------------------------------------------

SessionState& Runtime::state_for(SessionId id) {
  if (!multi_session_ || id == kNoSession) return ambient_state_;
  SessionState& st = sessions_.open(id);
  if (st.id == kNoSession) st.id = id;
  return st;
}

const SessionState& Runtime::cur_state() const {
  const SessionId id = current_session();
  if (!multi_session_ || id == kNoSession) return ambient_state_;
  const SessionState* st = sessions_.find(id);
  return st != nullptr ? *st : ambient_state_;
}

CacheManager& Runtime::cache_for(SessionId id) {
  if (!multi_session_ || id == kNoSession) return cache_;
  SessionState& st = state_for(id);
  if (!st.cache) {
    st.cache = std::make_unique<CacheManager>(registry_, layouts_, arch_, self_,
                                              cache_options_, *this);
    st.cache->set_telemetry(&telemetry_);
    st.cache->set_session(id);
    // Arena reservation failing is an OOM-class condition; fail loudly
    // rather than silently sharing the default cache across sessions.
    st.cache->init().check();
    st.allocator = std::make_unique<RemoteAllocator>(*st.cache);
  }
  return *st.cache;
}

RemoteAllocator& Runtime::allocator_for(SessionId id) {
  if (!multi_session_ || id == kNoSession) return allocator_;
  (void)cache_for(id);  // materialises the allocator alongside the cache
  return *state_for(id).allocator;
}

CacheManager& Runtime::cache() { return cache_for(current_session()); }

const CacheManager& Runtime::cache() const {
  const SessionId id = current_session();
  if (!multi_session_ || id == kNoSession) return cache_;
  const SessionState* st = sessions_.find(id);
  return (st != nullptr && st->cache) ? *st->cache : cache_;
}

CacheManager* Runtime::cache_owning(const void* p) {
  if (cache_.contains(p)) return &cache_;
  CacheManager* owner = nullptr;
  sessions_.for_each([&](SessionState& st) {
    if (owner == nullptr && st.cache && st.cache->contains(p)) {
      owner = st.cache.get();
    }
  });
  return owner;
}

const CacheManager* Runtime::cache_owning(const void* p) const {
  if (cache_.contains(p)) return &cache_;
  const CacheManager* owner = nullptr;
  sessions_.for_each([&](const SessionState& st) {
    if (owner == nullptr && st.cache && st.cache->contains(p)) {
      owner = st.cache.get();
    }
  });
  return owner;
}

RemoteAllocator* Runtime::allocator_of(const CacheManager* cache) {
  if (cache == &cache_) return &allocator_;
  RemoteAllocator* owner = nullptr;
  sessions_.for_each([&](SessionState& st) {
    if (owner == nullptr && st.cache.get() == cache) {
      owner = st.allocator.get();
    }
  });
  return owner;
}

// ---------------------------------------------------------------------------
// Pointer translation (heap + data allocation table)
// ---------------------------------------------------------------------------

Result<LongPointer> Runtime::unswizzle(std::uint64_t ordinary, TypeId pointee) {
  const void* addr = reinterpret_cast<const void*>(ordinary);
  if (const CacheManager* owner = cache_owning(addr)) {
    return owner->unswizzle(addr);
  }
  const ManagedHeap::Record* record = heap_.find(addr);
  if (record == nullptr) {
    return invalid_argument(
        "pointer 0x" + std::to_string(ordinary) +
        " references memory outside the system-controlled heap (paper §3.2: "
        "all shared data must live in the managed heap)");
  }
  const std::uint64_t base = reinterpret_cast<std::uint64_t>(record->base);
  if (ordinary == base) {
    return LongPointer{self_, ordinary, record->type};
  }
  // Interior pointer: nameable only for array elements.
  const TypeDescriptor& desc = registry_.get(record->type);
  if (desc.kind() != TypeKind::kArray) {
    (void)pointee;
    return unimplemented("interior pointer into non-array heap datum");
  }
  const std::uint64_t elem_size = layouts_.size_of(arch_, desc.element());
  if ((ordinary - base) % elem_size != 0) {
    return invalid_argument("interior pointer not on an element boundary");
  }
  return LongPointer{self_, ordinary, desc.element()};
}

Result<std::uint64_t> Runtime::swizzle(const LongPointer& pointer, TypeId pointee) {
  if (pointer.space == self_) {
    // Home data: the long pointer's address *is* the local ordinary pointer.
    if (heap_.find(reinterpret_cast<const void*>(pointer.address)) == nullptr) {
      return invalid_argument("incoming pointer to unknown home datum: " +
                              pointer.to_string());
    }
    return pointer.address;
  }
  return cache().swizzle(pointer, pointee);
}

Result<std::uint64_t> Runtime::swizzle_home(const LongPointer& pointer, TypeId pointee) {
  if (pointer.space != self_) {
    return internal_error("swizzle_home with foreign pointer " + pointer.to_string());
  }
  return swizzle(pointer, pointee);
}

Result<LocalDataView::DatumView> Runtime::view_local(std::uint64_t local_addr) const {
  const void* addr = reinterpret_cast<const void*>(local_addr);
  if (const CacheManager* owner = cache_owning(addr)) {
    const AllocationEntry* entry = owner->lookup_local(addr);
    if (entry == nullptr) {
      return not_found("cache address with no allocation entry");
    }
    DatumView view;
    view.id = entry->pointer;
    view.image = owner->is_resident(entry->local) ? entry->local : nullptr;
    return view;
  }
  const ManagedHeap::Record* record = heap_.find(addr);
  if (record == nullptr) {
    return not_found("address outside heap and cache");
  }
  DatumView view;
  view.id = LongPointer{self_, reinterpret_cast<std::uint64_t>(record->base),
                        record->type};
  view.image = record->base;
  return view;
}

// ---------------------------------------------------------------------------
// Coherency sections (paper §3.4)
// ---------------------------------------------------------------------------

namespace {

// Receives one graph payload of *modified* objects: applied in place at
// home, overwritten/overlaid in the cache elsewhere (the sender was the
// single active thread, so incoming values always win).
class IncorporateSink final : public GraphSink {
 public:
  explicit IncorporateSink(Runtime& rt) : rt_(rt) {}

  Result<void*> prepare(std::uint32_t index, const LongPointer& id) override {
    if (locals_.size() <= index) locals_.resize(index + 1, 0);
    if (id.space == rt_.id()) {
      const ManagedHeap::Record* record = rt_.heap().find_base(id.address);
      if (record == nullptr) {
        // Write-back to data freed at home (free-while-cached): tolerated,
        // dropped. See DESIGN.md §6.
        SRPC_WARN << "dropping modified datum for unknown home address "
                  << id.to_string();
        locals_[index] = id.address;
        return static_cast<void*>(nullptr);
      }
      locals_[index] = id.address;
      // The value arriving for our home datum was produced elsewhere: keep
      // it in the travelling set so other spaces' stale caches hear of it.
      rt_.note_home_update(id);
      return static_cast<void*>(record->base);
    }
    auto dest = rt_.cache().prepare_incoming_dirty(id);
    if (!dest) return dest.status();
    const AllocationEntry* entry = rt_.cache().lookup(id);
    if (entry == nullptr) {
      return internal_error("incoming dirty datum vanished: " + id.to_string());
    }
    locals_[index] = reinterpret_cast<std::uint64_t>(entry->local);
    return dest;
  }

  Result<std::uint64_t> address_of(std::uint32_t index) override {
    if (index >= locals_.size() || locals_[index] == 0) {
      return internal_error("address_of before prepare");
    }
    return locals_[index];
  }

  Result<std::uint64_t> swizzle(const LongPointer& target, TypeId pointee) override {
    return rt_.swizzle(target, pointee);
  }

 private:
  Runtime& rt_;
  std::vector<std::uint64_t> locals_;
};

}  // namespace

void Runtime::note_home_update(const LongPointer& id) {
  SessionState& st = cur_state();
  if (!st.updates.insert(id).second) return;
  // First remote update this session: the current heap bytes are the
  // baseline every later delta is expressed against. The caller has not
  // applied the incoming value yet.
  const ManagedHeap::Record* record = heap_.find_base(id.address);
  if (record != nullptr) {
    st.home_twins[id].assign(record->base, record->base + record->size);
  }
}

CacheManager::ModifiedDatum Runtime::home_modified_datum(
    const LongPointer& id, const ManagedHeap::Record& record) const {
  CacheManager::ModifiedDatum d;
  d.id = LongPointer{self_, id.address, record.type};
  d.image = record.base;
  d.size = static_cast<std::uint32_t>(record.size);
  const auto& home_twins = cur_state().home_twins;
  const auto twin = home_twins.find(id);
  if (twin != home_twins.end() && twin->second.size() == record.size) {
    d.has_baseline = true;
    diff_ranges(record.base, twin->second.data(),
                static_cast<std::uint32_t>(record.size), 0,
                /*merge_gap=*/8, d.dirty);
  }
  return d;
}

void Runtime::clear_ship_state() { cur_state().clear_ship(); }

void Runtime::commit_shipped(SpaceId dest,
                             const std::vector<ShippedRecord>& shipped) {
  auto& ship = cur_state().ship;
  for (const ShippedRecord& s : shipped) {
    ship[s.id].peer_fingerprint[dest] = s.fingerprint;
  }
}

Status Runtime::attach_modified_set(ByteBuffer& out, SpaceId dest,
                                    bool write_back, std::size_t* encoded,
                                    std::vector<ShippedRecord>* shipped) {
  SessionState& sst = cur_state();
  ++sst.ship_epoch;
  const bool dest_takes_deltas =
      modified_deltas_enabled_ && peer_caps_ &&
      (peer_caps_(dest) & kCapModifiedDelta) != 0;
  // A write-back toward a recovery-capable home doubles as that home's redo
  // record: its WAL replay restores the pre-session heap, so the staged set
  // must carry EVERY modified object homed there — including content the
  // home already observed on an earlier hop. Re-applying identical bytes is
  // idempotent; skipping them would leave the stage incomplete.
  const bool self_contained_redo =
      write_back && peer_caps_ && (peer_caps_(dest) & kCapIncarnation) != 0;

  if (!dest_takes_deltas) {
    // Non-capable peer: the original page-granular protocol. Every object
    // on a dirty page travels as a full image — no baseline diffing, no
    // cross-hop suppression — so both sides agree on what a modified set
    // means without the MODIFIED_DELTA capability.
    std::map<SpaceId, std::vector<GraphObjectRef>> groups;
    std::size_t emitted = 0;
    for (const auto& m : cache().collect_modified()) {
      if (write_back && m.id.space != dest) continue;
      if (is_provisional_address(m.id.address)) {
        return internal_error("provisional identity in modified set: " +
                              m.id.to_string() + " (alloc batch not flushed?)");
      }
      groups[m.id.space].push_back(GraphObjectRef{m.id.address, m.id.type, m.image});
      ++emitted;
    }
    if (!write_back) {
      for (auto it = sst.updates.begin(); it != sst.updates.end();) {
        const ManagedHeap::Record* record = heap_.find_base(it->address);
        if (record == nullptr) {
          it = sst.updates.erase(it);  // freed since: drop from the set
          continue;
        }
        groups[self_].push_back(GraphObjectRef{it->address, record->type, record->base});
        ++emitted;
        ++it;
      }
    }
    xdr::Encoder enc(out);
    const std::size_t before = out.size();
    enc.put_u32(static_cast<std::uint32_t>(groups.size()));
    for (const auto& [space, refs] : groups) {
      SRPC_RETURN_IF_ERROR(
          encode_graph_payload(codec_, arch_, space, refs, *this, out));
    }
    stats_.modified_bytes_shipped += out.size() - before;
    if (encoded != nullptr) *encoded = emitted;
    return Status::ok();
  }

  // Gather the candidate set: the cache's modified data, plus (except in
  // write-back mode, where every datum is already expressed against its
  // home) our own home data that remote activity modified this session.
  std::vector<CacheManager::ModifiedDatum> candidates;
  for (auto& d : cache().collect_modified_deltas()) {
    if (write_back && d.id.space != dest) continue;
    candidates.push_back(std::move(d));
  }
  if (!write_back) {
    for (auto it = sst.updates.begin(); it != sst.updates.end();) {
      const ManagedHeap::Record* record = heap_.find_base(it->address);
      if (record == nullptr) {
        it = sst.updates.erase(it);  // freed since: drop from the set
        continue;
      }
      candidates.push_back(home_modified_datum(*it, *record));
      ++it;
    }
  }

  struct DeltaItem {
    LongPointer id;
    std::uint64_t epoch = 0;
    std::vector<ByteRange> ranges;
    const std::uint8_t* image = nullptr;
  };
  std::map<SpaceId, std::vector<GraphObjectRef>> groups;
  std::vector<DeltaItem> deltas;
  std::size_t emitted = 0;

  for (auto& d : candidates) {
    if (is_provisional_address(d.id.address)) {
      return internal_error("provisional identity in modified set: " +
                            d.id.to_string() + " (alloc batch not flushed?)");
    }
    ShipState& st = sst.ship[d.id];
    // Effective ranges: what differs from the baseline now, plus whatever
    // was already shipped (receivers hold those bytes; a revert to the
    // baseline value must still travel).
    std::vector<ByteRange> eff;
    if (d.has_baseline) {
      eff = d.dirty;
      eff.insert(eff.end(), st.ever_shipped.begin(), st.ever_shipped.end());
      merge_ranges(eff);
      if (eff.empty()) continue;  // dirtied page, identical bytes: nothing new
    } else {
      eff.assign(1, ByteRange{0, d.size});
    }
    const std::uint64_t fp = fingerprint_ranges(d.image, eff);
    if (fp != st.fingerprint) {
      st.fingerprint = fp;
      st.epoch = sst.ship_epoch;
    }
    if (const auto peer = st.peer_fingerprint.find(dest);
        !self_contained_redo && peer != st.peer_fingerprint.end() &&
        peer->second == fp) {
      ++stats_.deltas_skipped_by_epoch;  // dest already holds this content
      continue;
    }

    bool as_delta = dest_takes_deltas && d.has_baseline;
    if (as_delta) {
      // Raw ranges ship local images verbatim; swizzled local pointers are
      // meaningless elsewhere, so pointer-touching deltas take the graph
      // encoder instead.
      auto pointer_bytes = pointer_index_.pointer_ranges(d.id.type);
      if (!pointer_bytes) return pointer_bytes.status();
      if (ranges_intersect(eff, pointer_bytes.value())) {
        as_delta = false;
      } else if (d.complete) {
        // Full-image fallback: past this point the delta costs more wire
        // than simply re-sending the object.
        auto full_cost = graph_object_wire_size(codec_, d.id.type);
        if (full_cost && modified_delta_wire_size(eff) >= full_cost.value()) {
          as_delta = false;
        }
      }
    }
    if (!as_delta && !d.complete) {
      // A partially received overlay cannot be composed into a full image.
      // With world-uniform capability negotiation this only happens if
      // deltas were toggled off mid-session; ship the delta regardless —
      // every receiver in this codebase auto-detects the format.
      SRPC_WARN << name_ << ": partial overlay for " << d.id.to_string()
                << " forced into delta format";
      as_delta = true;
    }

    if (as_delta) {
      deltas.push_back(DeltaItem{d.id, st.epoch, eff, d.image});
    } else {
      groups[d.id.space].push_back(GraphObjectRef{d.id.address, d.id.type, d.image});
    }
    ++emitted;
    if (shipped != nullptr) shipped->push_back(ShippedRecord{d.id, fp});
    if (d.has_baseline) {
      st.ever_shipped.insert(st.ever_shipped.end(), eff.begin(), eff.end());
      merge_ranges(st.ever_shipped);
    } else {
      st.ever_shipped.assign(1, ByteRange{0, d.size});
    }
  }

  xdr::Encoder enc(out);
  const std::size_t before = out.size();
  if (deltas.empty()) {
    // Every surviving candidate fell back to a full image (small objects,
    // pointer-touching writes): the legacy layout says it in fewer bytes.
    enc.put_u32(static_cast<std::uint32_t>(groups.size()));
    for (const auto& [space, refs] : groups) {
      SRPC_RETURN_IF_ERROR(
          encode_graph_payload(codec_, arch_, space, refs, *this, out));
    }
  } else {
    std::uint64_t delta_wire = 0;
    for (const DeltaItem& item : deltas) {
      delta_wire += modified_delta_wire_size(item.ranges);
    }
    enc.reserve(16 + delta_wire);
    enc.put_u32(kModifiedDeltaMagic);
    enc.put_u32(0);  // flags, reserved
    enc.put_u32(static_cast<std::uint32_t>(groups.size()));
    for (const auto& [space, refs] : groups) {
      SRPC_RETURN_IF_ERROR(
          encode_graph_payload(codec_, arch_, space, refs, *this, out));
    }
    enc.put_u32(static_cast<std::uint32_t>(deltas.size()));
    for (const DeltaItem& item : deltas) {
      encode_modified_delta(enc, item.id, item.epoch, item.ranges, item.image);
    }
    stats_.delta_bytes_shipped += delta_wire;
  }
  stats_.modified_bytes_shipped += out.size() - before;
  if (encoded != nullptr) *encoded = emitted;
  return Status::ok();
}

void Runtime::observe_incoming(const LongPointer& id, SpaceId from,
                               std::uint64_t epoch) {
  ShipState& st = cur_state().ship[id];
  if (epoch > st.epoch) st.epoch = epoch;
  // Fingerprint our own post-application image the same way
  // attach_modified_set() will, and credit `from` with it: the sender knows
  // exactly what it sent, so echoing it back is pure waste.
  CacheManager::ModifiedDatum d;
  if (id.space == self_) {
    const ManagedHeap::Record* record = heap_.find_base(id.address);
    if (record == nullptr) return;  // dropped (freed at home)
    d = home_modified_datum(id, *record);
  } else {
    auto datum = cache().modified_datum(id);
    if (!datum) return;  // e.g. skipped object that never landed
    d = std::move(datum).value();
  }
  std::vector<ByteRange> eff;
  if (d.has_baseline) {
    eff = d.dirty;
    eff.insert(eff.end(), st.ever_shipped.begin(), st.ever_shipped.end());
    merge_ranges(eff);
  } else {
    eff.assign(1, ByteRange{0, d.size});
  }
  const std::uint64_t fp = eff.empty() ? 0 : fingerprint_ranges(d.image, eff);
  st.fingerprint = fp;
  st.peer_fingerprint[from] = fp;
}

Status Runtime::apply_delta_entry(const ModifiedDelta& delta) {
  if (delta.id.space == self_) {
    const ManagedHeap::Record* record = heap_.find_base(delta.id.address);
    if (record == nullptr) {
      // Delta for data freed at home (free-while-cached): tolerated,
      // dropped — same policy as the graph-payload path.
      SRPC_WARN << name_ << ": dropping delta for unknown home address "
                << delta.id.to_string();
      return Status::ok();
    }
    if (!delta.ranges.empty() && delta.ranges.back().end() > record->size) {
      return protocol_error("delta range past the end of home datum " +
                            delta.id.to_string());
    }
    note_home_update(delta.id);  // snapshots the pre-application baseline
    const std::uint8_t* src = delta.bytes.data();
    for (const ByteRange& r : delta.ranges) {
      std::memcpy(record->base + r.offset, src, r.len);
      src += r.len;
    }
    return Status::ok();
  }
  return cache().apply_incoming_delta(delta.id, delta.ranges, delta.bytes.data());
}

Status Runtime::apply_modified_set(ByteBuffer& in, SpaceId from) {
  xdr::Decoder dec(in);
  auto first = dec.get_u32();
  if (!first) return first.status();

  std::vector<std::pair<LongPointer, std::uint64_t>> received;  // id, epoch
  auto apply_payloads = [&](std::uint32_t count) -> Status {
    for (std::uint32_t i = 0; i < count; ++i) {
      IncorporateSink sink(*this);
      std::vector<LongPointer> ids;
      SRPC_RETURN_IF_ERROR(decode_graph_payload(codec_, arch_, in, sink, &ids));
      for (const LongPointer& id : ids) received.emplace_back(id, 0);
    }
    return Status::ok();
  };

  if (first.value() == kModifiedDeltaMagic) {
    auto flags = dec.get_u32();
    if (!flags) return flags.status();
    auto nfull = dec.get_u32();
    if (!nfull) return nfull.status();
    SRPC_RETURN_IF_ERROR(apply_payloads(nfull.value()));
    auto ndelta = dec.get_u32();
    if (!ndelta) return ndelta.status();
    for (std::uint32_t i = 0; i < ndelta.value(); ++i) {
      auto delta = decode_modified_delta(dec);
      if (!delta) return delta.status();
      SRPC_RETURN_IF_ERROR(apply_delta_entry(delta.value()));
      received.emplace_back(delta.value().id, delta.value().epoch);
    }
  } else {
    SRPC_RETURN_IF_ERROR(apply_payloads(first.value()));
  }

  for (const auto& [id, epoch] : received) {
    observe_incoming(id, from, epoch);
  }
  return Status::ok();
}

Status Runtime::attach_closures(ByteBuffer& out, std::span<const std::uint64_t> roots) {
  xdr::Encoder enc(out);
  if (roots.empty()) {
    enc.put_u32(0);
    return Status::ok();
  }
  auto packed = packer_.pack(roots, cache().closure_bytes(), /*require_roots=*/false);
  if (!packed) return packed.status();
  enc.put_u32(static_cast<std::uint32_t>(packed.value().groups.size()));
  for (const auto& [space, refs] : packed.value().groups) {
    SRPC_RETURN_IF_ERROR(
        encode_graph_payload(codec_, arch_, space, refs, *this, out));
  }
  return Status::ok();
}

Status Runtime::apply_closures(ByteBuffer& in) {
  xdr::Decoder dec(in);
  auto count = dec.get_u32();
  if (!count) return count.status();
  for (std::uint32_t i = 0; i < count.value(); ++i) {
    SRPC_RETURN_IF_ERROR(cache().incorporate_clean_payload(in));
  }
  return Status::ok();
}

// ---------------------------------------------------------------------------
// Error plumbing
// ---------------------------------------------------------------------------

Status Runtime::send_error(SpaceId to, SessionId session, std::uint64_t seq,
                           const Status& error) {
  Message msg;
  msg.type = MessageType::kError;
  msg.to = to;
  msg.session = session;
  msg.seq = seq;
  xdr::Encoder enc(msg.payload);
  enc.put_u32(static_cast<std::uint32_t>(error.code()));
  enc.put_string(error.message());
  return endpoint_.send(std::move(msg));
}

Status Runtime::decode_error(Message& msg) {
  xdr::Decoder dec(msg.payload);
  auto code = dec.get_u32();
  auto text = code ? dec.get_string() : Result<std::string>(code.status());
  if (!code || !text) {
    return protocol_error("malformed error message");
  }
  return Status(static_cast<StatusCode>(code.value()),
                "remote(" + std::to_string(msg.from) + "): " + text.value());
}

// ---------------------------------------------------------------------------
// Duplicate absorption and session tombstones
// ---------------------------------------------------------------------------

namespace {
constexpr std::size_t kServedRequestWindow = 1024;  // per-peer dedup memory
constexpr std::size_t kDeadSessionWindow = 64;      // remembered tombstones
}  // namespace

bool Runtime::note_duplicate_request(SpaceId from, std::uint64_t seq) {
  ServedRequests& served = served_requests_[from];
  if (served.seen.contains(seq)) return true;
  served.seen.insert(seq);
  served.order.push_back(seq);
  if (served.order.size() > kServedRequestWindow) {
    served.seen.erase(served.order.front());
    served.order.pop_front();
  }
  return false;
}

void Runtime::tombstone_session(SessionId session) {
  if (session == kNoSession || dead_session_set_.contains(session)) return;
  dead_session_set_.insert(session);
  dead_session_order_.push_back(session);
  if (dead_session_order_.size() > kDeadSessionWindow) {
    dead_session_set_.erase(dead_session_order_.front());
    dead_session_order_.pop_front();
  }
}

// ---------------------------------------------------------------------------
// Remote memory management (paper §3.5)
// ---------------------------------------------------------------------------

Result<void*> Runtime::extended_malloc(SpaceId home, TypeId type, std::uint32_t count) {
  if (count == 0) return invalid_argument("extended_malloc: zero count");
  if (home == self_) {
    return heap_.allocate(type, count);
  }
  const TypeId full = count > 1 ? registry_.array_of(type, count) : type;
  auto layout = layouts_.layout_of(arch_, full);
  if (!layout) return layout.status();
  return allocator_for(current_session())
      .allocate(home, full, layout.value()->size, layout.value()->align);
}

Status Runtime::extended_free(void* p) {
  if (p == nullptr) return invalid_argument("extended_free(nullptr)");
  if (CacheManager* owner = cache_owning(p)) {
    const AllocationEntry* entry = owner->lookup_local(p);
    if (entry == nullptr || entry->local != p) {
      return invalid_argument("extended_free: not a datum base address");
    }
    RemoteAllocator* alloc = allocator_of(owner);
    if (alloc == nullptr) {
      return internal_error("cache without a paired allocator");
    }
    return alloc->release(entry->pointer);
  }
  return heap_.free(p);
}

namespace {

// FETCH frame body: budget | wide flag | base | count | count x address
// (u32 deltas off the base unless any pointer needs the wide u64 form).
void encode_fetch_frame(ByteBuffer& out, std::span<const LongPointer> pointers,
                        std::uint64_t closure_budget) {
  xdr::Encoder enc(out);
  enc.put_u64(closure_budget);
  std::uint64_t base = pointers.empty() ? 0 : pointers[0].address;
  bool wide = false;
  for (const LongPointer& p : pointers) base = std::min(base, p.address);
  for (const LongPointer& p : pointers) {
    if (p.address - base > 0xFFFFFFFFULL) {
      wide = true;
      break;
    }
  }
  enc.put_u32(wide ? 1 : 0);
  enc.put_u64(base);
  enc.put_u32(static_cast<std::uint32_t>(pointers.size()));
  for (const LongPointer& p : pointers) {
    if (wide) {
      enc.put_u64(p.address);
    } else {
      enc.put_u32(static_cast<std::uint32_t>(p.address - base));
    }
  }
}

}  // namespace

Status Runtime::prefetch(const void* p, std::uint64_t closure_budget) {
  if (p == nullptr) return invalid_argument("prefetch(nullptr)");
  CacheManager* owner = cache_owning(p);
  if (owner == nullptr) return Status::ok();  // home data: already here
  return owner->prefetch(p, closure_budget);
}

Status Runtime::prefetch_many(std::span<const void* const> pointers,
                              std::uint64_t closure_budget) {
  poll_failures();
  // Route each address to the cache that owns it (session overlays keep
  // separate arenas); home data needs no prefetch.
  std::vector<std::pair<CacheManager*, std::vector<const void*>>> per_cache;
  for (const void* p : pointers) {
    if (p == nullptr) continue;
    CacheManager* owner = cache_owning(p);
    if (owner == nullptr) continue;
    auto it = std::find_if(per_cache.begin(), per_cache.end(),
                           [&](const auto& e) { return e.first == owner; });
    if (it == per_cache.end()) {
      per_cache.push_back({owner, {}});
      it = std::prev(per_cache.end());
    }
    it->second.push_back(p);
  }

  Status failure = Status::ok();
  for (auto& [owner, addrs] : per_cache) {
    const SessionId sid =
        owner->session() != kNoSession ? owner->session() : current_session();
    Status filled = owner->prefetch_many(
        std::span<const void* const>(addrs.data(), addrs.size()),
        [&, owner_cache = owner](std::vector<CacheManager::PrefetchGroup>& groups)
            -> Result<std::vector<ByteBuffer>> {
          return parallel_fetch(*owner_cache, groups, closure_budget, sid);
        });
    if (failure.is_ok() && !filled.is_ok()) failure = filled;
  }
  return failure;
}

Result<std::vector<ByteBuffer>> Runtime::parallel_fetch(
    CacheManager& owner, std::vector<CacheManager::PrefetchGroup>& groups,
    std::uint64_t closure_budget, SessionId session) {
  struct InFlight {
    std::size_t group;
    std::uint64_t seq;
  };
  std::vector<InFlight> inflight;
  inflight.reserve(groups.size());
  Status failure = Status::ok();
  // Ship every frame before collecting anything: the homes serve their
  // FETCHes concurrently, so the wall-clock cost is the slowest single
  // round trip instead of the sum.
  for (std::size_t g = 0; g < groups.size(); ++g) {
    Message msg;
    msg.type = MessageType::kFetch;
    msg.to = groups[g].home;
    msg.session = session;
    msg.seq = endpoint_.next_seq();
    encode_fetch_frame(msg.payload, groups[g].pointers, closure_budget);
    auto issued =
        issue_guarded(std::move(msg), MessageType::kFetchReply,
                      /*idempotent=*/true);
    if (!issued) {
      if (failure.is_ok()) failure = issued.status();
      continue;
    }
    inflight.push_back({g, issued.value()});
  }
  // Collect EVERY in-flight frame, even once a failure is recorded — no
  // slot may leak. Restricted await (nullptr dispatcher) like the fault
  // path: the owning cache is mid-fill and must not be re-entered.
  std::vector<ByteBuffer> replies(groups.size());
  for (const InFlight& f : inflight) {
    auto reply = collect_guarded(f.seq, nullptr);
    if (!reply) {
      if (failure.is_ok()) failure = reply.status();
      continue;
    }
    if (reply.value().type == MessageType::kError) {
      Status err = decode_error(reply.value());
      if (failure.is_ok() && !err.is_ok()) failure = err;
      continue;
    }
    replies[f.group] = std::move(reply.value().payload);
    owner.renew_lease(groups[f.group].home, vnow_ns());
    if (telemetry_.tracing()) {
      telemetry_.annotate("lease renewed: source " +
                          std::to_string(groups[f.group].home));
    }
  }
  if (!failure.is_ok()) return failure;
  return replies;
}

Status Runtime::flush_alloc_batches() {
  const SessionId session = current_session();
  RemoteAllocator* allocator = &allocator_;
  if (multi_session_ && session != kNoSession) {
    // Only flush a session that actually allocated — resolving through
    // allocator_for() here would materialise a cache for every session
    // this space merely serves.
    SessionState* st = sessions_.find(session);
    if (st == nullptr || !st->allocator) return Status::ok();
    allocator = st->allocator.get();
  }
  for (const SpaceId home : allocator->pending_homes()) {
    RemoteAllocator::Batch batch = allocator->take_batch(home);
    Message msg;
    msg.type = MessageType::kAllocBatch;
    msg.to = home;
    msg.session = session;
    msg.seq = endpoint_.next_seq();
    xdr::Encoder enc(msg.payload);
    enc.put_u32(static_cast<std::uint32_t>(batch.allocs.size()));
    for (const auto& a : batch.allocs) {
      enc.put_u64(a.provisional);
      enc.put_u32(a.type);
    }
    enc.put_u32(static_cast<std::uint32_t>(batch.frees.size()));
    for (const std::uint64_t addr : batch.frees) {
      enc.put_u64(addr);
    }
    // Allocation is not idempotent (a replayed batch would double-allocate
    // at the home), so a single attempt races the full deadline.
    auto reply = guarded_roundtrip(std::move(msg), MessageType::kAllocReply,
                                   nullptr, /*idempotent=*/false);
    if (!reply) return reply.status();
    if (reply.value().type == MessageType::kError) {
      return decode_error(reply.value());
    }
    xdr::Decoder dec(reply.value().payload);
    auto n = dec.get_u32();
    if (!n) return n.status();
    std::vector<std::pair<std::uint64_t, std::uint64_t>> assigned;
    assigned.reserve(n.value());
    for (std::uint32_t i = 0; i < n.value(); ++i) {
      auto prov = dec.get_u64();
      if (!prov) return prov.status();
      auto real = dec.get_u64();
      if (!real) return real.status();
      assigned.emplace_back(prov.value(), real.value());
    }
    SRPC_RETURN_IF_ERROR(allocator->apply_assignments(home, assigned));
  }
  return Status::ok();
}

// ---------------------------------------------------------------------------
// Failure containment (detector, probes, leases, orphan reclamation)
// ---------------------------------------------------------------------------

std::uint64_t Runtime::vnow_ns() const noexcept {
  return sim_ != nullptr ? sim_->clock().now() : 0;
}

std::string Runtime::metrics_json() {
  // Fold the legacy struct counters into the registry (assignment, not
  // accumulation: this may be called repeatedly) so one JSON snapshot
  // carries the whole picture.
  MetricsRegistry& m = telemetry_.metrics();
  const auto set = [&m](const char* name, std::uint64_t v) {
    m.counter(name).value = v;
  };
  set("runtime.calls_sent", stats_.calls_sent);
  set("runtime.calls_served", stats_.calls_served);
  set("runtime.fetches_served", stats_.fetches_served);
  set("runtime.derefs_served", stats_.derefs_served);
  set("runtime.writebacks_served", stats_.writebacks_served);
  set("runtime.alloc_batches_served", stats_.alloc_batches_served);
  set("runtime.stale_replies_absorbed", stats_.stale_replies_absorbed);
  set("runtime.duplicate_requests_absorbed", stats_.duplicate_requests_absorbed);
  set("runtime.dead_session_rejections", stats_.dead_session_rejections);
  set("runtime.sessions_aborted", stats_.sessions_aborted);
  set("runtime.modified_bytes_shipped", stats_.modified_bytes_shipped);
  set("runtime.delta_bytes_shipped", stats_.delta_bytes_shipped);
  set("runtime.deltas_skipped_by_epoch", stats_.deltas_skipped_by_epoch);
  set("runtime.wb_prepares", stats_.wb_prepares);
  set("runtime.wb_commits", stats_.wb_commits);
  set("runtime.wb_aborts", stats_.wb_aborts);
  set("runtime.wb_prepares_served", stats_.wb_prepares_served);
  set("runtime.wb_commits_served", stats_.wb_commits_served);
  set("runtime.wb_aborts_served", stats_.wb_aborts_served);
  set("runtime.probes_sent", stats_.probes_sent);
  set("runtime.peers_died", stats_.peers_died);
  set("runtime.failfast_rejections", stats_.failfast_rejections);
  set("runtime.leases_expired", stats_.leases_expired);
  set("runtime.orphan_bytes_reclaimed", stats_.orphan_bytes_reclaimed);
  set("runtime.session_teardown_failures", stats_.session_teardown_failures);
  set("runtime.sessions_committed", stats_.sessions_committed);
  set("runtime.wb_conflicts", stats_.wb_conflicts);
  set("runtime.shm_payloads_published", stats_.shm_payloads_published);
  set("runtime.shm_publish_fallbacks", stats_.shm_publish_fallbacks);
  // Crash recovery & reincarnation.
  set("recovery.fenced_stale_messages", stats_.fenced_stale_messages);
  set("recovery.rejoins_sent", stats_.rejoins_sent);
  set("recovery.rejoins_served", stats_.rejoins_served);
  set("recovery.replayed_records", stats_.recovery_replays);
  set("recovery.in_doubt_resolved_commit", stats_.in_doubt_resolved_commit);
  set("recovery.in_doubt_resolved_abort", stats_.in_doubt_resolved_abort);
  set("recovery.checkpoints_taken", stats_.checkpoints_taken);
  if (recovery_ != nullptr) {
    set("recovery.log_records", recovery_->records());
    set("recovery.log_bytes", recovery_->bytes_logged());
  }
  // Cache counters summed across the default cache and every live
  // per-session overlay (an overlay's counters leave the sum when its
  // session closes — sample before teardown for per-session numbers).
  CacheStats cs = cache_.stats();
  sessions_.for_each([&](const SessionState& st) {
    if (!st.cache) return;
    const CacheStats& s = st.cache->stats();
    cs.read_faults += s.read_faults;
    cs.write_faults += s.write_faults;
    cs.fills += s.fills;
    cs.fetches += s.fetches;
    cs.objects_filled += s.objects_filled;
    cs.objects_skipped += s.objects_skipped;
    cs.closure_prefetch_hits += s.closure_prefetch_hits;
    cs.closure_prefetch_misses += s.closure_prefetch_misses;
  });
  set("cache.read_faults", cs.read_faults);
  set("cache.write_faults", cs.write_faults);
  set("cache.fills", cs.fills);
  set("cache.fetches", cs.fetches);
  set("cache.objects_filled", cs.objects_filled);
  set("cache.objects_skipped", cs.objects_skipped);
  set("cache.closure_prefetch_hits", cs.closure_prefetch_hits);
  set("cache.closure_prefetch_misses", cs.closure_prefetch_misses);
  set("rpc.retransmits", endpoint_.retransmits());
  // Concurrency layer (multi-session runtime + home-side arbitration).
  set("concurrency.active_sessions", active_sessions());
  set("concurrency.lock_waits", arbiter_.stats().lock_waits);
  set("concurrency.conflicts", arbiter_.stats().conflicts);
  set("concurrency.wounds", arbiter_.stats().wounds);
  set("concurrency.locks_held", arbiter_.lock_count());
  return m.to_json();
}

std::string Runtime::health_json() {
  std::string out = "{";
  out += "\"space\": " + std::to_string(self_);
  out += ", \"name\": \"" + name_ + "\"";
  out += ", \"incarnation\": " + std::to_string(incarnation_);
  // Failure-detector verdicts, one entry per peer it has ever judged.
  out += ", \"detector\": {";
  bool first = true;
  for (const auto& p : detector_.snapshot()) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + std::to_string(p.peer) + "\": {\"health\": \"" +
           std::string(to_string(p.health)) +
           "\", \"misses\": " + std::to_string(p.consecutive_misses) +
           ", \"last_contact_ns\": " + std::to_string(p.last_contact_ns) + "}";
  }
  out += "}";
  // Home-side lock arbitration pressure.
  const ArbiterStats& as = arbiter_.stats();
  out += ", \"locks\": {\"held\": " + std::to_string(arbiter_.lock_count());
  out += ", \"waits\": " + std::to_string(as.lock_waits);
  out += ", \"conflicts\": " + std::to_string(as.conflicts);
  out += ", \"wounds\": " + std::to_string(as.wounds) + "}";
  // Server-side dedup window (at-most-once memory) and client-side
  // completion slots (pipelined futures still in flight).
  std::size_t dedup = 0;
  for (const auto& [peer, served] : served_requests_) dedup += served.seen.size();
  out += ", \"dedup_window\": " + std::to_string(dedup);
  out += ", \"completion_slots\": " + std::to_string(endpoint_.inflight());
  out += ", \"retransmits\": " + std::to_string(endpoint_.retransmits());
  out += ", \"sessions\": {\"active\": " + std::to_string(active_sessions());
  out += ", \"in_doubt_stages\": " + std::to_string(shadow_commits_.size()) +
         "}";
  out += ", \"slo\": " + telemetry_.slo().to_json();
  out += ", \"flight\": {\"events\": " +
         std::to_string(telemetry_.flight().total_recorded());
  out += ", \"capacity\": " + std::to_string(telemetry_.flight().capacity());
  out += ", \"dumps\": " + std::to_string(telemetry_.flight().dump_count()) +
         "}";
  out += "}";
  return out;
}

Result<Message> Runtime::guarded_roundtrip(Message msg, MessageType reply_type,
                                           const RpcEndpoint::Dispatcher& serve,
                                           bool idempotent) {
  const SpaceId peer = msg.to;
  const MessageType kind = msg.type;
  const SessionId msg_session = msg.session;
  if (multi_session_ && msg_session != kNoSession && peer != self_) {
    // Remember who this session talked to from here: the session-end
    // invalidation multicasts to exactly this set (and each member forwards
    // to its own), instead of the whole world directory.
    if (SessionState* st = sessions_.find(msg_session)) st->touched.insert(peer);
  }
  if (detector_.is_dead(peer)) {
    ++stats_.failfast_rejections;
    telemetry_.count("rpc.failfast_rejections",
                     std::string("peer=") + std::to_string(peer));
    return space_dead("space " + std::to_string(peer) +
                      " is dead (failure detector)");
  }

  // Every request roundtrip this runtime initiates passes through here, so
  // this one site produces the client half of the span tree and the
  // per-kind latency histograms.
  const std::uint64_t start = telemetry_.now_ns();
  SpanRecorder::Handle span = SpanRecorder::kNoSpan;
  if (telemetry_.tracing()) {
    span = telemetry_.tracer().start_local(
        std::string(to_string(kind)) + " -> " + std::to_string(peer),
        "rpc.client", start);
    // The context crosses the wire only toward peers that negotiated the
    // extension; retransmits reuse this message verbatim (same span), so a
    // duplicated serve lands as a sibling, never a forked tree.
    if (peer_caps_ && (peer_caps_(peer) & kCapTraceContext) != 0) {
      msg.trace = telemetry_.tracer().context_of(span);
    }
  }

  auto reply = endpoint_.roundtrip(std::move(msg), reply_type, serve,
                                   timeouts_, idempotent);

  const std::uint64_t end = telemetry_.now_ns();
  const std::string kind_label = std::string("kind=") + std::string(to_string(kind));
  telemetry_.hist("rpc.roundtrip_ns", kind_label).record(end - start);
  telemetry_.observe_slo(to_string(kind), end - start);
  telemetry_.count("rpc.requests", kind_label);
  telemetry_.count("rpc.requests", std::string("peer=") + std::to_string(peer));
  if (span != SpanRecorder::kNoSpan) {
    telemetry_.tracer().finish(span, end, reply.is_ok());
  }

  if (reply) {
    detector_.note_contact(peer, vnow_ns());
    if (multi_session_ && msg_session != kNoSession) {
      if (SessionState* st = sessions_.find(msg_session);
          st != nullptr && st->cache) {
        st->cache->touch_lease(peer, vnow_ns());
      }
    } else {
      cache_.touch_lease(peer, vnow_ns());
    }
    return reply;
  }
  telemetry_.count("rpc.failures", kind_label);
  const StatusCode code = reply.status().code();
  if ((code == StatusCode::kDeadlineExceeded ||
       code == StatusCode::kUnavailable) &&
      !probing_) {
    probe_peer(peer);
  }
  return reply;
}

void Runtime::probe_peer(SpaceId peer) {
  probing_ = true;
  ++stats_.probes_sent;
  Message ping;
  ping.type = MessageType::kPing;
  ping.to = peer;
  ping.session = kNoSession;
  ping.seq = endpoint_.next_seq();
  // One short attempt: the surrounding request already burned its deadline,
  // the probe only asks "is anyone there at all".
  TimeoutConfig cfg = timeouts_;
  cfg.request_deadline = cfg.attempt_timeout;
  cfg.max_attempts = 1;
  auto pong = endpoint_.roundtrip(std::move(ping), MessageType::kPong, nullptr,
                                  cfg, /*idempotent=*/true);
  probing_ = false;
  if (pong) {
    // The peer lives; the original failure was loss or slowness, not death.
    detector_.note_contact(peer, vnow_ns());
    return;
  }
  const PeerHealth verdict = detector_.note_miss(peer);
  telemetry_.flight().event(FlightEventKind::kDetector, vnow_ns(), peer,
                            std::string("probe miss -> ") +
                                std::string(to_string(verdict)));
  SRPC_WARN << name_ << ": probe of space " << peer
            << " missed; peer is " << to_string(verdict);
  if (telemetry_.tracing()) {
    telemetry_.annotate("probe miss: space " + std::to_string(peer) + " is " +
                        std::string(to_string(verdict)));
  }
  if (verdict == PeerHealth::kDead) {
    // We may be inside the SIGSEGV fill path: defer the page revocation and
    // heap reclamation to the next safe point.
    pending_dead_cleanup_.push_back(peer);
  }
}

Result<std::uint64_t> Runtime::issue_guarded(
    Message msg, MessageType reply_type, bool idempotent,
    std::shared_ptr<Promise<Message>> promise) {
  const SpaceId peer = msg.to;
  const MessageType kind = msg.type;
  const SessionId msg_session = msg.session;
  const std::uint64_t seq = msg.seq;
  if (multi_session_ && msg_session != kNoSession && peer != self_) {
    if (SessionState* st = sessions_.find(msg_session)) st->touched.insert(peer);
  }
  if (detector_.is_dead(peer)) {
    ++stats_.failfast_rejections;
    telemetry_.count("rpc.failfast_rejections",
                     std::string("peer=") + std::to_string(peer));
    return space_dead("space " + std::to_string(peer) +
                      " is dead (failure detector)");
  }

  const std::uint64_t start = telemetry_.now_ns();
  SpanRecorder::Handle span = SpanRecorder::kNoSpan;
  if (telemetry_.tracing()) {
    // Detached: pipelined client spans are concurrent siblings under the
    // issuing session (the stack top at issue time), and finish whenever
    // their reply lands — pushing them would corrupt the LIFO stack once
    // replies complete out of order.
    span = telemetry_.tracer().start_detached(
        std::string(to_string(kind)) + " -> " + std::to_string(peer),
        "rpc.client", start);
    if (peer_caps_ && (peer_caps_(peer) & kCapTraceContext) != 0) {
      msg.trace = telemetry_.tracer().context_of(span);
    }
  }
  const std::string kind_label = std::string("kind=") + std::string(to_string(kind));

  RpcEndpoint::IssueOptions opts;
  opts.cfg = timeouts_;
  opts.idempotent = idempotent;
  opts.detached = promise != nullptr;
  // Runs inside whichever pump settles the slot — possibly while another
  // request is being collected, possibly on the SIGSEGV fetch path. Light
  // by contract: telemetry, lease touch, promise fulfilment; probes are
  // deferred to drain_probes().
  opts.on_complete = [this, peer, span, start, kind, kind_label, msg_session,
                      promise](Result<Message>& reply) {
    const std::uint64_t end = telemetry_.now_ns();
    telemetry_.hist("rpc.roundtrip_ns", kind_label).record(end - start);
    telemetry_.observe_slo(to_string(kind), end - start);
    telemetry_.count("rpc.requests", kind_label);
    telemetry_.count("rpc.requests", std::string("peer=") + std::to_string(peer));
    if (span != SpanRecorder::kNoSpan) {
      telemetry_.tracer().finish(span, end, reply.is_ok());
    }
    if (reply.is_ok()) {
      detector_.note_contact(peer, vnow_ns());
      if (multi_session_ && msg_session != kNoSession) {
        if (SessionState* st = sessions_.find(msg_session);
            st != nullptr && st->cache) {
          st->cache->touch_lease(peer, vnow_ns());
        }
      } else {
        cache_.touch_lease(peer, vnow_ns());
      }
    } else {
      telemetry_.count("rpc.failures", kind_label);
      const StatusCode code = reply.status().code();
      if (code == StatusCode::kDeadlineExceeded ||
          code == StatusCode::kUnavailable) {
        pending_probe_peers_.push_back(peer);
      }
    }
    if (promise) promise->set_result(std::move(reply));
  };
  if (span != SpanRecorder::kNoSpan) {
    opts.on_retransmit = [this, span, reply_type, seq](std::uint32_t attempt,
                                                       std::uint32_t attempts) {
      telemetry_.tracer().annotate(
          span,
          "retransmit " + std::string(to_string(reply_type)) + " seq=" +
              std::to_string(seq) + " attempt " + std::to_string(attempt) + "/" +
              std::to_string(attempts),
          telemetry_.now_ns());
    };
  }

  auto issued = endpoint_.issue(std::move(msg), reply_type, std::move(opts));
  if (!issued) {
    // The request never left (transport refusal or seq collision): settle
    // the telemetry that on_complete would have produced.
    const std::uint64_t end = telemetry_.now_ns();
    telemetry_.hist("rpc.roundtrip_ns", kind_label).record(end - start);
    telemetry_.count("rpc.requests", kind_label);
    telemetry_.count("rpc.failures", kind_label);
    if (span != SpanRecorder::kNoSpan) telemetry_.tracer().finish(span, end, false);
    return issued.status();
  }
  return issued;
}

Result<Message> Runtime::collect_guarded(std::uint64_t seq,
                                         const RpcEndpoint::Dispatcher& serve) {
  auto reply = endpoint_.collect(seq, serve);
  drain_probes();
  return reply;
}

Status Runtime::pump_guarded(std::chrono::steady_clock::time_point deadline) {
  Status pumped = endpoint_.pump_once(deadline, full_dispatcher_);
  drain_probes();
  return pumped;
}

void Runtime::drain_probes() {
  if (probing_) return;
  while (!pending_probe_peers_.empty()) {
    const SpaceId peer = pending_probe_peers_.back();
    pending_probe_peers_.pop_back();
    if (!detector_.is_dead(peer)) probe_peer(peer);
  }
}

void Runtime::on_peer_dead(SpaceId peer) {
  detector_.mark_dead(peer);
  if (!dead_cleaned_.insert(peer).second) return;  // already contained
  ++stats_.peers_died;
  telemetry_.flight().event(FlightEventKind::kDetector, vnow_ns(), peer,
                            "declared dead");
  std::size_t revoked = 0;
  for_each_cache([&](CacheManager& c) { revoked += c.revoke_source(peer); });
  if (revoked > 0) {
    ++stats_.leases_expired;
    telemetry_.flight().event(FlightEventKind::kLeaseExpiry, vnow_ns(), peer,
                              "revoked on death",
                              static_cast<std::int64_t>(revoked));
  }
  std::uint64_t reclaimed = 0;
  if (incarnation_ == 0) {
    // Locks and version observations of the dead peer's sessions will never
    // resolve through WB_COMMIT/INVALIDATE; drop them here.
    arbiter_.release_space(peer);
    reclaimed = heap_.reclaim_owned_by(peer);
    stats_.orphan_bytes_reclaimed += reclaimed;
    // Shadow commits staged by the dead coordinator will never commit.
    for (auto it = shadow_commits_.begin(); it != shadow_commits_.end();) {
      if (it->second.from == peer) {
        ++stats_.wb_aborts_served;
        it = shadow_commits_.erase(it);
      } else {
        ++it;
      }
    }
  }
  // In a recovery world death is not terminal: the peer's stages stay
  // in doubt and its orphan storage stays tagged until its successor
  // incarnation REJOINs with the decision log (on_peer_rejoin) — dropping
  // them now would turn a logged commit into silent data loss.
  SRPC_ERROR << name_ << ": space " << peer << " declared dead; revoked "
             << revoked << " cached pages, reclaimed " << reclaimed
             << " orphaned bytes";
  if (telemetry_.tracing()) {
    telemetry_.annotate("peer dead: space " + std::to_string(peer) +
                        ", revoked " + std::to_string(revoked) +
                        " pages, reclaimed " + std::to_string(reclaimed) +
                        " bytes");
  }
}

void Runtime::poll_failures() {
  while (!pending_dead_cleanup_.empty()) {
    const SpaceId peer = pending_dead_cleanup_.back();
    pending_dead_cleanup_.pop_back();
    on_peer_dead(peer);
  }
  // Reincarnations learned from passing traffic (a REJOIN we have not
  // processed yet): run the same cleanup the explicit announcement would
  // have, but with no decision log in hand the in-doubt stages are KEPT
  // staged — the announcement may be delayed rather than lost, and
  // presuming abort here while peers that received it roll forward would
  // diverge permanently.
  while (!pending_rejoin_cleanup_.empty()) {
    const auto [peer, incarnation] = pending_rejoin_cleanup_.back();
    pending_rejoin_cleanup_.pop_back();
    on_peer_rejoin(peer, incarnation, {}, /*authoritative=*/false);
  }
  if (lease_ttl_ns_ == 0 || sim_ == nullptr) return;
  const std::uint64_t now = vnow_ns();
  for_each_cache([&](CacheManager& c) {
    for (const SpaceId source : c.lapsed_sources(now, lease_ttl_ns_)) {
      const std::size_t revoked = c.revoke_source(source);
      ++stats_.leases_expired;
      telemetry_.flight().event(FlightEventKind::kLeaseExpiry, now, source,
                                "ttl lapsed",
                                static_cast<std::int64_t>(revoked));
      detector_.mark_suspect(source);
      SRPC_WARN << name_ << ": lease on source space " << source
                << " lapsed; revoked " << revoked << " cached pages";
      if (telemetry_.tracing()) {
        telemetry_.annotate("lease expired: source " + std::to_string(source) +
                            ", revoked " + std::to_string(revoked) + " pages");
      }
    }
  });
}

// ---------------------------------------------------------------------------
// Crash recovery & reincarnation (PROTOCOL.md "Incarnations, fencing &
// rejoin")
// ---------------------------------------------------------------------------

void Runtime::set_recovery(RecoveryLog* log, std::uint32_t incarnation) {
  recovery_ = log;
  incarnation_ = log != nullptr ? incarnation : 0;
  if (recovery_ == nullptr || incarnation_ == 0) {
    endpoint_.set_stamp({});
    endpoint_.set_fence({});
    return;
  }
  // Logged addresses must stay unique for the log's lifetime: freed storage
  // is retired, never handed back to the system allocator, so a replayed
  // ALLOC can always re-register the exact range.
  heap_.set_retain_freed(true);
  // Partition the session-id space by incarnation: the prior life's ids are
  // tombstoned at every home it touched, so the successor must never mint
  // them again (its first session would be refused as a dead straggler).
  // 2^24 ids per life, 256 lives in the 32-bit counter field —
  // begin_session() refuses loudly (RESOURCE_EXHAUSTED) when either runs
  // out rather than bleeding into a neighbouring partition.
  session_counter_ = (static_cast<std::uint64_t>(incarnation_) - 1) << 24;
  if (incarnation_ > 256) {
    SRPC_ERROR << name_ << ": incarnation " << incarnation_
               << " exceeds the session-id partition space (256 lives); "
               << "begin_session() will refuse until the space is retired";
  }
  endpoint_.set_stamp([this](Message& msg) {
    if (peer_caps_ && (peer_caps_(msg.to) & kCapIncarnation) != 0) {
      msg.incarnation = incarnation_;
      const auto it = peer_incarnations_.find(msg.to);
      msg.to_incarnation = it != peer_incarnations_.end() ? it->second : 0;
    }
  });
  endpoint_.set_fence([this](const Message& msg) { return fence_stale(msg); });
}

bool Runtime::fence_stale(const Message& msg) {
  if (incarnation_ == 0) return false;
  // REJOIN (and its ack) is exempt: it is how a higher incarnation makes
  // itself known in the first place.
  if (msg.type == MessageType::kRejoin || msg.type == MessageType::kRejoinAck) {
    return false;
  }
  bool stale = false;
  if (msg.incarnation != 0) {
    const auto known = peer_incarnations_.find(msg.from);
    const std::uint32_t seen = known != peer_incarnations_.end() ? known->second : 0;
    if (msg.incarnation < seen) {
      // The sender's prior life: its session state, leases, and seq space
      // died with it.
      stale = true;
    } else if (msg.incarnation > seen && seen != 0) {
      // Passing traffic from a life newer than the one we last processed a
      // REJOIN for (its announcement was lost or is still in flight). The
      // frame itself is fresh; the prior life's residue here is flushed at
      // the next safe point. on_peer_rejoin() performs the actual bump so
      // a racing explicit REJOIN is not mistaken for a duplicate.
      pending_rejoin_cleanup_.emplace_back(msg.from, msg.incarnation);
    } else if (seen == 0) {
      peer_incarnations_[msg.from] = msg.incarnation;  // first contact
    }
  }
  // A frame addressed at OUR prior incarnation answers a request (or
  // targets session state) of the dead predecessor: toxic either way.
  if (msg.to_incarnation != 0 && msg.to_incarnation < incarnation_) stale = true;
  if (stale) {
    ++stats_.fenced_stale_messages;
    telemetry_.count("recovery.fenced_stale_messages",
                     "peer=" + std::to_string(msg.from));
    FlightEvent fe;
    fe.ts_ns = vnow_ns();
    fe.kind = FlightEventKind::kFence;
    fe.msg_type = static_cast<std::uint8_t>(msg.type);
    fe.peer = msg.from;
    fe.session = msg.session;
    fe.seq = msg.seq;
    fe.arg = static_cast<std::int64_t>(msg.incarnation);
    telemetry_.flight().record(fe);
    // The black box for "who kept talking to a dead life": dump once per
    // {peer, stamped incarnation} so a retransmit storm of stale frames
    // yields one dump, not hundreds.
    const std::uint64_t fence_key =
        (static_cast<std::uint64_t>(msg.from) << 32) | msg.incarnation;
    if (fence_dumped_.insert(fence_key).second) {
      telemetry_.flight().dump("incarnation_fence", vnow_ns());
    }
    SRPC_WARN << name_ << ": fencing stale " << to_string(msg.type)
              << " seq=" << msg.seq << " from space " << msg.from << " (inc "
              << msg.incarnation << " -> " << msg.to_incarnation
              << "; we are inc " << incarnation_ << ")";
  }
  return stale;
}

void Runtime::on_peer_rejoin(SpaceId peer, std::uint32_t incarnation,
                             const std::vector<RecoveryDecision>& decisions,
                             bool authoritative) {
  const auto known = peer_incarnations_.find(peer);
  if (known != peer_incarnations_.end() && known->second >= incarnation) {
    // Duplicate or stale announcement — unless the only processing this
    // incarnation ever got here was the implicit (decision-less) cleanup:
    // its stages were left in doubt, and the delayed real REJOIN carrying
    // the decision log must still resolve them.
    const auto pending = awaiting_rejoin_decisions_.find(peer);
    if (!authoritative || pending == awaiting_rejoin_decisions_.end() ||
        pending->second != incarnation || known->second != incarnation) {
      return;
    }
  }
  peer_incarnations_[peer] = incarnation;
  ++stats_.rejoins_served;
  telemetry_.flight().event(FlightEventKind::kRejoin, vnow_ns(), peer,
                            authoritative ? "rejoin served"
                                          : "implicit cleanup",
                            static_cast<std::int64_t>(incarnation));

  bool stages_in_doubt = false;
  if (authoritative) {
    awaiting_rejoin_decisions_.erase(peer);
    // Resolve the in-doubt stages the prior life coordinated here against
    // the decision log its replay recovered: a logged commit rolls the
    // stage forward exactly as its lost WB_COMMIT would have; anything else
    // (abort decision, or no decision at all — the crash hit before phase
    // one finished) rolls back.
    for (auto it = shadow_commits_.begin(); it != shadow_commits_.end();) {
      if (it->second.from != peer) {
        ++it;
        continue;
      }
      const SessionId session = it->first;
      bool commit = false;
      for (const RecoveryDecision& d : decisions) {
        if (d.session == session && d.epoch == it->second.epoch) {
          commit = d.committed;
          break;
        }
      }
      if (commit) {
        it->second.staged.reset_cursor();
        Status applied = apply_modified_set(it->second.staged, peer);
        if (applied.is_ok()) {
          committed_epochs_[session] = it->second.epoch;
          ++stats_.in_doubt_resolved_commit;
          if (recovery_ != nullptr) {
            recovery_->note_commit(session, it->second.epoch);
          }
          (void)heap_.promote_session(session);
          if (multi_session_) arbiter_.commit(session);
        } else {
          SRPC_ERROR << name_ << ": in-doubt commit of session " << session
                     << " failed: " << applied.to_string();
        }
      } else {
        ++stats_.in_doubt_resolved_abort;
        const std::uint64_t reclaimed = heap_.reclaim_session(session);
        stats_.orphan_bytes_reclaimed += reclaimed;
        if (multi_session_) arbiter_.release(session);
      }
      tombstone_session(session);
      committed_epochs_.erase(session);
      it = shadow_commits_.erase(it);
    }
  } else {
    // Implicit cleanup (fence_stale saw newer-incarnation traffic before
    // any REJOIN): no decision log, so the prior life's stages stay staged
    // and in doubt. Stale-incarnation fencing already refuses every frame
    // that could touch them; the REJOIN that eventually lands — let through
    // the dedup above — resolves them. Until then their sessions' orphan
    // storage must survive too: a commit decision may yet promote it.
    for (const auto& [session, shadow] : shadow_commits_) {
      if (shadow.from == peer) {
        stages_in_doubt = true;
        break;
      }
    }
    if (stages_in_doubt) {
      awaiting_rejoin_decisions_[peer] = incarnation;
      SRPC_WARN << name_ << ": space " << peer << " reincarnated (inc "
                << incarnation << ") before its REJOIN was seen; keeping its "
                << "in-doubt stage(s) until the decision log arrives";
    }
  }

  // The scalar serving state may still be bound to one of the dead life's
  // sessions — its INVALIDATE never arrived. Settle it like any dead
  // session: the cached data and travelling updates die with it, and the
  // binding frees so the successor's sessions can be served (without this
  // the busy-cache refusal would fence the new life out forever). The
  // session-id partition tells the lives apart: the implicit cleanup can
  // run after the successor's own sessions started being served here, and
  // those must survive.
  if (!multi_session_ && cache_session_ != kNoSession &&
      static_cast<SpaceId>(cache_session_ >> 32) == peer &&
      (cache_session_ & 0xFFFFFFFFull) <
          ((static_cast<std::uint64_t>(incarnation) - 1) << 24)) {
    tombstone_session(cache_session_);
    cache_.invalidate_all();
    allocator_.clear();
    ambient_state_.updates.clear();
    ambient_state_.clear_ship();
    cache_session_ = kNoSession;
  }

  // Flush every other trace of the prior life: cached pages it served
  // (the successor replays its heap, but our leases were granted by the
  // dead incarnation), its lock-table entries, its uncommitted orphan
  // storage, the request-dedup window (the new life's seq counter restarts
  // from one), and every in-flight request still addressed at it.
  std::size_t revoked = 0;
  for_each_cache([&](CacheManager& c) { revoked += c.revoke_source(peer); });
  if (revoked > 0) ++stats_.leases_expired;
  arbiter_.release_space(peer);
  // Orphan storage is reclaimed only once the stages are resolved: a
  // pending commit decision may promote some of it (the explicit path ran
  // the resolution loop above, so committed sessions are already
  // promoted and out of reach here).
  std::uint64_t reclaimed = 0;
  if (!stages_in_doubt) {
    reclaimed = heap_.reclaim_owned_by(peer);
    stats_.orphan_bytes_reclaimed += reclaimed;
  }
  served_requests_.erase(peer);
  const std::size_t expired = endpoint_.expire_peer(
      peer, unavailable("space " + std::to_string(peer) +
                        " reincarnated; request of its prior life expired"));
  // Death (if it was ever detected here) is no longer terminal, and the
  // NEXT death of the new incarnation must run containment afresh.
  dead_cleaned_.erase(peer);
  detector_.note_rejoin(peer);
  SRPC_WARN << name_ << ": space " << peer << " rejoined as incarnation "
            << incarnation << "; revoked " << revoked << " pages, reclaimed "
            << reclaimed << " orphaned bytes, expired " << expired
            << " in-flight requests";
  if (telemetry_.tracing()) {
    telemetry_.annotate("peer rejoin: space " + std::to_string(peer) +
                        " incarnation " + std::to_string(incarnation));
  }
}

// REJOIN payload: incarnation u32 | n u32 | n x {session u64, epoch u64,
// committed u32}. REJOIN_ACK is empty.
Status Runtime::serve_rejoin(Message msg) {
  xdr::Decoder dec(msg.payload);
  auto inc = dec.get_u32();
  if (!inc) return send_error(msg.from, msg.session, msg.seq, inc.status());
  auto n = dec.get_u32();
  if (!n) return send_error(msg.from, msg.session, msg.seq, n.status());
  std::vector<RecoveryDecision> decisions;
  decisions.reserve(n.value());
  for (std::uint32_t i = 0; i < n.value(); ++i) {
    auto session = dec.get_u64();
    if (!session) return send_error(msg.from, msg.session, msg.seq, session.status());
    auto epoch = dec.get_u64();
    if (!epoch) return send_error(msg.from, msg.session, msg.seq, epoch.status());
    auto committed = dec.get_u32();
    if (!committed) {
      return send_error(msg.from, msg.session, msg.seq, committed.status());
    }
    decisions.push_back(RecoveryDecision{session.value(), epoch.value(),
                                         committed.value() != 0});
  }
  on_peer_rejoin(msg.from, inc.value(), decisions);
  Message reply;
  reply.type = MessageType::kRejoinAck;
  reply.to = msg.from;
  reply.session = msg.session;
  reply.seq = msg.seq;
  return endpoint_.send(std::move(reply));
}

Status Runtime::announce_rejoin() {
  if (recovery_ == nullptr || incarnation_ == 0) return Status::ok();
  const std::vector<RecoveryDecision> decisions = recovery_->decisions();
  Status worst = Status::ok();
  for (const SpaceId peer : directory_()) {
    if (peer == self_) continue;
    ++stats_.rejoins_sent;
    Message msg;
    msg.type = MessageType::kRejoin;
    msg.to = peer;
    msg.session = kNoSession;
    msg.seq = endpoint_.next_seq();
    xdr::Encoder enc(msg.payload);
    enc.put_u32(incarnation_);
    enc.put_u32(static_cast<std::uint32_t>(decisions.size()));
    for (const RecoveryDecision& d : decisions) {
      enc.put_u64(d.session);
      enc.put_u64(d.epoch);
      enc.put_u32(d.committed ? 1u : 0u);
    }
    // Idempotent: on_peer_rejoin dedups by {peer, incarnation}, so a
    // retransmitted announcement only re-acks.
    auto ack = guarded_roundtrip(std::move(msg), MessageType::kRejoinAck,
                                 full_dispatcher_, /*idempotent=*/true);
    if (!ack) {
      SRPC_WARN << name_ << ": rejoin announcement to space " << peer
                << " failed: " << ack.status().to_string();
      if (worst.is_ok()) worst = ack.status();
    }
  }
  return worst;
}

Status Runtime::recover_from_log() {
  if (recovery_ == nullptr) return Status::ok();
  const std::vector<RecoveryLog::Record> journal = recovery_->snapshot();
  // The latest checkpoint supersedes everything before it — but the
  // commit-epoch dedup map and session tombstones must survive across the
  // whole history: a retransmitted WB_COMMIT (or straggler of a settled
  // session) re-acks against state the image alone cannot carry.
  std::size_t start = 0;
  const RecoveryLog::Record* checkpoint = nullptr;
  for (std::size_t i = 0; i < journal.size(); ++i) {
    if (journal[i].kind == RecoveryLog::Kind::kCheckpoint) {
      checkpoint = &journal[i];
      start = i + 1;
    }
  }
  if (checkpoint != nullptr) {
    SRPC_RETURN_IF_ERROR(RecoveryLog::restore_checkpoint(*checkpoint, heap_));
  }
  for (std::size_t i = 0; i < start; ++i) {
    const RecoveryLog::Record& r = journal[i];
    if (r.kind == RecoveryLog::Kind::kCommit) {
      std::uint64_t& epoch = committed_epochs_[r.session];
      epoch = std::max(epoch, r.epoch);
    } else if (r.kind == RecoveryLog::Kind::kSettle) {
      committed_epochs_.erase(r.session);
      tombstone_session(r.session);
    }
  }

  std::size_t replayed = 0;
  for (std::size_t i = start; i < journal.size(); ++i) {
    const RecoveryLog::Record& r = journal[i];
    ++replayed;
    switch (r.kind) {
      case RecoveryLog::Kind::kAlloc: {
        auto* base = reinterpret_cast<std::uint8_t*>(r.addr);
        SRPC_RETURN_IF_ERROR(
            heap_.restore(base, r.type, r.count, r.size, r.peer, r.session));
        // A fresh allocation was zeroed; any bytes it gained later arrive
        // through the commit records that follow.
        std::memset(base, 0, r.size);
        break;
      }
      case RecoveryLog::Kind::kFree: {
        Status freed = heap_.free(reinterpret_cast<void*>(r.addr));
        if (!freed.is_ok()) {
          SRPC_WARN << name_ << ": replayed free failed: " << freed.to_string();
        }
        break;
      }
      case RecoveryLog::Kind::kPrepare: {
        // Re-stage, in doubt: the decision records (and peers' REJOIN
        // resolution) settle it.
        ShadowCommit& shadow = shadow_commits_[r.session];
        if (shadow.epoch <= r.epoch) {
          shadow.epoch = r.epoch;
          shadow.from = r.peer;
          shadow.staged = ByteBuffer();
          shadow.staged.append({r.bytes.data(), r.bytes.size()});
        }
        break;
      }
      case RecoveryLog::Kind::kCommit: {
        auto it = shadow_commits_.find(r.session);
        if (it != shadow_commits_.end() && it->second.epoch == r.epoch) {
          it->second.staged.reset_cursor();
          SRPC_RETURN_IF_ERROR(
              apply_modified_set(it->second.staged, it->second.from));
          shadow_commits_.erase(it);
        }
        std::uint64_t& epoch = committed_epochs_[r.session];
        epoch = std::max(epoch, r.epoch);
        break;
      }
      case RecoveryLog::Kind::kAbort: {
        auto it = shadow_commits_.find(r.session);
        if (it != shadow_commits_.end() && it->second.epoch <= r.epoch) {
          shadow_commits_.erase(it);
        }
        break;
      }
      case RecoveryLog::Kind::kSettle: {
        if (r.aborted) {
          stats_.orphan_bytes_reclaimed += heap_.reclaim_session(r.session);
        } else {
          (void)heap_.promote_session(r.session);
        }
        shadow_commits_.erase(r.session);
        committed_epochs_.erase(r.session);
        tombstone_session(r.session);
        break;
      }
      case RecoveryLog::Kind::kDecision:
        break;  // shipped verbatim by announce_rejoin()
      case RecoveryLog::Kind::kCheckpoint:
        break;  // superseded: only the last image is restored
    }
  }
  stats_.recovery_replays += replayed;
  telemetry_.flight().event(FlightEventKind::kRecoveryReplay, vnow_ns(),
                            kInvalidSpaceId,
                            checkpoint != nullptr ? "from checkpoint"
                                                  : "full history",
                            static_cast<std::int64_t>(replayed));
  // Replay re-applied commits through the normal incorporate path, which
  // records them as this (ambient) session's travelling home updates; the
  // recovered sessions are settled history, not live state.
  ambient_state_.updates.clear();
  ambient_state_.clear_ship();
  SRPC_WARN << name_ << ": incarnation " << incarnation_ << " replayed "
            << replayed << " log records ("
            << (checkpoint != nullptr ? "from checkpoint" : "full history")
            << "); " << shadow_commits_.size() << " stage(s) in doubt";
  return Status::ok();
}

void Runtime::checkpoint_now() {
  if (recovery_ == nullptr) return;
  recovery_->checkpoint(heap_);
  // The image captures the heap only; staged prepares live in
  // shadow_commits_ and replay re-stages only kPrepare records appended
  // AFTER the last checkpoint. Re-journal every stage still in doubt so a
  // post-checkpoint kCommit replay finds its bytes — otherwise a prepare
  // logged before the image and committed after it silently no-ops on
  // replay, losing a committed write-back.
  for (const auto& [session, shadow] : shadow_commits_) {
    recovery_->note_prepare(session, shadow.epoch, shadow.from,
                            shadow.staged.data(), shadow.staged.size());
  }
  ++stats_.checkpoints_taken;
  telemetry_.flight().event(FlightEventKind::kCheckpoint, vnow_ns(),
                            kInvalidSpaceId, {},
                            static_cast<std::int64_t>(heap_.live_allocations()));
  settles_since_checkpoint_ = 0;
}

void Runtime::maybe_checkpoint() {
  if (recovery_ == nullptr || checkpoint_interval_ == 0) return;
  if (++settles_since_checkpoint_ < checkpoint_interval_) return;
  checkpoint_now();
}

// ---------------------------------------------------------------------------
// Fetch path (PageFetcher)
// ---------------------------------------------------------------------------

Result<ByteBuffer> Runtime::fetch(SpaceId home, std::span<const LongPointer> pointers,
                                  std::uint64_t closure_budget,
                                  SessionId session) {
  // A session-tagged cache pins its own session; the default cache passes
  // kNoSession and the fetch rides whatever session scope is current.
  const SessionId sid = session != kNoSession ? session : current_session();
  Message msg;
  msg.type = MessageType::kFetch;
  msg.to = home;
  msg.session = sid;
  msg.seq = endpoint_.next_seq();
  encode_fetch_frame(msg.payload, pointers, closure_budget);
  // Restricted await: we may be inside the SIGSEGV handler, and with a
  // single active thread nothing but this reply can legitimately arrive.
  // Fetch is a pure read, so a lost reply is recovered by retransmitting
  // under the same seq; the home serves it again and any late duplicate
  // reply is absorbed by seq matching.
  auto reply = guarded_roundtrip(std::move(msg), MessageType::kFetchReply,
                                 nullptr, /*idempotent=*/true);
  if (!reply) return reply.status();
  if (reply.value().type == MessageType::kError) {
    return decode_error(reply.value());
  }
  // We now hold this source's bytes: start (or refresh) its lease on the
  // cache that issued the fetch.
  cache_for(sid).renew_lease(home, vnow_ns());
  if (telemetry_.tracing()) {
    telemetry_.annotate("lease renewed: source " + std::to_string(home));
  }
  return std::move(reply.value().payload);
}

void Runtime::charge_fault() {
  if (sim_ != nullptr) sim_->charge_fault();
}

Result<ByteBuffer> Runtime::deref_remote(const LongPointer& pointer) {
  Message msg;
  msg.type = MessageType::kDeref;
  msg.to = pointer.space;
  msg.session = current_session();
  msg.seq = endpoint_.next_seq();
  xdr::Encoder enc(msg.payload);
  encode_long_pointer(enc, pointer);
  // A dereference is a read: safe to retransmit.
  auto reply = guarded_roundtrip(std::move(msg), MessageType::kDerefReply,
                                 full_dispatcher_, /*idempotent=*/true);
  if (!reply) return reply.status();
  if (reply.value().type == MessageType::kError) {
    return decode_error(reply.value());
  }
  return std::move(reply.value().payload);
}

// ---------------------------------------------------------------------------
// Calls
// ---------------------------------------------------------------------------

Result<ByteBuffer> Runtime::call_raw(SpaceId target, const std::string& proc,
                                     ByteBuffer args,
                                     std::span<const std::uint64_t> pointer_roots) {
  if (target == self_) {
    return invalid_argument("call to own address space");
  }
  // Safe point: run deferred dead-peer containment and lease checks before
  // the activity moves.
  poll_failures();
  // The activity is about to move: flush batched memory operations first
  // (provisional identities must not cross in the modified set), then
  // attach the travelling modified data set and the arguments' closure.
  SRPC_RETURN_IF_ERROR(flush_alloc_batches());

  Message msg;
  msg.type = MessageType::kCall;
  msg.to = target;
  msg.session = current_session();
  msg.seq = endpoint_.next_seq();
  xdr::Encoder enc(msg.payload);
  enc.put_string(proc);
  std::vector<ShippedRecord> shipped;
  SRPC_RETURN_IF_ERROR(attach_modified_set(msg.payload, target,
                                           /*write_back=*/false,
                                           /*encoded=*/nullptr, &shipped));
  SRPC_RETURN_IF_ERROR(attach_closures(msg.payload, pointer_roots));
  msg.payload.append(args.view());

  ++stats_.calls_sent;
  // Full re-entrant service while blocked: nested calls back into this
  // space, fetches against our heap, etc. A CALL executes arbitrary user
  // code, so it is never retransmitted — on a deadline the caller aborts
  // the session instead (at-most-once execution; the receiver additionally
  // absorbs duplicated deliveries by request id).
  auto reply = guarded_roundtrip(std::move(msg), MessageType::kReturn,
                                 full_dispatcher_, /*idempotent=*/false);
  if (!reply) return reply.status();
  if (reply.value().type == MessageType::kError) {
    return decode_error(reply.value());
  }
  // The callee saw (and now holds) everything we shipped.
  commit_shipped(target, shipped);
  ByteBuffer payload = std::move(reply.value().payload);
  SRPC_RETURN_IF_ERROR(apply_modified_set(payload, target));
  SRPC_RETURN_IF_ERROR(apply_closures(payload));
  // Cursor now rests at the marshalled results.
  return payload;
}

Result<Runtime::RawCallFuture> Runtime::call_async(
    SpaceId target, const std::string& proc, ByteBuffer args,
    std::span<const std::uint64_t> pointer_roots) {
  if (target == self_) {
    return invalid_argument("call to own address space");
  }
  // Same preamble as call_raw: safe point, then flush batched memory ops
  // before the modified set and closures are packed. Each async call ships
  // the modified set as of ITS issue point.
  poll_failures();
  SRPC_RETURN_IF_ERROR(flush_alloc_batches());

  Message msg;
  msg.type = MessageType::kCall;
  msg.to = target;
  msg.session = current_session();
  msg.seq = endpoint_.next_seq();
  const std::uint64_t seq = msg.seq;
  xdr::Encoder enc(msg.payload);
  enc.put_string(proc);
  std::vector<ShippedRecord> shipped;
  SRPC_RETURN_IF_ERROR(attach_modified_set(msg.payload, target,
                                           /*write_back=*/false,
                                           /*encoded=*/nullptr, &shipped));
  SRPC_RETURN_IF_ERROR(attach_closures(msg.payload, pointer_roots));
  msg.payload.append(args.view());

  ++stats_.calls_sent;
  // At-most-once semantics are unchanged: a CALL is never retransmitted
  // (idempotent=false caps it at one attempt against the full deadline).
  auto promise = std::make_shared<Promise<Message>>();
  auto fut = promise->get_future();
  auto issued = issue_guarded(std::move(msg), MessageType::kReturn,
                              /*idempotent=*/false, promise);
  if (!issued) return issued.status();
  // get() drives the shared endpoint with full re-entrant service — the
  // future always blocks on the worker's ground stack, never in a handler.
  promise->set_pump([this](std::chrono::steady_clock::time_point deadline) {
    return pump_guarded(deadline);
  });
  // An abandoned future cancels its slot: the completion hooks settle with
  // UNAVAILABLE (closing the client span) and a late reply is absorbed as
  // stale by seq matching.
  promise->set_on_drop([this, seq] { (void)endpoint_.cancel(seq); });
  return RawCallFuture(this, current_session(), target, seq,
                       std::move(shipped), std::move(fut));
}

Result<ByteBuffer> Runtime::RawCallFuture::get(
    std::chrono::steady_clock::time_point deadline) {
  Runtime& rt = *rt_;
  // Re-pin the issuing session: the reply's side effects (ship-state
  // commit, modified set, closure incorporation) must land in the same
  // session scope the call was issued under, whatever scope the caller
  // happens to be in when it finally collects.
  ScopedSession scope(rt, session_);
  auto reply = fut_.get(deadline);
  if (!reply) return reply.status();
  Message msg = std::move(reply.value());
  if (msg.type == MessageType::kError) {
    return rt.decode_error(msg);
  }
  // The callee saw (and now holds) everything this call shipped.
  rt.commit_shipped(target_, shipped_);
  ByteBuffer payload = std::move(msg.payload);
  SRPC_RETURN_IF_ERROR(rt.apply_modified_set(payload, target_));
  SRPC_RETURN_IF_ERROR(rt.apply_closures(payload));
  // Cursor now rests at the marshalled results.
  return payload;
}

Status Runtime::serve_call(Message msg) {
  ++stats_.calls_served;
  if (multi_session_) {
    // Concurrent mode: every session gets its own cache overlay, so there
    // is nothing to protect — just make sure the session is tracked here
    // (its state is what the invalidation multicast tears down later).
    (void)state_for(msg.session);
  } else {
    // One RPC session at a time: refuse to mix another session's activity
    // into a cache that still holds this one's data (see cache_session_).
    const bool cache_in_use =
        cache_.table().size() > 0 || !ambient_state_.updates.empty();
    if (cache_in_use && cache_session_ != kNoSession &&
        cache_session_ != msg.session) {
      return send_error(
          msg.from, msg.session, msg.seq,
          failed_precondition(
              "space busy: cache holds data of another RPC session"));
    }
    cache_session_ = msg.session;
  }
  xdr::Decoder dec(msg.payload);
  auto proc = dec.get_string();
  if (!proc) {
    return send_error(msg.from, msg.session, msg.seq, proc.status());
  }
  Status applied = apply_modified_set(msg.payload, msg.from);
  if (!applied.is_ok()) {
    return send_error(msg.from, msg.session, msg.seq,
                      Status(applied.code(), "modified-set: " + applied.message()));
  }
  applied = apply_closures(msg.payload);
  if (!applied.is_ok()) {
    return send_error(msg.from, msg.session, msg.seq,
                      Status(applied.code(), "closures: " + applied.message()));
  }

  const RawHandler* handler = services_.find(proc.value());
  if (handler == nullptr) {
    return send_error(msg.from, msg.session, msg.seq,
                      not_found("no such procedure: " + proc.value()));
  }

  // The dispatch-level session scope already pins msg.session, so the
  // handler's nested calls/fetches/allocations ride the caller's session.
  CallContext ctx{*this, msg.session, msg.from};
  ByteBuffer results;
  std::vector<std::uint64_t> result_roots;
  Status handled = (*handler)(ctx, msg.payload, results, result_roots);
  if (handled.is_ok()) {
    handled = flush_alloc_batches();
  }
  if (!handled.is_ok()) {
    return send_error(msg.from, msg.session, msg.seq, handled);
  }

  Message reply;
  reply.type = MessageType::kReturn;
  reply.to = msg.from;
  reply.session = msg.session;
  reply.seq = msg.seq;
  std::vector<ShippedRecord> shipped;
  Status built = attach_modified_set(reply.payload, msg.from,
                                     /*write_back=*/false,
                                     /*encoded=*/nullptr, &shipped);
  if (built.is_ok()) built = attach_closures(reply.payload, result_roots);
  if (!built.is_ok()) {
    return send_error(msg.from, msg.session, msg.seq, built);
  }
  reply.payload.append(results.view());
  Status sent = endpoint_.send(std::move(reply));
  if (sent.is_ok()) commit_shipped(msg.from, shipped);
  return sent;
}

Status Runtime::serve_fetch(Message msg) {
  ++stats_.fetches_served;
  xdr::Decoder dec(msg.payload);
  auto budget = dec.get_u64();
  if (!budget) return send_error(msg.from, msg.session, msg.seq, budget.status());
  auto wide = dec.get_u32();
  if (!wide) return send_error(msg.from, msg.session, msg.seq, wide.status());
  auto base = dec.get_u64();
  if (!base) return send_error(msg.from, msg.session, msg.seq, base.status());
  auto count = dec.get_u32();
  if (!count) return send_error(msg.from, msg.session, msg.seq, count.status());

  std::vector<std::uint64_t> roots;
  roots.reserve(count.value());
  for (std::uint32_t i = 0; i < count.value(); ++i) {
    if (wide.value() != 0) {
      auto addr = dec.get_u64();
      if (!addr) return send_error(msg.from, msg.session, msg.seq, addr.status());
      roots.push_back(addr.value());
    } else {
      auto delta = dec.get_u32();
      if (!delta) return send_error(msg.from, msg.session, msg.seq, delta.status());
      roots.push_back(base.value() + delta.value());
    }
  }

  if (multi_session_ && msg.session != kNoSession) {
    // Record what the session observed: shared lock + version snapshot,
    // validated against its write manifest at WB_PREPARE time. Reads are
    // never refused — conflicts surface at commit, not here.
    for (const std::uint64_t addr : roots) {
      const ManagedHeap::Record* record =
          heap_.find(reinterpret_cast<const void*>(addr));
      if (record != nullptr) {
        arbiter_.note_read(msg.session,
                           reinterpret_cast<std::uint64_t>(record->base));
      }
    }
  }

  auto packed = packer_.pack(roots, budget.value(), /*require_roots=*/true);
  if (!packed) {
    return send_error(msg.from, msg.session, msg.seq, packed.status());
  }

  Message reply;
  reply.type = MessageType::kFetchReply;
  reply.to = msg.from;
  reply.session = msg.session;
  reply.seq = msg.seq;
  xdr::Encoder enc(reply.payload);
  enc.put_u32(static_cast<std::uint32_t>(packed.value().groups.size()));
  for (const auto& [space, refs] : packed.value().groups) {
    Status encoded = encode_graph_payload(codec_, arch_, space, refs, *this,
                                          reply.payload);
    if (!encoded.is_ok()) {
      return send_error(msg.from, msg.session, msg.seq, encoded);
    }
  }
  return endpoint_.send(std::move(reply));
}

Status Runtime::serve_alloc_batch(Message msg) {
  ++stats_.alloc_batches_served;
  xdr::Decoder dec(msg.payload);
  auto nalloc = dec.get_u32();
  if (!nalloc) return send_error(msg.from, msg.session, msg.seq, nalloc.status());

  Message reply;
  reply.type = MessageType::kAllocReply;
  reply.to = msg.from;
  reply.session = msg.session;
  reply.seq = msg.seq;
  xdr::Encoder enc(reply.payload);
  enc.put_u32(nalloc.value());

  for (std::uint32_t i = 0; i < nalloc.value(); ++i) {
    auto prov = dec.get_u64();
    if (!prov) return send_error(msg.from, msg.session, msg.seq, prov.status());
    auto type = dec.get_u32();
    if (!type) return send_error(msg.from, msg.session, msg.seq, type.status());
    auto mem = heap_.allocate(type.value(), 1);
    if (!mem) return send_error(msg.from, msg.session, msg.seq, mem.status());
    // Track remote provenance until the session settles: a committed
    // session promotes the storage to durable home data, an aborted or
    // orphaned one gets it reclaimed.
    const std::uint64_t addr = reinterpret_cast<std::uint64_t>(mem.value());
    (void)heap_.tag_owner(addr, msg.from, msg.session);
    if (recovery_ != nullptr) {
      // Logged before the grant is acknowledged: the requester is about to
      // hold long pointers into this storage, so a reincarnation must be
      // able to re-register the exact range.
      const ManagedHeap::Record* rec = heap_.find_base(addr);
      recovery_->note_alloc(addr, rec->type, rec->count, rec->size, msg.from,
                            msg.session);
    }
    enc.put_u64(prov.value());
    enc.put_u64(addr);
  }

  auto nfree = dec.get_u32();
  if (!nfree) return send_error(msg.from, msg.session, msg.seq, nfree.status());
  for (std::uint32_t i = 0; i < nfree.value(); ++i) {
    auto addr = dec.get_u64();
    if (!addr) return send_error(msg.from, msg.session, msg.seq, addr.status());
    Status freed = heap_.free(reinterpret_cast<void*>(addr.value()));
    if (!freed.is_ok()) {
      SRPC_WARN << "remote free failed: " << freed.to_string();
    } else if (recovery_ != nullptr) {
      recovery_->note_free(addr.value());
    }
  }
  return endpoint_.send(std::move(reply));
}

Status Runtime::serve_writeback(Message msg) {
  ++stats_.writebacks_served;
  // Single-phase write-back mutates the heap in one step, with no
  // PREPARE/COMMIT pair to journal it. Log the stage and (after a clean
  // apply, before the ack) its commit under epoch 0 — single-phase carries
  // none — so a reincarnation's replay re-applies these bytes instead of
  // reverting an acknowledged write-back to the pre-write image.
  const bool journal = recovery_ != nullptr && !is_dead_session(msg.session);
  if (journal) {
    const ByteBuffer& body = msg.payload;
    recovery_->note_prepare(msg.session, /*epoch=*/0, msg.from,
                            body.data() + body.cursor(), body.remaining());
  }
  Status applied = apply_modified_set(msg.payload, msg.from);
  if (!applied.is_ok()) {
    return send_error(msg.from, msg.session, msg.seq, applied);
  }
  if (journal) recovery_->note_commit(msg.session, /*epoch=*/0);
  Message reply;
  reply.type = MessageType::kWriteBackAck;
  reply.to = msg.from;
  reply.session = msg.session;
  reply.seq = msg.seq;
  return endpoint_.send(std::move(reply));
}

Status Runtime::serve_invalidate(Message msg) {
  // An optional flag distinguishes a committed end (0) from an abort (1);
  // the legacy empty payload means a normal end.
  bool aborted = false;
  if (msg.payload.remaining() > 0) {
    xdr::Decoder dec(msg.payload);
    auto flag = dec.get_u32();
    if (flag) aborted = flag.value() != 0;
  }
  if (multi_session_) {
    SessionState* st = sessions_.find(msg.session);
    if (st != nullptr && st->local) {
      // A peer cascade-forwarded the invalidation back to the session's own
      // coordinator while its ground is mid-teardown. The ground owns the
      // unwind — closing the state here would leave end_session()/
      // abort_session() holding dangling references — so only re-ack.
      Message reply;
      reply.type = MessageType::kInvalidateAck;
      reply.to = msg.from;
      reply.session = msg.session;
      reply.seq = msg.seq;
      return endpoint_.send(std::move(reply));
    }
    // Home-side arbitration state (locks, observed versions, stage marks)
    // dies with the session whether it committed or aborted.
    arbiter_.release(msg.session);
    std::vector<SpaceId> forward;
    if (st != nullptr) {
      if (st->span != SpanRecorder::kNoSpan) {
        telemetry_.tracer().finish(st->span, telemetry_.now_ns(), !aborted);
      }
      // Peers this space pulled into the session on the closing ground's
      // behalf may never have heard from that ground directly: forward the
      // invalidation so the whole reachable participant graph converges.
      for (const SpaceId peer : st->touched) {
        if (peer == self_ || peer == msg.from || detector_.is_dead(peer)) {
          continue;
        }
        forward.push_back(peer);
      }
      if (st->cache) st->cache->invalidate_all();
      if (st->allocator) st->allocator->clear();
      sessions_.close(msg.session);
    }
    for (const SpaceId peer : forward) {
      Message fwd;
      fwd.type = MessageType::kInvalidate;
      fwd.to = peer;
      fwd.session = msg.session;
      fwd.seq = endpoint_.next_seq();
      xdr::Encoder enc(fwd.payload);
      enc.put_u32(aborted ? 1u : 0u);
      auto ack = guarded_roundtrip(std::move(fwd), MessageType::kInvalidateAck,
                                   full_dispatcher_, /*idempotent=*/true);
      if (!ack) {
        SRPC_WARN << name_ << ": invalidate cascade to space " << peer
                  << " failed: " << ack.status().to_string();
      }
    }
  } else if (cache_session_ == kNoSession || cache_session_ == msg.session) {
    // Invalidation is scoped to its session: a multicast from some other
    // ground must not nuke data a different (still open) session put here.
    cache_.invalidate_all();
    allocator_.clear();
    ambient_state_.updates.clear();
    ambient_state_.clear_ship();
    cache_session_ = kNoSession;
  }
  // Settle the session's extended_malloc storage in our heap: a committed
  // session's allocations become durable home data; an aborted session's
  // are orphans and are reclaimed. Both operations are idempotent, so
  // retransmitted INVALIDATEs are harmless.
  if (aborted) {
    const std::uint64_t reclaimed = heap_.reclaim_session(msg.session);
    stats_.orphan_bytes_reclaimed += reclaimed;
    if (reclaimed > 0) {
      SRPC_WARN << name_ << ": reclaimed " << reclaimed
                << " orphaned bytes of aborted session " << msg.session;
    }
  } else {
    (void)heap_.promote_session(msg.session);
  }
  // Any staged (never committed) write-back of this session dies with it.
  shadow_commits_.erase(msg.session);
  committed_epochs_.erase(msg.session);
  // The session is over: refuse any straggler (delayed or replayed
  // message) that still carries its id, so it cannot repopulate the cache.
  // Retransmitted INVALIDATEs still land here and are acked again.
  if (recovery_ != nullptr && !is_dead_session(msg.session)) {
    recovery_->note_settle(msg.session, aborted);
  }
  tombstone_session(msg.session);
  Message reply;
  reply.type = MessageType::kInvalidateAck;
  reply.to = msg.from;
  reply.session = msg.session;
  reply.seq = msg.seq;
  Status sent = endpoint_.send(std::move(reply));
  // Settlement is the checkpoint cadence: the session's effects are final
  // and the log up to here can be superseded by one heap image.
  maybe_checkpoint();
  return sent;
}

// ---------------------------------------------------------------------------
// Two-phase write-back (home side) and failure-detector probes
// ---------------------------------------------------------------------------

Status Runtime::serve_wb_prepare(Message msg) {
  ++stats_.wb_prepares_served;
  xdr::Decoder dec(msg.payload);
  auto epoch = dec.get_u64();
  if (!epoch) return send_error(msg.from, msg.session, msg.seq, epoch.status());

  // Multi-session prepares carry a write manifest (the home addresses the
  // batch will overwrite) ahead of the modified-set section. The manifest
  // must be consumed even on a duplicate so the stage cursor lands on the
  // section either way.
  std::vector<std::uint64_t> writes;
  if (multi_session_) {
    auto n = dec.get_u32();
    if (!n) return send_error(msg.from, msg.session, msg.seq, n.status());
    writes.reserve(n.value());
    for (std::uint32_t i = 0; i < n.value(); ++i) {
      auto addr = dec.get_u64();
      if (!addr) return send_error(msg.from, msg.session, msg.seq, addr.status());
      // Canonicalise interior addresses to the object base the lock table
      // keys on. An address we no longer host (freed, or a blind create)
      // has no version to defend and is skipped.
      const ManagedHeap::Record* record =
          heap_.find(reinterpret_cast<const void*>(addr.value()));
      if (record != nullptr) {
        writes.push_back(reinterpret_cast<std::uint64_t>(record->base));
      }
    }
  }

  const auto committed = committed_epochs_.find(msg.session);
  const bool already_applied =
      committed != committed_epochs_.end() && committed->second >= epoch.value();
  if (!already_applied && multi_session_) {
    // Arbitration gate: stale reads or a wound lose here, before anything
    // is staged, and the ground aborts + retries the whole session. The
    // gate is timed as a "concurrency.lock" span so the critical-path
    // analyzer can attribute commit latency to lock arbitration.
    const std::uint64_t lock_start = telemetry_.now_ns();
    SpanRecorder::Handle lock_span = SpanRecorder::kNoSpan;
    if (telemetry_.tracing()) {
      lock_span = telemetry_.tracer().start_local(
          "lock validate session " + std::to_string(msg.session),
          "concurrency.lock", lock_start);
    }
    Status granted = arbiter_.validate_prepare(msg.session, writes);
    const std::uint64_t lock_end = telemetry_.now_ns();
    if (lock_span != SpanRecorder::kNoSpan) {
      telemetry_.tracer().finish(lock_span, lock_end, granted.is_ok());
    }
    telemetry_.hist("concurrency.lock_wait_ns").record(lock_end - lock_start);
    if (!granted.is_ok()) {
      telemetry_.flight().event(FlightEventKind::kWbConflict, vnow_ns(),
                                msg.from, "prepare refused", 0, msg.session);
      return send_error(msg.from, msg.session, msg.seq, granted);
    }
  }
  if (!already_applied) {
    ShadowCommit& shadow = shadow_commits_[msg.session];
    if (shadow.epoch <= epoch.value()) {
      // Stage (or re-stage — retransmits and duplicates carry identical
      // bytes) the modified-set section. Nothing is applied yet.
      shadow.epoch = epoch.value();
      shadow.from = msg.from;
      // Shm-lane prepare: the slice borrows the arena region and shares
      // its pin, so staging costs zero bytes and the region stays alive
      // exactly until WB_COMMIT/WB_ABORT (or dead-peer cleanup) erases
      // this shadow entry. Byte-lane prepare: a plain copy, as before.
      shadow.staged = msg.payload.slice_remaining();
      if (recovery_ != nullptr) {
        // Journal the stage before it is acknowledged: once the ack lands
        // the coordinator may decide to commit, and a reincarnation of
        // this home must still hold the bytes to roll forward.
        recovery_->note_prepare(msg.session, epoch.value(), msg.from,
                                shadow.staged.data(), shadow.staged.size());
      }
    }
    // A prepare older than the current stage is a straggler from an
    // abandoned attempt: ignore its bytes but still ack (the retransmit
    // machinery only needs to hear that *a* prepare landed).
  }

  Message reply;
  reply.type = MessageType::kWbPrepareAck;
  reply.to = msg.from;
  reply.session = msg.session;
  reply.seq = msg.seq;
  return endpoint_.send(std::move(reply));
}

Status Runtime::serve_wb_commit(Message msg) {
  ++stats_.wb_commits_served;
  xdr::Decoder dec(msg.payload);
  auto epoch = dec.get_u64();
  if (!epoch) return send_error(msg.from, msg.session, msg.seq, epoch.status());

  const auto committed = committed_epochs_.find(msg.session);
  if (committed != committed_epochs_.end() && committed->second >= epoch.value()) {
    // Duplicate or retransmitted commit: already applied, just re-ack.
  } else {
    auto it = shadow_commits_.find(msg.session);
    if (it == shadow_commits_.end() || it->second.epoch != epoch.value()) {
      return send_error(
          msg.from, msg.session, msg.seq,
          failed_precondition("no staged write-back for session " +
                              std::to_string(msg.session) + " epoch " +
                              std::to_string(epoch.value())));
    }
    it->second.staged.reset_cursor();  // a failed earlier apply may have read
    Status applied = apply_modified_set(it->second.staged, it->second.from);
    if (!applied.is_ok()) {
      return send_error(msg.from, msg.session, msg.seq, applied);
    }
    committed_epochs_[msg.session] = epoch.value();
    shadow_commits_.erase(it);
    if (recovery_ != nullptr) {
      recovery_->note_commit(msg.session, epoch.value());
    }
    if (multi_session_) {
      // The write-back is durable: bump the versions of everything it
      // touched so later validations see the new world, and release this
      // session's locks and observations.
      arbiter_.commit(msg.session);
    }
  }

  Message reply;
  reply.type = MessageType::kWbCommitAck;
  reply.to = msg.from;
  reply.session = msg.session;
  reply.seq = msg.seq;
  return endpoint_.send(std::move(reply));
}

Status Runtime::serve_wb_abort(Message msg) {
  xdr::Decoder dec(msg.payload);
  auto epoch = dec.get_u64();
  if (!epoch) return send_error(msg.from, msg.session, msg.seq, epoch.status());

  auto it = shadow_commits_.find(msg.session);
  // Drop only the stage the abort names (or older): a delayed abort from an
  // abandoned attempt must not kill a newer attempt's stage.
  if (it != shadow_commits_.end() && it->second.epoch <= epoch.value()) {
    ++stats_.wb_aborts_served;
    shadow_commits_.erase(it);
    if (recovery_ != nullptr) {
      recovery_->note_abort(msg.session, epoch.value());
    }
    if (multi_session_) {
      // Only an abort that actually dropped a stage releases arbitration
      // state: a straggler from an abandoned attempt must not free the
      // locks a newer prepare of the same session just validated under.
      arbiter_.release(msg.session);
    }
  }
  // Always ack — aborts must be re-ackable even after the stage is long
  // gone (and even for tombstoned sessions).
  Message reply;
  reply.type = MessageType::kWbAbortAck;
  reply.to = msg.from;
  reply.session = msg.session;
  reply.seq = msg.seq;
  return endpoint_.send(std::move(reply));
}

Status Runtime::serve_ping(Message msg) {
  Message reply;
  reply.type = MessageType::kPong;
  reply.to = msg.from;
  reply.session = msg.session;
  reply.seq = msg.seq;
  return endpoint_.send(std::move(reply));
}

Status Runtime::serve_deref(Message msg) {
  ++stats_.derefs_served;
  xdr::Decoder dec(msg.payload);
  auto lp = decode_long_pointer(dec);
  if (!lp) return send_error(msg.from, msg.session, msg.seq, lp.status());
  if (lp.value().space != self_) {
    return send_error(msg.from, msg.session, msg.seq,
                      invalid_argument("deref for data homed elsewhere"));
  }
  const ManagedHeap::Record* record = heap_.find_base(lp.value().address);
  if (record == nullptr) {
    return send_error(msg.from, msg.session, msg.seq,
                      not_found("deref of unknown datum: " + lp.value().to_string()));
  }
  if (multi_session_ && msg.session != kNoSession) {
    // The session observed this object's current version; a later commit
    // by anyone else invalidates that read at WB_PREPARE time.
    arbiter_.note_read(msg.session,
                       reinterpret_cast<std::uint64_t>(record->base));
  }
  Message reply;
  reply.type = MessageType::kDerefReply;
  reply.to = msg.from;
  reply.session = msg.session;
  reply.seq = msg.seq;
  xdr::Encoder enc(reply.payload);
  LongPointerFieldCodec pointer_codec(*this);
  Status encoded =
      codec_.encode(arch_, record->type, record->base, enc, pointer_codec);
  if (!encoded.is_ok()) {
    return send_error(msg.from, msg.session, msg.seq, encoded);
  }
  return endpoint_.send(std::move(reply));
}

// ---------------------------------------------------------------------------
// Sessions (paper §3.1, §3.4)
// ---------------------------------------------------------------------------

Result<SessionId> Runtime::begin_session() {
  if (!multi_session_ && session_ != kNoSession) {
    return failed_precondition("session already active");
  }
  if (incarnation_ != 0) {
    // Recovery worlds partition the 32-bit counter field by incarnation
    // (2^24 sessions per life, 256 lives): a prior life's ids are
    // tombstoned at every home it touched, so minting one again would be
    // refused as a dead straggler. Running off the end of the partition —
    // or past life 256, where the seed itself exceeds 32 bits — must fail
    // loudly instead of bleeding into a neighbouring life's ids or
    // corrupting the space-id field that `session >> 32` recovers.
    const std::uint64_t next = session_counter_ + 1;
    if (next > 0xFFFFFFFFull ||
        (next >> 24) != static_cast<std::uint64_t>(incarnation_) - 1) {
      return resource_exhausted(
          "session-id partition exhausted for incarnation " +
          std::to_string(incarnation_) + " of space " + std::to_string(self_));
    }
  }
  const SessionId id = (static_cast<SessionId>(self_) << 32) |
                       (++session_counter_ & 0xFFFFFFFFull);
  if (multi_session_) {
    SessionState& st = state_for(id);
    st.local = true;
    // Materialise the cache overlay now: the ground is about to use it, and
    // arena reservation should not be charged to the first fetch.
    (void)cache_for(id);
    // The ambient session backs the no-argument end/abort overloads (and
    // legacy callers that never learned ids): first-open wins.
    if (session_ == kNoSession) session_ = id;
    if (telemetry_.tracing()) {
      ScopedSession scope(*this, id);
      st.span = telemetry_.tracer().start_local(
          "session " + std::to_string(id), "session", telemetry_.now_ns());
    }
    return id;
  }
  session_ = id;
  cache_session_ = id;
  if (telemetry_.tracing()) {
    // Single-session mode has no ScopedSession wrapping each operation, so
    // stamp the tracer's ambient session for the session's whole lifetime —
    // every span recorded until end/abort is attributable to it.
    telemetry_.tracer().set_session(id);
    ambient_state_.span = telemetry_.tracer().start_local(
        "session " + std::to_string(id), "session", telemetry_.now_ns());
  }
  return id;
}

Status Runtime::end_session() {
  if (session_ == kNoSession) {
    return failed_precondition("no active session");
  }
  return end_session(session_);
}

Status Runtime::end_session(SessionId id) {
  if (multi_session_) {
    if (sessions_.find(id) == nullptr) {
      return failed_precondition("unknown session " + std::to_string(id));
    }
  } else if (id == kNoSession || id != session_) {
    return failed_precondition("session " + std::to_string(id) +
                               " is not the active session");
  }
  // Pin the whole commit to `id`: every nested fetch, flush, span, and
  // write-back below is attributed to this session even when the worker
  // interleaves other sessions' serves through full_dispatcher_.
  ScopedSession scope(*this, id);
  SessionState& st = cur_state();
  CacheManager& session_cache =
      multi_session_ && st.cache ? *st.cache : cache_;
  RemoteAllocator& session_alloc =
      multi_session_ && st.allocator ? *st.allocator : allocator_;
  // While a commit is in flight the worker may serve other traffic: a
  // roundtrip that refuses to serve would deadlock two grounds committing
  // at each other, so multi-session mode always passes the full dispatcher.
  const RpcEndpoint::Dispatcher no_serve;
  const RpcEndpoint::Dispatcher& serve_during_commit =
      multi_session_ ? full_dispatcher_ : no_serve;
  const std::uint64_t t_start = telemetry_.now_ns();
  poll_failures();
  SRPC_RETURN_IF_ERROR(flush_alloc_batches());
  st.status = SessionStatus::kCommitting;

  // Examine the modified data set and write each datum back to its home,
  // one coalesced batch per home peer. Data whose final content the home
  // already observed (epoch/fingerprint match from the last hop) is skipped
  // entirely; a home with nothing left to learn gets no message.
  //
  // Toward two-phase-capable homes the batch travels as WB_PREPARE: the
  // home stages it in a shadow buffer keyed by {session, epoch} and applies
  // nothing yet. Only when EVERY home has acknowledged its prepare does
  // phase two commit them all — so a crash, partition, or deadline during
  // phase one aborts cleanly everywhere and no home is left half-new.
  // Legacy homes (capability not negotiated, or the local toggle off) keep
  // the one-shot WRITE_BACK and apply immediately.
  std::set<SpaceId> homes;
  for (const auto& d : session_cache.collect_modified_deltas()) {
    if (d.id.space != self_) homes.insert(d.id.space);
  }

  const std::uint64_t epoch = ++wb_epoch_;
  struct PreparedHome {
    SpaceId home;
    std::vector<ShippedRecord> shipped;
  };
  std::vector<PreparedHome> prepared;
  Status failure = Status::ok();

  // Builds the phase-two/abort frame (epoch only) for one home.
  auto epoch_message = [&](MessageType type, SpaceId home) {
    Message msg;
    msg.type = type;
    msg.to = home;
    msg.session = id;
    msg.seq = endpoint_.next_seq();
    xdr::Encoder enc(msg.payload);
    enc.put_u64(epoch);
    return msg;
  };

  // Encode every home's batch first (each snapshot rides one frame either
  // way), then ship. With parallel_commit_ every frame is in flight before
  // the first ack is collected, so the prepare fan-out costs the slowest
  // home rather than the sum of all round trips (bench/fig9_pipeline
  // measures the difference); sequential mode keeps one frame outstanding
  // at a time as the A/B baseline.
  struct PendingPrepare {
    SpaceId home = 0;
    bool capable = false;
    std::vector<ShippedRecord> shipped;
    Message msg;
    std::uint64_t seq = 0;
    bool issued = false;
  };
  std::vector<PendingPrepare> batch;
  for (const SpaceId home : homes) {
    const bool capable =
        two_phase_writeback_enabled_ && peer_caps_ &&
        (peer_caps_(home) & kCapTwoPhaseWriteBack) != 0;
    // The manifest (and the home's arbitration) rides only on prepares
    // between multi-session peers — the capability is world-uniform, so a
    // mixed wire format never occurs.
    const bool multi_capable =
        capable && multi_session_ &&
        (peer_caps_(home) & kCapMultiSession) != 0;
    Message msg;
    msg.type = capable ? MessageType::kWbPrepare : MessageType::kWriteBack;
    msg.to = home;
    msg.session = id;
    msg.seq = endpoint_.next_seq();
    std::size_t encoded = 0;
    std::vector<ShippedRecord> shipped;
    if (multi_capable) {
      // The write manifest (home addresses this batch overwrites) precedes
      // the modified-set section, but is derived from it — so encode the
      // section into a scratch buffer first, then splice.
      ByteBuffer section;
      Status attached = attach_modified_set(section, home,
                                            /*write_back=*/true, &encoded,
                                            &shipped);
      if (!attached.is_ok()) {
        failure = attached;
        break;
      }
      if (encoded == 0) continue;  // home already holds the final content
      xdr::Encoder enc(msg.payload);
      enc.put_u64(epoch);
      enc.put_u32(static_cast<std::uint32_t>(shipped.size()));
      for (const ShippedRecord& r : shipped) enc.put_u64(r.id.address);
      msg.payload.append(section.view());
    } else {
      if (capable) {
        xdr::Encoder enc(msg.payload);
        enc.put_u64(epoch);
      }
      Status attached = attach_modified_set(msg.payload, home,
                                            /*write_back=*/true, &encoded,
                                            &shipped);
      if (!attached.is_ok()) {
        failure = attached;
        break;
      }
      if (encoded == 0) continue;  // home already holds the final content
    }
    PendingPrepare p;
    p.home = home;
    p.capable = capable;
    p.shipped = std::move(shipped);
    p.msg = std::move(msg);
    batch.push_back(std::move(p));
  }

  // Both shapes are idempotent: WRITE_BACK overwrites, WB_PREPARE
  // re-stages the same bytes under the same epoch. Lost acks are
  // recovered by retransmission under the same seq.
  auto issue_prepare = [&](PendingPrepare& p) {
    if (p.capable) {
      ++stats_.wb_prepares;
      if (telemetry_.tracing()) {
        telemetry_.annotate("wb prepare: home " + std::to_string(p.home) +
                            " epoch " + std::to_string(epoch));
      }
    }
    auto issued = issue_guarded(
        std::move(p.msg),
        p.capable ? MessageType::kWbPrepareAck : MessageType::kWriteBackAck,
        /*idempotent=*/true);
    if (!issued) {
      if (failure.is_ok()) failure = issued.status();
      return;
    }
    p.seq = issued.value();
    p.issued = true;
  };
  auto settle_prepare = [&](PendingPrepare& p) {
    auto ack = collect_guarded(p.seq, serve_during_commit);
    if (!ack) {
      if (failure.is_ok()) failure = ack.status();
      return;
    }
    if (ack.value().type == MessageType::kError) {
      Status err = decode_error(ack.value());
      if (err.code() == StatusCode::kConflict) {
        // WB_CONFLICT: the home's arbiter refused the prepare (stale read,
        // wound, or an older writer holds the object). The session lost;
        // the caller aborts it and retries under backoff.
        ++stats_.wb_conflicts;
        telemetry_.count("concurrency.wb_conflicts",
                         "session=" + std::to_string(id));
        telemetry_.flight().event(FlightEventKind::kWbConflict, vnow_ns(),
                                  p.home, "lost arbitration", 0,
                                  id);
        SRPC_WARN << name_ << ": session " << id
                  << " lost arbitration at home " << p.home << ": "
                  << err.to_string();
      }
      if (failure.is_ok()) failure = err;
      return;
    }
    if (p.capable) {
      prepared.push_back(PreparedHome{p.home, std::move(p.shipped)});
    } else {
      commit_shipped(p.home, p.shipped);
    }
  };
  if (failure.is_ok()) {
    if (parallel_commit_) {
      // Fan out, then settle every in-flight frame (even once a failure is
      // recorded — no completion slot may leak, and every home that staged
      // must be known so the abort sweep below reaches it).
      for (PendingPrepare& p : batch) issue_prepare(p);
      for (PendingPrepare& p : batch) {
        if (p.issued) settle_prepare(p);
      }
    } else {
      for (PendingPrepare& p : batch) {
        if (!failure.is_ok()) break;
        issue_prepare(p);
        if (p.issued) settle_prepare(p);
      }
    }
  }

  // One acknowledged epoch-frame round trip (abort, commit, invalidate).
  struct PendingAck {
    SpaceId home = 0;
    std::uint64_t seq = 0;
    const PreparedHome* prep = nullptr;
  };

  if (!failure.is_ok()) {
    // Phase one failed somewhere: roll back every staged home, best-effort
    // (a home we cannot reach will drop its stage when the session's
    // INVALIDATE or tombstone eventually lands). The session stays open so
    // the caller may retry end_session() or fall back to abort_session().
    std::vector<PendingAck> aborts;
    auto settle_abort = [&](const PendingAck& a) {
      auto ack = collect_guarded(a.seq, serve_during_commit);
      if (!ack) {
        SRPC_WARN << name_ << ": write-back abort to space " << a.home
                  << " failed: " << ack.status().to_string();
      }
    };
    // Decision logged before any abort ships: if we crash mid-sweep, our
    // successor's REJOIN tells the still-staged homes to roll back.
    if (recovery_ != nullptr && !prepared.empty()) {
      recovery_->note_decision(id, epoch, /*committed=*/false);
    }
    for (const PreparedHome& p : prepared) {
      ++stats_.wb_aborts;
      if (telemetry_.tracing()) {
        telemetry_.annotate("wb abort: home " + std::to_string(p.home) +
                            " epoch " + std::to_string(epoch));
      }
      auto issued =
          issue_guarded(epoch_message(MessageType::kWbAbort, p.home),
                        MessageType::kWbAbortAck, /*idempotent=*/true);
      if (!issued) {
        SRPC_WARN << name_ << ": write-back abort to space " << p.home
                  << " failed: " << issued.status().to_string();
        continue;
      }
      PendingAck a{p.home, issued.value(), nullptr};
      if (parallel_commit_) {
        aborts.push_back(a);
      } else {
        settle_abort(a);
      }
    }
    for (const PendingAck& a : aborts) settle_abort(a);
    st.status = SessionStatus::kActive;  // still open: retry or abort
    return failure;
  }

  // Phase two: every home staged successfully — commit them all. A failure
  // here leaves the session open and is safe to retry: homes that already
  // committed re-ack the duplicate epoch, homes that still hold the stage
  // apply it, and a retried end_session() re-prepares only what the
  // fingerprint suppression has not already committed. The fan-out follows
  // parallel_commit_ like phase one; every issued frame is settled before
  // the first failure is reported.
  //
  // The commit decision is journaled BEFORE the first WB_COMMIT ships —
  // this is the atomic commit point of the session. If we crash between
  // here and the last ack, our successor's REJOIN carries the decision and
  // every home still holding its stage rolls forward.
  if (recovery_ != nullptr && !prepared.empty()) {
    recovery_->note_decision(id, epoch, /*committed=*/true);
  }
  Status commit_failure = Status::ok();
  std::vector<PendingAck> commits;
  auto settle_commit = [&](const PendingAck& a) {
    auto ack = collect_guarded(a.seq, serve_during_commit);
    if (!ack) {
      if (commit_failure.is_ok()) commit_failure = ack.status();
      return;
    }
    if (ack.value().type == MessageType::kError) {
      Status err = decode_error(ack.value());
      if (commit_failure.is_ok()) commit_failure = err;
      return;
    }
    commit_shipped(a.home, a.prep->shipped);
  };
  for (const PreparedHome& p : prepared) {
    if (!parallel_commit_ && !commit_failure.is_ok()) break;
    ++stats_.wb_commits;
    if (telemetry_.tracing()) {
      telemetry_.annotate("wb commit: home " + std::to_string(p.home) +
                          " epoch " + std::to_string(epoch));
    }
    auto issued =
        issue_guarded(epoch_message(MessageType::kWbCommit, p.home),
                      MessageType::kWbCommitAck, /*idempotent=*/true);
    if (!issued) {
      if (commit_failure.is_ok()) commit_failure = issued.status();
      continue;
    }
    PendingAck a{p.home, issued.value(), &p};
    if (parallel_commit_) {
      commits.push_back(a);
    } else {
      settle_commit(a);
    }
  }
  for (const PendingAck& a : commits) settle_commit(a);
  if (!commit_failure.is_ok()) {
    st.status = SessionStatus::kActive;
    return commit_failure;
  }

  // Multicast the invalidation to every space concerned with the session.
  // The explicit aborted=0 flag tells homes the session committed: their
  // extended_malloc storage owned by it is promoted to durable home data.
  // Multi-session mode multicasts only to the peers this session actually
  // touched (each forwards to its own touched set); single-session mode
  // keeps the whole-directory sweep.
  std::vector<SpaceId> invalidate_targets;
  if (multi_session_) {
    invalidate_targets.assign(st.touched.begin(), st.touched.end());
  } else {
    const std::vector<SpaceId> everyone = directory_();
    invalidate_targets.assign(everyone.begin(), everyone.end());
  }
  Status inv_failure = Status::ok();
  std::vector<PendingAck> invalidations;
  auto settle_invalidate = [&](const PendingAck& a) {
    auto ack = collect_guarded(a.seq, serve_during_commit);
    if (!ack) {
      if (inv_failure.is_ok()) inv_failure = ack.status();
      return;
    }
    if (ack.value().type == MessageType::kError) {
      Status err = decode_error(ack.value());
      if (inv_failure.is_ok()) inv_failure = err;
    }
  };
  for (const SpaceId peer : invalidate_targets) {
    // A dead peer has nothing left to invalidate (its pages were revoked,
    // its orphans reclaimed) and must not wedge everyone else's commit.
    if (peer == self_ || detector_.is_dead(peer)) continue;
    if (!parallel_commit_ && !inv_failure.is_ok()) break;
    Message msg;
    msg.type = MessageType::kInvalidate;
    msg.to = peer;
    msg.session = id;
    msg.seq = endpoint_.next_seq();
    xdr::Encoder enc(msg.payload);
    enc.put_u32(0);  // not aborted
    auto issued = issue_guarded(std::move(msg), MessageType::kInvalidateAck,
                                /*idempotent=*/true);
    if (!issued) {
      if (inv_failure.is_ok()) inv_failure = issued.status();
      continue;
    }
    PendingAck a{peer, issued.value(), nullptr};
    if (parallel_commit_) {
      invalidations.push_back(a);
    } else {
      settle_invalidate(a);
    }
  }
  for (const PendingAck& a : invalidations) settle_invalidate(a);
  if (!inv_failure.is_ok()) {
    st.status = SessionStatus::kActive;
    return inv_failure;
  }

  session_cache.invalidate_all();
  session_alloc.clear();
  st.updates.clear();
  st.clear_ship();
  if (st.span != SpanRecorder::kNoSpan) {
    telemetry_.tracer().finish(st.span, telemetry_.now_ns(), /*ok=*/true);
    st.span = SpanRecorder::kNoSpan;
  }
  ++stats_.sessions_committed;
  telemetry_.hist("session.commit_ns", "session=" + std::to_string(id))
      .record(telemetry_.now_ns() - t_start);
  telemetry_.observe_slo("SESSION_COMMIT", telemetry_.now_ns() - t_start);
  if (multi_session_) {
    // Any arbitration state this session left in the local arbiter (it is
    // usually empty — grounds do not fetch from themselves) dies with it.
    arbiter_.release(id);
    if (session_ == id) session_ = kNoSession;
    sessions_.close(id);
  } else {
    cache_session_ = kNoSession;
    session_ = kNoSession;
    if (telemetry_.tracer().session() == id) {
      telemetry_.tracer().set_session(kNoSession);
    }
  }
  return Status::ok();
}

Status Runtime::abort_session() {
  if (multi_session_) {
    return session_ == kNoSession ? Status::ok() : abort_session(session_);
  }
  const SessionId aborting = session_ != kNoSession ? session_ : cache_session_;
  if (aborting == kNoSession && cache_.table().size() == 0 &&
      ambient_state_.updates.empty()) {
    return Status::ok();  // nothing to unwind
  }
  ++stats_.sessions_aborted;
  telemetry_.flight().event(FlightEventKind::kSessionAbort, vnow_ns(),
                            kInvalidSpaceId, {}, 0, aborting);
  SRPC_WARN << name_ << ": aborting session " << aborting;
  poll_failures();

  // Un-flushed extended_malloc/free batches die with the session —
  // provisional identities never reached a home, so there is nothing to
  // undo remotely.
  allocator_.clear();

  // Best-effort invalidation multicast so peers drop (and tombstone) the
  // session too. A failure never stops the local unwind — abort must leave
  // the runtime reusable even on a dead network — but it is reported to the
  // caller: an unreachable live peer still holds session state it will only
  // shed through its own tombstones or failure detection.
  Status worst = Status::ok();
  if (aborting != kNoSession) {
    for (const SpaceId peer : directory_()) {
      if (peer == self_ || detector_.is_dead(peer)) continue;
      Message msg;
      msg.type = MessageType::kInvalidate;
      msg.to = peer;
      msg.session = aborting;
      msg.seq = endpoint_.next_seq();
      // aborted=1: homes discard any staged write-back and reclaim the
      // extended_malloc storage this session created there.
      xdr::Encoder enc(msg.payload);
      enc.put_u32(1);
      auto ack = guarded_roundtrip(std::move(msg), MessageType::kInvalidateAck,
                                   nullptr, /*idempotent=*/true);
      if (!ack) {
        SRPC_WARN << name_ << ": abort invalidate of space " << peer
                  << " failed: " << ack.status().to_string();
        worst = ack.status();
      }
    }
    tombstone_session(aborting);
  }

  // Local unwind: drop every cached page (re-protecting the arena), every
  // pending overlay, and the travelling modified set. The heap (home data)
  // is untouched — only session-scoped state dies.
  cache_.invalidate_all();
  ambient_state_.updates.clear();
  ambient_state_.clear_ship();
  cache_session_ = kNoSession;
  session_ = kNoSession;
  if (telemetry_.tracer().session() == aborting) {
    telemetry_.tracer().set_session(kNoSession);
  }
  if (ambient_state_.span != SpanRecorder::kNoSpan) {
    telemetry_.tracer().annotate(ambient_state_.span, "session aborted",
                                 telemetry_.now_ns());
    telemetry_.tracer().finish(ambient_state_.span, telemetry_.now_ns(),
                               /*ok=*/false);
    ambient_state_.span = SpanRecorder::kNoSpan;
  }
  return worst;
}

Status Runtime::abort_session(SessionId id) {
  if (!multi_session_) {
    // A Session object whose session already ended (or was superseded)
    // must not unwind a sibling's state: only the active id may abort.
    const SessionId aborting = session_ != kNoSession ? session_ : cache_session_;
    if (aborting != kNoSession && id != aborting) return Status::ok();
    return abort_session();
  }
  SessionState* st = sessions_.find(id);
  if (st == nullptr) return Status::ok();  // already gone — abort is idempotent
  ScopedSession scope(*this, id);
  ++stats_.sessions_aborted;
  telemetry_.flight().event(FlightEventKind::kSessionAbort, vnow_ns(),
                            kInvalidSpaceId, {}, 0, id);
  SRPC_WARN << name_ << ": aborting session " << id;
  st->status = SessionStatus::kAborted;
  // Un-flushed extended_malloc/free batches die with the session —
  // provisional identities never reached a home, so there is nothing to
  // undo remotely.
  if (st->allocator) st->allocator->clear();
  const std::vector<SpaceId> targets(st->touched.begin(), st->touched.end());
  // Best-effort invalidation to the touched peers (each cascades onward).
  // A failure never stops the local unwind, but is reported to the caller.
  Status worst = Status::ok();
  for (const SpaceId peer : targets) {
    if (peer == self_ || detector_.is_dead(peer)) continue;
    Message msg;
    msg.type = MessageType::kInvalidate;
    msg.to = peer;
    msg.session = id;
    msg.seq = endpoint_.next_seq();
    // aborted=1: homes discard any staged write-back and reclaim the
    // extended_malloc storage this session created there.
    xdr::Encoder enc(msg.payload);
    enc.put_u32(1);
    auto ack = guarded_roundtrip(std::move(msg), MessageType::kInvalidateAck,
                                 full_dispatcher_, /*idempotent=*/true);
    if (!ack) {
      SRPC_WARN << name_ << ": abort invalidate of space " << peer
                << " failed: " << ack.status().to_string();
      worst = ack.status();
    }
  }
  tombstone_session(id);
  arbiter_.release(id);
  // The roundtrips above may have served nested traffic; re-resolve the
  // state before the final unwind in case a cascade already closed it.
  st = sessions_.find(id);
  if (st != nullptr) {
    if (st->cache) st->cache->invalidate_all();
    if (st->span != SpanRecorder::kNoSpan) {
      telemetry_.tracer().annotate(st->span, "session aborted",
                                   telemetry_.now_ns());
      telemetry_.tracer().finish(st->span, telemetry_.now_ns(), /*ok=*/false);
      st->span = SpanRecorder::kNoSpan;
    }
    sessions_.close(id);
  }
  if (session_ == id) session_ = kNoSession;
  return worst;
}

// ---------------------------------------------------------------------------
// Worker loop
// ---------------------------------------------------------------------------

Status Runtime::dispatch(Message msg) {
  // Pin the serve (and everything nested under it — spans, fetches, state
  // lookups) to the session the message names. This is what lets one
  // worker thread interleave many sessions without cross-talk.
  ScopedSession scope(*this, msg.session);
  // Stragglers of invalidated sessions are refused before they can touch
  // any state: a delayed CALL or WRITE_BACK must not repopulate the cache
  // of a session that is already gone. INVALIDATE itself stays servable
  // (retransmits must keep getting acks) and FETCH against tombstones is
  // refused so the requester fails fast rather than resurrecting the id.
  switch (msg.type) {
    case MessageType::kCall:
    case MessageType::kFetch:
    case MessageType::kAllocBatch:
    case MessageType::kWriteBack:
    case MessageType::kWbPrepare:
    case MessageType::kWbCommit:
    case MessageType::kDeref:
      if (is_dead_session(msg.session)) {
        ++stats_.dead_session_rejections;
        SRPC_DEBUG << name_ << ": refusing " << to_string(msg.type)
                   << " from dead session " << msg.session;
        return send_error(msg.from, msg.session, msg.seq,
                          unavailable("session " + std::to_string(msg.session) +
                                      " was invalidated"));
      }
      break;
    default:
      break;
  }

  // Non-idempotent requests execute at most once: a duplicated delivery
  // (the reply for the first copy is en route) is absorbed by request id,
  // before any server span is recorded.
  if (msg.type == MessageType::kCall || msg.type == MessageType::kAllocBatch) {
    if (note_duplicate_request(msg.from, msg.seq)) {
      ++stats_.duplicate_requests_absorbed;
      SRPC_DEBUG << name_ << ": absorbing duplicate " << to_string(msg.type)
                 << " seq=" << msg.seq << " from " << msg.from;
      return Status::ok();
    }
  }

  // Server span covering the serve of one incoming request, parented to
  // the caller's client span through the wire TraceContext (hop + 1). A
  // retransmitted request carries the original context verbatim, so a
  // duplicate serve lands as a sibling of the first — the tree never
  // forks.
  SpanRecorder::Handle span = SpanRecorder::kNoSpan;
  if (telemetry_.tracing()) {
    switch (msg.type) {
      case MessageType::kCall:
      case MessageType::kFetch:
      case MessageType::kAllocBatch:
      case MessageType::kWriteBack:
      case MessageType::kInvalidate:
      case MessageType::kWbPrepare:
      case MessageType::kWbCommit:
      case MessageType::kWbAbort:
      case MessageType::kPing:
      case MessageType::kRejoin:
      case MessageType::kDeref:
        span = telemetry_.tracer().start_server(
            msg.trace, "serve " + std::string(to_string(msg.type)),
            "rpc.server", telemetry_.now_ns());
        break;
      default:
        break;
    }
  }
  if (span == SpanRecorder::kNoSpan) {
    return dispatch_serve(std::move(msg));
  }
  Status served = dispatch_serve(std::move(msg));
  telemetry_.tracer().finish(span, telemetry_.now_ns(), served.is_ok());
  return served;
}

Status Runtime::dispatch_serve(Message msg) {
  switch (msg.type) {
    case MessageType::kCall:
      return serve_call(std::move(msg));
    case MessageType::kAllocBatch:
      return serve_alloc_batch(std::move(msg));
    case MessageType::kFetch:
      return serve_fetch(std::move(msg));
    case MessageType::kWriteBack:
      return serve_writeback(std::move(msg));
    case MessageType::kInvalidate:
      return serve_invalidate(std::move(msg));
    case MessageType::kWbPrepare:
      return serve_wb_prepare(std::move(msg));
    case MessageType::kWbCommit:
      return serve_wb_commit(std::move(msg));
    case MessageType::kWbAbort:
      // Always servable, even past the tombstone: a lost abort may be
      // retransmitted after the session's INVALIDATE already landed.
      return serve_wb_abort(std::move(msg));
    case MessageType::kPing:
      return serve_ping(std::move(msg));
    case MessageType::kRejoin:
      // Always servable — this is how a reincarnated peer re-enters the
      // world; dedup happens inside by {peer, incarnation}.
      return serve_rejoin(std::move(msg));
    case MessageType::kDeref:
      return serve_deref(std::move(msg));
    case MessageType::kShutdown:
      running_ = false;
      return Status::ok();
    case MessageType::kReturn:
    case MessageType::kFetchReply:
    case MessageType::kAllocReply:
    case MessageType::kWriteBackAck:
    case MessageType::kInvalidateAck:
    case MessageType::kWbPrepareAck:
    case MessageType::kWbCommitAck:
    case MessageType::kWbAbortAck:
    case MessageType::kPong:
    case MessageType::kRejoinAck:
    case MessageType::kDerefReply:
    case MessageType::kError:
      // A reply whose request already completed: the first copy (or a
      // retransmit's twin) won the await. Absorb silently — this is the
      // sender half of request-id dedup.
      ++stats_.stale_replies_absorbed;
      SRPC_DEBUG << name_ << ": absorbing stale " << to_string(msg.type)
                 << " seq=" << msg.seq << " from " << msg.from;
      return Status::ok();
  }
  SRPC_WARN << name_ << ": dropping out-of-band " << to_string(msg.type)
            << " seq=" << msg.seq << " from " << msg.from;
  return Status::ok();
}

void Runtime::serve_forever() {
  // Label this worker's SRPC_LOG lines with the space name and, on the
  // simulated network, the virtual-clock time.
  if (sim_ != nullptr) {
    set_thread_log_context(
        name_.c_str(),
        [](void* arg) { return static_cast<const Runtime*>(arg)->vnow_ns(); },
        this);
  } else {
    set_thread_log_context(name_.c_str());
  }
  running_ = true;
  while (running_) {
    auto item = endpoint_.next();
    if (!item) break;  // mailbox closed
    if (std::holds_alternative<Task>(item.value())) {
      std::get<Task>(item.value())();
      continue;
    }
    Status served = dispatch(std::get<Message>(std::move(item).value()));
    if (!served.is_ok()) {
      SRPC_ERROR << name_ << ": dispatch failed: " << served.to_string();
    }
  }
}

}  // namespace srpc
