// Introspection: human-readable dumps of runtime state. For debugging
// distributed pointer plumbing the first question is always "what does the
// data allocation table think?" — these answer it without a debugger.
#pragma once

#include <string>

#include "core/runtime.hpp"

namespace srpc {

// The space's data allocation table in the paper's Table-1 layout, plus
// page states; one line per entry.
std::string dump_allocation_table(const Runtime& rt);

// Page-state summary of the cache arena (counts per state, dirty pages).
std::string dump_page_states(const Runtime& rt);

// Heap inventory: live allocations with types and sizes.
std::string dump_heap(const Runtime& rt);

// One-line counters: calls, fetches, faults, bytes.
std::string dump_counters(const Runtime& rt);

}  // namespace srpc
