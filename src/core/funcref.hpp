// FuncRef — remote pointers to functions (extension).
//
// The paper closes with: "the method does not support a remote pointer to a
// function. This limitation might not be negligible, since passing a
// pointer that references a function to [a] remote procedure is one of the
// strongest motivations for using remote pointers" (§6), pointing at Ohori
// & Kato's higher-order stub generation as the companion technique.
//
// This extension supplies the practical core of that: a FuncRef names a
// procedure bound in some address space ({space id, procedure name} — the
// function-world analogue of a long pointer), marshals like any other
// value, and invoke() calls through it from wherever it ends up — including
// back into the space that created it (a first-class callback).
#pragma once

#include <string>

#include "core/marshal.hpp"
#include "core/runtime.hpp"

namespace srpc {

struct FuncRef {
  SpaceId space = kInvalidSpaceId;
  std::string name;

  [[nodiscard]] bool is_null() const noexcept { return space == kInvalidSpaceId; }

  friend bool operator==(const FuncRef& a, const FuncRef& b) noexcept {
    return a.space == b.space && a.name == b.name;
  }
};

// Binds `fn` in `rt`'s space and returns the reference naming it.
template <typename F>
Result<FuncRef> make_funcref(Runtime& rt, const std::string& name, F fn) {
  SRPC_RETURN_IF_ERROR(bind_procedure(rt, name, std::move(fn)));
  return FuncRef{rt.id(), name};
}

// Invokes through a function reference. A reference into another space is
// an RPC (a callback if that space is an ancestor caller); a reference into
// the current space dispatches straight to the local binding — the same
// transparency rule pointers get ("programmers need not be aware that a
// pointer is local or remote").
Result<ByteBuffer> invoke_raw(Runtime& rt, const FuncRef& ref, ByteBuffer args,
                              std::span<const std::uint64_t> pointer_roots);

template <typename R, typename... Args>
Result<R> invoke(Runtime& rt, const FuncRef& ref, const Args&... args) {
  static_assert(!std::is_void_v<R>, "void invoke unsupported; return a status code");
  SRPC_RETURN_IF_ERROR(rt.flush_pending_memory_ops());
  ByteBuffer argbuf;
  xdr::Encoder enc(argbuf);
  std::vector<std::uint64_t> roots;
  SRPC_RETURN_IF_ERROR(detail::encode_args(rt, enc, roots, args...));
  auto reply = invoke_raw(rt, ref, std::move(argbuf), roots);
  if (!reply) return reply.status();
  xdr::Decoder dec(reply.value());
  return Param<std::decay_t<R>>::decode(rt, dec);
}

// Wire form: space u32 | name string. Null encodes space = kInvalidSpaceId.
template <>
struct Param<FuncRef, void> {
  static Status encode(Runtime&, xdr::Encoder& enc, std::vector<std::uint64_t>&,
                       const FuncRef& ref) {
    enc.put_u32(ref.space);
    enc.put_string(ref.name);
    return Status::ok();
  }
  static Result<FuncRef> decode(Runtime&, xdr::Decoder& dec) {
    auto space = dec.get_u32();
    if (!space) return space.status();
    auto name = dec.get_string(4096);
    if (!name) return name.status();
    return FuncRef{space.value(), std::move(name).value()};
  }
};

}  // namespace srpc
