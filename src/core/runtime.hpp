// Runtime — the smart-RPC engine of one address space.
//
// Ties the substrates together into the paper's system:
//   * conventional RPC (call/return over the endpoint, service registry);
//   * transparent remote pointers (swizzle on receipt via the cache, MMU
//     fault -> fetch -> fill, unswizzle on send via heap + allocation
//     table);
//   * eagerness (closure packer attached to arguments, results, and fetch
//     replies);
//   * the session coherency protocol (modified data set travels on every
//     control transfer; ground write-back + invalidation at session end);
//   * batched remote memory management.
//
// One Runtime runs on one worker thread (see AddressSpace); every method
// here executes on that thread, including re-entrant service while blocked
// in a call and fetches issued from the SIGSEGV handler.
#pragma once

#include <chrono>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/config.hpp"
#include "common/ids.hpp"
#include "common/status.hpp"
#include "concurrency/arbiter.hpp"
#include "concurrency/session_table.hpp"
#include "core/cache_manager.hpp"
#include "core/closure.hpp"
#include "core/failure_detector.hpp"
#include "core/modified_set.hpp"
#include "mem/managed_heap.hpp"
#include "mem/recovery_log.hpp"
#include "mem/remote_allocator.hpp"
#include "net/sim_network.hpp"
#include "obs/telemetry.hpp"
#include "rpc/future.hpp"
#include "rpc/rpc_endpoint.hpp"
#include "rpc/service_registry.hpp"
#include "rpc/wire.hpp"
#include "types/host_type_map.hpp"
#include "types/value_codec.hpp"

namespace srpc {

struct RuntimeStats {
  std::uint64_t calls_sent = 0;
  std::uint64_t calls_served = 0;
  std::uint64_t fetches_served = 0;
  std::uint64_t derefs_served = 0;
  std::uint64_t writebacks_served = 0;
  std::uint64_t alloc_batches_served = 0;
  // Failure-handling layer (PROTOCOL.md "Timeouts, retries, and duplicate
  // absorption").
  std::uint64_t stale_replies_absorbed = 0;     // replies for finished requests
  std::uint64_t duplicate_requests_absorbed = 0;  // replayed CALL/ALLOC_BATCH
  std::uint64_t dead_session_rejections = 0;    // traffic from tombstoned sessions
  std::uint64_t sessions_aborted = 0;
  // Delta-encoded modified sets (PROTOCOL.md "MODIFIED_DELTA").
  std::uint64_t modified_bytes_shipped = 0;   // wire bytes of every modified-set
                                              // section this runtime attached
  std::uint64_t delta_bytes_shipped = 0;      // of which delta-format entries
  std::uint64_t deltas_skipped_by_epoch = 0;  // objects omitted because the
                                              // destination already held them
  // Crash-safe session commit & failure containment (PROTOCOL.md "Failure
  // model & two-phase write-back").
  std::uint64_t wb_prepares = 0;          // WB_PREPARE round trips initiated
  std::uint64_t wb_commits = 0;           // WB_COMMIT round trips initiated
  std::uint64_t wb_aborts = 0;            // WB_ABORT rollbacks initiated
  std::uint64_t wb_prepares_served = 0;   // shadow stagings at this home
  std::uint64_t wb_commits_served = 0;    // shadow applications at this home
  std::uint64_t wb_aborts_served = 0;     // shadow discards at this home
  std::uint64_t probes_sent = 0;          // failure-detector pings issued
  std::uint64_t peers_died = 0;           // dead-peer cleanups performed here
  std::uint64_t failfast_rejections = 0;  // requests refused locally: peer dead
  std::uint64_t leases_expired = 0;       // source leases revoked (death/lapse)
  std::uint64_t orphan_bytes_reclaimed = 0;  // extended_malloc storage freed
                                             // after owner death or abort
  std::uint64_t session_teardown_failures = 0;  // ~Session: end AND abort failed
  // Concurrent multi-session runtime (PROTOCOL.md "Concurrent sessions &
  // arbitration").
  std::uint64_t sessions_committed = 0;  // end_session() completions here
  std::uint64_t wb_conflicts = 0;        // WB_PREPAREs we lost (client side)
  // Zero-copy shm payload lane (PROTOCOL.md "Zero-copy payload lane").
  std::uint64_t shm_payloads_published = 0;  // payloads elevated to views
  std::uint64_t shm_publish_fallbacks = 0;   // arena full -> byte lane
  // Space reincarnation (PROTOCOL.md "Incarnations, fencing & rejoin").
  std::uint64_t fenced_stale_messages = 0;  // frames dropped: prior-life traffic
  std::uint64_t rejoins_sent = 0;           // REJOIN announcements issued
  std::uint64_t rejoins_served = 0;         // peer reincarnations applied here
  std::uint64_t recovery_replays = 0;       // log records replayed at startup
  std::uint64_t in_doubt_resolved_commit = 0;  // stale stages rolled forward
  std::uint64_t in_doubt_resolved_abort = 0;   // stale stages rolled back
  std::uint64_t checkpoints_taken = 0;         // heap images appended to the log
};

class Runtime final : public PageFetcher,
                      public LocalDataView,
                      public PointerTranslator {
 public:
  // `sim` may be null (real-socket transport): fault costs then show up as
  // real time instead of virtual time. `directory` lists every space in the
  // world for the session-end invalidation multicast.
  // `peer_caps` reports the capability bits (rpc/wire.hpp kCap*) a peer
  // accepts; empty means "no optional features" and keeps every payload in
  // the legacy format.
  Runtime(SpaceId self, std::string name, const ArchModel& arch,
          TypeRegistry& registry, const LayoutEngine& layouts,
          HostTypeMap& host_types, Transport& transport, SimNetwork* sim,
          CacheOptions cache_options,
          std::function<std::vector<SpaceId>()> directory,
          TimeoutConfig timeouts = {},
          std::function<std::uint32_t(SpaceId)> peer_caps = {});
  ~Runtime() override = default;
  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  Status init();

  // --- identity & services --------------------------------------------------

  [[nodiscard]] SpaceId id() const noexcept { return self_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const ArchModel& arch() const noexcept { return arch_; }
  [[nodiscard]] TypeRegistry& registry() noexcept { return registry_; }
  [[nodiscard]] const LayoutEngine& layouts() const noexcept { return layouts_; }
  [[nodiscard]] const ValueCodec& codec() const noexcept { return codec_; }
  [[nodiscard]] HostTypeMap& host_types() noexcept { return host_types_; }
  [[nodiscard]] ManagedHeap& heap() noexcept { return heap_; }
  [[nodiscard]] const ManagedHeap& heap() const noexcept { return heap_; }
  // The cache serving the current session: the shared default cache in
  // single-session mode, the session's own overlay in multi-session mode.
  [[nodiscard]] CacheManager& cache();
  [[nodiscard]] const CacheManager& cache() const;
  [[nodiscard]] ServiceRegistry& services() noexcept { return services_; }
  [[nodiscard]] Mailbox& mailbox() noexcept { return mailbox_; }
  [[nodiscard]] RpcEndpoint& endpoint() noexcept { return endpoint_; }
  [[nodiscard]] const RuntimeStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept {
    stats_ = RuntimeStats{};
    telemetry_.metrics().reset();
    telemetry_.tracer().clear();
  }

  // --- observability (src/obs) ----------------------------------------------

  [[nodiscard]] Telemetry& telemetry() noexcept { return telemetry_; }
  [[nodiscard]] const Telemetry& telemetry() const noexcept { return telemetry_; }
  [[nodiscard]] SpanRecorder& tracer() noexcept { return telemetry_.tracer(); }
  [[nodiscard]] MetricsRegistry& metrics() noexcept { return telemetry_.metrics(); }
  void set_tracing(bool on) noexcept { telemetry_.set_tracing(on); }
  [[nodiscard]] bool tracing() const noexcept { return telemetry_.tracing(); }

  // JSON snapshot of the metrics registry with the legacy RuntimeStats and
  // CacheStats counters folded in, so one export shows everything.
  [[nodiscard]] std::string metrics_json();

  // JSON health snapshot for THIS space: incarnation, failure-detector
  // verdicts, lock-table contention, dedup-window and completion-slot
  // occupancy, in-doubt stages, SLO state, flight-recorder fill.
  // World::health_json() aggregates one per space plus arena pressure.
  [[nodiscard]] std::string health_json();

  // WorldOptions-driven observability config (applied for every life of
  // the space, including reincarnations).
  void configure_slo(const SloConfig& config) {
    telemetry_.slo().configure(config);
  }

  // Deadline/retry policy for every request this runtime initiates.
  [[nodiscard]] const TimeoutConfig& timeouts() const noexcept { return timeouts_; }
  void set_timeouts(const TimeoutConfig& timeouts) noexcept { timeouts_ = timeouts; }

  // Local kill switch for delta-encoded modified sets (benchmarks ablate
  // with it). Off, every modified object ships as a full graph payload even
  // to delta-capable peers. Flip only between sessions.
  [[nodiscard]] bool modified_deltas() const noexcept {
    return modified_deltas_enabled_;
  }
  void set_modified_deltas(bool on) noexcept { modified_deltas_enabled_ = on; }

  // Local kill switch for the two-phase session-end write-back. Off, this
  // runtime ends sessions with the one-shot WRITE_BACK protocol even toward
  // capable peers. Flip only between sessions.
  [[nodiscard]] bool two_phase_writeback() const noexcept {
    return two_phase_writeback_enabled_;
  }
  void set_two_phase_writeback(bool on) noexcept {
    two_phase_writeback_enabled_ = on;
  }

  // Parallel per-home fan-out at session end (two-phase write-back): all
  // WB_PREPAREs are issued before any ack is collected, then all
  // WB_COMMITs, then the invalidation multicast — commit latency is the
  // slowest home, not the sum. Off, each round trip completes before the
  // next home is addressed (the pre-pipelining behaviour; kept as a bench
  // ablation). Flip only between sessions.
  [[nodiscard]] bool parallel_commit() const noexcept { return parallel_commit_; }
  void set_parallel_commit(bool on) noexcept { parallel_commit_ = on; }

  // --- zero-copy shm payload lane (PROTOCOL.md "Zero-copy payload lane") ----

  // Attaches the world's shared arena and installs the payload elevator on
  // the endpoint's send choke point (every outbound message funnels
  // through it, including retransmits). nullptr detaches. Call before
  // start() — the elevator runs on the worker thread only.
  void set_shm_arena(ShmArena* arena);
  [[nodiscard]] ShmArena* shm_arena() const noexcept { return shm_arena_; }

  // Kill switch over the attached arena: elevation happens only while
  // enabled (default on). Flipping it off mid-run is safe — in-flight
  // views drain normally, new sends take the byte lane.
  void set_shm_payload(bool on) noexcept { shm_payload_enabled_ = on; }
  [[nodiscard]] bool shm_payload_enabled() const noexcept {
    return shm_payload_enabled_;
  }

  // --- failure containment --------------------------------------------------

  // Per-peer liveness verdicts. The detector is thread-safe; World::mark_dead
  // flips the bit from outside the worker, then queues on_peer_dead() for
  // the side effects.
  [[nodiscard]] FailureDetector& detector() noexcept { return detector_; }

  // Containment for one dead peer: revoke its cached pages (leases), drop
  // shadow commits it staged, and reclaim extended_malloc storage it owns.
  // Must run on the worker thread at a safe point (never inside the SIGSEGV
  // fill path) — external callers go through the mailbox task queue.
  void on_peer_dead(SpaceId peer);

  // Lease time-to-live on cached sources, in virtual-clock nanoseconds.
  // 0 (default) disables lapse-based revocation; death-based revocation via
  // on_peer_dead() is always active.
  void set_lease_ttl_ns(std::uint64_t ttl_ns) noexcept { lease_ttl_ns_ = ttl_ns; }
  [[nodiscard]] std::uint64_t lease_ttl_ns() const noexcept { return lease_ttl_ns_; }

  // Drains queued dead-peer cleanups and revokes lapsed leases. Runs
  // automatically at session boundaries and before calls; exposed so tests
  // can force a check at a known point.
  void poll_failures();

  // Called by Session's destructor when end_session() failed AND the
  // abort_session() fallback failed too — the swallowed-status counter.
  void note_session_teardown_failure() noexcept {
    ++stats_.session_teardown_failures;
  }

  // --- crash recovery & reincarnation (PROTOCOL.md "Incarnations, fencing
  // --- & rejoin") ------------------------------------------------------------

  // Attaches the World-owned durable log and this runtime's incarnation
  // number (>= 1; 0 detaches and keeps the legacy wire format). Installs
  // the incarnation stamp and the stale-frame fence on the endpoint and
  // flips the heap into retain-freed mode so logged addresses stay mapped.
  // Call before start().
  void set_recovery(RecoveryLog* log, std::uint32_t incarnation);
  [[nodiscard]] std::uint32_t incarnation() const noexcept { return incarnation_; }
  [[nodiscard]] RecoveryLog* recovery_log() const noexcept { return recovery_; }

  // Rebuilds home-side state from the log: restores the latest heap
  // checkpoint, re-applies subsequent allocations/frees/commits, re-stages
  // in-doubt prepares, and re-installs session tombstones and commit-epoch
  // dedup entries. Runs once, on the successor incarnation's worker,
  // before any traffic is served.
  Status recover_from_log();

  // Announces {incarnation, replayed decision log} to every peer in the
  // directory so they fence the prior life's traffic and resolve any
  // in-doubt stages this space coordinated. Best-effort per peer; the
  // worst failure is returned.
  Status announce_rejoin();

  // Appends a full heap image to the log now, superseding the replay
  // history before it. set_checkpoint_interval(n) additionally takes one
  // automatically every n session settlements (0 = manual only).
  void checkpoint_now();
  void set_checkpoint_interval(std::uint32_t every_n_settles) noexcept {
    checkpoint_interval_ = every_n_settles;
  }

  // --- worker loop ------------------------------------------------------------

  // Serves messages and tasks until the mailbox closes or kShutdown lands.
  void serve_forever();

  // --- sessions (ground thread, paper §3.1/§3.4) -------------------------------

  Result<SessionId> begin_session();
  // Writes the modified data set back to every home, multicasts the
  // invalidation, and drops the local cache. On failure (for example a
  // write-back ack deadline) the session stays open so the caller may
  // retry end_session() or fall back to abort_session(). In multi-session
  // mode a WB_PREPARE may come back CONFLICT (kConflict): the session lost
  // the home-side arbitration; abort it and retry under backoff.
  Status end_session();
  Status end_session(SessionId id);
  // Unilateral teardown after a mid-session failure: best-effort
  // invalidation multicast to the peers (failures logged, never fatal),
  // then drop every cached page, pending overlay, un-flushed memory-op
  // batch, and the modified data set. Always leaves the runtime reusable
  // for a fresh session; idempotent.
  Status abort_session();
  Status abort_session(SessionId id);
  [[nodiscard]] SessionId current_session() const noexcept {
    return scope_stack_.empty() ? session_ : scope_stack_.back();
  }

  // --- concurrent multi-session mode ----------------------------------------

  // Many sessions per space, home-side arbitration (SessionTable +
  // ConflictArbiter), per-session cache overlays. Off (default): the
  // paper's one-session-at-a-time model, byte-identical on the wire.
  // Flip only while idle (no open sessions, empty cache).
  void set_multi_session(bool on) noexcept { multi_session_ = on; }
  [[nodiscard]] bool multi_session() const noexcept { return multi_session_; }

  // Sessions this runtime currently tracks (local grounds + served
  // participants). In single-session mode: 1 while a session is open.
  [[nodiscard]] std::size_t active_sessions() const noexcept {
    return multi_session_ ? sessions_.size()
                          : (session_ != kNoSession ? std::size_t{1} : 0);
  }

  [[nodiscard]] ConflictArbiter& arbiter() noexcept { return arbiter_; }
  [[nodiscard]] const ConflictArbiter& arbiter() const noexcept { return arbiter_; }
  [[nodiscard]] const SessionTable& session_table() const noexcept { return sessions_; }

  // Binds the calling scope to one session: every runtime operation until
  // destruction (calls, faults, allocation, spans) is attributed to `id`.
  // This is how one worker thread interleaves many sessions — Session's
  // methods and message dispatch each pin their own id around the work.
  class ScopedSession {
   public:
    ScopedSession(Runtime& rt, SessionId id) : rt_(rt) {
      rt_.scope_stack_.push_back(id);
      prev_tracer_ = rt_.tracer().session();
      rt_.tracer().set_session(id);
    }
    ~ScopedSession() {
      rt_.scope_stack_.pop_back();
      rt_.tracer().set_session(prev_tracer_);
    }
    ScopedSession(const ScopedSession&) = delete;
    ScopedSession& operator=(const ScopedSession&) = delete;

   private:
    Runtime& rt_;
    SessionId prev_tracer_ = kNoSession;
  };

  // --- calls -------------------------------------------------------------------

  // Raw call: `args` are the marshalled argument bytes; `pointer_roots` are
  // local addresses of pointer arguments (their bounded closure travels
  // eagerly with the call). On success the returned buffer's cursor sits at
  // the marshalled results.
  Result<ByteBuffer> call_raw(SpaceId target, const std::string& proc,
                              ByteBuffer args,
                              std::span<const std::uint64_t> pointer_roots);

  // --- async calls (pipelined RPC) ------------------------------------------

  // One (id, fingerprint) pair per object encoded into an outgoing
  // modified-set section; committed into per-peer ship state only once the
  // transfer is known to have reached `dest` (see commit_shipped).
  struct ShippedRecord {
    LongPointer id;
    std::uint64_t fingerprint = 0;
  };

  // Handle on one in-flight call_async(). get() blocks — pumping the
  // endpoint, so replies for OTHER in-flight requests and incoming service
  // traffic keep flowing — then finalises the reply on the caller's stack
  // (commit shipped state, apply the returned modified set and closures)
  // exactly like the blocking call path. One-shot; dropping an un-got
  // future cancels its completion slot and the late reply is absorbed as
  // stale. Must be collected on the issuing space's worker thread.
  class RawCallFuture {
   public:
    RawCallFuture(RawCallFuture&&) noexcept = default;
    RawCallFuture& operator=(RawCallFuture&&) noexcept = default;
    RawCallFuture(const RawCallFuture&) = delete;
    RawCallFuture& operator=(const RawCallFuture&) = delete;

    [[nodiscard]] bool ready() const noexcept { return fut_.ready(); }
    [[nodiscard]] std::uint64_t seq() const noexcept { return seq_; }
    [[nodiscard]] SessionId session() const noexcept { return session_; }

    Result<ByteBuffer> get(std::chrono::steady_clock::time_point deadline =
                               std::chrono::steady_clock::time_point::max());

   private:
    friend class Runtime;
    RawCallFuture(Runtime* rt, SessionId session, SpaceId target,
                  std::uint64_t seq, std::vector<ShippedRecord> shipped,
                  Future<Message> fut)
        : rt_(rt), session_(session), target_(target), seq_(seq),
          shipped_(std::move(shipped)), fut_(std::move(fut)) {}

    Runtime* rt_;
    SessionId session_;
    SpaceId target_;
    std::uint64_t seq_;
    std::vector<ShippedRecord> shipped_;
    Future<Message> fut_;
  };

  // Pipelined call: ships the CALL (with the same travelling modified set
  // and argument closures as call_raw) and returns immediately with a
  // future for the reply. Many calls may be outstanding at once; their
  // replies complete in arrival order. At-most-once semantics are
  // unchanged: a CALL is never retransmitted, and the per-seq completion
  // slot keeps each reply matched to its own request. Note that each call
  // ships the modified set as of ITS issue point — overlapping working
  // sets between calls pipelined to different homes are the caller's
  // responsibility (see PROTOCOL.md "Request multiplexing & pipelining").
  Result<RawCallFuture> call_async(SpaceId target, const std::string& proc,
                                   ByteBuffer args,
                                   std::span<const std::uint64_t> pointer_roots);

  // --- remote memory management (paper §3.5) ------------------------------------

  // Allocates `count` objects of `type` in `home`'s heap; returns a locally
  // usable pointer immediately (the home-side allocation is batched).
  Result<void*> extended_malloc(SpaceId home, TypeId type, std::uint32_t count = 1);

  // Releases data created with extended_malloc (or any cached/home datum);
  // remote releases are batched like allocations.
  Status extended_free(void* p);

  // Flushes pending extended_malloc/extended_free batches now. The typed
  // stubs call this before marshalling pointers (an unswizzled provisional
  // identity must never cross the wire outside an ALLOC_BATCH); it is also
  // implicit on every control transfer.
  Status flush_pending_memory_ops() { return flush_alloc_batches(); }

  // --- fully-lazy baseline support ----------------------------------------------

  // One callback: fetch the value of a remote datum, no caching (paper §2's
  // lazy method). The reply holds the canonical value encoding.
  Result<ByteBuffer> deref_remote(const LongPointer& pointer);

  // Programmer-directed prefetch (paper §6): fetch the data behind a local
  // pointer now, with an explicit closure budget, instead of paying the
  // access violation later. No-op for home data and resident cache.
  Status prefetch(const void* p, std::uint64_t closure_budget);

  // Batched, pipelined prefetch: groups the non-resident pointers by home,
  // ships ONE speculative FETCH frame per home (all homes in parallel —
  // idempotent, so each frame retransmits under its own seq), and
  // incorporates every reply as clean pending data. Later faults on the
  // covered pages fill from the overlay without another network trip.
  // Per-pointer lookup failures are skipped, not errors; the first
  // transport-level failure is returned after every in-flight frame has
  // been settled.
  Status prefetch_many(std::span<const void* const> pointers,
                       std::uint64_t closure_budget);

  // Closure traversal order used when this space packs eager transfers
  // (paper §3.3 uses breadth-first; §6 discusses the shape as open work —
  // bench/ablation_closure_shape measures the alternative).
  void set_closure_order(TraversalOrder order) noexcept { packer_.set_order(order); }

  // --- PointerTranslator ----------------------------------------------------------

  Result<LongPointer> unswizzle(std::uint64_t ordinary, TypeId pointee) override;
  Result<std::uint64_t> swizzle(const LongPointer& pointer, TypeId pointee) override;

  // --- LocalDataView ---------------------------------------------------------------

  Result<DatumView> view_local(std::uint64_t local_addr) const override;

  // --- PageFetcher -------------------------------------------------------------------

  Result<ByteBuffer> fetch(SpaceId home, std::span<const LongPointer> pointers,
                           std::uint64_t closure_budget,
                           SessionId session) override;
  void charge_fault() override;
  Result<std::uint64_t> swizzle_home(const LongPointer& pointer, TypeId pointee) override;

  // Records that remote activity modified one of OUR home data. Such data
  // stays in the travelling modified set until the session ends — applying
  // it at home is not enough, because other spaces may hold stale cached
  // copies that only the travelling set can refresh (paper §3.4: "the
  // modified data set is passed among the address spaces with the
  // transition of thread activation ... each address space in the session
  // can always see the correct working set"). The heap bytes at the moment
  // of the first note are snapshotted as the datum's delta baseline, so
  // call this *before* applying the incoming value.
  void note_home_update(const LongPointer& id);

 private:
  friend class ScopedSession;

  // --- session-state resolution (multi-session mode) ------------------------
  // Single-session mode routes everything to the ambient scalars/cache so
  // behaviour (and wire bytes) stay identical to the paper's model.

  // Bare per-session state: sets, ship records, touched peers. Creates it
  // on first sight of the session (cheap — no cache).
  SessionState& state_for(SessionId id);
  // State of the current scope (ambient in single-session mode).
  SessionState& cur_state() { return state_for(current_session()); }
  [[nodiscard]] const SessionState& cur_state() const;
  // The cache/allocator overlay for `id`, materialised on first use (a
  // cache reserves an arena; homes that only apply write-backs skip it).
  CacheManager& cache_for(SessionId id);
  RemoteAllocator& allocator_for(SessionId id);
  // The cache (any session's, or the default) whose arena holds `p`.
  CacheManager* cache_owning(const void* p);
  [[nodiscard]] const CacheManager* cache_owning(const void* p) const;
  // The allocator paired with `cache` (extended_free resolution).
  RemoteAllocator* allocator_of(const CacheManager* cache);
  // Visits the default cache plus every session overlay.
  template <typename F>
  void for_each_cache(F&& fn) {
    fn(cache_);
    sessions_.for_each([&](SessionState& st) {
      if (st.cache) fn(*st.cache);
    });
  }

  // Send-side shm elevation: publishes an owned, non-empty payload into the
  // arena for kCapShmPayload peers and swaps it for a view descriptor;
  // otherwise counts the bytes as copied (rpc.bytes_copied). Installed on
  // RpcEndpoint's payload lane by set_shm_arena().
  void elevate_payload(Message& msg);

  Status dispatch(Message msg);
  // The serve half of dispatch (the main type switch), split out so
  // dispatch can wrap it in a server span parented to the message's
  // TraceContext.
  Status dispatch_serve(Message msg);
  // True when (from, seq) repeats a CALL/ALLOC_BATCH already served — the
  // receiver half of at-most-once execution for non-idempotent requests.
  bool note_duplicate_request(SpaceId from, std::uint64_t seq);
  // Remembers an invalidated session so in-flight stragglers (delayed or
  // replayed messages carrying its id) are refused instead of
  // repopulating the cache after the session is gone.
  void tombstone_session(SessionId session);
  [[nodiscard]] bool is_dead_session(SessionId session) const {
    return session != kNoSession && dead_session_set_.contains(session);
  }
  Status serve_call(Message msg);
  Status serve_fetch(Message msg);
  Status serve_alloc_batch(Message msg);
  Status serve_writeback(Message msg);
  Status serve_invalidate(Message msg);
  Status serve_deref(Message msg);
  Status serve_wb_prepare(Message msg);
  Status serve_wb_commit(Message msg);
  Status serve_wb_abort(Message msg);
  Status serve_ping(Message msg);
  Status serve_rejoin(Message msg);

  // Endpoint fence (receive choke point): true drops the frame as a relic
  // of some space's prior incarnation. Learns higher incarnations from
  // passing traffic and queues the implicit-rejoin cleanup.
  bool fence_stale(const Message& msg);

  // Applies one peer reincarnation: fences the old life's incarnation,
  // resolves in-doubt stages it coordinated against `decisions`, flushes
  // its leases/locks/dedup windows, expires in-flight requests addressed
  // to the prior life, and re-opens the failure detector. Idempotent per
  // {peer, incarnation}. `authoritative` is false only for the implicit
  // cleanup triggered by passing traffic (fence_stale): that path has no
  // decision log, so it keeps in-doubt stages staged — a later real REJOIN
  // for the same incarnation is then let through the dedup to resolve them.
  void on_peer_rejoin(SpaceId peer, std::uint32_t incarnation,
                      const std::vector<RecoveryDecision>& decisions,
                      bool authoritative = true);

  // Checkpoint cadence driven by session settlements (serve_invalidate).
  void maybe_checkpoint();

  // endpoint_.roundtrip guarded by the failure detector: fails fast with
  // SPACE_DEAD when the destination is already declared dead, notes contact
  // on success, and probes the peer (kPing, one short attempt) after a
  // DEADLINE_EXCEEDED/UNAVAILABLE so consecutive misses accumulate into
  // suspicion and, eventually, a death verdict.
  Result<Message> guarded_roundtrip(Message msg, MessageType reply_type,
                                    const RpcEndpoint::Dispatcher& serve,
                                    bool idempotent);

  // Async twin of guarded_roundtrip's front half: same failfast check,
  // touched-set recording, and trace-context attachment, but the request is
  // only *issued* — telemetry (latency histogram, span finish, lease touch,
  // failure counting) runs in the slot's completion callback whenever the
  // reply lands, possibly while some other request is being collected.
  // Client spans are start_detached: concurrent siblings under the issuing
  // session, never a stack nesting. Failed peers are queued for probing
  // (pending_probe_peers_) instead of probed inline, because the completion
  // callback may run on a re-entrant pump stack where a nested ping
  // roundtrip is not safe. When `promise` is non-null the slot is detached
  // and the reply is delivered through it (futures); otherwise collect the
  // seq with collect_guarded.
  Result<std::uint64_t> issue_guarded(
      Message msg, MessageType reply_type, bool idempotent,
      std::shared_ptr<Promise<Message>> promise = nullptr);
  Result<Message> collect_guarded(std::uint64_t seq,
                                  const RpcEndpoint::Dispatcher& serve);
  // One endpoint pump step on the worker's normal stack (Future::get's
  // drive), followed by the deferred probe drain.
  Status pump_guarded(std::chrono::steady_clock::time_point deadline);
  void probe_peer(SpaceId peer);
  // Probes peers whose async requests failed, at a safe point (never from
  // inside a completion callback).
  void drain_probes();
  [[nodiscard]] std::uint64_t vnow_ns() const noexcept;

  // Ships one FETCH frame per group with every frame in flight at once,
  // then collects the replies (restricted await: the owning cache is
  // mid-fill). Backing transfer for CacheManager::prefetch_many.
  Result<std::vector<ByteBuffer>> parallel_fetch(
      CacheManager& owner, std::vector<CacheManager::PrefetchGroup>& groups,
      std::uint64_t closure_budget, SessionId session);

  // Flushes pending extended_malloc/extended_free batches to every home
  // (must precede any control transfer: the modified data set cannot be
  // unswizzled while provisional identities are outstanding).
  Status flush_alloc_batches();

  // Appends the modified-set section for `dest` — legacy "count + graph
  // payloads" or the MODIFIED_DELTA format when `dest` is capable. With
  // `write_back` set, only objects homed at `dest` are considered and
  // travelling home updates are excluded. `encoded` (optional) counts the
  // objects actually written; `shipped` (optional) collects the records to
  // commit after a successful transfer.
  Status attach_modified_set(ByteBuffer& out, SpaceId dest,
                             bool write_back = false,
                             std::size_t* encoded = nullptr,
                             std::vector<ShippedRecord>* shipped = nullptr);
  Status attach_closures(ByteBuffer& out, std::span<const std::uint64_t> roots);

  // Records that `dest` now holds the listed content.
  void commit_shipped(SpaceId dest, const std::vector<ShippedRecord>& shipped);

  // Consumes a modified-set section (either format, auto-detected) sent by
  // `from`, then refreshes ship state: `from` knows everything it sent.
  Status apply_modified_set(ByteBuffer& in, SpaceId from);
  Status apply_closures(ByteBuffer& in);

  // Applies one MODIFIED_DELTA entry to the heap (home data) or cache.
  Status apply_delta_entry(const ModifiedDelta& delta);

  // Builds the ModifiedDatum view of a home-heap object (diffed against its
  // session twin when one exists).
  CacheManager::ModifiedDatum home_modified_datum(
      const LongPointer& id, const ManagedHeap::Record& record) const;

  // Refreshes an object's ship state after an incoming transfer from
  // `from`: recomputes the fingerprint over our post-application image.
  void observe_incoming(const LongPointer& id, SpaceId from, std::uint64_t epoch);

  // Drops all per-session delta/epoch state (session end, abort,
  // invalidation).
  void clear_ship_state();

  Status send_error(SpaceId to, SessionId session, std::uint64_t seq, const Status& error);
  static Status decode_error(Message& msg);

  SpaceId self_;
  std::string name_;
  const ArchModel& arch_;
  TypeRegistry& registry_;
  const LayoutEngine& layouts_;
  ValueCodec codec_;
  HostTypeMap& host_types_;
  SimNetwork* sim_;
  std::function<std::vector<SpaceId>()> directory_;
  std::function<std::uint32_t(SpaceId)> peer_caps_;
  PointerRangeIndex pointer_index_;
  bool modified_deltas_enabled_ = true;
  bool two_phase_writeback_enabled_ = true;
  bool parallel_commit_ = true;

  Mailbox mailbox_;
  RpcEndpoint endpoint_;
  ManagedHeap heap_;
  CacheManager cache_;
  RemoteAllocator allocator_;
  ServiceRegistry services_;
  ClosurePacker packer_;

  RpcEndpoint::Dispatcher full_dispatcher_;
  TimeoutConfig timeouts_;
  Telemetry telemetry_;
  SessionId session_ = kNoSession;  // ambient (ground) session of this space
  std::uint64_t session_counter_ = 0;
  bool running_ = false;
  RuntimeStats stats_;

  // --- zero-copy shm payload lane --------------------------------------------
  ShmArena* shm_arena_ = nullptr;  // owned by the World; null = byte lane only
  bool shm_payload_enabled_ = true;

  // --- concurrent multi-session runtime --------------------------------------
  bool multi_session_ = false;
  CacheOptions cache_options_;  // kept for per-session overlay construction
  // Per-session states (multi-session mode). Single-session mode keeps
  // everything in `ambient_state_` below.
  SessionTable sessions_;
  // The one state single-session mode uses for every session it touches —
  // exactly the scalar fields the pre-concurrency runtime kept.
  SessionState ambient_state_;
  // Home-side session arbitration (object locks + version validation).
  ConflictArbiter arbiter_;
  // Session pins pushed by ScopedSession; top = the session every runtime
  // operation in the current scope belongs to. Empty -> ambient session_.
  std::vector<SessionId> scope_stack_;
  // Request-id dedup for non-idempotent requests, bounded FIFO per peer.
  struct ServedRequests {
    std::unordered_set<std::uint64_t> seen;
    std::deque<std::uint64_t> order;
  };
  std::unordered_map<SpaceId, ServedRequests> served_requests_;
  // Tombstones of invalidated sessions, bounded FIFO.
  std::unordered_set<SessionId> dead_session_set_;
  std::deque<SessionId> dead_session_order_;
  // The session whose data currently populates the default cache
  // (single-session mode only). A CALL from a *different* session while we
  // still hold another session's cached data is refused: the paper's model
  // has one session at a time, and mixing two sessions' modified sets would
  // corrupt both. Multi-session mode gives each session its own overlay
  // instead and never refuses.
  SessionId cache_session_ = kNoSession;

  // --- two-phase write-back (home side) ------------------------------------
  // A staged modified set waiting for WB_COMMIT. Keyed by session; the
  // commit epoch disambiguates retried end_session() attempts (a fresh
  // attempt re-prepares under a higher epoch and simply replaces the stale
  // stage). Applied only by serve_wb_commit; dropped by serve_wb_abort and
  // by the session's INVALIDATE.
  struct ShadowCommit {
    std::uint64_t epoch = 0;
    SpaceId from = kInvalidSpaceId;
    ByteBuffer staged;  // the modified-set section, byte-exact
  };
  std::unordered_map<SessionId, ShadowCommit> shadow_commits_;
  // Highest epoch already applied per session, so duplicate-delivered or
  // retransmitted WB_COMMIT/WB_PREPARE messages re-ack instead of
  // re-staging or failing. Erased when the session's INVALIDATE lands.
  std::unordered_map<SessionId, std::uint64_t> committed_epochs_;
  // Coordinator-side commit epoch, monotonically increasing per attempt.
  std::uint64_t wb_epoch_ = 0;

  // --- failure containment ---------------------------------------------------
  FailureDetector detector_;
  std::uint64_t lease_ttl_ns_ = 0;  // 0: lapse-based revocation disabled
  // Peers whose death was detected mid-request (possibly inside the SIGSEGV
  // fill path, where revoking pages would corrupt the fill in progress);
  // poll_failures() runs the cleanup at the next safe point.
  std::vector<SpaceId> pending_dead_cleanup_;
  // Peers whose async requests failed; drain_probes() pings them on the
  // next normal stack (completion callbacks must not roundtrip).
  std::vector<SpaceId> pending_probe_peers_;
  // Peers already contained by on_peer_dead(), so repeated death reports
  // (detector edge + World::mark_dead + queued cleanups) act once.
  std::unordered_set<SpaceId> dead_cleaned_;
  bool probing_ = false;  // re-entrancy guard: never probe from a probe

  // --- crash recovery & reincarnation ---------------------------------------
  RecoveryLog* recovery_ = nullptr;  // owned by the World; survives this runtime
  std::uint32_t incarnation_ = 0;    // 0 = recovery off (legacy wire format)
  // Highest incarnation observed per peer; frames below it are fenced.
  std::unordered_map<SpaceId, std::uint32_t> peer_incarnations_;
  // Reincarnations learned from passing traffic (fence_stale) rather than
  // an explicit REJOIN; poll_failures() runs the cleanup at a safe point.
  std::vector<std::pair<SpaceId, std::uint32_t>> pending_rejoin_cleanup_;
  // Incarnations whose cleanup ran WITHOUT a decision log (implicit path)
  // while stages from that peer were still in doubt. The stages stay
  // staged, and the peer's delayed REJOIN — normally a dedup no-op — is
  // allowed through to resolve them against its decision log.
  std::unordered_map<SpaceId, std::uint32_t> awaiting_rejoin_decisions_;
  // {peer, stamped incarnation} pairs whose fence already dumped the
  // flight ring — a stale-frame storm produces one black box, not one per
  // frame.
  std::unordered_set<std::uint64_t> fence_dumped_;
  std::uint32_t checkpoint_interval_ = 0;   // settles per checkpoint; 0 = manual
  std::uint32_t settles_since_checkpoint_ = 0;
};

}  // namespace srpc
