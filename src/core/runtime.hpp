// Runtime — the smart-RPC engine of one address space.
//
// Ties the substrates together into the paper's system:
//   * conventional RPC (call/return over the endpoint, service registry);
//   * transparent remote pointers (swizzle on receipt via the cache, MMU
//     fault -> fetch -> fill, unswizzle on send via heap + allocation
//     table);
//   * eagerness (closure packer attached to arguments, results, and fetch
//     replies);
//   * the session coherency protocol (modified data set travels on every
//     control transfer; ground write-back + invalidation at session end);
//   * batched remote memory management.
//
// One Runtime runs on one worker thread (see AddressSpace); every method
// here executes on that thread, including re-entrant service while blocked
// in a call and fetches issued from the SIGSEGV handler.
#pragma once

#include <deque>
#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/config.hpp"
#include "common/ids.hpp"
#include "common/status.hpp"
#include "core/cache_manager.hpp"
#include "core/closure.hpp"
#include "core/modified_set.hpp"
#include "mem/managed_heap.hpp"
#include "mem/remote_allocator.hpp"
#include "net/sim_network.hpp"
#include "rpc/rpc_endpoint.hpp"
#include "rpc/service_registry.hpp"
#include "rpc/wire.hpp"
#include "types/host_type_map.hpp"
#include "types/value_codec.hpp"

namespace srpc {

struct RuntimeStats {
  std::uint64_t calls_sent = 0;
  std::uint64_t calls_served = 0;
  std::uint64_t fetches_served = 0;
  std::uint64_t derefs_served = 0;
  std::uint64_t writebacks_served = 0;
  std::uint64_t alloc_batches_served = 0;
  // Failure-handling layer (PROTOCOL.md "Timeouts, retries, and duplicate
  // absorption").
  std::uint64_t stale_replies_absorbed = 0;     // replies for finished requests
  std::uint64_t duplicate_requests_absorbed = 0;  // replayed CALL/ALLOC_BATCH
  std::uint64_t dead_session_rejections = 0;    // traffic from tombstoned sessions
  std::uint64_t sessions_aborted = 0;
  // Delta-encoded modified sets (PROTOCOL.md "MODIFIED_DELTA").
  std::uint64_t modified_bytes_shipped = 0;   // wire bytes of every modified-set
                                              // section this runtime attached
  std::uint64_t delta_bytes_shipped = 0;      // of which delta-format entries
  std::uint64_t deltas_skipped_by_epoch = 0;  // objects omitted because the
                                              // destination already held them
};

class Runtime final : public PageFetcher,
                      public LocalDataView,
                      public PointerTranslator {
 public:
  // `sim` may be null (real-socket transport): fault costs then show up as
  // real time instead of virtual time. `directory` lists every space in the
  // world for the session-end invalidation multicast.
  // `peer_caps` reports the capability bits (rpc/wire.hpp kCap*) a peer
  // accepts; empty means "no optional features" and keeps every payload in
  // the legacy format.
  Runtime(SpaceId self, std::string name, const ArchModel& arch,
          TypeRegistry& registry, const LayoutEngine& layouts,
          HostTypeMap& host_types, Transport& transport, SimNetwork* sim,
          CacheOptions cache_options,
          std::function<std::vector<SpaceId>()> directory,
          TimeoutConfig timeouts = {},
          std::function<std::uint32_t(SpaceId)> peer_caps = {});
  ~Runtime() override = default;
  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  Status init();

  // --- identity & services --------------------------------------------------

  [[nodiscard]] SpaceId id() const noexcept { return self_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const ArchModel& arch() const noexcept { return arch_; }
  [[nodiscard]] TypeRegistry& registry() noexcept { return registry_; }
  [[nodiscard]] const LayoutEngine& layouts() const noexcept { return layouts_; }
  [[nodiscard]] const ValueCodec& codec() const noexcept { return codec_; }
  [[nodiscard]] HostTypeMap& host_types() noexcept { return host_types_; }
  [[nodiscard]] ManagedHeap& heap() noexcept { return heap_; }
  [[nodiscard]] const ManagedHeap& heap() const noexcept { return heap_; }
  [[nodiscard]] CacheManager& cache() noexcept { return cache_; }
  [[nodiscard]] const CacheManager& cache() const noexcept { return cache_; }
  [[nodiscard]] ServiceRegistry& services() noexcept { return services_; }
  [[nodiscard]] Mailbox& mailbox() noexcept { return mailbox_; }
  [[nodiscard]] RpcEndpoint& endpoint() noexcept { return endpoint_; }
  [[nodiscard]] const RuntimeStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = RuntimeStats{}; }

  // Deadline/retry policy for every request this runtime initiates.
  [[nodiscard]] const TimeoutConfig& timeouts() const noexcept { return timeouts_; }
  void set_timeouts(const TimeoutConfig& timeouts) noexcept { timeouts_ = timeouts; }

  // Local kill switch for delta-encoded modified sets (benchmarks ablate
  // with it). Off, every modified object ships as a full graph payload even
  // to delta-capable peers. Flip only between sessions.
  [[nodiscard]] bool modified_deltas() const noexcept {
    return modified_deltas_enabled_;
  }
  void set_modified_deltas(bool on) noexcept { modified_deltas_enabled_ = on; }

  // --- worker loop ------------------------------------------------------------

  // Serves messages and tasks until the mailbox closes or kShutdown lands.
  void serve_forever();

  // --- sessions (ground thread, paper §3.1/§3.4) -------------------------------

  Result<SessionId> begin_session();
  // Writes the modified data set back to every home, multicasts the
  // invalidation, and drops the local cache. On failure (for example a
  // write-back ack deadline) the session stays open so the caller may
  // retry end_session() or fall back to abort_session().
  Status end_session();
  // Unilateral teardown after a mid-session failure: best-effort
  // invalidation multicast to the peers (failures logged, never fatal),
  // then drop every cached page, pending overlay, un-flushed memory-op
  // batch, and the modified data set. Always leaves the runtime reusable
  // for a fresh session; idempotent.
  Status abort_session();
  [[nodiscard]] SessionId current_session() const noexcept { return session_; }

  // --- calls -------------------------------------------------------------------

  // Raw call: `args` are the marshalled argument bytes; `pointer_roots` are
  // local addresses of pointer arguments (their bounded closure travels
  // eagerly with the call). On success the returned buffer's cursor sits at
  // the marshalled results.
  Result<ByteBuffer> call_raw(SpaceId target, const std::string& proc,
                              ByteBuffer args,
                              std::span<const std::uint64_t> pointer_roots);

  // --- remote memory management (paper §3.5) ------------------------------------

  // Allocates `count` objects of `type` in `home`'s heap; returns a locally
  // usable pointer immediately (the home-side allocation is batched).
  Result<void*> extended_malloc(SpaceId home, TypeId type, std::uint32_t count = 1);

  // Releases data created with extended_malloc (or any cached/home datum);
  // remote releases are batched like allocations.
  Status extended_free(void* p);

  // Flushes pending extended_malloc/extended_free batches now. The typed
  // stubs call this before marshalling pointers (an unswizzled provisional
  // identity must never cross the wire outside an ALLOC_BATCH); it is also
  // implicit on every control transfer.
  Status flush_pending_memory_ops() { return flush_alloc_batches(); }

  // --- fully-lazy baseline support ----------------------------------------------

  // One callback: fetch the value of a remote datum, no caching (paper §2's
  // lazy method). The reply holds the canonical value encoding.
  Result<ByteBuffer> deref_remote(const LongPointer& pointer);

  // Programmer-directed prefetch (paper §6): fetch the data behind a local
  // pointer now, with an explicit closure budget, instead of paying the
  // access violation later. No-op for home data and resident cache.
  Status prefetch(const void* p, std::uint64_t closure_budget) {
    if (p == nullptr) return invalid_argument("prefetch(nullptr)");
    if (!cache_.contains(p)) return Status::ok();  // home data: already here
    return cache_.prefetch(p, closure_budget);
  }

  // Closure traversal order used when this space packs eager transfers
  // (paper §3.3 uses breadth-first; §6 discusses the shape as open work —
  // bench/ablation_closure_shape measures the alternative).
  void set_closure_order(TraversalOrder order) noexcept { packer_.set_order(order); }

  // --- PointerTranslator ----------------------------------------------------------

  Result<LongPointer> unswizzle(std::uint64_t ordinary, TypeId pointee) override;
  Result<std::uint64_t> swizzle(const LongPointer& pointer, TypeId pointee) override;

  // --- LocalDataView ---------------------------------------------------------------

  Result<DatumView> view_local(std::uint64_t local_addr) const override;

  // --- PageFetcher -------------------------------------------------------------------

  Result<ByteBuffer> fetch(SpaceId home, std::span<const LongPointer> pointers,
                           std::uint64_t closure_budget) override;
  void charge_fault() override;
  Result<std::uint64_t> swizzle_home(const LongPointer& pointer, TypeId pointee) override;

  // Records that remote activity modified one of OUR home data. Such data
  // stays in the travelling modified set until the session ends — applying
  // it at home is not enough, because other spaces may hold stale cached
  // copies that only the travelling set can refresh (paper §3.4: "the
  // modified data set is passed among the address spaces with the
  // transition of thread activation ... each address space in the session
  // can always see the correct working set"). The heap bytes at the moment
  // of the first note are snapshotted as the datum's delta baseline, so
  // call this *before* applying the incoming value.
  void note_home_update(const LongPointer& id);

 private:
  Status dispatch(Message msg);
  // True when (from, seq) repeats a CALL/ALLOC_BATCH already served — the
  // receiver half of at-most-once execution for non-idempotent requests.
  bool note_duplicate_request(SpaceId from, std::uint64_t seq);
  // Remembers an invalidated session so in-flight stragglers (delayed or
  // replayed messages carrying its id) are refused instead of
  // repopulating the cache after the session is gone.
  void tombstone_session(SessionId session);
  [[nodiscard]] bool is_dead_session(SessionId session) const {
    return session != kNoSession && dead_session_set_.contains(session);
  }
  Status serve_call(Message msg);
  Status serve_fetch(Message msg);
  Status serve_alloc_batch(Message msg);
  Status serve_writeback(Message msg);
  Status serve_invalidate(Message msg);
  Status serve_deref(Message msg);

  // Flushes pending extended_malloc/extended_free batches to every home
  // (must precede any control transfer: the modified data set cannot be
  // unswizzled while provisional identities are outstanding).
  Status flush_alloc_batches();

  // One (id, fingerprint) pair per object encoded into an outgoing
  // modified-set section; committed into per-peer ship state only once the
  // transfer is known to have reached `dest` (see commit_shipped).
  struct ShippedRecord {
    LongPointer id;
    std::uint64_t fingerprint = 0;
  };

  // Appends the modified-set section for `dest` — legacy "count + graph
  // payloads" or the MODIFIED_DELTA format when `dest` is capable. With
  // `write_back` set, only objects homed at `dest` are considered and
  // travelling home updates are excluded. `encoded` (optional) counts the
  // objects actually written; `shipped` (optional) collects the records to
  // commit after a successful transfer.
  Status attach_modified_set(ByteBuffer& out, SpaceId dest,
                             bool write_back = false,
                             std::size_t* encoded = nullptr,
                             std::vector<ShippedRecord>* shipped = nullptr);
  Status attach_closures(ByteBuffer& out, std::span<const std::uint64_t> roots);

  // Records that `dest` now holds the listed content.
  void commit_shipped(SpaceId dest, const std::vector<ShippedRecord>& shipped);

  // Consumes a modified-set section (either format, auto-detected) sent by
  // `from`, then refreshes ship state: `from` knows everything it sent.
  Status apply_modified_set(ByteBuffer& in, SpaceId from);
  Status apply_closures(ByteBuffer& in);

  // Applies one MODIFIED_DELTA entry to the heap (home data) or cache.
  Status apply_delta_entry(const ModifiedDelta& delta);

  // Builds the ModifiedDatum view of a home-heap object (diffed against its
  // session twin when one exists).
  CacheManager::ModifiedDatum home_modified_datum(
      const LongPointer& id, const ManagedHeap::Record& record) const;

  // Refreshes an object's ship state after an incoming transfer from
  // `from`: recomputes the fingerprint over our post-application image.
  void observe_incoming(const LongPointer& id, SpaceId from, std::uint64_t epoch);

  // Drops all per-session delta/epoch state (session end, abort,
  // invalidation).
  void clear_ship_state();

  Status send_error(SpaceId to, SessionId session, std::uint64_t seq, const Status& error);
  static Status decode_error(Message& msg);

  SpaceId self_;
  std::string name_;
  const ArchModel& arch_;
  TypeRegistry& registry_;
  const LayoutEngine& layouts_;
  ValueCodec codec_;
  HostTypeMap& host_types_;
  SimNetwork* sim_;
  std::function<std::vector<SpaceId>()> directory_;
  std::function<std::uint32_t(SpaceId)> peer_caps_;
  PointerRangeIndex pointer_index_;
  bool modified_deltas_enabled_ = true;

  Mailbox mailbox_;
  RpcEndpoint endpoint_;
  ManagedHeap heap_;
  CacheManager cache_;
  RemoteAllocator allocator_;
  ServiceRegistry services_;
  ClosurePacker packer_;

  RpcEndpoint::Dispatcher full_dispatcher_;
  TimeoutConfig timeouts_;
  SessionId session_ = kNoSession;
  std::uint64_t session_counter_ = 0;
  bool running_ = false;
  RuntimeStats stats_;
  // Request-id dedup for non-idempotent requests, bounded FIFO per peer.
  struct ServedRequests {
    std::unordered_set<std::uint64_t> seen;
    std::deque<std::uint64_t> order;
  };
  std::unordered_map<SpaceId, ServedRequests> served_requests_;
  // Tombstones of invalidated sessions, bounded FIFO.
  std::unordered_set<SessionId> dead_session_set_;
  std::deque<SessionId> dead_session_order_;
  // Home data modified by remote activity this session; travels with every
  // outgoing modified set so stale caches elsewhere get refreshed.
  std::unordered_set<LongPointer, LongPointerHash> session_updates_;
  // Baseline images of home data at the first remote update this session;
  // what home_modified_datum() diffs against.
  std::unordered_map<LongPointer, std::vector<std::uint8_t>, LongPointerHash>
      home_twins_;
  // Per-object epoch/fingerprint shipping records (session-scoped), and the
  // monotonic hop counter that stamps outgoing deltas.
  std::unordered_map<LongPointer, ShipState, LongPointerHash> ship_;
  std::uint64_t session_epoch_ = 0;
  // The session whose data currently populates our cache. A CALL from a
  // *different* session while we still hold another session's cached data
  // is refused: the paper's model has one session at a time, and mixing
  // two sessions' modified sets would corrupt both.
  SessionId cache_session_ = kNoSession;
};

}  // namespace srpc
