#include "core/cache_manager.hpp"

#include <algorithm>
#include <cstring>
#include <map>
#include <unordered_set>

#include "common/logging.hpp"

namespace srpc {

namespace {
std::uint64_t align_up(std::uint64_t v, std::uint32_t align) noexcept {
  return (v + align - 1) / align * align;
}

// Two differing runs separated by fewer equal bytes than this merge into
// one wire range (each range costs 8 header bytes).
constexpr std::uint32_t kDiffMergeGap = 8;
}  // namespace

CacheManager::CacheManager(const TypeRegistry& registry, const LayoutEngine& layouts,
                           const ArchModel& arch, SpaceId self, CacheOptions options,
                           PageFetcher& fetcher)
    : registry_(registry),
      layouts_(layouts),
      codec_{registry, layouts},
      arch_(arch),
      self_(self),
      options_(options),
      fetcher_(fetcher),
      pages_(options.page_count) {}

CacheManager::~CacheManager() {
  if (registered_) {
    (void)FaultDispatcher::instance().unregister_range(arena_.base());
  }
}

Status CacheManager::init() {
  if (options_.page_count == 0) {
    return invalid_argument("CacheOptions.page_count must be nonzero");
  }
  if (options_.closure_bytes > options_.page_count * options_.page_size) {
    return invalid_argument(
        "CacheOptions.closure_bytes " + std::to_string(options_.closure_bytes) +
        " exceeds the arena (" +
        std::to_string(options_.page_count * options_.page_size) + " bytes)");
  }
  auto arena = PageArena::create(options_.page_count, options_.page_size);
  if (!arena) return arena.status();
  arena_ = std::move(arena.value());
  SRPC_RETURN_IF_ERROR(
      FaultDispatcher::instance().register_range(arena_.base(), arena_.byte_size(), this));
  registered_ = true;
  return Status::ok();
}

Status CacheManager::set_closure_bytes(std::uint64_t bytes) {
  if (bytes > options_.page_count * options_.page_size) {
    return invalid_argument(
        "closure budget " + std::to_string(bytes) + " exceeds the arena (" +
        std::to_string(options_.page_count * options_.page_size) + " bytes)");
  }
  options_.closure_bytes = bytes;
  return Status::ok();
}

Result<PageIndex> CacheManager::grab_pages(std::uint32_t n) {
  if (next_fresh_page_ + n > arena_.page_count()) {
    return resource_exhausted("cache arena full (" +
                              std::to_string(arena_.page_count()) + " pages)");
  }
  const PageIndex first = next_fresh_page_;
  next_fresh_page_ += n;
  return first;
}

std::uint32_t CacheManager::pages_spanned(const AllocationEntry& e) const {
  const std::uint64_t last = e.offset + e.size - 1;
  return static_cast<std::uint32_t>(last / arena_.page_size()) + 1;
}

Status CacheManager::make_writable(PageIndex page) {
  for (PageIndex open : fill_open_pages_) {
    if (open == page) return Status::ok();
  }
  SRPC_RETURN_IF_ERROR(arena_.protect(page, PageProtection::kReadWrite));
  fill_open_pages_.push_back(page);
  return Status::ok();
}

Result<AllocationEntry> CacheManager::place_on_chain(Cursor& cursor, PageKind kind,
                                                     const LongPointer& id,
                                                     std::uint64_t size,
                                                     std::uint32_t align,
                                                     SpaceId origin) {
  const std::size_t page_size = arena_.page_size();
  AllocationEntry entry;
  entry.pointer = id;
  entry.size = static_cast<std::uint32_t>(size);

  if (size > page_size) {
    // Large datum: an exclusive run of consecutive pages.
    const auto n = static_cast<std::uint32_t>((size + page_size - 1) / page_size);
    auto first = grab_pages(n);
    if (!first) return first.status();
    for (std::uint32_t i = 0; i < n; ++i) {
      PageInfo& info = pages_.info(first.value() + i);
      info.kind = kind;
      info.origin = origin;
      info.bump = static_cast<std::uint32_t>(page_size);  // exclusive: no co-tenants
      SRPC_RETURN_IF_ERROR(pages_.transition(first.value() + i, PageState::kAllocated));
    }
    entry.page = first.value();
    entry.offset = 0;
    entry.local = arena_.page_base(first.value());
    SRPC_RETURN_IF_ERROR(table_.insert(entry, n));
    return entry;
  }

  PageIndex page = cursor.page;
  std::uint64_t offset = 0;
  bool fits = false;
  if (page != kInvalidPage) {
    const PageInfo& info = pages_.info(page);
    if (!info.sealed && info.kind == kind && info.origin == origin) {
      offset = align_up(info.bump, align);
      fits = offset + size <= page_size;
    }
  }
  if (!fits) {
    auto fresh = grab_pages(1);
    if (!fresh) return fresh.status();
    page = fresh.value();
    cursor.page = page;
    PageInfo& info = pages_.info(page);
    info.kind = kind;
    info.origin = origin;
    SRPC_RETURN_IF_ERROR(pages_.transition(page, PageState::kAllocated));
    offset = 0;
  }
  pages_.info(page).bump = static_cast<std::uint32_t>(offset + size);
  entry.page = page;
  entry.offset = static_cast<std::uint32_t>(offset);
  entry.local = arena_.page_base(page) + offset;
  SRPC_RETURN_IF_ERROR(table_.insert(entry, 1));
  return entry;
}

Result<AllocationEntry> CacheManager::place_lazy(const LongPointer& id,
                                                 std::uint64_t size,
                                                 std::uint32_t align) {
  const SpaceId origin = options_.strategy == AllocationStrategy::kClusterByOrigin
                             ? id.space
                             : kInvalidSpaceId;
  return place_on_chain(lazy_cursors_[origin], PageKind::kLazy, id, size, align, origin);
}

Result<std::uint64_t> CacheManager::swizzle(const LongPointer& pointer, TypeId pointee) {
  if (pointer.is_null()) {
    return invalid_argument("swizzle of null long pointer");
  }
  if (pointer.space == self_) {
    return failed_precondition("swizzle of self-homed pointer reached the cache");
  }
  if (const AllocationEntry* entry = table_.find(pointer)) {
    return reinterpret_cast<std::uint64_t>(entry->local);
  }
  if (const AllocationEntry* container =
          table_.find_containing_home(pointer.space, pointer.address)) {
    const std::uint64_t delta = pointer.address - container->pointer.address;
    return reinterpret_cast<std::uint64_t>(container->local) + delta;
  }
  const TypeId type = pointer.type != kInvalidTypeId ? pointer.type : pointee;
  if (type == kInvalidTypeId) {
    return invalid_argument("swizzle: no type for " + pointer.to_string());
  }
  auto layout = layouts_.layout_of(arch_, type);
  if (!layout) return layout.status();
  LongPointer id = pointer;
  id.type = type;
  auto entry = place_lazy(id, layout.value()->size, layout.value()->align);
  if (!entry) return entry.status();
  return reinterpret_cast<std::uint64_t>(entry.value().local);
}

Result<LongPointer> CacheManager::unswizzle(const void* addr) const {
  const AllocationEntry* entry = table_.find_by_local(addr);
  if (entry == nullptr) {
    return not_found("unswizzle: address not in the data allocation table");
  }
  const std::uint64_t delta =
      static_cast<std::uint64_t>(static_cast<const std::uint8_t*>(addr) - entry->local);
  if (delta == 0) return entry->pointer;

  // Interior pointer: only array elements have a nameable type.
  const TypeDescriptor& desc = registry_.get(entry->pointer.type);
  if (desc.kind() != TypeKind::kArray) {
    return unimplemented("interior pointer into non-array datum " +
                         entry->pointer.to_string());
  }
  const std::uint64_t elem_size = layouts_.size_of(arch_, desc.element());
  if (delta % elem_size != 0) {
    return invalid_argument("interior pointer not on an element boundary");
  }
  return LongPointer{entry->pointer.space, entry->pointer.address + delta,
                     desc.element()};
}

bool CacheManager::is_resident(const void* addr) const {
  const PageIndex page = arena_.page_of(addr);
  if (page == kInvalidPage) return false;
  const PageState s = pages_.info(page).state;
  return s == PageState::kClean || s == PageState::kDirty;
}

Result<void*> CacheManager::allocate_resident(const LongPointer& provisional,
                                              std::uint64_t size, std::uint32_t align) {
  auto entry = place_on_chain(alloc_cursor_, PageKind::kAlloc, provisional, size, align,
                              provisional.space);
  if (!entry) return entry.status();
  // Born resident and dirty: the creator will initialise it in place and the
  // value must travel with the modified data set.
  const std::uint32_t span = pages_spanned(entry.value());
  for (std::uint32_t i = 0; i < span; ++i) {
    const PageIndex p = entry.value().page + i;
    if (pages_.info(p).state == PageState::kAllocated) {
      SRPC_RETURN_IF_ERROR(pages_.transition(p, PageState::kDirty));
      SRPC_RETURN_IF_ERROR(arena_.protect(p, PageProtection::kReadWrite));
    }
  }
  return static_cast<void*>(entry.value().local);
}

// ---------------------------------------------------------------------------
// Fault path
// ---------------------------------------------------------------------------

bool CacheManager::on_fault(void* addr, FaultAccess access) {
  const PageIndex page = arena_.page_of(addr);
  if (page == kInvalidPage) return false;
  const PageState state = pages_.info(page).state;

  switch (state) {
    case PageState::kEmpty:
      SRPC_ERROR << "fault on empty cache page " << page << " (wild pointer?)";
      return false;
    case PageState::kAllocated: {
      // First access to data allocated to a protected page: transfer it.
      fetcher_.charge_fault();
      ++stats_.read_faults;
      // Every object already allocated to this page is data an eager
      // closure could have delivered but did not — we are faulting for it.
      const std::size_t faulted_objects = table_.entries_on_page(page).size();
      stats_.closure_prefetch_misses += faulted_objects;
      if (telemetry_ != nullptr && telemetry_->tracing()) {
        telemetry_->annotate("read fault: page " + std::to_string(page) + ", " +
                             std::to_string(faulted_objects) + " objects");
      }
      Status filled = fill_page(page, options_.closure_bytes);
      if (!filled.is_ok()) {
        SRPC_ERROR << "page fill failed: " << filled.to_string();
        return false;
      }
      // A write retries against the now-clean page and upgrades via a
      // second, genuine access violation — the paper's "two page accesses".
      return true;
    }
    case PageState::kClean: {
      if (access == FaultAccess::kRead) {
        SRPC_ERROR << "read fault on clean (readable) page " << page;
        return false;
      }
      fetcher_.charge_fault();
      ++stats_.write_faults;
      if (telemetry_ != nullptr && telemetry_->tracing()) {
        telemetry_->annotate("write fault: page " + std::to_string(page));
      }
      // The page is still untouched (the faulting write has not retired):
      // capture the pre-write image as the twin the delta encoder diffs
      // against.
      pages_.snapshot_twin(page, arena_.page_base(page), arena_.page_size());
      if (!pages_.transition(page, PageState::kDirty).is_ok()) return false;
      if (!arena_.protect(page, PageProtection::kReadWrite).is_ok()) return false;
      return true;
    }
    case PageState::kDirty:
      SRPC_ERROR << "fault on writable page " << page << " (protection drift?)";
      return false;
  }
  return false;
}

// Sink wiring one FETCH_REPLY payload into cache slots.
class CacheManager::FillSink final : public GraphSink {
 public:
  explicit FillSink(CacheManager& cache) : cache_(cache) {}

  Result<void*> prepare(std::uint32_t index, const LongPointer& id) override {
    if (locals_.size() <= index) locals_.resize(index + 1, 0);
    if (const AllocationEntry* entry = cache_.table_.find(id)) {
      locals_[index] = reinterpret_cast<std::uint64_t>(entry->local);
      if (cache_.is_fill_open(entry->page)) {
        ++cache_.stats_.objects_filled;
        return static_cast<void*>(entry->local);
      }
      // Resident elsewhere (already have data) or allocated on a closed
      // lazy page (cannot partially fill it): drop the bytes.
      ++cache_.stats_.objects_skipped;
      return static_cast<void*>(nullptr);
    }
    // Eagerly transferred extra: place it on the fill chain; its pages
    // become resident when the fill completes.
    auto layout = cache_.layouts_.layout_of(cache_.arch_, id.type);
    if (!layout) return layout.status();
    auto entry = cache_.place_on_chain(cache_.fill_cursor_, PageKind::kLazy, id,
                                       layout.value()->size, layout.value()->align,
                                       id.space);
    if (!entry) return entry.status();
    const std::uint32_t span = cache_.pages_spanned(entry.value());
    for (std::uint32_t i = 0; i < span; ++i) {
      SRPC_RETURN_IF_ERROR(cache_.make_writable(entry.value().page + i));
    }
    locals_[index] = reinterpret_cast<std::uint64_t>(entry.value().local);
    ++cache_.stats_.objects_filled;
    // This object arrived as closure surplus — resident before any fault
    // could ask for it. If it is later touched, that's an eagerness win.
    ++cache_.stats_.closure_prefetch_hits;
    return static_cast<void*>(entry.value().local);
  }

  Result<std::uint64_t> address_of(std::uint32_t index) override {
    if (index >= locals_.size() || locals_[index] == 0) {
      return internal_error("address_of before prepare");
    }
    return locals_[index];
  }

  Result<std::uint64_t> swizzle(const LongPointer& target, TypeId pointee) override {
    if (target.space == cache_.self_) {
      return cache_.fetcher_.swizzle_home(target, pointee);
    }
    return cache_.swizzle(target, pointee);
  }

 private:
  CacheManager& cache_;
  std::vector<std::uint64_t> locals_;
};

bool CacheManager::is_fill_open(PageIndex page) const {
  return std::find(fill_open_pages_.begin(), fill_open_pages_.end(), page) !=
         fill_open_pages_.end();
}

Status CacheManager::prefetch(const void* addr, std::uint64_t closure_budget) {
  const PageIndex page = arena_.page_of(addr);
  if (page == kInvalidPage) {
    return invalid_argument("prefetch of an address outside the cache");
  }
  const PageState state = pages_.info(page).state;
  if (state == PageState::kClean || state == PageState::kDirty) {
    return Status::ok();  // already resident
  }
  if (state == PageState::kEmpty) {
    return failed_precondition("prefetch of a page with no allocated data");
  }
  // A deliberate transfer, not an access violation: no fault cost.
  return fill_page(page, closure_budget);
}

Status CacheManager::prefetch_many(std::span<const void* const> addrs,
                                   const ParallelFetch& transfer) {
  if (filling_) {
    return internal_error("recursive page fill");
  }
  // Resolve the fillable pages behind the addresses. Prefetch is advisory:
  // foreign, resident, and unallocated addresses are skipped, not errors.
  std::vector<PageIndex> fill_pages;
  for (const void* addr : addrs) {
    const PageIndex page = arena_.page_of(addr);
    if (page == kInvalidPage) continue;
    const PageState state = pages_.info(page).state;
    if (state != PageState::kAllocated) continue;
    if (std::find(fill_pages.begin(), fill_pages.end(), page) == fill_pages.end()) {
      fill_pages.push_back(page);
    }
  }
  if (fill_pages.empty()) return Status::ok();

  filling_ = true;
  fill_cursor_ = Cursor{};
  fill_open_pages_.clear();

  // Open every requested page plus every page spanned by its entries — all
  // of them at once, so replies may land and fill in any order.
  Status result = Status::ok();
  std::vector<const AllocationEntry*> wanted;
  for (const PageIndex page : fill_pages) {
    auto entries = table_.entries_on_page(page);
    if (entries.empty()) continue;
    if (result.is_ok()) result = make_writable(page);
    for (const AllocationEntry* e : entries) {
      if (!result.is_ok()) break;
      const std::uint32_t span = pages_spanned(*e);
      for (std::uint32_t i = 0; i < span && result.is_ok(); ++i) {
        result = make_writable(e->page + i);
      }
      if (std::find(wanted.begin(), wanted.end(), e) == wanted.end()) {
        wanted.push_back(e);
      }
    }
    if (!result.is_ok()) break;
  }
  // Lazy cursors must stop pointing at pages that are about to turn
  // resident, or a later swizzle could hide an unfetched datum on them.
  for (auto& [origin, cursor] : lazy_cursors_) {
    if (cursor.page != kInvalidPage && is_fill_open(cursor.page)) {
      cursor = Cursor{};
    }
  }

  std::vector<PrefetchGroup> groups;
  for (const AllocationEntry* e : wanted) {
    auto it = std::find_if(groups.begin(), groups.end(), [&](const PrefetchGroup& g) {
      return g.home == e->pointer.space;
    });
    if (it == groups.end()) {
      groups.push_back(PrefetchGroup{e->pointer.space, {}});
      it = std::prev(groups.end());
    }
    it->pointers.push_back(e->pointer);
  }

  if (result.is_ok()) {
    stats_.fetches += groups.size();
    auto replies = transfer(groups);
    if (!replies) {
      result = replies.status();
    } else {
      // Same reply shape as the fault path: each FETCH_REPLY is
      // "count u32 | count x graph payload".
      for (ByteBuffer& payload : replies.value()) {
        xdr::Decoder dec(payload);
        auto count = dec.get_u32();
        if (!count) {
          result = count.status();
          break;
        }
        for (std::uint32_t i = 0; i < count.value() && result.is_ok(); ++i) {
          FillSink sink(*this);
          result = decode_graph_payload(codec_, arch_, payload, sink);
        }
        if (!result.is_ok()) break;
      }
    }
  }

  if (result.is_ok()) {
    ++stats_.fills;
    result = finish_fill_pages();
  }

  filling_ = false;
  fill_open_pages_.clear();
  fill_cursor_ = Cursor{};
  return result;
}

Status CacheManager::fill_page(PageIndex page, std::uint64_t closure_budget) {
  if (filling_) {
    return internal_error("recursive page fill");
  }
  auto entries = table_.entries_on_page(page);
  if (entries.empty()) {
    return failed_precondition("fault on page " + std::to_string(page) +
                               " with no allocated data");
  }

  filling_ = true;
  fill_cursor_ = Cursor{};
  fill_open_pages_.clear();

  Status result = Status::ok();
  // Open the faulted page and every page spanned by its entries.
  result = make_writable(page);
  for (const AllocationEntry* e : entries) {
    if (!result.is_ok()) break;
    const std::uint32_t span = pages_spanned(*e);
    for (std::uint32_t i = 0; i < span && result.is_ok(); ++i) {
      result = make_writable(e->page + i);
    }
  }

  // Lazy cursors must stop pointing at pages that are about to turn
  // resident, or a later swizzle could hide an unfetched datum on them.
  for (auto& [origin, cursor] : lazy_cursors_) {
    if (cursor.page != kInvalidPage && is_fill_open(cursor.page)) {
      cursor = Cursor{};
    }
  }

  // One fetch per home space owning data on this page (the cluster
  // strategy makes this a single round trip; kMixed may need several).
  std::map<SpaceId, std::vector<LongPointer>> by_home;
  for (const AllocationEntry* e : entries) {
    by_home[e->pointer.space].push_back(e->pointer);
  }
  if (result.is_ok()) {
    for (auto& [home, pointers] : by_home) {
      ++stats_.fetches;
      auto reply = fetcher_.fetch(home, pointers, closure_budget, session_);
      if (!reply) {
        result = reply.status();
        break;
      }
      // A FETCH_REPLY is "count u32 | count x graph payload": the home may
      // group its closure by several origin spaces (its own heap plus data
      // it holds resident for third spaces).
      xdr::Decoder dec(reply.value());
      auto count = dec.get_u32();
      if (!count) {
        result = count.status();
        break;
      }
      for (std::uint32_t i = 0; i < count.value() && result.is_ok(); ++i) {
        FillSink sink(*this);
        result = decode_graph_payload(codec_, arch_, reply.value(), sink);
      }
      if (!result.is_ok()) break;
    }
  }

  if (result.is_ok()) {
    ++stats_.fills;
    result = finish_fill_pages();
  }

  filling_ = false;
  fill_open_pages_.clear();
  fill_cursor_ = Cursor{};
  return result;
}

Status CacheManager::finish_fill_pages() {
  // Apply pending overlays first. The freshly fetched content is the
  // coherent baseline, so every page an overlaid entry spans gets its twin
  // snapshotted *before* the overlay bytes land — that keeps the overlay in
  // the delta the next collect_modified_deltas() emits.
  std::unordered_set<PageIndex> dirtied;
  for (const PageIndex p : fill_open_pages_) {
    for (const AllocationEntry* e : table_.entries_on_page(p)) {
      auto overlay = overlays_.find(e);
      if (overlay == overlays_.end()) continue;
      const std::uint32_t span = pages_spanned(*e);
      for (std::uint32_t i = 0; i < span; ++i) {
        const PageIndex q = e->page + i;
        if (!pages_.has_twin(q)) {
          pages_.snapshot_twin(q, arena_.page_base(q), arena_.page_size());
        }
        dirtied.insert(q);
      }
      for (const ByteRange& r : overlay->second.valid) {
        std::memcpy(e->local + r.offset, overlay->second.bytes.data() + r.offset,
                    r.len);
      }
      overlays_.erase(overlay);
    }
  }
  // Seal and protect every opened page.
  for (const PageIndex p : fill_open_pages_) {
    const bool dirty = dirtied.contains(p);
    SRPC_RETURN_IF_ERROR(
        pages_.transition(p, dirty ? PageState::kDirty : PageState::kClean));
    SRPC_RETURN_IF_ERROR(arena_.protect(
        p, dirty ? PageProtection::kReadWrite : PageProtection::kRead));
  }
  return Status::ok();
}

Status CacheManager::incorporate_clean_payload(ByteBuffer& payload) {
  if (filling_) {
    return internal_error("incorporate_clean_payload during a fill");
  }
  filling_ = true;
  fill_cursor_ = Cursor{};
  fill_open_pages_.clear();

  FillSink sink(*this);
  Status result = decode_graph_payload(codec_, arch_, payload, sink);
  if (result.is_ok()) {
    result = finish_fill_pages();
  }

  filling_ = false;
  fill_open_pages_.clear();
  fill_cursor_ = Cursor{};
  return result;
}

// ---------------------------------------------------------------------------
// Coherency support
// ---------------------------------------------------------------------------

std::vector<CacheManager::ModifiedObject> CacheManager::collect_modified() const {
  std::vector<ModifiedObject> out;
  std::unordered_set<const AllocationEntry*> seen;
  for (const PageIndex p : pages_.pages_in_state(PageState::kDirty)) {
    for (const AllocationEntry* e : table_.entries_on_page(p)) {
      if (seen.insert(e).second) {
        out.push_back({e->pointer, e->local});
      }
    }
  }
  for (const auto& [entry, overlay] : overlays_) {
    if (seen.insert(entry).second) {
      out.push_back({entry->pointer, overlay.bytes.data()});
    }
  }
  return out;
}

bool CacheManager::diff_entry(const AllocationEntry& entry,
                              std::vector<ByteRange>& out) const {
  const std::size_t page_size = arena_.page_size();
  const std::uint32_t span = pages_spanned(entry);
  for (std::uint32_t i = 0; i < span; ++i) {
    const PageIndex p = entry.page + i;
    if (pages_.info(p).state != PageState::kDirty) continue;  // unchanged
    if (!pages_.has_twin(p)) return false;  // born dirty: no baseline
    // The slice of the entry living on page p, in object-relative terms.
    const std::uint64_t page_lo = static_cast<std::uint64_t>(i) * page_size;
    const std::uint64_t ent_lo = std::max<std::uint64_t>(entry.offset, page_lo);
    const std::uint64_t ent_hi =
        std::min<std::uint64_t>(entry.offset + entry.size, page_lo + page_size);
    if (ent_lo >= ent_hi) continue;
    const std::uint64_t in_page = ent_lo % page_size;
    diff_ranges(arena_.page_base(p) + in_page, pages_.twin(p) + in_page,
                static_cast<std::uint32_t>(ent_hi - ent_lo),
                static_cast<std::uint32_t>(ent_lo - entry.offset), kDiffMergeGap,
                out);
  }
  return true;
}

std::vector<CacheManager::ModifiedDatum> CacheManager::collect_modified_deltas()
    const {
  std::vector<ModifiedDatum> out;
  std::unordered_set<const AllocationEntry*> seen;
  for (const PageIndex p : pages_.pages_in_state(PageState::kDirty)) {
    for (const AllocationEntry* e : table_.entries_on_page(p)) {
      if (!seen.insert(e).second) continue;
      ModifiedDatum d;
      d.id = e->pointer;
      d.image = e->local;
      d.size = e->size;
      d.has_baseline = diff_entry(*e, d.dirty);
      if (!d.has_baseline) d.dirty.clear();
      out.push_back(std::move(d));
    }
  }
  for (const auto& [entry, overlay] : overlays_) {
    if (!seen.insert(entry).second) continue;
    ModifiedDatum d;
    d.id = entry->pointer;
    d.image = overlay.bytes.data();
    d.size = entry->size;
    d.has_baseline = true;  // only the received ranges are meaningful
    d.complete = overlay.valid.size() == 1 && overlay.valid[0].offset == 0 &&
                 overlay.valid[0].len == entry->size;
    d.dirty = overlay.valid;
    out.push_back(std::move(d));
  }
  return out;
}

Result<CacheManager::ModifiedDatum> CacheManager::modified_datum(
    const LongPointer& id) const {
  const AllocationEntry* entry = table_.find(id);
  if (entry == nullptr) {
    return not_found("modified_datum: " + id.to_string());
  }
  if (auto overlay = overlays_.find(entry); overlay != overlays_.end()) {
    ModifiedDatum d;
    d.id = entry->pointer;
    d.image = overlay->second.bytes.data();
    d.size = entry->size;
    d.has_baseline = true;
    d.complete = overlay->second.valid.size() == 1 &&
                 overlay->second.valid[0].offset == 0 &&
                 overlay->second.valid[0].len == entry->size;
    d.dirty = overlay->second.valid;
    return d;
  }
  bool on_dirty_page = false;
  const std::uint32_t span = pages_spanned(*entry);
  for (std::uint32_t i = 0; i < span && !on_dirty_page; ++i) {
    on_dirty_page = pages_.info(entry->page + i).state == PageState::kDirty;
  }
  if (!on_dirty_page) {
    return not_found("modified_datum: " + id.to_string() + " not modified");
  }
  ModifiedDatum d;
  d.id = entry->pointer;
  d.image = entry->local;
  d.size = entry->size;
  d.has_baseline = diff_entry(*entry, d.dirty);
  if (!d.has_baseline) d.dirty.clear();
  return d;
}

Status CacheManager::dirty_spanned_pages(const AllocationEntry& entry) {
  const std::uint32_t span = pages_spanned(entry);
  for (std::uint32_t i = 0; i < span; ++i) {
    const PageIndex p = entry.page + i;
    if (pages_.info(p).state == PageState::kClean) {
      // Pre-write image first: it is the baseline later diffs run against.
      if (!pages_.has_twin(p)) {
        pages_.snapshot_twin(p, arena_.page_base(p), arena_.page_size());
      }
      SRPC_RETURN_IF_ERROR(pages_.transition(p, PageState::kDirty));
      SRPC_RETURN_IF_ERROR(arena_.protect(p, PageProtection::kReadWrite));
    }
  }
  return Status::ok();
}

Result<void*> CacheManager::prepare_incoming_dirty(const LongPointer& id) {
  const AllocationEntry* entry = table_.find(id);
  if (entry == nullptr) {
    const TypeId type = id.type;
    if (type == kInvalidTypeId) {
      return invalid_argument("incoming dirty datum with no type: " + id.to_string());
    }
    auto layout = layouts_.layout_of(arch_, type);
    if (!layout) return layout.status();
    auto placed = place_lazy(id, layout.value()->size, layout.value()->align);
    if (!placed) return placed.status();
    entry = table_.find(id);
  }
  if (is_resident(entry->local)) {
    // Overwrite in place; the page joins the modified data set.
    SRPC_RETURN_IF_ERROR(dirty_spanned_pages(*entry));
    return static_cast<void*>(entry->local);
  }
  // Not resident: hold the value as an overlay, applied when (and if) the
  // page is filled; collect_modified() forwards it meanwhile. A full image
  // arrives, so the whole overlay is valid.
  Overlay& overlay = overlays_[entry];
  overlay.bytes.assign(entry->size, 0);
  overlay.valid.assign(1, ByteRange{0, entry->size});
  return static_cast<void*>(overlay.bytes.data());
}

Status CacheManager::apply_incoming_delta(const LongPointer& id,
                                          std::span<const ByteRange> ranges,
                                          const std::uint8_t* bytes) {
  const AllocationEntry* entry = table_.find(id);
  if (entry == nullptr) {
    const TypeId type = id.type;
    if (type == kInvalidTypeId) {
      return invalid_argument("incoming delta with no type: " + id.to_string());
    }
    auto layout = layouts_.layout_of(arch_, type);
    if (!layout) return layout.status();
    auto placed = place_lazy(id, layout.value()->size, layout.value()->align);
    if (!placed) return placed.status();
    entry = table_.find(id);
  }
  if (!ranges.empty() && ranges.back().end() > entry->size) {
    return protocol_error("delta range past the end of " + id.to_string());
  }
  if (is_resident(entry->local)) {
    SRPC_RETURN_IF_ERROR(dirty_spanned_pages(*entry));
    const std::uint8_t* src = bytes;
    for (const ByteRange& r : ranges) {
      std::memcpy(entry->local + r.offset, src, r.len);
      src += r.len;
    }
    return Status::ok();
  }
  // Non-resident: accumulate on the overlay and remember which ranges are
  // real, so a later fill only applies received bytes over fetched content.
  Overlay& overlay = overlays_[entry];
  if (overlay.bytes.size() != entry->size) {
    overlay.bytes.assign(entry->size, 0);
    overlay.valid.clear();
  }
  const std::uint8_t* src = bytes;
  for (const ByteRange& r : ranges) {
    std::memcpy(overlay.bytes.data() + r.offset, src, r.len);
    src += r.len;
    overlay.valid.push_back(r);
  }
  merge_ranges(overlay.valid);
  return Status::ok();
}

void CacheManager::renew_lease(SpaceId source, std::uint64_t vnow_ns) {
  auto it = leases_.find(source);
  if (it == leases_.end()) {
    SourceLease fresh;
    auto floor = lease_epoch_floor_.find(source);
    if (floor != lease_epoch_floor_.end()) fresh.epoch = floor->second;
    it = leases_.emplace(source, fresh).first;
  }
  if (vnow_ns > it->second.last_contact_ns) it->second.last_contact_ns = vnow_ns;
}

void CacheManager::touch_lease(SpaceId source, std::uint64_t vnow_ns) {
  auto it = leases_.find(source);
  if (it == leases_.end()) return;
  if (vnow_ns > it->second.last_contact_ns) it->second.last_contact_ns = vnow_ns;
}

const CacheManager::SourceLease* CacheManager::lease(SpaceId source) const {
  auto it = leases_.find(source);
  return it == leases_.end() ? nullptr : &it->second;
}

std::vector<SpaceId> CacheManager::lapsed_sources(std::uint64_t vnow_ns,
                                                  std::uint64_t ttl_ns) const {
  std::vector<SpaceId> out;
  for (const auto& [source, l] : leases_) {
    if (l.last_contact_ns + ttl_ns < vnow_ns) out.push_back(source);
  }
  return out;
}

std::size_t CacheManager::revoke_source(SpaceId source) {
  std::size_t revoked = 0;
  for (PageIndex p = 0; p < next_fresh_page_; ++p) {
    PageInfo& info = pages_.info(p);
    if (info.origin != source || info.kind != PageKind::kLazy) continue;
    if (info.state != PageState::kClean && info.state != PageState::kDirty) {
      continue;
    }
    (void)arena_.protect(p, PageProtection::kNone);
    info.state = PageState::kAllocated;  // table entries survive; bytes do not
    pages_.drop_twin(p);
    ++revoked;
  }
  for (auto it = overlays_.begin(); it != overlays_.end();) {
    if (it->first->pointer.space == source) {
      it = overlays_.erase(it);
    } else {
      ++it;
    }
  }
  // A fresh chain starts if the source ever comes back in a later session.
  lazy_cursors_.erase(source);
  // The lease ends with the data: a later fetch from the source (should it
  // turn out alive after all) starts a fresh one under a higher epoch.
  auto lit = leases_.find(source);
  if (lit != leases_.end()) {
    lease_epoch_floor_[source] = lit->second.epoch + 1;
    leases_.erase(lit);
  }
  return revoked;
}

void CacheManager::invalidate_all() {
  if (next_fresh_page_ > 0) {
    (void)set_protection(arena_.base(),
                         static_cast<std::size_t>(next_fresh_page_) * arena_.page_size(),
                         PageProtection::kNone);
  }
  table_.clear();
  overlays_.clear();
  pages_.reset();
  lazy_cursors_.clear();
  leases_.clear();
  alloc_cursor_ = Cursor{};
  fill_cursor_ = Cursor{};
  fill_open_pages_.clear();
  filling_ = false;
  next_fresh_page_ = 0;
}

}  // namespace srpc
