#include "core/closure.hpp"

#include <deque>
#include <unordered_set>

namespace srpc {

Status walk_pointer_fields(
    const TypeRegistry& registry, const LayoutEngine& layouts, const ArchModel& arch,
    TypeId type, const void* src,
    const std::function<Status(std::uint64_t, TypeId)>& fn) {
  auto desc_or = registry.find(type);
  if (!desc_or) return desc_or.status();
  const TypeDescriptor& desc = *desc_or.value();
  const auto* bytes = static_cast<const std::uint8_t*>(src);

  switch (desc.kind()) {
    case TypeKind::kScalar:
      return Status::ok();
    case TypeKind::kPointer: {
      const std::uint64_t ordinary =
          read_scaled_uint(src, arch.pointer_size, arch.endian);
      if (ordinary == 0) return Status::ok();
      return fn(ordinary, desc.pointee());
    }
    case TypeKind::kArray: {
      auto elem_layout = layouts.layout_of(arch, desc.element());
      if (!elem_layout) return elem_layout.status();
      const std::uint64_t stride = elem_layout.value()->size;
      for (std::uint32_t i = 0; i < desc.count(); ++i) {
        SRPC_RETURN_IF_ERROR(walk_pointer_fields(registry, layouts, arch, desc.element(),
                                                 bytes + i * stride, fn));
      }
      return Status::ok();
    }
    case TypeKind::kStruct: {
      auto layout = layouts.layout_of(arch, type);
      if (!layout) return layout.status();
      const auto& fields = desc.fields();
      for (std::size_t i = 0; i < fields.size(); ++i) {
        SRPC_RETURN_IF_ERROR(walk_pointer_fields(
            registry, layouts, arch, fields[i].type,
            bytes + layout.value()->field_offsets[i], fn));
      }
      return Status::ok();
    }
  }
  return internal_error("unreachable type kind");
}

Result<PackedClosure> ClosurePacker::pack(std::span<const std::uint64_t> roots,
                                          std::uint64_t budget_bytes,
                                          bool require_roots) const {
  PackedClosure out;
  std::deque<std::uint64_t> queue;
  std::unordered_set<std::uint64_t> enqueued;
  std::unordered_set<LongPointer, LongPointerHash> included;

  // Adds one readable datum to the result and queues its pointer targets.
  auto add_datum = [&](const LocalDataView::DatumView& datum) -> Status {
    out.groups[datum.id.space].push_back(
        GraphObjectRef{datum.id.address, datum.id.type, datum.image});
    ++out.objects;
    return walk_pointer_fields(
        codec_.registry, codec_.layouts, arch_, datum.id.type, datum.image,
        [&](std::uint64_t target, TypeId pointee) -> Status {
          (void)pointee;
          if (enqueued.insert(target).second) queue.push_back(target);
          return Status::ok();
        });
  };

  // Roots first. For fetch service (require_roots) they transfer
  // unconditionally — they are the data the receiver asked for. For
  // argument/result closures they count against the budget like everything
  // else, so a budget of zero sends pure pointers: the receiving page
  // "contains no data at this time" (paper §3.2, Fig. 2).
  for (const std::uint64_t root : roots) {
    if (!enqueued.insert(root).second) continue;
    auto view = view_.view_local(root);
    if (!view) {
      if (require_roots) return view.status();
      continue;
    }
    if (view.value().image == nullptr) {
      if (require_roots) {
        return failed_precondition("closure root is not locally readable: " +
                                   view.value().id.to_string());
      }
      continue;  // pass-through pointer: the receiver fetches from its home
    }
    if (included.contains(view.value().id)) continue;
    auto est = graph_object_wire_size(codec_, view.value().id.type);
    if (!est) return est.status();
    if (!require_roots && out.estimated_wire_bytes + est.value() > budget_bytes) {
      continue;
    }
    included.insert(view.value().id);
    out.estimated_wire_bytes += est.value();
    SRPC_RETURN_IF_ERROR(add_datum(view.value()));
  }

  // Bounded traversal of the children (the eagerness knob, §3.3).
  while (!queue.empty()) {
    std::uint64_t addr = 0;
    if (order_ == TraversalOrder::kBreadthFirst) {
      addr = queue.front();
      queue.pop_front();
    } else {
      addr = queue.back();
      queue.pop_back();
    }
    auto view = view_.view_local(addr);
    if (!view || view.value().image == nullptr) continue;  // frontier
    if (included.contains(view.value().id)) continue;
    auto est = graph_object_wire_size(codec_, view.value().id.type);
    if (!est) return est.status();
    if (out.estimated_wire_bytes + est.value() > budget_bytes) {
      break;  // budget spent: everything still queued stays frontier
    }
    included.insert(view.value().id);
    out.estimated_wire_bytes += est.value();
    SRPC_RETURN_IF_ERROR(add_datum(view.value()));
  }
  return out;
}

}  // namespace srpc
