// ClosurePacker — bounded breadth-first transitive closure (paper §3.3).
//
// "We introduce eagerness to the method by transferring a certain depth of
// the transitive closure of a pointer ... Our current implementation uses
// the breadth-first traverse algorithm with the maximum amount of the
// traversed data explicitly specified by the user."
//
// The packer starts from a set of root data and walks pointer fields
// breadth-first through everything locally *readable* — the space's own
// heap and resident cache pages — accumulating objects until the byte
// budget is spent. Unreadable or unknown targets stay behind as frontier
// long pointers in the encoded payload. The same packer serves three
// callers: fetch service at a home (roots = the faulted page's entries),
// eager transfer of pointer arguments, and eager transfer of pointer
// results.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <span>
#include <vector>

#include "common/ids.hpp"
#include "common/status.hpp"
#include "core/graph_payload.hpp"
#include "swizzle/long_pointer.hpp"
#include "types/value_codec.hpp"

namespace srpc {

// How the packer sees local memory; implemented by the Runtime.
class LocalDataView {
 public:
  virtual ~LocalDataView() = default;

  struct DatumView {
    LongPointer id;            // home identity (base)
    const void* image = nullptr;  // readable local-layout bytes
  };

  // Resolves a local ordinary pointer to a readable datum; an interior
  // address resolves to its containing datum. Returns a view with
  // image == nullptr when the datum exists but is not readable here
  // (swizzled but unfetched cache); NOT_FOUND when the address designates
  // nothing the runtime knows.
  virtual Result<DatumView> view_local(std::uint64_t local_addr) const = 0;
};

struct PackedClosure {
  // One object group per home space, ready for encode_graph_payload().
  std::map<SpaceId, std::vector<GraphObjectRef>> groups;
  std::uint64_t estimated_wire_bytes = 0;
  std::size_t objects = 0;
};

enum class TraversalOrder : std::uint8_t {
  kBreadthFirst,  // the paper's algorithm
  kDepthFirst,    // ablation: bench/ablation_closure_shape
};

class ClosurePacker {
 public:
  ClosurePacker(const ValueCodec& codec, const ArchModel& arch,
                const LocalDataView& view,
                TraversalOrder order = TraversalOrder::kBreadthFirst)
      : codec_(codec), arch_(arch), view_(view), order_(order) {}

  // Packs the closure of `roots` (local base addresses). Roots are always
  // included — they are the data the receiver asked for — and count toward
  // the budget; children are added while it lasts. With `require_roots`
  // (fetch service at a home) an unreadable root is an error — it would
  // mean a dangling remote pointer; without it (argument marshalling) an
  // unreadable root is just passed through as a pointer. Unreadable
  // *children* are always frontier.
  Result<PackedClosure> pack(std::span<const std::uint64_t> roots,
                             std::uint64_t budget_bytes,
                             bool require_roots = false) const;

  [[nodiscard]] TraversalOrder order() const noexcept { return order_; }
  void set_order(TraversalOrder order) noexcept { order_ = order; }

 private:
  const ValueCodec& codec_;
  const ArchModel& arch_;
  const LocalDataView& view_;
  TraversalOrder order_;
};

// Invokes `fn(ordinary_pointer_value, pointee_type)` for every non-null
// pointer field reachable inside one value of `type` at `src` (descending
// through nested structs and arrays, not through the pointers themselves).
Status walk_pointer_fields(
    const TypeRegistry& registry, const LayoutEngine& layouts, const ArchModel& arch,
    TypeId type, const void* src,
    const std::function<Status(std::uint64_t, TypeId)>& fn);

}  // namespace srpc
