// FailureDetector — per-peer liveness bookkeeping for one runtime.
//
// The paper assumes spaces never fail; this layer makes failure explicit so
// the rest of the runtime can contain it. The detector is passive: it never
// sends anything itself. The runtime feeds it observations — a completed
// round trip is contact, a probe that times out is a miss — and reads back
// a three-state health verdict:
//
//   kAlive    default; traffic flows normally
//   kSuspect  >= suspect_after consecutive probe misses (or an explicit
//             mark_suspect); traffic still flows, leases stop renewing
//   kDead     >= dead_after consecutive misses, or an explicit mark_dead
//             (World::mark_dead, crash_space); calls fail fast with
//             SPACE_DEAD instead of burning the full backoff schedule
//   kRejoining a REJOIN announcement arrived from a dead peer's new
//             incarnation (note_rejoin); the runtime has flushed the old
//             incarnation's state and traffic may flow again — the first
//             successful exchange lifts the peer back to kAlive
//
// Dead is terminal to *messages*: a space that was declared dead stays
// dead even if a stray late frame from the crashed incarnation arrives
// (the declaration may already have triggered lease revocation and orphan
// reclamation, which cannot be undone). Only an explicit note_rejoin() —
// driven by a REJOIN carrying a *higher* incarnation, i.e. provably a new
// process — reopens the peer, via kDead -> kRejoining -> kAlive.
//
// Thread-safety: every method takes the internal mutex. mark_dead() is
// called from World threads while the runtime's worker may be mid-await,
// so nothing here may block or call back into the runtime.
#pragma once

#include <cstdint>
#include <mutex>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/ids.hpp"

namespace srpc {

enum class PeerHealth : std::uint8_t { kAlive, kSuspect, kDead, kRejoining };

std::string_view to_string(PeerHealth h) noexcept;

struct FailureDetectorOptions {
  std::uint32_t suspect_after = 1;  // consecutive misses before kSuspect
  std::uint32_t dead_after = 3;     // consecutive misses before kDead
};

class FailureDetector {
 public:
  explicit FailureDetector(FailureDetectorOptions options = {})
      : options_(options) {}

  // A successful exchange with `peer` at virtual time `vnow_ns`. Clears the
  // miss streak and lifts suspicion — unless the peer is already dead.
  void note_contact(SpaceId peer, std::uint64_t vnow_ns);

  // A probe of `peer` went unanswered. Returns the health after counting
  // the miss, so the caller can react to the alive->dead edge exactly once
  // (the transition is reported by exactly one note_miss/mark_dead call).
  PeerHealth note_miss(SpaceId peer);

  void mark_suspect(SpaceId peer);
  // Returns true if this call performed the alive/suspect -> dead
  // transition (false if the peer was already dead). A rejoining peer can
  // die again: kRejoining -> kDead reports the transition like any other.
  bool mark_dead(SpaceId peer);

  // The peer's new incarnation announced itself: reopen a dead peer as
  // kRejoining (the only exit from kDead). The miss streak restarts so the
  // resurrected peer gets a full dead_after budget. No-op unless dead.
  void note_rejoin(SpaceId peer);

  [[nodiscard]] PeerHealth health(SpaceId peer) const;
  [[nodiscard]] bool is_dead(SpaceId peer) const {
    return health(peer) == PeerHealth::kDead;
  }
  [[nodiscard]] std::uint64_t last_contact_ns(SpaceId peer) const;

  [[nodiscard]] std::vector<SpaceId> dead_peers() const;

  // One row per tracked peer, for health snapshots (World::health_json).
  struct PeerSnapshot {
    SpaceId peer = kInvalidSpaceId;
    PeerHealth health = PeerHealth::kAlive;
    std::uint32_t consecutive_misses = 0;
    std::uint64_t last_contact_ns = 0;
  };
  [[nodiscard]] std::vector<PeerSnapshot> snapshot() const;

 private:
  struct PeerState {
    PeerHealth health = PeerHealth::kAlive;
    std::uint32_t consecutive_misses = 0;
    std::uint64_t last_contact_ns = 0;
  };

  FailureDetectorOptions options_;
  mutable std::mutex mutex_;
  std::unordered_map<SpaceId, PeerState> peers_;
};

}  // namespace srpc
