// Support machinery for delta-encoded modified sets (PROTOCOL.md
// "MODIFIED_DELTA").
//
// PointerRangeIndex answers "which bytes of this type's local layout hold
// pointer fields?". Raw byte-range deltas ship local images verbatim, and a
// swizzled local pointer is meaningless in any other space — so a delta
// whose dirty ranges touch pointer bytes must fall back to the graph
// payload encoder, which unswizzles pointers properly.
//
// ShipState is the per-object epoch/fingerprint record behind the
// "already shipped to this hop" skip: each space fingerprints an object's
// effective delta over its *own* image and remembers, per peer, the
// fingerprint that peer last observed (either because we shipped it or
// because the peer sent it to us). Fingerprints never cross the wire.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/byte_range.hpp"
#include "common/ids.hpp"
#include "common/status.hpp"
#include "types/arch.hpp"
#include "types/layout.hpp"
#include "types/type_registry.hpp"

namespace srpc {

class PointerRangeIndex {
 public:
  PointerRangeIndex(const TypeRegistry& registry, const LayoutEngine& layouts,
                    const ArchModel& arch)
      : registry_(registry), layouts_(layouts), arch_(arch) {}
  PointerRangeIndex(const PointerRangeIndex&) = delete;
  PointerRangeIndex& operator=(const PointerRangeIndex&) = delete;

  // Merged byte ranges covered by pointer fields anywhere in `type`'s local
  // layout (recursing through structs and arrays). Cached per type; the
  // span stays valid for the index's lifetime.
  Result<std::span<const ByteRange>> pointer_ranges(TypeId type) const;

 private:
  Status collect(TypeId type, std::uint64_t base,
                 std::vector<ByteRange>& out) const;

  const TypeRegistry& registry_;
  const LayoutEngine& layouts_;
  const ArchModel& arch_;
  mutable std::unordered_map<TypeId, std::vector<ByteRange>> cache_;
};

// Per-object, session-scoped shipping record (see Runtime).
struct ShipState {
  std::uint64_t epoch = 0;        // session epoch when content last changed
  std::uint64_t fingerprint = 0;  // of the current effective delta; 0 = unset
  // Union of every range shipped anywhere this session. A byte that was
  // shipped and later reverted to its baseline value no longer diffs, but
  // receivers hold the old value — keeping it in the effective set (and in
  // the fingerprint) makes the revert travel too.
  std::vector<ByteRange> ever_shipped;  // merged
  // Fingerprint of the content each peer last observed from/with us.
  std::unordered_map<SpaceId, std::uint64_t> peer_fingerprint;
};

}  // namespace srpc
