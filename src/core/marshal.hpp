// Typed stubs — what a conventional RPC stub generator would emit, done
// with templates.
//
// Param<T> defines how one argument/result crosses the wire:
//   * arithmetic types and std::string marshal as canonical XDR;
//   * T* marshals as a 16-byte long pointer — unswizzled on the caller,
//     swizzled into a protected cache location on the callee — and is
//     recorded as a closure root so its bounded transitive closure travels
//     eagerly with the message (paper §3.2–3.3).
//
// make_raw_handler() wraps an application function into the registry's
// RawHandler; typed_call() is the caller-side stub.
#pragma once

#include <chrono>
#include <string>
#include <tuple>
#include <type_traits>
#include <vector>

#include "core/runtime.hpp"
#include "swizzle/long_pointer.hpp"
#include "xdr/xdr_decoder.hpp"
#include "xdr/xdr_encoder.hpp"

namespace srpc {

template <typename T, typename Enable = void>
struct Param;  // unspecialised: type cannot cross an RPC boundary

// --- arithmetic ------------------------------------------------------------

template <typename T>
struct Param<T, std::enable_if_t<std::is_arithmetic_v<T>>> {
  static Status encode(Runtime&, xdr::Encoder& enc, std::vector<std::uint64_t>&, T v) {
    if constexpr (std::is_same_v<T, bool>) {
      enc.put_bool(v);
    } else if constexpr (std::is_same_v<T, float>) {
      enc.put_f32(v);
    } else if constexpr (std::is_same_v<T, double>) {
      enc.put_f64(v);
    } else if constexpr (std::is_signed_v<T> && sizeof(T) <= 4) {
      enc.put_i32(static_cast<std::int32_t>(v));
    } else if constexpr (!std::is_signed_v<T> && sizeof(T) <= 4) {
      enc.put_u32(static_cast<std::uint32_t>(v));
    } else if constexpr (std::is_signed_v<T>) {
      enc.put_i64(static_cast<std::int64_t>(v));
    } else {
      enc.put_u64(static_cast<std::uint64_t>(v));
    }
    return Status::ok();
  }

  static Result<T> decode(Runtime&, xdr::Decoder& dec) {
    if constexpr (std::is_same_v<T, bool>) {
      auto v = dec.get_bool();
      if (!v) return v.status();
      return v.value();
    } else if constexpr (std::is_same_v<T, float>) {
      auto v = dec.get_f32();
      if (!v) return v.status();
      return v.value();
    } else if constexpr (std::is_same_v<T, double>) {
      auto v = dec.get_f64();
      if (!v) return v.status();
      return v.value();
    } else if constexpr (sizeof(T) <= 4 && std::is_signed_v<T>) {
      auto v = dec.get_i32();
      if (!v) return v.status();
      return static_cast<T>(v.value());
    } else if constexpr (sizeof(T) <= 4) {
      auto v = dec.get_u32();
      if (!v) return v.status();
      return static_cast<T>(v.value());
    } else if constexpr (std::is_signed_v<T>) {
      auto v = dec.get_i64();
      if (!v) return v.status();
      return static_cast<T>(v.value());
    } else {
      auto v = dec.get_u64();
      if (!v) return v.status();
      return static_cast<T>(v.value());
    }
  }
};

// --- std::string -------------------------------------------------------------

template <>
struct Param<std::string, void> {
  static Status encode(Runtime&, xdr::Encoder& enc, std::vector<std::uint64_t>&,
                       const std::string& v) {
    enc.put_string(v);
    return Status::ok();
  }
  static Result<std::string> decode(Runtime&, xdr::Decoder& dec) {
    return dec.get_string();
  }
};

// --- raw long pointers ---------------------------------------------------------

// Passes a long pointer verbatim, without swizzling on receipt. This is the
// conventional-RPC escape hatch the fully-lazy baseline uses: the callee
// gets an opaque capability and performs explicit callbacks (paper §2).
template <>
struct Param<LongPointer, void> {
  static Status encode(Runtime&, xdr::Encoder& enc, std::vector<std::uint64_t>&,
                       const LongPointer& p) {
    encode_long_pointer(enc, p);
    return Status::ok();
  }
  static Result<LongPointer> decode(Runtime&, xdr::Decoder& dec) {
    return decode_long_pointer(dec);
  }
};

// --- pointers -----------------------------------------------------------------

template <typename T>
struct Param<T*, void> {
  using Pointee = std::remove_const_t<T>;

  static Status encode(Runtime& rt, xdr::Encoder& enc,
                       std::vector<std::uint64_t>& roots, T* p) {
    if (p == nullptr) {
      encode_long_pointer(enc, LongPointer::null());
      return Status::ok();
    }
    auto type = rt.host_types().find<Pointee>();
    if (!type) return type.status();
    const auto ordinary = reinterpret_cast<std::uint64_t>(p);
    auto lp = rt.unswizzle(ordinary, type.value());
    if (!lp) return lp.status();
    encode_long_pointer(enc, lp.value());
    roots.push_back(ordinary);
    return Status::ok();
  }

  static Result<T*> decode(Runtime& rt, xdr::Decoder& dec) {
    auto lp = decode_long_pointer(dec);
    if (!lp) return lp.status();
    if (lp.value().is_null()) return static_cast<T*>(nullptr);
    auto type = rt.host_types().find<Pointee>();
    if (!type) return type.status();
    auto ordinary = rt.swizzle(lp.value(), type.value());
    if (!ordinary) return ordinary.status();
    return reinterpret_cast<T*>(static_cast<std::uintptr_t>(ordinary.value()));
  }
};

// --- argument tuples -------------------------------------------------------------

namespace detail {

template <typename... Ts>
struct ArgDecoder;

template <>
struct ArgDecoder<> {
  static Result<std::tuple<>> run(Runtime&, xdr::Decoder&) { return std::tuple<>(); }
};

template <typename T, typename... Rest>
struct ArgDecoder<T, Rest...> {
  static Result<std::tuple<T, Rest...>> run(Runtime& rt, xdr::Decoder& dec) {
    auto head = Param<T>::decode(rt, dec);
    if (!head) return head.status();
    auto tail = ArgDecoder<Rest...>::run(rt, dec);
    if (!tail) return tail.status();
    return std::tuple_cat(std::make_tuple(std::move(head).value()),
                          std::move(tail).value());
  }
};

template <typename... Args>
Status encode_args(Runtime& rt, xdr::Encoder& enc, std::vector<std::uint64_t>& roots,
                   const Args&... args) {
  Status s = Status::ok();
  ((s = s.is_ok() ? Param<std::decay_t<Args>>::encode(rt, enc, roots, args) : s), ...);
  return s;
}

// Deduces (CallContext&, Args...) -> R from lambdas and function pointers.
template <typename F>
struct FnTraits : FnTraits<decltype(&F::operator())> {};

template <typename C, typename R, typename... A>
struct FnTraits<R (C::*)(CallContext&, A...) const> {
  using Ret = R;
  using ArgsTuple = std::tuple<A...>;
};
template <typename C, typename R, typename... A>
struct FnTraits<R (C::*)(CallContext&, A...)> {
  using Ret = R;
  using ArgsTuple = std::tuple<A...>;
};
template <typename R, typename... A>
struct FnTraits<R (*)(CallContext&, A...)> {
  using Ret = R;
  using ArgsTuple = std::tuple<A...>;
};

}  // namespace detail

// --- server-side stub ---------------------------------------------------------------

template <typename R, typename... Args, typename F>
RawHandler make_raw_handler(F fn) {
  return [fn = std::move(fn)](CallContext& ctx, ByteBuffer& args, ByteBuffer& out,
                              std::vector<std::uint64_t>& result_roots) -> Status {
    xdr::Decoder dec(args);
    auto decoded = detail::ArgDecoder<std::decay_t<Args>...>::run(ctx.runtime, dec);
    if (!decoded) return decoded.status();
    if (!dec.exhausted()) {
      // Caller and procedure disagree on the signature (e.g. int vs
      // int64_t) — the classic stub mismatch an IDL would prevent.
      return invalid_argument("argument marshalling mismatch: " +
                              std::to_string(dec.remaining()) +
                              " unconsumed argument bytes");
    }
    xdr::Encoder enc(out);
    if constexpr (std::is_void_v<R>) {
      std::apply([&](auto&&... a) { fn(ctx, std::forward<decltype(a)>(a)...); },
                 std::move(decoded).value());
      return Status::ok();
    } else {
      R result = std::apply(
          [&](auto&&... a) { return fn(ctx, std::forward<decltype(a)>(a)...); },
          std::move(decoded).value());
      // The handler may have extended_malloc'd the very data it returns;
      // assign real identities before unswizzling the result.
      SRPC_RETURN_IF_ERROR(ctx.runtime.flush_pending_memory_ops());
      return Param<std::decay_t<R>>::encode(ctx.runtime, enc, result_roots, result);
    }
  };
}

namespace detail {

template <typename R, typename ArgsTuple>
struct Binder;

template <typename R, typename... A>
struct Binder<R, std::tuple<A...>> {
  template <typename F>
  static Status bind(Runtime& rt, const std::string& name, F fn) {
    return rt.services().bind(name, make_raw_handler<R, A...>(std::move(fn)));
  }
};

}  // namespace detail

// Binds `fn` — any callable of shape R(CallContext&, Args...) — as a remote
// procedure.
template <typename F>
Status bind_procedure(Runtime& rt, const std::string& name, F fn) {
  using Traits = detail::FnTraits<std::decay_t<F>>;
  return detail::Binder<typename Traits::Ret, typename Traits::ArgsTuple>::bind(
      rt, name, std::move(fn));
}

// --- caller-side stub ------------------------------------------------------------------

template <typename R, typename... Args>
Result<R> typed_call(Runtime& rt, SpaceId target, const std::string& proc,
                     const Args&... args) {
  static_assert(!std::is_void_v<R>, "use typed_call_void for void procedures");
  // Provisional identities must not be unswizzled into the argument bytes.
  SRPC_RETURN_IF_ERROR(rt.flush_pending_memory_ops());
  ByteBuffer argbuf;
  xdr::Encoder enc(argbuf);
  std::vector<std::uint64_t> roots;
  SRPC_RETURN_IF_ERROR(detail::encode_args(rt, enc, roots, args...));
  auto reply = rt.call_raw(target, proc, std::move(argbuf), roots);
  if (!reply) return reply.status();
  xdr::Decoder dec(reply.value());
  return Param<std::decay_t<R>>::decode(rt, dec);
}

template <typename... Args>
Status typed_call_void(Runtime& rt, SpaceId target, const std::string& proc,
                       const Args&... args) {
  SRPC_RETURN_IF_ERROR(rt.flush_pending_memory_ops());
  ByteBuffer argbuf;
  xdr::Encoder enc(argbuf);
  std::vector<std::uint64_t> roots;
  SRPC_RETURN_IF_ERROR(detail::encode_args(rt, enc, roots, args...));
  auto reply = rt.call_raw(target, proc, std::move(argbuf), roots);
  if (!reply) return reply.status();
  return Status::ok();
}

// --- caller-side async stub (pipelined RPC) ---------------------------------

// Handle on one in-flight typed call. get() blocks — pumping the shared
// endpoint, so other outstanding calls' replies complete meanwhile — until
// THIS call's RETURN lands, then finalizes the reply and decodes the typed
// result exactly like typed_call. One-shot, move-only, collectable in any
// order relative to other futures.
template <typename R>
class TypedCallFuture {
 public:
  TypedCallFuture(Runtime& rt, Runtime::RawCallFuture raw)
      : rt_(&rt), raw_(std::move(raw)) {}

  [[nodiscard]] bool ready() const noexcept { return raw_.ready(); }
  [[nodiscard]] std::uint64_t seq() const noexcept { return raw_.seq(); }

  Result<R> get(std::chrono::steady_clock::time_point deadline =
                    std::chrono::steady_clock::time_point::max()) {
    // The decode swizzles returned pointers: it must run under the same
    // session scope the call was issued from, like the finalize itself.
    Runtime::ScopedSession scope(*rt_, raw_.session());
    auto reply = raw_.get(deadline);
    if (!reply) return reply.status();
    xdr::Decoder dec(reply.value());
    return Param<std::decay_t<R>>::decode(*rt_, dec);
  }

 private:
  Runtime* rt_;
  Runtime::RawCallFuture raw_;
};

// void procedures: get() yields only the call's completion status.
template <>
class TypedCallFuture<void> {
 public:
  TypedCallFuture(Runtime& rt, Runtime::RawCallFuture raw)
      : rt_(&rt), raw_(std::move(raw)) {}

  [[nodiscard]] bool ready() const noexcept { return raw_.ready(); }
  [[nodiscard]] std::uint64_t seq() const noexcept { return raw_.seq(); }

  Status get(std::chrono::steady_clock::time_point deadline =
                 std::chrono::steady_clock::time_point::max()) {
    auto reply = raw_.get(deadline);
    if (!reply) return reply.status();
    return Status::ok();
  }

 private:
  Runtime* rt_;
  Runtime::RawCallFuture raw_;
};

template <typename R, typename... Args>
Result<TypedCallFuture<R>> typed_call_async(Runtime& rt, SpaceId target,
                                            const std::string& proc,
                                            const Args&... args) {
  static_assert(!std::is_void_v<R>,
                "use typed_call_async_void for void procedures");
  SRPC_RETURN_IF_ERROR(rt.flush_pending_memory_ops());
  ByteBuffer argbuf;
  xdr::Encoder enc(argbuf);
  std::vector<std::uint64_t> roots;
  SRPC_RETURN_IF_ERROR(detail::encode_args(rt, enc, roots, args...));
  auto raw = rt.call_async(target, proc, std::move(argbuf), roots);
  if (!raw) return raw.status();
  return TypedCallFuture<R>(rt, std::move(raw.value()));
}

template <typename... Args>
Result<TypedCallFuture<void>> typed_call_async_void(Runtime& rt, SpaceId target,
                                                    const std::string& proc,
                                                    const Args&... args) {
  SRPC_RETURN_IF_ERROR(rt.flush_pending_memory_ops());
  ByteBuffer argbuf;
  xdr::Encoder enc(argbuf);
  std::vector<std::uint64_t> roots;
  SRPC_RETURN_IF_ERROR(detail::encode_args(rt, enc, roots, args...));
  auto raw = rt.call_async(target, proc, std::move(argbuf), roots);
  if (!raw) return raw.status();
  return TypedCallFuture<void>(rt, std::move(raw.value()));
}

}  // namespace srpc
