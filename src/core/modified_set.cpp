#include "core/modified_set.hpp"

namespace srpc {

Result<std::span<const ByteRange>> PointerRangeIndex::pointer_ranges(
    TypeId type) const {
  if (auto it = cache_.find(type); it != cache_.end()) {
    return std::span<const ByteRange>(it->second);
  }
  std::vector<ByteRange> ranges;
  SRPC_RETURN_IF_ERROR(collect(type, 0, ranges));
  merge_ranges(ranges);
  auto [it, inserted] = cache_.emplace(type, std::move(ranges));
  (void)inserted;
  return std::span<const ByteRange>(it->second);
}

Status PointerRangeIndex::collect(TypeId type, std::uint64_t base,
                                  std::vector<ByteRange>& out) const {
  auto desc = registry_.find(type);
  if (!desc) return desc.status();
  switch (desc.value()->kind()) {
    case TypeKind::kScalar:
      return Status::ok();
    case TypeKind::kPointer:
      out.push_back(ByteRange{static_cast<std::uint32_t>(base),
                              arch_.pointer_size});
      return Status::ok();
    case TypeKind::kStruct: {
      auto layout = layouts_.layout_of(arch_, type);
      if (!layout) return layout.status();
      const auto& fields = desc.value()->fields();
      for (std::size_t i = 0; i < fields.size(); ++i) {
        SRPC_RETURN_IF_ERROR(collect(fields[i].type,
                                     base + layout.value()->field_offsets[i],
                                     out));
      }
      return Status::ok();
    }
    case TypeKind::kArray: {
      const TypeId element = desc.value()->element();
      // Shortcut: pointer-free element types contribute nothing no matter
      // the count — probe the first element before unrolling.
      std::vector<ByteRange> probe;
      SRPC_RETURN_IF_ERROR(collect(element, 0, probe));
      if (probe.empty()) return Status::ok();
      const std::uint64_t stride = layouts_.size_of(arch_, element);
      for (std::uint32_t i = 0; i < desc.value()->count(); ++i) {
        for (const ByteRange& r : probe) {
          out.push_back(ByteRange{
              static_cast<std::uint32_t>(base + i * stride + r.offset), r.len});
        }
      }
      return Status::ok();
    }
  }
  return internal_error("unhandled type kind");
}

}  // namespace srpc
