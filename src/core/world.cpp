#include "core/world.hpp"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string_view>
#include <thread>

#include "common/logging.hpp"

namespace srpc {

World::World(WorldOptions options)
    : options_(options), layouts_(registry_) {
  init_log_level_from_env();  // SRPC_LOG=debug|info|warn|error|off
  if (const char* env = std::getenv("SRPC_TRACE");
      env != nullptr && env[0] != '\0' && std::string_view(env) != "0") {
    options_.tracing = true;
  }
  if (options_.transport == TransportKind::kSimulated) {
    sim_ = std::make_unique<SimNetwork>(options_.cost);
  } else {
    hub_ = std::make_unique<SocketHub>();
  }
  if (options_.fault_injection) {
    Transport& inner = sim_ ? static_cast<Transport&>(*sim_)
                            : static_cast<Transport&>(*hub_);
    fault_ = std::make_unique<FaultTransport>(inner);
  }
  if (options_.shm_payload) {
    shm_arena_ = std::make_unique<ShmArena>(options_.shm_arena_bytes);
  }
}

World::~World() {
  // Stop every space first (close mailboxes, join workers), then the wire.
  for (auto& space : spaces_) {
    space->shutdown();
  }
  if (hub_) hub_->stop();
}

AddressSpace& World::create_space(const std::string& name, const ArchModel& arch) {
  const SpaceId id = static_cast<SpaceId>(spaces_.size());
  Transport& transport = fault_ ? static_cast<Transport&>(*fault_)
                        : sim_  ? static_cast<Transport&>(*sim_)
                                : static_cast<Transport&>(*hub_);
  auto directory = [this]() {
    std::vector<SpaceId> ids;
    ids.reserve(spaces_.size());
    for (const auto& s : spaces_) ids.push_back(s->id());
    return ids;
  };
  // Capability advertisement is evaluated per send, so a later create_space
  // with a foreign ArchModel retracts the arch-dependent capabilities
  // world-wide.
  auto peer_caps = [this](SpaceId) -> std::uint32_t {
    std::uint32_t caps = 0;
    if (options_.two_phase_writeback) caps |= kCapTwoPhaseWriteBack;
    if (options_.trace_context) caps |= kCapTraceContext;
    // Arbitration needs the staged commit: without two-phase write-back a
    // home applies bytes before it could refuse them, so the capability is
    // only advertised together (and world-uniformly, since the option is).
    if (options_.multi_session && options_.two_phase_writeback) {
      caps |= kCapMultiSession;
    }
    // Recovery worlds speak the incarnation wire extension and keep their
    // write-backs self-contained (complete redo records for the home's
    // log); peers key their fencing off this bit.
    if (options_.recovery) caps |= kCapIncarnation;
    if (options_.modified_deltas || options_.shm_payload) {
      bool uniform_arch = true;
      for (const auto& s : spaces_) {
        if (!(s->runtime().arch() == spaces_.front()->runtime().arch())) {
          uniform_arch = false;
          break;
        }
      }
      // Both capabilities ship sender-native layouts, so a single foreign
      // ArchModel retracts them: delta offsets index the sender's layout,
      // and an arena view hands the receiver the sender's raw encoding.
      if (options_.modified_deltas && uniform_arch) caps |= kCapModifiedDelta;
      if (options_.shm_payload && uniform_arch) caps |= kCapShmPayload;
    }
    return caps;
  };
  spaces_.push_back(std::make_unique<AddressSpace>(
      id, name, arch, registry_, layouts_, host_types_, transport, sim_.get(),
      options_.cache, std::move(directory), options_.timeouts,
      std::move(peer_caps)));
  AddressSpace& space = *spaces_.back();
  if (options_.recovery) {
    recovery_logs_.push_back(std::make_unique<RecoveryLog>());
    incarnations_.push_back(1);  // 0 on the wire means "recovery off"
  }
  apply_runtime_config(space);  // before start(): no worker yet

  if (sim_) {
    sim_->attach(id, &space.mailbox());
    space.start().check();
  } else {
    hub_->attach(id, &space.mailbox()).check();
  }
  return space;
}

void World::apply_runtime_config(AddressSpace& space) {
  Runtime& rt = space.runtime();
  if (options_.tracing) rt.set_tracing(true);
  if (options_.multi_session && options_.two_phase_writeback) {
    rt.set_multi_session(true);
  }
  if (shm_arena_) rt.set_shm_arena(shm_arena_.get());
  if (options_.recovery) {
    const SpaceId id = space.id();
    rt.set_recovery(recovery_logs_.at(id).get(), incarnations_.at(id));
    rt.set_checkpoint_interval(options_.checkpoint_interval);
  }
  rt.configure_slo(options_.slo);
  FlightRecorder& flight = rt.telemetry().flight();
  if (options_.flight_events != FlightRecorder::kDefaultCapacity) {
    flight.set_capacity(options_.flight_events);
  }
  if (!options_.flight_dir.empty()) flight.set_dump_dir(options_.flight_dir);
  // Archive every dump at the World so it survives the space's death (a
  // reincarnation gets a fresh Runtime and with it a fresh, empty ring).
  flight.set_dump_sink(
      [this](SpaceId from, std::string_view reason, std::string json) {
        std::lock_guard<std::mutex> lock(flight_mutex_);
        flight_dumps_.push_back({from, std::string(reason), std::move(json)});
      });
}

Status World::start() {
  if (started_) return Status::ok();
  started_ = true;
  if (hub_) {
    SRPC_RETURN_IF_ERROR(hub_->start());
    for (auto& space : spaces_) {
      SRPC_RETURN_IF_ERROR(space->start());
    }
  }
  return Status::ok();
}

void World::mark_suspect(SpaceId id) {
  for (auto& space : spaces_) {
    if (space->id() == id) continue;
    space->runtime().detector().mark_suspect(id);
  }
}

void World::mark_dead(SpaceId id) {
  for (auto& space : spaces_) {
    if (space->id() == id) continue;
    // The detector is thread-safe, so flip the liveness bit immediately —
    // new calls into `id` fail fast right away. The cleanup side effects
    // (lease revocation, orphan reclamation) touch worker-owned state, so
    // they run as a task on that space's own thread.
    space->runtime().detector().mark_dead(id);
    Runtime& rt = space->runtime();
    (void)rt.mailbox().push_task([&rt, id] { rt.on_peer_dead(id); });
  }
}

void World::crash_space(SpaceId id) {
  // Black-box first: record the crash and dump the ring while the dying
  // space's events are still in it. The recorder is thread-safe and the
  // dump archives through the sink, so this is safe from the World thread
  // even while the worker is mid-flight.
  if (id < spaces_.size()) {
    Telemetry& t = spaces_.at(id)->runtime().telemetry();
    t.flight().event(FlightEventKind::kCrash, t.now_ns(), kInvalidSpaceId,
                     "crash_space");
    t.flight().dump("crash_space", t.now_ns());
  }
  if (fault_) fault_->crash_space(id);
  mark_dead(id);
}

Status World::restart_space(SpaceId id) {
  if (!options_.recovery) {
    return failed_precondition("restart_space requires WorldOptions::recovery");
  }
  if (!sim_) {
    return unimplemented("restart_space is simulated-transport only");
  }
  AddressSpace& space = *spaces_.at(id);
  // The crash point was already decided by the transport cut; halting just
  // joins the worker after its in-flight work unwinds with deadline errors.
  space.halt();
  if (fault_) fault_->restart_space(id);
  ++incarnations_.at(id);
  SRPC_RETURN_IF_ERROR(space.reincarnate());
  apply_runtime_config(space);
  // The successor Runtime owns a fresh mailbox; repoint the wire at it.
  sim_->attach(id, &space.mailbox());
  SRPC_RETURN_IF_ERROR(space.start());
  // Replay + rejoin on the successor's own worker; blocking here makes the
  // restart linearisable for callers (tests crash/restart deterministically).
  return space.run([](Runtime& rt) {
    SRPC_RETURN_IF_ERROR(rt.recover_from_log());
    return rt.announce_rejoin();
  });
}

double World::virtual_seconds() const {
  return sim_ ? VirtualClock::to_seconds(sim_->clock().now()) : 0.0;
}

NetworkStats World::net_stats() const {
  return sim_ ? sim_->stats() : NetworkStats{};
}

void World::reset_metering() {
  if (sim_) {
    sim_->reset_stats();
    sim_->clock().reset();
  }
}

void World::set_tracing(bool on) {
  options_.tracing = on;
  for (auto& space : spaces_) {
    // The recorder belongs to the space's worker; flip it there.
    space->run([on](Runtime& rt) { rt.set_tracing(on); });
  }
}

void World::run_concurrent(
    const std::vector<std::pair<AddressSpace*, GroundFn>>& jobs) {
  // One feeder thread per job: each blocks in AddressSpace::run() while the
  // target space's worker executes the ground function, so jobs on
  // different spaces genuinely overlap (and overlapping jobs on one space
  // queue on its mailbox in order).
  std::vector<std::thread> feeders;
  feeders.reserve(jobs.size());
  for (const auto& [space, fn] : jobs) {
    feeders.emplace_back([space, fn] { space->run(fn); });
  }
  for (std::thread& t : feeders) t.join();
}

std::string World::metrics_json() {
  std::string out = "{\n";
  bool first = true;
  for (auto& space : spaces_) {
    if (!first) out += ",\n";
    first = false;
    out += "  \"" + space->name() + "\": ";
    out += space->run([](Runtime& rt) { return rt.metrics_json(); });
  }
  out += "\n}\n";
  return out;
}

std::string World::health_json() {
  std::string out = "{\n";
  // World-level state first: incarnations and arena pressure are owned
  // here, not by any single runtime.
  out += "  \"incarnations\": [";
  for (std::size_t i = 0; i < incarnations_.size(); ++i) {
    if (i != 0) out += ", ";
    out += std::to_string(incarnations_[i]);
  }
  out += "],\n";
  if (shm_arena_) {
    const ShmArenaStats as = shm_arena_->stats();
    const std::size_t cap = shm_arena_->capacity();
    out += "  \"arena\": {\"bytes_live\": " + std::to_string(as.bytes_live);
    out += ", \"capacity\": " + std::to_string(cap);
    out += ", \"regions_live\": " + std::to_string(as.regions_live);
    out += ", \"peak_bytes_live\": " + std::to_string(as.peak_bytes_live);
    out += ", \"publish_failures\": " + std::to_string(as.publish_failures);
    char pressure[32];
    std::snprintf(pressure, sizeof(pressure), "%.4f",
                  cap != 0 ? static_cast<double>(as.bytes_live) /
                                 static_cast<double>(cap)
                           : 0.0);
    out += std::string(", \"pressure\": ") + pressure + "},\n";
  }
  {
    std::lock_guard<std::mutex> lock(flight_mutex_);
    out += "  \"flight_dumps\": " + std::to_string(flight_dumps_.size()) +
           ",\n";
  }
  out += "  \"spaces\": {\n";
  bool first = true;
  for (auto& space : spaces_) {
    if (!first) out += ",\n";
    first = false;
    out += "    \"" + space->name() + "\": ";
    out += space->run([](Runtime& rt) { return rt.health_json(); });
  }
  out += "\n  }\n}\n";
  return out;
}

std::vector<World::FlightDump> World::flight_dumps() const {
  std::lock_guard<std::mutex> lock(flight_mutex_);
  return flight_dumps_;
}

std::vector<SpaceSpans> World::collect_spans() {
  std::vector<SpaceSpans> all;
  all.reserve(spaces_.size());
  for (auto& space : spaces_) {
    SpaceSpans sp;
    sp.space = space->id();
    sp.name = space->name();
    sp.spans = space->run(
        [](Runtime& rt) -> std::vector<Span> { return rt.tracer().spans(); });
    all.push_back(std::move(sp));
  }
  return all;
}

Status World::merge_traces(const std::string& path) {
  return write_chrome_trace(collect_spans(), path);
}

}  // namespace srpc
