// Graph payloads — the wire form of "a set of objects plus the pointers
// among them".
//
// One format serves every bulk data transfer in the system: fetch replies
// (the data allocated to a faulted page plus the eager closure, paper
// §3.2–3.3), the travelling modified data set (§3.4), and session-end
// write-backs. Layout:
//
//   space        u32   home space of every object in the payload
//   wide         u32   0: per-object addresses are u32 deltas from base
//                      1: per-object addresses are full u64 (range > 4 GiB)
//   base         u64   delta base (min object address)
//   default_type u32   most common object type
//   count        u32
//   headers      count × (u32 delta | u64 addr)
//   type_fixups  u32 n, then n × {index u32, type u32}   (objects whose
//                      type differs from default_type)
//   values       count × canonical value encoding, pointer fields packed
//                      into one u32 (low 2 bits tag, high 30 bits payload):
//                      0          null
//                      tag 1      intra-payload: payload = object index
//                      tag 2      same-space: payload = (addr - base) / 8
//                      tag 3      escape: a 16-byte long pointer follows
//
// The compact forms matter for fidelity, not just bytes: the proposed
// method's per-node wire cost relative to the eager baseline's inline
// encoding determines where Figure 4's crossover falls (see EXPERIMENTS.md).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/byte_buffer.hpp"
#include "common/status.hpp"
#include "swizzle/long_pointer.hpp"
#include "types/value_codec.hpp"

namespace srpc {

// One object the encoder should pack: its home identity and a readable
// memory image (in the encoding space's architecture).
struct GraphObjectRef {
  std::uint64_t addr = 0;
  TypeId type = kInvalidTypeId;
  const void* src = nullptr;
};

// Encodes `objects` (all homed in `space`, images laid out per `arch`).
// `translator` unswizzles pointer fields found inside the images.
Status encode_graph_payload(const ValueCodec& codec, const ArchModel& arch,
                            SpaceId space, std::span<const GraphObjectRef> objects,
                            PointerTranslator& translator, ByteBuffer& out);

// Receiver-side callbacks. decode_graph_payload() drives them in two
// passes: prepare() for every object first (so intra-payload pointers can
// resolve forward references), then one value decode per object.
class GraphSink {
 public:
  virtual ~GraphSink() = default;

  // Registers object `index` with identity `id` and returns its writable
  // local destination. Returning nullptr skips the object (the codec still
  // consumes its wire bytes); used when a newer local copy must survive.
  virtual Result<void*> prepare(std::uint32_t index, const LongPointer& id) = 0;

  // Local ordinary pointer value for payload object `index`.
  virtual Result<std::uint64_t> address_of(std::uint32_t index) = 0;

  // Swizzles a reference that leaves the payload (tags 2 and 3).
  virtual Result<std::uint64_t> swizzle(const LongPointer& target, TypeId pointee) = 0;
};

// Decodes one payload from `in`'s cursor into `sink`. If `ids_out` is
// non-null it receives every object identity in payload order.
Status decode_graph_payload(const ValueCodec& codec, const ArchModel& arch,
                            ByteBuffer& in, GraphSink& sink,
                            std::vector<LongPointer>* ids_out = nullptr);

// Rough per-object wire cost of `type` in a graph payload (header plus
// value with compact 8-byte pointer fields); the closure packer budgets
// with this (the paper's closure size is a byte budget).
Result<std::uint64_t> graph_object_wire_size(const ValueCodec& codec, TypeId type);

}  // namespace srpc
