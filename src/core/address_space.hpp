// AddressSpace — one simulated machine/process in the distributed system.
//
// Owns a Runtime plus the worker thread that executes everything the space
// does: ground-thread user code (posted via run()), served calls, fetches,
// write-backs. The single-worker design realises the paper's execution
// model directly — one active thread, re-entrant service while blocked.
//
// Crash recovery: halt() stops the worker but keeps the runtime;
// reincarnate() retires the dead runtime into a zombie list (its heap
// storage must stay mapped — peers hold long pointers into it, and the
// successor incarnation restore()s the exact ranges from the recovery log)
// and constructs a fresh Runtime with the same identity, ready for
// re-configuration and start().
#pragma once

#include <future>
#include <memory>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "core/marshal.hpp"
#include "core/runtime.hpp"

namespace srpc {

class AddressSpace {
 public:
  AddressSpace(SpaceId id, std::string name, const ArchModel& arch,
               TypeRegistry& registry, const LayoutEngine& layouts,
               HostTypeMap& host_types, Transport& transport, SimNetwork* sim,
               CacheOptions cache_options,
               std::function<std::vector<SpaceId>()> directory,
               TimeoutConfig timeouts = {},
               std::function<std::uint32_t(SpaceId)> peer_caps = {})
      : id_(id),
        name_(std::move(name)),
        arch_(&arch),
        registry_(&registry),
        layouts_(&layouts),
        host_types_(&host_types),
        transport_(&transport),
        sim_(sim),
        cache_options_(cache_options),
        directory_(std::move(directory)),
        timeouts_(timeouts),
        peer_caps_(std::move(peer_caps)),
        runtime_(make_runtime()) {}

  ~AddressSpace() { shutdown(); }
  AddressSpace(const AddressSpace&) = delete;
  AddressSpace& operator=(const AddressSpace&) = delete;

  // Initialises the runtime (cache arena, fault registration) and spawns
  // the worker thread.
  Status start();

  // Closes the mailbox and joins the worker. Idempotent and terminal.
  void shutdown();

  // Crash: stops the worker like shutdown() but leaves the space
  // restartable — reincarnate() + start() bring up the next incarnation.
  void halt();

  // Retires the halted runtime (keeping it alive as a zombie so its heap
  // storage stays mapped) and builds a fresh Runtime with the same
  // identity. The caller re-applies per-runtime configuration — recovery
  // log, capabilities, toggles — and then start()s the successor.
  // FAILED_PRECONDITION while the worker is still running.
  Status reincarnate();

  [[nodiscard]] SpaceId id() const noexcept { return id_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] Runtime& runtime() noexcept { return *runtime_; }
  [[nodiscard]] Mailbox& mailbox() noexcept { return runtime_->mailbox(); }
  [[nodiscard]] std::size_t incarnations_retired() const noexcept {
    return zombies_.size();
  }

  // Executes `fn(Runtime&)` on the space's worker thread and returns its
  // result (rethrows its exceptions). Called from the worker itself it runs
  // inline, so nested run() cannot deadlock.
  template <typename F>
  auto run(F fn) -> std::invoke_result_t<F&, Runtime&> {
    using R = std::invoke_result_t<F&, Runtime&>;
    if (std::this_thread::get_id() == worker_.get_id()) {
      return fn(*runtime_);
    }
    std::packaged_task<R()> task([this, &fn]() -> R { return fn(*runtime_); });
    auto future = task.get_future();
    runtime_->mailbox().push_task([&task] { task(); }).check();
    return future.get();
  }

  // Binds a typed procedure: any callable of shape R(CallContext&, Args...).
  // Safe whether or not the worker is running (it round-trips through the
  // worker when it is).
  template <typename F>
  Status bind(const std::string& name, F fn) {
    if (!started_) {
      return bind_procedure(*runtime_, name, std::move(fn));
    }
    return run([&](Runtime& rt) { return bind_procedure(rt, name, std::move(fn)); });
  }

 private:
  std::unique_ptr<Runtime> make_runtime() {
    return std::make_unique<Runtime>(id_, name_, *arch_, *registry_, *layouts_,
                                     *host_types_, *transport_, sim_,
                                     cache_options_, directory_, timeouts_,
                                     peer_caps_);
  }

  // Construction parameters, kept so reincarnate() can rebuild the runtime.
  SpaceId id_;
  std::string name_;
  const ArchModel* arch_;
  TypeRegistry* registry_;
  const LayoutEngine* layouts_;
  HostTypeMap* host_types_;
  Transport* transport_;
  SimNetwork* sim_;
  CacheOptions cache_options_;
  std::function<std::vector<SpaceId>()> directory_;
  TimeoutConfig timeouts_;
  std::function<std::uint32_t(SpaceId)> peer_caps_;

  std::unique_ptr<Runtime> runtime_;
  // Dead incarnations, kept until the space itself dies: their heaps own
  // storage the live runtime re-registered via ManagedHeap::restore().
  std::vector<std::unique_ptr<Runtime>> zombies_;
  std::thread worker_;
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace srpc
