// AddressSpace — one simulated machine/process in the distributed system.
//
// Owns a Runtime plus the worker thread that executes everything the space
// does: ground-thread user code (posted via run()), served calls, fetches,
// write-backs. The single-worker design realises the paper's execution
// model directly — one active thread, re-entrant service while blocked.
#pragma once

#include <future>
#include <memory>
#include <string>
#include <thread>
#include <type_traits>

#include "core/marshal.hpp"
#include "core/runtime.hpp"

namespace srpc {

class AddressSpace {
 public:
  AddressSpace(SpaceId id, std::string name, const ArchModel& arch,
               TypeRegistry& registry, const LayoutEngine& layouts,
               HostTypeMap& host_types, Transport& transport, SimNetwork* sim,
               CacheOptions cache_options,
               std::function<std::vector<SpaceId>()> directory,
               TimeoutConfig timeouts = {},
               std::function<std::uint32_t(SpaceId)> peer_caps = {})
      : runtime_(std::make_unique<Runtime>(id, std::move(name), arch, registry,
                                           layouts, host_types, transport, sim,
                                           cache_options, std::move(directory),
                                           timeouts, std::move(peer_caps))) {}

  ~AddressSpace() { shutdown(); }
  AddressSpace(const AddressSpace&) = delete;
  AddressSpace& operator=(const AddressSpace&) = delete;

  // Initialises the runtime (cache arena, fault registration) and spawns
  // the worker thread.
  Status start();

  // Closes the mailbox and joins the worker. Idempotent.
  void shutdown();

  [[nodiscard]] SpaceId id() const noexcept { return runtime_->id(); }
  [[nodiscard]] const std::string& name() const noexcept { return runtime_->name(); }
  [[nodiscard]] Runtime& runtime() noexcept { return *runtime_; }
  [[nodiscard]] Mailbox& mailbox() noexcept { return runtime_->mailbox(); }

  // Executes `fn(Runtime&)` on the space's worker thread and returns its
  // result (rethrows its exceptions). Called from the worker itself it runs
  // inline, so nested run() cannot deadlock.
  template <typename F>
  auto run(F fn) -> std::invoke_result_t<F&, Runtime&> {
    using R = std::invoke_result_t<F&, Runtime&>;
    if (std::this_thread::get_id() == worker_.get_id()) {
      return fn(*runtime_);
    }
    std::packaged_task<R()> task([this, &fn]() -> R { return fn(*runtime_); });
    auto future = task.get_future();
    runtime_->mailbox().push_task([&task] { task(); }).check();
    return future.get();
  }

  // Binds a typed procedure: any callable of shape R(CallContext&, Args...).
  // Safe whether or not the worker is running (it round-trips through the
  // worker when it is).
  template <typename F>
  Status bind(const std::string& name, F fn) {
    if (!started_) {
      return bind_procedure(*runtime_, name, std::move(fn));
    }
    return run([&](Runtime& rt) { return bind_procedure(rt, name, std::move(fn)); });
  }

 private:
  std::unique_ptr<Runtime> runtime_;
  std::thread worker_;
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace srpc
