// World — the distributed environment: shared type name-server, the wire,
// and the set of address spaces.
//
// The World plays the roles the paper assumes around the RPC system: the
// "database that serves as a network name server" for data type specifiers
// (one TypeRegistry shared by all spaces) and the physical network (a
// SimNetwork with the SPARC/Ethernet cost model by default, or a real
// loopback-socket hub).
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/address_space.hpp"
#include "net/fault_transport.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/slo.hpp"
#include "obs/trace_export.hpp"
#include "net/sim_network.hpp"
#include "net/socket_transport.hpp"
#include "types/host_type_map.hpp"
#include "types/type_builder.hpp"

namespace srpc {

enum class TransportKind : std::uint8_t {
  kSimulated,  // in-process delivery, virtual-clock cost model (default)
  kSockets,    // real frames over AF_UNIX socket pairs
};

struct WorldOptions {
  CostModel cost = CostModel::sparc_ethernet();
  CacheOptions cache;  // per-space defaults (closure size, arena, strategy)
  TransportKind transport = TransportKind::kSimulated;
  TimeoutConfig timeouts;  // per-space deadline/retry policy
  // Wraps the wire in a seedable FaultTransport decorator; arm it through
  // World::fault() to inject drop/duplicate/delay (soak and fault tests).
  bool fault_injection = false;
  // Advertise the MODIFIED_DELTA capability so modified sets travel as
  // byte-range deltas where possible. Effective only while every space in
  // the world shares one architecture model (delta offsets are positions in
  // the sender's local layout); mixed-arch worlds fall back to full graph
  // payloads automatically.
  bool modified_deltas = true;
  // Advertise the two-phase write-back capability: session end stages the
  // modified set on every home (WB_PREPARE) and applies it only once all
  // homes acked (WB_COMMIT), so a crash mid-commit leaves surviving homes
  // all-committed or all-rolled-back. Works across mixed-arch worlds — the
  // staged bytes reuse the existing modified-set formats.
  bool two_phase_writeback = true;
  // Advertise the trace-context wire extension (kCapTraceContext): messages
  // may carry {trace_id, span_id, parent, hop} so spans link causally
  // across spaces. Advertising costs nothing while tracing is off — the
  // extension is only attached to messages sent while a span is open.
  bool trace_context = true;
  // Record spans from the first message on. Defaults from the SRPC_TRACE
  // environment variable (any non-empty value but "0" enables); flip at
  // runtime with set_tracing().
  bool tracing = false;
  // Concurrent multi-session runtime: every space tracks many sessions at
  // once (SessionTable, per-session cache overlays) and homes arbitrate
  // conflicting commits (ObjectLockTable + ConflictArbiter, wound-wait).
  // Advertised as kCapMultiSession only together with two_phase_writeback —
  // arbitration happens at WB_PREPARE, so it needs the staged commit.
  bool multi_session = false;
  // Zero-copy payload lane: the world owns one ShmArena and every space
  // advertises kCapShmPayload, so payloads between same-architecture peers
  // travel as refcounted arena views (20-byte descriptors on the wire)
  // instead of marshalled bytes. Mixed-arch worlds retract the capability
  // automatically, exactly like modified_deltas. Off by default: the lane
  // changes wire-byte accounting, so it is opt-in per World.
  bool shm_payload = false;
  std::size_t shm_arena_bytes = 64ULL << 20;  // live-bytes budget of the arena
  // Space reincarnation: every space gets a world-owned RecoveryLog (the
  // in-memory stand-in for NVRAM — it survives the space's crash), an
  // incarnation number carried in every frame (kCapIncarnation), and
  // World::restart_space() brings a crashed space back: replay the log,
  // announce REJOIN, fence stale traffic from the prior life.
  bool recovery = false;
  // Checkpoint the heap into the recovery log every N session settlements
  // (0 = never; replay then walks the whole journal).
  std::uint32_t checkpoint_interval = 0;
  // Per-op-kind latency objectives (obs/slo.hpp). Enabled with the generic
  // SloConfig::defaults() unless objectives are given; violations surface
  // as slo.violations{...} counters and a burn-rate breach dumps the
  // flight recorder.
  SloConfig slo;
  // Capacity of each space's flight-recorder ring (events kept).
  std::size_t flight_events = FlightRecorder::kDefaultCapacity;
  // Directory for automatic flight-recorder dump files; empty defers to
  // the SRPC_FLIGHT_DIR environment variable, and with neither set dumps
  // stay in-memory (World::flight_dumps()).
  std::string flight_dir;
};

class World {
 public:
  explicit World(WorldOptions options = {});
  ~World();
  World(const World&) = delete;
  World& operator=(const World&) = delete;

  // Creates (and, on the simulated transport, immediately starts) a space.
  // With TransportKind::kSockets create all spaces first, then start().
  AddressSpace& create_space(const std::string& name,
                             const ArchModel& arch = host_arch());

  // Starts deferred spaces and the socket hub. No-op on the simulated
  // transport (spaces start eagerly there).
  Status start();

  [[nodiscard]] TypeRegistry& registry() noexcept { return registry_; }
  [[nodiscard]] LayoutEngine& layouts() noexcept { return layouts_; }
  [[nodiscard]] HostTypeMap& host_types() noexcept { return host_types_; }
  [[nodiscard]] const WorldOptions& options() const noexcept { return options_; }

  [[nodiscard]] AddressSpace& space(SpaceId id) { return *spaces_.at(id); }
  [[nodiscard]] std::size_t space_count() const noexcept { return spaces_.size(); }

  // Fault-injection decorator (null unless options.fault_injection).
  [[nodiscard]] FaultTransport* fault() noexcept { return fault_.get(); }

  // Shared payload arena (null unless options.shm_payload).
  [[nodiscard]] ShmArena* shm_arena() noexcept { return shm_arena_.get(); }

  // Failure-model controls. mark_suspect/mark_dead tell every *other*
  // space's failure detector about `id` (dead is terminal: calls into the
  // space fail fast with SPACE_DEAD, its leases are revoked and the
  // extended_malloc storage it owns on each home is reclaimed).
  // crash_space additionally severs the space from the wire (requires
  // options.fault_injection for the transport cut; the liveness verdict is
  // delivered either way). Simulated transport only for the verdict push —
  // socket worlds rely on the probe path.
  void mark_suspect(SpaceId id);
  void mark_dead(SpaceId id);
  void crash_space(SpaceId id);

  // Restarts a crashed space as its next incarnation (requires
  // options.recovery; simulated transport only): joins the dead worker,
  // lifts the transport cut, replays the space's RecoveryLog into a fresh
  // Runtime, and announces REJOIN to every peer so they flush the prior
  // incarnation's leases and resolve in-doubt prepares against the
  // replayed decision log. Blocks until replay + rejoin complete.
  Status restart_space(SpaceId id);

  // The space's durable log / current incarnation (recovery worlds only;
  // null / 0 otherwise).
  [[nodiscard]] RecoveryLog* recovery_log(SpaceId id) noexcept {
    return id < recovery_logs_.size() ? recovery_logs_[id].get() : nullptr;
  }
  [[nodiscard]] std::uint32_t incarnation(SpaceId id) const noexcept {
    return id < incarnations_.size() ? incarnations_[id] : 0;
  }

  // Simulated-transport observability (null on the socket transport).
  [[nodiscard]] SimNetwork* sim() noexcept { return sim_.get(); }
  [[nodiscard]] double virtual_seconds() const;
  [[nodiscard]] NetworkStats net_stats() const;
  void reset_metering();

  // --- distributed tracing (src/obs) ----------------------------------------

  // Enables/disables span recording on every space (runs on each worker).
  void set_tracing(bool on);

  // Runs every job's `fn(Runtime&)` on its space's worker simultaneously
  // (one feeder thread per job) and joins them all — the harness for
  // concurrent multi-session workloads: each job is typically one ground
  // opening sessions against shared homes.
  using GroundFn = std::function<void(Runtime&)>;
  void run_concurrent(const std::vector<std::pair<AddressSpace*, GroundFn>>& jobs);

  // One JSON document with every space's metrics (Runtime::metrics_json),
  // keyed by space name — session-labelled series (for example
  // session.commit_ns) keep their labels, so per-session aggregates
  // survive the merge.
  [[nodiscard]] std::string metrics_json();

  // One JSON health snapshot for the whole world: every space's
  // Runtime::health_json() (detector verdicts, lock contention, dedup and
  // completion-slot occupancy, SLO state) plus current incarnations and
  // shm-arena pressure. Cheap enough to poll.
  [[nodiscard]] std::string health_json();

  // Every flight-recorder dump any space produced (crash, fence, SLO
  // breach, manual), in production order. Archived here so a dump
  // survives its space's death — the black box outlives the aircraft.
  struct FlightDump {
    SpaceId space = kInvalidSpaceId;
    std::string reason;
    std::string json;
  };
  [[nodiscard]] std::vector<FlightDump> flight_dumps() const;

  // Collects every space's spans into one Chrome trace-event / Perfetto
  // JSON file. Call at a quiet point (no in-flight sessions); open spans
  // are exported with zero duration and flagged "open".
  Status merge_traces(const std::string& path);

  // The merged spans themselves (for tests and custom exporters).
  [[nodiscard]] std::vector<SpaceSpans> collect_spans();

  // Describes a host struct; finish with register_type() which also maps
  // the C++ type for the typed stubs.
  template <typename T>
  HostStructBuilder<T> describe(const std::string& name) {
    return HostStructBuilder<T>(registry_, layouts_, name);
  }

  template <typename T>
  Result<TypeId> register_type(HostStructBuilder<T>& builder) {
    auto id = builder.build();
    if (!id) return id.status();
    SRPC_RETURN_IF_ERROR(host_types_.bind<T>(id.value()));
    return id.value();
  }

 private:
  // Per-runtime configuration shared by create_space and restart_space —
  // everything a fresh Runtime (first life or reincarnation) needs before
  // its worker starts.
  void apply_runtime_config(AddressSpace& space);

  WorldOptions options_;
  TypeRegistry registry_;
  LayoutEngine layouts_;
  HostTypeMap host_types_;
  std::unique_ptr<SimNetwork> sim_;
  std::unique_ptr<SocketHub> hub_;
  std::unique_ptr<FaultTransport> fault_;
  std::unique_ptr<ShmArena> shm_arena_;
  std::vector<std::unique_ptr<AddressSpace>> spaces_;
  // Indexed by SpaceId. Logs are world-owned so they survive their space's
  // crash; incarnations start at 1 (0 on the wire means "recovery off").
  std::vector<std::unique_ptr<RecoveryLog>> recovery_logs_;
  std::vector<std::uint32_t> incarnations_;
  // Flight-recorder dump archive; written from worker threads (fence and
  // SLO-breach dumps) as well as World threads (crash_space).
  mutable std::mutex flight_mutex_;
  std::vector<FlightDump> flight_dumps_;
  bool started_ = false;
};

}  // namespace srpc
