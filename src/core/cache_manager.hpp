// CacheManager — the protected page area of one address space.
//
// This is where the paper's three techniques meet:
//   * swizzling allocates a location in a protected (PROT_NONE) page for
//     every long pointer received, recording it in the data allocation
//     table (§3.2, Fig. 2 / Table 1);
//   * the MMU detects the first access; the fault handler fetches *all*
//     data allocated to the faulted page (plus the home's eager closure)
//     and releases the protection (§3.2, Fig. 3);
//   * clean pages stay read-only so the MMU also detects modification at
//     page grain, feeding the coherency protocol's modified data set
//     (§3.4); extended_malloc'd objects live on born-resident alloc pages
//     (§3.5).
//
// Threading: every method runs on the owning space's worker thread (the
// RPC model has a single active thread per session), so there is no
// internal locking. on_fault() is entered from the SIGSEGV handler on that
// same thread.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/byte_range.hpp"
#include "common/ids.hpp"
#include "common/status.hpp"
#include "core/graph_payload.hpp"
#include "obs/telemetry.hpp"
#include "swizzle/allocation_table.hpp"
#include "swizzle/long_pointer.hpp"
#include "types/arch.hpp"
#include "types/value_codec.hpp"
#include "vm/fault_dispatcher.hpp"
#include "vm/page_arena.hpp"
#include "vm/page_table.hpp"

namespace srpc {

// Where a swizzled location is placed (paper §6 discusses this tradeoff).
enum class AllocationStrategy : std::uint8_t {
  // The paper's heuristic: "all the data in a page is located in a single
  // address space" — one fill chain per origin space, so a fault talks to
  // exactly one home.
  kClusterByOrigin,
  // Naive baseline for the ablation bench: one shared fill chain; a page
  // can hold data from several homes and a fault must contact all of them.
  kMixed,
};

// The runtime side of a fault: how the cache reaches the network.
// fetch() runs on the faulting thread, possibly inside the signal handler.
class PageFetcher {
 public:
  virtual ~PageFetcher() = default;
  // Requests `pointers` (all homed at `home`); returns the FETCH_REPLY's
  // graph payload bytes. `session` is the RPC session this cache serves
  // (kNoSession from the runtime's default cache — the fetch then rides
  // whatever session is current).
  virtual Result<ByteBuffer> fetch(SpaceId home, std::span<const LongPointer> pointers,
                                   std::uint64_t closure_budget,
                                   SessionId session) = 0;
  // Cost accounting for one MMU access violation.
  virtual void charge_fault() = 0;
  // Swizzles a pointer homed in *this* space (a payload can reference the
  // receiver's own data — pass-through pointers); resolves to the local
  // heap address. Only called with pointer.space == this space.
  virtual Result<std::uint64_t> swizzle_home(const LongPointer& pointer,
                                             TypeId pointee) = 0;
};

struct CacheOptions {
  std::size_t page_count = 16384;  // 64 MiB of 4 KiB pages
  std::size_t page_size = 4096;    // the paper's SunOS/SPARC page size
  AllocationStrategy strategy = AllocationStrategy::kClusterByOrigin;
  std::uint64_t closure_bytes = 8192;  // eager transfer budget per fetch (§3.3)
};

struct CacheStats {
  std::uint64_t read_faults = 0;
  std::uint64_t write_faults = 0;
  std::uint64_t fills = 0;            // page-fill operations (≥1 fetch each)
  std::uint64_t fetches = 0;          // FETCH round trips issued
  std::uint64_t objects_filled = 0;   // payload objects written into slots
  std::uint64_t objects_skipped = 0;  // payload objects dropped (already held)
  // Eagerness effectiveness (paper §3.3 / fig6): an eager closure "hit" is
  // an object the sender volunteered beyond what was asked for — it arrives
  // before any fault touches it; a "miss" is an object we had to fault for
  // anyway (each faulted page's known entries were NOT satisfied by an
  // earlier closure).
  std::uint64_t closure_prefetch_hits = 0;
  std::uint64_t closure_prefetch_misses = 0;
};

class CacheManager final : public FaultHandler {
 public:
  CacheManager(const TypeRegistry& registry, const LayoutEngine& layouts,
               const ArchModel& arch, SpaceId self, CacheOptions options,
               PageFetcher& fetcher);
  ~CacheManager() override;
  CacheManager(const CacheManager&) = delete;
  CacheManager& operator=(const CacheManager&) = delete;

  // Creates the arena and registers it with the fault dispatcher.
  Status init();

  // --- swizzling ----------------------------------------------------------

  // Long pointer -> local ordinary pointer, allocating a protected location
  // on a miss. Interior addresses resolve into their containing entry.
  // `pointer.space` must differ from this space.
  Result<std::uint64_t> swizzle(const LongPointer& pointer, TypeId pointee);

  // Local cache address -> home long pointer (interior addresses allowed;
  // the returned pointer carries the interior home address).
  Result<LongPointer> unswizzle(const void* addr) const;

  [[nodiscard]] const AllocationEntry* lookup(const LongPointer& pointer) const {
    return table_.find(pointer);
  }
  [[nodiscard]] const AllocationEntry* lookup_local(const void* addr) const {
    return table_.find_by_local(addr);
  }
  [[nodiscard]] bool contains(const void* addr) const { return arena_.contains(addr); }

  // True if `addr` lies on a resident (readable) page.
  [[nodiscard]] bool is_resident(const void* addr) const;

  // --- extended_malloc support (paper §3.5) -------------------------------

  // Allocates a born-resident, born-dirty location for a locally created
  // remote object under a provisional identity.
  Result<void*> allocate_resident(const LongPointer& provisional, std::uint64_t size,
                                  std::uint32_t align);

  // Re-keys a provisional identity to the home-assigned address.
  Status rebind(const LongPointer& provisional, const LongPointer& actual) {
    return table_.rebind(provisional, actual);
  }

  // Drops a cached entry (extended_free).
  Status remove_entry(const LongPointer& pointer) { return table_.remove(pointer); }

  // --- fault path ----------------------------------------------------------

  bool on_fault(void* addr, FaultAccess access) override;

  // Incorporates one *clean* graph payload (an eager closure attached to a
  // call or return, paper §3.3): unknown objects become resident clean
  // data on fresh pages; objects already held locally are left untouched.
  Status incorporate_clean_payload(ByteBuffer& payload);

  // Programmer-directed prefetch (paper §6: "use suggestions provided by
  // the programmer"): fills the page holding `addr` now, with an explicit
  // closure budget, instead of waiting for the access violation. No-op if
  // the data is already resident.
  Status prefetch(const void* addr, std::uint64_t closure_budget);

  // One per-home request set produced by prefetch_many: every wanted
  // pointer homed at `home`, to be answered by one FETCH_REPLY payload.
  struct PrefetchGroup {
    SpaceId home = 0;
    std::vector<LongPointer> pointers;
  };
  // Returns one FETCH_REPLY payload per group, aligned by index. The
  // transfer is free to keep all frames in flight at once (that is the
  // point); a failed transfer fails the whole fill.
  using ParallelFetch = std::function<Result<std::vector<ByteBuffer>>(
      std::vector<PrefetchGroup>& groups)>;

  // Pipelined twin of prefetch(): opens every fillable page behind `addrs`
  // in one fill, groups the wanted entries by home space, and hands the
  // whole request set to `transfer` so the per-home FETCH frames overlap on
  // the wire instead of paying one round trip each. Foreign, resident, and
  // empty addresses are skipped (prefetch is advisory). All replies are
  // incorporated into the open pages before the fill seals.
  Status prefetch_many(std::span<const void* const> addrs,
                       const ParallelFetch& transfer);

  // --- coherency support (paper §3.4) --------------------------------------

  struct ModifiedObject {
    LongPointer id;
    const void* image = nullptr;  // readable local-layout bytes
  };

  // The modified data set: every entry on a dirty page plus every pending
  // overlay. Ids are home identities; images stay valid until the next
  // cache mutation.
  [[nodiscard]] std::vector<ModifiedObject> collect_modified() const;

  // One modified object with sub-page dirty information. `dirty` holds the
  // merged byte ranges (object-relative) that differ from the coherent
  // baseline; when `has_baseline` is false the page was born dirty (local
  // allocation) or its twin is missing, and the whole image must travel.
  struct ModifiedDatum {
    LongPointer id;
    const std::uint8_t* image = nullptr;  // readable local-layout bytes
    std::uint32_t size = 0;
    bool has_baseline = false;
    // False for a partially received overlay: bytes outside `dirty` are
    // placeholders, so the object must never be shipped as a full image.
    bool complete = true;
    std::vector<ByteRange> dirty;  // merged; meaningful iff has_baseline
  };

  // Delta-aware modified data set: slot entries are diffed against their
  // pages' twin snapshots; overlays report their valid (received) ranges.
  // Images stay valid until the next cache mutation.
  [[nodiscard]] std::vector<ModifiedDatum> collect_modified_deltas() const;

  // The ModifiedDatum for one object currently in the modified set, or
  // NOT_FOUND if it is neither on a dirty page nor an overlay.
  Result<ModifiedDatum> modified_datum(const LongPointer& id) const;

  // Destination for one incoming modified object (always overwrites: the
  // sender was the active thread). Resident -> the slot (page goes dirty);
  // non-resident -> a pending overlay applied at fill time; unknown -> a
  // freshly allocated location plus overlay.
  Result<void*> prepare_incoming_dirty(const LongPointer& id);

  // Applies one incoming MODIFIED_DELTA entry: `bytes` holds the range
  // payloads concatenated in order. Resident targets are patched in place
  // (pages go dirty, twins snapshotted first); non-resident and unknown
  // targets accumulate the ranges on a pending overlay whose valid-range
  // set remembers which bytes are real.
  Status apply_incoming_delta(const LongPointer& id,
                              std::span<const ByteRange> ranges,
                              const std::uint8_t* bytes);

  // --- leases (failure containment) ----------------------------------------

  // A lease tracks when this cache last heard from a source space whose
  // data it holds. The runtime renews it on every successful exchange; if
  // the source is declared dead (or the lease lapses without contact) the
  // source's resident pages are revoked so dereferences re-fault into
  // Runtime::fetch, where the failure detector converts them into a typed
  // SPACE_DEAD error instead of serving stale bytes forever.
  struct SourceLease {
    std::uint64_t epoch = 0;            // generation: bumps across revocations
    std::uint64_t last_contact_ns = 0;  // virtual-clock time
  };

  // Upserts the lease for `source` (first fetch from it starts the lease).
  void renew_lease(SpaceId source, std::uint64_t vnow_ns);
  // Updates last-contact only if a lease already exists.
  void touch_lease(SpaceId source, std::uint64_t vnow_ns);
  [[nodiscard]] const SourceLease* lease(SpaceId source) const;
  // Sources holding a lease whose last contact is older than `vnow_ns -
  // ttl_ns` (candidates for revocation).
  [[nodiscard]] std::vector<SpaceId> lapsed_sources(std::uint64_t vnow_ns,
                                                    std::uint64_t ttl_ns) const;

  // Revokes every resident lazy page clustered to `source`: the page is
  // re-protected and demoted to kAllocated (its bytes are discarded; the
  // table entries stay so a later touch re-faults through the fetch path,
  // which reports the peer's health as a typed error). Pending overlays for
  // data homed at `source` are dropped and its lease ends (a later renewal
  // starts a fresh lease under a higher epoch). Returns the number of pages
  // revoked. Pages holding data from several homes (kMixed strategy) and
  // born-resident alloc pages are left alone — they contain local or
  // third-party bytes that are still valid.
  std::size_t revoke_source(SpaceId source);

  // --- session teardown -----------------------------------------------------

  // Drops every cached datum and re-protects the arena (session-end
  // invalidation, paper §3.4).
  void invalidate_all();

  // --- introspection ---------------------------------------------------------

  [[nodiscard]] const CacheStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = CacheStats{}; }
  // Optional observability sink (owned by the Runtime): fault and fill
  // annotations land on whatever span is open when the MMU fires.
  void set_telemetry(Telemetry* telemetry) noexcept { telemetry_ = telemetry; }
  // The session this cache is an overlay for (kNoSession for a runtime's
  // shared default cache). Stamped on every fetch the fault path issues.
  void set_session(SessionId id) noexcept { session_ = id; }
  [[nodiscard]] SessionId session() const noexcept { return session_; }
  [[nodiscard]] const DataAllocationTable& table() const noexcept { return table_; }
  [[nodiscard]] const PageArena& arena() const noexcept { return arena_; }
  [[nodiscard]] PageState page_state(PageIndex page) const {
    return pages_.info(page).state;
  }
  [[nodiscard]] bool page_has_twin(PageIndex page) const {
    return pages_.has_twin(page);
  }
  [[nodiscard]] std::uint64_t closure_bytes() const noexcept {
    return options_.closure_bytes;
  }
  // Rejects a budget larger than the arena (it could never be honoured and
  // usually means a units mistake). Zero is legal: it disables eager
  // closures and transfers exactly the faulted data.
  Status set_closure_bytes(std::uint64_t bytes);

 private:
  struct Cursor {
    PageIndex page = kInvalidPage;
  };

  // Grabs `n` consecutive fresh pages; RESOURCE_EXHAUSTED when the arena is
  // full. (The arena is session-lifetime; invalidate_all() recycles it.)
  Result<PageIndex> grab_pages(std::uint32_t n);

  // Places `size` bytes for `origin` on a lazy chain (PROT_NONE pages).
  Result<AllocationEntry> place_lazy(const LongPointer& id, std::uint64_t size,
                                     std::uint32_t align);

  // Places `size` bytes on writable pages during a fill or for a resident
  // allocation; `cursor` selects the chain.
  Result<AllocationEntry> place_on_chain(Cursor& cursor, PageKind kind,
                                         const LongPointer& id, std::uint64_t size,
                                         std::uint32_t align, SpaceId origin);

  // Fetches and fills the faulted page (and any prefetch pages the closure
  // creates), requesting `closure_budget` bytes of eager transfer.
  Status fill_page(PageIndex page, std::uint64_t closure_budget);

  // Seals, protects, and overlays every page opened by the current fill.
  Status finish_fill_pages();

  Status make_writable(PageIndex page);
  // Clean -> dirty for every resident page `entry` spans, snapshotting each
  // page's twin first (the pre-write image is the delta baseline).
  Status dirty_spanned_pages(const AllocationEntry& entry);
  // Appends the ranges of `entry`'s image differing from the spanned pages'
  // twins. False if a spanned dirty page has no twin (born-dirty data).
  bool diff_entry(const AllocationEntry& entry, std::vector<ByteRange>& out) const;
  [[nodiscard]] bool is_fill_open(PageIndex page) const;
  std::uint32_t pages_spanned(const AllocationEntry& e) const;

  class FillSink;
  friend class FillSink;

  const TypeRegistry& registry_;
  const LayoutEngine& layouts_;
  ValueCodec codec_;
  const ArchModel& arch_;
  SpaceId self_;
  CacheOptions options_;
  PageFetcher& fetcher_;

  // A pending value for a non-resident slot. `valid` records which byte
  // ranges of `bytes` were actually received (a delta can populate an
  // overlay partially); only those are copied onto the page at fill time.
  struct Overlay {
    std::vector<std::uint8_t> bytes;
    std::vector<ByteRange> valid;  // merged
  };

  PageArena arena_;
  PageTable pages_;
  DataAllocationTable table_;
  std::unordered_map<const AllocationEntry*, Overlay> overlays_;

  std::unordered_map<SpaceId, Cursor> lazy_cursors_;
  std::unordered_map<SpaceId, SourceLease> leases_;
  // Next lease epoch per revoked source, so generations never repeat.
  std::unordered_map<SpaceId, std::uint64_t> lease_epoch_floor_;
  Cursor alloc_cursor_;       // born-resident (extended_malloc) chain
  Cursor fill_cursor_;        // prefetch-extras chain, valid during a fill
  bool filling_ = false;
  std::vector<PageIndex> fill_open_pages_;  // writable during the current fill

  PageIndex next_fresh_page_ = 0;
  bool registered_ = false;
  SessionId session_ = kNoSession;
  CacheStats stats_;
  Telemetry* telemetry_ = nullptr;
};

}  // namespace srpc
