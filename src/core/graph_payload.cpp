#include "core/graph_payload.hpp"

#include <algorithm>
#include <unordered_map>

namespace srpc {

namespace {

// Pointer fields are packed into one u32: the low 2 bits are the tag, the
// high 30 bits the payload (an intra-payload index, or a same-space address
// delta scaled by the 8-byte heap alignment). 0 is null; tag kTagFull is
// the escape to a full 16-byte long pointer. This compactness is
// load-bearing for Figure 4's crossover (see EXPERIMENTS.md).
enum PointerTag : std::uint32_t {
  kTagNull = 0,
  kTagIntra = 1,
  kTagDelta = 2,
  kTagFull = 3,
};

inline constexpr std::uint32_t kMaxPackedPayload = (1U << 30) - 1;
inline constexpr std::uint32_t kDeltaScale = 8;

// Trailing canary: payloads are length-implicit (values are walked by
// type), so a codec disagreement would silently desynchronise the stream;
// this turns that into an immediate PROTOCOL_ERROR.
inline constexpr std::uint32_t kPayloadCanary = 0x47504C44;  // "GPLD"


// Pointer-field codec used while encoding payload values.
class GraphPointerEncoder final : public PointerFieldCodec {
 public:
  GraphPointerEncoder(PointerTranslator& translator, SpaceId space,
                      std::uint64_t base,
                      const std::unordered_map<std::uint64_t, std::uint32_t>& index)
      : translator_(translator), space_(space), base_(base), index_(index) {}

  Status encode(xdr::Encoder& enc, std::uint64_t ordinary, TypeId pointee) override {
    if (ordinary == 0) {
      enc.put_u32(0);
      return Status::ok();
    }
    auto lp = translator_.unswizzle(ordinary, pointee);
    if (!lp) return lp.status();
    const LongPointer& p = lp.value();
    if (p.space == space_) {
      auto it = index_.find(p.address);
      if (it != index_.end() && it->second <= kMaxPackedPayload) {
        enc.put_u32((it->second << 2) | kTagIntra);
        return Status::ok();
      }
      const std::uint64_t delta = p.address - base_;
      if (p.type == pointee && p.address >= base_ && delta % kDeltaScale == 0 &&
          delta / kDeltaScale <= kMaxPackedPayload) {
        enc.put_u32((static_cast<std::uint32_t>(delta / kDeltaScale) << 2) | kTagDelta);
        return Status::ok();
      }
    }
    enc.put_u32(kTagFull);
    encode_long_pointer(enc, p);
    return Status::ok();
  }

  Result<std::uint64_t> decode(xdr::Decoder& dec, TypeId pointee) override {
    (void)dec;
    (void)pointee;
    return internal_error("GraphPointerEncoder used for decoding");
  }

 private:
  PointerTranslator& translator_;
  SpaceId space_;
  std::uint64_t base_;
  const std::unordered_map<std::uint64_t, std::uint32_t>& index_;
};

// Pointer-field codec used while decoding payload values.
class GraphPointerDecoder final : public PointerFieldCodec {
 public:
  GraphPointerDecoder(GraphSink& sink, SpaceId space, std::uint64_t base,
                      std::uint32_t count)
      : sink_(sink), space_(space), base_(base), count_(count) {}

  Status encode(xdr::Encoder& enc, std::uint64_t ordinary, TypeId pointee) override {
    (void)enc;
    (void)ordinary;
    (void)pointee;
    return internal_error("GraphPointerDecoder used for encoding");
  }

  Result<std::uint64_t> decode(xdr::Decoder& dec, TypeId pointee) override {
    auto packed = dec.get_u32();
    if (!packed) return packed.status();
    const std::uint32_t v = packed.value();
    if (v == 0) return std::uint64_t{0};
    const std::uint32_t payload = v >> 2;
    switch (v & 3U) {
      case kTagIntra: {
        if (payload >= count_) {
          return protocol_error("intra-payload index " + std::to_string(payload) +
                                " out of range");
        }
        return sink_.address_of(payload);
      }
      case kTagDelta: {
        const std::uint64_t addr =
            base_ + static_cast<std::uint64_t>(payload) * kDeltaScale;
        return sink_.swizzle(LongPointer{space_, addr, pointee}, pointee);
      }
      case kTagFull: {
        if (payload != 0) {
          return protocol_error("malformed packed pointer");
        }
        auto lp = decode_long_pointer(dec);
        if (!lp) return lp.status();
        return sink_.swizzle(lp.value(), pointee);
      }
      default:
        return protocol_error("malformed packed pointer (null tag with payload)");
    }
  }

 private:
  GraphSink& sink_;
  SpaceId space_;
  std::uint64_t base_;
  std::uint32_t count_;
};

}  // namespace

Status encode_graph_payload(const ValueCodec& codec, const ArchModel& arch,
                            SpaceId space, std::span<const GraphObjectRef> objects,
                            PointerTranslator& translator, ByteBuffer& out) {
  xdr::Encoder enc(out);
  if (objects.size() > 0xFFFFFFFFULL) {
    return invalid_argument("graph payload too large");
  }

  std::uint64_t base = objects.empty() ? 0 : objects[0].addr;
  for (const auto& obj : objects) base = std::min(base, obj.addr);
  bool wide = false;
  for (const auto& obj : objects) {
    if (obj.addr - base > 0xFFFFFFFFULL) {
      wide = true;
      break;
    }
  }

  // Most common type becomes the default (saves a fixup per object).
  std::unordered_map<TypeId, std::uint32_t> type_counts;
  for (const auto& obj : objects) ++type_counts[obj.type];
  TypeId default_type = kInvalidTypeId;
  std::uint32_t best = 0;
  for (const auto& [type, n] : type_counts) {
    if (n > best) {
      best = n;
      default_type = type;
    }
  }

  // Size the output once up front: large payloads (closures, modified sets)
  // otherwise regrow the buffer repeatedly mid-encode.
  std::uint64_t estimate = 24;  // header fields
  for (const auto& [type, n] : type_counts) {
    auto per_object = graph_object_wire_size(codec, type);
    if (per_object) estimate += per_object.value() * n;
  }
  enc.reserve(estimate);

  enc.put_u32(space);
  enc.put_u32(wide ? 1 : 0);
  enc.put_u64(base);
  enc.put_u32(default_type);
  enc.put_u32(static_cast<std::uint32_t>(objects.size()));

  std::unordered_map<std::uint64_t, std::uint32_t> index;
  index.reserve(objects.size());
  for (std::size_t i = 0; i < objects.size(); ++i) {
    if (!index.emplace(objects[i].addr, static_cast<std::uint32_t>(i)).second) {
      return invalid_argument("duplicate object address in graph payload");
    }
    if (wide) {
      enc.put_u64(objects[i].addr);
    } else {
      enc.put_u32(static_cast<std::uint32_t>(objects[i].addr - base));
    }
  }

  std::vector<std::pair<std::uint32_t, TypeId>> fixups;
  for (std::size_t i = 0; i < objects.size(); ++i) {
    if (objects[i].type != default_type) {
      fixups.emplace_back(static_cast<std::uint32_t>(i), objects[i].type);
    }
  }
  enc.put_u32(static_cast<std::uint32_t>(fixups.size()));
  for (const auto& [i, type] : fixups) {
    enc.put_u32(i);
    enc.put_u32(type);
  }

  GraphPointerEncoder pointer_codec(translator, space, base, index);
  for (const auto& obj : objects) {
    SRPC_RETURN_IF_ERROR(codec.encode(arch, obj.type, obj.src, enc, pointer_codec));
  }
  enc.put_u32(kPayloadCanary);
  return Status::ok();
}

Status decode_graph_payload(const ValueCodec& codec, const ArchModel& arch,
                            ByteBuffer& in, GraphSink& sink,
                            std::vector<LongPointer>* ids_out) {
  xdr::Decoder dec(in);
  auto space = dec.get_u32();
  if (!space) return space.status();
  auto wide = dec.get_u32();
  if (!wide) return wide.status();
  auto base = dec.get_u64();
  if (!base) return base.status();
  auto default_type = dec.get_u32();
  if (!default_type) return default_type.status();
  auto count = dec.get_u32();
  if (!count) return count.status();

  std::vector<LongPointer> ids(count.value());
  for (std::uint32_t i = 0; i < count.value(); ++i) {
    std::uint64_t addr = 0;
    if (wide.value() != 0) {
      auto a = dec.get_u64();
      if (!a) return a.status();
      addr = a.value();
    } else {
      auto d = dec.get_u32();
      if (!d) return d.status();
      addr = base.value() + d.value();
    }
    ids[i] = LongPointer{space.value(), addr, default_type.value()};
  }

  auto fixup_count = dec.get_u32();
  if (!fixup_count) return fixup_count.status();
  for (std::uint32_t i = 0; i < fixup_count.value(); ++i) {
    auto index = dec.get_u32();
    if (!index) return index.status();
    auto type = dec.get_u32();
    if (!type) return type.status();
    if (index.value() >= count.value()) {
      return protocol_error("type fixup index out of range");
    }
    ids[index.value()].type = type.value();
  }

  std::vector<void*> destinations(count.value(), nullptr);
  for (std::uint32_t i = 0; i < count.value(); ++i) {
    auto dest = sink.prepare(i, ids[i]);
    if (!dest) return dest.status();
    destinations[i] = dest.value();
  }

  GraphPointerDecoder pointer_codec(sink, space.value(), base.value(), count.value());
  std::vector<std::uint8_t> scratch;
  for (std::uint32_t i = 0; i < count.value(); ++i) {
    void* dest = destinations[i];
    if (dest == nullptr) {
      // Skipped object: decode into scratch so the cursor stays in sync.
      auto layout = codec.layouts.layout_of(arch, ids[i].type);
      if (!layout) return layout.status();
      scratch.assign(layout.value()->size, 0);
      dest = scratch.data();
    }
    SRPC_RETURN_IF_ERROR(codec.decode(arch, ids[i].type, dest, dec, pointer_codec));
  }
  auto canary = dec.get_u32();
  if (!canary) return canary.status();
  if (canary.value() != kPayloadCanary) {
    return protocol_error("graph payload canary mismatch (stream desynchronised)");
  }
  if (ids_out != nullptr) {
    *ids_out = std::move(ids);
  }
  return Status::ok();
}

Result<std::uint64_t> graph_object_wire_size(const ValueCodec& codec, TypeId type) {
  // Header delta (4) + value with packed-u32 pointer fields.
  auto value = codec.wire_size(type, /*pointer_wire_bytes=*/4);
  if (!value) return value.status();
  return 4 + value.value();
}

}  // namespace srpc
