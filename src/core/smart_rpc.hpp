// Smart RPC — public umbrella header.
//
// Reproduction of Kono, Kato & Masuda, "Smart Remote Procedure Calls:
// Transparent Treatment of Remote Pointers" (ICDCS 1994).
//
// Quickstart:
//
//   srpc::World world;
//   auto& caller = world.create_space("caller");
//   auto& callee = world.create_space("callee");
//
//   auto builder = world.describe<Node>("Node");
//   builder.pointer_field("next", &Node::next, builder.id())
//          .field("value", &Node::value);
//   world.register_type(builder).status().check();
//
//   callee.bind("sum", [](srpc::CallContext&, Node* head) -> std::int64_t {
//     std::int64_t total = 0;
//     for (Node* n = head; n != nullptr; n = n->next) total += n->value;
//     return total;  // `head` is a remote pointer, dereferenced transparently
//   });
//
//   caller.run([&](srpc::Runtime& rt) {
//     Node* head = ...;  // build a list in rt.heap()
//     srpc::Session session(rt);
//     auto total = session.call<std::int64_t>(callee.id(), "sum", head);
//     session.end().check();
//   });
#pragma once

#include "core/address_space.hpp"   // IWYU pragma: export
#include "core/cache_manager.hpp"   // IWYU pragma: export
#include "core/marshal.hpp"         // IWYU pragma: export
#include "core/runtime.hpp"         // IWYU pragma: export
#include "core/session.hpp"         // IWYU pragma: export
#include "core/world.hpp"           // IWYU pragma: export
#include "types/type_builder.hpp"   // IWYU pragma: export
