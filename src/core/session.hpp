// Session — a ground thread's RPC session (paper §3.1).
//
// "A ground thread must declare the beginning and the end of an RPC
// session. The concept of an RPC session is needed to determine the period
// for which the runtime system guarantees to respond to remote data
// references and to maintain the coherency of the cached data."
//
// Remote pointers obtained during the session are valid until end(); at
// end() the runtime writes the modified data set back to every home and
// multicasts the cache invalidation (§3.4). Sessions must be used on the
// owning space's worker thread (inside AddressSpace::run()).
#pragma once

#include <span>
#include <string>

#include "common/logging.hpp"
#include "core/marshal.hpp"
#include "core/runtime.hpp"

namespace srpc {

class Session {
 public:
  // Opens a session; throws on failure (sessions cannot be half-open).
  explicit Session(Runtime& rt) : rt_(rt) {
    auto id = rt_.begin_session();
    id.status().check();
    id_ = id.value();
  }

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  // Ends the session if the user did not; teardown errors only log because
  // destructors must not throw. When the orderly end fails (for example a
  // write-back ack deadline) the destructor falls back to abort_session()
  // so the runtime is always reusable afterwards.
  ~Session() {
    if (!ended_) {
      Status s = rt_.end_session(id_);
      if (!s.is_ok()) {
        SRPC_ERROR << "implicit session end failed: " << s.to_string()
                   << "; aborting session";
        Status aborted = rt_.abort_session(id_);
        if (!aborted.is_ok()) {
          // Both teardown paths failed: the session is gone locally but
          // peers may still hold its state until their own tombstone or
          // failure detection catches up. Surface it in stats, not just the
          // log, so tests and operators can assert on it.
          SRPC_ERROR << "session abort also failed: " << aborted.to_string()
                     << "; peers must reclaim via tombstones";
          rt_.note_session_teardown_failure();
        }
      }
    }
  }

  [[nodiscard]] SessionId id() const noexcept { return id_; }

  // Every operation below pins this session around the work
  // (Runtime::ScopedSession) so one worker thread can interleave many
  // Session objects without attributing state to the wrong one.
  template <typename R, typename... Args>
  Result<R> call(SpaceId target, const std::string& proc, const Args&... args) {
    Runtime::ScopedSession scope(rt_, id_);
    return typed_call<R>(rt_, target, proc, args...);
  }

  template <typename... Args>
  Status call_void(SpaceId target, const std::string& proc, const Args&... args) {
    Runtime::ScopedSession scope(rt_, id_);
    return typed_call_void(rt_, target, proc, args...);
  }

  // Pipelined call: ships the request and returns a future for the typed
  // result immediately. Many calls may be outstanding at once; collect
  // them with get() in any order — while one future blocks, replies for
  // the others complete too (the worker keeps the paper's single active
  // thread; a future's get() is what drives the endpoint).
  template <typename R, typename... Args>
  Result<TypedCallFuture<R>> call_async(SpaceId target, const std::string& proc,
                                        const Args&... args) {
    Runtime::ScopedSession scope(rt_, id_);
    return typed_call_async<R>(rt_, target, proc, args...);
  }

  template <typename... Args>
  Result<TypedCallFuture<void>> call_async_void(SpaceId target,
                                                const std::string& proc,
                                                const Args&... args) {
    Runtime::ScopedSession scope(rt_, id_);
    return typed_call_async_void(rt_, target, proc, args...);
  }

  // Remote memory management within the session (paper §3.5).
  template <typename T>
  Result<T*> extended_malloc(SpaceId home, std::uint32_t count = 1) {
    Runtime::ScopedSession scope(rt_, id_);
    auto type = rt_.host_types().find<T>();
    if (!type) return type.status();
    auto mem = rt_.extended_malloc(home, type.value(), count);
    if (!mem) return mem.status();
    return static_cast<T*>(mem.value());
  }

  Status extended_free(void* p) {
    Runtime::ScopedSession scope(rt_, id_);
    return rt_.extended_free(p);
  }

  // Suggests fetching the data behind `p` (and `closure_budget` bytes of
  // its transitive closure) now rather than on first access — the paper's
  // §6 "suggestions provided by the programmer".
  template <typename T>
  Status prefetch(const T* p, std::uint64_t closure_budget = 8192) {
    Runtime::ScopedSession scope(rt_, id_);
    return rt_.prefetch(p, closure_budget);
  }

  // Batched, pipelined prefetch: one speculative FETCH frame per home with
  // every frame in flight at once. The budget applies per frame.
  Status prefetch_many(std::span<const void* const> pointers,
                       std::uint64_t closure_budget = 8192) {
    Runtime::ScopedSession scope(rt_, id_);
    return rt_.prefetch_many(pointers, closure_budget);
  }

  // Declares the end of the session: write-back + invalidation multicast.
  // On failure the session is still open — call end() again once the
  // network heals, or abort(). In multi-session mode a kConflict status
  // means this session lost the home-side arbitration: abort() and retry
  // the work under a fresh session (with backoff).
  Status end() {
    Status s = rt_.end_session(id_);
    ended_ = s.is_ok();
    return s;
  }

  // Gives up on the session after a failure (deadline, unreachable peer):
  // best-effort peer invalidation, then unconditional local unwind. The
  // runtime is reusable for a fresh session afterwards regardless of the
  // returned status; non-OK means some live peer could not be told and
  // will shed the session through its own tombstones or failure detection.
  Status abort() {
    ended_ = true;
    return rt_.abort_session(id_);
  }

 private:
  Runtime& rt_;
  SessionId id_ = kNoSession;
  bool ended_ = false;
};

}  // namespace srpc
