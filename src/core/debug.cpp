#include "core/debug.hpp"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

namespace srpc {

namespace {
std::string line(const char* format, ...) {
  char buf[256];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buf, sizeof buf, format, args);
  va_end(args);
  return std::string(buf);
}
}  // namespace

std::string dump_allocation_table(const Runtime& rt) {
  const CacheManager& cache = rt.cache();
  std::string out =
      line("data allocation table of space %u ('%s'): %zu entries\n", rt.id(),
           rt.name().c_str(), cache.table().size());
  out += line("%8s %8s %8s %-10s %s\n", "page", "offset", "size", "state",
              "long pointer");
  for (PageIndex page = 0; page < cache.arena().page_count(); ++page) {
    const auto entries = cache.table().entries_on_page(page);
    for (const AllocationEntry* e : entries) {
      if (e->page != page) continue;  // multi-page entries print once
      out += line("%8u %8u %8u %-10s %s\n", e->page, e->offset, e->size,
                  std::string(to_string(cache.page_state(e->page))).c_str(),
                  e->pointer.to_string().c_str());
    }
  }
  return out;
}

std::string dump_page_states(const Runtime& rt) {
  const CacheManager& cache = rt.cache();
  std::size_t counts[4] = {0, 0, 0, 0};
  for (PageIndex page = 0; page < cache.arena().page_count(); ++page) {
    counts[static_cast<std::size_t>(cache.page_state(page))]++;
  }
  return line("pages of space %u: empty=%zu allocated=%zu clean=%zu dirty=%zu\n",
              rt.id(), counts[0], counts[1], counts[2], counts[3]);
}

std::string dump_heap(const Runtime& rt) {
  std::string out = line("managed heap of space %u: %zu allocations, %" PRIu64
                         " bytes\n",
                         rt.id(), rt.heap().live_allocations(), rt.heap().live_bytes());
  rt.heap().for_each([&](const ManagedHeap::Record& record) {
    out += line("  %p type=%u count=%u size=%" PRIu64 "%s\n",
                static_cast<const void*>(record.base), record.type, record.count,
                record.size, record.adopted ? " (adopted)" : "");
  });
  return out;
}

std::string dump_counters(const Runtime& rt) {
  const RuntimeStats& s = rt.stats();
  const CacheStats& c = rt.cache().stats();
  return line("space %u: calls sent=%" PRIu64 " served=%" PRIu64
              " | fetches issued=%" PRIu64 " served=%" PRIu64 " | faults r=%" PRIu64
              " w=%" PRIu64 " | fills=%" PRIu64 " objects=%" PRIu64 "\n",
              rt.id(), s.calls_sent, s.calls_served, c.fetches, s.fetches_served,
              c.read_faults, c.write_faults, c.fills, c.objects_filled);
}

}  // namespace srpc
