// Identifier vocabulary shared across layers.
#pragma once

#include <cstdint>

namespace srpc {

// Identifies an address space in the distributed environment. The paper's
// long pointer carries "a pair consisting of a site ID and a process ID";
// in this reproduction a World assigns dense ids at space creation.
using SpaceId = std::uint32_t;
inline constexpr SpaceId kInvalidSpaceId = 0xFFFFFFFFU;

// Identifies an RPC session; allocated by the ground thread's space.
using SessionId = std::uint64_t;
inline constexpr SessionId kNoSession = 0;

}  // namespace srpc
