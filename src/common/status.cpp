#include "common/status.hpp"

namespace srpc {

std::string_view to_string(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kProtocolError:
      return "PROTOCOL_ERROR";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kSpaceDead:
      return "SPACE_DEAD";
    case StatusCode::kConflict:
      return "CONFLICT";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  std::string out(srpc::to_string(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

void Status::check() const {
  if (!is_ok()) {
    throw std::runtime_error(to_string());
  }
}

}  // namespace srpc
