#include "common/byte_range.hpp"

#include <algorithm>

namespace srpc {

void merge_ranges(std::vector<ByteRange>& ranges) {
  if (ranges.size() < 2) return;
  std::sort(ranges.begin(), ranges.end(),
            [](const ByteRange& a, const ByteRange& b) { return a.offset < b.offset; });
  std::size_t out = 0;
  for (std::size_t i = 1; i < ranges.size(); ++i) {
    if (ranges[i].offset <= ranges[out].end()) {
      const std::uint32_t end = std::max(ranges[out].end(), ranges[i].end());
      ranges[out].len = end - ranges[out].offset;
    } else {
      ranges[++out] = ranges[i];
    }
  }
  ranges.resize(out + 1);
}

void diff_ranges(const std::uint8_t* cur, const std::uint8_t* twin,
                 std::uint32_t len, std::uint32_t base, std::uint32_t merge_gap,
                 std::vector<ByteRange>& out) {
  std::uint32_t i = 0;
  while (i < len) {
    if (cur[i] == twin[i]) {
      ++i;
      continue;
    }
    const std::uint32_t start = i;
    std::uint32_t last_diff = i;
    ++i;
    // Extend the run while differing bytes keep appearing within merge_gap.
    while (i < len && i - last_diff <= merge_gap) {
      if (cur[i] != twin[i]) last_diff = i;
      ++i;
    }
    out.push_back(ByteRange{base + start, last_diff - start + 1});
    i = last_diff + 1;
  }
}

bool ranges_intersect(std::span<const ByteRange> a,
                      std::span<const ByteRange> b) noexcept {
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i].end() <= b[j].offset) {
      ++i;
    } else if (b[j].end() <= a[i].offset) {
      ++j;
    } else {
      return true;
    }
  }
  return false;
}

std::uint64_t ranges_bytes(std::span<const ByteRange> ranges) noexcept {
  std::uint64_t total = 0;
  for (const ByteRange& r : ranges) total += r.len;
  return total;
}

std::uint64_t fingerprint_ranges(const std::uint8_t* image,
                                 std::span<const ByteRange> ranges) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV offset basis
  const auto mix = [&h](std::uint64_t v) {
    for (int k = 0; k < 8; ++k) {
      h ^= (v >> (k * 8)) & 0xFF;
      h *= 0x100000001b3ULL;
    }
  };
  for (const ByteRange& r : ranges) {
    mix(r.offset);
    mix(r.len);
    for (std::uint32_t k = 0; k < r.len; ++k) {
      h ^= image[r.offset + k];
      h *= 0x100000001b3ULL;
    }
  }
  return h == 0 ? 1 : h;
}

}  // namespace srpc
