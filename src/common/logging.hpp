// Tiny leveled logger. Off by default above kWarn so tests stay quiet;
// set SRPC_LOG=debug (or call set_log_level) to trace the runtime.
#pragma once

#include <cstdint>
#include <sstream>
#include <string_view>

namespace srpc {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

// Reads SRPC_LOG from the environment once ("debug"/"info"/"warn"/"error"/"off").
void init_log_level_from_env() noexcept;

// Labels every SRPC_LOG line emitted by the calling thread with the space
// name and, when `now_ns` is non-null, a virtual-clock timestamp read at
// log time. Each space's worker thread installs its own context on entry
// to serve_forever; `now_ns` must outlive the thread's logging (it does —
// it reads the runtime's clock). Pass (nullptr, nullptr) to clear.
void set_thread_log_context(const char* space_name,
                            std::uint64_t (*now_ns)(void*) = nullptr,
                            void* clock_arg = nullptr) noexcept;
inline void clear_thread_log_context() noexcept {
  set_thread_log_context(nullptr, nullptr, nullptr);
}

namespace detail {
void log_line(LogLevel level, std::string_view file, int line, std::string_view msg);

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage() { log_line(level_, file_, line_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace detail

#define SRPC_LOG(level)                                       \
  if (static_cast<int>(level) < static_cast<int>(::srpc::log_level())) { \
  } else                                                      \
    ::srpc::detail::LogMessage(level, __FILE__, __LINE__)

#define SRPC_DEBUG SRPC_LOG(::srpc::LogLevel::kDebug)
#define SRPC_INFO SRPC_LOG(::srpc::LogLevel::kInfo)
#define SRPC_WARN SRPC_LOG(::srpc::LogLevel::kWarn)
#define SRPC_ERROR SRPC_LOG(::srpc::LogLevel::kError)

}  // namespace srpc
