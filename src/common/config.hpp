// Failure-handling configuration: deadlines, retransmits, backoff.
//
// The paper assumes a reliable transport and blocks a faulting thread until
// its home space answers ("No timeouts" was a protocol invariant of early
// revisions). At production scale a single dropped FETCH_REPLY or ack must
// not hang a session forever, so every request/reply round trip in the
// runtime is governed by a TimeoutConfig (see PROTOCOL.md "Timeouts,
// retries, and duplicate absorption").
//
// Deadlines are *real* time (std::chrono::steady_clock), not virtual time:
// the simulated network delivers instantly and charges virtual cost, so a
// message it drops would never arrive no matter how far the virtual clock
// advances. Real time is the only honest detector on both transports.
#pragma once

#include <chrono>
#include <cstdint>

namespace srpc {

struct TimeoutConfig {
  // Total real-time budget for one logical request, retransmits included.
  // When it expires the initiating call site gets DEADLINE_EXCEEDED.
  std::chrono::nanoseconds request_deadline = std::chrono::seconds(30);

  // How long to wait for a reply before retransmitting (idempotent
  // requests only); doubles after every attempt, capped at max_backoff.
  std::chrono::nanoseconds attempt_timeout = std::chrono::seconds(5);
  std::chrono::nanoseconds max_backoff = std::chrono::seconds(10);

  // Send attempts for idempotent requests (1 = never retransmit).
  // Non-idempotent requests (CALL, ALLOC_BATCH) always use one attempt;
  // duplicates of those are absorbed at the receiver instead (request-id
  // dedup), so a retransmit would still be safe but is never needed —
  // their replies travel exactly once either way.
  std::uint32_t max_attempts = 4;

  // Decorrelated jitter on the retransmit backoff: each retry waits
  //   backoff' = attempt_timeout + U(0,1) * jitter * (3*backoff - attempt_timeout)
  // capped at max_backoff. Without it every client whose request died in
  // the same partition retries in lockstep when it heals — a retransmit
  // storm that re-congests the link it is probing. jitter = 0 restores the
  // plain doubling schedule; the draw is seeded from jitter_seed plus the
  // request's seq and attempt so runs stay bit-reproducible.
  double backoff_jitter = 0.5;
  std::uint64_t jitter_seed = 0x5EEDBACC0FFULL;

  [[nodiscard]] bool unbounded_deadline() const noexcept {
    return request_deadline == std::chrono::nanoseconds::max();
  }
  [[nodiscard]] bool unbounded_attempts() const noexcept {
    return attempt_timeout == std::chrono::nanoseconds::max();
  }

  // Paper-faithful behavior: block forever, reliability is the transport's
  // job.
  static TimeoutConfig unbounded() {
    TimeoutConfig cfg;
    cfg.request_deadline = std::chrono::nanoseconds::max();
    cfg.attempt_timeout = std::chrono::nanoseconds::max();
    cfg.max_attempts = 1;
    return cfg;
  }

  // Tight bounds for fault-injection tests: fail fast, retry fast.
  static TimeoutConfig aggressive(
      std::chrono::nanoseconds attempt = std::chrono::milliseconds(25),
      std::chrono::nanoseconds deadline = std::chrono::milliseconds(250),
      std::uint32_t attempts = 3) {
    TimeoutConfig cfg;
    cfg.request_deadline = deadline;
    cfg.attempt_timeout = attempt;
    cfg.max_backoff = deadline;
    cfg.max_attempts = attempts;
    return cfg;
  }
};

}  // namespace srpc
