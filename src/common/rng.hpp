// Deterministic RNG (SplitMix64). Workloads, property tests and benches all
// seed from fixed values so every run — and every figure — is reproducible.
#pragma once

#include <cstdint>

namespace srpc {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  // Uniform in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) noexcept { return next() % bound; }

  // Uniform in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(next_below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  double next_double() noexcept {  // uniform in [0, 1)
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  bool next_bool(double p_true) noexcept { return next_double() < p_true; }

 private:
  std::uint64_t state_;
};

}  // namespace srpc
