// Virtual time for the simulated network substrate.
//
// The paper measured wall-clock seconds on SPARC + 10 Mbps Ethernet. We run
// every address space in one process, so the cost model (net/cost_model.hpp)
// charges simulated nanoseconds to a VirtualClock instead. Because an RPC
// session has exactly one active thread, charges are totally ordered and the
// clock is deterministic; benches report these virtual seconds.
#pragma once

#include <atomic>
#include <cstdint>

namespace srpc {

class VirtualClock {
 public:
  using Nanos = std::uint64_t;

  [[nodiscard]] Nanos now() const noexcept { return now_.load(std::memory_order_relaxed); }

  void advance(Nanos delta) noexcept { now_.fetch_add(delta, std::memory_order_relaxed); }

  // Moves the clock forward to `t` if it is behind (message arrival time).
  void advance_to(Nanos t) noexcept {
    Nanos cur = now_.load(std::memory_order_relaxed);
    while (cur < t &&
           !now_.compare_exchange_weak(cur, t, std::memory_order_relaxed)) {
    }
  }

  void reset() noexcept { now_.store(0, std::memory_order_relaxed); }

  [[nodiscard]] static double to_seconds(Nanos t) noexcept {
    return static_cast<double>(t) * 1e-9;
  }

 private:
  std::atomic<Nanos> now_{0};
};

}  // namespace srpc
