#include "common/logging.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>

namespace srpc {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_log_mutex;

// Per-thread log prefix: the space whose worker this thread is, plus an
// optional clock for virtual-time stamping. Plain pointers — the runtime
// that installs them outlives its worker thread.
thread_local const char* t_space_name = nullptr;
thread_local std::uint64_t (*t_now_ns)(void*) = nullptr;
thread_local void* t_clock_arg = nullptr;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kOff:
      return "?";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void init_log_level_from_env() noexcept {
  const char* env = std::getenv("SRPC_LOG");
  if (env == nullptr) return;
  if (std::strcmp(env, "debug") == 0) {
    set_log_level(LogLevel::kDebug);
  } else if (std::strcmp(env, "info") == 0) {
    set_log_level(LogLevel::kInfo);
  } else if (std::strcmp(env, "warn") == 0) {
    set_log_level(LogLevel::kWarn);
  } else if (std::strcmp(env, "error") == 0) {
    set_log_level(LogLevel::kError);
  } else if (std::strcmp(env, "off") == 0) {
    set_log_level(LogLevel::kOff);
  }
}

void set_thread_log_context(const char* space_name,
                            std::uint64_t (*now_ns)(void*),
                            void* clock_arg) noexcept {
  t_space_name = space_name;
  t_now_ns = now_ns;
  t_clock_arg = clock_arg;
}

namespace detail {

void log_line(LogLevel level, std::string_view file, int line, std::string_view msg) {
  // Strip directories from the file path for readability.
  const auto pos = file.find_last_of('/');
  if (pos != std::string_view::npos) file.remove_prefix(pos + 1);

  // "[srpc D 1.234567s client cache_manager.cpp:42] ..." on a space's
  // worker thread; plain "[srpc D cache_manager.cpp:42] ..." elsewhere.
  char prefix[96];
  prefix[0] = '\0';
  int n = 0;
  if (t_now_ns != nullptr) {
    const double secs = static_cast<double>(t_now_ns(t_clock_arg)) / 1e9;
    n += std::snprintf(prefix + n, sizeof(prefix) - static_cast<size_t>(n),
                       "%.6fs ", secs);
  }
  if (t_space_name != nullptr && n >= 0 &&
      static_cast<size_t>(n) < sizeof(prefix)) {
    std::snprintf(prefix + n, sizeof(prefix) - static_cast<size_t>(n), "%s ",
                  t_space_name);
  }
  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::fprintf(stderr, "[srpc %s %s%.*s:%d] %.*s\n", level_tag(level), prefix,
               static_cast<int>(file.size()), file.data(), line,
               static_cast<int>(msg.size()), msg.data());
}

}  // namespace detail
}  // namespace srpc
