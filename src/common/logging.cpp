#include "common/logging.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>

namespace srpc {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_log_mutex;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kOff:
      return "?";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void init_log_level_from_env() noexcept {
  const char* env = std::getenv("SRPC_LOG");
  if (env == nullptr) return;
  if (std::strcmp(env, "debug") == 0) {
    set_log_level(LogLevel::kDebug);
  } else if (std::strcmp(env, "info") == 0) {
    set_log_level(LogLevel::kInfo);
  } else if (std::strcmp(env, "warn") == 0) {
    set_log_level(LogLevel::kWarn);
  } else if (std::strcmp(env, "error") == 0) {
    set_log_level(LogLevel::kError);
  } else if (std::strcmp(env, "off") == 0) {
    set_log_level(LogLevel::kOff);
  }
}

namespace detail {

void log_line(LogLevel level, std::string_view file, int line, std::string_view msg) {
  // Strip directories from the file path for readability.
  const auto pos = file.find_last_of('/');
  if (pos != std::string_view::npos) file.remove_prefix(pos + 1);
  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::fprintf(stderr, "[srpc %s %.*s:%d] %.*s\n", level_tag(level),
               static_cast<int>(file.size()), file.data(), line,
               static_cast<int>(msg.size()), msg.data());
}

}  // namespace detail
}  // namespace srpc
