// Growable byte buffer with a separate read cursor. The single container
// used for wire payloads: XDR encoders append to it, decoders consume it.
//
// Two storage modes:
//  * owned — the default; bytes live in an internal vector and mutate freely.
//  * borrowed — the buffer reads straight out of foreign const memory (a
//    shm-arena region, see net/shm_arena.hpp) and holds a keepalive that
//    pins it. Decoders work unchanged; the first mutation (or request for a
//    mutable pointer) detaches into an owned private copy, so borrowed
//    buffers are copy-on-write rather than a new API surface.
//
// Copying a buffer with owned bytes is a real allocation+memcpy; a global
// counter tallies those so tests can assert the send path stays move-only.
// Copying a borrowed buffer just bumps the keepalive refcount — not counted.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/status.hpp"

namespace srpc {

class ByteBuffer {
 public:
  ByteBuffer() = default;
  explicit ByteBuffer(std::vector<std::uint8_t> bytes) : bytes_(std::move(bytes)) {}

  ByteBuffer(const ByteBuffer& other);
  ByteBuffer& operator=(const ByteBuffer& other);
  ByteBuffer(ByteBuffer&&) noexcept = default;
  ByteBuffer& operator=(ByteBuffer&&) noexcept = default;
  ~ByteBuffer() = default;

  // Wraps foreign const memory without copying. `keepalive` (if any) is
  // held until this buffer is destroyed, detached, or reassigned — for
  // arena-backed payloads it is the region pin.
  static ByteBuffer borrow(std::span<const std::uint8_t> data,
                           std::shared_ptr<const void> keepalive = {});

  [[nodiscard]] bool borrowed() const noexcept { return ext_ != nullptr; }

  void append(const void* data, std::size_t len);
  void append(std::span<const std::uint8_t> data) { append(data.data(), data.size()); }
  void append_byte(std::uint8_t b) {
    if (borrowed()) detach();
    bytes_.push_back(b);
  }

  // Appends `len` zero bytes and returns the offset where they start.
  std::size_t append_zeros(std::size_t len);

  // Pre-grows capacity for `extra` more bytes beyond the current size, so a
  // known-size burst of appends reallocates at most once instead of
  // geometrically.
  void reserve(std::size_t extra) {
    if (borrowed()) detach();
    bytes_.reserve(bytes_.size() + extra);
  }

  // Reads `len` bytes at the cursor into `out`, advancing the cursor.
  Status read(void* out, std::size_t len);

  // Returns a view of `len` bytes at the cursor and advances it.
  Result<std::span<const std::uint8_t>> read_view(std::size_t len);

  void reset_cursor() noexcept { cursor_ = 0; }
  [[nodiscard]] std::size_t cursor() const noexcept { return cursor_; }
  void set_cursor(std::size_t pos);

  [[nodiscard]] std::size_t size() const noexcept {
    return borrowed() ? ext_size_ : bytes_.size();
  }
  [[nodiscard]] std::size_t remaining() const noexcept { return size() - cursor_; }
  [[nodiscard]] bool exhausted() const noexcept { return cursor_ >= size(); }

  // Mutable access materialises a private copy of borrowed bytes first.
  [[nodiscard]] std::uint8_t* data() noexcept {
    if (borrowed()) detach();
    return bytes_.data();
  }
  [[nodiscard]] const std::uint8_t* data() const noexcept {
    return borrowed() ? ext_ : bytes_.data();
  }
  [[nodiscard]] std::span<const std::uint8_t> view() const noexcept {
    return {data(), size()};
  }

  // Overwrites bytes at an absolute offset (used for back-patching lengths).
  void overwrite(std::size_t offset, const void* data, std::size_t len);

  void clear() noexcept {
    bytes_.clear();
    ext_ = nullptr;
    ext_size_ = 0;
    keepalive_.reset();
    cursor_ = 0;
  }

  [[nodiscard]] std::vector<std::uint8_t>& bytes() noexcept {
    if (borrowed()) detach();
    return bytes_;
  }
  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept {
    // Borrowed buffers have no vector; const access materialises lazily is
    // not possible here, so detach in the non-const overload instead.
    return bytes_;
  }

  // Moves the owned bytes out (materialising borrowed bytes first) and
  // leaves the buffer empty. The sender-side hand-off into ShmArena.
  std::vector<std::uint8_t> take_bytes();

  // A buffer over [cursor, end). Borrowed source: shares the keepalive —
  // zero-copy. Owned source: copies (the stage has to outlive `this`).
  // Does not advance the cursor of `this`.
  [[nodiscard]] ByteBuffer slice_remaining() const;

  // Deep copies of owned, non-empty payload bytes since process start —
  // the "no accidental copies on the send path" test meter.
  static std::uint64_t owned_copy_count() noexcept {
    return owned_copies_.load(std::memory_order_relaxed);
  }

 private:
  void detach();  // borrowed -> owned private copy, cursor preserved

  static std::atomic<std::uint64_t> owned_copies_;

  std::vector<std::uint8_t> bytes_;
  const std::uint8_t* ext_ = nullptr;  // borrowed-mode storage
  std::size_t ext_size_ = 0;
  std::shared_ptr<const void> keepalive_;
  std::size_t cursor_ = 0;
};

}  // namespace srpc
