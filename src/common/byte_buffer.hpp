// Growable byte buffer with a separate read cursor. The single container
// used for wire payloads: XDR encoders append to it, decoders consume it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/status.hpp"

namespace srpc {

class ByteBuffer {
 public:
  ByteBuffer() = default;
  explicit ByteBuffer(std::vector<std::uint8_t> bytes) : bytes_(std::move(bytes)) {}

  void append(const void* data, std::size_t len);
  void append(std::span<const std::uint8_t> data) { append(data.data(), data.size()); }
  void append_byte(std::uint8_t b) { bytes_.push_back(b); }

  // Appends `len` zero bytes and returns the offset where they start.
  std::size_t append_zeros(std::size_t len);

  // Pre-grows capacity for `extra` more bytes beyond the current size, so a
  // known-size burst of appends reallocates at most once instead of
  // geometrically.
  void reserve(std::size_t extra) { bytes_.reserve(bytes_.size() + extra); }

  // Reads `len` bytes at the cursor into `out`, advancing the cursor.
  Status read(void* out, std::size_t len);

  // Returns a view of `len` bytes at the cursor and advances it.
  Result<std::span<const std::uint8_t>> read_view(std::size_t len);

  void reset_cursor() noexcept { cursor_ = 0; }
  [[nodiscard]] std::size_t cursor() const noexcept { return cursor_; }
  void set_cursor(std::size_t pos);

  [[nodiscard]] std::size_t size() const noexcept { return bytes_.size(); }
  [[nodiscard]] std::size_t remaining() const noexcept { return bytes_.size() - cursor_; }
  [[nodiscard]] bool exhausted() const noexcept { return cursor_ >= bytes_.size(); }

  [[nodiscard]] std::uint8_t* data() noexcept { return bytes_.data(); }
  [[nodiscard]] const std::uint8_t* data() const noexcept { return bytes_.data(); }
  [[nodiscard]] std::span<const std::uint8_t> view() const noexcept {
    return {bytes_.data(), bytes_.size()};
  }

  // Overwrites bytes at an absolute offset (used for back-patching lengths).
  void overwrite(std::size_t offset, const void* data, std::size_t len);

  void clear() noexcept {
    bytes_.clear();
    cursor_ = 0;
  }

  [[nodiscard]] std::vector<std::uint8_t>& bytes() noexcept { return bytes_; }
  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept { return bytes_; }

 private:
  std::vector<std::uint8_t> bytes_;
  std::size_t cursor_ = 0;
};

}  // namespace srpc
