// Status and Result<T>: error propagation without exceptions on hot paths.
//
// The runtime crosses a signal-handler boundary (see vm/fault_dispatcher.hpp)
// where throwing is not an option, so fallible operations return Status or
// Result<T>. Programming errors (violated preconditions) still throw
// std::logic_error at API boundaries.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>

namespace srpc {

enum class StatusCode : std::uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kUnavailable,
  kResourceExhausted,
  kProtocolError,
  kDeadlineExceeded,
  kSpaceDead,  // kUnavailable family: peer declared dead by the failure detector
  kConflict,   // WB_CONFLICT: write-back lost the session arbitration at a home
};

std::string_view to_string(StatusCode code) noexcept;

class [[nodiscard]] Status {
 public:
  Status() noexcept = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() noexcept { return Status(); }

  [[nodiscard]] bool is_ok() const noexcept { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const noexcept { return code_; }
  [[nodiscard]] const std::string& message() const noexcept { return message_; }

  // Human-readable "CODE: message" form for logs and test failures.
  [[nodiscard]] std::string to_string() const;

  // Throws std::runtime_error if not OK. For call sites (examples, tests)
  // where failure is unrecoverable.
  void check() const;

  friend bool operator==(const Status& a, const Status& b) noexcept {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline Status invalid_argument(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
inline Status not_found(std::string msg) {
  return Status(StatusCode::kNotFound, std::move(msg));
}
inline Status already_exists(std::string msg) {
  return Status(StatusCode::kAlreadyExists, std::move(msg));
}
inline Status failed_precondition(std::string msg) {
  return Status(StatusCode::kFailedPrecondition, std::move(msg));
}
inline Status out_of_range(std::string msg) {
  return Status(StatusCode::kOutOfRange, std::move(msg));
}
inline Status unimplemented(std::string msg) {
  return Status(StatusCode::kUnimplemented, std::move(msg));
}
inline Status internal_error(std::string msg) {
  return Status(StatusCode::kInternal, std::move(msg));
}
inline Status unavailable(std::string msg) {
  return Status(StatusCode::kUnavailable, std::move(msg));
}
inline Status resource_exhausted(std::string msg) {
  return Status(StatusCode::kResourceExhausted, std::move(msg));
}
inline Status protocol_error(std::string msg) {
  return Status(StatusCode::kProtocolError, std::move(msg));
}
inline Status deadline_exceeded(std::string msg) {
  return Status(StatusCode::kDeadlineExceeded, std::move(msg));
}
inline Status space_dead(std::string msg) {
  return Status(StatusCode::kSpaceDead, std::move(msg));
}
inline Status conflict(std::string msg) {
  return Status(StatusCode::kConflict, std::move(msg));
}

// Minimal expected<T, Status>. Value-or-error; accessing the wrong arm
// throws std::logic_error (programming error).
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    if (status_.is_ok()) {
      throw std::logic_error("Result constructed from OK status without value");
    }
  }

  [[nodiscard]] bool is_ok() const noexcept { return value_.has_value(); }
  explicit operator bool() const noexcept { return is_ok(); }

  [[nodiscard]] const Status& status() const noexcept { return status_; }

  [[nodiscard]] T& value() & {
    require_value();
    return *value_;
  }
  [[nodiscard]] const T& value() const& {
    require_value();
    return *value_;
  }
  [[nodiscard]] T&& value() && {
    require_value();
    return std::move(*value_);
  }

  [[nodiscard]] T value_or(T fallback) const& {
    return value_.has_value() ? *value_ : std::move(fallback);
  }

 private:
  void require_value() const {
    if (!value_.has_value()) {
      throw std::logic_error("Result::value() on error: " + status_.to_string());
    }
  }

  std::optional<T> value_;
  Status status_;
};

// Propagate-on-error helper for functions returning Status.
#define SRPC_RETURN_IF_ERROR(expr)                \
  do {                                            \
    ::srpc::Status srpc_status_ = (expr);         \
    if (!srpc_status_.is_ok()) return srpc_status_; \
  } while (false)

}  // namespace srpc
