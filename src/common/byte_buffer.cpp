#include "common/byte_buffer.hpp"

#include <cstring>
#include <utility>

namespace srpc {

std::atomic<std::uint64_t> ByteBuffer::owned_copies_{0};

ByteBuffer::ByteBuffer(const ByteBuffer& other)
    : bytes_(other.bytes_),
      ext_(other.ext_),
      ext_size_(other.ext_size_),
      keepalive_(other.keepalive_),
      cursor_(other.cursor_) {
  if (!other.borrowed() && !other.bytes_.empty()) {
    owned_copies_.fetch_add(1, std::memory_order_relaxed);
  }
}

ByteBuffer& ByteBuffer::operator=(const ByteBuffer& other) {
  if (this == &other) return *this;
  bytes_ = other.bytes_;
  ext_ = other.ext_;
  ext_size_ = other.ext_size_;
  keepalive_ = other.keepalive_;
  cursor_ = other.cursor_;
  if (!other.borrowed() && !other.bytes_.empty()) {
    owned_copies_.fetch_add(1, std::memory_order_relaxed);
  }
  return *this;
}

ByteBuffer ByteBuffer::borrow(std::span<const std::uint8_t> data,
                              std::shared_ptr<const void> keepalive) {
  ByteBuffer buf;
  buf.ext_ = data.data();
  buf.ext_size_ = data.size();
  buf.keepalive_ = std::move(keepalive);
  return buf;
}

void ByteBuffer::detach() {
  if (!borrowed()) return;
  bytes_.assign(ext_, ext_ + ext_size_);
  ext_ = nullptr;
  ext_size_ = 0;
  keepalive_.reset();
}

void ByteBuffer::append(const void* data, std::size_t len) {
  if (borrowed()) detach();
  const auto* p = static_cast<const std::uint8_t*>(data);
  bytes_.insert(bytes_.end(), p, p + len);
}

std::size_t ByteBuffer::append_zeros(std::size_t len) {
  if (borrowed()) detach();
  const std::size_t offset = bytes_.size();
  bytes_.resize(bytes_.size() + len, 0);
  return offset;
}

Status ByteBuffer::read(void* out, std::size_t len) {
  if (remaining() < len) {
    return out_of_range("ByteBuffer::read past end (" + std::to_string(len) +
                        " wanted, " + std::to_string(remaining()) + " left)");
  }
  std::memcpy(out, data() + cursor_, len);
  cursor_ += len;
  return Status::ok();
}

Result<std::span<const std::uint8_t>> ByteBuffer::read_view(std::size_t len) {
  if (remaining() < len) {
    return out_of_range("ByteBuffer::read_view past end");
  }
  std::span<const std::uint8_t> view(data() + cursor_, len);
  cursor_ += len;
  return view;
}

void ByteBuffer::set_cursor(std::size_t pos) {
  if (pos > size()) {
    throw std::logic_error("ByteBuffer::set_cursor out of range");
  }
  cursor_ = pos;
}

void ByteBuffer::overwrite(std::size_t offset, const void* src, std::size_t len) {
  if (borrowed()) detach();
  if (offset + len > bytes_.size()) {
    throw std::logic_error("ByteBuffer::overwrite out of range");
  }
  std::memcpy(bytes_.data() + offset, src, len);
}

std::vector<std::uint8_t> ByteBuffer::take_bytes() {
  if (borrowed()) detach();
  std::vector<std::uint8_t> out = std::move(bytes_);
  clear();
  return out;
}

ByteBuffer ByteBuffer::slice_remaining() const {
  if (borrowed()) {
    // Shares the keepalive: the slice pins the same arena region and costs
    // no bytes — this is how WB_PREPARE stages a view without copying.
    return ByteBuffer::borrow({data() + cursor_, remaining()}, keepalive_);
  }
  ByteBuffer out;
  out.bytes_.assign(data() + cursor_, data() + cursor_ + remaining());
  return out;
}

}  // namespace srpc
