#include "common/byte_buffer.hpp"

#include <cstring>

namespace srpc {

void ByteBuffer::append(const void* data, std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  bytes_.insert(bytes_.end(), p, p + len);
}

std::size_t ByteBuffer::append_zeros(std::size_t len) {
  const std::size_t offset = bytes_.size();
  bytes_.resize(bytes_.size() + len, 0);
  return offset;
}

Status ByteBuffer::read(void* out, std::size_t len) {
  if (remaining() < len) {
    return out_of_range("ByteBuffer::read past end (" + std::to_string(len) +
                        " wanted, " + std::to_string(remaining()) + " left)");
  }
  std::memcpy(out, bytes_.data() + cursor_, len);
  cursor_ += len;
  return Status::ok();
}

Result<std::span<const std::uint8_t>> ByteBuffer::read_view(std::size_t len) {
  if (remaining() < len) {
    return out_of_range("ByteBuffer::read_view past end");
  }
  std::span<const std::uint8_t> view(bytes_.data() + cursor_, len);
  cursor_ += len;
  return view;
}

void ByteBuffer::set_cursor(std::size_t pos) {
  if (pos > bytes_.size()) {
    throw std::logic_error("ByteBuffer::set_cursor out of range");
  }
  cursor_ = pos;
}

void ByteBuffer::overwrite(std::size_t offset, const void* data, std::size_t len) {
  if (offset + len > bytes_.size()) {
    throw std::logic_error("ByteBuffer::overwrite out of range");
  }
  std::memcpy(bytes_.data() + offset, data, len);
}

}  // namespace srpc
