// Byte ranges — the unit of sub-page dirty tracking.
//
// The coherency protocol's delta encoding (PROTOCOL.md "MODIFIED_DELTA")
// describes a modified object as a set of [offset, offset+len) ranges into
// its local image. These helpers diff an image against its twin snapshot,
// merge and intersect range sets, and fingerprint a (ranges, bytes) pair so
// the epoch tracker can tell "re-dirtied" from "already shipped".
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace srpc {

struct ByteRange {
  std::uint32_t offset = 0;
  std::uint32_t len = 0;

  [[nodiscard]] std::uint32_t end() const noexcept { return offset + len; }
  friend bool operator==(const ByteRange&, const ByteRange&) noexcept = default;
};

// Sorts by offset and coalesces overlapping or adjacent ranges in place.
void merge_ranges(std::vector<ByteRange>& ranges);

// Appends the ranges where `cur` differs from `twin` (both `len` bytes),
// offset by `base`. Gaps of fewer than `merge_gap` equal bytes between two
// differing runs are absorbed into one range — each range costs 8 bytes of
// wire header, so tiny islands are cheaper shipped together.
void diff_ranges(const std::uint8_t* cur, const std::uint8_t* twin,
                 std::uint32_t len, std::uint32_t base, std::uint32_t merge_gap,
                 std::vector<ByteRange>& out);

// True if any range in `a` overlaps any range in `b` (both sorted,
// non-overlapping — i.e. merged).
[[nodiscard]] bool ranges_intersect(std::span<const ByteRange> a,
                                    std::span<const ByteRange> b) noexcept;

// Total byte count covered by a merged range set.
[[nodiscard]] std::uint64_t ranges_bytes(std::span<const ByteRange> ranges) noexcept;

// FNV-1a over the ranges and the image bytes they cover. Never returns 0,
// so 0 can mean "no fingerprint yet".
[[nodiscard]] std::uint64_t fingerprint_ranges(const std::uint8_t* image,
                                               std::span<const ByteRange> ranges) noexcept;

}  // namespace srpc
