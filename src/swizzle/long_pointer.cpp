#include "swizzle/long_pointer.hpp"

#include <cstdio>

namespace srpc {

std::string LongPointer::to_string() const {
  if (is_null()) return "<null>";
  return "{space=" + std::to_string(space) + ", addr=0x" +
         [this] {
           char buf[20];
           std::snprintf(buf, sizeof buf, "%llx",
                         static_cast<unsigned long long>(address));
           return std::string(buf);
         }() +
         ", type=" + std::to_string(type) + "}";
}

void encode_long_pointer(xdr::Encoder& enc, const LongPointer& p) {
  enc.put_u32(p.space);
  enc.put_u64(p.address);
  enc.put_u32(p.type);
}

Result<LongPointer> decode_long_pointer(xdr::Decoder& dec) {
  LongPointer p;
  auto space = dec.get_u32();
  if (!space) return space.status();
  auto addr = dec.get_u64();
  if (!addr) return addr.status();
  auto type = dec.get_u32();
  if (!type) return type.status();
  p.space = space.value();
  p.address = addr.value();
  p.type = type.value();
  return p;
}

}  // namespace srpc
