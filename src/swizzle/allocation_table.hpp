// The data allocation table (paper §3.2, Table 1).
//
// "The runtime system maintains a data allocation table that records what
// data should be transferred from remote address spaces. The entries of the
// table are the page number, the offset within the page, and a long
// pointer."
//
// The table is also the swizzling index: forward lookups map a long pointer
// to its assigned cache location (so a pointer received twice swizzles to
// the same ordinary pointer), and the reverse interval map turns any cache
// address back into its long pointer — which is what makes unswizzling, and
// therefore nested RPC and callbacks, work (paper §3.3).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"
#include "swizzle/long_pointer.hpp"
#include "vm/page_arena.hpp"

namespace srpc {

struct AllocationEntry {
  LongPointer pointer;        // home identity of the datum
  PageIndex page = kInvalidPage;  // first page (large data spans several)
  std::uint32_t offset = 0;   // byte offset within the first page
  std::uint32_t size = 0;     // local-layout byte size of the datum
  std::uint8_t* local = nullptr;  // cache address (page base + offset)
};

class DataAllocationTable {
 public:
  DataAllocationTable() = default;
  DataAllocationTable(const DataAllocationTable&) = delete;
  DataAllocationTable& operator=(const DataAllocationTable&) = delete;

  // Records a new swizzled location. `page_count` registers the entry on
  // that many consecutive pages starting at entry.page (large data).
  // Fails if the long pointer or the local range is already present.
  Status insert(const AllocationEntry& entry, std::uint32_t page_count = 1);

  // Long pointer -> entry (nullptr if never swizzled here). Exact match on
  // the home base address.
  [[nodiscard]] const AllocationEntry* find(const LongPointer& pointer) const;

  // Entry whose home range [pointer.address, +size) contains `space`/`addr`
  // (interior remote pointers). nullptr if unknown.
  [[nodiscard]] const AllocationEntry* find_containing_home(SpaceId space,
                                                            std::uint64_t addr) const;

  // Cache address -> containing entry (supports interior addresses within
  // a datum). nullptr if the address belongs to no entry.
  [[nodiscard]] const AllocationEntry* find_by_local(const void* addr) const;

  // All entries allocated to one page, in offset order — exactly what a
  // page fault must fetch.
  [[nodiscard]] std::vector<const AllocationEntry*> entries_on_page(PageIndex page) const;

  // Re-keys a provisional long pointer (batched extended_malloc, paper
  // §3.5) to the home-assigned identity once the batch reply arrives.
  Status rebind(const LongPointer& provisional, const LongPointer& actual);

  // Drops an entry (extended_free): removed from every index; the cache
  // slot itself is not reused until session end.
  Status remove(const LongPointer& pointer);

  [[nodiscard]] std::size_t size() const noexcept { return live_; }

  void clear();

 private:
  // Deque-like stability: entry storage is only reclaimed wholesale at
  // session end, so raw pointers into storage_ are stable for the session.
  std::vector<std::unique_ptr<AllocationEntry>> storage_;
  std::size_t live_ = 0;
  std::unordered_map<LongPointer, AllocationEntry*, LongPointerHash> by_pointer_;
  std::map<std::uintptr_t, AllocationEntry*> by_local_;  // keyed by local base
  std::unordered_map<PageIndex, std::vector<AllocationEntry*>> by_page_;
  // keyed by (home space, home base address) for interval queries
  std::map<std::pair<SpaceId, std::uint64_t>, AllocationEntry*> by_home_;
};

}  // namespace srpc
