// Long-format pointers (paper §3.2).
//
// A long pointer locates data in the whole distributed system:
//   - an address space identifier,
//   - an address valid within that space, and
//   - a data type specifier (so heterogeneous spaces can rebuild the value).
// Hardware only dereferences ordinary pointers, so long pointers exist on
// the wire and in runtime tables; the Swizzler translates between the two.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/ids.hpp"
#include "common/status.hpp"
#include "types/type_descriptor.hpp"
#include "xdr/xdr_decoder.hpp"
#include "xdr/xdr_encoder.hpp"

namespace srpc {

struct LongPointer {
  SpaceId space = kInvalidSpaceId;
  std::uint64_t address = 0;  // valid within `space` (home address)
  TypeId type = kInvalidTypeId;  // type of the referenced data

  [[nodiscard]] bool is_null() const noexcept {
    return space == kInvalidSpaceId && address == 0;
  }
  static LongPointer null() noexcept { return {}; }

  friend bool operator==(const LongPointer& a, const LongPointer& b) noexcept {
    return a.space == b.space && a.address == b.address && a.type == b.type;
  }

  [[nodiscard]] std::string to_string() const;
};

struct LongPointerHash {
  std::size_t operator()(const LongPointer& p) const noexcept {
    std::size_t h = std::hash<std::uint64_t>{}(p.address);
    h ^= std::hash<std::uint32_t>{}(p.space) + 0x9E3779B9U + (h << 6) + (h >> 2);
    h ^= std::hash<std::uint32_t>{}(p.type) + 0x9E3779B9U + (h << 6) + (h >> 2);
    return h;
  }
};

// Wire form: space(u32) address(u64) type(u32) — 16 bytes.
void encode_long_pointer(xdr::Encoder& enc, const LongPointer& p);
Result<LongPointer> decode_long_pointer(xdr::Decoder& dec);

inline constexpr std::size_t kLongPointerWireSize = 16;

}  // namespace srpc
