#include "swizzle/allocation_table.hpp"

#include <algorithm>
#include <memory>

namespace srpc {

Status DataAllocationTable::insert(const AllocationEntry& entry,
                                   std::uint32_t page_count) {
  if (entry.pointer.is_null()) {
    return invalid_argument("allocation entry with null long pointer");
  }
  if (entry.local == nullptr || entry.size == 0 || page_count == 0) {
    return invalid_argument("allocation entry with empty local range");
  }
  if (by_pointer_.contains(entry.pointer)) {
    return already_exists("long pointer already swizzled: " + entry.pointer.to_string());
  }
  const auto base = reinterpret_cast<std::uintptr_t>(entry.local);
  // Overlap check against the nearest existing local entries.
  auto next = by_local_.lower_bound(base);
  if (next != by_local_.end() && next->first < base + entry.size) {
    return already_exists("local range overlaps existing entry");
  }
  if (next != by_local_.begin()) {
    auto prev = std::prev(next);
    if (prev->first + prev->second->size > base) {
      return already_exists("local range overlaps existing entry");
    }
  }
  // Overlap check against the nearest home ranges of the same space.
  const auto home_key = std::make_pair(entry.pointer.space, entry.pointer.address);
  auto hnext = by_home_.lower_bound(home_key);
  if (hnext != by_home_.end() && hnext->first.first == entry.pointer.space &&
      hnext->first.second < entry.pointer.address + entry.size) {
    return already_exists("home range overlaps existing entry");
  }
  if (hnext != by_home_.begin()) {
    auto hprev = std::prev(hnext);
    if (hprev->first.first == entry.pointer.space &&
        hprev->first.second + hprev->second->size > entry.pointer.address) {
      return already_exists("home range overlaps existing entry");
    }
  }

  storage_.push_back(std::make_unique<AllocationEntry>(entry));
  AllocationEntry* stored = storage_.back().get();
  ++live_;
  by_pointer_.emplace(stored->pointer, stored);
  by_local_.emplace(base, stored);
  by_home_.emplace(home_key, stored);
  for (std::uint32_t i = 0; i < page_count; ++i) {
    by_page_[stored->page + i].push_back(stored);
  }
  return Status::ok();
}

const AllocationEntry* DataAllocationTable::find(const LongPointer& pointer) const {
  auto it = by_pointer_.find(pointer);
  if (it != by_pointer_.end()) return it->second;
  // The type component is identity-irrelevant: a pointer received with a
  // different static type still designates the same datum.
  auto hit = by_home_.find(std::make_pair(pointer.space, pointer.address));
  return hit == by_home_.end() ? nullptr : hit->second;
}

const AllocationEntry* DataAllocationTable::find_containing_home(
    SpaceId space, std::uint64_t addr) const {
  auto it = by_home_.upper_bound(std::make_pair(space, addr));
  if (it == by_home_.begin()) return nullptr;
  --it;
  if (it->first.first != space) return nullptr;
  const AllocationEntry* entry = it->second;
  if (addr >= it->first.second + entry->size) return nullptr;
  return entry;
}

const AllocationEntry* DataAllocationTable::find_by_local(const void* addr) const {
  const auto target = reinterpret_cast<std::uintptr_t>(addr);
  auto it = by_local_.upper_bound(target);
  if (it == by_local_.begin()) return nullptr;
  --it;
  const AllocationEntry* entry = it->second;
  if (target >= it->first + entry->size) return nullptr;
  return entry;
}

std::vector<const AllocationEntry*> DataAllocationTable::entries_on_page(
    PageIndex page) const {
  std::vector<const AllocationEntry*> out;
  auto it = by_page_.find(page);
  if (it == by_page_.end()) return out;
  out.assign(it->second.begin(), it->second.end());
  std::sort(out.begin(), out.end(), [](const AllocationEntry* a, const AllocationEntry* b) {
    return a->local < b->local;
  });
  return out;
}

Status DataAllocationTable::rebind(const LongPointer& provisional,
                                   const LongPointer& actual) {
  auto it = by_pointer_.find(provisional);
  if (it == by_pointer_.end()) {
    return not_found("rebind: provisional pointer not in table: " +
                     provisional.to_string());
  }
  if (by_pointer_.contains(actual)) {
    return already_exists("rebind: target identity already present: " +
                          actual.to_string());
  }
  AllocationEntry* entry = it->second;
  by_pointer_.erase(it);
  by_home_.erase(std::make_pair(provisional.space, provisional.address));
  entry->pointer = actual;
  by_pointer_.emplace(actual, entry);
  by_home_.emplace(std::make_pair(actual.space, actual.address), entry);
  return Status::ok();
}

Status DataAllocationTable::remove(const LongPointer& pointer) {
  auto it = by_pointer_.find(pointer);
  if (it == by_pointer_.end()) {
    return not_found("remove: pointer not in table: " + pointer.to_string());
  }
  AllocationEntry* entry = it->second;
  by_pointer_.erase(it);
  by_home_.erase(std::make_pair(entry->pointer.space, entry->pointer.address));
  by_local_.erase(reinterpret_cast<std::uintptr_t>(entry->local));
  // Frees are rare; a sweep over the page index keeps insert() lean.
  for (auto& [page, list] : by_page_) {
    list.erase(std::remove(list.begin(), list.end(), entry), list.end());
  }
  --live_;
  return Status::ok();
}

void DataAllocationTable::clear() {
  storage_.clear();
  live_ = 0;
  by_pointer_.clear();
  by_local_.clear();
  by_page_.clear();
  by_home_.clear();
}

}  // namespace srpc
