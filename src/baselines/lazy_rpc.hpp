// Fully-lazy baseline (paper §2, "lazy method" / callbacks).
//
// "Whenever a remote pointer must be dereferenced during the execution of a
// callee program, the callee calls back the caller with a request to pass
// the contents of the pointer. ... a naive implementation of this approach
// might perform callbacks whenever a pointer is dereferenced, even if the
// pointer has already been dereferenced."
//
// This is the programmer-driven style the paper measures: the procedure
// receives a raw long pointer (no swizzling, no MMU) and every dereference
// is an explicit deref() round trip returning one object. Deliberately no
// caching — Figure 5's callback counts depend on it.
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "core/runtime.hpp"
#include "swizzle/long_pointer.hpp"

namespace srpc::lazy {

// One dereferenced object: its local-layout value with pointer fields
// zeroed, plus the long pointers those fields held (in field order).
struct LazyValue {
  LongPointer id;
  std::vector<std::uint8_t> image;
  std::vector<LongPointer> pointers;

  // Typed view of the image (host-arch spaces only).
  template <typename T>
  [[nodiscard]] const T* view() const {
    return reinterpret_cast<const T*>(image.data());
  }
};

class LazyClient {
 public:
  explicit LazyClient(Runtime& rt) : rt_(rt) {}

  // One callback: fetches the current value of `pointer` from its home.
  // No cache — calling twice costs two round trips, as in the paper.
  Result<LazyValue> deref(const LongPointer& pointer);

  [[nodiscard]] std::uint64_t callbacks() const noexcept { return callbacks_; }

 private:
  Runtime& rt_;
  std::uint64_t callbacks_ = 0;
};

// Caller-side helper: the long pointer for a local datum, to hand to a
// lazy procedure as an opaque capability.
Result<LongPointer> export_pointer(Runtime& rt, const void* p, TypeId type);

}  // namespace srpc::lazy
