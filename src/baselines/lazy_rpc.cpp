#include "baselines/lazy_rpc.hpp"

namespace srpc::lazy {

namespace {

// Decodes long-pointer fields by recording them and storing null locally.
class RecordingPointerCodec final : public PointerFieldCodec {
 public:
  explicit RecordingPointerCodec(std::vector<LongPointer>& out) : out_(out) {}

  Status encode(xdr::Encoder&, std::uint64_t, TypeId) override {
    return internal_error("RecordingPointerCodec used for encoding");
  }

  Result<std::uint64_t> decode(xdr::Decoder& dec, TypeId pointee) override {
    auto lp = decode_long_pointer(dec);
    if (!lp) return lp.status();
    if (lp.value().type == kInvalidTypeId && !lp.value().is_null()) {
      LongPointer fixed = lp.value();
      fixed.type = pointee;
      out_.push_back(fixed);
    } else {
      out_.push_back(lp.value());
    }
    return std::uint64_t{0};
  }

 private:
  std::vector<LongPointer>& out_;
};

}  // namespace

Result<LazyValue> LazyClient::deref(const LongPointer& pointer) {
  if (pointer.is_null()) {
    return invalid_argument("lazy deref of null pointer");
  }
  if (pointer.type == kInvalidTypeId) {
    return invalid_argument("lazy deref needs a typed long pointer");
  }
  ++callbacks_;
  auto reply = rt_.deref_remote(pointer);
  if (!reply) return reply.status();

  LazyValue value;
  value.id = pointer;
  auto layout = rt_.layouts().layout_of(rt_.arch(), pointer.type);
  if (!layout) return layout.status();
  value.image.assign(layout.value()->size, 0);

  xdr::Decoder dec(reply.value());
  RecordingPointerCodec pointer_codec(value.pointers);
  SRPC_RETURN_IF_ERROR(rt_.codec().decode(rt_.arch(), pointer.type,
                                          value.image.data(), dec, pointer_codec));
  return value;
}

Result<LongPointer> export_pointer(Runtime& rt, const void* p, TypeId type) {
  if (p == nullptr) return LongPointer::null();
  return rt.unswizzle(reinterpret_cast<std::uint64_t>(p), type);
}

}  // namespace srpc::lazy
