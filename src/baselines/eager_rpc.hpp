// Fully-eager baseline (paper §2, "eager method").
//
// "One straightforward way to pass a pointer to a remote procedure is to
// take the closure of the pointer on the caller side and pass it to the
// remote procedure as an input RPC argument. ... Sun Microsystems' rpcgen
// system passes recursive data structures such as lists or trees in this
// way."
//
// The inline encoding is rpcgen's: every pointer field becomes a 4-byte
// presence flag followed (recursively) by the pointee's value, so a
// 16-byte tree node costs exactly 16 wire bytes and the paper's 32 767-node
// tree ships as 524 272 bytes. The callee materialises a private local copy
// in its managed heap; nothing is shared, nothing is written back — the
// eager method's semantics, with its strengths and weaknesses, exactly.
//
// Like rpcgen, the encoding cannot represent cycles (it fails cleanly
// rather than recursing forever) and sharing is lost: a DAG duplicates.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "core/address_space.hpp"
#include "core/runtime.hpp"

namespace srpc::eager {

// Encodes `src` (of `type`, laid out per rt's arch) and its entire pointer
// closure inline.
Status encode_inline(Runtime& rt, TypeId type, const void* src, xdr::Encoder& enc);

// Decodes an inline closure, allocating every datum in rt's managed heap.
// Returns the root copy (nullptr for a null root). The caller owns the
// copies (they are ordinary heap data).
Result<void*> decode_inline(Runtime& rt, TypeId type, xdr::Decoder& dec);

// An eager procedure: receives the local copy of the root plus two scalar
// knobs (enough for every workload in the paper's evaluation).
using Handler =
    std::function<Result<std::int64_t>(CallContext&, void* root, std::int64_t a,
                                       std::int64_t b)>;

// Binds an eager procedure on `space` for roots of `root_type`.
Status bind(AddressSpace& space, const std::string& name, TypeId root_type,
            Handler handler);

// Calls an eager procedure: marshals root's whole closure with the call.
Result<std::int64_t> call(Runtime& rt, SpaceId target, const std::string& name,
                          TypeId root_type, const void* root, std::int64_t a,
                          std::int64_t b);

}  // namespace srpc::eager
