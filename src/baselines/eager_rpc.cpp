#include "baselines/eager_rpc.hpp"

#include <unordered_set>

#include "common/logging.hpp"
#include "core/closure.hpp"

namespace srpc::eager {

namespace {

// rpcgen-style pointer field: 4-byte presence flag + inline pointee value.
class InlinePointerEncoder final : public PointerFieldCodec {
 public:
  explicit InlinePointerEncoder(Runtime& rt) : rt_(rt) {}

  Status encode(xdr::Encoder& enc, std::uint64_t ordinary, TypeId pointee) override {
    if (ordinary == 0) {
      enc.put_bool(false);
      return Status::ok();
    }
    enc.put_bool(true);
    if (!path_.insert(ordinary).second) {
      return invalid_argument(
          "eager marshalling cannot encode cyclic structures (rpcgen semantics)");
    }
    Status s = rt_.codec().encode(rt_.arch(), pointee,
                                  reinterpret_cast<const void*>(ordinary), enc, *this);
    path_.erase(ordinary);
    return s;
  }

  Result<std::uint64_t> decode(xdr::Decoder&, TypeId) override {
    return internal_error("InlinePointerEncoder used for decoding");
  }

 private:
  Runtime& rt_;
  std::unordered_set<std::uint64_t> path_;  // DFS path: cycle detection only
};

class InlinePointerDecoder final : public PointerFieldCodec {
 public:
  explicit InlinePointerDecoder(Runtime& rt) : rt_(rt) {}

  Status encode(xdr::Encoder&, std::uint64_t, TypeId) override {
    return internal_error("InlinePointerDecoder used for encoding");
  }

  Result<std::uint64_t> decode(xdr::Decoder& dec, TypeId pointee) override {
    auto present = dec.get_bool();
    if (!present) return present.status();
    if (!present.value()) return std::uint64_t{0};
    auto copy = rt_.heap().allocate(pointee, 1);
    if (!copy) return copy.status();
    SRPC_RETURN_IF_ERROR(
        rt_.codec().decode(rt_.arch(), pointee, copy.value(), dec, *this));
    return reinterpret_cast<std::uint64_t>(copy.value());
  }

 private:
  Runtime& rt_;
};

// Recursively frees a decoded local copy (acyclic by construction).
Status free_closure(Runtime& rt, TypeId type, void* root) {
  if (root == nullptr) return Status::ok();
  std::vector<std::pair<TypeId, void*>> children;
  SRPC_RETURN_IF_ERROR(walk_pointer_fields(
      rt.registry(), rt.layouts(), rt.arch(), type, root,
      [&](std::uint64_t target, TypeId pointee) -> Status {
        children.emplace_back(pointee, reinterpret_cast<void*>(target));
        return Status::ok();
      }));
  for (auto& [pointee, child] : children) {
    SRPC_RETURN_IF_ERROR(free_closure(rt, pointee, child));
  }
  return rt.heap().free(root);
}

}  // namespace

Status encode_inline(Runtime& rt, TypeId type, const void* src, xdr::Encoder& enc) {
  InlinePointerEncoder pointer_codec(rt);
  return rt.codec().encode(rt.arch(), type, src, enc, pointer_codec);
}

Result<void*> decode_inline(Runtime& rt, TypeId type, xdr::Decoder& dec) {
  InlinePointerDecoder pointer_codec(rt);
  auto root = pointer_codec.decode(dec, type);
  if (!root) return root.status();
  return reinterpret_cast<void*>(static_cast<std::uintptr_t>(root.value()));
}

Status bind(AddressSpace& space, const std::string& name, TypeId root_type,
            Handler handler) {
  RawHandler raw = [root_type, handler = std::move(handler)](
                       CallContext& ctx, ByteBuffer& in, ByteBuffer& out,
                       std::vector<std::uint64_t>&) -> Status {
    xdr::Decoder dec(in);
    InlinePointerDecoder pointer_codec(ctx.runtime);
    auto root = pointer_codec.decode(dec, root_type);
    if (!root) return root.status();
    auto a = dec.get_i64();
    if (!a) return a.status();
    auto b = dec.get_i64();
    if (!b) return b.status();

    void* root_copy = reinterpret_cast<void*>(root.value());
    auto result = handler(ctx, root_copy, a.value(), b.value());

    // The local copy is transient (the eager method shares nothing).
    Status freed = free_closure(ctx.runtime, root_type, root_copy);
    if (!freed.is_ok()) {
      SRPC_WARN << "eager copy cleanup: " << freed.to_string();
    }
    if (!result) return result.status();
    xdr::Encoder enc(out);
    enc.put_i64(result.value());
    return Status::ok();
  };
  return space.run([&](Runtime& rt) { return rt.services().bind(name, std::move(raw)); });
}

Result<std::int64_t> call(Runtime& rt, SpaceId target, const std::string& name,
                          TypeId root_type, const void* root, std::int64_t a,
                          std::int64_t b) {
  ByteBuffer args;
  xdr::Encoder enc(args);
  InlinePointerEncoder pointer_codec(rt);
  SRPC_RETURN_IF_ERROR(pointer_codec.encode(
      enc, reinterpret_cast<std::uint64_t>(root), root_type));
  enc.put_i64(a);
  enc.put_i64(b);
  auto reply = rt.call_raw(target, name, std::move(args), {});
  if (!reply) return reply.status();
  xdr::Decoder dec(reply.value());
  auto result = dec.get_i64();
  if (!result) return result.status();
  return result.value();
}

}  // namespace srpc::eager
