// ServiceRegistry — remote procedures bound in one address space.
//
// Procedures are stored as raw handlers over wire buffers; the typed
// stub layer (core/marshal.hpp) wraps application functions into these,
// exactly as a conventional stub generator would emit them.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/byte_buffer.hpp"
#include "common/ids.hpp"
#include "common/status.hpp"

namespace srpc {

class Runtime;

// Everything a procedure body may need from the runtime: the executing
// space's services (heap, extended_malloc, nested calls) plus call
// provenance.
struct CallContext {
  Runtime& runtime;
  SessionId session = kNoSession;
  SpaceId caller = kInvalidSpaceId;
};

// `result_roots` receives the local addresses of any pointers the handler
// returns, so the runtime can attach their eager closure to the RETURN
// exactly as it does for call arguments.
using RawHandler = std::function<Status(CallContext&, ByteBuffer& args,
                                        ByteBuffer& results,
                                        std::vector<std::uint64_t>& result_roots)>;

class ServiceRegistry {
 public:
  ServiceRegistry() = default;
  ServiceRegistry(const ServiceRegistry&) = delete;
  ServiceRegistry& operator=(const ServiceRegistry&) = delete;

  Status bind(const std::string& name, RawHandler handler);

  // nullptr if the procedure is unknown.
  [[nodiscard]] const RawHandler* find(const std::string& name) const;

  [[nodiscard]] std::size_t procedure_count() const noexcept { return handlers_.size(); }

 private:
  std::unordered_map<std::string, RawHandler> handlers_;
};

}  // namespace srpc
