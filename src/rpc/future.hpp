// Future<T>/Promise<T> — the async completion primitive for pipelined RPC.
//
// The runtime keeps the paper's single-active-thread execution model: there
// is no completion thread. A Future makes progress only when its owner
// blocks in get(), which drives a *pump* — a callback that processes one
// unit of endpoint work (typically RpcEndpoint::pump_once through the
// runtime's dispatcher). While one future pumps, replies for every other
// outstanding seq are routed to their completion slots too, which is where
// the overlap of a pipelined call chain comes from: N requests on the wire,
// one thread collecting them in any order.
//
// State machine (FutureState):
//   pending --set_value/set_error--> ready   --get--> consumed
//   pending --~Promise-------------> abandoned --get--> UNAVAILABLE
//   pending --get(deadline passes)--> (still pending; get returns
//                                      DEADLINE_EXCEEDED, retry allowed)
// get() is one-shot on success/abandon: the result is moved out and the
// future becomes invalid. Dropping an unconsumed Future fires its on_drop
// hook (the runtime uses it to cancel the endpoint slot so a late reply is
// absorbed as stale instead of leaking a completion slot).
//
// Single-threaded by design: a Future/Promise pair lives on one space's
// worker thread, like everything else in a session. It is NOT a
// std::future; there is no cross-thread wait.
#pragma once

#include <chrono>
#include <functional>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "common/status.hpp"

namespace srpc {

// Drives pending completions forward until `deadline` or until one unit of
// work was processed. Returns non-OK only for hard failures (closed
// mailbox, dispatcher error); DEADLINE_EXCEEDED means "nothing arrived yet".
using FuturePump = std::function<Status(std::chrono::steady_clock::time_point)>;

template <typename T>
struct FutureState {
  std::optional<Result<T>> value;
  bool abandoned = false;
  FuturePump pump;               // empty: only set_value can complete it
  std::function<void()> on_drop; // fired when the future dies unconsumed
};

template <typename T>
class Future;

template <typename T>
class Promise {
 public:
  Promise() : state_(std::make_shared<FutureState<T>>()) {}
  Promise(Promise&&) noexcept = default;
  Promise& operator=(Promise&& other) noexcept {
    if (this != &other) {
      abandon();
      state_ = std::move(other.state_);
    }
    return *this;
  }
  Promise(const Promise&) = delete;
  Promise& operator=(const Promise&) = delete;
  ~Promise() { abandon(); }

  Future<T> get_future() { return Future<T>(state_); }

  void set_value(T value) { set_result(Result<T>(std::move(value))); }
  void set_error(Status status) { set_result(Result<T>(std::move(status))); }
  void set_result(Result<T> result) {
    if (state_ && !state_->value) state_->value = std::move(result);
  }

  [[nodiscard]] bool fulfilled() const {
    return state_ && state_->value.has_value();
  }

  // Wires the blocking drive and the cancellation hook into the shared
  // state (seen by the Future side). Set before handing out get_future()
  // results to consumers that will block.
  void set_pump(FuturePump pump) {
    if (state_) state_->pump = std::move(pump);
  }
  void set_on_drop(std::function<void()> on_drop) {
    if (state_) state_->on_drop = std::move(on_drop);
  }

 private:
  void abandon() {
    if (state_ && !state_->value) state_->abandoned = true;
    state_.reset();
  }

  std::shared_ptr<FutureState<T>> state_;
};

template <typename T>
class Future {
 public:
  Future() = default;
  explicit Future(std::shared_ptr<FutureState<T>> state) : state_(std::move(state)) {}
  Future(Future&&) noexcept = default;
  Future& operator=(Future&& other) noexcept {
    if (this != &other) {
      drop();
      state_ = std::move(other.state_);
    }
    return *this;
  }
  Future(const Future&) = delete;
  Future& operator=(const Future&) = delete;
  ~Future() { drop(); }

  // A future is valid until its result has been consumed (or it was
  // default-constructed / moved from).
  [[nodiscard]] bool valid() const noexcept { return state_ != nullptr; }
  [[nodiscard]] bool ready() const noexcept {
    return state_ && (state_->value.has_value() || state_->abandoned);
  }

  // Blocks (pumping the endpoint) until the result is ready, the promise
  // is abandoned, or `deadline` passes. On a deadline the future stays
  // valid and get() may be retried; every other outcome consumes it.
  Result<T> get(std::chrono::steady_clock::time_point deadline =
                    std::chrono::steady_clock::time_point::max()) {
    if (!state_) {
      return failed_precondition("future already consumed (get() is one-shot)");
    }
    while (true) {
      if (state_->value) {
        Result<T> out = std::move(*state_->value);
        state_.reset();  // consumed: on_drop must not fire
        return out;
      }
      if (state_->abandoned) {
        state_.reset();
        return unavailable("promise abandoned before completion");
      }
      if (!state_->pump) {
        return failed_precondition("future is pending and has no pump to drive");
      }
      if (std::chrono::steady_clock::now() >= deadline) {
        return deadline_exceeded("future not ready before deadline");
      }
      Status pumped = state_->pump(deadline);
      if (!pumped.is_ok()) {
        if (state_->value || state_->abandoned) {
          continue;  // the failure also settled this future; report that
        }
        if (pumped.code() == StatusCode::kDeadlineExceeded) {
          return deadline_exceeded("future not ready before deadline");
        }
        drop();  // hard failure: release the completion slot too
        return pumped;
      }
    }
  }

 private:
  void drop() {
    if (state_ && state_->on_drop && !state_->value.has_value()) {
      state_->on_drop();
    }
    state_.reset();
  }

  std::shared_ptr<FutureState<T>> state_;
};

// Collects every future in order. Because get() pumps the shared endpoint,
// replies that land while waiting on futures[0] complete later futures in
// place — total wait is the slowest outstanding request, not the sum.
// Failures (including per-future deadline misses) are recorded per slot,
// never short-circuited, so every in-flight request is settled on return.
template <typename T>
std::vector<Result<T>> when_all(std::vector<Future<T>>& futures,
                                std::chrono::steady_clock::time_point deadline =
                                    std::chrono::steady_clock::time_point::max()) {
  std::vector<Result<T>> results;
  results.reserve(futures.size());
  for (auto& f : futures) {
    results.push_back(f.get(deadline));
  }
  return results;
}

}  // namespace srpc
