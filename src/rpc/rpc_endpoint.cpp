#include "rpc/rpc_endpoint.hpp"

#include "common/logging.hpp"

namespace srpc {

Status RpcEndpoint::send(Message msg) {
  msg.from = self_;
  return transport_.send(std::move(msg));
}

Result<Message> RpcEndpoint::await_reply(MessageType reply_type, std::uint64_t seq,
                                         const Dispatcher& serve) {
  while (true) {
    auto item = mailbox_.pop();
    if (!item) return item.status();

    if (std::holds_alternative<Task>(item.value())) {
      // User code posted from outside while we're mid-call: run it when the
      // space is next idle, not on this re-entrant stack.
      deferred_.push_back(std::move(item).value());
      continue;
    }

    Message msg = std::get<Message>(std::move(item).value());
    const bool matches =
        msg.seq == seq && (msg.type == reply_type || msg.type == MessageType::kError);
    if (matches) {
      return msg;
    }
    if (serve) {
      Status served = serve(std::move(msg));
      if (!served.is_ok()) return served;
    } else {
      SRPC_DEBUG << "deferring " << to_string(msg.type) << " from " << msg.from
                 << " while awaiting " << to_string(reply_type) << " seq=" << seq;
      deferred_.push_back(std::move(msg));
    }
  }
}

Result<MailItem> RpcEndpoint::next() {
  if (!deferred_.empty()) {
    MailItem item = std::move(deferred_.front());
    deferred_.pop_front();
    return item;
  }
  return mailbox_.pop();
}

}  // namespace srpc
