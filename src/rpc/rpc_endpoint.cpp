#include "rpc/rpc_endpoint.hpp"

#include <algorithm>
#include <string>

#include "common/logging.hpp"

namespace srpc {

namespace {

using Clock = std::chrono::steady_clock;

std::string describe_wait(MessageType reply_type, std::uint64_t seq) {
  return std::string(to_string(reply_type)) + " seq=" + std::to_string(seq);
}

}  // namespace

Status RpcEndpoint::send(Message msg) {
  msg.from = self_;
  return transport_.send(std::move(msg));
}

Result<Message> RpcEndpoint::await_reply(MessageType reply_type, std::uint64_t seq,
                                         const Dispatcher& serve,
                                         Clock::time_point deadline) {
  while (true) {
    auto item = mailbox_.pop_until(deadline);
    if (!item) {
      if (item.status().code() == StatusCode::kDeadlineExceeded) {
        return deadline_exceeded("no " + describe_wait(reply_type, seq) +
                                 " before deadline");
      }
      return item.status();
    }

    if (std::holds_alternative<Task>(item.value())) {
      // User code posted from outside while we're mid-call: run it when the
      // space is next idle, not on this re-entrant stack.
      deferred_.push_back(std::move(item).value());
      continue;
    }

    Message msg = std::get<Message>(std::move(item).value());
    const bool matches =
        msg.seq == seq && (msg.type == reply_type || msg.type == MessageType::kError);
    if (matches) {
      return msg;
    }
    if (serve) {
      Status served = serve(std::move(msg));
      if (!served.is_ok()) return served;
    } else {
      SRPC_DEBUG << "deferring " << to_string(msg.type) << " from " << msg.from
                 << " while awaiting " << to_string(reply_type) << " seq=" << seq;
      deferred_.push_back(std::move(msg));
    }
  }
}

Result<Message> RpcEndpoint::roundtrip(Message msg, MessageType reply_type,
                                       const Dispatcher& serve,
                                       const TimeoutConfig& cfg, bool idempotent) {
  const std::uint32_t attempts =
      idempotent ? std::max<std::uint32_t>(1, cfg.max_attempts) : 1;
  const std::uint64_t seq = msg.seq;
  const auto deadline = cfg.unbounded_deadline()
                            ? Clock::time_point::max()
                            : Clock::now() + cfg.request_deadline;

  // Keep a retransmittable copy only when we may actually resend.
  std::optional<Message> original;
  if (attempts > 1) original = msg;

  SRPC_RETURN_IF_ERROR(send(std::move(msg)));

  auto backoff = cfg.attempt_timeout;
  for (std::uint32_t attempt = 1;; ++attempt) {
    // Intermediate attempts wait one backoff step; the last attempt gets
    // whatever remains of the overall deadline.
    auto attempt_deadline = deadline;
    if (attempt < attempts && !cfg.unbounded_attempts()) {
      attempt_deadline = std::min(deadline, Clock::now() + backoff);
    }

    auto reply = await_reply(reply_type, seq, serve, attempt_deadline);
    if (reply) return reply;
    if (reply.status().code() != StatusCode::kDeadlineExceeded) {
      return reply;  // transport/dispatch failure: retrying won't help
    }

    const bool out_of_time =
        deadline != Clock::time_point::max() && Clock::now() >= deadline;
    if (attempt >= attempts || out_of_time || !original.has_value()) {
      return deadline_exceeded(describe_wait(reply_type, seq) + " not received after " +
                               std::to_string(attempt) + " attempt(s)");
    }

    ++retransmits_;
    SRPC_DEBUG << "retransmitting for " << describe_wait(reply_type, seq)
               << " (attempt " << attempt + 1 << "/" << attempts << ")";
    if (telemetry_ != nullptr) {
      telemetry_->count("rpc.retransmits",
                        std::string("kind=") + std::string(to_string(original->type)));
      if (telemetry_->tracing()) {
        // Attaches to the open client span for this roundtrip, so a slow
        // call is attributable to retry backoff at a glance.
        telemetry_->annotate("retransmit " + describe_wait(reply_type, seq) +
                             " attempt " + std::to_string(attempt + 1) + "/" +
                             std::to_string(attempts));
      }
    }
    Message again = *original;
    SRPC_RETURN_IF_ERROR(send(std::move(again)));
    backoff = std::min(backoff * 2, cfg.max_backoff);
  }
}

Result<MailItem> RpcEndpoint::next() {
  if (!deferred_.empty()) {
    MailItem item = std::move(deferred_.front());
    deferred_.pop_front();
    return item;
  }
  return mailbox_.pop();
}

}  // namespace srpc
