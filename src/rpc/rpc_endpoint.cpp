#include "rpc/rpc_endpoint.hpp"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.hpp"
#include "common/rng.hpp"

namespace srpc {

namespace {

using Clock = std::chrono::steady_clock;

std::string describe_wait(MessageType reply_type, std::uint64_t seq) {
  return std::string(to_string(reply_type)) + " seq=" + std::to_string(seq);
}

}  // namespace

void RpcEndpoint::prepare(Message& msg) {
  msg.from = self_;
  // Incarnation stamps are refreshed on every send — a retransmit after
  // the destination rejoined must carry the updated belief.
  if (stamp_) stamp_(msg);
  // The lane passes an already-elevated message through untouched, but it
  // meters every byte-lane payload it sees — prepare each message exactly
  // once (retransmits re-enter via send() with a shm-backed original, which
  // is the pass-through case).
  if (payload_lane_) payload_lane_(msg);
  if (telemetry_ != nullptr) {
    telemetry_->flight().frame(FlightEventKind::kFrameSend,
                               telemetry_->now_ns(),
                               static_cast<std::uint8_t>(msg.type), msg.to,
                               msg.session, msg.seq);
  }
}

Status RpcEndpoint::send(Message msg) {
  prepare(msg);
  return transport_.send(std::move(msg));
}

std::chrono::nanoseconds RpcEndpoint::next_backoff(const Pending& p) const {
  const auto& cfg = p.cfg;
  if (cfg.backoff_jitter <= 0.0) {
    return std::min(p.backoff * 2, cfg.max_backoff);  // legacy doubling
  }
  // Decorrelated jitter: draw the next wait from
  // [base, base + jitter*(3*prev - base)]. Clients that lost requests to
  // the same partition desynchronise instead of re-storming the healed
  // link in lockstep. The draw is keyed by {seed, seq, attempt}, so a
  // fixed-seed run replays identically.
  Rng rng(cfg.jitter_seed ^ (p.seq * 0x9E3779B97F4A7C15ULL) ^ p.attempt);
  const double u = rng.next_double() * cfg.backoff_jitter;
  const auto base = cfg.attempt_timeout;
  const auto spread = 3 * p.backoff - base;  // > 0: backoff starts at base
  const auto jittered =
      base + std::chrono::nanoseconds(
                 static_cast<std::int64_t>(u * static_cast<double>(spread.count())));
  return std::min(jittered, cfg.max_backoff);
}

void RpcEndpoint::arm_attempt_timer(Pending& p) {
  // Intermediate attempts wait one backoff step; the last attempt gets
  // whatever remains of the overall deadline.
  p.attempt_deadline = p.deadline;
  if (!p.bare && p.attempt < p.attempts && !p.cfg.unbounded_attempts()) {
    p.attempt_deadline = std::min(p.deadline, Clock::now() + p.backoff);
  }
}

void RpcEndpoint::complete(const std::shared_ptr<Pending>& p, Result<Message> outcome) {
  if (p->done) return;
  p->done = true;
  p->outcome = std::move(outcome);
  if (p->on_complete) p->on_complete(*p->outcome);
  if (p->detached) pending_.erase(p->seq);
}

void RpcEndpoint::settle_all(const Status& status) {
  std::vector<std::shared_ptr<Pending>> open;
  open.reserve(pending_.size());
  for (auto& [seq, p] : pending_) {
    if (!p->done) open.push_back(p);
  }
  for (auto& p : open) complete(p, status);
}

bool RpcEndpoint::route_reply(Message& msg) {
  auto it = pending_.find(msg.seq);
  if (it == pending_.end()) return false;
  auto p = it->second;
  if (p->done) return false;
  if (msg.type != p->reply_type && msg.type != MessageType::kError) return false;
  complete(p, std::move(msg));
  return true;
}

void RpcEndpoint::expire_timers(Clock::time_point now) {
  // Snapshot first: complete() (and a detached slot's self-erase) mutates
  // the table.
  std::vector<std::shared_ptr<Pending>> due;
  for (auto& [seq, p] : pending_) {
    if (!p->done && p->attempt_deadline <= now) due.push_back(p);
  }
  for (auto& p : due) {
    if (p->done) continue;
    if (p->bare) {
      complete(p, deadline_exceeded("no " + p->describe + " before deadline"));
      continue;
    }
    const bool out_of_time =
        p->deadline != Clock::time_point::max() && now >= p->deadline;
    if (p->attempt >= p->attempts || out_of_time || !p->original.has_value()) {
      complete(p, deadline_exceeded(p->describe + " not received after " +
                                    std::to_string(p->attempt) + " attempt(s)"));
      continue;
    }

    ++retransmits_;
    SRPC_DEBUG << "retransmitting for " << p->describe << " (attempt "
               << p->attempt + 1 << "/" << p->attempts << ")";
    if (telemetry_ != nullptr) {
      telemetry_->flight().frame(
          FlightEventKind::kRetransmit, telemetry_->now_ns(),
          static_cast<std::uint8_t>(p->original->type), p->dest,
          p->original->session, p->seq,
          static_cast<std::int64_t>(p->attempt + 1));
      telemetry_->count("rpc.retransmits",
                        std::string("kind=") + std::string(to_string(p->original->type)));
      if (telemetry_->tracing()) {
        if (p->on_retransmit) {
          // Async slots annotate their own (detached) span.
          p->on_retransmit(p->attempt + 1, p->attempts);
        } else {
          // Attaches to the open client span for this roundtrip, so a slow
          // call is attributable to retry backoff at a glance.
          telemetry_->annotate("retransmit " + p->describe + " attempt " +
                               std::to_string(p->attempt + 1) + "/" +
                               std::to_string(p->attempts));
        }
      }
    }
    Message again = *p->original;
    Status sent = send(std::move(again));
    if (!sent.is_ok()) {
      complete(p, sent);
      continue;
    }
    p->backoff = next_backoff(*p);
    ++p->attempt;
    arm_attempt_timer(*p);
  }
}

Result<std::uint64_t> RpcEndpoint::issue(Message msg, MessageType reply_type,
                                         IssueOptions opts) {
  const std::uint64_t seq = msg.seq;
  if (pending_.find(seq) != pending_.end()) {
    return already_exists("seq " + std::to_string(seq) +
                          " already has a pending request (one waiter per seq)");
  }
  auto p = std::make_shared<Pending>();
  p->reply_type = reply_type;
  p->seq = seq;
  p->dest = msg.to;
  p->describe = describe_wait(reply_type, seq);
  p->detached = opts.detached;
  p->cfg = opts.cfg;
  p->attempts = opts.idempotent ? std::max<std::uint32_t>(1, opts.cfg.max_attempts) : 1;
  p->deadline = opts.cfg.unbounded_deadline()
                    ? Clock::time_point::max()
                    : Clock::now() + opts.cfg.request_deadline;
  p->backoff = opts.cfg.attempt_timeout;
  // Prepare (stamp the sender, elevate the payload onto the shm lane)
  // BEFORE keeping the retransmittable copy: an elevated original is a
  // descriptor + refcount bump, so retransmittable requests stay on the
  // move-only/zero-copy path. The direct transport_ send below must not go
  // through send(), which would prepare — and meter — the message twice.
  prepare(msg);
  if (p->attempts > 1) p->original = msg;
  p->on_complete = std::move(opts.on_complete);
  p->on_retransmit = std::move(opts.on_retransmit);

  SRPC_RETURN_IF_ERROR(transport_.send(std::move(msg)));
  arm_attempt_timer(*p);
  pending_.emplace(seq, std::move(p));
  return seq;
}

Status RpcEndpoint::pump_once(Clock::time_point deadline, const Dispatcher& serve) {
  auto wake = deadline;
  for (auto& [seq, p] : pending_) {
    if (!p->done) wake = std::min(wake, p->attempt_deadline);
  }

  auto item = mailbox_.pop_until(wake);
  if (!item) {
    if (item.status().code() == StatusCode::kDeadlineExceeded) {
      const auto now = Clock::now();
      expire_timers(now);
      if (now >= deadline) {
        return deadline_exceeded("pump deadline reached");
      }
      return Status::ok();
    }
    if (item.status().code() == StatusCode::kUnavailable) {
      // Closed mailbox: nothing pending can ever complete.
      settle_all(item.status());
    }
    return item.status();
  }

  if (std::holds_alternative<Task>(item.value())) {
    // User code posted from outside while we're mid-call: run it when the
    // space is next idle, not on this re-entrant stack.
    deferred_.push_back(std::move(item).value());
    return Status::ok();
  }

  Message msg = std::get<Message>(std::move(item).value());
  if (delivery_hook_) delivery_hook_(msg);
  // Receiver edge of the shm lane: decoders see the region's bytes as an
  // ordinary (borrowed) payload, whether this is a routed reply or served
  // traffic. The buffer shares the view's pin.
  msg.bind_view_payload();
  if (telemetry_ != nullptr) {
    telemetry_->flight().frame(FlightEventKind::kFrameRecv,
                               telemetry_->now_ns(),
                               static_cast<std::uint8_t>(msg.type), msg.from,
                               msg.session, msg.seq);
  }
  if (fence_ && fence_(msg)) return Status::ok();  // stale incarnation
  if (route_reply(msg)) return Status::ok();
  if (serve) {
    return serve(std::move(msg));
  }
  SRPC_DEBUG << "deferring " << to_string(msg.type) << " from " << msg.from
             << " while pumping " << pending_.size() << " pending slot(s)";
  deferred_.push_back(std::move(msg));
  return Status::ok();
}

Result<Message> RpcEndpoint::collect(std::uint64_t seq, const Dispatcher& serve) {
  auto it = pending_.find(seq);
  if (it == pending_.end()) {
    return failed_precondition("no pending request for seq " + std::to_string(seq));
  }
  auto p = it->second;
  if (p->claimed) {
    return already_exists("seq " + std::to_string(seq) +
                          " already has a waiter (one collector per seq)");
  }
  p->claimed = true;

  while (!p->done) {
    Status pumped = pump_once(Clock::time_point::max(), serve);
    if (!pumped.is_ok()) {
      // Settle the slot with the abort reason so on_complete observers see
      // a terminal outcome exactly once.
      if (!p->done) complete(p, pumped);
      break;
    }
  }

  Result<Message> out = std::move(*p->outcome);
  pending_.erase(seq);
  return out;
}

Status RpcEndpoint::cancel(std::uint64_t seq) {
  auto it = pending_.find(seq);
  if (it == pending_.end()) {
    return not_found("no pending request for seq " + std::to_string(seq));
  }
  // Settle (not just drop) live slots so completion hooks fire exactly
  // once: spans close, telemetry records the outcome, and any promise
  // waiting on the slot observes a terminal error instead of hanging.
  auto pending = it->second;
  if (!pending->done) {
    complete(pending, unavailable("request cancelled"));
  }
  pending_.erase(seq);
  return Status::ok();
}

std::size_t RpcEndpoint::expire_peer(SpaceId peer, const Status& status) {
  std::vector<std::shared_ptr<Pending>> doomed;
  for (auto& [seq, p] : pending_) {
    if (!p->done && !p->bare && p->dest == peer) doomed.push_back(p);
  }
  for (auto& p : doomed) complete(p, status);
  return doomed.size();
}

bool RpcEndpoint::slot_done(std::uint64_t seq) const {
  auto it = pending_.find(seq);
  return it != pending_.end() && it->second->done;
}

Result<Message> RpcEndpoint::await_reply(MessageType reply_type, std::uint64_t seq,
                                         const Dispatcher& serve,
                                         Clock::time_point deadline) {
  if (pending_.find(seq) != pending_.end()) {
    return already_exists("seq " + std::to_string(seq) +
                          " already has a pending request (one waiter per seq)");
  }
  auto p = std::make_shared<Pending>();
  p->reply_type = reply_type;
  p->seq = seq;
  p->describe = describe_wait(reply_type, seq);
  p->bare = true;
  p->deadline = deadline;
  p->attempt_deadline = deadline;
  pending_.emplace(seq, std::move(p));
  return collect(seq, serve);
}

Result<Message> RpcEndpoint::roundtrip(Message msg, MessageType reply_type,
                                       const Dispatcher& serve,
                                       const TimeoutConfig& cfg, bool idempotent) {
  IssueOptions opts;
  opts.cfg = cfg;
  opts.idempotent = idempotent;
  auto seq = issue(std::move(msg), reply_type, std::move(opts));
  if (!seq) return seq.status();
  return collect(seq.value(), serve);
}

Result<MailItem> RpcEndpoint::next() {
  while (true) {
    if (!deferred_.empty()) {
      MailItem item = std::move(deferred_.front());
      deferred_.pop_front();
      return item;
    }
    auto item = mailbox_.pop();
    if (!item) return item;
    if (!std::holds_alternative<Message>(item.value())) {
      return std::move(item).value();
    }
    Message msg = std::get<Message>(std::move(item).value());
    if (delivery_hook_) delivery_hook_(msg);
    msg.bind_view_payload();  // shm lane: see pump_once
    if (telemetry_ != nullptr) {
      telemetry_->flight().frame(FlightEventKind::kFrameRecv,
                                 telemetry_->now_ns(),
                                 static_cast<std::uint8_t>(msg.type), msg.from,
                                 msg.session, msg.seq);
    }
    if (fence_ && fence_(msg)) continue;  // stale incarnation
    // A reply for a slot nobody is actively collecting (an un-got future)
    // still belongs to that slot, not to the main loop.
    if (route_reply(msg)) continue;
    return MailItem(std::move(msg));
  }
}

}  // namespace srpc
