#include "rpc/wire.hpp"

#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "xdr/xdr_decoder.hpp"
#include "xdr/xdr_encoder.hpp"

namespace srpc {

namespace {
bool valid_message_type(std::uint32_t t) noexcept {
  return t >= static_cast<std::uint32_t>(MessageType::kCall) &&
         t <= static_cast<std::uint32_t>(MessageType::kShutdown);
}
}  // namespace

void encode_frame(const Message& msg, ByteBuffer& out) {
  xdr::Encoder enc(out);
  enc.put_u32(kFrameMagic);
  enc.put_u32(static_cast<std::uint32_t>(msg.type));
  enc.put_u32(msg.from);
  enc.put_u32(msg.to);
  enc.put_u64(msg.session);
  enc.put_u64(msg.seq);
  enc.put_u32(static_cast<std::uint32_t>(msg.payload.size()));
  out.append(msg.payload.view());
}

Result<Message> decode_frame(ByteBuffer& in) {
  xdr::Decoder dec(in);
  auto magic = dec.get_u32();
  if (!magic) return magic.status();
  if (magic.value() != kFrameMagic) {
    return protocol_error("bad frame magic");
  }
  auto type = dec.get_u32();
  if (!type) return type.status();
  if (!valid_message_type(type.value())) {
    return protocol_error("unknown message type " + std::to_string(type.value()));
  }
  Message msg;
  msg.type = static_cast<MessageType>(type.value());
  auto from = dec.get_u32();
  if (!from) return from.status();
  msg.from = from.value();
  auto to = dec.get_u32();
  if (!to) return to.status();
  msg.to = to.value();
  auto session = dec.get_u64();
  if (!session) return session.status();
  msg.session = session.value();
  auto seq = dec.get_u64();
  if (!seq) return seq.status();
  msg.seq = seq.value();
  auto len = dec.get_u32();
  if (!len) return len.status();
  auto view = in.read_view(len.value());
  if (!view) return view.status();
  msg.payload.append(view.value());
  return msg;
}

Status write_all(int fd, const std::uint8_t* data, std::size_t len) {
  std::size_t done = 0;
  while (done < len) {
    const ssize_t n = ::write(fd, data + done, len - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return unavailable(std::string("write: ") + std::strerror(errno));
    }
    if (n == 0) {
      return unavailable("write: peer closed");
    }
    done += static_cast<std::size_t>(n);
  }
  return Status::ok();
}

Status read_all(int fd, std::uint8_t* data, std::size_t len) {
  std::size_t done = 0;
  while (done < len) {
    const ssize_t n = ::read(fd, data + done, len - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return unavailable(std::string("read: ") + std::strerror(errno));
    }
    if (n == 0) {
      return unavailable("read: peer closed");
    }
    done += static_cast<std::size_t>(n);
  }
  return Status::ok();
}

Result<Message> read_frame(int fd) {
  ByteBuffer header;
  header.append_zeros(kFrameHeaderSize);
  SRPC_RETURN_IF_ERROR(read_all(fd, header.data(), kFrameHeaderSize));

  // Parse the header alone first to learn the payload length.
  xdr::Decoder dec(header);
  auto magic = dec.get_u32();
  if (!magic) return magic.status();
  if (magic.value() != kFrameMagic) return protocol_error("bad frame magic");
  auto type = dec.get_u32();
  if (!type) return type.status();
  if (!valid_message_type(type.value())) {
    return protocol_error("unknown message type " + std::to_string(type.value()));
  }
  Message msg;
  msg.type = static_cast<MessageType>(type.value());
  auto from = dec.get_u32();
  if (!from) return from.status();
  msg.from = from.value();
  auto to = dec.get_u32();
  if (!to) return to.status();
  msg.to = to.value();
  auto session = dec.get_u64();
  if (!session) return session.status();
  msg.session = session.value();
  auto seq = dec.get_u64();
  if (!seq) return seq.status();
  msg.seq = seq.value();
  auto len = dec.get_u32();
  if (!len) return len.status();

  if (len.value() > 0) {
    msg.payload.append_zeros(len.value());
    SRPC_RETURN_IF_ERROR(read_all(fd, msg.payload.data(), len.value()));
  }
  return msg;
}

Status write_frame(int fd, const Message& msg) {
  ByteBuffer out;
  encode_frame(msg, out);
  return write_all(fd, out.data(), out.size());
}

}  // namespace srpc
