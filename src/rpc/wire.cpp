#include "rpc/wire.hpp"

#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/logging.hpp"
#include "net/shm_arena.hpp"
#include "xdr/xdr_decoder.hpp"
#include "xdr/xdr_encoder.hpp"

namespace srpc {

namespace {
bool valid_message_type(std::uint32_t t) noexcept {
  // Flags ride on the type word.
  t &= ~(kFrameTraceFlag | kFrameShmFlag | kFrameIncarnationFlag);
  return t >= static_cast<std::uint32_t>(MessageType::kCall) &&
         t <= static_cast<std::uint32_t>(MessageType::kRejoinAck);
}

// Parses the 20-byte shm descriptor at the decoder's cursor and redeems
// the stashed pin. The payload-length word must equal the descriptor size.
Status decode_shm_descriptor(xdr::Decoder& dec, std::uint32_t len,
                             Message& msg) {
  if (len != kShmDescriptorWireSize) {
    return protocol_error("shm frame payload length " + std::to_string(len));
  }
  auto arena = dec.get_u32();
  if (!arena) return arena.status();
  auto ticket = dec.get_u64();
  if (!ticket) return ticket.status();
  auto offset = dec.get_u32();
  if (!offset) return offset.status();
  auto vlen = dec.get_u32();
  if (!vlen) return vlen.status();
  auto claimed = ShmArena::claim(arena.value(), ticket.value());
  if (!claimed) return claimed.status();
  msg.view = std::move(claimed).value();
  if (msg.view.offset != offset.value() || msg.view.len != vlen.value()) {
    return protocol_error("shm descriptor mismatch with stashed view");
  }
  return Status::ok();
}

void encode_trace_ext(xdr::Encoder& enc, const TraceContext& trace) {
  enc.put_u64(trace.trace_id);
  enc.put_u64(trace.span_id);
  enc.put_u64(trace.parent_span_id);
  enc.put_u32(trace.hop);
}

Status decode_trace_ext(xdr::Decoder& dec, TraceContext& trace) {
  auto trace_id = dec.get_u64();
  if (!trace_id) return trace_id.status();
  trace.trace_id = trace_id.value();
  auto span_id = dec.get_u64();
  if (!span_id) return span_id.status();
  trace.span_id = span_id.value();
  auto parent = dec.get_u64();
  if (!parent) return parent.status();
  trace.parent_span_id = parent.value();
  auto hop = dec.get_u32();
  if (!hop) return hop.status();
  trace.hop = hop.value();
  return Status::ok();
}

Status decode_incarnation_ext(xdr::Decoder& dec, Message& msg) {
  auto inc = dec.get_u32();
  if (!inc) return inc.status();
  msg.incarnation = inc.value();
  auto to_inc = dec.get_u32();
  if (!to_inc) return to_inc.status();
  msg.to_incarnation = to_inc.value();
  return Status::ok();
}

constexpr std::uint32_t kMaxDeltaRanges = 1U << 20;
}  // namespace

void encode_modified_delta(xdr::Encoder& enc, const LongPointer& id,
                           std::uint64_t epoch, std::span<const ByteRange> ranges,
                           const std::uint8_t* image) {
  encode_long_pointer(enc, id);
  enc.put_u64(epoch);
  enc.put_u32(static_cast<std::uint32_t>(ranges.size()));
  for (const ByteRange& r : ranges) {
    enc.put_u32(r.offset);
    enc.put_u32(r.len);
    enc.put_opaque_fixed({image + r.offset, r.len});
  }
}

std::uint64_t modified_delta_wire_size(
    std::span<const ByteRange> ranges) noexcept {
  std::uint64_t size = kLongPointerWireSize + 8 + 4;  // pointer, epoch, count
  for (const ByteRange& r : ranges) {
    size += 8 + ((r.len + 3ULL) & ~3ULL);  // header + padded payload
  }
  return size;
}

Result<ModifiedDelta> decode_modified_delta(xdr::Decoder& dec) {
  ModifiedDelta d;
  auto id = decode_long_pointer(dec);
  if (!id) return id.status();
  d.id = id.value();
  auto epoch = dec.get_u64();
  if (!epoch) return epoch.status();
  d.epoch = epoch.value();
  auto count = dec.get_u32();
  if (!count) return count.status();
  if (count.value() > kMaxDeltaRanges) {
    return protocol_error("modified-delta range count " +
                          std::to_string(count.value()));
  }
  d.ranges.reserve(count.value());
  std::uint32_t prev_end = 0;
  for (std::uint32_t i = 0; i < count.value(); ++i) {
    auto offset = dec.get_u32();
    if (!offset) return offset.status();
    auto len = dec.get_u32();
    if (!len) return len.status();
    if (len.value() == 0) {
      return protocol_error("modified-delta empty range");
    }
    if (i > 0 && offset.value() < prev_end) {
      return protocol_error("modified-delta ranges out of order");
    }
    if (offset.value() + static_cast<std::uint64_t>(len.value()) > UINT32_MAX) {
      return protocol_error("modified-delta range overflow");
    }
    auto bytes = dec.get_opaque_fixed(len.value());
    if (!bytes) return bytes.status();
    d.ranges.push_back(ByteRange{offset.value(), len.value()});
    prev_end = offset.value() + len.value();
    d.bytes.insert(d.bytes.end(), bytes.value().begin(), bytes.value().end());
  }
  return d;
}

void encode_frame(const Message& msg, ByteBuffer& out) {
  xdr::Encoder enc(out);
  enc.put_u32(kFrameMagic);
  std::uint32_t type = static_cast<std::uint32_t>(msg.type);
  if (msg.trace.valid()) type |= kFrameTraceFlag;
  const bool incarnated = msg.incarnation != 0 || msg.to_incarnation != 0;
  if (incarnated) type |= kFrameIncarnationFlag;
  // Stash the pin before committing to the flag: if the arena is already
  // gone the frame downgrades to the byte lane — the view itself still
  // pins the bytes, so they can be framed the classic way.
  bool shm = msg.shm_backed();
  std::uint64_t ticket = 0;
  if (shm) {
    auto stashed = ShmArena::stash(msg.view);
    if (stashed) {
      ticket = stashed.value();
    } else {
      SRPC_DEBUG << "wire: shm stash failed, framing bytes: "
                 << stashed.status().to_string();
      shm = false;
    }
  }
  if (shm) type |= kFrameShmFlag;
  enc.put_u32(type);
  enc.put_u32(msg.from);
  enc.put_u32(msg.to);
  enc.put_u64(msg.session);
  enc.put_u64(msg.seq);
  const std::span<const std::uint8_t> bytes =
      msg.shm_backed() ? msg.view.bytes() : msg.payload.view();
  enc.put_u32(shm ? static_cast<std::uint32_t>(kShmDescriptorWireSize)
                  : static_cast<std::uint32_t>(bytes.size()));
  if (msg.trace.valid()) encode_trace_ext(enc, msg.trace);
  if (incarnated) {
    enc.put_u32(msg.incarnation);
    enc.put_u32(msg.to_incarnation);
  }
  if (shm) {
    enc.put_u32(msg.view.arena_id);
    enc.put_u64(ticket);
    enc.put_u32(msg.view.offset);
    enc.put_u32(msg.view.len);
  } else {
    out.append(bytes);
  }
}

Result<Message> decode_frame(ByteBuffer& in) {
  xdr::Decoder dec(in);
  auto magic = dec.get_u32();
  if (!magic) return magic.status();
  if (magic.value() != kFrameMagic) {
    return protocol_error("bad frame magic");
  }
  auto type = dec.get_u32();
  if (!type) return type.status();
  if (!valid_message_type(type.value())) {
    return protocol_error("unknown message type " + std::to_string(type.value()));
  }
  Message msg;
  msg.type = static_cast<MessageType>(
      type.value() &
      ~(kFrameTraceFlag | kFrameShmFlag | kFrameIncarnationFlag));
  auto from = dec.get_u32();
  if (!from) return from.status();
  msg.from = from.value();
  auto to = dec.get_u32();
  if (!to) return to.status();
  msg.to = to.value();
  auto session = dec.get_u64();
  if (!session) return session.status();
  msg.session = session.value();
  auto seq = dec.get_u64();
  if (!seq) return seq.status();
  msg.seq = seq.value();
  auto len = dec.get_u32();
  if (!len) return len.status();
  if ((type.value() & kFrameTraceFlag) != 0) {
    SRPC_RETURN_IF_ERROR(decode_trace_ext(dec, msg.trace));
  }
  if ((type.value() & kFrameIncarnationFlag) != 0) {
    SRPC_RETURN_IF_ERROR(decode_incarnation_ext(dec, msg));
  }
  if ((type.value() & kFrameShmFlag) != 0) {
    SRPC_RETURN_IF_ERROR(decode_shm_descriptor(dec, len.value(), msg));
    return msg;
  }
  auto view = in.read_view(len.value());
  if (!view) return view.status();
  msg.payload.append(view.value());
  return msg;
}

Status write_all(int fd, const std::uint8_t* data, std::size_t len) {
  std::size_t done = 0;
  while (done < len) {
    const ssize_t n = ::write(fd, data + done, len - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return unavailable(std::string("write: ") + std::strerror(errno));
    }
    if (n == 0) {
      return unavailable("write: peer closed");
    }
    done += static_cast<std::size_t>(n);
  }
  return Status::ok();
}

Status read_all(int fd, std::uint8_t* data, std::size_t len) {
  std::size_t done = 0;
  while (done < len) {
    const ssize_t n = ::read(fd, data + done, len - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return unavailable(std::string("read: ") + std::strerror(errno));
    }
    if (n == 0) {
      return unavailable("read: peer closed");
    }
    done += static_cast<std::size_t>(n);
  }
  return Status::ok();
}

Result<Message> read_frame(int fd) {
  ByteBuffer header;
  header.append_zeros(kFrameHeaderSize);
  SRPC_RETURN_IF_ERROR(read_all(fd, header.data(), kFrameHeaderSize));

  // Parse the header alone first to learn the payload length.
  xdr::Decoder dec(header);
  auto magic = dec.get_u32();
  if (!magic) return magic.status();
  if (magic.value() != kFrameMagic) return protocol_error("bad frame magic");
  auto type = dec.get_u32();
  if (!type) return type.status();
  if (!valid_message_type(type.value())) {
    return protocol_error("unknown message type " + std::to_string(type.value()));
  }
  Message msg;
  msg.type = static_cast<MessageType>(
      type.value() &
      ~(kFrameTraceFlag | kFrameShmFlag | kFrameIncarnationFlag));
  auto from = dec.get_u32();
  if (!from) return from.status();
  msg.from = from.value();
  auto to = dec.get_u32();
  if (!to) return to.status();
  msg.to = to.value();
  auto session = dec.get_u64();
  if (!session) return session.status();
  msg.session = session.value();
  auto seq = dec.get_u64();
  if (!seq) return seq.status();
  msg.seq = seq.value();
  auto len = dec.get_u32();
  if (!len) return len.status();

  if ((type.value() & kFrameTraceFlag) != 0) {
    ByteBuffer ext;
    ext.append_zeros(kTraceContextWireSize);
    SRPC_RETURN_IF_ERROR(read_all(fd, ext.data(), kTraceContextWireSize));
    xdr::Decoder ext_dec(ext);
    SRPC_RETURN_IF_ERROR(decode_trace_ext(ext_dec, msg.trace));
  }

  if ((type.value() & kFrameIncarnationFlag) != 0) {
    ByteBuffer ext;
    ext.append_zeros(kIncarnationWireSize);
    SRPC_RETURN_IF_ERROR(read_all(fd, ext.data(), kIncarnationWireSize));
    xdr::Decoder ext_dec(ext);
    SRPC_RETURN_IF_ERROR(decode_incarnation_ext(ext_dec, msg));
  }

  if (len.value() > 0) {
    msg.payload.append_zeros(len.value());
    SRPC_RETURN_IF_ERROR(read_all(fd, msg.payload.data(), len.value()));
  }
  if ((type.value() & kFrameShmFlag) != 0) {
    // The bytes just read are the descriptor, not the payload: redeem the
    // stashed pin and carry the view instead (the endpoint rebinds the
    // payload over the region at dequeue).
    ByteBuffer descriptor = std::move(msg.payload);
    msg.payload = ByteBuffer();
    xdr::Decoder ddec(descriptor);
    SRPC_RETURN_IF_ERROR(decode_shm_descriptor(ddec, len.value(), msg));
  }
  return msg;
}

Status write_frame(int fd, const Message& msg) {
  ByteBuffer out;
  encode_frame(msg, out);
  return write_all(fd, out.data(), out.size());
}

}  // namespace srpc
