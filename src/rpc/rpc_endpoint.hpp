// RpcEndpoint — one space's seat on the network.
//
// The crucial piece is await_reply(): while a space is blocked on a
// synchronous reply it keeps *serving* incoming requests through the
// supplied dispatcher. That single mechanism gives the paper's execution
// model its power: nested RPCs, callbacks (a callee remotely calling its
// caller), and fetch service while blocked all fall out of it, and the
// "only a single thread is active in an RPC session" property (§3.1) is
// preserved because serving happens on the blocked thread itself.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>

#include "common/config.hpp"
#include "common/status.hpp"
#include "net/mailbox.hpp"
#include "net/transport.hpp"
#include "obs/telemetry.hpp"

namespace srpc {

class RpcEndpoint {
 public:
  RpcEndpoint(SpaceId self, Transport& transport, Mailbox& mailbox)
      : self_(self), transport_(transport), mailbox_(mailbox) {}
  RpcEndpoint(const RpcEndpoint&) = delete;
  RpcEndpoint& operator=(const RpcEndpoint&) = delete;

  [[nodiscard]] SpaceId self() const noexcept { return self_; }

  std::uint64_t next_seq() noexcept { return ++seq_; }

  // Stamps the sender and ships the message.
  Status send(Message msg);

  // Serves a non-reply message while blocked; returning an error aborts
  // the surrounding await.
  using Dispatcher = std::function<Status(Message)>;

  // Blocks until a message with `reply_type` (or kError) and matching seq
  // arrives. Other messages are fed to `serve`; if `serve` is empty they
  // are deferred for the main loop (used on the fault path, where nothing
  // but the reply can legitimately arrive). Tasks are always deferred.
  // Once `deadline` passes with no reply the await fails with
  // DEADLINE_EXCEEDED (the default never expires).
  Result<Message> await_reply(MessageType reply_type, std::uint64_t seq,
                              const Dispatcher& serve,
                              std::chrono::steady_clock::time_point deadline =
                                  std::chrono::steady_clock::time_point::max());

  // One logical request/reply round trip under `cfg`: sends `msg`, awaits
  // its reply within cfg.request_deadline, and — for idempotent requests —
  // retransmits the identical message (same seq, so the receiver's
  // request-id dedup and the sender's reply matching both absorb
  // duplicates) after each attempt timeout with exponential backoff.
  // Non-idempotent requests get a single attempt: the full deadline, no
  // retransmit.
  Result<Message> roundtrip(Message msg, MessageType reply_type,
                            const Dispatcher& serve, const TimeoutConfig& cfg,
                            bool idempotent);

  // Next item for the main loop; drains deferred items first, then blocks
  // on the mailbox. UNAVAILABLE once the mailbox is closed and drained.
  Result<MailItem> next();

  // Retransmissions issued by roundtrip() over this endpoint's lifetime.
  [[nodiscard]] std::uint64_t retransmits() const noexcept { return retransmits_; }

  // Optional observability sink (owned by the Runtime): retransmit
  // annotations and per-kind retry counters land there.
  void set_telemetry(Telemetry* telemetry) noexcept { telemetry_ = telemetry; }

 private:
  SpaceId self_;
  Transport& transport_;
  Mailbox& mailbox_;
  std::uint64_t seq_ = 0;
  std::uint64_t retransmits_ = 0;
  Telemetry* telemetry_ = nullptr;
  std::deque<MailItem> deferred_;
};

}  // namespace srpc
