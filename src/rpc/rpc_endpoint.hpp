// RpcEndpoint — one space's seat on the network.
//
// The crucial piece is the completion-slot pump: while a space is blocked
// waiting for replies it keeps *serving* incoming requests through the
// supplied dispatcher. That single mechanism gives the paper's execution
// model its power: nested RPCs, callbacks (a callee remotely calling its
// caller), and fetch service while blocked all fall out of it, and the
// "only a single thread is active in an RPC session" property (§3.1) is
// preserved because serving happens on the blocked thread itself.
//
// Multiplexing: the endpoint keeps one completion slot per outstanding
// sequence number, so many requests can be on the wire at once (pipelined
// CALLs, a multi-home FETCH fan-out, parallel WB_PREPAREs). issue() opens a
// slot and ships the request; any pump — a collect() on a different seq, an
// explicit pump_once(), a Future::get() — routes arriving replies to their
// slots, runs per-slot retransmit timers, and serves unrelated traffic.
// Replies therefore complete in arrival order, independent of issue order.
//
// One waiter per seq: a slot is claimed by at most one collector. Issuing a
// second request on a live seq or collecting a seq that is already being
// collected is a typed ALREADY_EXISTS error, never a silently stolen reply.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/config.hpp"
#include "common/status.hpp"
#include "net/mailbox.hpp"
#include "net/transport.hpp"
#include "obs/telemetry.hpp"

namespace srpc {

class RpcEndpoint {
 public:
  RpcEndpoint(SpaceId self, Transport& transport, Mailbox& mailbox)
      : self_(self), transport_(transport), mailbox_(mailbox) {}
  RpcEndpoint(const RpcEndpoint&) = delete;
  RpcEndpoint& operator=(const RpcEndpoint&) = delete;

  [[nodiscard]] SpaceId self() const noexcept { return self_; }

  std::uint64_t next_seq() noexcept { return ++seq_; }

  // Stamps the sender and ships the message.
  Status send(Message msg);

  // Serves a non-reply message while blocked; returning an error aborts
  // the surrounding wait.
  using Dispatcher = std::function<Status(Message)>;

  // Completion callback for a slot. Runs inside the pump, possibly on a
  // re-entrant stack (another request's collect, even the fault path), so
  // it must stay light: record telemetry, fulfil a promise, never block,
  // never issue nested RPC. The Result is mutable so a detached consumer
  // can move the reply out.
  using CompletionFn = std::function<void(Result<Message>&)>;
  // Retransmit notification (attempt just sent, total budget). Async slots
  // use it to annotate their own span; without it the annotation goes to
  // the tracer's stack top, which is only correct for the blocking path.
  using RetransmitFn = std::function<void(std::uint32_t attempt, std::uint32_t attempts)>;

  struct IssueOptions {
    TimeoutConfig cfg;
    bool idempotent = false;
    // Detached slots self-erase on completion (fire-and-forget into
    // on_complete); non-detached slots hold their outcome for collect().
    bool detached = false;
    CompletionFn on_complete;
    RetransmitFn on_retransmit;
  };

  // Opens a completion slot keyed by msg.seq and ships the request.
  // Idempotent requests retransmit on each attempt timeout with exponential
  // backoff (same seq, so receiver-side dedup and sender-side matching
  // absorb duplicates); non-idempotent requests get a single attempt with
  // the full deadline. Returns the seq, ALREADY_EXISTS if the seq already
  // has a live slot, or the transport error if the first send fails (no
  // slot is left behind).
  Result<std::uint64_t> issue(Message msg, MessageType reply_type, IssueOptions opts);

  // Blocks (pumping) until slot `seq` completes, then consumes and returns
  // its outcome. FAILED_PRECONDITION if no such slot, ALREADY_EXISTS if the
  // slot is being collected already (one waiter per seq). A dispatcher
  // error or closed mailbox settles the slot with that error and returns it.
  Result<Message> collect(std::uint64_t seq, const Dispatcher& serve);

  // One pump step: waits (until `deadline` at the latest) for the next
  // mail item or pending-slot timer, then routes a reply / runs expired
  // timers / serves or defers everything else. OK means "made progress or
  // ran timers"; DEADLINE_EXCEEDED means `deadline` passed first. A
  // dispatcher error aborts the step; a closed mailbox settles every
  // pending slot with UNAVAILABLE and returns it.
  Status pump_once(std::chrono::steady_clock::time_point deadline,
                   const Dispatcher& serve);

  // Discards slot `seq` (pending or completed-but-uncollected). A reply
  // arriving later no longer matches and flows to serve/defer like any
  // stale message. NOT_FOUND if no such slot.
  Status cancel(std::uint64_t seq);

  [[nodiscard]] bool slot_done(std::uint64_t seq) const;
  [[nodiscard]] std::size_t inflight() const noexcept { return pending_.size(); }

  // Blocks until a message with `reply_type` (or kError) and matching seq
  // arrives. Other messages are fed to `serve`; if `serve` is empty they
  // are deferred for the main loop (used on the fault path, where nothing
  // but the reply can legitimately arrive). Tasks are always deferred.
  // Once `deadline` passes with no reply the await fails with
  // DEADLINE_EXCEEDED (the default never expires). Implemented as a
  // send-less slot, so it multiplexes with issued requests.
  Result<Message> await_reply(MessageType reply_type, std::uint64_t seq,
                              const Dispatcher& serve,
                              std::chrono::steady_clock::time_point deadline =
                                  std::chrono::steady_clock::time_point::max());

  // One logical request/reply round trip under `cfg`: sends `msg`, awaits
  // its reply within cfg.request_deadline, and — for idempotent requests —
  // retransmits the identical message (same seq, so the receiver's
  // request-id dedup and the sender's reply matching both absorb
  // duplicates) after each attempt timeout with exponential backoff.
  // Non-idempotent requests get a single attempt: the full deadline, no
  // retransmit. Equivalent to issue() + collect().
  Result<Message> roundtrip(Message msg, MessageType reply_type,
                            const Dispatcher& serve, const TimeoutConfig& cfg,
                            bool idempotent);

  // Next item for the main loop; drains deferred items first, then blocks
  // on the mailbox. Replies for pending slots are routed to their slots
  // (never surfaced) so an abandoned-but-live slot cannot swallow the
  // worker loop. UNAVAILABLE once the mailbox is closed and drained.
  Result<MailItem> next();

  // Retransmissions issued over this endpoint's lifetime.
  [[nodiscard]] std::uint64_t retransmits() const noexcept { return retransmits_; }

  // Optional observability sink (owned by the Runtime): retransmit
  // annotations and per-kind retry counters land there.
  void set_telemetry(Telemetry* telemetry) noexcept { telemetry_ = telemetry; }

  // Called with every Message dequeued from the mailbox, before any
  // routing. The simulated network uses it to advance the virtual clock to
  // the message's arrival timestamp.
  using DeliveryHook = std::function<void(const Message&)>;
  void set_delivery_hook(DeliveryHook hook) { delivery_hook_ = std::move(hook); }

  // Runs on every outbound message right before it hits the transport —
  // the single choke point all sends funnel through. The Runtime installs
  // the shm-lane elevator here: for capable peers it publishes the payload
  // into the shared arena and replaces the bytes with a view descriptor
  // (net/shm_arena.hpp), falling back to the byte lane otherwise.
  using PayloadLane = std::function<void(Message&)>;
  void set_payload_lane(PayloadLane lane) { payload_lane_ = std::move(lane); }

  // Runs on every outbound message, before the payload lane. The Runtime
  // installs the incarnation stamp here: frames toward recovery-capable
  // peers carry {our incarnation, their believed incarnation}. Retransmits
  // re-enter prepare(), so a resend after the peer rejoined carries the
  // *updated* belief rather than the stamp frozen at issue time.
  using Stamp = std::function<void(Message&)>;
  void set_stamp(Stamp stamp) { stamp_ = std::move(stamp); }

  // Runs on every inbound Message after the delivery hook, before reply
  // routing or serving — the single choke point all receives funnel
  // through. Returning true drops the message (the Runtime fences frames
  // stamped by, or addressed to, a stale incarnation here). A dropped
  // shm-backed message releases its arena pin by plain destruction.
  using Fence = std::function<bool(const Message&)>;
  void set_fence(Fence fence) { fence_ = std::move(fence); }

  // Settles every live slot whose request was sent to `peer` with
  // `status`. Used when a peer's old incarnation is flushed at rejoin: a
  // reply from the new incarnation must not complete a request the old one
  // received (its seq-dedup memory is gone, its heap was rebuilt). Bare
  // await_reply slots have no destination and are left alone.
  std::size_t expire_peer(SpaceId peer, const Status& status);

 private:
  using Clock = std::chrono::steady_clock;

  struct Pending {
    MessageType reply_type = MessageType::kError;
    std::uint64_t seq = 0;
    SpaceId dest = kInvalidSpaceId;  // request destination (expire_peer)
    std::string describe;  // "REPLY seq=N" for error messages
    // Send-less await_reply slot: expires with the await wording and never
    // retransmits.
    bool bare = false;
    bool detached = false;
    bool claimed = false;  // a collect() is walking this slot
    bool done = false;
    std::optional<Message> original;  // retransmittable copy (attempts > 1)
    TimeoutConfig cfg;
    std::uint32_t attempts = 1;
    std::uint32_t attempt = 1;
    Clock::time_point deadline = Clock::time_point::max();
    Clock::time_point attempt_deadline = Clock::time_point::max();
    std::chrono::nanoseconds backoff{0};
    std::optional<Result<Message>> outcome;
    CompletionFn on_complete;
    RetransmitFn on_retransmit;
  };

  // Stamps the sender and applies the payload lane — exactly once per
  // outbound message, before any retransmittable copy is taken.
  void prepare(Message& msg);
  // Next retransmit wait: doubling, or decorrelated jitter when enabled.
  [[nodiscard]] std::chrono::nanoseconds next_backoff(const Pending& p) const;
  void arm_attempt_timer(Pending& p);
  // Settles a slot: stores/fires the outcome, self-erases detached slots.
  void complete(const std::shared_ptr<Pending>& p, Result<Message> outcome);
  void settle_all(const Status& status);
  void expire_timers(Clock::time_point now);
  // Routes `msg` to a matching pending slot; false if nothing matched.
  bool route_reply(Message& msg);

  SpaceId self_;
  Transport& transport_;
  Mailbox& mailbox_;
  std::uint64_t seq_ = 0;
  std::uint64_t retransmits_ = 0;
  Telemetry* telemetry_ = nullptr;
  DeliveryHook delivery_hook_;
  PayloadLane payload_lane_;
  Stamp stamp_;
  Fence fence_;
  std::deque<MailItem> deferred_;
  std::unordered_map<std::uint64_t, std::shared_ptr<Pending>> pending_;
};

}  // namespace srpc
