// Byte-level message framing, used by the real-socket transport and by
// anything that needs to persist or checksum messages. The simulated
// network skips framing (it moves Message objects) but charges the same
// modeled sizes, so both transports price identically.
//
// Frame layout (all integers XDR big-endian):
//   magic   u32  'SRPC'
//   type    u32
//   from    u32
//   to      u32
//   session u64
//   seq     u64
//   len     u32  payload byte count
//   [trace ext, only when the type word has kFrameTraceFlag set:
//    trace_id u64 | span_id u64 | parent_span_id u64 | hop u32]
//   [incarnation ext, only when the type word has kFrameIncarnationFlag
//    set: incarnation u32 | to_incarnation u32]
//   payload len bytes
#pragma once

#include <cstdint>
#include <vector>

#include "common/byte_buffer.hpp"
#include "common/byte_range.hpp"
#include "common/status.hpp"
#include "net/message.hpp"
#include "swizzle/long_pointer.hpp"

namespace srpc {

inline constexpr std::uint32_t kFrameMagic = 0x53525043;  // "SRPC"
inline constexpr std::size_t kFrameHeaderSize = 36;

// High bit of the frame's type word: a 28-byte trace-context extension
// (obs/trace_context.hpp) follows the fixed header. Senders set it only
// toward peers advertising kCapTraceContext, so legacy decoders — which
// reject unknown type words — never see it.
inline constexpr std::uint32_t kFrameTraceFlag = 0x80000000U;

// Second-highest bit of the type word: the frame's payload section is a
// 20-byte shm-lane descriptor {arena_id u32 | ticket u64 | offset u32 |
// len u32} instead of the payload bytes (PROTOCOL.md "Zero-copy payload
// lane"). The descriptor redeems a pin stashed in the sender's ShmArena;
// senders set the flag only toward peers advertising kCapShmPayload.
inline constexpr std::uint32_t kFrameShmFlag = 0x40000000U;

// Third-highest bit of the type word: an 8-byte incarnation extension
// {incarnation u32 | to_incarnation u32} follows the fixed header (after
// the trace extension when both are present). Senders set it only toward
// peers advertising kCapIncarnation; zero stamps are never framed.
inline constexpr std::uint32_t kFrameIncarnationFlag = 0x20000000U;

// --- MODIFIED_DELTA: delta-encoded modified sets (PROTOCOL.md) -------------
//
// The modified-set section of CALL/RETURN/WRITE_BACK payloads comes in two
// formats, distinguished by the first word:
//
//   legacy  ngroups u32 | ngroups x graph payload          (full images)
//   delta   magic u32 ('MDLT') | flags u32
//           | nfull u32  | nfull x graph payload           (full images)
//           | ndelta u32 | ndelta x modified-delta entry   (byte ranges)
//
// A modified-delta entry names one object and the byte ranges of its local
// image modified since the receiver last saw it:
//
//   pointer  16 B   home identity (space u32 | address u64 | type u32)
//   epoch    u64    sender's session epoch when these bytes last changed
//   nranges  u32
//   nranges x { offset u32 | len u32 | bytes (len, zero-padded to 4) }
//
// Receivers always understand both formats (the magic cannot collide with a
// plausible group count); senders only emit the delta format to peers that
// advertise kCapModifiedDelta — negotiated out of band by the World, which
// grants the bit only when every space shares one architecture, since range
// offsets are positions in the sender's native layout.

inline constexpr std::uint32_t kModifiedDeltaMagic = 0x4D444C54;  // "MDLT"

// Capability bits (World::peer_caps).
inline constexpr std::uint32_t kCapModifiedDelta = 1U << 0;
// Peer understands the two-phase write-back exchange (WB_PREPARE /
// WB_COMMIT / WB_ABORT, PROTOCOL.md "Failure model"). Non-capable peers
// keep the one-shot WRITE_BACK protocol.
inline constexpr std::uint32_t kCapTwoPhaseWriteBack = 1U << 1;
// Peer understands the trace-context frame extension (kFrameTraceFlag).
// Non-capable peers receive plain frames; tracing then records spans
// locally but cannot link them across that hop.
inline constexpr std::uint32_t kCapTraceContext = 1U << 2;
// Peer runs the concurrent multi-session protocol: WB_PREPARE carries a
// write-manifest of home object addresses for version validation, and the
// home may answer CONFLICT (PROTOCOL.md "Concurrent sessions"). Non-capable
// peers keep the single-session protocol with its busy-cache refusal.
inline constexpr std::uint32_t kCapMultiSession = 1U << 3;
// Peer shares this host's process memory and understands shm-lane payload
// descriptors (kFrameShmFlag frames / Message::view pass-through). Granted
// by the World only while every space shares one architecture model — the
// published bytes are the sender's native encoding of the payload, and the
// whole point is that the receiver reads them in place.
inline constexpr std::uint32_t kCapShmPayload = 1U << 4;
// Peer participates in crash recovery: it stamps frames with incarnation
// numbers (kFrameIncarnationFlag), fences stale-incarnation traffic, and
// understands REJOIN/REJOIN_ACK (PROTOCOL.md "Incarnations, fencing &
// rejoin"). Granted by the World only when recovery is enabled.
inline constexpr std::uint32_t kCapIncarnation = 1U << 5;

struct ModifiedDelta {
  LongPointer id;
  std::uint64_t epoch = 0;
  std::vector<ByteRange> ranges;      // sorted, non-overlapping
  std::vector<std::uint8_t> bytes;    // range payloads, concatenated in order
};

// Appends one modified-delta entry; `image` supplies the range bytes.
void encode_modified_delta(xdr::Encoder& enc, const LongPointer& id,
                           std::uint64_t epoch, std::span<const ByteRange> ranges,
                           const std::uint8_t* image);

// Wire byte count encode_modified_delta() will append for `ranges`.
[[nodiscard]] std::uint64_t modified_delta_wire_size(
    std::span<const ByteRange> ranges) noexcept;

// Decodes one modified-delta entry from the cursor. Validates that ranges
// are sorted, non-overlapping, and non-empty; bounds against the target
// object's size are the applier's job (it knows the type).
Result<ModifiedDelta> decode_modified_delta(xdr::Decoder& dec);

// Appends the framed message to `out`.
void encode_frame(const Message& msg, ByteBuffer& out);

// Decodes one frame from `in`'s cursor. PROTOCOL_ERROR on bad magic or
// unknown type; OUT_OF_RANGE if the buffer holds less than one frame.
Result<Message> decode_frame(ByteBuffer& in);

// Blocking full-buffer I/O on a file descriptor (retries EINTR and short
// transfers). UNAVAILABLE on EOF / peer close.
Status write_all(int fd, const std::uint8_t* data, std::size_t len);
Status read_all(int fd, std::uint8_t* data, std::size_t len);

// Reads exactly one frame from `fd`.
Result<Message> read_frame(int fd);

// Writes one frame to `fd`.
Status write_frame(int fd, const Message& msg);

}  // namespace srpc
