// Byte-level message framing, used by the real-socket transport and by
// anything that needs to persist or checksum messages. The simulated
// network skips framing (it moves Message objects) but charges the same
// modeled sizes, so both transports price identically.
//
// Frame layout (all integers XDR big-endian):
//   magic   u32  'SRPC'
//   type    u32
//   from    u32
//   to      u32
//   session u64
//   seq     u64
//   len     u32  payload byte count
//   payload len bytes
#pragma once

#include <cstdint>

#include "common/byte_buffer.hpp"
#include "common/status.hpp"
#include "net/message.hpp"

namespace srpc {

inline constexpr std::uint32_t kFrameMagic = 0x53525043;  // "SRPC"
inline constexpr std::size_t kFrameHeaderSize = 36;

// Appends the framed message to `out`.
void encode_frame(const Message& msg, ByteBuffer& out);

// Decodes one frame from `in`'s cursor. PROTOCOL_ERROR on bad magic or
// unknown type; OUT_OF_RANGE if the buffer holds less than one frame.
Result<Message> decode_frame(ByteBuffer& in);

// Blocking full-buffer I/O on a file descriptor (retries EINTR and short
// transfers). UNAVAILABLE on EOF / peer close.
Status write_all(int fd, const std::uint8_t* data, std::size_t len);
Status read_all(int fd, std::uint8_t* data, std::size_t len);

// Reads exactly one frame from `fd`.
Result<Message> read_frame(int fd);

// Writes one frame to `fd`.
Status write_frame(int fd, const Message& msg);

}  // namespace srpc
