#include "rpc/service_registry.hpp"

namespace srpc {

Status ServiceRegistry::bind(const std::string& name, RawHandler handler) {
  if (name.empty()) {
    return invalid_argument("procedure name must not be empty");
  }
  if (!handler) {
    return invalid_argument("procedure handler must not be empty: " + name);
  }
  auto [it, inserted] = handlers_.emplace(name, std::move(handler));
  if (!inserted) {
    return already_exists("procedure already bound: " + name);
  }
  return Status::ok();
}

const RawHandler* ServiceRegistry::find(const std::string& name) const {
  auto it = handlers_.find(name);
  return it == handlers_.end() ? nullptr : &it->second;
}

}  // namespace srpc
