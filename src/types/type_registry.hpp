// TypeRegistry — the "network name server" for data type specifiers.
//
// One registry is shared by every address space in a World (the paper's
// database mapping type specifiers to actual data structures). It is
// thread-safe: spaces run on their own threads and resolve type ids during
// marshalling, cache fills, and fault handling.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"
#include "types/type_descriptor.hpp"

namespace srpc {

class TypeRegistry {
 public:
  TypeRegistry();
  TypeRegistry(const TypeRegistry&) = delete;
  TypeRegistry& operator=(const TypeRegistry&) = delete;

  // --- registration (normally done once, before any RPC traffic) ---

  // Declares a struct type by name so pointer fields can reference it before
  // its own fields are known (self-referential and mutually-recursive types).
  Result<TypeId> declare_struct(const std::string& name);

  // Completes a previously declared struct. Fails if already defined.
  Status define_struct(TypeId id, std::vector<FieldDescriptor> fields);

  // Declares and defines in one step.
  Result<TypeId> register_struct(const std::string& name,
                                 std::vector<FieldDescriptor> fields);

  // Interns the pointer-to-T type (idempotent).
  TypeId pointer_to(TypeId pointee);

  // Interns the T[count] type (idempotent).
  TypeId array_of(TypeId element, std::uint32_t count);

  // --- lookup ---

  [[nodiscard]] static TypeId scalar_id(ScalarType s) noexcept {
    return static_cast<TypeId>(s);
  }

  Result<const TypeDescriptor*> find(TypeId id) const;
  Result<TypeId> find_by_name(const std::string& name) const;

  // Like find() but throws std::logic_error; for ids the runtime itself
  // produced (a miss is a bug, not an input error).
  const TypeDescriptor& get(TypeId id) const;

  [[nodiscard]] std::size_t type_count() const;

  // Copies every registered descriptor (id order). Used by the registry
  // wire codec to ship/verify the name-server contents across processes.
  [[nodiscard]] std::vector<TypeDescriptor> snapshot() const;

 private:
  TypeId next_id_locked() { return next_id_++; }

  mutable std::mutex mutex_;
  TypeId next_id_ = kFirstUserTypeId;
  // node-based map: descriptor addresses stay stable across registration.
  std::map<TypeId, TypeDescriptor> types_;
  std::unordered_map<std::string, TypeId> by_name_;
  std::unordered_map<TypeId, TypeId> pointer_cache_;  // pointee -> pointer id
  std::map<std::pair<TypeId, std::uint32_t>, TypeId> array_cache_;
};

}  // namespace srpc
