// Registry wire codec — shipping the type name-server between processes.
//
// Long pointers carry bare type ids, which is sound only while every space
// resolves an id to the same structure. Inside one World a shared
// TypeRegistry guarantees it; across real processes the registries must be
// *verified* to agree before any traffic. encode_registry() serialises
// every descriptor; verify_registry() compares a peer's serialisation
// against the local registry id by id, field by field, and reports the
// first divergence precisely (the error you want at connection time, not a
// corrupted object graph later).
#pragma once

#include "common/byte_buffer.hpp"
#include "common/status.hpp"
#include "types/type_registry.hpp"

namespace srpc {

// Serialises every registered type (scalars included, for self-description).
Status encode_registry(const TypeRegistry& registry, ByteBuffer& out);

// Checks a peer's serialised registry against `registry`. OK only when both
// define exactly the same ids with structurally identical descriptors
// (names included — the name server is a shared namespace).
Status verify_registry(const TypeRegistry& registry, ByteBuffer& in);

}  // namespace srpc
