// Architecture models for heterogeneity.
//
// The paper's system "shares only the logical type of the shared data", so
// each address space can run a different CPU architecture. An ArchModel
// captures what the codec needs to read/write a space's native memory
// image: byte order, pointer width, and natural alignment. The canonical
// wire form (XDR) is architecture-free; conversion happens at the edges.
#pragma once

#include <cstdint>
#include <string>

namespace srpc {

enum class Endian : std::uint8_t { kLittle, kBig };

struct ArchModel {
  std::string name;
  Endian endian = Endian::kLittle;
  std::uint32_t pointer_size = 8;  // bytes: 4 or 8
  // Natural alignment is min(size, max_align); 8 on every arch we model.
  std::uint32_t max_align = 8;

  friend bool operator==(const ArchModel& a, const ArchModel& b) noexcept {
    return a.endian == b.endian && a.pointer_size == b.pointer_size &&
           a.max_align == b.max_align;
  }
};

// The architecture this process actually runs on (x86-64: little, 8-byte
// pointers). Host-arch spaces store data in real C++ object layout.
const ArchModel& host_arch() noexcept;

// The paper's SPARCstation: big-endian, 4-byte pointers. Used by tests and
// examples as the canonical "foreign" architecture.
const ArchModel& sparc32_arch() noexcept;

// Reads an unsigned integer of `size` bytes from `src` in `endian` order.
std::uint64_t read_scaled_uint(const void* src, std::uint32_t size, Endian endian) noexcept;

// Writes the low `size` bytes of `v` to `dst` in `endian` order.
void write_scaled_uint(void* dst, std::uint32_t size, Endian endian, std::uint64_t v) noexcept;

}  // namespace srpc
