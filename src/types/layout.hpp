// Per-architecture memory layout computation.
//
// Heterogeneous DSM systems (the paper's §5.2 comparison) force one physical
// layout on every machine. Smart RPC instead shares only logical types:
// each space materialises a type in its own architecture's layout, and this
// engine computes that layout — natural alignment, pointer width from the
// ArchModel, struct size rounded to struct alignment (matching the SysV-style
// ABIs of both our host and the paper's SPARC).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "common/status.hpp"
#include "types/arch.hpp"
#include "types/type_descriptor.hpp"
#include "types/type_registry.hpp"

namespace srpc {

struct Layout {
  std::uint64_t size = 0;
  std::uint32_t align = 1;
  // Byte offset of each struct field, parallel to TypeDescriptor::fields().
  std::vector<std::uint64_t> field_offsets;
};

class LayoutEngine {
 public:
  explicit LayoutEngine(const TypeRegistry& registry) : registry_(registry) {}
  LayoutEngine(const LayoutEngine&) = delete;
  LayoutEngine& operator=(const LayoutEngine&) = delete;

  // Computes (and caches) the layout of `type` on `arch`. Fails on
  // incomplete structs and on structs containing themselves by value.
  Result<const Layout*> layout_of(const ArchModel& arch, TypeId type) const;

  // Convenience: layout size, throwing on failure (runtime-internal ids).
  std::uint64_t size_of(const ArchModel& arch, TypeId type) const;

 private:
  struct ArchKey {
    Endian endian;
    std::uint32_t pointer_size;
    std::uint32_t max_align;
    auto operator<=>(const ArchKey&) const = default;
  };
  static ArchKey key_of(const ArchModel& arch) noexcept {
    return {arch.endian, arch.pointer_size, arch.max_align};
  }

  Result<Layout> compute(const ArchModel& arch, TypeId type,
                         std::vector<TypeId>& in_progress) const;

  const TypeRegistry& registry_;
  mutable std::mutex mutex_;
  mutable std::map<std::pair<ArchKey, TypeId>, Layout> cache_;
};

}  // namespace srpc
