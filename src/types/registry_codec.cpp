#include "types/registry_codec.hpp"

#include "xdr/xdr_decoder.hpp"
#include "xdr/xdr_encoder.hpp"

namespace srpc {

namespace {

// Wire: count u32, then per type:
//   id u32 | kind u32 | name string | kind-specific:
//     scalar  -> scalar u32
//     pointer -> pointee u32
//     array   -> element u32 | count u32
//     struct  -> nfields u32 | nfields x (name string | type u32)
void encode_descriptor(xdr::Encoder& enc, const TypeDescriptor& desc) {
  enc.put_u32(desc.id());
  enc.put_u32(static_cast<std::uint32_t>(desc.kind()));
  enc.put_string(desc.name());
  switch (desc.kind()) {
    case TypeKind::kScalar:
      enc.put_u32(static_cast<std::uint32_t>(desc.scalar()));
      break;
    case TypeKind::kPointer:
      enc.put_u32(desc.pointee());
      break;
    case TypeKind::kArray:
      enc.put_u32(desc.element());
      enc.put_u32(desc.count());
      break;
    case TypeKind::kStruct: {
      const auto& fields = desc.fields();
      enc.put_u32(static_cast<std::uint32_t>(fields.size()));
      for (const auto& f : fields) {
        enc.put_string(f.name);
        enc.put_u32(f.type);
      }
      break;
    }
  }
}

std::string describe(const TypeDescriptor& d) {
  return "type " + std::to_string(d.id()) + " ('" + d.name() + "')";
}

Status mismatch(const TypeDescriptor& local, const std::string& what) {
  return failed_precondition("registry divergence at " + describe(local) + ": " + what);
}

}  // namespace

Status encode_registry(const TypeRegistry& registry, ByteBuffer& out) {
  const auto types = registry.snapshot();
  xdr::Encoder enc(out);
  enc.put_u32(static_cast<std::uint32_t>(types.size()));
  for (const TypeDescriptor& desc : types) {
    if (desc.kind() == TypeKind::kStruct && desc.is_incomplete()) {
      return failed_precondition("cannot ship incomplete struct '" + desc.name() + "'");
    }
    encode_descriptor(enc, desc);
  }
  return Status::ok();
}

Status verify_registry(const TypeRegistry& registry, ByteBuffer& in) {
  xdr::Decoder dec(in);
  auto count = dec.get_u32();
  if (!count) return count.status();
  if (count.value() != registry.type_count()) {
    return failed_precondition(
        "registry divergence: peer has " + std::to_string(count.value()) +
        " types, local has " + std::to_string(registry.type_count()));
  }

  for (std::uint32_t i = 0; i < count.value(); ++i) {
    auto id = dec.get_u32();
    if (!id) return id.status();
    auto kind = dec.get_u32();
    if (!kind) return kind.status();
    auto name = dec.get_string(4096);
    if (!name) return name.status();

    auto local_or = registry.find(id.value());
    if (!local_or) {
      return failed_precondition("registry divergence: peer type " +
                                 std::to_string(id.value()) + " ('" + name.value() +
                                 "') unknown locally");
    }
    const TypeDescriptor& local = *local_or.value();
    if (static_cast<std::uint32_t>(local.kind()) != kind.value()) {
      return mismatch(local, "kind differs");
    }
    if (local.name() != name.value()) {
      return mismatch(local, "peer calls it '" + name.value() + "'");
    }

    switch (local.kind()) {
      case TypeKind::kScalar: {
        auto scalar = dec.get_u32();
        if (!scalar) return scalar.status();
        if (scalar.value() != static_cast<std::uint32_t>(local.scalar())) {
          return mismatch(local, "scalar kind differs");
        }
        break;
      }
      case TypeKind::kPointer: {
        auto pointee = dec.get_u32();
        if (!pointee) return pointee.status();
        if (pointee.value() != local.pointee()) {
          return mismatch(local, "pointee differs");
        }
        break;
      }
      case TypeKind::kArray: {
        auto element = dec.get_u32();
        if (!element) return element.status();
        auto n = dec.get_u32();
        if (!n) return n.status();
        if (element.value() != local.element() || n.value() != local.count()) {
          return mismatch(local, "array shape differs");
        }
        break;
      }
      case TypeKind::kStruct: {
        auto nfields = dec.get_u32();
        if (!nfields) return nfields.status();
        const auto& fields = local.fields();
        if (nfields.value() != fields.size()) {
          return mismatch(local, "field count differs (peer " +
                                     std::to_string(nfields.value()) + ", local " +
                                     std::to_string(fields.size()) + ")");
        }
        for (std::size_t f = 0; f < fields.size(); ++f) {
          auto field_name = dec.get_string(4096);
          if (!field_name) return field_name.status();
          auto field_type = dec.get_u32();
          if (!field_type) return field_type.status();
          if (field_name.value() != fields[f].name) {
            return mismatch(local, "field " + std::to_string(f) + " named '" +
                                       field_name.value() + "' vs '" + fields[f].name +
                                       "'");
          }
          if (field_type.value() != fields[f].type) {
            return mismatch(local, "field '" + fields[f].name + "' type differs");
          }
        }
        break;
      }
    }
  }
  return Status::ok();
}

}  // namespace srpc
