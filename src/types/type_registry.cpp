#include "types/type_registry.hpp"

#include <stdexcept>

namespace srpc {

namespace {
struct ScalarSpec {
  ScalarType type;
  const char* name;
};
constexpr ScalarSpec kScalars[] = {
    {ScalarType::kI8, "i8"},   {ScalarType::kU8, "u8"},
    {ScalarType::kI16, "i16"}, {ScalarType::kU16, "u16"},
    {ScalarType::kI32, "i32"}, {ScalarType::kU32, "u32"},
    {ScalarType::kI64, "i64"}, {ScalarType::kU64, "u64"},
    {ScalarType::kF32, "f32"}, {ScalarType::kF64, "f64"},
    {ScalarType::kBool, "bool"},
};
}  // namespace

TypeRegistry::TypeRegistry() {
  for (const auto& s : kScalars) {
    const TypeId id = scalar_id(s.type);
    types_.emplace(id, TypeDescriptor::make_scalar(id, s.type, s.name));
    by_name_.emplace(s.name, id);
  }
}

Result<TypeId> TypeRegistry::declare_struct(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (by_name_.contains(name)) {
    return already_exists("type name already registered: " + name);
  }
  const TypeId id = next_id_locked();
  types_.emplace(id, TypeDescriptor::make_struct(id, name, {}));
  by_name_.emplace(name, id);
  return id;
}

Status TypeRegistry::define_struct(TypeId id, std::vector<FieldDescriptor> fields) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = types_.find(id);
  if (it == types_.end()) {
    return not_found("define_struct: unknown type id " + std::to_string(id));
  }
  if (it->second.kind() != TypeKind::kStruct) {
    return invalid_argument("define_struct on non-struct: " + it->second.name());
  }
  if (!it->second.is_incomplete()) {
    return failed_precondition("struct already defined: " + it->second.name());
  }
  for (const auto& f : fields) {
    if (!types_.contains(f.type)) {
      return not_found("field '" + f.name + "' has unknown type id " +
                       std::to_string(f.type));
    }
  }
  it->second.complete(std::move(fields));
  return Status::ok();
}

Result<TypeId> TypeRegistry::register_struct(const std::string& name,
                                             std::vector<FieldDescriptor> fields) {
  auto id = declare_struct(name);
  if (!id) return id.status();
  SRPC_RETURN_IF_ERROR(define_struct(id.value(), std::move(fields)));
  return id.value();
}

TypeId TypeRegistry::pointer_to(TypeId pointee) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = pointer_cache_.find(pointee);
  if (it != pointer_cache_.end()) return it->second;
  auto target = types_.find(pointee);
  if (target == types_.end()) {
    throw std::logic_error("pointer_to: unknown pointee id " + std::to_string(pointee));
  }
  const TypeId id = next_id_locked();
  types_.emplace(id, TypeDescriptor::make_pointer(id, pointee, target->second.name() + "*"));
  pointer_cache_.emplace(pointee, id);
  return id;
}

TypeId TypeRegistry::array_of(TypeId element, std::uint32_t count) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto key = std::make_pair(element, count);
  auto it = array_cache_.find(key);
  if (it != array_cache_.end()) return it->second;
  auto target = types_.find(element);
  if (target == types_.end()) {
    throw std::logic_error("array_of: unknown element id " + std::to_string(element));
  }
  const TypeId id = next_id_locked();
  types_.emplace(id, TypeDescriptor::make_array(
                         id, element, count,
                         target->second.name() + "[" + std::to_string(count) + "]"));
  array_cache_.emplace(key, id);
  return id;
}

Result<const TypeDescriptor*> TypeRegistry::find(TypeId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = types_.find(id);
  if (it == types_.end()) {
    return not_found("unknown type id " + std::to_string(id));
  }
  return &it->second;
}

Result<TypeId> TypeRegistry::find_by_name(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return not_found("unknown type name: " + name);
  }
  return it->second;
}

const TypeDescriptor& TypeRegistry::get(TypeId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = types_.find(id);
  if (it == types_.end()) {
    throw std::logic_error("TypeRegistry::get: unknown type id " + std::to_string(id));
  }
  return it->second;
}

std::size_t TypeRegistry::type_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return types_.size();
}

std::vector<TypeDescriptor> TypeRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TypeDescriptor> out;
  out.reserve(types_.size());
  for (const auto& [id, desc] : types_) {
    out.push_back(desc);
  }
  return out;
}

}  // namespace srpc
