#include "types/type_descriptor.hpp"

#include <stdexcept>

namespace srpc {

TypeDescriptor TypeDescriptor::make_scalar(TypeId id, ScalarType s, std::string name) {
  TypeDescriptor d;
  d.id_ = id;
  d.name_ = std::move(name);
  d.kind_ = TypeKind::kScalar;
  d.scalar_ = s;
  return d;
}

TypeDescriptor TypeDescriptor::make_pointer(TypeId id, TypeId pointee, std::string name) {
  TypeDescriptor d;
  d.id_ = id;
  d.name_ = std::move(name);
  d.kind_ = TypeKind::kPointer;
  d.pointee_ = pointee;
  return d;
}

TypeDescriptor TypeDescriptor::make_struct(TypeId id, std::string name,
                                           std::vector<FieldDescriptor> fields) {
  TypeDescriptor d;
  d.id_ = id;
  d.name_ = std::move(name);
  d.kind_ = TypeKind::kStruct;
  d.fields_ = std::move(fields);
  d.incomplete_ = d.fields_.empty();
  return d;
}

TypeDescriptor TypeDescriptor::make_array(TypeId id, TypeId element, std::uint32_t count,
                                          std::string name) {
  if (count == 0) throw std::invalid_argument("array type with zero elements");
  TypeDescriptor d;
  d.id_ = id;
  d.name_ = std::move(name);
  d.kind_ = TypeKind::kArray;
  d.element_ = element;
  d.count_ = count;
  return d;
}

ScalarType TypeDescriptor::scalar() const {
  if (kind_ != TypeKind::kScalar) throw std::logic_error("not a scalar type: " + name_);
  return scalar_;
}

TypeId TypeDescriptor::pointee() const {
  if (kind_ != TypeKind::kPointer) throw std::logic_error("not a pointer type: " + name_);
  return pointee_;
}

const std::vector<FieldDescriptor>& TypeDescriptor::fields() const {
  if (kind_ != TypeKind::kStruct) throw std::logic_error("not a struct type: " + name_);
  return fields_;
}

TypeId TypeDescriptor::element() const {
  if (kind_ != TypeKind::kArray) throw std::logic_error("not an array type: " + name_);
  return element_;
}

std::uint32_t TypeDescriptor::count() const {
  if (kind_ != TypeKind::kArray) throw std::logic_error("not an array type: " + name_);
  return count_;
}

void TypeDescriptor::complete(std::vector<FieldDescriptor> fields) {
  if (kind_ != TypeKind::kStruct) throw std::logic_error("complete() on non-struct");
  if (!incomplete_) throw std::logic_error("type already complete: " + name_);
  if (fields.empty()) throw std::invalid_argument("struct must have fields: " + name_);
  fields_ = std::move(fields);
  incomplete_ = false;
}

std::uint32_t scalar_size(ScalarType s) noexcept {
  switch (s) {
    case ScalarType::kI8:
    case ScalarType::kU8:
    case ScalarType::kBool:
      return 1;
    case ScalarType::kI16:
    case ScalarType::kU16:
      return 2;
    case ScalarType::kI32:
    case ScalarType::kU32:
    case ScalarType::kF32:
      return 4;
    case ScalarType::kI64:
    case ScalarType::kU64:
    case ScalarType::kF64:
      return 8;
  }
  return 0;
}

}  // namespace srpc
