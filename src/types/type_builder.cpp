#include "types/type_builder.hpp"

namespace srpc {

Status verify_host_layout(const TypeRegistry& registry, const LayoutEngine& engine,
                          TypeId type, std::size_t real_size,
                          const std::vector<std::size_t>& real_offsets) {
  auto layout_or = engine.layout_of(host_arch(), type);
  if (!layout_or) return layout_or.status();
  const Layout& layout = *layout_or.value();
  const TypeDescriptor& desc = registry.get(type);

  if (layout.size != real_size) {
    return internal_error("host layout mismatch for " + desc.name() + ": engine size " +
                          std::to_string(layout.size) + " vs sizeof " +
                          std::to_string(real_size));
  }
  if (layout.field_offsets.size() != real_offsets.size()) {
    return internal_error("host layout mismatch for " + desc.name() +
                          ": field count differs");
  }
  for (std::size_t i = 0; i < real_offsets.size(); ++i) {
    if (layout.field_offsets[i] != real_offsets[i]) {
      return internal_error("host layout mismatch for " + desc.name() + " field '" +
                            desc.fields()[i].name + "': engine offset " +
                            std::to_string(layout.field_offsets[i]) + " vs compiler " +
                            std::to_string(real_offsets[i]));
    }
  }
  return Status::ok();
}

}  // namespace srpc
