#include "types/arch.hpp"

#include <bit>

namespace srpc {

const ArchModel& host_arch() noexcept {
  static_assert(std::endian::native == std::endian::little,
                "host arch model assumes a little-endian build machine");
  static_assert(sizeof(void*) == 8, "host arch model assumes 64-bit pointers");
  static const ArchModel arch{"host-le64", Endian::kLittle, 8, 8};
  return arch;
}

const ArchModel& sparc32_arch() noexcept {
  static const ArchModel arch{"sparc-be32", Endian::kBig, 4, 8};
  return arch;
}

std::uint64_t read_scaled_uint(const void* src, std::uint32_t size, Endian endian) noexcept {
  const auto* p = static_cast<const std::uint8_t*>(src);
  std::uint64_t v = 0;
  if (endian == Endian::kBig) {
    for (std::uint32_t i = 0; i < size; ++i) v = (v << 8) | p[i];
  } else {
    for (std::uint32_t i = size; i > 0; --i) v = (v << 8) | p[i - 1];
  }
  return v;
}

void write_scaled_uint(void* dst, std::uint32_t size, Endian endian, std::uint64_t v) noexcept {
  auto* p = static_cast<std::uint8_t*>(dst);
  if (endian == Endian::kBig) {
    for (std::uint32_t i = 0; i < size; ++i) {
      p[size - 1 - i] = static_cast<std::uint8_t>(v >> (8 * i));
    }
  } else {
    for (std::uint32_t i = 0; i < size; ++i) {
      p[i] = static_cast<std::uint8_t>(v >> (8 * i));
    }
  }
}

}  // namespace srpc
