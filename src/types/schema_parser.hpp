// Schema text — a tiny interface-description language for the type
// name-server.
//
// The paper assumes the system "can obtain an actual data structure from a
// data type specifier by querying a database that serves as a network name
// server". C++ programs populate that database with HostStructBuilder; this
// parser populates it from text, so deployment tooling, tests, and
// foreign-architecture spaces can define shared types without compiling
// structs:
//
//     # the paper's experimental subject
//     struct TreeNode {
//       left:  TreeNode*;
//       right: TreeNode*;
//       data:  i64;
//     }
//
// Grammar (comments run # or // to end of line):
//     schema  := struct*
//     struct  := "struct" IDENT "{" field* "}"
//     field   := IDENT ":" type ";"
//     type    := base ("[" INT "]" | "*")*
//     base    := i8|u8|i16|u16|i32|u32|i64|u64|f32|f64|bool | IDENT
// Suffixes apply left to right: "i64[4]*" is pointer-to-array-of-4-i64.
// Struct names may be referenced before their definition (self-referential
// and mutually recursive types), but every referenced name must be defined
// somewhere in the same schema or already present in the registry.
#pragma once

#include <map>
#include <string>
#include <string_view>

#include "common/status.hpp"
#include "types/type_registry.hpp"

namespace srpc {

// Parses `text` and registers every struct into `registry`. On success
// returns name -> TypeId for the structs the schema defined. On failure
// returns INVALID_ARGUMENT with a line-numbered message; the registry may
// hold already-declared names from the failed schema (registries are
// build-time objects; discard on error).
Result<std::map<std::string, TypeId>> parse_schema(TypeRegistry& registry,
                                                   std::string_view text);

}  // namespace srpc
