// ValueView — descriptor-driven access to a typed memory image.
//
// Host-architecture spaces manipulate shared data through ordinary C++
// structs; a space modelling a *foreign* architecture (different endianness
// or pointer width) cannot, so it reads and writes fields through the type
// descriptor and the target ArchModel instead. Heterogeneity tests and the
// SPARC-flavoured spaces use this; it is also handy for generic tooling
// (dumping any registered type without compile-time knowledge).
#pragma once

#include <cstdint>
#include <string>

#include "common/status.hpp"
#include "types/arch.hpp"
#include "types/layout.hpp"
#include "types/type_registry.hpp"

namespace srpc {

class ValueView {
 public:
  ValueView(const TypeRegistry& registry, const LayoutEngine& layouts,
            const ArchModel& arch, TypeId type, void* data)
      : registry_(registry), layouts_(layouts), arch_(arch), type_(type), data_(data) {}

  [[nodiscard]] TypeId type() const noexcept { return type_; }
  [[nodiscard]] void* data() const noexcept { return data_; }

  // Navigates to a struct field by name.
  Result<ValueView> field(const std::string& name) const;

  // Navigates to an array element.
  Result<ValueView> element(std::uint32_t index) const;

  // Scalar accessors (integers and bool; sign handled by the descriptor).
  Result<std::int64_t> get_int() const;
  Status set_int(std::int64_t v);

  Result<double> get_float() const;
  Status set_float(double v);

  // Raw pointer-field value (an ordinary pointer in this arch's width).
  Result<std::uint64_t> get_pointer() const;
  Status set_pointer(std::uint64_t v);

 private:
  const TypeRegistry& registry_;
  const LayoutEngine& layouts_;
  const ArchModel& arch_;
  TypeId type_;
  void* data_;
};

}  // namespace srpc
