// Structural type descriptions.
//
// A long pointer carries a *data type specifier*; the paper assumes "the
// system can obtain an actual data structure from a data type specifier by
// querying a database that serves as a network name server". TypeDescriptor
// is that actual structure: enough to compute a memory layout on any
// architecture and to locate every pointer field for swizzling.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace srpc {

using TypeId = std::uint32_t;

inline constexpr TypeId kInvalidTypeId = 0;

// Well-known scalar type ids, identical in every registry so that wire
// messages can name them without negotiation.
enum class ScalarType : TypeId {
  kI8 = 1,
  kU8,
  kI16,
  kU16,
  kI32,
  kU32,
  kI64,
  kU64,
  kF32,
  kF64,
  kBool,
};
inline constexpr TypeId kFirstUserTypeId = 64;

enum class TypeKind : std::uint8_t { kScalar, kPointer, kStruct, kArray };

struct FieldDescriptor {
  std::string name;
  TypeId type = kInvalidTypeId;
};

class TypeDescriptor {
 public:
  TypeDescriptor() = default;

  static TypeDescriptor make_scalar(TypeId id, ScalarType s, std::string name);
  static TypeDescriptor make_pointer(TypeId id, TypeId pointee, std::string name);
  static TypeDescriptor make_struct(TypeId id, std::string name,
                                    std::vector<FieldDescriptor> fields);
  static TypeDescriptor make_array(TypeId id, TypeId element, std::uint32_t count,
                                   std::string name);

  [[nodiscard]] TypeId id() const noexcept { return id_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] TypeKind kind() const noexcept { return kind_; }

  [[nodiscard]] ScalarType scalar() const;          // kScalar only
  [[nodiscard]] TypeId pointee() const;             // kPointer only
  [[nodiscard]] const std::vector<FieldDescriptor>& fields() const;  // kStruct
  [[nodiscard]] TypeId element() const;             // kArray only
  [[nodiscard]] std::uint32_t count() const;        // kArray only

  // True until define_struct() completes; layouts cannot be computed for
  // incomplete types (but pointers to them are fine — that is how
  // self-referential types like tree nodes are described).
  [[nodiscard]] bool is_incomplete() const noexcept { return incomplete_; }
  void complete(std::vector<FieldDescriptor> fields);

 private:
  TypeId id_ = kInvalidTypeId;
  std::string name_;
  TypeKind kind_ = TypeKind::kScalar;
  ScalarType scalar_ = ScalarType::kI8;
  TypeId pointee_ = kInvalidTypeId;
  std::vector<FieldDescriptor> fields_;
  TypeId element_ = kInvalidTypeId;
  std::uint32_t count_ = 0;
  bool incomplete_ = false;
};

// Size in bytes of a scalar; identical on every architecture we model.
std::uint32_t scalar_size(ScalarType s) noexcept;

}  // namespace srpc
