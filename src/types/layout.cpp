#include "types/layout.hpp"

#include <algorithm>
#include <stdexcept>

namespace srpc {

namespace {
std::uint64_t align_up(std::uint64_t offset, std::uint32_t align) noexcept {
  return (offset + align - 1) / align * align;
}
}  // namespace

Result<const Layout*> LayoutEngine::layout_of(const ArchModel& arch, TypeId type) const {
  const auto key = std::make_pair(key_of(arch), type);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = cache_.find(key);
    if (it != cache_.end()) return &it->second;
  }
  std::vector<TypeId> in_progress;
  auto computed = compute(arch, type, in_progress);
  if (!computed) return computed.status();
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, _] = cache_.try_emplace(key, std::move(computed.value()));
  return &it->second;
}

std::uint64_t LayoutEngine::size_of(const ArchModel& arch, TypeId type) const {
  auto layout = layout_of(arch, type);
  if (!layout) {
    throw std::logic_error("size_of(" + std::to_string(type) +
                           "): " + layout.status().to_string());
  }
  return layout.value()->size;
}

Result<Layout> LayoutEngine::compute(const ArchModel& arch, TypeId type,
                                     std::vector<TypeId>& in_progress) const {
  if (std::find(in_progress.begin(), in_progress.end(), type) != in_progress.end()) {
    return invalid_argument("type contains itself by value (use a pointer): id " +
                            std::to_string(type));
  }
  auto desc_or = registry_.find(type);
  if (!desc_or) return desc_or.status();
  const TypeDescriptor& desc = *desc_or.value();

  Layout out;
  switch (desc.kind()) {
    case TypeKind::kScalar: {
      const std::uint32_t size = scalar_size(desc.scalar());
      out.size = size;
      out.align = std::min(size, arch.max_align);
      return out;
    }
    case TypeKind::kPointer: {
      out.size = arch.pointer_size;
      out.align = std::min(arch.pointer_size, arch.max_align);
      return out;
    }
    case TypeKind::kArray: {
      in_progress.push_back(type);
      auto elem = compute(arch, desc.element(), in_progress);
      in_progress.pop_back();
      if (!elem) return elem.status();
      out.align = elem.value().align;
      out.size = elem.value().size * desc.count();
      return out;
    }
    case TypeKind::kStruct: {
      if (desc.is_incomplete()) {
        return failed_precondition("layout of incomplete struct: " + desc.name());
      }
      in_progress.push_back(type);
      std::uint64_t offset = 0;
      std::uint32_t align = 1;
      out.field_offsets.reserve(desc.fields().size());
      for (const auto& field : desc.fields()) {
        auto fl = compute(arch, field.type, in_progress);
        if (!fl) {
          in_progress.pop_back();
          return fl.status();
        }
        offset = align_up(offset, fl.value().align);
        out.field_offsets.push_back(offset);
        offset += fl.value().size;
        align = std::max(align, fl.value().align);
      }
      in_progress.pop_back();
      out.align = align;
      out.size = align_up(offset, align);
      return out;
    }
  }
  return internal_error("unreachable type kind");
}

}  // namespace srpc
