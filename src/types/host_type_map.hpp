// HostTypeMap — C++ static type -> registered TypeId.
//
// The typed stub layer (core/marshal.hpp) needs to know, at the point where
// a `TreeNode*` argument is marshalled, which TypeDescriptor describes
// TreeNode. Applications register that association once, right after
// building the descriptor (World::describe<T>() does both).
#pragma once

#include <mutex>
#include <typeindex>
#include <typeinfo>
#include <unordered_map>

#include "common/status.hpp"
#include "types/type_descriptor.hpp"

namespace srpc {

class HostTypeMap {
 public:
  HostTypeMap() = default;
  HostTypeMap(const HostTypeMap&) = delete;
  HostTypeMap& operator=(const HostTypeMap&) = delete;

  template <typename T>
  Status bind(TypeId id) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto [it, inserted] = map_.emplace(std::type_index(typeid(T)), id);
    if (!inserted) {
      return already_exists(std::string("host type already mapped: ") + typeid(T).name());
    }
    return Status::ok();
  }

  template <typename T>
  Result<TypeId> find() const {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = map_.find(std::type_index(typeid(T)));
    if (it == map_.end()) {
      return not_found(std::string("host type not registered with the runtime: ") +
                       typeid(T).name());
    }
    return it->second;
  }

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::type_index, TypeId> map_;
};

}  // namespace srpc
