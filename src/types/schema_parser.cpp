#include "types/schema_parser.hpp"

#include <cctype>
#include <vector>

namespace srpc {

namespace {

enum class TokenKind : std::uint8_t {
  kIdent,
  kNumber,
  kLBrace,   // {
  kRBrace,   // }
  kLBracket, // [
  kRBracket, // ]
  kColon,
  kSemi,
  kStar,
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  std::uint64_t number = 0;
  int line = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Result<std::vector<Token>> run() {
    std::vector<Token> tokens;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      if (c == '#' || (c == '/' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '/')) {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        const std::size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '_')) {
          ++pos_;
        }
        tokens.push_back({TokenKind::kIdent,
                          std::string(text_.substr(start, pos_ - start)), 0, line_});
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c))) {
        std::uint64_t value = 0;
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
          value = value * 10 + static_cast<std::uint64_t>(text_[pos_] - '0');
          if (value > 0xFFFFFFFFULL) {
            return parse_error("array bound too large");
          }
          ++pos_;
        }
        tokens.push_back({TokenKind::kNumber, "", value, line_});
        continue;
      }
      TokenKind kind;
      switch (c) {
        case '{':
          kind = TokenKind::kLBrace;
          break;
        case '}':
          kind = TokenKind::kRBrace;
          break;
        case '[':
          kind = TokenKind::kLBracket;
          break;
        case ']':
          kind = TokenKind::kRBracket;
          break;
        case ':':
          kind = TokenKind::kColon;
          break;
        case ';':
          kind = TokenKind::kSemi;
          break;
        case '*':
          kind = TokenKind::kStar;
          break;
        default:
          return parse_error(std::string("unexpected character '") + c + "'");
      }
      tokens.push_back({kind, std::string(1, c), 0, line_});
      ++pos_;
    }
    tokens.push_back({TokenKind::kEnd, "", 0, line_});
    return tokens;
  }

 private:
  Status parse_error(const std::string& message) const {
    return invalid_argument("schema line " + std::to_string(line_) + ": " + message);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int line_ = 1;
};

struct FieldSpec {
  std::string name;
  std::string base;           // base type name
  std::vector<std::uint32_t> arrays;  // applied first, in order
  std::vector<bool> suffixes;         // true = '*', false = '[n]' (parallel log)
  // Suffix application order, left to right: each entry is either a pointer
  // ('*') or an array bound (paired with `arrays` in order).
  int line = 0;
};

struct StructSpec {
  std::string name;
  std::vector<FieldSpec> fields;
  int line = 0;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<std::vector<StructSpec>> run() {
    std::vector<StructSpec> structs;
    while (peek().kind != TokenKind::kEnd) {
      auto spec = parse_struct();
      if (!spec) return spec.status();
      structs.push_back(std::move(spec).value());
    }
    return structs;
  }

 private:
  const Token& peek() const { return tokens_[index_]; }
  Token take() { return tokens_[index_++]; }

  Status error(const Token& at, const std::string& message) const {
    return invalid_argument("schema line " + std::to_string(at.line) + ": " + message);
  }

  Result<Token> expect(TokenKind kind, const std::string& what) {
    Token token = take();
    if (token.kind != kind) {
      return error(token, "expected " + what);
    }
    return token;
  }

  Result<StructSpec> parse_struct() {
    auto kw = expect(TokenKind::kIdent, "'struct'");
    if (!kw) return kw.status();
    if (kw.value().text != "struct") {
      return error(kw.value(), "expected 'struct', got '" + kw.value().text + "'");
    }
    auto name = expect(TokenKind::kIdent, "struct name");
    if (!name) return name.status();
    StructSpec spec;
    spec.name = name.value().text;
    spec.line = name.value().line;
    auto open = expect(TokenKind::kLBrace, "'{'");
    if (!open) return open.status();
    while (peek().kind != TokenKind::kRBrace) {
      auto field = parse_field();
      if (!field) return field.status();
      spec.fields.push_back(std::move(field).value());
    }
    take();  // '}'
    if (spec.fields.empty()) {
      return error(kw.value(), "struct '" + spec.name + "' has no fields");
    }
    return spec;
  }

  Result<FieldSpec> parse_field() {
    auto name = expect(TokenKind::kIdent, "field name");
    if (!name) return name.status();
    auto colon = expect(TokenKind::kColon, "':'");
    if (!colon) return colon.status();
    auto base = expect(TokenKind::kIdent, "type name");
    if (!base) return base.status();

    FieldSpec field;
    field.name = name.value().text;
    field.base = base.value().text;
    field.line = name.value().line;
    while (true) {
      if (peek().kind == TokenKind::kStar) {
        take();
        field.suffixes.push_back(true);
      } else if (peek().kind == TokenKind::kLBracket) {
        take();
        auto bound = expect(TokenKind::kNumber, "array bound");
        if (!bound) return bound.status();
        if (bound.value().number == 0) {
          return error(bound.value(), "array bound must be positive");
        }
        auto close = expect(TokenKind::kRBracket, "']'");
        if (!close) return close.status();
        field.arrays.push_back(static_cast<std::uint32_t>(bound.value().number));
        field.suffixes.push_back(false);
      } else {
        break;
      }
    }
    auto semi = expect(TokenKind::kSemi, "';'");
    if (!semi) return semi.status();
    return field;
  }

  std::vector<Token> tokens_;
  std::size_t index_ = 0;
};

}  // namespace

Result<std::map<std::string, TypeId>> parse_schema(TypeRegistry& registry,
                                                   std::string_view text) {
  Lexer lexer(text);
  auto tokens = lexer.run();
  if (!tokens) return tokens.status();
  Parser parser(std::move(tokens).value());
  auto structs = parser.run();
  if (!structs) return structs.status();

  // Pass 1: declare every struct so fields can reference any of them.
  std::map<std::string, TypeId> declared;
  for (const StructSpec& spec : structs.value()) {
    auto id = registry.declare_struct(spec.name);
    if (!id) {
      return Status(id.status().code(), "schema line " + std::to_string(spec.line) +
                                            ": " + id.status().message());
    }
    declared.emplace(spec.name, id.value());
  }

  // Pass 2: resolve field types and define.
  for (const StructSpec& spec : structs.value()) {
    std::vector<FieldDescriptor> fields;
    for (const FieldSpec& field : spec.fields) {
      TypeId type = kInvalidTypeId;
      if (auto local = declared.find(field.base); local != declared.end()) {
        type = local->second;
      } else if (auto known = registry.find_by_name(field.base)) {
        type = known.value();
      } else {
        return invalid_argument("schema line " + std::to_string(field.line) +
                                ": unknown type '" + field.base + "'");
      }
      std::size_t array_index = 0;
      for (const bool is_pointer : field.suffixes) {
        if (is_pointer) {
          type = registry.pointer_to(type);
        } else {
          type = registry.array_of(type, field.arrays[array_index++]);
        }
      }
      fields.push_back({field.name, type});
    }
    Status defined = registry.define_struct(declared.at(spec.name), std::move(fields));
    if (!defined.is_ok()) {
      return Status(defined.code(), "schema line " + std::to_string(spec.line) + ": " +
                                        defined.message());
    }
  }
  return declared;
}

}  // namespace srpc
