#include "types/value_codec.hpp"

namespace srpc {

namespace {

// Sign-extends the low `bits` of `v`.
std::int64_t sign_extend(std::uint64_t v, unsigned bits) noexcept {
  const unsigned shift = 64 - bits;
  return static_cast<std::int64_t>(v << shift) >> shift;
}

Status encode_scalar(const ArchModel& arch, ScalarType s, const void* src,
                     xdr::Encoder& enc) {
  const std::uint32_t size = scalar_size(s);
  const std::uint64_t raw = read_scaled_uint(src, size, arch.endian);
  switch (s) {
    case ScalarType::kI8:
    case ScalarType::kI16:
    case ScalarType::kI32:
      enc.put_i32(static_cast<std::int32_t>(sign_extend(raw, size * 8)));
      return Status::ok();
    case ScalarType::kU8:
    case ScalarType::kU16:
    case ScalarType::kU32:
      enc.put_u32(static_cast<std::uint32_t>(raw));
      return Status::ok();
    case ScalarType::kBool:
      enc.put_bool(raw != 0);
      return Status::ok();
    case ScalarType::kI64:
    case ScalarType::kU64:
      enc.put_u64(raw);
      return Status::ok();
    case ScalarType::kF32:
      enc.put_u32(static_cast<std::uint32_t>(raw));  // IEEE bits, already canonical
      return Status::ok();
    case ScalarType::kF64:
      enc.put_u64(raw);
      return Status::ok();
  }
  return internal_error("unreachable scalar kind");
}

Status decode_scalar(const ArchModel& arch, ScalarType s, void* dst, xdr::Decoder& dec) {
  const std::uint32_t size = scalar_size(s);
  std::uint64_t raw = 0;
  switch (s) {
    case ScalarType::kI8:
    case ScalarType::kI16:
    case ScalarType::kI32:
    case ScalarType::kU8:
    case ScalarType::kU16:
    case ScalarType::kU32:
    case ScalarType::kF32:
    case ScalarType::kBool: {
      auto v = dec.get_u32();
      if (!v) return v.status();
      raw = v.value();
      break;
    }
    case ScalarType::kI64:
    case ScalarType::kU64:
    case ScalarType::kF64: {
      auto v = dec.get_u64();
      if (!v) return v.status();
      raw = v.value();
      break;
    }
  }
  write_scaled_uint(dst, size, arch.endian, raw);
  return Status::ok();
}

}  // namespace

Status LongPointerFieldCodec::encode(xdr::Encoder& enc, std::uint64_t ordinary,
                                     TypeId pointee) {
  if (ordinary == 0) {
    encode_long_pointer(enc, LongPointer::null());
    return Status::ok();
  }
  auto lp = translator_.unswizzle(ordinary, pointee);
  if (!lp) return lp.status();
  encode_long_pointer(enc, lp.value());
  return Status::ok();
}

Result<std::uint64_t> LongPointerFieldCodec::decode(xdr::Decoder& dec, TypeId pointee) {
  auto lp = decode_long_pointer(dec);
  if (!lp) return lp.status();
  if (lp.value().is_null()) return std::uint64_t{0};
  return translator_.swizzle(lp.value(), pointee);
}

Status NullOnlyFieldCodec::encode(xdr::Encoder& enc, std::uint64_t ordinary,
                                  TypeId pointee) {
  (void)enc;
  (void)pointee;
  return failed_precondition("non-null pointer (0x" + std::to_string(ordinary) +
                             ") where no pointers are allowed");
}

Result<std::uint64_t> NullOnlyFieldCodec::decode(xdr::Decoder& dec, TypeId pointee) {
  (void)dec;
  (void)pointee;
  return failed_precondition("pointer field where no pointers are allowed");
}

Status ValueCodec::encode(const ArchModel& arch, TypeId type, const void* src,
                          xdr::Encoder& enc, PointerFieldCodec& ptr) const {
  auto desc_or = registry.find(type);
  if (!desc_or) return desc_or.status();
  const TypeDescriptor& desc = *desc_or.value();
  const auto* bytes = static_cast<const std::uint8_t*>(src);

  switch (desc.kind()) {
    case TypeKind::kScalar:
      return encode_scalar(arch, desc.scalar(), src, enc);
    case TypeKind::kPointer: {
      const std::uint64_t ordinary =
          read_scaled_uint(src, arch.pointer_size, arch.endian);
      return ptr.encode(enc, ordinary, desc.pointee());
    }
    case TypeKind::kArray: {
      auto elem_layout = layouts.layout_of(arch, desc.element());
      if (!elem_layout) return elem_layout.status();
      const std::uint64_t stride = elem_layout.value()->size;
      for (std::uint32_t i = 0; i < desc.count(); ++i) {
        SRPC_RETURN_IF_ERROR(encode(arch, desc.element(), bytes + i * stride, enc, ptr));
      }
      return Status::ok();
    }
    case TypeKind::kStruct: {
      auto layout = layouts.layout_of(arch, type);
      if (!layout) return layout.status();
      const auto& fields = desc.fields();
      for (std::size_t i = 0; i < fields.size(); ++i) {
        SRPC_RETURN_IF_ERROR(encode(arch, fields[i].type,
                                    bytes + layout.value()->field_offsets[i], enc, ptr));
      }
      return Status::ok();
    }
  }
  return internal_error("unreachable type kind");
}

Status ValueCodec::decode(const ArchModel& arch, TypeId type, void* dst,
                          xdr::Decoder& dec, PointerFieldCodec& ptr) const {
  auto desc_or = registry.find(type);
  if (!desc_or) return desc_or.status();
  const TypeDescriptor& desc = *desc_or.value();
  auto* bytes = static_cast<std::uint8_t*>(dst);

  switch (desc.kind()) {
    case TypeKind::kScalar:
      return decode_scalar(arch, desc.scalar(), dst, dec);
    case TypeKind::kPointer: {
      auto ordinary = ptr.decode(dec, desc.pointee());
      if (!ordinary) return ordinary.status();
      if (arch.pointer_size < 8 &&
          ordinary.value() >= (1ULL << (8 * arch.pointer_size))) {
        return internal_error("swizzled pointer does not fit " +
                              std::to_string(arch.pointer_size) + "-byte pointer");
      }
      write_scaled_uint(dst, arch.pointer_size, arch.endian, ordinary.value());
      return Status::ok();
    }
    case TypeKind::kArray: {
      auto elem_layout = layouts.layout_of(arch, desc.element());
      if (!elem_layout) return elem_layout.status();
      const std::uint64_t stride = elem_layout.value()->size;
      for (std::uint32_t i = 0; i < desc.count(); ++i) {
        SRPC_RETURN_IF_ERROR(decode(arch, desc.element(), bytes + i * stride, dec, ptr));
      }
      return Status::ok();
    }
    case TypeKind::kStruct: {
      auto layout = layouts.layout_of(arch, type);
      if (!layout) return layout.status();
      const auto& fields = desc.fields();
      for (std::size_t i = 0; i < fields.size(); ++i) {
        SRPC_RETURN_IF_ERROR(decode(arch, fields[i].type,
                                    bytes + layout.value()->field_offsets[i], dec, ptr));
      }
      return Status::ok();
    }
  }
  return internal_error("unreachable type kind");
}

Result<std::uint64_t> ValueCodec::wire_size(TypeId type,
                                            std::uint64_t pointer_wire_bytes) const {
  auto desc_or = registry.find(type);
  if (!desc_or) return desc_or.status();
  const TypeDescriptor& desc = *desc_or.value();
  switch (desc.kind()) {
    case TypeKind::kScalar:
      return static_cast<std::uint64_t>(scalar_size(desc.scalar()) <= 4 ? 4 : 8);
    case TypeKind::kPointer:
      return pointer_wire_bytes;
    case TypeKind::kArray: {
      auto elem = wire_size(desc.element(), pointer_wire_bytes);
      if (!elem) return elem.status();
      return elem.value() * desc.count();
    }
    case TypeKind::kStruct: {
      if (desc.is_incomplete()) {
        return failed_precondition("wire_size of incomplete struct: " + desc.name());
      }
      std::uint64_t total = 0;
      for (const auto& f : desc.fields()) {
        auto fs = wire_size(f.type, pointer_wire_bytes);
        if (!fs) return fs.status();
        total += fs.value();
      }
      return total;
    }
  }
  return internal_error("unreachable type kind");
}

}  // namespace srpc
