#include "types/value_view.hpp"

#include <bit>

namespace srpc {

Result<ValueView> ValueView::field(const std::string& name) const {
  auto desc_or = registry_.find(type_);
  if (!desc_or) return desc_or.status();
  const TypeDescriptor& desc = *desc_or.value();
  if (desc.kind() != TypeKind::kStruct) {
    return invalid_argument("field() on non-struct " + desc.name());
  }
  auto layout = layouts_.layout_of(arch_, type_);
  if (!layout) return layout.status();
  const auto& fields = desc.fields();
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (fields[i].name == name) {
      return ValueView(registry_, layouts_, arch_, fields[i].type,
                       static_cast<std::uint8_t*>(data_) +
                           layout.value()->field_offsets[i]);
    }
  }
  return not_found("no field '" + name + "' in " + desc.name());
}

Result<ValueView> ValueView::element(std::uint32_t index) const {
  auto desc_or = registry_.find(type_);
  if (!desc_or) return desc_or.status();
  const TypeDescriptor& desc = *desc_or.value();
  if (desc.kind() != TypeKind::kArray) {
    return invalid_argument("element() on non-array " + desc.name());
  }
  if (index >= desc.count()) {
    return out_of_range("element " + std::to_string(index) + " of " + desc.name());
  }
  auto elem_layout = layouts_.layout_of(arch_, desc.element());
  if (!elem_layout) return elem_layout.status();
  return ValueView(registry_, layouts_, arch_, desc.element(),
                   static_cast<std::uint8_t*>(data_) +
                       static_cast<std::size_t>(index) * elem_layout.value()->size);
}

namespace {
std::int64_t sign_extend(std::uint64_t v, unsigned bits) noexcept {
  const unsigned shift = 64 - bits;
  return static_cast<std::int64_t>(v << shift) >> shift;
}

bool is_signed_scalar(ScalarType s) noexcept {
  return s == ScalarType::kI8 || s == ScalarType::kI16 || s == ScalarType::kI32 ||
         s == ScalarType::kI64;
}
}  // namespace

Result<std::int64_t> ValueView::get_int() const {
  auto desc_or = registry_.find(type_);
  if (!desc_or) return desc_or.status();
  const TypeDescriptor& desc = *desc_or.value();
  if (desc.kind() != TypeKind::kScalar) {
    return invalid_argument("get_int() on non-scalar " + desc.name());
  }
  const ScalarType s = desc.scalar();
  if (s == ScalarType::kF32 || s == ScalarType::kF64) {
    return invalid_argument("get_int() on floating-point field");
  }
  const std::uint32_t size = scalar_size(s);
  const std::uint64_t raw = read_scaled_uint(data_, size, arch_.endian);
  if (is_signed_scalar(s)) {
    return sign_extend(raw, size * 8);
  }
  return static_cast<std::int64_t>(raw);
}

Status ValueView::set_int(std::int64_t v) {
  auto desc_or = registry_.find(type_);
  if (!desc_or) return desc_or.status();
  const TypeDescriptor& desc = *desc_or.value();
  if (desc.kind() != TypeKind::kScalar) {
    return invalid_argument("set_int() on non-scalar " + desc.name());
  }
  const ScalarType s = desc.scalar();
  if (s == ScalarType::kF32 || s == ScalarType::kF64) {
    return invalid_argument("set_int() on floating-point field");
  }
  write_scaled_uint(data_, scalar_size(s), arch_.endian, static_cast<std::uint64_t>(v));
  return Status::ok();
}

Result<double> ValueView::get_float() const {
  auto desc_or = registry_.find(type_);
  if (!desc_or) return desc_or.status();
  const TypeDescriptor& desc = *desc_or.value();
  if (desc.kind() != TypeKind::kScalar) {
    return invalid_argument("get_float() on non-scalar");
  }
  const ScalarType s = desc.scalar();
  if (s == ScalarType::kF32) {
    return static_cast<double>(std::bit_cast<float>(static_cast<std::uint32_t>(
        read_scaled_uint(data_, 4, arch_.endian))));
  }
  if (s == ScalarType::kF64) {
    return std::bit_cast<double>(read_scaled_uint(data_, 8, arch_.endian));
  }
  return invalid_argument("get_float() on integer field");
}

Status ValueView::set_float(double v) {
  auto desc_or = registry_.find(type_);
  if (!desc_or) return desc_or.status();
  const TypeDescriptor& desc = *desc_or.value();
  if (desc.kind() != TypeKind::kScalar) {
    return invalid_argument("set_float() on non-scalar");
  }
  const ScalarType s = desc.scalar();
  if (s == ScalarType::kF32) {
    write_scaled_uint(data_, 4, arch_.endian,
                      std::bit_cast<std::uint32_t>(static_cast<float>(v)));
    return Status::ok();
  }
  if (s == ScalarType::kF64) {
    write_scaled_uint(data_, 8, arch_.endian, std::bit_cast<std::uint64_t>(v));
    return Status::ok();
  }
  return invalid_argument("set_float() on integer field");
}

Result<std::uint64_t> ValueView::get_pointer() const {
  auto desc_or = registry_.find(type_);
  if (!desc_or) return desc_or.status();
  if (desc_or.value()->kind() != TypeKind::kPointer) {
    return invalid_argument("get_pointer() on non-pointer field");
  }
  return read_scaled_uint(data_, arch_.pointer_size, arch_.endian);
}

Status ValueView::set_pointer(std::uint64_t v) {
  auto desc_or = registry_.find(type_);
  if (!desc_or) return desc_or.status();
  if (desc_or.value()->kind() != TypeKind::kPointer) {
    return invalid_argument("set_pointer() on non-pointer field");
  }
  if (arch_.pointer_size < 8 && v >= (1ULL << (8 * arch_.pointer_size))) {
    return out_of_range("pointer value does not fit this architecture");
  }
  write_scaled_uint(data_, arch_.pointer_size, arch_.endian, v);
  return Status::ok();
}

}  // namespace srpc
