// HostStructBuilder — describe a real C++ struct to the type system.
//
// Examples and application code hand real host structs (tree nodes, list
// cells) to the RPC runtime. The builder records each member via a member
// pointer, infers scalar descriptors, and at build() time *verifies* that
// the layout engine's idea of the host layout matches the compiler's
// (offset-by-offset and total size). A mismatch is a hard error: silently
// disagreeing layouts would corrupt swizzled memory.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

#include "common/status.hpp"
#include "types/arch.hpp"
#include "types/layout.hpp"
#include "types/type_descriptor.hpp"
#include "types/type_registry.hpp"

namespace srpc {

namespace detail {

template <typename F>
constexpr TypeId scalar_type_id() {
  using T = std::remove_cv_t<F>;
  if constexpr (std::is_same_v<T, bool>) {
    return TypeRegistry::scalar_id(ScalarType::kBool);
  } else if constexpr (std::is_same_v<T, float>) {
    return TypeRegistry::scalar_id(ScalarType::kF32);
  } else if constexpr (std::is_same_v<T, double>) {
    return TypeRegistry::scalar_id(ScalarType::kF64);
  } else if constexpr (std::is_integral_v<T> && std::is_signed_v<T>) {
    if constexpr (sizeof(T) == 1) return TypeRegistry::scalar_id(ScalarType::kI8);
    if constexpr (sizeof(T) == 2) return TypeRegistry::scalar_id(ScalarType::kI16);
    if constexpr (sizeof(T) == 4) return TypeRegistry::scalar_id(ScalarType::kI32);
    if constexpr (sizeof(T) == 8) return TypeRegistry::scalar_id(ScalarType::kI64);
  } else if constexpr (std::is_integral_v<T> && std::is_unsigned_v<T>) {
    if constexpr (sizeof(T) == 1) return TypeRegistry::scalar_id(ScalarType::kU8);
    if constexpr (sizeof(T) == 2) return TypeRegistry::scalar_id(ScalarType::kU16);
    if constexpr (sizeof(T) == 4) return TypeRegistry::scalar_id(ScalarType::kU32);
    if constexpr (sizeof(T) == 8) return TypeRegistry::scalar_id(ScalarType::kU64);
  }
  return kInvalidTypeId;
}

// Offset of a member designated by member pointer. Uses a null-object
// computation; formally outside the standard but universally defined on the
// ABIs we target (and cross-checked against the layout engine at build()).
template <typename T, typename F>
std::size_t member_offset(F T::*member) noexcept {
  alignas(T) static unsigned char storage[sizeof(T)];
  auto* obj = reinterpret_cast<T*>(storage);
  return static_cast<std::size_t>(reinterpret_cast<const unsigned char*>(&(obj->*member)) -
                                  reinterpret_cast<const unsigned char*>(obj));
}

}  // namespace detail

// Checks that the engine-computed host layout of `type` matches the real
// size and per-field offsets gathered by the builder.
Status verify_host_layout(const TypeRegistry& registry, const LayoutEngine& engine,
                          TypeId type, std::size_t real_size,
                          const std::vector<std::size_t>& real_offsets);

template <typename T>
class HostStructBuilder {
  static_assert(std::is_standard_layout_v<T>,
                "only standard-layout structs can cross address spaces");

 public:
  HostStructBuilder(TypeRegistry& registry, LayoutEngine& engine, std::string name)
      : registry_(registry), engine_(engine), name_(std::move(name)) {
    auto id = registry_.declare_struct(name_);
    if (id) {
      id_ = id.value();
    } else {
      pending_error_ = id.status();
    }
  }

  // The declared type id is available immediately so self-referential
  // pointer fields can name it before build().
  [[nodiscard]] TypeId id() const noexcept { return id_; }

  template <typename F>
    requires std::is_arithmetic_v<F>
  HostStructBuilder& field(const std::string& field_name, F T::*member) {
    const TypeId scalar = detail::scalar_type_id<F>();
    if (scalar == kInvalidTypeId) {
      record_error(invalid_argument("unsupported scalar field: " + field_name));
      return *this;
    }
    add(field_name, scalar, detail::member_offset(member));
    return *this;
  }

  // Pointer member; `pointee` is the registered type id of *member's target
  // (pass id() for self-referential links).
  template <typename F>
  HostStructBuilder& pointer_field(const std::string& field_name, F* T::*member,
                                   TypeId pointee) {
    add(field_name, registry_.pointer_to(pointee), detail::member_offset(member));
    return *this;
  }

  // Fixed C-array member of arithmetic elements.
  template <typename F, std::size_t N>
    requires std::is_arithmetic_v<F>
  HostStructBuilder& array_field(const std::string& field_name, F (T::*member)[N]) {
    const TypeId scalar = detail::scalar_type_id<F>();
    if (scalar == kInvalidTypeId) {
      record_error(invalid_argument("unsupported array element: " + field_name));
      return *this;
    }
    add(field_name, registry_.array_of(scalar, static_cast<std::uint32_t>(N)),
        detail::member_offset(member));
    return *this;
  }

  // Fixed C-array member of pointers; `pointee` is the target type id.
  template <typename F, std::size_t N>
  HostStructBuilder& pointer_array_field(const std::string& field_name,
                                         F* (T::*member)[N], TypeId pointee) {
    add(field_name,
        registry_.array_of(registry_.pointer_to(pointee), static_cast<std::uint32_t>(N)),
        detail::member_offset(member));
    return *this;
  }

  // Nested struct by value; `nested` is the already-built type id.
  template <typename F>
    requires std::is_class_v<F>
  HostStructBuilder& struct_field(const std::string& field_name, F T::*member,
                                  TypeId nested) {
    add(field_name, nested, detail::member_offset(member));
    return *this;
  }

  // Defines the struct and verifies the host layout agrees with the
  // compiler's. Returns the type id on success.
  Result<TypeId> build() {
    if (!pending_error_.is_ok()) return pending_error_;
    if (fields_.empty()) return invalid_argument("struct has no fields: " + name_);
    SRPC_RETURN_IF_ERROR(registry_.define_struct(id_, fields_));
    SRPC_RETURN_IF_ERROR(
        verify_host_layout(registry_, engine_, id_, sizeof(T), offsets_));
    return id_;
  }

 private:
  void add(const std::string& field_name, TypeId type, std::size_t offset) {
    fields_.push_back({field_name, type});
    offsets_.push_back(offset);
  }
  void record_error(Status s) {
    if (pending_error_.is_ok()) pending_error_ = std::move(s);
  }

  TypeRegistry& registry_;
  LayoutEngine& engine_;
  std::string name_;
  TypeId id_ = kInvalidTypeId;
  std::vector<FieldDescriptor> fields_;
  std::vector<std::size_t> offsets_;
  Status pending_error_;
};

}  // namespace srpc
