// Descriptor-driven value encoding (paper §3.2, "data representations must
// be encoded and decoded to preserve their data types in a heterogeneous
// environment ... except for the case of pointers, which must be unswizzled
// and swizzled").
//
// encode() walks a TypeDescriptor over a memory image laid out for a given
// ArchModel and emits canonical XDR; decode() does the reverse. Pointer
// fields are delegated to a PointerFieldCodec, because their wire form
// depends on context: argument marshalling sends full long pointers
// (LongPointerFieldCodec), while graph payloads use a compact tagged form
// (core/graph_payload.hpp).
#pragma once

#include <cstdint>

#include "common/status.hpp"
#include "swizzle/long_pointer.hpp"
#include "types/arch.hpp"
#include "types/layout.hpp"
#include "types/type_registry.hpp"
#include "xdr/xdr_decoder.hpp"
#include "xdr/xdr_encoder.hpp"

namespace srpc {

// Translates between in-memory ordinary pointers and long pointers.
// Implementations live in core/ (the cache manager swizzles via the data
// allocation table; homes unswizzle via the managed heap).
class PointerTranslator {
 public:
  virtual ~PointerTranslator() = default;

  // memory -> wire. `ordinary` is the raw pointer value read from the image
  // (zero means null and never reaches here).
  virtual Result<LongPointer> unswizzle(std::uint64_t ordinary, TypeId pointee) = 0;

  // wire -> memory. Returns the ordinary pointer value to store (the long
  // pointer is never null here).
  virtual Result<std::uint64_t> swizzle(const LongPointer& pointer, TypeId pointee) = 0;
};

// How pointer *fields* inside a value appear on the wire.
class PointerFieldCodec {
 public:
  virtual ~PointerFieldCodec() = default;
  virtual Status encode(xdr::Encoder& enc, std::uint64_t ordinary, TypeId pointee) = 0;
  virtual Result<std::uint64_t> decode(xdr::Decoder& dec, TypeId pointee) = 0;
};

// The plain form: every pointer field is a 16-byte long pointer (null
// encodes as the null long pointer), translated via a PointerTranslator.
class LongPointerFieldCodec final : public PointerFieldCodec {
 public:
  explicit LongPointerFieldCodec(PointerTranslator& translator)
      : translator_(translator) {}
  Status encode(xdr::Encoder& enc, std::uint64_t ordinary, TypeId pointee) override;
  Result<std::uint64_t> decode(xdr::Decoder& dec, TypeId pointee) override;

 private:
  PointerTranslator& translator_;
};

// Rejects any non-null pointer; for values that must be pointer-free.
class NullOnlyFieldCodec final : public PointerFieldCodec {
 public:
  Status encode(xdr::Encoder& enc, std::uint64_t ordinary, TypeId pointee) override;
  Result<std::uint64_t> decode(xdr::Decoder& dec, TypeId pointee) override;
};

struct ValueCodec {
  const TypeRegistry& registry;
  const LayoutEngine& layouts;

  // Encodes the object at `src` (laid out per `arch`) as canonical XDR.
  Status encode(const ArchModel& arch, TypeId type, const void* src,
                xdr::Encoder& enc, PointerFieldCodec& ptr) const;

  // Decodes canonical XDR into the object at `dst` (laid out per `arch`).
  Status decode(const ArchModel& arch, TypeId type, void* dst,
                xdr::Decoder& dec, PointerFieldCodec& ptr) const;

  // Canonical wire size of one value of `type`, assuming each pointer field
  // occupies `pointer_wire_bytes` (16 for the long-pointer form; callers
  // budgeting compact graph payloads pass their own estimate).
  Result<std::uint64_t> wire_size(TypeId type,
                                  std::uint64_t pointer_wire_bytes =
                                      kLongPointerWireSize) const;
};

}  // namespace srpc
