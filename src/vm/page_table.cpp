#include "vm/page_table.hpp"

namespace srpc {

std::string_view to_string(PageState s) noexcept {
  switch (s) {
    case PageState::kEmpty:
      return "EMPTY";
    case PageState::kAllocated:
      return "ALLOCATED";
    case PageState::kClean:
      return "CLEAN";
    case PageState::kDirty:
      return "DIRTY";
  }
  return "?";
}

Status PageTable::transition(PageIndex page, PageState to) {
  if (page >= pages_.size()) {
    return out_of_range("page " + std::to_string(page) + " outside table");
  }
  PageInfo& info = pages_[page];
  const PageState from = info.state;
  const bool legal = (from == PageState::kEmpty && to == PageState::kAllocated) ||
                     (from == PageState::kAllocated && to == PageState::kClean) ||
                     (from == PageState::kAllocated && to == PageState::kDirty) ||
                     (from == PageState::kClean && to == PageState::kDirty) ||
                     (from == PageState::kDirty && to == PageState::kClean);
  if (!legal) {
    return failed_precondition(std::string("illegal page transition ") +
                               std::string(to_string(from)) + " -> " +
                               std::string(to_string(to)) + " on page " +
                               std::to_string(page));
  }
  info.state = to;
  if (info.kind == PageKind::kLazy &&
      (to == PageState::kClean || to == PageState::kDirty)) {
    info.sealed = true;
  }
  return Status::ok();
}

std::vector<PageIndex> PageTable::pages_in_state(PageState s) const {
  std::vector<PageIndex> out;
  for (std::size_t i = 0; i < pages_.size(); ++i) {
    if (pages_[i].state == s) out.push_back(static_cast<PageIndex>(i));
  }
  return out;
}

void PageTable::snapshot_twin(PageIndex page, const std::uint8_t* bytes,
                              std::size_t len) {
  twins_[page].assign(bytes, bytes + len);
}

void PageTable::reset() {
  for (auto& p : pages_) p = PageInfo{};
  twins_.clear();
}

}  // namespace srpc
