// Page-protection primitive (paper §1: "Modern operating system kernels
// such as Mach and SunOS provide primitives for user-level program control
// of page access to virtual memory and page-fault handling").
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "common/status.hpp"

namespace srpc {

enum class PageProtection : std::uint8_t {
  kNone,       // no access: first touch must be detectable
  kRead,       // clean cached data: writes must be detectable
  kReadWrite,  // dirty cached data: fully materialised
};

std::string_view to_string(PageProtection p) noexcept;

// mprotect() wrapper. `addr` must be page-aligned.
Status set_protection(void* addr, std::size_t len, PageProtection prot);

// The host page size (cached getpagesize()).
std::size_t host_page_size() noexcept;

}  // namespace srpc
