// PageArena — a reserved, page-protected virtual memory range.
//
// Each address space owns one arena as its "protected page area" (paper
// §3.2): the region remote data is swizzled into. The whole range is
// reserved PROT_NONE at construction; the cache manager flips per-page
// protection as data arrives and is modified.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/status.hpp"
#include "vm/protection.hpp"

namespace srpc {

using PageIndex = std::uint32_t;
inline constexpr PageIndex kInvalidPage = 0xFFFFFFFFU;

class PageArena {
 public:
  // Reserves `page_count` pages of `page_size` bytes (PROT_NONE).
  // `page_size` must be a multiple of the host page size; the paper's
  // SunOS/SPARC pages were 4 KiB, the default here.
  static Result<PageArena> create(std::size_t page_count, std::size_t page_size = 4096);

  PageArena() = default;
  ~PageArena();
  PageArena(PageArena&& other) noexcept;
  PageArena& operator=(PageArena&& other) noexcept;
  PageArena(const PageArena&) = delete;
  PageArena& operator=(const PageArena&) = delete;

  [[nodiscard]] std::uint8_t* base() const noexcept { return base_; }
  [[nodiscard]] std::size_t page_size() const noexcept { return page_size_; }
  [[nodiscard]] std::size_t page_count() const noexcept { return page_count_; }
  [[nodiscard]] std::size_t byte_size() const noexcept { return page_count_ * page_size_; }

  [[nodiscard]] bool contains(const void* addr) const noexcept {
    const auto* p = static_cast<const std::uint8_t*>(addr);
    return p >= base_ && p < base_ + byte_size();
  }

  [[nodiscard]] std::uint8_t* page_base(PageIndex page) const noexcept {
    return base_ + static_cast<std::size_t>(page) * page_size_;
  }

  // Page containing `addr`; kInvalidPage if outside the arena.
  [[nodiscard]] PageIndex page_of(const void* addr) const noexcept {
    if (!contains(addr)) return kInvalidPage;
    return static_cast<PageIndex>(
        (static_cast<const std::uint8_t*>(addr) - base_) / page_size_);
  }

  // Changes the protection of one page.
  Status protect(PageIndex page, PageProtection prot) const;

 private:
  PageArena(std::uint8_t* base, std::size_t page_count, std::size_t page_size)
      : base_(base), page_count_(page_count), page_size_(page_size) {}

  void release() noexcept;

  std::uint8_t* base_ = nullptr;
  std::size_t page_count_ = 0;
  std::size_t page_size_ = 0;
};

}  // namespace srpc
