#include "vm/protection.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace srpc {

std::string_view to_string(PageProtection p) noexcept {
  switch (p) {
    case PageProtection::kNone:
      return "NONE";
    case PageProtection::kRead:
      return "READ";
    case PageProtection::kReadWrite:
      return "READ_WRITE";
  }
  return "?";
}

Status set_protection(void* addr, std::size_t len, PageProtection prot) {
  int flags = PROT_NONE;
  switch (prot) {
    case PageProtection::kNone:
      flags = PROT_NONE;
      break;
    case PageProtection::kRead:
      flags = PROT_READ;
      break;
    case PageProtection::kReadWrite:
      flags = PROT_READ | PROT_WRITE;
      break;
  }
  if (::mprotect(addr, len, flags) != 0) {
    return internal_error(std::string("mprotect: ") + std::strerror(errno));
  }
  return Status::ok();
}

std::size_t host_page_size() noexcept {
  static const std::size_t size = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  return size;
}

}  // namespace srpc
