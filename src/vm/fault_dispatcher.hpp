// FaultDispatcher — routes access-violation exceptions to runtime handlers.
//
// This is the paper's "the operating system kernel is informed a priori that
// the runtime system handles the exception" (§3.2): a process-wide SIGSEGV/
// SIGBUS handler that maps the faulting address to the owning cache arena
// and invokes that runtime's handler *on the faulting thread*. When the
// handler returns true the faulting instruction is restarted by the kernel;
// by then the runtime has fetched the data and opened the page.
//
// Faults on addresses no range claims are re-raised with the default
// disposition so genuine crashes still produce a core dump.
//
// Signal-context discipline (see also net/mailbox.hpp): handlers may wait on
// mailboxes and send messages, because the fault is synchronous, runs on the
// faulting thread's own stack, and the runtime never touches a protected
// page while holding a lock.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/status.hpp"

namespace srpc {

enum class FaultAccess : std::uint8_t { kRead, kWrite, kUnknown };

class FaultHandler {
 public:
  virtual ~FaultHandler() = default;
  // Returns true if the fault was resolved and the instruction may retry.
  virtual bool on_fault(void* addr, FaultAccess access) = 0;
};

class FaultDispatcher {
 public:
  static FaultDispatcher& instance();

  FaultDispatcher(const FaultDispatcher&) = delete;
  FaultDispatcher& operator=(const FaultDispatcher&) = delete;

  // Registers [base, base+len) -> handler. Installs the signal handler on
  // first registration. `handler` must outlive the registration.
  Status register_range(void* base, std::size_t len, FaultHandler* handler);

  // Removes a registration. Must not race with an in-flight fault on the
  // same range (runtimes unregister only at teardown, after traffic stops).
  Status unregister_range(void* base);

  [[nodiscard]] std::size_t range_count() const noexcept;

  // Total faults successfully dispatched (all ranges); micro-bench fodder.
  [[nodiscard]] std::uint64_t dispatched_faults() const noexcept;

 private:
  FaultDispatcher() = default;

  static void signal_handler(int signo, void* info, void* context);

  static constexpr std::size_t kMaxRanges = 256;

  struct Range {
    std::uintptr_t base = 0;
    std::uintptr_t end = 0;
    FaultHandler* handler = nullptr;
    bool active = false;
  };

  // Spinlock, acquirable from the signal handler: registration code never
  // faults while holding it, so the handler cannot deadlock against it.
  void lock() const noexcept;
  void unlock() const noexcept;

  mutable std::uint32_t spin_ = 0;  // accessed via __atomic builtins
  Range ranges_[kMaxRanges];
  std::size_t high_water_ = 0;
  bool installed_ = false;
  std::uint64_t dispatched_ = 0;
};

}  // namespace srpc
