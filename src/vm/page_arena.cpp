#include "vm/page_arena.hpp"

#include <sys/mman.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace srpc {

Result<PageArena> PageArena::create(std::size_t page_count, std::size_t page_size) {
  if (page_count == 0) {
    return invalid_argument("arena needs at least one page");
  }
  if (page_size == 0 || page_size % host_page_size() != 0) {
    return invalid_argument("arena page size must be a multiple of the host page size (" +
                            std::to_string(host_page_size()) + ")");
  }
  const std::size_t bytes = page_count * page_size;
  void* base = ::mmap(nullptr, bytes, PROT_NONE, MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (base == MAP_FAILED) {
    return resource_exhausted(std::string("mmap: ") + std::strerror(errno));
  }
  return PageArena(static_cast<std::uint8_t*>(base), page_count, page_size);
}

PageArena::~PageArena() { release(); }

PageArena::PageArena(PageArena&& other) noexcept
    : base_(std::exchange(other.base_, nullptr)),
      page_count_(std::exchange(other.page_count_, 0)),
      page_size_(std::exchange(other.page_size_, 0)) {}

PageArena& PageArena::operator=(PageArena&& other) noexcept {
  if (this != &other) {
    release();
    base_ = std::exchange(other.base_, nullptr);
    page_count_ = std::exchange(other.page_count_, 0);
    page_size_ = std::exchange(other.page_size_, 0);
  }
  return *this;
}

void PageArena::release() noexcept {
  if (base_ != nullptr) {
    ::munmap(base_, byte_size());
    base_ = nullptr;
    page_count_ = 0;
    page_size_ = 0;
  }
}

Status PageArena::protect(PageIndex page, PageProtection prot) const {
  if (page >= page_count_) {
    return out_of_range("page index " + std::to_string(page) + " out of arena");
  }
  return set_protection(page_base(page), page_size_, prot);
}

}  // namespace srpc
