// Per-arena page bookkeeping: the state machine behind the paper's
// protected-page discipline.
//
//   kEmpty      nothing allocated on the page            PROT_NONE
//   kAllocated  swizzled locations assigned, no data yet PROT_NONE
//   kClean      resident, unmodified                     PROT_READ
//   kDirty      resident, modified since last transfer   PROT_READ|WRITE
//
// A page becomes *sealed* the moment it turns resident: once protection is
// released, a first access to any further datum on it could no longer be
// detected (paper §3.2), so no new locations may be allocated there.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/ids.hpp"
#include "common/status.hpp"
#include "vm/page_arena.hpp"

namespace srpc {

enum class PageState : std::uint8_t { kEmpty, kAllocated, kClean, kDirty };

// kLazy pages hold swizzled-but-unfetched locations and seal on residency.
// kAlloc pages hold locally-born objects (extended_malloc): every datum on
// them has data from birth, so they stay open for further allocation even
// while resident (paper §3.5).
enum class PageKind : std::uint8_t { kLazy, kAlloc };

std::string_view to_string(PageState s) noexcept;

struct PageInfo {
  PageState state = PageState::kEmpty;
  PageKind kind = PageKind::kLazy;
  bool sealed = false;
  std::uint32_t bump = 0;          // next free byte offset for allocation
  SpaceId origin = kInvalidSpaceId;  // home space this page clusters (strategy-dependent)
};

class PageTable {
 public:
  explicit PageTable(std::size_t page_count) : pages_(page_count) {}

  [[nodiscard]] PageInfo& info(PageIndex page) { return pages_.at(page); }
  [[nodiscard]] const PageInfo& info(PageIndex page) const { return pages_.at(page); }
  [[nodiscard]] std::size_t page_count() const noexcept { return pages_.size(); }

  // Validated state transition; the protection change itself is the cache
  // manager's job (it owns the arena).
  Status transition(PageIndex page, PageState to);

  // All pages currently in the given state.
  [[nodiscard]] std::vector<PageIndex> pages_in_state(PageState s) const;

  // Twin slots: a copy of a page's bytes taken the instant it turned
  // writable, so the cache manager can later diff the live page against the
  // pre-write image and ship only the bytes that changed. Twins exist only
  // for pages that faulted clean→dirty (or had an overlay applied); pages
  // born dirty (local allocation) have no coherent baseline and no twin.
  void snapshot_twin(PageIndex page, const std::uint8_t* bytes, std::size_t len);
  [[nodiscard]] bool has_twin(PageIndex page) const {
    return twins_.contains(page);
  }
  // Valid only when has_twin(page); pointer stable until drop/reset.
  [[nodiscard]] const std::uint8_t* twin(PageIndex page) const {
    return twins_.at(page).data();
  }
  void drop_twin(PageIndex page) { twins_.erase(page); }

  // Resets every page to kEmpty/unsealed (session-end invalidation).
  void reset();

 private:
  std::vector<PageInfo> pages_;
  std::unordered_map<PageIndex, std::vector<std::uint8_t>> twins_;
};

}  // namespace srpc
