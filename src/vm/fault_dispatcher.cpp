#include "vm/fault_dispatcher.hpp"

#include <signal.h>
#include <ucontext.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>

namespace srpc {

FaultDispatcher& FaultDispatcher::instance() {
  static FaultDispatcher dispatcher;
  return dispatcher;
}

void FaultDispatcher::lock() const noexcept {
  std::uint32_t expected = 0;
  while (!__atomic_compare_exchange_n(&spin_, &expected, 1, /*weak=*/false,
                                      __ATOMIC_ACQUIRE, __ATOMIC_RELAXED)) {
    expected = 0;
  }
}

void FaultDispatcher::unlock() const noexcept {
  __atomic_store_n(&spin_, 0, __ATOMIC_RELEASE);
}

Status FaultDispatcher::register_range(void* base, std::size_t len, FaultHandler* handler) {
  if (base == nullptr || len == 0 || handler == nullptr) {
    return invalid_argument("register_range: null base/handler or empty range");
  }
  lock();
  if (!installed_) {
    struct sigaction sa;
    std::memset(&sa, 0, sizeof sa);
    sa.sa_flags = SA_SIGINFO | SA_NODEFER;
    sa.sa_sigaction = reinterpret_cast<void (*)(int, siginfo_t*, void*)>(
        &FaultDispatcher::signal_handler);
    sigemptyset(&sa.sa_mask);
    if (::sigaction(SIGSEGV, &sa, nullptr) != 0 ||
        ::sigaction(SIGBUS, &sa, nullptr) != 0) {
      unlock();
      return internal_error("sigaction failed");
    }
    installed_ = true;
  }
  for (std::size_t i = 0; i < kMaxRanges; ++i) {
    if (!ranges_[i].active) {
      ranges_[i].base = reinterpret_cast<std::uintptr_t>(base);
      ranges_[i].end = ranges_[i].base + len;
      ranges_[i].handler = handler;
      ranges_[i].active = true;
      if (i + 1 > high_water_) high_water_ = i + 1;
      unlock();
      return Status::ok();
    }
  }
  unlock();
  return resource_exhausted("fault dispatcher range table full");
}

Status FaultDispatcher::unregister_range(void* base) {
  const auto target = reinterpret_cast<std::uintptr_t>(base);
  lock();
  for (std::size_t i = 0; i < high_water_; ++i) {
    if (ranges_[i].active && ranges_[i].base == target) {
      ranges_[i].active = false;
      ranges_[i].handler = nullptr;
      unlock();
      return Status::ok();
    }
  }
  unlock();
  return not_found("unregister_range: range not registered");
}

std::size_t FaultDispatcher::range_count() const noexcept {
  lock();
  std::size_t n = 0;
  for (std::size_t i = 0; i < high_water_; ++i) {
    if (ranges_[i].active) ++n;
  }
  unlock();
  return n;
}

std::uint64_t FaultDispatcher::dispatched_faults() const noexcept {
  return __atomic_load_n(&dispatched_, __ATOMIC_RELAXED);
}

namespace {

// Re-raises the signal with the default disposition: used when no handler
// claims the address, so real crashes behave as if we were never here.
[[noreturn]] void crash(int signo, void* addr) {
  char buf[96];
  const int len = std::snprintf(buf, sizeof buf,
                                "[srpc] unhandled fault (signal %d) at %p\n", signo, addr);
  if (len > 0) {
    [[maybe_unused]] ssize_t ignored = ::write(2, buf, static_cast<std::size_t>(len));
  }
  ::signal(signo, SIG_DFL);
  ::raise(signo);
  ::_exit(128 + signo);  // unreachable unless the signal is blocked
}

FaultAccess classify_access(void* context) noexcept {
#if defined(__x86_64__)
  if (context != nullptr) {
    const auto* uc = static_cast<const ucontext_t*>(context);
    // x86 page-fault error code: bit 1 set => write access.
    const auto err = static_cast<std::uint64_t>(uc->uc_mcontext.gregs[REG_ERR]);
    return (err & 0x2) != 0 ? FaultAccess::kWrite : FaultAccess::kRead;
  }
#else
  (void)context;
#endif
  return FaultAccess::kUnknown;
}

}  // namespace

void FaultDispatcher::signal_handler(int signo, void* info, void* context) {
  auto* si = static_cast<siginfo_t*>(info);
  void* addr = si != nullptr ? si->si_addr : nullptr;
  FaultDispatcher& self = instance();

  FaultHandler* handler = nullptr;
  const auto target = reinterpret_cast<std::uintptr_t>(addr);
  self.lock();
  for (std::size_t i = 0; i < self.high_water_; ++i) {
    const Range& r = self.ranges_[i];
    if (r.active && target >= r.base && target < r.end) {
      handler = r.handler;
      break;
    }
  }
  self.unlock();

  if (handler == nullptr) {
    crash(signo, addr);
  }
  __atomic_fetch_add(&self.dispatched_, 1, __ATOMIC_RELAXED);
  if (!handler->on_fault(addr, classify_access(context))) {
    crash(signo, addr);
  }
  // Returning restarts the faulting instruction.
}

}  // namespace srpc
