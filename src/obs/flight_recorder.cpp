#include "obs/flight_recorder.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <utility>

#include "net/message.hpp"

namespace srpc {
namespace {

// Minimal JSON string escaping for the short note/name fields.
std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string_view to_string(FlightEventKind k) noexcept {
  switch (k) {
    case FlightEventKind::kFrameSend: return "FRAME_SEND";
    case FlightEventKind::kFrameRecv: return "FRAME_RECV";
    case FlightEventKind::kRetransmit: return "RETRANSMIT";
    case FlightEventKind::kFence: return "FENCE";
    case FlightEventKind::kWbConflict: return "WB_CONFLICT";
    case FlightEventKind::kLeaseExpiry: return "LEASE_EXPIRY";
    case FlightEventKind::kDetector: return "DETECTOR";
    case FlightEventKind::kArenaPublishFail: return "ARENA_PUBLISH_FAIL";
    case FlightEventKind::kRecoveryReplay: return "RECOVERY_REPLAY";
    case FlightEventKind::kCrash: return "CRASH";
    case FlightEventKind::kRejoin: return "REJOIN";
    case FlightEventKind::kSloBreach: return "SLO_BREACH";
    case FlightEventKind::kSessionAbort: return "SESSION_ABORT";
    case FlightEventKind::kCheckpoint: return "CHECKPOINT";
  }
  return "UNKNOWN";
}

FlightRecorder::FlightRecorder(SpaceId space, std::string space_name,
                               std::size_t capacity)
    : space_(space), space_name_(std::move(space_name)) {
  ring_.resize(capacity == 0 ? 1 : capacity);
}

void FlightRecorder::set_capacity(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.assign(capacity == 0 ? 1 : capacity, FlightEvent{});
  head_ = 0;
  total_ = 0;
}

void FlightRecorder::set_dump_sink(DumpSink sink) {
  std::lock_guard<std::mutex> lock(mutex_);
  sink_ = std::move(sink);
}

void FlightRecorder::set_dump_dir(std::string dir) {
  std::lock_guard<std::mutex> lock(mutex_);
  dump_dir_ = std::move(dir);
}

void FlightRecorder::record(const FlightEvent& e) {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_[head_] = e;
  head_ = (head_ + 1) % ring_.size();
  ++total_;
}

void FlightRecorder::frame(FlightEventKind kind, std::uint64_t ts_ns,
                           std::uint8_t msg_type, SpaceId peer,
                           SessionId session, std::uint64_t seq,
                           std::int64_t arg) {
  FlightEvent e;
  e.ts_ns = ts_ns;
  e.kind = kind;
  e.msg_type = msg_type;
  e.peer = peer;
  e.session = session;
  e.seq = seq;
  e.arg = arg;
  record(e);
}

void FlightRecorder::event(FlightEventKind kind, std::uint64_t ts_ns,
                           SpaceId peer, std::string_view note,
                           std::int64_t arg, SessionId session) {
  FlightEvent e;
  e.ts_ns = ts_ns;
  e.kind = kind;
  e.peer = peer;
  e.arg = arg;
  e.session = session;
  const std::size_t n = std::min(note.size(), sizeof(e.note) - 1);
  std::memcpy(e.note, note.data(), n);
  e.note[n] = '\0';
  record(e);
}

std::string FlightRecorder::render_locked(std::string_view reason,
                                          std::uint64_t now_ns) const {
  std::string out;
  out.reserve(256 + 160 * std::min<std::uint64_t>(total_, ring_.size()));
  out += "{\n";
  out += "  \"space\": " + std::to_string(space_) + ",\n";
  out += "  \"name\": \"" + json_escape(space_name_) + "\",\n";
  out += "  \"reason\": \"" + json_escape(reason) + "\",\n";
  out += "  \"dumped_at_ns\": " + std::to_string(now_ns) + ",\n";
  out += "  \"events_total\": " + std::to_string(total_) + ",\n";
  const std::uint64_t kept = std::min<std::uint64_t>(total_, ring_.size());
  out += "  \"events_dropped\": " + std::to_string(total_ - kept) + ",\n";
  out += "  \"events\": [\n";
  // Oldest first: when the ring has wrapped, head_ is also the oldest slot.
  const std::size_t start = (total_ >= ring_.size()) ? head_ : 0;
  for (std::uint64_t i = 0; i < kept; ++i) {
    const FlightEvent& e = ring_[(start + i) % ring_.size()];
    out += "    {\"ts_ns\": " + std::to_string(e.ts_ns);
    out += ", \"kind\": \"";
    out += to_string(e.kind);
    out += "\"";
    if (e.msg_type != 0) {
      out += ", \"msg\": \"";
      out += to_string(static_cast<MessageType>(e.msg_type));
      out += "\"";
    }
    if (e.peer != kInvalidSpaceId)
      out += ", \"peer\": " + std::to_string(e.peer);
    if (e.session != kNoSession)
      out += ", \"session\": " + std::to_string(e.session);
    if (e.seq != 0) out += ", \"seq\": " + std::to_string(e.seq);
    if (e.arg != 0) out += ", \"arg\": " + std::to_string(e.arg);
    if (e.note[0] != '\0')
      out += ", \"note\": \"" + json_escape(e.note) + "\"";
    out += "}";
    if (i + 1 < kept) out += ",";
    out += "\n";
  }
  out += "  ]\n}\n";
  return out;
}

std::string FlightRecorder::dump(std::string_view reason,
                                 std::uint64_t now_ns) {
  std::string json;
  std::string path;
  DumpSink sink;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    json = render_locked(reason, now_ns);
    ++dumps_;
    last_dump_ = json;
    std::string dir = dump_dir_;
    if (dir.empty()) {
      if (const char* env = std::getenv("SRPC_FLIGHT_DIR")) dir = env;
    }
    if (!dir.empty()) {
      path = dir + "/FLIGHT_" + std::to_string(space_) + "_" +
             std::string(reason) + "_" + std::to_string(dumps_) + ".json";
      std::ofstream f(path);
      if (f) {
        f << json;
        last_dump_path_ = path;
      } else {
        path.clear();
      }
    }
    sink = sink_;
  }
  // Sink runs outside the lock: World's archive takes its own mutex and
  // must be free to query the recorder again.
  if (sink) sink(space_, reason, json);
  return json;
}

std::vector<FlightEvent> FlightRecorder::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<FlightEvent> out;
  const std::uint64_t kept = std::min<std::uint64_t>(total_, ring_.size());
  out.reserve(kept);
  const std::size_t start = (total_ >= ring_.size()) ? head_ : 0;
  for (std::uint64_t i = 0; i < kept; ++i)
    out.push_back(ring_[(start + i) % ring_.size()]);
  return out;
}

std::size_t FlightRecorder::capacity() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ring_.size();
}

std::uint64_t FlightRecorder::total_recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_;
}

std::uint64_t FlightRecorder::dump_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dumps_;
}

std::string FlightRecorder::last_dump() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return last_dump_;
}

std::string FlightRecorder::last_dump_path() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return last_dump_path_;
}

}  // namespace srpc
