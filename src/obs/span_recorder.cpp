#include "obs/span_recorder.hpp"

#include <algorithm>

namespace srpc {

SpanRecorder::Handle SpanRecorder::start_local(std::string name,
                                               std::string category,
                                               std::uint64_t now_ns) {
  if (!enabled_) return kNoSpan;
  Span span;
  if (stack_.empty()) {
    span.trace_id = next_id();
    span.parent_span_id = 0;
    span.hop = 0;
  } else {
    const Span& parent = spans_[stack_.back()];
    span.trace_id = parent.trace_id;
    span.parent_span_id = parent.span_id;
    span.hop = parent.hop;
  }
  span.span_id = next_id();
  span.session = session_;
  span.name = std::move(name);
  span.category = std::move(category);
  span.start_ns = span.end_ns = now_ns;
  spans_.push_back(std::move(span));
  stack_.push_back(spans_.size() - 1);
  return spans_.size() - 1;
}

SpanRecorder::Handle SpanRecorder::start_server(const TraceContext& ctx,
                                                std::string name,
                                                std::string category,
                                                std::uint64_t now_ns) {
  if (!enabled_) return kNoSpan;
  if (!ctx.valid()) return start_local(std::move(name), std::move(category), now_ns);
  Span span;
  span.trace_id = ctx.trace_id;
  span.parent_span_id = ctx.span_id;
  span.hop = ctx.hop + 1;
  span.span_id = next_id();
  span.session = session_;
  span.name = std::move(name);
  span.category = std::move(category);
  span.start_ns = span.end_ns = now_ns;
  spans_.push_back(std::move(span));
  stack_.push_back(spans_.size() - 1);
  return spans_.size() - 1;
}

SpanRecorder::Handle SpanRecorder::start_detached(std::string name,
                                                  std::string category,
                                                  std::uint64_t now_ns) {
  if (!enabled_) return kNoSpan;
  Span span;
  if (stack_.empty()) {
    span.trace_id = next_id();
    span.parent_span_id = 0;
    span.hop = 0;
  } else {
    const Span& parent = spans_[stack_.back()];
    span.trace_id = parent.trace_id;
    span.parent_span_id = parent.span_id;
    span.hop = parent.hop;
  }
  span.span_id = next_id();
  span.session = session_;
  span.name = std::move(name);
  span.category = std::move(category);
  span.start_ns = span.end_ns = now_ns;
  spans_.push_back(std::move(span));
  return spans_.size() - 1;  // not on the stack: finish() in any order
}

void SpanRecorder::finish(Handle h, std::uint64_t now_ns, bool ok) {
  if (h == kNoSpan || h >= spans_.size()) return;
  Span& span = spans_[h];
  span.end_ns = std::max(now_ns, span.start_ns);
  span.open = false;
  span.ok = ok;
  // Usually the top of the stack; tolerate out-of-order finishes (e.g. a
  // session span closed while an unrelated serve is still open).
  auto it = std::find(stack_.rbegin(), stack_.rend(), h);
  if (it != stack_.rend()) stack_.erase(std::next(it).base());
}

void SpanRecorder::annotate(std::string text, std::uint64_t now_ns) {
  annotate(current(), std::move(text), now_ns);
}

void SpanRecorder::annotate(Handle h, std::string text, std::uint64_t now_ns) {
  if (!enabled_ || h == kNoSpan || h >= spans_.size()) return;
  spans_[h].annotations.push_back(SpanAnnotation{now_ns, std::move(text)});
}

TraceContext SpanRecorder::context_of(Handle h) const {
  if (h == kNoSpan || h >= spans_.size()) return {};
  const Span& span = spans_[h];
  return TraceContext{span.trace_id, span.span_id, span.parent_span_id, span.hop};
}

void SpanRecorder::clear() {
  spans_.clear();
  stack_.clear();
}

}  // namespace srpc
