#include "obs/trace_export.hpp"

#include <cstdio>

namespace srpc {

namespace {
void append_escaped(std::string& out, std::string_view s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_us(std::string& out, std::uint64_t ns) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ns) / 1000.0);
  out += buf;
}
}  // namespace

std::string chrome_trace_json(const std::vector<SpaceSpans>& spaces) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  auto comma = [&] {
    if (!first) out.push_back(',');
    first = false;
  };
  for (const SpaceSpans& sp : spaces) {
    comma();
    out += "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" +
           std::to_string(sp.space) + ",\"tid\":0,\"args\":{\"name\":";
    append_escaped(out, sp.name);
    out += "}}";
    for (const Span& span : sp.spans) {
      comma();
      out += "{\"name\":";
      append_escaped(out, span.name);
      out += ",\"cat\":";
      append_escaped(out, span.category);
      out += ",\"ph\":\"X\",\"ts\":";
      append_us(out, span.start_ns);
      out += ",\"dur\":";
      append_us(out, span.end_ns - span.start_ns);
      out += ",\"pid\":" + std::to_string(sp.space) + ",\"tid\":0,\"args\":{";
      out += "\"trace_id\":" + std::to_string(span.trace_id);
      out += ",\"span_id\":" + std::to_string(span.span_id);
      out += ",\"parent_span_id\":" + std::to_string(span.parent_span_id);
      out += ",\"hop\":" + std::to_string(span.hop);
      if (span.session != kNoSession) {
        out += ",\"session\":" + std::to_string(span.session);
      }
      out += span.ok ? ",\"ok\":true" : ",\"ok\":false";
      out += span.open ? ",\"open\":true}}" : "}}";
      for (const SpanAnnotation& note : span.annotations) {
        comma();
        out += "{\"ph\":\"i\",\"s\":\"t\",\"name\":";
        append_escaped(out, note.text);
        out += ",\"ts\":";
        append_us(out, note.ts_ns);
        out += ",\"pid\":" + std::to_string(sp.space) + ",\"tid\":0,\"args\":{";
        out += "\"span_id\":" + std::to_string(span.span_id) + "}}";
      }
    }
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

Status write_chrome_trace(const std::vector<SpaceSpans>& spaces,
                          const std::string& path) {
  const std::string json = chrome_trace_json(spaces);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    return unavailable("cannot open trace file " + path);
  }
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool closed = std::fclose(f) == 0;
  if (written != json.size() || !closed) {
    return unavailable("short write to trace file " + path);
  }
  return Status::ok();
}

}  // namespace srpc
