// SpanRecorder — per-runtime causal span collection.
//
// A span covers one timed activity on the space's single worker thread: a
// client roundtrip (guarded_roundtrip), serving an incoming request
// (dispatch), or a whole session. Spans nest on a stack; because the
// runtime is one-active-thread (the paper's execution model — nested calls
// and callbacks re-enter the same worker), the stack top at any moment IS
// the causal parent of whatever starts next. Server spans take their
// parent from the incoming message's TraceContext instead, which is how a
// tree spans address spaces.
//
// Timestamps come from the caller (virtual clock on the simulated network,
// steady clock on sockets) so the recorder itself has no clock dependency.
// When disabled (the default), every operation is a cheap no-op and
// nothing allocates.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "obs/trace_context.hpp"

namespace srpc {

struct SpanAnnotation {
  std::uint64_t ts_ns = 0;
  std::string text;
};

struct Span {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;  // 0 = root of its trace
  std::uint32_t hop = 0;             // control transfers since the root
  SessionId session = kNoSession;    // RPC session active when the span began
  std::string name;                  // "CALL -> server", "serve FETCH", ...
  std::string category;              // "rpc.client", "rpc.server", "session"
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  bool open = true;
  bool ok = true;
  std::vector<SpanAnnotation> annotations;
};

class SpanRecorder {
 public:
  using Handle = std::size_t;
  static constexpr Handle kNoSpan = static_cast<Handle>(-1);

  explicit SpanRecorder(SpaceId space) : space_(space) {}

  void set_enabled(bool on) noexcept { enabled_ = on; }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  // Session label stamped on every span started from now on; with many
  // concurrent sessions per space this is what makes a span attributable.
  void set_session(SessionId id) noexcept { session_ = id; }
  [[nodiscard]] SessionId session() const noexcept { return session_; }

  // Starts a span parented to the current stack top (a fresh root trace
  // when the stack is empty) and pushes it.
  Handle start_local(std::string name, std::string category, std::uint64_t now_ns);

  // Starts a span continuing the remote caller's context: same trace,
  // parent = ctx.span_id, hop = ctx.hop + 1. Pushed like any other span.
  Handle start_server(const TraceContext& ctx, std::string name,
                      std::string category, std::uint64_t now_ns);

  // Starts a span parented to the current stack top WITHOUT pushing it.
  // Async client spans use this: N pipelined requests are concurrent
  // siblings under the issuing session, not a nesting chain, and their
  // replies may finish in any order — which would corrupt a LIFO stack.
  Handle start_detached(std::string name, std::string category, std::uint64_t now_ns);

  void finish(Handle h, std::uint64_t now_ns, bool ok = true);

  // Attaches a timestamped note to the current stack top (dropped when no
  // span is open or the recorder is disabled).
  void annotate(std::string text, std::uint64_t now_ns);
  void annotate(Handle h, std::string text, std::uint64_t now_ns);

  // Wire identity of span `h` — what a message sent while `h` is open
  // should carry.
  [[nodiscard]] TraceContext context_of(Handle h) const;

  [[nodiscard]] Handle current() const noexcept {
    return stack_.empty() ? kNoSpan : stack_.back();
  }

  [[nodiscard]] const std::vector<Span>& spans() const noexcept { return spans_; }
  void clear();

 private:
  std::uint64_t next_id() noexcept {
    return (static_cast<std::uint64_t>(space_ + 1) << 40) | ++counter_;
  }

  SpaceId space_;
  SessionId session_ = kNoSession;
  bool enabled_ = false;
  std::uint64_t counter_ = 0;
  std::vector<Span> spans_;
  std::vector<Handle> stack_;
};

}  // namespace srpc
