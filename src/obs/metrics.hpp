// Metrics registry — named counters, gauges, and fixed-bucket latency
// histograms, labelled per peer / per message kind.
//
// Keys are flat strings "name" or "name{label}" (e.g.
// "rpc.roundtrip_ns{kind=CALL}"); the registry is a std::map so handed-out
// references stay valid across later registrations. Histograms use 64
// power-of-two buckets indexed by bit_width(value) — constant memory, any
// value range — and report percentiles by linear interpolation inside the
// hit bucket, clamped to the exact observed min/max. Everything is single-
// writer per runtime (the space's one worker thread); merge() exists so the
// bench harness can aggregate across spaces after the workers are quiesced.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace srpc {

struct Counter {
  std::uint64_t value = 0;
  void add(std::uint64_t n = 1) noexcept { value += n; }
};

struct Gauge {
  std::int64_t value = 0;
  void set(std::int64_t v) noexcept { value = v; }
  void add(std::int64_t n) noexcept { value += n; }
};

class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void record(std::uint64_t value) noexcept;
  void merge(const Histogram& other) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t sum() const noexcept { return sum_; }
  [[nodiscard]] std::uint64_t min() const noexcept { return count_ ? min_ : 0; }
  [[nodiscard]] std::uint64_t max() const noexcept { return max_; }

  // Interpolated value at quantile q in [0, 1].
  [[nodiscard]] double percentile(double q) const noexcept;

 private:
  std::uint64_t buckets_[kBuckets] = {};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = UINT64_MAX;
  std::uint64_t max_ = 0;
};

class MetricsRegistry {
 public:
  // "name{label}" when label is non-empty, "name" otherwise.
  static std::string key(std::string_view name, std::string_view label);

  Counter& counter(const std::string& key) { return counters_[key]; }
  Gauge& gauge(const std::string& key) { return gauges_[key]; }
  Histogram& histogram(const std::string& key) { return histograms_[key]; }

  [[nodiscard]] const std::map<std::string, Counter>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, Gauge>& gauges() const {
    return gauges_;
  }
  [[nodiscard]] const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  // Folds `other`'s series into this registry (counters/histograms add,
  // gauges take the other's last value).
  void merge(const MetricsRegistry& other);

  void reset();

  // Snapshot as a JSON object:
  //   {"counters":{...},"gauges":{...},
  //    "histograms":{"k":{"count","min","max","sum","p50","p95","p99"}}}
  [[nodiscard]] std::string to_json() const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace srpc
