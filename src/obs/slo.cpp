#include "obs/slo.hpp"

#include <algorithm>
#include <cstdio>

namespace srpc {

namespace {
constexpr std::uint64_t kMs = 1'000'000ULL;
constexpr std::uint64_t kSec = 1'000'000'000ULL;
// Too few samples and one miss looks like a firestorm; require a modest
// floor before a burn rate can declare a breach.
constexpr std::uint32_t kMinSamplesForBreach = 8;
}  // namespace

std::vector<SloObjective> SloConfig::defaults() {
  // Bounds sized for the worst healthy case in the suite (sparc_ethernet,
  // 64 Ki-node trees): single-page roundtrips stay in the low tens of
  // virtual ms, full-tree write-backs in the low virtual seconds.
  return {
      {"FETCH", 1 * kSec, 0.99, 256, 2.0},
      {"DEREF", 1 * kSec, 0.99, 256, 2.0},
      {"ALLOC_BATCH", 1 * kSec, 0.99, 256, 2.0},
      {"WB_PREPARE", 2 * kSec, 0.99, 256, 2.0},
      {"WB_COMMIT", 2 * kSec, 0.99, 256, 2.0},
      {"WRITE_BACK", 10 * kSec, 0.99, 256, 2.0},
      {"INVALIDATE", 2 * kSec, 0.99, 256, 2.0},
      {"SESSION_COMMIT", 30 * kSec, 0.99, 128, 2.0},
  };
}

double SloEngine::Tracker::burn_rate() const {
  if (filled == 0) return 0.0;
  const double rate =
      static_cast<double>(window_violations) / static_cast<double>(filled);
  const double allowed = 1.0 - objective.target;
  if (allowed <= 0.0) return window_violations > 0 ? 1e9 : 0.0;
  return rate / allowed;
}

void SloEngine::configure(const SloConfig& config) {
  trackers_.clear();
  enabled_ = config.enabled;
  if (!enabled_) return;
  const std::vector<SloObjective> objectives =
      config.objectives.empty() ? SloConfig::defaults() : config.objectives;
  for (const SloObjective& o : objectives) {
    if (o.kind.empty() || o.window == 0) continue;
    Tracker t;
    t.objective = o;
    t.ring.assign(o.window, false);
    trackers_.emplace(o.kind, std::move(t));
  }
}

SloObservation SloEngine::observe(std::string_view kind,
                                  std::uint64_t latency_ns) {
  SloObservation out;
  if (!enabled_) return out;
  auto it = trackers_.find(kind);
  if (it == trackers_.end()) return out;
  Tracker& t = it->second;
  out.tracked = true;
  const bool miss = latency_ns > t.objective.threshold_ns;

  // Slide the window: retire the bit this sample overwrites.
  if (t.filled == t.ring.size()) {
    if (t.ring[t.head]) --t.window_violations;
  } else {
    ++t.filled;
  }
  t.ring[t.head] = miss;
  t.head = (t.head + 1) % static_cast<std::uint32_t>(t.ring.size());
  ++t.observed;
  if (miss) {
    ++t.violations;
    ++t.window_violations;
  }

  out.violated = miss;
  out.burn_rate = t.burn_rate();
  const bool breach = t.filled >= kMinSamplesForBreach &&
                      out.burn_rate >= t.objective.breach_burn;
  out.breach_edge = breach && !t.in_breach;
  t.in_breach = breach;
  return out;
}

std::uint64_t SloEngine::total_violations() const {
  std::uint64_t n = 0;
  for (const auto& [kind, t] : trackers_) n += t.violations;
  return n;
}

std::map<std::string, SloEngine::KindStats> SloEngine::stats() const {
  std::map<std::string, KindStats> out;
  for (const auto& [kind, t] : trackers_) {
    KindStats s;
    s.threshold_ns = t.objective.threshold_ns;
    s.target = t.objective.target;
    s.window = t.objective.window;
    s.observed = t.observed;
    s.violations = t.violations;
    s.window_observed = t.filled;
    s.window_violations = t.window_violations;
    s.burn_rate = t.burn_rate();
    const double budget =
        (1.0 - t.objective.target) * static_cast<double>(t.objective.window);
    s.budget_remaining =
        budget > 0.0
            ? std::max(0.0, 1.0 - static_cast<double>(t.window_violations) /
                                      budget)
            : (t.window_violations == 0 ? 1.0 : 0.0);
    s.in_breach = t.in_breach;
    out.emplace(kind, s);
  }
  return out;
}

std::string SloEngine::to_json() const {
  std::string out = "{";
  bool first = true;
  char buf[64];
  for (const auto& [kind, s] : stats()) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + kind + "\": {";
    out += "\"threshold_ns\": " + std::to_string(s.threshold_ns);
    std::snprintf(buf, sizeof(buf), ", \"target\": %.4f", s.target);
    out += buf;
    out += ", \"observed\": " + std::to_string(s.observed);
    out += ", \"violations\": " + std::to_string(s.violations);
    out += ", \"window_observed\": " + std::to_string(s.window_observed);
    out += ", \"window_violations\": " + std::to_string(s.window_violations);
    std::snprintf(buf, sizeof(buf), ", \"burn_rate\": %.3f", s.burn_rate);
    out += buf;
    std::snprintf(buf, sizeof(buf), ", \"budget_remaining\": %.3f",
                  s.budget_remaining);
    out += buf;
    out += std::string(", \"in_breach\": ") + (s.in_breach ? "true" : "false");
    out += "}";
  }
  out += "}";
  return out;
}

}  // namespace srpc
