// TraceContext — the causal identity a message carries across address
// spaces so nested RPC / callback / fetch chains form one span tree.
//
// {trace_id, span_id, parent_span_id, hop} travel as a 28-byte wire
// extension behind the frame header (rpc/wire.cpp), gated by the
// kCapTraceContext capability bit so legacy peers never see it. A zero
// trace_id means "no context attached"; retransmits of a request reuse
// the original context verbatim, which is what keeps duplicate serves
// siblings in one tree instead of forking a second one.
#pragma once

#include <cstdint>

namespace srpc {

struct TraceContext {
  std::uint64_t trace_id = 0;        // one per causal tree (0 = absent)
  std::uint64_t span_id = 0;         // sender's span covering this message
  std::uint64_t parent_span_id = 0;  // sender's parent span (0 = root)
  std::uint32_t hop = 0;             // control transfers since the root

  [[nodiscard]] bool valid() const noexcept { return trace_id != 0; }
};

// Wire footprint of the extension: 3 x u64 + u32, XDR big-endian.
inline constexpr std::size_t kTraceContextWireSize = 28;

}  // namespace srpc
