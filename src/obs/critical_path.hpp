// CriticalPathAnalyzer — where did a session's wall-clock time go?
//
// Input is the stitched cross-space span forest (World::collect_spans());
// the analyzer picks a root (a session span, or any span by id), gathers
// its subtree across spaces, and attributes every nanosecond of the root's
// duration to exactly one component by a priority sweep over the root's
// time window:
//
//   lock wait   > home execution > retransmit stall > network wait > local
//   ("concurrency.lock")  ("rpc.server")  (client-span prefix up to the
//                                          last retransmit annotation)
//                                         ("rpc.client")    (remainder)
//
// At any instant the highest-priority activity open anywhere in the
// subtree claims that instant: time a home spent validating locks is lock
// wait even though a client span covers it; time a home executed is
// execution; client-span time before a retransmitted attempt finally went
// through is retransmit stall; remaining client-span time is the wire and
// peer queueing; and time with no RPC outstanding at all is the caller's
// own compute. Components therefore sum exactly to the root's duration —
// pipelined overlap is never double-counted, which is the property the
// fig9 tuning work needs.
//
// Timestamps are comparable across spaces because every space shares the
// transport's virtual clock (or one host's steady clock on sockets).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/status.hpp"
#include "obs/trace_export.hpp"

namespace srpc {

struct CriticalPathBreakdown {
  std::uint64_t trace_id = 0;
  std::uint64_t root_span_id = 0;
  std::string root_name;
  std::uint64_t total_ns = 0;       // root span duration
  std::uint64_t network_ns = 0;     // wire + marshalling + peer queueing
  std::uint64_t execution_ns = 0;   // home-side request serving
  std::uint64_t lock_wait_ns = 0;   // home-side lock arbitration
  std::uint64_t retransmit_ns = 0;  // stalls re-sending lost frames
  std::uint64_t local_ns = 0;       // root-local compute, no RPC outstanding
  std::size_t span_count = 0;       // spans attributed (subtree size)
  std::size_t retransmits = 0;      // retransmit annotations seen

  // Per direct child RPC of the root, its own sweep over its window.
  struct Hop {
    std::string name;
    SpaceId space = kInvalidSpaceId;
    std::uint64_t span_id = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t network_ns = 0;
    std::uint64_t execution_ns = 0;
    std::uint64_t lock_wait_ns = 0;
    std::uint64_t retransmit_ns = 0;
  };
  std::vector<Hop> hops;  // sorted by total_ns, largest first

  [[nodiscard]] std::uint64_t attributed_ns() const {
    return network_ns + execution_ns + lock_wait_ns + retransmit_ns +
           local_ns;
  }
  [[nodiscard]] std::string to_json() const;
};

class CriticalPathAnalyzer {
 public:
  // Takes the span forest by value: the analyzer owns its copy, so passing
  // World::collect_spans() directly is safe (no dangling into a temporary).
  explicit CriticalPathAnalyzer(std::vector<SpaceSpans> spaces);

  // Root = the session-category span for `session` (the longest one when a
  // retried session produced several).
  [[nodiscard]] Result<CriticalPathBreakdown> analyze_session(
      SessionId session) const;
  [[nodiscard]] Result<CriticalPathBreakdown> analyze_span(
      std::uint64_t span_id) const;

 private:
  struct Rec {
    const Span* span;
    SpaceId space;
  };
  [[nodiscard]] CriticalPathBreakdown attribute(const Rec& root) const;
  void collect_subtree(std::uint64_t root_id, std::vector<const Rec*>* out) const;

  std::vector<SpaceSpans> storage_;  // owned spans; Recs point into this
  std::vector<Rec> spans_;
  // parallel index: spans_ position by span_id / children by parent id
  std::vector<std::pair<std::uint64_t, std::size_t>> by_id_;
  std::vector<std::pair<std::uint64_t, std::size_t>> by_parent_;
};

}  // namespace srpc
