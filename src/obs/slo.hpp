// SloEngine — rolling-window latency objectives with error budgets.
//
// An objective judges one op kind ("CALL", "FETCH", "SESSION_COMMIT", ...):
// at least `target` of the last `window` samples must finish under
// `threshold_ns`. The engine keeps a ring of violation bits per kind, so
// the error budget and burn rate reflect recent behaviour, not lifetime
// averages — a wire that went bad an hour into a soak shows up immediately.
//
//   error budget   = (1 - target) * window     violations the window tolerates
//   burn rate      = window violation rate / (1 - target)
//                    (1.0 = consuming budget exactly as fast as allowed)
//   breach         = burn rate >= breach_burn with enough samples to judge
//
// observe() reports each sample's verdict plus the breach *edge* — the
// transition into breach — which is what triggers a flight-recorder dump
// (Telemetry::observe_slo). Violations are also counted into the metrics
// registry so they ride the existing merge path into every BENCH_*.json.
//
// Configuration comes from WorldOptions::slo; an empty objective list
// means SloConfig::defaults(), and enabled=false makes observe() a no-op.
// Thresholds are in the telemetry clock's nanoseconds (virtual ns on the
// simulated transport).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace srpc {

struct SloObjective {
  std::string kind;                  // matches to_string(MessageType) etc.
  std::uint64_t threshold_ns = 0;
  double target = 0.99;              // fraction that must meet the threshold
  std::uint32_t window = 256;        // rolling sample window
  double breach_burn = 2.0;          // burn rate that declares a breach
};

struct SloConfig {
  bool enabled = true;
  // Empty = defaults(). To disable one default kind, configure explicitly.
  std::vector<SloObjective> objectives;
  // Generous bounds that hold on any healthy transport in the suite; CALL
  // is deliberately absent (it times arbitrary user code).
  static std::vector<SloObjective> defaults();
};

struct SloObservation {
  bool tracked = false;      // an objective exists for this kind
  bool violated = false;     // this sample missed its threshold
  bool breach_edge = false;  // this sample pushed the kind into breach
  double burn_rate = 0.0;
};

class SloEngine {
 public:
  struct KindStats {
    std::uint64_t threshold_ns = 0;
    double target = 0.99;
    std::uint32_t window = 0;
    std::uint64_t observed = 0;           // lifetime samples
    std::uint64_t violations = 0;         // lifetime misses
    std::uint32_t window_observed = 0;
    std::uint32_t window_violations = 0;
    double burn_rate = 0.0;
    double budget_remaining = 1.0;        // fraction of window budget left
    bool in_breach = false;
  };

  void configure(const SloConfig& config);
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_ && !trackers_.empty();
  }

  SloObservation observe(std::string_view kind, std::uint64_t latency_ns);

  [[nodiscard]] std::uint64_t total_violations() const;
  [[nodiscard]] std::map<std::string, KindStats> stats() const;
  [[nodiscard]] std::string to_json() const;

 private:
  struct Tracker {
    SloObjective objective;
    std::vector<bool> ring;       // violation bits, ring.size() == window
    std::uint32_t head = 0;
    std::uint32_t filled = 0;
    std::uint32_t window_violations = 0;
    std::uint64_t observed = 0;
    std::uint64_t violations = 0;
    bool in_breach = false;
    [[nodiscard]] double burn_rate() const;
  };

  bool enabled_ = false;
  std::map<std::string, Tracker, std::less<>> trackers_;
};

}  // namespace srpc
