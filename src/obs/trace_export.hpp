// Chrome trace-event export — turns every space's recorded spans into one
// JSON file loadable by Perfetto (ui.perfetto.dev) or chrome://tracing.
//
// Each address space becomes a "process" (pid = SpaceId, named by a
// process_name metadata event); spans become complete ("ph":"X") events on
// the space's single worker thread, and span annotations become instant
// ("ph":"i") events. Span/trace identities ride in "args" so tools (and
// scripts/trace.sh) can re-check parent links across spaces.
#pragma once

#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/status.hpp"
#include "obs/span_recorder.hpp"

namespace srpc {

struct SpaceSpans {
  SpaceId space = kInvalidSpaceId;
  std::string name;
  std::vector<Span> spans;
};

// The merged trace as a JSON string ({"traceEvents":[...]}).
[[nodiscard]] std::string chrome_trace_json(const std::vector<SpaceSpans>& spaces);

// Writes chrome_trace_json() to `path`.
Status write_chrome_trace(const std::vector<SpaceSpans>& spaces,
                          const std::string& path);

}  // namespace srpc
