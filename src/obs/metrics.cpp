#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace srpc {

void Histogram::record(std::uint64_t value) noexcept {
  const int bucket = std::bit_width(value);  // 0 for value == 0
  ++buckets_[std::min(bucket, kBuckets - 1)];
  ++count_;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void Histogram::merge(const Histogram& other) noexcept {
  for (int i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Histogram::percentile(double q) const noexcept {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count_);
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    const auto next = seen + buckets_[i];
    if (static_cast<double>(next) >= rank) {
      // Bucket i holds values in [2^(i-1), 2^i - 1] (bucket 0 holds {0}).
      // Clamp the bucket bounds to the observed min/max before
      // interpolating: in the tail buckets the nominal power-of-two range
      // is mostly empty, and a midpoint there would report a value no
      // sample ever took (e.g. one observation of 70 in [64, 127] must
      // not print as ~95).
      double lo = (i == 0) ? 0.0 : static_cast<double>(1ULL << (i - 1));
      double hi =
          (i == 0) ? 0.0
                   : static_cast<double>((i >= 64 ? UINT64_MAX : (1ULL << i) - 1));
      lo = std::max(lo, static_cast<double>(min()));
      hi = std::min(hi, static_cast<double>(max_));
      if (hi < lo) hi = lo;
      const double within =
          buckets_[i] > 1
              ? (rank - static_cast<double>(seen)) / static_cast<double>(buckets_[i])
              : 0.5;
      double v = lo + (hi - lo) * within;
      v = std::max(v, static_cast<double>(min()));
      v = std::min(v, static_cast<double>(max_));
      return v;
    }
    seen = next;
  }
  return static_cast<double>(max_);
}

std::string MetricsRegistry::key(std::string_view name, std::string_view label) {
  std::string k(name);
  if (!label.empty()) {
    k.push_back('{');
    k.append(label);
    k.push_back('}');
  }
  return k;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [k, c] : other.counters_) counters_[k].value += c.value;
  for (const auto& [k, g] : other.gauges_) gauges_[k].value = g.value;
  for (const auto& [k, h] : other.histograms_) histograms_[k].merge(h);
}

void MetricsRegistry::reset() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

namespace {
void append_json_string(std::string& out, std::string_view s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  out.push_back('"');
}

void append_number(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f", v);
  out += buf;
}
}  // namespace

std::string MetricsRegistry::to_json() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [k, c] : counters_) {
    if (!first) out.push_back(',');
    first = false;
    append_json_string(out, k);
    out.push_back(':');
    out += std::to_string(c.value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [k, g] : gauges_) {
    if (!first) out.push_back(',');
    first = false;
    append_json_string(out, k);
    out.push_back(':');
    out += std::to_string(g.value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [k, h] : histograms_) {
    if (!first) out.push_back(',');
    first = false;
    append_json_string(out, k);
    out += ":{\"count\":" + std::to_string(h.count());
    out += ",\"min\":" + std::to_string(h.min());
    out += ",\"max\":" + std::to_string(h.max());
    out += ",\"sum\":" + std::to_string(h.sum());
    out += ",\"p50\":";
    append_number(out, h.percentile(0.50));
    out += ",\"p95\":";
    append_number(out, h.percentile(0.95));
    out += ",\"p99\":";
    append_number(out, h.percentile(0.99));
    out += ",\"p999\":";
    append_number(out, h.percentile(0.999));
    out.push_back('}');
  }
  out += "}}";
  return out;
}

}  // namespace srpc
