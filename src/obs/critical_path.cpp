#include "obs/critical_path.hpp"

#include <algorithm>
#include <array>
#include <string_view>
#include <utility>

namespace srpc {
namespace {

// Attribution priorities, highest wins an instant. kLocal is the sweep's
// remainder, never an interval of its own.
enum Prio : int {
  kPrioNetwork = 1,
  kPrioRetransmit = 2,
  kPrioExecution = 3,
  kPrioLock = 4,
};
constexpr int kPrioLevels = 5;

struct Interval {
  std::uint64_t start;
  std::uint64_t end;
  int prio;
};

bool has_retransmit_note(const SpanAnnotation& a) {
  return a.text.find("retransmit") != std::string::npos;
}

// Sweeps `intervals` (already clipped to [lo, hi]) and charges every
// instant of [lo, hi] to the highest active priority; prio 0 collects the
// uncovered remainder. Returns per-priority totals.
std::array<std::uint64_t, kPrioLevels> sweep(std::vector<Interval> intervals,
                                             std::uint64_t lo,
                                             std::uint64_t hi) {
  std::array<std::uint64_t, kPrioLevels> totals{};
  if (hi <= lo) return totals;
  struct Edge {
    std::uint64_t t;
    int prio;
    int delta;
  };
  std::vector<Edge> edges;
  edges.reserve(intervals.size() * 2);
  for (const Interval& iv : intervals) {
    if (iv.end <= iv.start) continue;
    edges.push_back({iv.start, iv.prio, +1});
    edges.push_back({iv.end, iv.prio, -1});
  }
  std::sort(edges.begin(), edges.end(),
            [](const Edge& a, const Edge& b) { return a.t < b.t; });
  std::array<int, kPrioLevels> active{};
  std::uint64_t cursor = lo;
  std::size_t i = 0;
  while (cursor < hi) {
    // Apply every edge at `cursor`, then charge up to the next edge.
    while (i < edges.size() && edges[i].t <= cursor) {
      active[edges[i].prio] += edges[i].delta;
      ++i;
    }
    std::uint64_t next = hi;
    if (i < edges.size() && edges[i].t < hi) next = edges[i].t;
    int prio = 0;
    for (int p = kPrioLevels - 1; p >= 1; --p) {
      if (active[p] > 0) {
        prio = p;
        break;
      }
    }
    totals[prio] += next - cursor;
    cursor = next;
  }
  return totals;
}

}  // namespace

CriticalPathAnalyzer::CriticalPathAnalyzer(std::vector<SpaceSpans> spaces)
    : storage_(std::move(spaces)) {
  for (const SpaceSpans& ss : storage_) {
    for (const Span& s : ss.spans) {
      if (s.open || s.end_ns < s.start_ns) continue;
      spans_.push_back({&s, ss.space});
    }
  }
  by_id_.reserve(spans_.size());
  by_parent_.reserve(spans_.size());
  for (std::size_t i = 0; i < spans_.size(); ++i) {
    by_id_.emplace_back(spans_[i].span->span_id, i);
    by_parent_.emplace_back(spans_[i].span->parent_span_id, i);
  }
  std::sort(by_id_.begin(), by_id_.end());
  std::sort(by_parent_.begin(), by_parent_.end());
}

void CriticalPathAnalyzer::collect_subtree(std::uint64_t root_id,
                                           std::vector<const Rec*>* out) const {
  std::vector<std::uint64_t> stack{root_id};
  while (!stack.empty()) {
    const std::uint64_t id = stack.back();
    stack.pop_back();
    auto [lo, hi] = std::equal_range(
        by_parent_.begin(), by_parent_.end(),
        std::make_pair(id, std::size_t{0}),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    for (auto it = lo; it != hi; ++it) {
      out->push_back(&spans_[it->second]);
      stack.push_back(spans_[it->second].span->span_id);
    }
  }
}

Result<CriticalPathBreakdown> CriticalPathAnalyzer::analyze_session(
    SessionId session) const {
  const Rec* best = nullptr;
  for (const Rec& r : spans_) {
    if (r.span->category != "session" || r.span->session != session) continue;
    if (best == nullptr || (r.span->end_ns - r.span->start_ns) >
                               (best->span->end_ns - best->span->start_ns)) {
      best = &r;
    }
  }
  if (best == nullptr) {
    return internal_error("no session span recorded for session " +
                          std::to_string(session));
  }
  return attribute(*best);
}

Result<CriticalPathBreakdown> CriticalPathAnalyzer::analyze_span(
    std::uint64_t span_id) const {
  auto it = std::lower_bound(
      by_id_.begin(), by_id_.end(), std::make_pair(span_id, std::size_t{0}),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  if (it == by_id_.end() || it->first != span_id) {
    return internal_error("span " + std::to_string(span_id) +
                          " not recorded");
  }
  return attribute(spans_[it->second]);
}

CriticalPathBreakdown CriticalPathAnalyzer::attribute(const Rec& root) const {
  CriticalPathBreakdown out;
  out.trace_id = root.span->trace_id;
  out.root_span_id = root.span->span_id;
  out.root_name = root.span->name;
  const std::uint64_t lo = root.span->start_ns;
  const std::uint64_t hi = root.span->end_ns;
  out.total_ns = hi - lo;

  std::vector<const Rec*> subtree;
  collect_subtree(root.span->span_id, &subtree);
  out.span_count = subtree.size() + 1;
  for (const Rec* r : subtree) {
    for (const SpanAnnotation& a : r->span->annotations) {
      if (has_retransmit_note(a)) ++out.retransmits;
    }
  }

  // Turn the subtree into priority intervals clipped to a window.
  const auto intervals_in = [&](std::uint64_t wlo, std::uint64_t whi,
                                const std::vector<const Rec*>& recs) {
    std::vector<Interval> ivs;
    ivs.reserve(recs.size());
    for (const Rec* r : recs) {
      const Span& s = *r->span;
      const std::uint64_t cs = std::max(s.start_ns, wlo);
      const std::uint64_t ce = std::min(s.end_ns, whi);
      if (ce <= cs) continue;
      if (s.category == "concurrency.lock") {
        ivs.push_back({cs, ce, kPrioLock});
      } else if (s.category == "rpc.server") {
        ivs.push_back({cs, ce, kPrioExecution});
      } else if (s.category == "rpc.client") {
        ivs.push_back({cs, ce, kPrioNetwork});
        // The prefix of a client span up to its last retransmit note is a
        // stall: the original frame (or an ack) was lost and the reply
        // only existed because a timer re-sent it.
        std::uint64_t last_retx = 0;
        for (const SpanAnnotation& a : s.annotations) {
          if (has_retransmit_note(a)) last_retx = std::max(last_retx, a.ts_ns);
        }
        if (last_retx > cs)
          ivs.push_back({cs, std::min(last_retx, ce), kPrioRetransmit});
      }
    }
    return ivs;
  };

  const auto totals = sweep(intervals_in(lo, hi, subtree), lo, hi);
  out.local_ns = totals[0];
  out.network_ns = totals[kPrioNetwork];
  out.retransmit_ns = totals[kPrioRetransmit];
  out.execution_ns = totals[kPrioExecution];
  out.lock_wait_ns = totals[kPrioLock];

  // Per-hop sweeps: each direct client child over its own window.
  for (const Rec* r : subtree) {
    const Span& s = *r->span;
    if (s.parent_span_id != root.span->span_id || s.category != "rpc.client")
      continue;
    std::vector<const Rec*> hop_tree{r};
    collect_subtree(s.span_id, &hop_tree);
    const auto ht = sweep(intervals_in(s.start_ns, s.end_ns, hop_tree),
                          s.start_ns, s.end_ns);
    CriticalPathBreakdown::Hop hop;
    hop.name = s.name;
    hop.space = r->space;
    hop.span_id = s.span_id;
    hop.total_ns = s.end_ns - s.start_ns;
    hop.network_ns = ht[kPrioNetwork] + ht[0];  // no "local" inside a hop
    hop.retransmit_ns = ht[kPrioRetransmit];
    hop.execution_ns = ht[kPrioExecution];
    hop.lock_wait_ns = ht[kPrioLock];
    out.hops.push_back(std::move(hop));
  }
  std::sort(out.hops.begin(), out.hops.end(),
            [](const auto& a, const auto& b) { return a.total_ns > b.total_ns; });
  return out;
}

std::string CriticalPathBreakdown::to_json() const {
  std::string out = "{";
  out += "\"root\": \"" + root_name + "\"";
  out += ", \"trace_id\": " + std::to_string(trace_id);
  out += ", \"span_count\": " + std::to_string(span_count);
  out += ", \"total_ns\": " + std::to_string(total_ns);
  out += ", \"network_ns\": " + std::to_string(network_ns);
  out += ", \"execution_ns\": " + std::to_string(execution_ns);
  out += ", \"lock_wait_ns\": " + std::to_string(lock_wait_ns);
  out += ", \"retransmit_ns\": " + std::to_string(retransmit_ns);
  out += ", \"local_ns\": " + std::to_string(local_ns);
  out += ", \"attributed_ns\": " + std::to_string(attributed_ns());
  out += ", \"retransmits\": " + std::to_string(retransmits);
  out += ", \"hops\": [";
  for (std::size_t i = 0; i < hops.size(); ++i) {
    const Hop& h = hops[i];
    if (i != 0) out += ", ";
    out += "{\"name\": \"" + h.name + "\"";
    out += ", \"space\": " + std::to_string(h.space);
    out += ", \"total_ns\": " + std::to_string(h.total_ns);
    out += ", \"network_ns\": " + std::to_string(h.network_ns);
    out += ", \"execution_ns\": " + std::to_string(h.execution_ns);
    out += ", \"lock_wait_ns\": " + std::to_string(h.lock_wait_ns);
    out += ", \"retransmit_ns\": " + std::to_string(h.retransmit_ns);
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace srpc
