// Telemetry — the one observability handle a Runtime owns and shares with
// its collaborators (RpcEndpoint, CacheManager).
//
// Bundles the span recorder and the metrics registry with the clock that
// timestamps both: the simulated network's virtual clock when there is
// one, the process steady clock on the real socket transport. Collaborators
// hold a Telemetry* and never need to know which. Metrics are always on
// (they are the registry RuntimeStats migrates onto); spans/annotations
// record only while tracing is enabled (World::set_tracing / SRPC_TRACE).
#pragma once

#include <chrono>
#include <functional>
#include <string>
#include <utility>

#include "common/ids.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/span_recorder.hpp"

namespace srpc {

class Telemetry {
 public:
  Telemetry(SpaceId space, std::string space_name)
      : space_(space),
        space_name_(std::move(space_name)),
        tracer_(space),
        flight_(space, space_name_) {}

  // `now` must return monotonic nanoseconds; pass {} to fall back to the
  // process steady clock (socket transport, no virtual time).
  void set_clock(std::function<std::uint64_t()> now) { clock_ = std::move(now); }

  [[nodiscard]] std::uint64_t now_ns() const {
    if (clock_) return clock_();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  [[nodiscard]] SpaceId space() const noexcept { return space_; }
  [[nodiscard]] const std::string& space_name() const noexcept {
    return space_name_;
  }

  void set_tracing(bool on) noexcept { tracer_.set_enabled(on); }
  [[nodiscard]] bool tracing() const noexcept { return tracer_.enabled(); }

  [[nodiscard]] SpanRecorder& tracer() noexcept { return tracer_; }
  [[nodiscard]] MetricsRegistry& metrics() noexcept { return metrics_; }
  [[nodiscard]] const SpanRecorder& tracer() const noexcept { return tracer_; }
  [[nodiscard]] const MetricsRegistry& metrics() const noexcept {
    return metrics_;
  }
  [[nodiscard]] FlightRecorder& flight() noexcept { return flight_; }
  [[nodiscard]] const FlightRecorder& flight() const noexcept {
    return flight_;
  }
  [[nodiscard]] SloEngine& slo() noexcept { return slo_; }
  [[nodiscard]] const SloEngine& slo() const noexcept { return slo_; }

  // Convenience shorthands for instrumentation sites.
  void count(std::string_view name, std::string_view label = {},
             std::uint64_t n = 1) {
    metrics_.counter(MetricsRegistry::key(name, label)).add(n);
  }
  Histogram& hist(std::string_view name, std::string_view label = {}) {
    return metrics_.histogram(MetricsRegistry::key(name, label));
  }
  // Timestamped note on the innermost open span; no-op unless tracing.
  void annotate(std::string text) {
    if (tracer_.enabled()) tracer_.annotate(std::move(text), now_ns());
  }

  // Judges one latency sample against its SLO. Violations become metrics
  // counters (so they merge into bench accumulators), and a breach edge —
  // the burn rate first crossing its threshold — records a flight event
  // and dumps the ring: the black box for "why did we start missing".
  void observe_slo(std::string_view kind, std::uint64_t latency_ns) {
    if (!slo_.enabled()) return;
    const SloObservation obs = slo_.observe(kind, latency_ns);
    if (!obs.tracked) return;
    count("slo.observed", kind);
    if (obs.violated) count("slo.violations", kind);
    if (obs.breach_edge) {
      count("slo.breaches", kind);
      const std::uint64_t now = now_ns();
      flight_.event(FlightEventKind::kSloBreach, now, kInvalidSpaceId,
                    std::string(kind) + " burn " +
                        std::to_string(static_cast<int>(obs.burn_rate * 100)) +
                        "%",
                    static_cast<std::int64_t>(latency_ns));
      flight_.dump("slo_breach", now);
    }
  }

 private:
  SpaceId space_;
  std::string space_name_;
  std::function<std::uint64_t()> clock_;
  SpanRecorder tracer_;
  MetricsRegistry metrics_;
  FlightRecorder flight_;
  SloEngine slo_;
};

}  // namespace srpc
