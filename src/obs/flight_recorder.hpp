// FlightRecorder — the per-space black box.
//
// An always-on, fixed-size ring of structured events recorded at the
// runtime's choke points: every frame sent and received (RpcEndpoint),
// retransmits, incarnation fences, WB_CONFLICT outcomes, lease expiries,
// failure-detector transitions, arena publish failures, recovery replays,
// crashes, rejoins, and SLO breaches. Recording is cheap (one mutexed
// struct copy, no allocation on the hot path) so the ring stays on even in
// benchmarks; when something goes wrong the last `capacity` events explain
// what led up to it.
//
// Dumps. The ring is serialised to JSON automatically on three triggers —
// World::crash_space (the space is about to lose its state), the first
// incarnation fence per {peer, incarnation} (stale traffic from a dead
// life), and an SLO breach edge — and on demand via dump(). Every dump is
// handed to the configured sink (World archives them; tests read them
// back) and, when SRPC_FLIGHT_DIR or set_dump_dir() names a directory,
// written to FLIGHT_<space>_<reason>_<n>.json for CI artifact collection.
// The most recent dump is always retained in-memory (last_dump()).
//
// Thread safety: the ring is mutex-protected because dumps and a few
// producers (World::crash_space, lease expiry from the poll path) run off
// the space's worker thread.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/ids.hpp"

namespace srpc {

enum class FlightEventKind : std::uint8_t {
  kFrameSend = 1,     // frame handed to the transport (incl. retransmits)
  kFrameRecv,         // frame accepted off the wire
  kRetransmit,        // timer fired, frame re-sent (arg = attempt)
  kFence,             // stale-incarnation frame dropped (arg = stamped inc)
  kWbConflict,        // prepare lost arbitration (arg = blocker session)
  kLeaseExpiry,       // lease lapsed / revoked on peer death
  kDetector,          // failure-detector verdict transition (note = verdict)
  kArenaPublishFail,  // shm arena full, payload fell back inline (arg = bytes)
  kRecoveryReplay,    // recovery log replayed at boot (arg = records)
  kCrash,             // this space is being crashed (dump follows)
  kRejoin,            // REJOIN served or announced (arg = incarnation)
  kSloBreach,         // SLO burn rate crossed its breach threshold
  kSessionAbort,      // session aborted (arg = session)
  kCheckpoint,        // recovery checkpoint taken (arg = heap bytes)
};

[[nodiscard]] std::string_view to_string(FlightEventKind k) noexcept;

struct FlightEvent {
  std::uint64_t ts_ns = 0;
  std::uint64_t seq = 0;           // wire seq for frame events, else 0
  SessionId session = kNoSession;  // owning session when known
  std::int64_t arg = 0;            // kind-specific scalar (see enum)
  SpaceId peer = kInvalidSpaceId;  // remote party when the event has one
  FlightEventKind kind = FlightEventKind::kFrameSend;
  std::uint8_t msg_type = 0;       // raw MessageType for frame events, else 0
  char note[46] = {};              // short free-text detail (truncated)
};

class FlightRecorder {
 public:
  // A dump sink receives every serialised dump (reason + JSON text).
  // World installs one that archives dumps past the space's death.
  using DumpSink =
      std::function<void(SpaceId, std::string_view reason, std::string json)>;

  static constexpr std::size_t kDefaultCapacity = 1024;

  explicit FlightRecorder(SpaceId space, std::string space_name,
                          std::size_t capacity = kDefaultCapacity);

  // Resizes the ring (drops recorded events); configuration-time only.
  void set_capacity(std::size_t capacity);
  void set_dump_sink(DumpSink sink);
  // Directory for file dumps; empty falls back to $SRPC_FLIGHT_DIR, and
  // when that is unset too, dumps stay in-memory only.
  void set_dump_dir(std::string dir);

  // Core producer: copies `e` into the ring (ts_ns set by the caller).
  void record(const FlightEvent& e);

  // Convenience producers for the two families of events.
  void frame(FlightEventKind kind, std::uint64_t ts_ns, std::uint8_t msg_type,
             SpaceId peer, SessionId session, std::uint64_t seq,
             std::int64_t arg = 0);
  void event(FlightEventKind kind, std::uint64_t ts_ns,
             SpaceId peer = kInvalidSpaceId, std::string_view note = {},
             std::int64_t arg = 0, SessionId session = kNoSession);

  // Serialises the ring, oldest first, hands it to the sink, and writes a
  // FLIGHT_<space>_<reason>_<n>.json file when a dump dir is configured.
  // Returns the JSON text.
  std::string dump(std::string_view reason, std::uint64_t now_ns);

  [[nodiscard]] std::vector<FlightEvent> snapshot() const;
  [[nodiscard]] std::size_t capacity() const;
  [[nodiscard]] std::uint64_t total_recorded() const;  // incl. overwritten
  [[nodiscard]] std::uint64_t dump_count() const;
  [[nodiscard]] std::string last_dump() const;
  [[nodiscard]] std::string last_dump_path() const;

 private:
  [[nodiscard]] std::string render_locked(std::string_view reason,
                                          std::uint64_t now_ns) const;

  mutable std::mutex mutex_;
  SpaceId space_;
  std::string space_name_;
  std::vector<FlightEvent> ring_;
  std::size_t head_ = 0;           // next write position
  std::uint64_t total_ = 0;        // events ever recorded
  std::uint64_t dumps_ = 0;
  std::string dump_dir_;
  std::string last_dump_;
  std::string last_dump_path_;
  DumpSink sink_;
};

}  // namespace srpc
