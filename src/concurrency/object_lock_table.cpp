#include "concurrency/object_lock_table.hpp"

#include <algorithm>

namespace srpc {

ObjectLockTable::Outcome ObjectLockTable::acquire_shared(SessionId session,
                                                         std::uint64_t addr) {
  Outcome out;
  Lock& lock = locks_[addr];
  out.contended = lock.writer != kNoSession && lock.writer != session;
  lock.readers.insert(session);
  held_[session].insert(addr);
  out.granted = true;
  return out;
}

SessionId ObjectLockTable::exclusive_blocker(
    SessionId session, std::uint64_t addr,
    const Unwoundable& unwoundable) const {
  auto it = locks_.find(addr);
  if (it == locks_.end()) return kNoSession;
  const Lock& lock = it->second;
  // A competing writer always wins: it is prepared (committing) by the time
  // it holds the exclusive lock, hence unwoundable.
  if (lock.writer != kNoSession && lock.writer != session) return lock.writer;
  for (SessionId reader : lock.readers) {
    if (reader == session) continue;
    // Wound-wait: an older reader (smaller id) defeats us; so does any
    // reader the arbiter declared unwoundable (already committing).
    if (reader < session || (unwoundable && unwoundable(reader))) return reader;
  }
  return kNoSession;
}

ObjectLockTable::Outcome ObjectLockTable::acquire_exclusive(
    SessionId session, std::uint64_t addr, const Unwoundable& unwoundable) {
  Outcome out;
  out.blocker = exclusive_blocker(session, addr, unwoundable);
  if (out.blocker != kNoSession) return out;
  Lock& lock = locks_[addr];
  out.contended = !lock.readers.empty() &&
                  !(lock.readers.size() == 1 && lock.readers.count(session));
  for (SessionId reader : lock.readers) {
    if (reader == session) continue;
    out.wounded.push_back(reader);
  }
  for (SessionId reader : out.wounded) drop(reader, addr);
  lock.readers.clear();
  lock.writer = session;
  held_[session].insert(addr);
  out.granted = true;
  return out;
}

void ObjectLockTable::release_session(SessionId session) {
  auto it = held_.find(session);
  if (it == held_.end()) return;
  for (std::uint64_t addr : it->second) {
    auto lock = locks_.find(addr);
    if (lock == locks_.end()) continue;
    if (lock->second.writer == session) lock->second.writer = kNoSession;
    lock->second.readers.erase(session);
    if (lock->second.empty()) locks_.erase(lock);
  }
  held_.erase(it);
}

void ObjectLockTable::drop(SessionId session, std::uint64_t addr) {
  auto it = held_.find(session);
  if (it == held_.end()) return;
  it->second.erase(addr);
  if (it->second.empty()) held_.erase(it);
}

bool ObjectLockTable::held_by(SessionId session, std::uint64_t addr) const {
  auto it = locks_.find(addr);
  if (it == locks_.end()) return false;
  return it->second.writer == session || it->second.readers.count(session) > 0;
}

std::size_t ObjectLockTable::held_count(SessionId session) const {
  auto it = held_.find(session);
  return it == held_.end() ? 0 : it->second.size();
}

std::vector<SessionId> ObjectLockTable::sessions_of_space(SpaceId space) const {
  std::vector<SessionId> out;
  for (const auto& [session, addrs] : held_) {
    if (static_cast<SpaceId>(session >> 32) == space) out.push_back(session);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace srpc
