// ObjectLockTable — home-side per-object session locks.
//
// The paper's execution model gives each session exclusive use of a space's
// cache, which serialises sessions world-wide. The concurrent runtime keeps
// many sessions in flight and instead arbitrates at the homes: every object
// a session reads takes a shared lock at FETCH/DEREF time, and the write
// manifest carried by WB_PREPARE upgrades to exclusive locks before the
// modified set is staged.
//
// Conflicts resolve by wound-wait ordered by session id — ids are
// (space << 32 | counter), so a smaller id is an older session and the
// total order is world-wide without any extra coordination. Nothing here
// ever blocks: a younger writer meeting an older holder loses immediately
// (the home answers WB_CONFLICT and the client retries under backoff), and
// an older writer wounds younger readers, who discover the wound at their
// own next WB_PREPARE. Sessions that already started committing are
// unwoundable — two-phase write-back must not lose a prepared session.
//
// Keys are canonical home base addresses (the home canonicalises interior
// and element pointers through its heap index before locking), so a lock on
// a container covers every element pointer into it.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/ids.hpp"

namespace srpc {

enum class LockMode : std::uint8_t { kShared, kExclusive };

class ObjectLockTable {
 public:
  // Returns true for sessions that must not be wounded (e.g. committing).
  using Unwoundable = std::function<bool(SessionId)>;

  struct Outcome {
    bool granted = false;
    bool contended = false;             // met a competing holder on the way
    SessionId blocker = kNoSession;     // who defeated us (grant failed)
    std::vector<SessionId> wounded;     // younger holders displaced (grant ok)
  };

  // Shared locks always grant: readers coexist with each other and with a
  // writer (optimistic versioning catches stale reads at prepare time).
  Outcome acquire_shared(SessionId session, std::uint64_t addr);

  // Probe only — who would defeat `session`'s exclusive claim on `addr`?
  // kNoSession means the claim would succeed. Used for the all-or-nothing
  // first pass over a write manifest, so a half-granted manifest never
  // leaves stray wounds behind.
  [[nodiscard]] SessionId exclusive_blocker(SessionId session,
                                            std::uint64_t addr,
                                            const Unwoundable& unwoundable) const;

  // Takes the exclusive lock, wounding younger woundable readers. Callers
  // must have probed first (exclusive_blocker == kNoSession); a blocked
  // acquire reports granted = false and changes nothing.
  Outcome acquire_exclusive(SessionId session, std::uint64_t addr,
                            const Unwoundable& unwoundable);

  // Drops every lock `session` holds.
  void release_session(SessionId session);

  [[nodiscard]] bool held_by(SessionId session, std::uint64_t addr) const;
  [[nodiscard]] std::size_t lock_count() const noexcept { return locks_.size(); }
  [[nodiscard]] std::size_t held_count(SessionId session) const;

  // Sessions of `space` currently holding any lock (peer-death cleanup).
  [[nodiscard]] std::vector<SessionId> sessions_of_space(SpaceId space) const;

 private:
  struct Lock {
    SessionId writer = kNoSession;
    std::unordered_set<SessionId> readers;
    [[nodiscard]] bool empty() const { return writer == kNoSession && readers.empty(); }
  };

  void drop(SessionId session, std::uint64_t addr);

  std::unordered_map<std::uint64_t, Lock> locks_;
  std::unordered_map<SessionId, std::unordered_set<std::uint64_t>> held_;
};

}  // namespace srpc
