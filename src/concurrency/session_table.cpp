#include "concurrency/session_table.hpp"

#include <algorithm>

namespace srpc {

SessionState& SessionTable::open(SessionId id) {
  auto it = states_.find(id);
  if (it == states_.end()) {
    auto state = std::make_unique<SessionState>();
    state->id = id;
    it = states_.emplace(id, std::move(state)).first;
  }
  return *it->second;
}

SessionState* SessionTable::find(SessionId id) {
  auto it = states_.find(id);
  return it == states_.end() ? nullptr : it->second.get();
}

const SessionState* SessionTable::find(SessionId id) const {
  auto it = states_.find(id);
  return it == states_.end() ? nullptr : it->second.get();
}

bool SessionTable::close(SessionId id) { return states_.erase(id) > 0; }

std::vector<SessionId> SessionTable::ids() const {
  std::vector<SessionId> out;
  out.reserve(states_.size());
  for (const auto& [id, state] : states_) out.push_back(id);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace srpc
