// ConflictArbiter — home-side session arbitration for concurrent write-back.
//
// One arbiter lives in each Runtime and validates WB_PREPARE against every
// session the home has served since. It combines two mechanisms:
//
//  * Optimistic versioning. Each home object carries a version counter,
//    bumped only when a committed modified set is applied. Serving a FETCH
//    or DEREF records the version the session observed; the write manifest
//    presented at WB_PREPARE re-checks those observations, so a session
//    that read data an earlier commit has since overwritten loses with
//    WB_CONFLICT instead of silently clobbering the newer state. Blind
//    writes (objects the session never fetched from this home) pass
//    unchecked, matching the paper's last-writer semantics for disjoint
//    data.
//
//  * Wound-wait object locks (ObjectLockTable). Reads take shared locks;
//    prepare upgrades the manifest to exclusive ones. An older session
//    wounds younger readers in its way; a younger session meeting an older
//    holder conflicts immediately. A wounded session learns of its wound at
//    its own next prepare and retries from scratch. Prepared sessions are
//    unwoundable until WB_COMMIT/WB_ABORT resolves them, preserving
//    two-phase atomicity.
//
// Everything runs on the home's single worker thread — no locking here.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/ids.hpp"
#include "common/status.hpp"
#include "concurrency/object_lock_table.hpp"

namespace srpc {

struct ArbiterStats {
  std::uint64_t lock_waits = 0;  // contended acquisitions (non-blocking "waits")
  std::uint64_t wounds = 0;      // younger sessions displaced by older writers
  std::uint64_t conflicts = 0;   // WB_PREPAREs refused
};

class ConflictArbiter {
 public:
  // The session observed (read) the object based at `addr` at its current
  // version. Takes a shared lock; never fails.
  void note_read(SessionId session, std::uint64_t addr);

  // Validates a write manifest: wound check, version check, then exclusive
  // lock acquisition (all-or-nothing across the manifest). On success the
  // session is committing (unwoundable) until commit() or release().
  // Idempotent for retransmitted prepares of an already-committing session.
  Status validate_prepare(SessionId session,
                          std::span<const std::uint64_t> writes);

  // WB_COMMIT applied: bump versions of everything the session prepared,
  // then forget the session entirely.
  void commit(SessionId session);

  // Session over without a commit (abort, invalidate, wound cleanup):
  // forget it without bumping any versions.
  void release(SessionId session);

  // Every session of `space` is gone (peer declared dead).
  void release_space(SpaceId space);

  [[nodiscard]] bool is_wounded(SessionId session) const {
    return wounded_.count(session) > 0;
  }
  [[nodiscard]] bool is_committing(SessionId session) const {
    return committing_.count(session) > 0;
  }
  [[nodiscard]] std::uint64_t version(std::uint64_t addr) const {
    auto it = versions_.find(addr);
    return it == versions_.end() ? 0 : it->second;
  }
  [[nodiscard]] std::size_t lock_count() const { return locks_.lock_count(); }
  [[nodiscard]] const ObjectLockTable& locks() const noexcept { return locks_; }
  [[nodiscard]] const ArbiterStats& stats() const noexcept { return stats_; }

 private:
  ObjectLockTable locks_;
  std::unordered_map<std::uint64_t, std::uint64_t> versions_;
  std::unordered_map<SessionId, std::unordered_map<std::uint64_t, std::uint64_t>>
      observed_;
  std::unordered_set<SessionId> wounded_;
  std::unordered_map<SessionId, std::vector<std::uint64_t>> prepared_;
  std::unordered_set<SessionId> committing_;
  ArbiterStats stats_;
};

}  // namespace srpc
