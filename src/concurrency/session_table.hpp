// SessionTable — per-runtime bookkeeping for concurrent RPC sessions.
//
// The single-session runtime kept one scalar of each piece of session
// state (the travelling modified set, home twins, ship records, the session
// span). SessionTable generalises that to many sessions in flight at once:
// one SessionState per session id, holding everything the runtime used to
// keep in scalars plus the per-session cache overlay that gives each
// session its own extended address space.
//
// States are created lazily at two tiers: serving any message of a session
// creates a bare state (sets, ship records — cheap), while the cache and
// allocator only materialise when the session actually faults remote data
// in or allocates remotely (a cache reserves a whole arena, so a home that
// merely applies write-backs never pays for one).
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/ids.hpp"
#include "core/cache_manager.hpp"
#include "core/modified_set.hpp"
#include "mem/remote_allocator.hpp"
#include "obs/span_recorder.hpp"
#include "swizzle/long_pointer.hpp"

namespace srpc {

enum class SessionStatus : std::uint8_t {
  kActive,      // open, accepting work
  kCommitting,  // end_session in progress (write-back phases running)
  kAborted,     // being unwound
};

// Everything one session owns at one space. `local` marks the space that
// began the session (the commit coordinator); remotes hold participant
// states created by serving the session's messages.
struct SessionState {
  SessionId id = kNoSession;
  bool local = false;
  SessionStatus status = SessionStatus::kActive;

  // Objects of OUR home heap this session modified (directly or via an
  // incoming modified set) — the home-resident half of the travelling set.
  std::unordered_set<LongPointer, LongPointerHash> updates;
  // Baseline copies backing delta encoding of those home objects.
  std::unordered_map<LongPointer, std::vector<std::uint8_t>, LongPointerHash>
      home_twins;
  // Per-object shipping records (delta fingerprints, ever-shipped ranges).
  std::unordered_map<LongPointer, ShipState, LongPointerHash> ship;
  std::uint64_t ship_epoch = 0;  // bumped every control transfer

  SpanRecorder::Handle span = SpanRecorder::kNoSpan;  // session span (local)

  // Peers this session exchanged requests with from here — the invalidation
  // multicast tree: session end notifies exactly these, and each forwards
  // to its own touched set.
  std::unordered_set<SpaceId> touched;

  // Per-session extended address space (lazily built, see file comment).
  std::unique_ptr<CacheManager> cache;
  std::unique_ptr<RemoteAllocator> allocator;

  void clear_ship() {
    ship.clear();
    home_twins.clear();
    ship_epoch = 0;
  }
};

class SessionTable {
 public:
  // Creates (or returns) the state for `id`. State addresses are stable:
  // they survive rehashing and the creation/close of sibling sessions.
  SessionState& open(SessionId id);

  [[nodiscard]] SessionState* find(SessionId id);
  [[nodiscard]] const SessionState* find(SessionId id) const;

  // Destroys the state (and its cache/allocator). Returns false if absent.
  bool close(SessionId id);

  [[nodiscard]] std::size_t size() const noexcept { return states_.size(); }
  [[nodiscard]] std::vector<SessionId> ids() const;

  template <typename F>
  void for_each(F&& fn) {
    for (auto& [id, state] : states_) fn(*state);
  }
  template <typename F>
  void for_each(F&& fn) const {
    for (const auto& [id, state] : states_) fn(*state);
  }

 private:
  std::unordered_map<SessionId, std::unique_ptr<SessionState>> states_;
};

}  // namespace srpc
