#include "concurrency/arbiter.hpp"

#include <string>

namespace srpc {

void ConflictArbiter::note_read(SessionId session, std::uint64_t addr) {
  const ObjectLockTable::Outcome out = locks_.acquire_shared(session, addr);
  if (out.contended) ++stats_.lock_waits;
  observed_[session][addr] = version(addr);
}

Status ConflictArbiter::validate_prepare(
    SessionId session, std::span<const std::uint64_t> writes) {
  // A retransmitted prepare of a session we already admitted: the locks are
  // held and the verdict stands.
  if (committing_.count(session) > 0) return Status::ok();

  if (wounded_.count(session) > 0) {
    ++stats_.conflicts;
    return conflict("session " + std::to_string(session) +
                    " was wounded by an older session's write");
  }

  // Version check: only objects this session actually observed here.
  auto observed = observed_.find(session);
  if (observed != observed_.end()) {
    for (std::uint64_t addr : writes) {
      auto seen = observed->second.find(addr);
      if (seen != observed->second.end() && seen->second != version(addr)) {
        ++stats_.conflicts;
        return conflict("stale read: object " + std::to_string(addr) +
                        " committed past version " +
                        std::to_string(seen->second));
      }
    }
  }

  const ObjectLockTable::Unwoundable unwoundable = [this](SessionId holder) {
    return committing_.count(holder) > 0;
  };

  // All-or-nothing: probe the whole manifest before wounding anyone, so a
  // refused prepare leaves every other session untouched.
  for (std::uint64_t addr : writes) {
    const SessionId blocker = locks_.exclusive_blocker(session, addr, unwoundable);
    if (blocker != kNoSession) {
      ++stats_.conflicts;
      ++stats_.lock_waits;
      return conflict("object " + std::to_string(addr) +
                      " is locked by session " + std::to_string(blocker));
    }
  }
  for (std::uint64_t addr : writes) {
    const ObjectLockTable::Outcome out =
        locks_.acquire_exclusive(session, addr, unwoundable);
    if (out.contended) ++stats_.lock_waits;
    for (SessionId victim : out.wounded) {
      if (wounded_.insert(victim).second) ++stats_.wounds;
      locks_.release_session(victim);
    }
  }

  committing_.insert(session);
  prepared_[session].assign(writes.begin(), writes.end());
  return Status::ok();
}

void ConflictArbiter::commit(SessionId session) {
  auto it = prepared_.find(session);
  if (it != prepared_.end()) {
    for (std::uint64_t addr : it->second) ++versions_[addr];
    prepared_.erase(it);
  }
  committing_.erase(session);
  wounded_.erase(session);
  observed_.erase(session);
  locks_.release_session(session);
}

void ConflictArbiter::release(SessionId session) {
  prepared_.erase(session);
  committing_.erase(session);
  wounded_.erase(session);
  observed_.erase(session);
  locks_.release_session(session);
}

void ConflictArbiter::release_space(SpaceId space) {
  for (SessionId session : locks_.sessions_of_space(space)) release(session);
  auto of_space = [space](SessionId id) {
    return static_cast<SpaceId>(id >> 32) == space;
  };
  for (auto it = observed_.begin(); it != observed_.end();) {
    it = of_space(it->first) ? observed_.erase(it) : std::next(it);
  }
  for (auto it = prepared_.begin(); it != prepared_.end();) {
    it = of_space(it->first) ? prepared_.erase(it) : std::next(it);
  }
  for (auto it = wounded_.begin(); it != wounded_.end();) {
    it = of_space(*it) ? wounded_.erase(it) : std::next(it);
  }
  for (auto it = committing_.begin(); it != committing_.end();) {
    it = of_space(*it) ? committing_.erase(it) : std::next(it);
  }
}

}  // namespace srpc
