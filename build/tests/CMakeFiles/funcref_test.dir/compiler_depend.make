# Empty compiler generated dependencies file for funcref_test.
# This may be replaced when dependencies are built.
