file(REMOVE_RECURSE
  "CMakeFiles/funcref_test.dir/funcref_test.cpp.o"
  "CMakeFiles/funcref_test.dir/funcref_test.cpp.o.d"
  "funcref_test"
  "funcref_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/funcref_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
