# Empty dependencies file for graph_payload_test.
# This may be replaced when dependencies are built.
