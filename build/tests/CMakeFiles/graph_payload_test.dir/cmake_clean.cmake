file(REMOVE_RECURSE
  "CMakeFiles/graph_payload_test.dir/graph_payload_test.cpp.o"
  "CMakeFiles/graph_payload_test.dir/graph_payload_test.cpp.o.d"
  "graph_payload_test"
  "graph_payload_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_payload_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
