# Empty compiler generated dependencies file for rich_types_test.
# This may be replaced when dependencies are built.
