file(REMOVE_RECURSE
  "CMakeFiles/rich_types_test.dir/rich_types_test.cpp.o"
  "CMakeFiles/rich_types_test.dir/rich_types_test.cpp.o.d"
  "rich_types_test"
  "rich_types_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rich_types_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
