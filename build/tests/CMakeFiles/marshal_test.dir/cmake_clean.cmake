file(REMOVE_RECURSE
  "CMakeFiles/marshal_test.dir/marshal_test.cpp.o"
  "CMakeFiles/marshal_test.dir/marshal_test.cpp.o.d"
  "marshal_test"
  "marshal_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/marshal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
