# Empty dependencies file for rpc_core_test.
# This may be replaced when dependencies are built.
