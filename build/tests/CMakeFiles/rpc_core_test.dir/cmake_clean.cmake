file(REMOVE_RECURSE
  "CMakeFiles/rpc_core_test.dir/rpc_core_test.cpp.o"
  "CMakeFiles/rpc_core_test.dir/rpc_core_test.cpp.o.d"
  "rpc_core_test"
  "rpc_core_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpc_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
