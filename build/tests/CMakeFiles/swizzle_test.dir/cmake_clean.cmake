file(REMOVE_RECURSE
  "CMakeFiles/swizzle_test.dir/swizzle_test.cpp.o"
  "CMakeFiles/swizzle_test.dir/swizzle_test.cpp.o.d"
  "swizzle_test"
  "swizzle_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swizzle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
