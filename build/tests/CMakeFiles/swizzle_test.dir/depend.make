# Empty dependencies file for swizzle_test.
# This may be replaced when dependencies are built.
