file(REMOVE_RECURSE
  "CMakeFiles/socket_integration_test.dir/socket_integration_test.cpp.o"
  "CMakeFiles/socket_integration_test.dir/socket_integration_test.cpp.o.d"
  "socket_integration_test"
  "socket_integration_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/socket_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
