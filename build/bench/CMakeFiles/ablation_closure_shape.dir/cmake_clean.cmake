file(REMOVE_RECURSE
  "CMakeFiles/ablation_closure_shape.dir/ablation_closure_shape.cpp.o"
  "CMakeFiles/ablation_closure_shape.dir/ablation_closure_shape.cpp.o.d"
  "ablation_closure_shape"
  "ablation_closure_shape.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_closure_shape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
