# Empty compiler generated dependencies file for ablation_closure_shape.
# This may be replaced when dependencies are built.
