# Empty dependencies file for table1_allocation.
# This may be replaced when dependencies are built.
