file(REMOVE_RECURSE
  "CMakeFiles/table1_allocation.dir/table1_allocation.cpp.o"
  "CMakeFiles/table1_allocation.dir/table1_allocation.cpp.o.d"
  "table1_allocation"
  "table1_allocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_allocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
