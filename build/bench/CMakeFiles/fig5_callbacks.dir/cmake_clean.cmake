file(REMOVE_RECURSE
  "CMakeFiles/fig5_callbacks.dir/fig5_callbacks.cpp.o"
  "CMakeFiles/fig5_callbacks.dir/fig5_callbacks.cpp.o.d"
  "fig5_callbacks"
  "fig5_callbacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_callbacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
