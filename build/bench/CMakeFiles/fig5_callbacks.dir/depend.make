# Empty dependencies file for fig5_callbacks.
# This may be replaced when dependencies are built.
