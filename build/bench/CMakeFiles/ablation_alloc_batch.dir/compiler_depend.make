# Empty compiler generated dependencies file for ablation_alloc_batch.
# This may be replaced when dependencies are built.
