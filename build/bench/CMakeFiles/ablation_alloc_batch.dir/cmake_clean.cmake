file(REMOVE_RECURSE
  "CMakeFiles/ablation_alloc_batch.dir/ablation_alloc_batch.cpp.o"
  "CMakeFiles/ablation_alloc_batch.dir/ablation_alloc_batch.cpp.o.d"
  "ablation_alloc_batch"
  "ablation_alloc_batch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_alloc_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
