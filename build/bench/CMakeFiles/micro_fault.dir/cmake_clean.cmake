file(REMOVE_RECURSE
  "CMakeFiles/micro_fault.dir/micro_fault.cpp.o"
  "CMakeFiles/micro_fault.dir/micro_fault.cpp.o.d"
  "micro_fault"
  "micro_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
