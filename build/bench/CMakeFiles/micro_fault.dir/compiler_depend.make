# Empty compiler generated dependencies file for micro_fault.
# This may be replaced when dependencies are built.
