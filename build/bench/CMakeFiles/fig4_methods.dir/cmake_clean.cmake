file(REMOVE_RECURSE
  "CMakeFiles/fig4_methods.dir/fig4_methods.cpp.o"
  "CMakeFiles/fig4_methods.dir/fig4_methods.cpp.o.d"
  "fig4_methods"
  "fig4_methods.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_methods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
