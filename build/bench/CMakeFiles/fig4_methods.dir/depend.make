# Empty dependencies file for fig4_methods.
# This may be replaced when dependencies are built.
