# Empty dependencies file for fig7_update.
# This may be replaced when dependencies are built.
