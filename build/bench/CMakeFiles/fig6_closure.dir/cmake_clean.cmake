file(REMOVE_RECURSE
  "CMakeFiles/fig6_closure.dir/fig6_closure.cpp.o"
  "CMakeFiles/fig6_closure.dir/fig6_closure.cpp.o.d"
  "fig6_closure"
  "fig6_closure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_closure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
