# Empty compiler generated dependencies file for fig6_closure.
# This may be replaced when dependencies are built.
