file(REMOVE_RECURSE
  "CMakeFiles/micro_xdr.dir/micro_xdr.cpp.o"
  "CMakeFiles/micro_xdr.dir/micro_xdr.cpp.o.d"
  "micro_xdr"
  "micro_xdr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_xdr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
