# Empty compiler generated dependencies file for micro_xdr.
# This may be replaced when dependencies are built.
