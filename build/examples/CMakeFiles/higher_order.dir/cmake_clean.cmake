file(REMOVE_RECURSE
  "CMakeFiles/higher_order.dir/higher_order.cpp.o"
  "CMakeFiles/higher_order.dir/higher_order.cpp.o.d"
  "higher_order"
  "higher_order.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/higher_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
