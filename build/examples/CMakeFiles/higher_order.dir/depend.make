# Empty dependencies file for higher_order.
# This may be replaced when dependencies are built.
