# Empty dependencies file for callback_nested.
# This may be replaced when dependencies are built.
