file(REMOVE_RECURSE
  "CMakeFiles/callback_nested.dir/callback_nested.cpp.o"
  "CMakeFiles/callback_nested.dir/callback_nested.cpp.o.d"
  "callback_nested"
  "callback_nested.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/callback_nested.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
