# Empty dependencies file for tree_search.
# This may be replaced when dependencies are built.
