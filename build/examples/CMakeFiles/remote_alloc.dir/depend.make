# Empty dependencies file for remote_alloc.
# This may be replaced when dependencies are built.
