file(REMOVE_RECURSE
  "CMakeFiles/remote_alloc.dir/remote_alloc.cpp.o"
  "CMakeFiles/remote_alloc.dir/remote_alloc.cpp.o.d"
  "remote_alloc"
  "remote_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remote_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
