
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/eager_rpc.cpp" "src/CMakeFiles/srpc.dir/baselines/eager_rpc.cpp.o" "gcc" "src/CMakeFiles/srpc.dir/baselines/eager_rpc.cpp.o.d"
  "/root/repo/src/baselines/lazy_rpc.cpp" "src/CMakeFiles/srpc.dir/baselines/lazy_rpc.cpp.o" "gcc" "src/CMakeFiles/srpc.dir/baselines/lazy_rpc.cpp.o.d"
  "/root/repo/src/common/byte_buffer.cpp" "src/CMakeFiles/srpc.dir/common/byte_buffer.cpp.o" "gcc" "src/CMakeFiles/srpc.dir/common/byte_buffer.cpp.o.d"
  "/root/repo/src/common/logging.cpp" "src/CMakeFiles/srpc.dir/common/logging.cpp.o" "gcc" "src/CMakeFiles/srpc.dir/common/logging.cpp.o.d"
  "/root/repo/src/common/status.cpp" "src/CMakeFiles/srpc.dir/common/status.cpp.o" "gcc" "src/CMakeFiles/srpc.dir/common/status.cpp.o.d"
  "/root/repo/src/core/address_space.cpp" "src/CMakeFiles/srpc.dir/core/address_space.cpp.o" "gcc" "src/CMakeFiles/srpc.dir/core/address_space.cpp.o.d"
  "/root/repo/src/core/cache_manager.cpp" "src/CMakeFiles/srpc.dir/core/cache_manager.cpp.o" "gcc" "src/CMakeFiles/srpc.dir/core/cache_manager.cpp.o.d"
  "/root/repo/src/core/closure.cpp" "src/CMakeFiles/srpc.dir/core/closure.cpp.o" "gcc" "src/CMakeFiles/srpc.dir/core/closure.cpp.o.d"
  "/root/repo/src/core/debug.cpp" "src/CMakeFiles/srpc.dir/core/debug.cpp.o" "gcc" "src/CMakeFiles/srpc.dir/core/debug.cpp.o.d"
  "/root/repo/src/core/funcref.cpp" "src/CMakeFiles/srpc.dir/core/funcref.cpp.o" "gcc" "src/CMakeFiles/srpc.dir/core/funcref.cpp.o.d"
  "/root/repo/src/core/graph_payload.cpp" "src/CMakeFiles/srpc.dir/core/graph_payload.cpp.o" "gcc" "src/CMakeFiles/srpc.dir/core/graph_payload.cpp.o.d"
  "/root/repo/src/core/runtime.cpp" "src/CMakeFiles/srpc.dir/core/runtime.cpp.o" "gcc" "src/CMakeFiles/srpc.dir/core/runtime.cpp.o.d"
  "/root/repo/src/core/world.cpp" "src/CMakeFiles/srpc.dir/core/world.cpp.o" "gcc" "src/CMakeFiles/srpc.dir/core/world.cpp.o.d"
  "/root/repo/src/mem/managed_heap.cpp" "src/CMakeFiles/srpc.dir/mem/managed_heap.cpp.o" "gcc" "src/CMakeFiles/srpc.dir/mem/managed_heap.cpp.o.d"
  "/root/repo/src/mem/remote_allocator.cpp" "src/CMakeFiles/srpc.dir/mem/remote_allocator.cpp.o" "gcc" "src/CMakeFiles/srpc.dir/mem/remote_allocator.cpp.o.d"
  "/root/repo/src/net/mailbox.cpp" "src/CMakeFiles/srpc.dir/net/mailbox.cpp.o" "gcc" "src/CMakeFiles/srpc.dir/net/mailbox.cpp.o.d"
  "/root/repo/src/net/message.cpp" "src/CMakeFiles/srpc.dir/net/message.cpp.o" "gcc" "src/CMakeFiles/srpc.dir/net/message.cpp.o.d"
  "/root/repo/src/net/sim_network.cpp" "src/CMakeFiles/srpc.dir/net/sim_network.cpp.o" "gcc" "src/CMakeFiles/srpc.dir/net/sim_network.cpp.o.d"
  "/root/repo/src/net/socket_transport.cpp" "src/CMakeFiles/srpc.dir/net/socket_transport.cpp.o" "gcc" "src/CMakeFiles/srpc.dir/net/socket_transport.cpp.o.d"
  "/root/repo/src/rpc/rpc_endpoint.cpp" "src/CMakeFiles/srpc.dir/rpc/rpc_endpoint.cpp.o" "gcc" "src/CMakeFiles/srpc.dir/rpc/rpc_endpoint.cpp.o.d"
  "/root/repo/src/rpc/service_registry.cpp" "src/CMakeFiles/srpc.dir/rpc/service_registry.cpp.o" "gcc" "src/CMakeFiles/srpc.dir/rpc/service_registry.cpp.o.d"
  "/root/repo/src/rpc/wire.cpp" "src/CMakeFiles/srpc.dir/rpc/wire.cpp.o" "gcc" "src/CMakeFiles/srpc.dir/rpc/wire.cpp.o.d"
  "/root/repo/src/swizzle/allocation_table.cpp" "src/CMakeFiles/srpc.dir/swizzle/allocation_table.cpp.o" "gcc" "src/CMakeFiles/srpc.dir/swizzle/allocation_table.cpp.o.d"
  "/root/repo/src/swizzle/long_pointer.cpp" "src/CMakeFiles/srpc.dir/swizzle/long_pointer.cpp.o" "gcc" "src/CMakeFiles/srpc.dir/swizzle/long_pointer.cpp.o.d"
  "/root/repo/src/types/arch.cpp" "src/CMakeFiles/srpc.dir/types/arch.cpp.o" "gcc" "src/CMakeFiles/srpc.dir/types/arch.cpp.o.d"
  "/root/repo/src/types/layout.cpp" "src/CMakeFiles/srpc.dir/types/layout.cpp.o" "gcc" "src/CMakeFiles/srpc.dir/types/layout.cpp.o.d"
  "/root/repo/src/types/registry_codec.cpp" "src/CMakeFiles/srpc.dir/types/registry_codec.cpp.o" "gcc" "src/CMakeFiles/srpc.dir/types/registry_codec.cpp.o.d"
  "/root/repo/src/types/schema_parser.cpp" "src/CMakeFiles/srpc.dir/types/schema_parser.cpp.o" "gcc" "src/CMakeFiles/srpc.dir/types/schema_parser.cpp.o.d"
  "/root/repo/src/types/type_builder.cpp" "src/CMakeFiles/srpc.dir/types/type_builder.cpp.o" "gcc" "src/CMakeFiles/srpc.dir/types/type_builder.cpp.o.d"
  "/root/repo/src/types/type_descriptor.cpp" "src/CMakeFiles/srpc.dir/types/type_descriptor.cpp.o" "gcc" "src/CMakeFiles/srpc.dir/types/type_descriptor.cpp.o.d"
  "/root/repo/src/types/type_registry.cpp" "src/CMakeFiles/srpc.dir/types/type_registry.cpp.o" "gcc" "src/CMakeFiles/srpc.dir/types/type_registry.cpp.o.d"
  "/root/repo/src/types/value_codec.cpp" "src/CMakeFiles/srpc.dir/types/value_codec.cpp.o" "gcc" "src/CMakeFiles/srpc.dir/types/value_codec.cpp.o.d"
  "/root/repo/src/types/value_view.cpp" "src/CMakeFiles/srpc.dir/types/value_view.cpp.o" "gcc" "src/CMakeFiles/srpc.dir/types/value_view.cpp.o.d"
  "/root/repo/src/vm/fault_dispatcher.cpp" "src/CMakeFiles/srpc.dir/vm/fault_dispatcher.cpp.o" "gcc" "src/CMakeFiles/srpc.dir/vm/fault_dispatcher.cpp.o.d"
  "/root/repo/src/vm/page_arena.cpp" "src/CMakeFiles/srpc.dir/vm/page_arena.cpp.o" "gcc" "src/CMakeFiles/srpc.dir/vm/page_arena.cpp.o.d"
  "/root/repo/src/vm/page_table.cpp" "src/CMakeFiles/srpc.dir/vm/page_table.cpp.o" "gcc" "src/CMakeFiles/srpc.dir/vm/page_table.cpp.o.d"
  "/root/repo/src/vm/protection.cpp" "src/CMakeFiles/srpc.dir/vm/protection.cpp.o" "gcc" "src/CMakeFiles/srpc.dir/vm/protection.cpp.o.d"
  "/root/repo/src/workload/access_pattern.cpp" "src/CMakeFiles/srpc.dir/workload/access_pattern.cpp.o" "gcc" "src/CMakeFiles/srpc.dir/workload/access_pattern.cpp.o.d"
  "/root/repo/src/workload/graph.cpp" "src/CMakeFiles/srpc.dir/workload/graph.cpp.o" "gcc" "src/CMakeFiles/srpc.dir/workload/graph.cpp.o.d"
  "/root/repo/src/workload/list.cpp" "src/CMakeFiles/srpc.dir/workload/list.cpp.o" "gcc" "src/CMakeFiles/srpc.dir/workload/list.cpp.o.d"
  "/root/repo/src/workload/tree.cpp" "src/CMakeFiles/srpc.dir/workload/tree.cpp.o" "gcc" "src/CMakeFiles/srpc.dir/workload/tree.cpp.o.d"
  "/root/repo/src/xdr/xdr_decoder.cpp" "src/CMakeFiles/srpc.dir/xdr/xdr_decoder.cpp.o" "gcc" "src/CMakeFiles/srpc.dir/xdr/xdr_decoder.cpp.o.d"
  "/root/repo/src/xdr/xdr_encoder.cpp" "src/CMakeFiles/srpc.dir/xdr/xdr_encoder.cpp.o" "gcc" "src/CMakeFiles/srpc.dir/xdr/xdr_encoder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
