# Empty compiler generated dependencies file for srpc.
# This may be replaced when dependencies are built.
