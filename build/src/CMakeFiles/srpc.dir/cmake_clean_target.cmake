file(REMOVE_RECURSE
  "libsrpc.a"
)
