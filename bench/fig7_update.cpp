// Figure 7 — "Update Performance".
//
// The same depth-first search of the 32 767-node tree (closure 8 192 B),
// with the solid line updating every visited node and the dotted line only
// visiting them — identical access patterns, so the difference is pure
// update overhead: the write fault that upgrades each clean page and the
// modified data set travelling back with the RETURN (paper §3.4).
//
// Expected shape (paper): the update curve scales with the update ratio
// and sits around twice the visited-only curve ("the update in the remote
// procedure body requires at least two page accesses: one for reading and
// the other for writing-back").
//
// Beyond the paper, the sparse-update section measures the delta-encoded
// modified set (PROTOCOL.md "MODIFIED_DELTA") against the full-image
// baseline: every stride-th visited node is updated, so pages go dirty but
// only a few bytes per page change. The `sparse` rows report modified-set
// wire bytes with deltas on and off and their ratio.
#include <benchmark/benchmark.h>

#include <array>
#include <map>

#include "harness.hpp"

namespace {

using srpc::bench::Measurement;
using srpc::bench::TreeExperiment;

constexpr std::uint64_t kClosureBytes = 8192;
constexpr std::uint64_t kSparseStrides[] = {1, 4, 16, 64};

std::uint32_t nodes() {
  static const std::uint32_t n = srpc::bench::node_count_from_env(32767);
  return n;
}

TreeExperiment& experiment() {
  static TreeExperiment e(nodes(), kClosureBytes);
  return e;
}

// Same workload over the zero-copy payload lane (PROTOCOL.md "Zero-copy
// payload lane"): payloads ride the shared arena as 20-byte descriptors, so
// the update curve's write-back traffic stops paying per-byte wire cost.
TreeExperiment& experiment_shm() {
  static TreeExperiment e(nodes(), kClosureBytes, /*shm_payload=*/true);
  return e;
}

// tenth -> {updated, visited-only, updated on the shm lane}
std::map<int, std::array<double, 3>>& rows() {
  static std::map<int, std::array<double, 3>> r;
  return r;
}

// stride -> {delta modified bytes, full modified bytes, delta wire, skips}
std::map<int, std::array<double, 4>>& sparse_rows() {
  static std::map<int, std::array<double, 4>> r;
  return r;
}

std::uint64_t limit_for(int tenth) {
  return nodes() * static_cast<std::uint64_t>(tenth) / 10;
}

void BM_Updated(benchmark::State& state) {
  const auto tenth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Measurement m = experiment().run_proposed(limit_for(tenth), /*update=*/true);
    state.SetIterationTime(m.seconds);
    rows()[tenth][0] = m.seconds;
    state.counters["fetches"] = static_cast<double>(m.fetches);
    state.counters["modified_bytes"] = static_cast<double>(m.modified_bytes);
  }
}

void BM_VisitedOnly(benchmark::State& state) {
  const auto tenth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Measurement m = experiment().run_proposed(limit_for(tenth), /*update=*/false);
    state.SetIterationTime(m.seconds);
    rows()[tenth][1] = m.seconds;
  }
}

void BM_UpdatedShm(benchmark::State& state) {
  const auto tenth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Measurement m =
        experiment_shm().run_proposed(limit_for(tenth), /*update=*/true);
    state.SetIterationTime(m.seconds);
    rows()[tenth][2] = m.seconds;
    state.counters["modified_bytes"] = static_cast<double>(m.modified_bytes);
  }
}

void BM_SparseDelta(benchmark::State& state) {
  const auto stride = static_cast<std::uint64_t>(state.range(0));
  experiment().set_modified_deltas(true);
  for (auto _ : state) {
    Measurement m = experiment().run_sparse_update(nodes(), stride);
    state.SetIterationTime(m.seconds);
    auto& row = sparse_rows()[static_cast<int>(stride)];
    row[0] = static_cast<double>(m.modified_bytes);
    row[2] = static_cast<double>(m.delta_bytes);
    row[3] = static_cast<double>(m.deltas_skipped);
    state.counters["modified_bytes"] = static_cast<double>(m.modified_bytes);
  }
}

void BM_SparseFull(benchmark::State& state) {
  const auto stride = static_cast<std::uint64_t>(state.range(0));
  experiment().set_modified_deltas(false);
  for (auto _ : state) {
    Measurement m = experiment().run_sparse_update(nodes(), stride);
    state.SetIterationTime(m.seconds);
    sparse_rows()[static_cast<int>(stride)][1] =
        static_cast<double>(m.modified_bytes);
    state.counters["modified_bytes"] = static_cast<double>(m.modified_bytes);
  }
  experiment().set_modified_deltas(true);
}

BENCHMARK(BM_Updated)->DenseRange(0, 10)->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_VisitedOnly)->DenseRange(0, 10)->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_UpdatedShm)->DenseRange(0, 10)->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SparseDelta)->Arg(1)->Arg(4)->Arg(16)->Arg(64)->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SparseFull)->Arg(1)->Arg(4)->Arg(16)->Arg(64)->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  srpc::init_log_level_from_env();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();

  std::vector<std::vector<double>> table;
  for (const auto& [tenth, methods] : rows()) {
    const double updated = methods[0];
    const double visited = methods[1];
    const double updated_shm = methods[2];
    table.push_back({tenth / 10.0, updated, visited,
                     visited > 0 ? updated / visited : 0.0, updated_shm,
                     updated_shm > 0 ? updated / updated_shm : 0.0});
  }
  srpc::bench::print_table(
      "Figure 7: update vs visit-only processing time (virtual s)",
      {"ratio", "updated", "visited_only", "update/visit", "updated_shm",
       "wb_speedup"},
      table);
  srpc::bench::RobustnessCounters robustness = experiment().robustness();
  robustness.merge(experiment_shm().robustness());
  srpc::MetricsRegistry latency;
  latency.merge(experiment().latency());
  latency.merge(experiment_shm().latency());
  srpc::bench::write_bench_json(
      "fig7_update",
      {{"nodes", static_cast<double>(nodes())},
       {"closure_bytes", static_cast<double>(kClosureBytes)}},
      {"ratio", "updated_s", "visited_only_s", "update_over_visit",
       "updated_shm_s", "wb_speedup"},
      table, robustness, &latency);

  std::vector<std::vector<double>> sparse;
  for (const auto& [stride, bytes] : sparse_rows()) {
    const double delta = bytes[0];
    const double full = bytes[1];
    sparse.push_back({static_cast<double>(stride), delta, full,
                      full > 0 ? delta / full : 0.0, bytes[2], bytes[3]});
  }
  srpc::bench::print_table(
      "Figure 7b: sparse-update modified-set wire bytes, delta vs full image",
      {"stride", "delta_bytes", "full_bytes", "delta/full", "delta_section",
       "epoch_skips"},
      sparse);
  srpc::bench::write_bench_json(
      "fig7_sparse_update",
      {{"nodes", static_cast<double>(nodes())},
       {"closure_bytes", static_cast<double>(kClosureBytes)}},
      {"stride", "modified_bytes_delta", "modified_bytes_full",
       "delta_over_full", "delta_section_bytes", "epoch_skips"},
      sparse, experiment().robustness(), &experiment().latency());
  benchmark::Shutdown();
  return 0;
}
