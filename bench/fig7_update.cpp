// Figure 7 — "Update Performance".
//
// The same depth-first search of the 32 767-node tree (closure 8 192 B),
// with the solid line updating every visited node and the dotted line only
// visiting them — identical access patterns, so the difference is pure
// update overhead: the write fault that upgrades each clean page and the
// modified data set travelling back with the RETURN (paper §3.4).
//
// Expected shape (paper): the update curve scales with the update ratio
// and sits around twice the visited-only curve ("the update in the remote
// procedure body requires at least two page accesses: one for reading and
// the other for writing-back").
#include <benchmark/benchmark.h>

#include <array>
#include <map>

#include "harness.hpp"

namespace {

using srpc::bench::Measurement;
using srpc::bench::TreeExperiment;

constexpr std::uint32_t kNodes = 32767;
constexpr std::uint64_t kClosureBytes = 8192;

TreeExperiment& experiment() {
  static TreeExperiment e(kNodes, kClosureBytes);
  return e;
}

std::map<int, std::array<double, 2>>& rows() {
  static std::map<int, std::array<double, 2>> r;
  return r;
}

std::uint64_t limit_for(int tenth) { return kNodes * static_cast<std::uint64_t>(tenth) / 10; }

void BM_Updated(benchmark::State& state) {
  const auto tenth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Measurement m = experiment().run_proposed(limit_for(tenth), /*update=*/true);
    state.SetIterationTime(m.seconds);
    rows()[tenth][0] = m.seconds;
    state.counters["fetches"] = static_cast<double>(m.fetches);
  }
}

void BM_VisitedOnly(benchmark::State& state) {
  const auto tenth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Measurement m = experiment().run_proposed(limit_for(tenth), /*update=*/false);
    state.SetIterationTime(m.seconds);
    rows()[tenth][1] = m.seconds;
  }
}

BENCHMARK(BM_Updated)->DenseRange(0, 10)->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_VisitedOnly)->DenseRange(0, 10)->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();

  std::vector<std::vector<double>> table;
  for (const auto& [tenth, methods] : rows()) {
    const double updated = methods[0];
    const double visited = methods[1];
    table.push_back({tenth / 10.0, updated, visited,
                     visited > 0 ? updated / visited : 0.0});
  }
  srpc::bench::print_table(
      "Figure 7: update vs visit-only processing time (virtual s), 32767 nodes",
      {"ratio", "updated", "visited_only", "update/visit"}, table);
  benchmark::Shutdown();
  return 0;
}
