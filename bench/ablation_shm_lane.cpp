// Ablation — zero-copy shm payload lane vs the legacy XDR byte lane.
//
// Beyond the paper: PROTOCOL.md "Zero-copy payload lane". One caller/callee
// pair per lane runs the identical fig-7-style workload (one session: remote
// update of every node of the caller's tree, then write-back at session
// end). Both worlds are built with shm_payload = true so the elevation hook
// is installed and meters every payload byte; the XDR lane then flips the
// per-runtime kill switch (Runtime::set_shm_payload(false)), which keeps
// wire bytes and timing identical to a legacy world while rpc.bytes_copied
// records the copied-lane traffic.
//
// The bench is its own acceptance check (bench_smoke runs it):
//  * both lanes must compute the same checksum (equal correctness),
//  * the shm lane must report rpc.bytes_copied == 0 — every non-empty
//    payload rode the arena — and rpc.bytes_zero_copy > 0,
//  * the XDR lane must report rpc.bytes_zero_copy == 0,
//  * after the session ends no arena region may still be live (pins are
//    released with the last Message/stage that held them).
// Any violation exits nonzero.
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/smart_rpc.hpp"
#include "harness.hpp"
#include "net/shm_arena.hpp"
#include "workload/tree.hpp"

namespace {

using srpc::AddressSpace;
using srpc::CostModel;
using srpc::MetricsRegistry;
using srpc::Runtime;
using srpc::Session;
using srpc::ShmArenaStats;
using srpc::World;
using srpc::WorldOptions;

std::uint32_t nodes() {
  static const std::uint32_t n = srpc::bench::node_count_from_env(32767);
  return n;
}

std::uint64_t counter_value(const MetricsRegistry& m, const std::string& key) {
  auto it = m.counters().find(key);
  return it == m.counters().end() ? 0 : it->second.value;
}

struct LaneResult {
  double seconds = 0;
  std::uint64_t wire_bytes = 0;
  std::int64_t checksum = 0;
  std::uint64_t bytes_copied = 0;
  std::uint64_t bytes_zero_copy = 0;
  std::uint64_t payloads_published = 0;
  std::uint64_t publish_fallbacks = 0;
  ShmArenaStats arena;
  MetricsRegistry latency;
  srpc::bench::RobustnessCounters robustness;
};

LaneResult run_lane(bool shm_on) {
  WorldOptions options;
  options.cost = CostModel::sparc_ethernet();
  options.cache.closure_bytes = 8192;
  options.cache.page_count = 16384;
  // Both lanes advertise the capability; the per-runtime kill switch picks
  // the lane, so the elevation hook meters payload bytes either way.
  options.shm_payload = true;
  World world(options);
  AddressSpace& caller = world.create_space("caller");
  AddressSpace& callee = world.create_space("callee");
  srpc::workload::register_tree_type(world).status().check();
  callee
      .bind("update",
            [](srpc::CallContext&, srpc::workload::TreeNode* root,
               std::uint64_t limit) -> std::int64_t {
              return srpc::workload::update_prefix(root, limit, 1);
            })
      .check();
  if (!shm_on) {
    for (AddressSpace* space : {&caller, &callee}) {
      space->run([](Runtime& rt) {
        rt.set_shm_payload(false);
        return 0;
      });
    }
  }

  srpc::workload::TreeNode* root = nullptr;
  caller.run([&](Runtime& rt) {
    auto built = srpc::workload::build_complete_tree(rt, nodes());
    built.status().check();
    root = built.value();
    return 0;
  });
  world.reset_metering();

  LaneResult r;
  r.checksum = caller.run([&](Runtime& rt) -> std::int64_t {
    Session session(rt);
    auto sum = session.call<std::int64_t>(callee.id(), "update", root,
                                          static_cast<std::uint64_t>(nodes()));
    sum.status().check();
    const std::int64_t value = sum.value();
    session.end().check();
    return value;
  });

  r.seconds = world.virtual_seconds();
  r.wire_bytes = world.net_stats().wire_bytes;
  for (AddressSpace* space : {&caller, &callee}) {
    r.latency.merge(space->run(
        [](Runtime& rt) -> MetricsRegistry { return rt.metrics(); }));
    const srpc::RuntimeStats stats =
        space->run([](Runtime& rt) { return rt.stats(); });
    r.payloads_published += stats.shm_payloads_published;
    r.publish_fallbacks += stats.shm_publish_fallbacks;
    r.robustness.add(stats);
  }
  r.bytes_copied = counter_value(r.latency, "rpc.bytes_copied");
  r.bytes_zero_copy = counter_value(r.latency, "rpc.bytes_zero_copy");
  r.arena = world.shm_arena()->stats();
  return r;
}

}  // namespace

int main() {
  srpc::init_log_level_from_env();

  const LaneResult xdr = run_lane(/*shm_on=*/false);
  const LaneResult shm = run_lane(/*shm_on=*/true);

  std::vector<std::vector<double>> table;
  for (const LaneResult* r : {&xdr, &shm}) {
    table.push_back({r == &shm ? 1.0 : 0.0, r->seconds,
                     static_cast<double>(r->wire_bytes),
                     static_cast<double>(r->bytes_copied),
                     static_cast<double>(r->bytes_zero_copy),
                     static_cast<double>(r->payloads_published),
                     static_cast<double>(r->publish_fallbacks),
                     static_cast<double>(r->checksum)});
  }
  srpc::bench::print_table(
      "Ablation: XDR byte lane (0) vs zero-copy shm lane (1), full-tree "
      "remote update",
      {"lane_shm", "seconds", "wire_bytes", "bytes_copied", "bytes_zero_copy",
       "published", "fallbacks", "checksum"},
      table);
  std::printf("shm lane copied payload bytes: %llu (bar: 0)\n",
              static_cast<unsigned long long>(shm.bytes_copied));
  std::printf("wire bytes: %llu (xdr) vs %llu (shm)\n",
              static_cast<unsigned long long>(xdr.wire_bytes),
              static_cast<unsigned long long>(shm.wire_bytes));

  srpc::bench::RobustnessCounters robustness = xdr.robustness;
  robustness.merge(shm.robustness);
  MetricsRegistry latency;
  latency.merge(xdr.latency);
  latency.merge(shm.latency);
  srpc::bench::write_bench_json(
      "ablation_shm_lane", {{"nodes", static_cast<double>(nodes())}},
      {"lane_shm", "seconds", "wire_bytes", "bytes_copied", "bytes_zero_copy",
       "published", "fallbacks", "checksum"},
      table, robustness, &latency);

  bool ok = true;
  if (xdr.checksum != shm.checksum) {
    std::fprintf(stderr, "FAIL: checksum mismatch (xdr %lld vs shm %lld)\n",
                 static_cast<long long>(xdr.checksum),
                 static_cast<long long>(shm.checksum));
    ok = false;
  }
  if (shm.bytes_copied != 0) {
    std::fprintf(stderr, "FAIL: shm lane copied %llu payload bytes\n",
                 static_cast<unsigned long long>(shm.bytes_copied));
    ok = false;
  }
  if (shm.bytes_zero_copy == 0 || shm.payloads_published == 0) {
    std::fprintf(stderr, "FAIL: shm lane elevated nothing\n");
    ok = false;
  }
  if (xdr.bytes_zero_copy != 0) {
    std::fprintf(stderr, "FAIL: XDR lane leaked %llu bytes onto the shm lane\n",
                 static_cast<unsigned long long>(xdr.bytes_zero_copy));
    ok = false;
  }
  for (const LaneResult* r : {&xdr, &shm}) {
    if (r->arena.regions_live != 0) {
      std::fprintf(stderr, "FAIL: %llu arena regions still live after quiesce\n",
                   static_cast<unsigned long long>(r->arena.regions_live));
      ok = false;
    }
  }
  return ok ? 0 : 1;
}
