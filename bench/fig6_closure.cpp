// Figure 6 — "Relationship between the Closure Size and Processing Time".
//
// A complete binary tree created on the caller is remotely searched: one
// call performs ten root-to-leaf walks (repeating searches "to increase
// the effect of caching; nodes in the upper level will be reused"). The
// closure-size parameter is swept for trees of 16 383, 32 767 and 65 535
// nodes.
//
// Expected shape (paper): poor performance at tiny closures (too many
// transfers), a shallow optimum at a relatively small closure (4 K / 8 K /
// 16 K for the three sizes), then degradation as larger closures ship data
// the walks never touch ("as the number of nodes in the tree increases
// exponentially, the larger closure could not effectively carry the
// retrieved data").
#include <benchmark/benchmark.h>

#include <array>
#include <map>
#include <memory>
#include <string>

#include "harness.hpp"

namespace {

using srpc::bench::Measurement;
using srpc::bench::TreeExperiment;

// SRPC_BENCH_NODES=n scales the sweep to {~n/4, ~n/2, n} (smoke runs).
const std::array<std::uint32_t, 3>& tree_sizes() {
  static const std::array<std::uint32_t, 3> sizes = [] {
    const std::uint32_t n = srpc::bench::node_count_from_env(65535);
    if (n == 65535) return std::array<std::uint32_t, 3>{16383, 32767, 65535};
    return std::array<std::uint32_t, 3>{n / 4 + 1, n / 2 + 1, n};
  }();
  return sizes;
}
constexpr std::uint64_t kClosureSizes[] = {0,    256,   512,   1024,  2048,
                                           4096, 8192, 16384, 32768, 65536};
// Ten root-to-leaves searches per call: upper levels are cached and reused
// across the repeats (the paper's stated reason for repeating).
constexpr std::uint32_t kPaths = 10;
constexpr std::uint64_t kSeed = 424242;

// `shm` repeats the sweep over the zero-copy payload lane (PROTOCOL.md
// "Zero-copy payload lane"): closures and replies travel as arena views
// charged 20 descriptor bytes on the wire instead of their full size.
TreeExperiment& experiment(std::size_t size_index, bool shm = false) {
  static std::unique_ptr<TreeExperiment> cache[3][2];
  auto& slot = cache[size_index][shm ? 1 : 0];
  if (!slot) {
    slot = std::make_unique<TreeExperiment>(tree_sizes()[size_index], 8192, shm);
  }
  return *slot;
}

// Counters summed across the cached experiments (both lanes).
srpc::bench::RobustnessCounters robustness_total() {
  srpc::bench::RobustnessCounters r;
  for (std::size_t i = 0; i < 3; ++i) {
    r.merge(experiment(i, false).robustness());
    r.merge(experiment(i, true).robustness());
  }
  return r;
}

// closure -> per-tree-size seconds (legacy byte lane / shm lane)
std::map<std::uint64_t, std::map<std::uint32_t, double>>& rows() {
  static std::map<std::uint64_t, std::map<std::uint32_t, double>> r;
  return r;
}

std::map<std::uint64_t, std::map<std::uint32_t, double>>& rows_shm() {
  static std::map<std::uint64_t, std::map<std::uint32_t, double>> r;
  return r;
}

// closure -> {prefetch hits, prefetch misses} summed over the tree sizes:
// how much of each closure the callee's walks actually consumed.
std::map<std::uint64_t, std::array<double, 2>>& hit_miss() {
  static std::map<std::uint64_t, std::array<double, 2>> h;
  return h;
}

void BM_ClosureSweep(benchmark::State& state) {
  const auto size_index = static_cast<std::size_t>(state.range(0));
  const std::uint64_t closure = kClosureSizes[state.range(1)];
  const bool shm = state.range(2) != 0;
  TreeExperiment& exp = experiment(size_index, shm);
  exp.set_closure_bytes(closure);
  for (auto _ : state) {
    Measurement m = exp.run_paths(kPaths, kSeed);
    state.SetIterationTime(m.seconds);
    (shm ? rows_shm() : rows())[closure][exp.node_count()] = m.seconds;
    if (!shm) {
      // Prefetch effectiveness is lane-independent; count it once.
      hit_miss()[closure][0] += static_cast<double>(m.closure_hits);
      hit_miss()[closure][1] += static_cast<double>(m.closure_misses);
    }
    state.counters["fetches"] = static_cast<double>(m.fetches);
    state.counters["closure_hits"] = static_cast<double>(m.closure_hits);
    state.counters["closure_misses"] = static_cast<double>(m.closure_misses);
  }
}

BENCHMARK(BM_ClosureSweep)
    ->ArgsProduct({{0, 1, 2}, {0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, {0, 1}})
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  srpc::init_log_level_from_env();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();

  std::vector<std::vector<double>> table;
  for (const auto& [closure, by_size] : rows()) {
    std::vector<double> row{static_cast<double>(closure) / 1024.0};
    for (const std::uint32_t size : tree_sizes()) {
      auto it = by_size.find(size);
      row.push_back(it == by_size.end() ? 0.0 : it->second);
    }
    for (const std::uint32_t size : tree_sizes()) {
      const auto& by_size_shm = rows_shm()[closure];
      auto it = by_size_shm.find(size);
      row.push_back(it == by_size_shm.end() ? 0.0 : it->second);
    }
    row.push_back(hit_miss()[closure][0]);
    row.push_back(hit_miss()[closure][1]);
    table.push_back(row);
  }
  std::vector<std::string> columns{"closure_KiB"};
  for (const std::uint32_t size : tree_sizes()) {
    columns.push_back(std::to_string(size) + "_nodes");
  }
  for (const std::uint32_t size : tree_sizes()) {
    columns.push_back(std::to_string(size) + "_nodes_shm");
  }
  columns.push_back("closure_prefetch_hits");
  columns.push_back("closure_prefetch_misses");
  srpc::bench::print_table(
      "Figure 6: processing time (virtual s) vs closure size (KiB), 10 searches",
      columns, table);
  srpc::MetricsRegistry latency;
  for (std::size_t i = 0; i < 3; ++i) {
    latency.merge(experiment(i, false).latency());
    latency.merge(experiment(i, true).latency());
  }
  srpc::bench::write_bench_json("fig6_closure",
                                {{"paths", static_cast<double>(kPaths)}},
                                columns, table, robustness_total(), &latency);
  benchmark::Shutdown();
  return 0;
}
