// Micro-bench: the real cost of the MMU path on this host — SIGSEGV
// delivery, dispatch through the fault table, and the mprotect transitions
// — i.e. what the paper's SunOS/SPARC testbed paid per access violation
// (modelled as CostModel::per_fault_ns in the simulation). Plus the cost of
// the failure path itself: kill-and-restart cycles of a home space, timing
// the whole reincarnation (halt, log replay, REJOIN fan-out) and emitting
// recovery-time percentiles into BENCH_micro_fault.json.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstring>

#include "harness.hpp"
#include "common/logging.hpp"
#include "net/fault_transport.hpp"
#include "vm/fault_dispatcher.hpp"
#include "vm/page_arena.hpp"
#include "workload/list.hpp"

namespace {

using namespace srpc;

// Handler that just opens the page read-write.
class OpenOnFault final : public FaultHandler {
 public:
  explicit OpenOnFault(PageArena& arena) : arena_(arena) {}
  bool on_fault(void* addr, FaultAccess) override {
    const PageIndex page = arena_.page_of(addr);
    if (page == kInvalidPage) return false;
    return arena_.protect(page, PageProtection::kReadWrite).is_ok();
  }

 private:
  PageArena& arena_;
};

// Full cycle: protect page NONE -> read faults -> handler opens -> retry.
void BM_FaultRoundTrip(benchmark::State& state) {
  auto arena_or = PageArena::create(16, 4096);
  arena_or.status().check();
  PageArena arena = std::move(arena_or).value();
  OpenOnFault handler(arena);
  FaultDispatcher::instance()
      .register_range(arena.base(), arena.byte_size(), &handler)
      .check();

  volatile std::uint8_t sink = 0;
  std::size_t page = 0;
  for (auto _ : state) {
    arena.protect(static_cast<PageIndex>(page), PageProtection::kNone).check();
    sink += arena.page_base(static_cast<PageIndex>(page))[128];  // faults
    page = (page + 1) % arena.page_count();
  }
  benchmark::DoNotOptimize(sink);
  FaultDispatcher::instance().unregister_range(arena.base()).check();
  state.SetItemsProcessed(state.iterations());
}

// Write-upgrade: PROT_READ -> write fault -> PROT_READ|WRITE (the paper's
// "two page accesses" for an update).
void BM_WriteUpgradeFault(benchmark::State& state) {
  auto arena_or = PageArena::create(16, 4096);
  arena_or.status().check();
  PageArena arena = std::move(arena_or).value();
  OpenOnFault handler(arena);
  FaultDispatcher::instance()
      .register_range(arena.base(), arena.byte_size(), &handler)
      .check();

  std::size_t page = 0;
  for (auto _ : state) {
    arena.protect(static_cast<PageIndex>(page), PageProtection::kRead).check();
    arena.page_base(static_cast<PageIndex>(page))[64] = 1;  // write fault
    page = (page + 1) % arena.page_count();
  }
  FaultDispatcher::instance().unregister_range(arena.base()).check();
  state.SetItemsProcessed(state.iterations());
}

// Baseline: the mprotect pair alone, no signal.
void BM_MprotectPair(benchmark::State& state) {
  auto arena_or = PageArena::create(1, 4096);
  arena_or.status().check();
  PageArena arena = std::move(arena_or).value();
  for (auto _ : state) {
    arena.protect(0, PageProtection::kNone).check();
    arena.protect(0, PageProtection::kReadWrite).check();
  }
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_FaultRoundTrip);
BENCHMARK(BM_WriteUpgradeFault);
BENCHMARK(BM_MprotectPair);

// Kill-and-restart cycles: a ground space commits a mutation into a home,
// the home's process dies, World::restart_space brings its next incarnation
// up (join worker, replay RecoveryLog, announce REJOIN). The measured
// window is the whole restart — the recovery-time a client-visible outage
// lasts beyond failure detection. Real nanoseconds (steady_clock): replay
// is host compute, not simulated wire time.
void run_recovery_cycles() {
  using Clock = std::chrono::steady_clock;
  // SRPC_BENCH_NODES doubles as the cycle count here, capped: every cycle
  // is a full world round trip plus a restart.
  const std::uint32_t cycles =
      std::min<std::uint32_t>(bench::node_count_from_env(20), 50u);

  WorldOptions options;
  options.cost = CostModel::zero();
  options.cache.closure_bytes = 0;
  options.fault_injection = true;
  options.timeouts = TimeoutConfig::aggressive();
  options.recovery = true;
  options.checkpoint_interval = 8;  // a bounded replay tail per cycle
  World world(options);
  AddressSpace& ground = world.create_space("ground");
  AddressSpace& home = world.create_space("home");
  workload::register_list_type(world).status().check();

  workload::ListNode* head = nullptr;
  auto rebind = [&] {
    home.bind("head", [&head](CallContext&) -> workload::ListNode* { return head; })
        .check();
  };
  rebind();
  home.run([&](Runtime& rt) {
    auto built = workload::build_list(rt, 32, [](std::uint32_t i) {
      return static_cast<std::int64_t>(i);
    });
    built.status().check();
    head = built.value();
    rt.checkpoint_now();
  });

  MetricsRegistry latency;
  Histogram& restart_ns =
      latency.histogram("rpc.roundtrip_ns{kind=RECOVERY_RESTART}");
  for (std::uint32_t cycle = 0; cycle < cycles; ++cycle) {
    // One committed session per cycle so every incarnation replays fresh
    // WAL records, not just the checkpoint.
    ground.run([&](Runtime& rt) {
      Session session(rt);
      auto h = typed_call<workload::ListNode*>(rt, home.id(), "head");
      h.status().check();
      rt.prefetch(h.value(), 1 << 16).check();
      h.value()->value = static_cast<std::int64_t>(cycle);
      session.end().check();
    });
    world.fault()->crash_space(home.id());
    const auto start = Clock::now();
    world.restart_space(home.id()).check();
    const auto stop = Clock::now();
    restart_ns.record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start)
            .count()));
    rebind();
  }

  const std::uint64_t replayed = home.run(
      [](Runtime& rt) { return rt.stats().recovery_replays; });
  const std::uint64_t fenced = ground.run(
      [](Runtime& rt) { return rt.stats().fenced_stale_messages; });

  bench::RobustnessCounters robustness;
  robustness.add(ground.runtime().stats());
  robustness.add(home.run([](Runtime& rt) { return rt.stats(); }));

  const std::vector<std::string> columns = {
      "cycles", "restart_p50_ns", "restart_p95_ns", "restart_p99_ns",
      "restart_max_ns", "replayed_records", "fenced_stale"};
  const std::vector<std::vector<double>> rows = {
      {static_cast<double>(cycles), restart_ns.percentile(0.50),
       restart_ns.percentile(0.95), restart_ns.percentile(0.99),
       static_cast<double>(restart_ns.max()), static_cast<double>(replayed),
       static_cast<double>(fenced)}};
  bench::print_table("micro_fault: space reincarnation (real ns)", columns,
                     rows);
  bench::write_bench_json("micro_fault", {{"cycles", static_cast<double>(cycles)}},
                          columns, rows, robustness, &latency);
}

}  // namespace

int main(int argc, char** argv) {
  srpc::init_log_level_from_env();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  run_recovery_cycles();
  return 0;
}
