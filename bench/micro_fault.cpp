// Micro-bench: the real cost of the MMU path on this host — SIGSEGV
// delivery, dispatch through the fault table, and the mprotect transitions
// — i.e. what the paper's SunOS/SPARC testbed paid per access violation
// (modelled as CostModel::per_fault_ns in the simulation).
#include <benchmark/benchmark.h>

#include <cstring>

#include "common/logging.hpp"
#include "vm/fault_dispatcher.hpp"
#include "vm/page_arena.hpp"

namespace {

using namespace srpc;

// Handler that just opens the page read-write.
class OpenOnFault final : public FaultHandler {
 public:
  explicit OpenOnFault(PageArena& arena) : arena_(arena) {}
  bool on_fault(void* addr, FaultAccess) override {
    const PageIndex page = arena_.page_of(addr);
    if (page == kInvalidPage) return false;
    return arena_.protect(page, PageProtection::kReadWrite).is_ok();
  }

 private:
  PageArena& arena_;
};

// Full cycle: protect page NONE -> read faults -> handler opens -> retry.
void BM_FaultRoundTrip(benchmark::State& state) {
  auto arena_or = PageArena::create(16, 4096);
  arena_or.status().check();
  PageArena arena = std::move(arena_or).value();
  OpenOnFault handler(arena);
  FaultDispatcher::instance()
      .register_range(arena.base(), arena.byte_size(), &handler)
      .check();

  volatile std::uint8_t sink = 0;
  std::size_t page = 0;
  for (auto _ : state) {
    arena.protect(static_cast<PageIndex>(page), PageProtection::kNone).check();
    sink += arena.page_base(static_cast<PageIndex>(page))[128];  // faults
    page = (page + 1) % arena.page_count();
  }
  benchmark::DoNotOptimize(sink);
  FaultDispatcher::instance().unregister_range(arena.base()).check();
  state.SetItemsProcessed(state.iterations());
}

// Write-upgrade: PROT_READ -> write fault -> PROT_READ|WRITE (the paper's
// "two page accesses" for an update).
void BM_WriteUpgradeFault(benchmark::State& state) {
  auto arena_or = PageArena::create(16, 4096);
  arena_or.status().check();
  PageArena arena = std::move(arena_or).value();
  OpenOnFault handler(arena);
  FaultDispatcher::instance()
      .register_range(arena.base(), arena.byte_size(), &handler)
      .check();

  std::size_t page = 0;
  for (auto _ : state) {
    arena.protect(static_cast<PageIndex>(page), PageProtection::kRead).check();
    arena.page_base(static_cast<PageIndex>(page))[64] = 1;  // write fault
    page = (page + 1) % arena.page_count();
  }
  FaultDispatcher::instance().unregister_range(arena.base()).check();
  state.SetItemsProcessed(state.iterations());
}

// Baseline: the mprotect pair alone, no signal.
void BM_MprotectPair(benchmark::State& state) {
  auto arena_or = PageArena::create(1, 4096);
  arena_or.status().check();
  PageArena arena = std::move(arena_or).value();
  for (auto _ : state) {
    arena.protect(0, PageProtection::kNone).check();
    arena.protect(0, PageProtection::kReadWrite).check();
  }
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_FaultRoundTrip);
BENCHMARK(BM_WriteUpgradeFault);
BENCHMARK(BM_MprotectPair);

}  // namespace

int main(int argc, char** argv) {
  srpc::init_log_level_from_env();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
