// Ablation — closure traversal shape (paper §6).
//
// "Another issue is to develop an algorithm for optimizing the 'shape' of
// the subset of the transitive closure of a pointer ... Precise estimation
// of the shape would minimize the number of communications."
//
// The paper's implementation packs breadth-first; this bench compares that
// against depth-first packing under the root-to-leaf path workload, where
// shape matters most: a breadth-first ball covers both children of every
// prefetched node (half wasted on a path), while a depth-first chain bets
// everything on one spine (perfect when right, useless when wrong).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

#include "harness.hpp"

namespace {

using namespace srpc;
using srpc::bench::Measurement;
using srpc::bench::TreeExperiment;

constexpr std::uint32_t kPaths = 10;

std::uint32_t nodes() {
  static const std::uint32_t n = srpc::bench::node_count_from_env(32767);
  return n;
}

struct Outcome {
  double order = 0;  // 0 = breadth-first, 1 = depth-first
  double seed = 0;
  double seconds = 0;
  double fetches = 0;
  double wire_kb = 0;
};

std::map<std::string, Outcome>& outcomes() {
  static std::map<std::string, Outcome> o;
  return o;
}

// Each data point builds (and tears down) its own world, so the
// robustness counters are folded into a running total as we go.
srpc::bench::RobustnessCounters& robustness_total() {
  static srpc::bench::RobustnessCounters r;
  return r;
}

// Same deal for the roundtrip-latency histograms feeding "latency_ns".
srpc::MetricsRegistry& latency_total() {
  static srpc::MetricsRegistry m;
  return m;
}

Outcome run_order(TraversalOrder order, std::uint64_t seed) {
  TreeExperiment experiment(nodes(), /*closure_bytes=*/8192);
  // The order knob matters on the space that PACKS closures: the home
  // (caller) serving fetches.
  experiment.world().space(0).run([&](Runtime& rt) {
    rt.set_closure_order(order);
    return 0;
  });
  Measurement m = experiment.run_paths(kPaths, seed);
  robustness_total().merge(experiment.robustness());
  latency_total().merge(experiment.latency());
  return Outcome{order == TraversalOrder::kDepthFirst ? 1.0 : 0.0,
                 static_cast<double>(seed), m.seconds,
                 static_cast<double>(m.fetches),
                 static_cast<double>(m.wire_bytes) / 1024.0};
}

void BM_BreadthFirst(benchmark::State& state) {
  for (auto _ : state) {
    Outcome out = run_order(TraversalOrder::kBreadthFirst, 7 + state.range(0));
    state.SetIterationTime(out.seconds);
    state.counters["fetches"] = out.fetches;
    outcomes()["breadth_first_" + std::to_string(state.range(0))] = out;
  }
}

void BM_DepthFirst(benchmark::State& state) {
  for (auto _ : state) {
    Outcome out = run_order(TraversalOrder::kDepthFirst, 7 + state.range(0));
    state.SetIterationTime(out.seconds);
    state.counters["fetches"] = out.fetches;
    outcomes()["depth_first_" + std::to_string(state.range(0))] = out;
  }
}

BENCHMARK(BM_BreadthFirst)->DenseRange(0, 2)->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DepthFirst)->DenseRange(0, 2)->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  srpc::init_log_level_from_env();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();

  std::printf("\n=== Ablation: closure traversal shape (paper §6) ===\n");
  std::printf("%24s %12s %10s %12s\n", "order/seed", "virtual_s", "fetches", "wire_KiB");
  std::vector<std::vector<double>> table;
  for (const auto& [name, out] : outcomes()) {
    std::printf("%24s %12.3f %10.0f %12.1f\n", name.c_str(), out.seconds, out.fetches,
                out.wire_kb);
    table.push_back({out.order, out.seed, out.seconds, out.fetches, out.wire_kb});
  }
  std::fflush(stdout);
  srpc::bench::write_bench_json(
      "ablation_closure_shape",
      {{"nodes", static_cast<double>(nodes())},
       {"paths", static_cast<double>(kPaths)}},
      {"order_depth_first", "seed", "virtual_s", "fetches", "wire_KiB"}, table,
      robustness_total(), &latency_total());
  benchmark::Shutdown();
  return 0;
}
