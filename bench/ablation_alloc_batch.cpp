// Ablation — batched vs immediate remote memory management (paper §3.5).
//
// "One straightforward timing for allocation and release of the data in the
// original space is upon each issuing of the allocate and release
// primitives. However, this would degrade the runtime performance terribly,
// considering that remote allocation and release of hundreds of data sets
// may be requested consecutively."
//
// The bench builds a remote list of N nodes with extended_malloc, either
// letting the runtime batch the home-side allocations until control
// transfers (the paper's design) or forcing a flush after every primitive
// (the straw-man timing).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

#include "core/smart_rpc.hpp"
#include "harness.hpp"
#include "workload/list.hpp"

namespace {

using namespace srpc;
using workload::ListNode;

constexpr std::uint32_t kAllocations = 200;

struct Outcome {
  double seconds = 0;
  double messages = 0;
};

std::map<std::string, Outcome>& outcomes() {
  static std::map<std::string, Outcome> o;
  return o;
}

// Each data point builds its own world; fold its robustness counters into
// a running total before it is torn down.
srpc::bench::RobustnessCounters& robustness_total() {
  static srpc::bench::RobustnessCounters r;
  return r;
}

// Same deal for the roundtrip-latency histograms feeding "latency_ns".
srpc::MetricsRegistry& latency_total() {
  static srpc::MetricsRegistry m;
  return m;
}

Outcome build_remote_list(bool flush_each) {
  WorldOptions options;
  options.cost = CostModel::sparc_ethernet();
  World world(options);
  AddressSpace& creator = world.create_space("creator");
  AddressSpace& home = world.create_space("home");
  workload::register_list_type(world).status().check();

  home.bind("sum",
            [](CallContext&, ListNode* head) -> std::int64_t {
              return workload::sum_list(head);
            })
      .check();

  return creator.run([&](Runtime& rt) -> Outcome {
    world.reset_metering();
    Session session(rt);
    ListNode* head = nullptr;
    ListNode* tail = nullptr;
    for (std::uint32_t i = 0; i < kAllocations; ++i) {
      auto node = session.extended_malloc<ListNode>(home.id());
      node.status().check();
      node.value()->value = i;
      if (tail == nullptr) {
        head = node.value();
      } else {
        tail->next = node.value();
      }
      tail = node.value();
      if (flush_each) {
        rt.flush_pending_memory_ops().check();
      }
    }
    auto sum = session.call<std::int64_t>(home.id(), "sum", head);
    sum.status().check();
    Outcome out;
    out.seconds = world.virtual_seconds();
    out.messages = static_cast<double>(world.net_stats().messages);
    session.end().check();
    robustness_total().add(rt.stats());
    robustness_total().add(home.run([](Runtime& h) { return h.stats(); }));
    latency_total().merge(rt.metrics());
    latency_total().merge(
        home.run([](Runtime& h) -> MetricsRegistry { return h.metrics(); }));
    return out;
  });
}

void BM_Batched(benchmark::State& state) {
  for (auto _ : state) {
    Outcome out = build_remote_list(/*flush_each=*/false);
    state.SetIterationTime(out.seconds);
    state.counters["messages"] = out.messages;
    outcomes()["batched"] = out;
  }
}

void BM_ImmediatePerPrimitive(benchmark::State& state) {
  for (auto _ : state) {
    Outcome out = build_remote_list(/*flush_each=*/true);
    state.SetIterationTime(out.seconds);
    state.counters["messages"] = out.messages;
    outcomes()["immediate"] = out;
  }
}

BENCHMARK(BM_Batched)->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ImmediatePerPrimitive)->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  srpc::init_log_level_from_env();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();

  std::printf("\n=== Ablation: remote allocation batching (paper §3.5), %u allocs ===\n",
              kAllocations);
  std::printf("%12s %14s %12s\n", "timing", "virtual_s", "messages");
  std::vector<std::vector<double>> table;
  for (const auto& [name, out] : outcomes()) {
    std::printf("%12s %14.3f %12.0f\n", name.c_str(), out.seconds, out.messages);
    table.push_back({name == "immediate" ? 1.0 : 0.0, out.seconds, out.messages});
  }
  std::fflush(stdout);
  srpc::bench::write_bench_json(
      "ablation_alloc_batch",
      {{"allocations", static_cast<double>(kAllocations)}},
      {"flush_each", "virtual_s", "messages"}, table, robustness_total(),
      &latency_total());
  benchmark::Shutdown();
  return 0;
}
