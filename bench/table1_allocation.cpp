// Table 1 — the data allocation table after swizzling two pointers.
//
// Reproduces the paper's Fig. 2 / Table 1 scenario: two pointers A and B
// are passed from the caller to the callee; the callee allocates locations
// for both on one protected page and records (page #, offset, long
// pointer) in its data allocation table. The table is printed in the
// paper's format, and the micro-benchmarks below price the swizzling
// operations themselves.
#include <benchmark/benchmark.h>

#include <cinttypes>
#include <cstdio>
#include <vector>

#include "core/smart_rpc.hpp"
#include "harness.hpp"
#include "workload/list.hpp"

namespace {

using srpc::AddressSpace;
using srpc::CallContext;
using srpc::CostModel;
using srpc::Runtime;
using srpc::Session;
using srpc::World;
using srpc::WorldOptions;
using srpc::workload::ListNode;

void print_paper_table() {
  WorldOptions options;
  options.cost = CostModel::zero();
  World world(options);
  AddressSpace& caller = world.create_space("caller");
  AddressSpace& callee = world.create_space("callee");
  srpc::workload::register_list_type(world).status().check();

  // The callee receives two pointers; swizzling assigns each a protected
  // location but transfers nothing until access (we never dereference, so
  // the page stays in its "no data yet" state — exactly Fig. 2).
  callee
      .bind("take_two",
            [](CallContext&, ListNode* a, ListNode* b) -> std::int32_t {
              return (a != nullptr ? 1 : 0) + (b != nullptr ? 2 : 0);
            })
      .check();

  caller.run([&](Runtime& rt) {
    auto a = rt.heap().allocate(rt.host_types().find<ListNode>().value());
    auto b = rt.heap().allocate(rt.host_types().find<ListNode>().value());
    a.status().check();
    b.status().check();
    rt.cache().set_closure_bytes(0).check();  // pure swizzling, no eager data

    Session session(rt);
    auto tag = session.call<std::int32_t>(callee.id(), "take_two",
                                          static_cast<ListNode*>(a.value()),
                                          static_cast<ListNode*>(b.value()));
    tag.status().check();

    // Print the callee's data allocation table (the paper's Table 1).
    std::vector<std::vector<double>> rows;
    callee.run([&](Runtime& callee_rt) {
      std::printf("\n=== Table 1: the callee's data allocation table ===\n");
      std::printf("%8s %18s   %s\n", "page #", "offset within page", "long pointer");
      const auto& table = callee_rt.cache().table();
      for (std::uint32_t page = 0; page < 8; ++page) {
        for (const auto* entry : table.entries_on_page(page)) {
          std::printf("%8u %18u   %s (state: %s)\n", entry->page, entry->offset,
                      entry->pointer.to_string().c_str(),
                      std::string(to_string(callee_rt.cache().page_state(entry->page)))
                          .c_str());
          rows.push_back({static_cast<double>(entry->page),
                          static_cast<double>(entry->offset)});
        }
      }
      std::fflush(stdout);
      return 0;
    });
    session.end().check();

    srpc::bench::RobustnessCounters robust;
    robust.add(rt.stats());
    robust.add(callee.run([](Runtime& c) { return c.stats(); }));
    srpc::MetricsRegistry latency;
    latency.merge(rt.metrics());
    latency.merge(callee.run(
        [](Runtime& c) -> srpc::MetricsRegistry { return c.metrics(); }));
    srpc::bench::write_bench_json(
        "table1_allocation", {{"pointers_passed", 2}},
        {"page", "offset"}, rows, robust, &latency);
    return 0;
  });
}

void BM_SwizzleMiss(benchmark::State& state) {
  // Swizzling a never-seen long pointer: allocate a protected location and
  // insert into the data allocation table.
  WorldOptions options;
  options.cost = CostModel::zero();
  options.cache.page_count = 1 << 16;
  World world(options);
  AddressSpace& space = world.create_space("s0");
  world.create_space("s1");
  srpc::workload::register_list_type(world).status().check();
  const srpc::TypeId node = world.registry().find_by_name("ListNode").value();

  std::uint64_t addr = 0x100000;
  space.run([&](Runtime& rt) {
    for (auto _ : state) {
      auto local = rt.cache().swizzle({1, addr, node}, node);
      benchmark::DoNotOptimize(local);
      addr += 64;
    }
    return 0;
  });
  state.SetItemsProcessed(state.iterations());
}

void BM_SwizzleHit(benchmark::State& state) {
  // Swizzling a pointer already in the table: pure lookup.
  WorldOptions options;
  options.cost = CostModel::zero();
  World world(options);
  AddressSpace& space = world.create_space("s0");
  world.create_space("s1");
  srpc::workload::register_list_type(world).status().check();
  const srpc::TypeId node = world.registry().find_by_name("ListNode").value();

  space.run([&](Runtime& rt) {
    rt.cache().swizzle({1, 0x100000, node}, node).status().check();
    for (auto _ : state) {
      auto local = rt.cache().swizzle({1, 0x100000, node}, node);
      benchmark::DoNotOptimize(local);
    }
    return 0;
  });
  state.SetItemsProcessed(state.iterations());
}

void BM_Unswizzle(benchmark::State& state) {
  WorldOptions options;
  options.cost = CostModel::zero();
  World world(options);
  AddressSpace& space = world.create_space("s0");
  world.create_space("s1");
  srpc::workload::register_list_type(world).status().check();
  const srpc::TypeId node = world.registry().find_by_name("ListNode").value();

  space.run([&](Runtime& rt) {
    auto local = rt.cache().swizzle({1, 0x100000, node}, node);
    local.status().check();
    const void* p = reinterpret_cast<const void*>(local.value());
    for (auto _ : state) {
      auto lp = rt.cache().unswizzle(p);
      benchmark::DoNotOptimize(lp);
    }
    return 0;
  });
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_SwizzleMiss);
BENCHMARK(BM_SwizzleHit);
BENCHMARK(BM_Unswizzle);

}  // namespace

int main(int argc, char** argv) {
  srpc::init_log_level_from_env();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  print_paper_table();
  benchmark::Shutdown();
  return 0;
}
