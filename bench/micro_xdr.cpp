// Micro-bench: XDR encode/decode throughput — the heterogeneity-conversion
// cost the paper's measurements include on every transfer (and which the
// cost model prices per byte on the simulated 28.5 MIPS CPU; this bench
// reports what it costs on the real host).
#include <benchmark/benchmark.h>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "types/type_registry.hpp"
#include "types/value_codec.hpp"
#include "workload/tree.hpp"
#include "xdr/xdr_decoder.hpp"
#include "xdr/xdr_encoder.hpp"

namespace {

using namespace srpc;

void BM_EncodeU32(benchmark::State& state) {
  ByteBuffer buf;
  xdr::Encoder enc(buf);
  for (auto _ : state) {
    if (buf.size() > (1 << 20)) buf.clear();
    enc.put_u32(0xDEADBEEF);
  }
  state.SetBytesProcessed(state.iterations() * 4);
}

void BM_DecodeU32(benchmark::State& state) {
  ByteBuffer buf;
  xdr::Encoder enc(buf);
  for (int i = 0; i < 1 << 16; ++i) enc.put_u32(static_cast<std::uint32_t>(i));
  xdr::Decoder dec(buf);
  for (auto _ : state) {
    if (buf.remaining() < 4) buf.reset_cursor();
    benchmark::DoNotOptimize(dec.get_u32());
  }
  state.SetBytesProcessed(state.iterations() * 4);
}

void BM_EncodeString(benchmark::State& state) {
  const std::string payload(static_cast<std::size_t>(state.range(0)), 'x');
  ByteBuffer buf;
  xdr::Encoder enc(buf);
  for (auto _ : state) {
    if (buf.size() > (1 << 22)) buf.clear();
    enc.put_string(payload);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}

// Struct-level codec: one tree node (the paper's transfer unit) through
// canonical form and back.
void BM_NodeCodecRoundTrip(benchmark::State& state) {
  TypeRegistry registry;
  LayoutEngine layouts(registry);
  ValueCodec codec{registry, layouts};
  auto node = registry.declare_struct("N");
  node.status().check();
  const TypeId ptr = registry.pointer_to(node.value());
  registry
      .define_struct(node.value(),
                     {{"left", ptr},
                      {"right", ptr},
                      {"data", TypeRegistry::scalar_id(ScalarType::kI64)}})
      .check();

  struct N {
    N* left;
    N* right;
    std::int64_t data;
  };
  N in{nullptr, nullptr, 12345};
  N out{};
  NullOnlyFieldCodec null_pointers;  // pointers are null: pure scalar cost
  ByteBuffer wire;
  for (auto _ : state) {
    wire.clear();
    xdr::Encoder enc(wire);
    codec.encode(host_arch(), node.value(), &in, enc, null_pointers).check();
    xdr::Decoder dec(wire);
    codec.decode(host_arch(), node.value(), &out, dec, null_pointers).check();
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}

// Cross-architecture decode: canonical -> big-endian 32-bit image.
void BM_NodeDecodeToSparc32(benchmark::State& state) {
  TypeRegistry registry;
  LayoutEngine layouts(registry);
  ValueCodec codec{registry, layouts};
  auto node = registry.declare_struct("N");
  node.status().check();
  registry
      .define_struct(node.value(),
                     {{"a", TypeRegistry::scalar_id(ScalarType::kI64)},
                      {"b", TypeRegistry::scalar_id(ScalarType::kI32)},
                      {"c", TypeRegistry::scalar_id(ScalarType::kF64)}})
      .check();
  struct N {
    std::int64_t a;
    std::int32_t b;
    double c;
  };
  N in{1, 2, 3.0};
  NullOnlyFieldCodec null_pointers;
  ByteBuffer wire;
  {
    xdr::Encoder enc(wire);
    codec.encode(host_arch(), node.value(), &in, enc, null_pointers).check();
  }
  std::vector<std::uint8_t> image(layouts.size_of(sparc32_arch(), node.value()));
  for (auto _ : state) {
    wire.reset_cursor();
    xdr::Decoder dec(wire);
    codec.decode(sparc32_arch(), node.value(), image.data(), dec, null_pointers)
        .check();
    benchmark::DoNotOptimize(image.data());
  }
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_EncodeU32);
BENCHMARK(BM_DecodeU32);
BENCHMARK(BM_EncodeString)->Arg(16)->Arg(256)->Arg(4096);
BENCHMARK(BM_NodeCodecRoundTrip);
BENCHMARK(BM_NodeDecodeToSparc32);

}  // namespace

int main(int argc, char** argv) {
  srpc::init_log_level_from_env();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
