// Ablation — cache allocation strategy (paper §6).
//
// "The current implementation uses a heuristic allocation strategy, with
// which all the data in a page is located in a single address space. ...
// The worst situation is that all the data in the page are located at
// different computing sites."
//
// Setup: two home spaces each own a linked list; a third space walks both
// lists interleaved. Under kClusterByOrigin each faulted page talks to one
// home; under kMixed the entries interleave on shared pages and every
// fault fans out to both homes. Closure size 0 isolates the page-grain
// effect.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

#include "core/smart_rpc.hpp"
#include "harness.hpp"
#include "workload/list.hpp"

namespace {

using namespace srpc;
using workload::ListNode;

struct Outcome {
  double strategy = 0;  // 0 = cluster-by-origin, 1 = mixed
  double closure = 0;
  double seconds = 0;
  double fetches = 0;
  double faults = 0;  // walker-side access violations (page fills)
};

std::map<std::string, Outcome>& outcomes() {
  static std::map<std::string, Outcome> o;
  return o;
}

// Each data point builds its own world; fold its robustness counters into
// a running total before it is torn down.
srpc::bench::RobustnessCounters& robustness_total() {
  static srpc::bench::RobustnessCounters r;
  return r;
}

// Same deal for the roundtrip-latency histograms feeding "latency_ns".
srpc::MetricsRegistry& latency_total() {
  static srpc::MetricsRegistry m;
  return m;
}

Outcome run_strategy(AllocationStrategy strategy, std::uint64_t closure_bytes) {
  WorldOptions options;
  options.cost = CostModel::sparc_ethernet();
  options.cache.strategy = strategy;
  options.cache.closure_bytes = closure_bytes;
  World world(options);
  AddressSpace& home_a = world.create_space("home_a");
  AddressSpace& home_b = world.create_space("home_b");
  AddressSpace& walker = world.create_space("walker");
  workload::register_list_type(world).status().check();

  constexpr std::uint32_t kLength = 512;
  ListNode* head_b_raw = home_b.run([&](Runtime& rt) {
    auto head = workload::build_list(rt, kLength, [](std::uint32_t i) {
      return static_cast<std::int64_t>(i) * 2 + 1;
    });
    head.status().check();
    return head.value();
  });

  home_b.bind("give_head", [head_b_raw](CallContext&, std::int32_t) -> ListNode* {
        return head_b_raw;
      })
      .check();
  walker
      .bind("walk_two",
            [](CallContext&, ListNode* a, ListNode* b) -> std::int64_t {
              std::int64_t sum = 0;
              while (a != nullptr || b != nullptr) {
                if (a != nullptr) {
                  sum += a->value;
                  a = a->next;
                }
                if (b != nullptr) {
                  sum += b->value;
                  b = b->next;
                }
              }
              return sum;
            })
      .check();

  return home_a.run([&](Runtime& rt) -> Outcome {
    auto head_a = workload::build_list(rt, kLength, [](std::uint32_t i) {
      return static_cast<std::int64_t>(i) * 2;
    });
    head_a.status().check();

    Session session(rt);
    // Pass-through: obtain a remote pointer to B's list, then hand both
    // heads to the walker in one call.
    auto head_b = session.call<ListNode*>(home_b.id(), "give_head", 0);
    head_b.status().check();

    world.reset_metering();
    auto sum = session.call<std::int64_t>(walker.id(), "walk_two",
                                          head_a.value(), head_b.value());
    sum.status().check();
    Outcome out;
    out.seconds = world.virtual_seconds();
    out.fetches = static_cast<double>(world.net_stats().count(MessageType::kFetch));
    out.faults = static_cast<double>(walker.run([](Runtime& walker_rt) {
      return walker_rt.cache().stats().read_faults;
    }));
    session.end().check();
    robustness_total().add(rt.stats());
    robustness_total().add(walker.run([](Runtime& w) { return w.stats(); }));
    latency_total().merge(rt.metrics());
    latency_total().merge(
        walker.run([](Runtime& w) -> MetricsRegistry { return w.metrics(); }));
    return out;
  });
}

void BM_ClusterByOrigin(benchmark::State& state) {
  const auto closure = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    Outcome out = run_strategy(AllocationStrategy::kClusterByOrigin, closure);
    out.strategy = 0;
    out.closure = static_cast<double>(closure);
    state.SetIterationTime(out.seconds);
    state.counters["fetches"] = out.fetches;
    outcomes()["cluster/closure=" + std::to_string(closure)] = out;
  }
}

void BM_MixedOrigins(benchmark::State& state) {
  const auto closure = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    Outcome out = run_strategy(AllocationStrategy::kMixed, closure);
    out.strategy = 1;
    out.closure = static_cast<double>(closure);
    state.SetIterationTime(out.seconds);
    state.counters["fetches"] = out.fetches;
    outcomes()["mixed/closure=" + std::to_string(closure)] = out;
  }
}

BENCHMARK(BM_ClusterByOrigin)->Arg(0)->Arg(4096)->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MixedOrigins)->Arg(0)->Arg(4096)->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  srpc::init_log_level_from_env();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();

  std::printf("\n=== Ablation: cache allocation strategy (paper §6) ===\n");
  std::printf("%24s %14s %14s %14s\n", "strategy", "virtual_s", "fetches", "faults");
  std::vector<std::vector<double>> table;
  for (const auto& [name, out] : outcomes()) {
    std::printf("%24s %14.3f %14.0f %14.0f\n", name.c_str(), out.seconds, out.fetches, out.faults);
    table.push_back({out.strategy, out.closure, out.seconds, out.fetches, out.faults});
  }
  std::fflush(stdout);
  srpc::bench::write_bench_json(
      "ablation_alloc", {{"list_length", 512}},
      {"strategy_mixed", "closure_bytes", "virtual_s", "fetches", "faults"},
      table, robustness_total(), &latency_total());
  benchmark::Shutdown();
  return 0;
}
