// Figure 5 — "Comparison between the Lazy Method and the Proposed Method".
//
// X-axis: (number of nodes accessed in the callee)/(total number of nodes);
// Y-axis: number of callbacks — one DEREF round trip per pointer
// dereference for the fully-lazy method, versus the proposed method's
// page-fault-driven FETCH round trips.
//
// Expected shape (paper): lazy callbacks grow linearly to the node count
// (~32 k at ratio 1.0); the proposed method needs orders of magnitude
// fewer transfers because each fault carries a whole page plus its 8 KB
// closure.
#include <benchmark/benchmark.h>

#include <array>
#include <map>

#include "harness.hpp"

namespace {

using srpc::bench::Measurement;
using srpc::bench::TreeExperiment;

constexpr std::uint64_t kClosureBytes = 8192;
constexpr std::uint64_t kSparseStride = 16;

std::uint32_t nodes() {
  static const std::uint32_t n = srpc::bench::node_count_from_env(32767);
  return n;
}

TreeExperiment& experiment() {
  static TreeExperiment e(nodes(), kClosureBytes);
  return e;
}

std::map<int, std::array<double, 2>>& rows() {
  static std::map<int, std::array<double, 2>> r;
  return r;
}

// {delta modified bytes, full modified bytes} for the sparse update.
std::array<double, 2>& sparse_bytes() {
  static std::array<double, 2> b{};
  return b;
}

std::uint64_t limit_for(int tenth) {
  return nodes() * static_cast<std::uint64_t>(tenth) / 10;
}

void BM_LazyCallbacks(benchmark::State& state) {
  const auto tenth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Measurement m = experiment().run_lazy(limit_for(tenth));
    state.SetIterationTime(m.seconds);
    rows()[tenth][0] = static_cast<double>(m.callbacks);
    state.counters["callbacks"] = static_cast<double>(m.callbacks);
  }
}

void BM_ProposedFetches(benchmark::State& state) {
  const auto tenth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Measurement m = experiment().run_proposed(limit_for(tenth));
    state.SetIterationTime(m.seconds);
    rows()[tenth][1] = static_cast<double>(m.fetches);
    state.counters["fetches"] = static_cast<double>(m.fetches);
  }
}

// The travelling modified set rides the same RETURN path the callbacks
// contend with; measure its wire footprint for a sparse update with the
// delta encoding on and off.
void BM_SparseUpdateBytes(benchmark::State& state) {
  const bool deltas = state.range(0) != 0;
  experiment().set_modified_deltas(deltas);
  for (auto _ : state) {
    Measurement m = experiment().run_sparse_update(nodes(), kSparseStride);
    state.SetIterationTime(m.seconds);
    sparse_bytes()[deltas ? 0 : 1] = static_cast<double>(m.modified_bytes);
    state.counters["modified_bytes"] = static_cast<double>(m.modified_bytes);
  }
  experiment().set_modified_deltas(true);
}

BENCHMARK(BM_LazyCallbacks)->DenseRange(0, 10)->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ProposedFetches)->DenseRange(0, 10)->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SparseUpdateBytes)->Arg(1)->Arg(0)->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  srpc::init_log_level_from_env();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();

  std::vector<std::vector<double>> table;
  for (const auto& [tenth, counts] : rows()) {
    table.push_back({tenth / 10.0, counts[0], counts[1]});
  }
  srpc::bench::print_table(
      "Figure 5: remote transfer requests vs access ratio",
      {"access_ratio", "lazy_callbacks", "proposed_fetches"}, table);
  const double delta = sparse_bytes()[0];
  const double full = sparse_bytes()[1];
  srpc::bench::print_table(
      "Figure 5b: sparse-update modified-set wire bytes (stride 16)",
      {"delta_bytes", "full_bytes", "delta/full"},
      {{delta, full, full > 0 ? delta / full : 0.0}});
  srpc::bench::write_bench_json(
      "fig5_callbacks",
      {{"nodes", static_cast<double>(nodes())},
       {"closure_bytes", static_cast<double>(kClosureBytes)},
       {"sparse_stride", static_cast<double>(kSparseStride)},
       {"sparse_modified_bytes_delta", delta},
       {"sparse_modified_bytes_full", full},
       {"sparse_delta_over_full", full > 0 ? delta / full : 0.0}},
      {"access_ratio", "lazy_callbacks", "proposed_fetches"}, table,
      experiment().robustness(), &experiment().latency());
  benchmark::Shutdown();
  return 0;
}
