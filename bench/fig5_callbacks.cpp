// Figure 5 — "Comparison between the Lazy Method and the Proposed Method".
//
// X-axis: (number of nodes accessed in the callee)/(total number of nodes);
// Y-axis: number of callbacks — one DEREF round trip per pointer
// dereference for the fully-lazy method, versus the proposed method's
// page-fault-driven FETCH round trips.
//
// Expected shape (paper): lazy callbacks grow linearly to the node count
// (~32 k at ratio 1.0); the proposed method needs orders of magnitude
// fewer transfers because each fault carries a whole page plus its 8 KB
// closure.
#include <benchmark/benchmark.h>

#include <array>
#include <map>

#include "harness.hpp"

namespace {

using srpc::bench::Measurement;
using srpc::bench::TreeExperiment;

constexpr std::uint32_t kNodes = 32767;
constexpr std::uint64_t kClosureBytes = 8192;

TreeExperiment& experiment() {
  static TreeExperiment e(kNodes, kClosureBytes);
  return e;
}

std::map<int, std::array<double, 2>>& rows() {
  static std::map<int, std::array<double, 2>> r;
  return r;
}

std::uint64_t limit_for(int tenth) { return kNodes * static_cast<std::uint64_t>(tenth) / 10; }

void BM_LazyCallbacks(benchmark::State& state) {
  const auto tenth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Measurement m = experiment().run_lazy(limit_for(tenth));
    state.SetIterationTime(m.seconds);
    rows()[tenth][0] = static_cast<double>(m.callbacks);
    state.counters["callbacks"] = static_cast<double>(m.callbacks);
  }
}

void BM_ProposedFetches(benchmark::State& state) {
  const auto tenth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Measurement m = experiment().run_proposed(limit_for(tenth));
    state.SetIterationTime(m.seconds);
    rows()[tenth][1] = static_cast<double>(m.fetches);
    state.counters["fetches"] = static_cast<double>(m.fetches);
  }
}

BENCHMARK(BM_LazyCallbacks)->DenseRange(0, 10)->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ProposedFetches)->DenseRange(0, 10)->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();

  std::vector<std::vector<double>> table;
  for (const auto& [tenth, counts] : rows()) {
    table.push_back({tenth / 10.0, counts[0], counts[1]});
  }
  srpc::bench::print_table(
      "Figure 5: remote transfer requests vs access ratio, 32767 nodes",
      {"access_ratio", "lazy_callbacks", "proposed_fetches"}, table);
  benchmark::Shutdown();
  return 0;
}
