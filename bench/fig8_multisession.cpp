// Figure 8 — "Multi-session throughput under home-side arbitration".
//
// Beyond the paper: the concurrent multi-session runtime (PROTOCOL.md
// "Concurrent sessions & arbitration"). N ground spaces each run a stream
// of sessions against one home; every session fetches a list head, spends
// a fixed client-side think time with the session open, increments the
// head value, and commits. Aggregate committed-sessions/sec and the p95
// session-commit latency are wall-clock (std::chrono) — the point of the
// figure is real overlap, not virtual-clock accounting.
//
// Two contention regimes per session count:
//  * low  — ground g owns list g: disjoint footprints, zero conflicts
//           expected, throughput should scale with the session count until
//           the home worker saturates (the acceptance bar is >= 3x going
//           from 1 to 8 sessions).
//  * high — every ground increments list 0: the wound-wait arbiter picks
//           one winner per object generation, losers see WB_CONFLICT,
//           abort, back off, and retry under a fresh session.
//
// Every row ends with a coherency verification: the home-side head value
// must equal the initial value plus the number of commits the benchmark
// counted against that list — `violations` is the absolute difference
// summed over lists and MUST be zero (a nonzero value means a lost or
// phantom update slipped past the arbiter).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "core/smart_rpc.hpp"
#include "harness.hpp"
#include "workload/list.hpp"

namespace {

using srpc::AddressSpace;
using srpc::CostModel;
using srpc::Runtime;
using srpc::Status;
using srpc::StatusCode;
using srpc::World;
using srpc::WorldOptions;
using srpc::workload::ListNode;

constexpr std::uint32_t kSessionCounts[] = {1, 2, 4, 8, 16, 32};
constexpr std::uint32_t kMaxSessions = 32;
constexpr std::int64_t kInitialValue = 1000;
// Client-side compute per session, spent with the session open (between
// the fetch and the commit). This is what makes aggregate throughput a
// concurrency measurement: one ground is think-time bound, many grounds
// overlap their think times until the home worker is the bottleneck.
constexpr std::chrono::microseconds kThinkTime{2000};
// Retry budget per logical operation. Wound-wait orders sessions by id and
// a retry gets a fresh (younger) id, so under a sustained stampede the
// youngest spaces only drain once older grounds finish their quota — the
// cap just has to outlast that, it is not expected to be reached.
constexpr std::uint32_t kMaxAttempts = 512;

// SRPC_BENCH_NODES scales the per-ground session count (the smoke ctest
// entry runs at 511 => 2 commits per ground).
std::uint32_t commits_per_ground() {
  static const std::uint32_t c =
      std::max<std::uint32_t>(2, srpc::bench::node_count_from_env(4096) / 256);
  return c;
}

double percentile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(q * static_cast<double>(v.size() - 1));
  return v[idx];
}

struct PointResult {
  std::uint64_t committed = 0;
  double elapsed_s = 0;
  double p95_commit_ms = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t wounds = 0;
  std::uint64_t failed = 0;      // operations that exhausted the retry budget
  std::uint64_t violations = 0;  // coherency check: lost or phantom updates
};

// One fresh world per data point so arbitration state, caches, and version
// counters never leak between rows.
PointResult run_point(std::uint32_t sessions, bool high_contention,
                      srpc::bench::RobustnessCounters& robustness) {
  WorldOptions options;
  options.cost = CostModel::zero();
  options.cache.closure_bytes = 0;  // every remote read is a FETCH
  options.multi_session = true;
  World world(options);
  AddressSpace& home = world.create_space("home");
  std::vector<AddressSpace*> grounds;
  grounds.reserve(sessions);
  for (std::uint32_t g = 0; g < sessions; ++g) {
    grounds.push_back(&world.create_space("g" + std::to_string(g + 1)));
  }
  srpc::workload::register_list_type(world).status().check();

  std::vector<ListNode*> heads(kMaxSessions, nullptr);
  home.bind("list", [&heads](srpc::CallContext&, std::int64_t which) -> ListNode* {
        return heads[static_cast<std::size_t>(which)];
      })
      .check();
  home.run([&heads](Runtime& rt) {
    for (std::uint32_t w = 0; w < kMaxSessions; ++w) {
      auto head = srpc::workload::build_list(
          rt, 3, [](std::uint32_t i) { return kInitialValue + i; });
      head.status().check();
      heads[w] = head.value();
    }
  });

  std::mutex agg_mu;
  std::vector<double> commit_ms;
  std::uint64_t committed = 0;
  std::uint64_t failed = 0;
  std::vector<std::uint64_t> commits_per_list(kMaxSessions, 0);

  std::vector<std::pair<AddressSpace*, World::GroundFn>> jobs;
  jobs.reserve(sessions);
  for (std::uint32_t g = 0; g < sessions; ++g) {
    const std::int64_t which = high_contention ? 0 : static_cast<std::int64_t>(g);
    jobs.emplace_back(grounds[g], [&, which](Runtime& rt) {
      for (std::uint32_t c = 0; c < commits_per_ground(); ++c) {
        bool done = false;
        for (std::uint32_t attempt = 0; attempt < kMaxAttempts && !done;
             ++attempt) {
          if (!rt.begin_session().is_ok()) break;
          auto head = srpc::typed_call<ListNode*>(rt, 0, "list", which);
          if (!head.is_ok() || !rt.prefetch(head.value(), 1 << 16).is_ok()) {
            (void)rt.abort_session();
            continue;
          }
          // Client compute happens once; a conflict retry only re-fetches
          // and re-applies the already-computed update.
          if (attempt == 0) std::this_thread::sleep_for(kThinkTime);
          head.value()->value += 1;
          const auto t0 = std::chrono::steady_clock::now();
          Status ended = rt.end_session();
          const auto t1 = std::chrono::steady_clock::now();
          if (ended.is_ok()) {
            const double ms =
                std::chrono::duration<double, std::milli>(t1 - t0).count();
            std::lock_guard<std::mutex> lock(agg_mu);
            commit_ms.push_back(ms);
            ++committed;
            ++commits_per_list[static_cast<std::size_t>(which)];
            done = true;
          } else {
            (void)rt.abort_session();
            if (ended.code() != StatusCode::kConflict) break;
            // Lost the arbitration: back off a little before retrying so
            // the winner's commit window can close.
            std::this_thread::sleep_for(std::chrono::microseconds(
                200 * std::min<std::uint32_t>(attempt + 1, 16)));
          }
        }
        if (!done) {
          std::lock_guard<std::mutex> lock(agg_mu);
          ++failed;
        }
      }
    });
  }

  const auto start = std::chrono::steady_clock::now();
  world.run_concurrent(jobs);
  const auto stop = std::chrono::steady_clock::now();

  PointResult r;
  r.committed = committed;
  r.elapsed_s = std::chrono::duration<double>(stop - start).count();
  r.p95_commit_ms = percentile(commit_ms, 0.95);
  const srpc::ArbiterStats arb =
      home.run([](Runtime& rt) { return rt.arbiter().stats(); });
  r.conflicts = arb.conflicts;
  r.wounds = arb.wounds;

  // Coherency verification: the home's own memory must show exactly the
  // committed increments — no lost updates, no phantom ones.
  r.violations = home.run([&heads, &commits_per_list](Runtime&) {
    std::uint64_t bad = 0;
    for (std::uint32_t w = 0; w < kMaxSessions; ++w) {
      const std::int64_t expected =
          kInitialValue + static_cast<std::int64_t>(commits_per_list[w]);
      const std::int64_t actual = heads[w]->value;
      bad += static_cast<std::uint64_t>(
          actual > expected ? actual - expected : expected - actual);
    }
    return bad;
  });
  r.failed = failed;
  if (failed != 0) {
    std::fprintf(stderr, "fig8: %llu operations exhausted the retry budget\n",
                 static_cast<unsigned long long>(failed));
  }

  srpc::bench::RobustnessCounters point;
  point.add(home.run([](Runtime& rt) { return rt.stats(); }));
  for (AddressSpace* g : grounds) {
    point.add(g->run([](Runtime& rt) { return rt.stats(); }));
  }
  robustness.merge(point);
  return r;
}

}  // namespace

int main() {
  srpc::init_log_level_from_env();

  srpc::bench::RobustnessCounters robustness;
  std::vector<std::vector<double>> table;
  double low_rate_1 = 0, low_rate_8 = 0;
  for (const bool high : {false, true}) {
    for (const std::uint32_t n : kSessionCounts) {
      const PointResult r = run_point(n, high, robustness);
      const double rate = r.elapsed_s > 0
                              ? static_cast<double>(r.committed) / r.elapsed_s
                              : 0.0;
      if (!high && n == 1) low_rate_1 = rate;
      if (!high && n == 8) low_rate_8 = rate;
      table.push_back({static_cast<double>(n), high ? 1.0 : 0.0,
                       static_cast<double>(r.committed), r.elapsed_s, rate,
                       r.p95_commit_ms, static_cast<double>(r.conflicts),
                       static_cast<double>(r.wounds),
                       static_cast<double>(r.failed),
                       static_cast<double>(r.violations)});
    }
  }

  const double speedup = low_rate_1 > 0 ? low_rate_8 / low_rate_1 : 0.0;
  srpc::bench::print_table(
      "Figure 8: concurrent sessions vs committed-sessions/sec (wall clock)",
      {"sessions", "contention", "committed", "elapsed_s", "commits_per_s",
       "p95_commit_ms", "conflicts", "wounds", "failed", "violations"},
      table);
  std::printf("disjoint-workload speedup 1 -> 8 sessions: %.2fx\n", speedup);

  srpc::bench::write_bench_json(
      "fig8_multisession",
      {{"commits_per_ground", static_cast<double>(commits_per_ground())},
       {"think_time_us", static_cast<double>(kThinkTime.count())},
       {"speedup_low_1_to_8", speedup}},
      {"sessions", "high_contention", "committed", "elapsed_s",
       "commits_per_s", "p95_commit_ms", "conflicts", "wounds", "failed",
       "violations"},
      table, robustness);
  return 0;
}
