// Figure 9 — "Pipelined RPC: overlap factor and commit fan-out".
//
// Beyond the paper: the async future layer (PROTOCOL.md "Request
// multiplexing & pipelining"). Two experiments on one simulated wire:
//
//  * depth — a ground issues `d` calls to `d` distinct homes, blocking
//    (call, wait, call, ...) vs pipelined (issue all, collect all). The
//    overlap factor is blocking/pipelined virtual seconds; the acceptance
//    bar is > 2x at depth >= 4.
//  * fanout — a session dirties one object on each of `H` homes and ends;
//    sequential two-phase write-back (one home at a time) vs the parallel
//    fan-out (all PREPAREs on the wire, then all COMMITs, then all
//    INVALIDATEs). Reported as total virtual seconds and p95 commit time.
//    Note the fanout=1 row is not a null baseline: single-session commit
//    multicasts INVALIDATE to the whole directory (all 8 homes here), so
//    even with one dirty home the parallel path overlaps 8 invalidation
//    roundtrips that the sequential path serializes.
//
// Cost model: sparc_ethernet with the fixed per-message latency raised to
// 1 ms. The default LAN model is marshal-dominated (sender-side encode
// serializes on the one ground CPU), which caps depth-4 overlap near 1.9x
// no matter how good the pipelining is; a 1 ms-latency link — a WAN hop,
// or the paper's Ethernet under congestion — is the regime the async layer
// exists for, and shows the overlap honestly. Latency and receive-side
// costs overlap across in-flight messages; sender marshal and wire
// occupancy still serialize (see net/sim_network.hpp).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "core/smart_rpc.hpp"
#include "harness.hpp"
#include "obs/critical_path.hpp"
#include "workload/list.hpp"

namespace {

using srpc::AddressSpace;
using srpc::CostModel;
using srpc::Runtime;
using srpc::Session;
using srpc::TypedCallFuture;
using srpc::World;
using srpc::WorldOptions;
using srpc::workload::ListNode;

constexpr std::uint32_t kDepths[] = {1, 2, 4, 8};
constexpr std::uint32_t kFanouts[] = {1, 2, 4, 8};
constexpr std::uint32_t kHomes = 8;

// SRPC_BENCH_NODES scales the repetition count (smoke runs at 511 => 2).
std::uint32_t iterations() {
  static const std::uint32_t n =
      std::max<std::uint32_t>(2, srpc::bench::node_count_from_env(1024) / 256);
  return n;
}

double percentile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(q * static_cast<double>(v.size() - 1));
  return v[idx];
}

struct Fig9World {
  Fig9World() {
    WorldOptions options;
    CostModel cost = CostModel::sparc_ethernet();
    cost.per_message_ns = 1'000'000;  // 1 ms fixed latency (see header)
    options.cost = cost;
    options.cache.closure_bytes = 0;
    world = std::make_unique<World>(options);
    ground = &world->create_space("ground");
    srpc::workload::register_list_type(*world).status().check();
    for (std::uint32_t h = 0; h < kHomes; ++h) {
      AddressSpace& home = world->create_space("home" + std::to_string(h + 1));
      homes.push_back(&home);
      home.bind("echo",
                [](srpc::CallContext&, std::int64_t v) -> std::int64_t {
                  return v;
                })
          .check();
      home.bind("list",
                [this, h](srpc::CallContext&) -> ListNode* { return heads[h]; })
          .check();
      home.run([this, h](Runtime& rt) {
        auto head = srpc::workload::build_list(rt, 3, [](std::uint32_t i) {
          return static_cast<std::int64_t>(i);
        });
        head.status().check();
        heads[h] = head.value();
      });
    }
  }

  [[nodiscard]] std::uint64_t now_ns() const { return world->sim()->clock().now(); }

  std::unique_ptr<World> world;
  AddressSpace* ground = nullptr;
  std::vector<AddressSpace*> homes;
  ListNode* heads[kHomes] = {};
};

// Mean virtual seconds for one round of `depth` echo calls.
double run_depth(Fig9World& w, std::uint32_t depth, bool pipelined) {
  const std::uint32_t iters = iterations();
  return w.ground->run([&](Runtime& rt) {
    double total_s = 0;
    for (std::uint32_t it = 0; it < iters; ++it) {
      Session session(rt);
      const std::uint64_t t0 = w.now_ns();
      if (pipelined) {
        std::vector<TypedCallFuture<std::int64_t>> futures;
        futures.reserve(depth);
        for (std::uint32_t d = 0; d < depth; ++d) {
          auto fut = session.call_async<std::int64_t>(
              static_cast<srpc::SpaceId>(d + 1), "echo",
              static_cast<std::int64_t>(d));
          fut.status().check();
          futures.push_back(std::move(fut.value()));
        }
        for (auto& fut : futures) fut.get().status().check();
      } else {
        for (std::uint32_t d = 0; d < depth; ++d) {
          session
              .call<std::int64_t>(static_cast<srpc::SpaceId>(d + 1), "echo",
                                  static_cast<std::int64_t>(d))
              .status()
              .check();
        }
      }
      total_s += static_cast<double>(w.now_ns() - t0) / 1e9;
      session.end().check();
    }
    return total_s / iters;
  });
}

struct CommitPoint {
  double total_s = 0;   // virtual seconds across all measured commits
  double p95_ms = 0;    // p95 virtual commit (end_session) time
};

// Dirties one head on each of `fanout` homes per session and measures the
// end_session() window.
CommitPoint run_fanout(Fig9World& w, std::uint32_t fanout, bool parallel) {
  const std::uint32_t iters = iterations();
  return w.ground->run([&](Runtime& rt) {
    rt.set_parallel_commit(parallel);
    std::vector<double> commit_ms;
    for (std::uint32_t it = 0; it < iters; ++it) {
      rt.begin_session().status().check();
      for (std::uint32_t h = 0; h < fanout; ++h) {
        auto head = srpc::typed_call<ListNode*>(
            rt, static_cast<srpc::SpaceId>(h + 1), "list");
        head.status().check();
        rt.prefetch(head.value(), 1 << 16).check();
        head.value()->value += 1;
      }
      const std::uint64_t t0 = w.now_ns();
      rt.end_session().check();
      commit_ms.push_back(static_cast<double>(w.now_ns() - t0) / 1e6);
    }
    rt.set_parallel_commit(true);
    CommitPoint point;
    for (double ms : commit_ms) point.total_s += ms / 1e3;
    point.p95_ms = percentile(commit_ms, 0.95);
    return point;
  });
}

struct TracedRun {
  srpc::CriticalPathBreakdown breakdown;
  std::string health;  // World::health_json() of the traced world
};

// One traced pipelined depth-4 round on a fresh world: spans from every
// space feed the critical-path analyzer, which attributes the session's
// end-to-end latency to network / execution / lock / retransmit / local.
// The sweep covers the root window exactly, so the components must sum to
// the measured total (the JSON carries both for the 5% acceptance check).
TracedRun traced_run() {
  Fig9World w;
  w.world->set_tracing(true);
  const srpc::SessionId sid = w.ground->run([&](Runtime& rt) {
    Session session(rt);
    const srpc::SessionId id = session.id();
    std::vector<TypedCallFuture<std::int64_t>> futures;
    futures.reserve(4);
    for (std::uint32_t d = 0; d < 4; ++d) {
      auto fut = session.call_async<std::int64_t>(
          static_cast<srpc::SpaceId>(d + 1), "echo",
          static_cast<std::int64_t>(d));
      fut.status().check();
      futures.push_back(std::move(fut.value()));
    }
    for (auto& fut : futures) fut.get().status().check();
    session.end().check();
    return id;
  });
  srpc::CriticalPathAnalyzer analyzer(w.world->collect_spans());
  auto breakdown = analyzer.analyze_session(sid);
  breakdown.status().check();
  return {std::move(breakdown).value(), w.world->health_json()};
}

// Folds a finished world's rpc.roundtrip_ns{kind=...} histograms into the
// run-wide accumulator (worlds are per data point, so harvest before each
// one is destroyed) — this is what fills BENCH_fig9_pipeline.json's
// latency_ns section.
void collect_latency(Fig9World& w, srpc::MetricsRegistry& latency) {
  latency.merge(w.ground->run(
      [](Runtime& rt) -> srpc::MetricsRegistry { return rt.metrics(); }));
  for (AddressSpace* h : w.homes) {
    latency.merge(h->run(
        [](Runtime& rt) -> srpc::MetricsRegistry { return rt.metrics(); }));
  }
}

}  // namespace

int main() {
  srpc::init_log_level_from_env();

  std::vector<std::vector<double>> table;
  double overlap_depth4 = 0;
  double fanout8_speedup = 0;
  srpc::MetricsRegistry latency;

  // One world per mode+axis point so caches, leases, and contact state
  // never leak between rows (the virtual clock only ever moves forward;
  // all measurements are deltas).
  for (const std::uint32_t depth : kDepths) {
    Fig9World world;
    const double blocking_s = run_depth(world, depth, /*pipelined=*/false);
    const double pipelined_s = run_depth(world, depth, /*pipelined=*/true);
    const double overlap = pipelined_s > 0 ? blocking_s / pipelined_s : 0.0;
    if (depth == 4) overlap_depth4 = overlap;
    table.push_back({0.0, static_cast<double>(depth), blocking_s, pipelined_s,
                     overlap, 0.0, 0.0});
    collect_latency(world, latency);
  }

  srpc::bench::RobustnessCounters robustness;
  for (const std::uint32_t fanout : kFanouts) {
    // Separate worlds per mode: the first commit on a world ships full
    // images (no delta baseline yet), so sharing one world would bill the
    // cold start to whichever mode ran first.
    Fig9World seq_world;
    Fig9World world;
    const CommitPoint seq = run_fanout(seq_world, fanout, /*parallel=*/false);
    const CommitPoint par = run_fanout(world, fanout, /*parallel=*/true);
    const double speedup = par.total_s > 0 ? seq.total_s / par.total_s : 0.0;
    if (fanout == 8) fanout8_speedup = speedup;
    table.push_back({1.0, static_cast<double>(fanout), seq.total_s, par.total_s,
                     speedup, seq.p95_ms, par.p95_ms});
    srpc::bench::RobustnessCounters point;
    point.add(world.ground->run([](Runtime& rt) { return rt.stats(); }));
    for (AddressSpace* h : world.homes) {
      point.add(h->run([](Runtime& rt) { return rt.stats(); }));
    }
    robustness.merge(point);
    collect_latency(seq_world, latency);
    collect_latency(world, latency);
  }

  const TracedRun traced = traced_run();
  const srpc::CriticalPathBreakdown& cp = traced.breakdown;

  srpc::bench::print_table(
      "Figure 9: pipelined RPC overlap (experiment 0) and parallel commit "
      "fan-out (experiment 1), virtual time",
      {"experiment", "x", "baseline_s", "async_s", "speedup",
       "p95_baseline_ms", "p95_async_ms"},
      table);
  std::printf("pipeline overlap factor at depth 4: %.2fx (bar: > 2x)\n",
              overlap_depth4);
  std::printf("parallel commit speedup at fan-out 8: %.2fx\n", fanout8_speedup);
  const double attributed_pct =
      cp.total_ns != 0 ? 100.0 * static_cast<double>(cp.attributed_ns()) /
                             static_cast<double>(cp.total_ns)
                       : 0.0;
  std::printf(
      "critical path (traced depth-4 pipelined session, %zu spans): "
      "total %.3f ms = network %.3f + execution %.3f + lock %.3f + "
      "retransmit %.3f + local %.3f (attributed %.1f%%)\n",
      cp.span_count, static_cast<double>(cp.total_ns) / 1e6,
      static_cast<double>(cp.network_ns) / 1e6,
      static_cast<double>(cp.execution_ns) / 1e6,
      static_cast<double>(cp.lock_wait_ns) / 1e6,
      static_cast<double>(cp.retransmit_ns) / 1e6,
      static_cast<double>(cp.local_ns) / 1e6, attributed_pct);

  srpc::bench::write_bench_json(
      "fig9_pipeline",
      {{"iterations", static_cast<double>(iterations())},
       {"per_message_ns", 1'000'000.0},
       {"overlap_depth4", overlap_depth4},
       {"fanout8_speedup", fanout8_speedup}},
      {"experiment", "x", "baseline_s", "async_s", "speedup",
       "p95_baseline_ms", "p95_async_ms"},
      table, robustness, &latency,
      {{"critical_path", cp.to_json()}, {"health", traced.health}});
  // Guard the attribution bar alongside the overlap bar: the sweep is
  // exact by construction, so anything outside 5% means broken spans.
  const bool attribution_ok =
      cp.total_ns != 0 && attributed_pct > 95.0 && attributed_pct < 105.0;
  return overlap_depth4 > 2.0 && attribution_ok ? 0 : 1;
}
