// Figure 4 — "Comparison of the Three Methods".
//
// X-axis: (number of nodes accessed in the callee)/(total number of nodes);
// Y-axis: processing time (seconds) for one remote procedure call that
// searches a complete binary tree of 32 767 nodes depth-first, with the
// fully-eager, fully-lazy, and proposed methods. Closure size 8 192 bytes,
// read-only (the tree is not sent back).
//
// Expected shape (paper): eager nearly constant (the whole 524 272-byte
// tree ships once); lazy worst nearly everywhere, dominated by callbacks;
// proposed best for ratios up to roughly 0.6, losing to eager beyond that
// as the transfer count grows.
#include <benchmark/benchmark.h>

#include <array>
#include <map>

#include "harness.hpp"

namespace {

using srpc::bench::Measurement;
using srpc::bench::TreeExperiment;

constexpr std::uint64_t kClosureBytes = 8192;

std::uint32_t nodes() {
  static const std::uint32_t n = srpc::bench::node_count_from_env(32767);
  return n;
}

TreeExperiment& experiment() {
  static TreeExperiment e(nodes(), kClosureBytes);
  return e;
}

// ratio -> {eager, lazy, proposed} seconds
std::map<int, std::array<double, 3>>& rows() {
  static std::map<int, std::array<double, 3>> r;
  return r;
}

std::uint64_t limit_for(int tenth) {
  return nodes() * static_cast<std::uint64_t>(tenth) / 10;
}

void BM_FullyEager(benchmark::State& state) {
  const auto tenth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Measurement m = experiment().run_eager(limit_for(tenth));
    state.SetIterationTime(m.seconds);
    rows()[tenth][0] = m.seconds;
    state.counters["wire_bytes"] = static_cast<double>(m.wire_bytes);
  }
}

void BM_FullyLazy(benchmark::State& state) {
  const auto tenth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Measurement m = experiment().run_lazy(limit_for(tenth));
    state.SetIterationTime(m.seconds);
    rows()[tenth][1] = m.seconds;
    state.counters["callbacks"] = static_cast<double>(m.callbacks);
  }
}

void BM_Proposed(benchmark::State& state) {
  const auto tenth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Measurement m = experiment().run_proposed(limit_for(tenth));
    state.SetIterationTime(m.seconds);
    rows()[tenth][2] = m.seconds;
    state.counters["fetches"] = static_cast<double>(m.fetches);
  }
}

BENCHMARK(BM_FullyEager)->DenseRange(0, 10)->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FullyLazy)->DenseRange(0, 10)->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Proposed)->DenseRange(0, 10)->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  srpc::init_log_level_from_env();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();

  std::vector<std::vector<double>> table;
  for (const auto& [tenth, methods] : rows()) {
    table.push_back(
        {tenth / 10.0, methods[0], methods[1], methods[2]});
  }
  srpc::bench::print_table(
      "Figure 4: processing time (virtual s) vs access ratio",
      {"access_ratio", "fully_eager", "fully_lazy", "proposed"}, table);
  srpc::bench::write_bench_json(
      "fig4_methods",
      {{"nodes", static_cast<double>(nodes())},
       {"closure_bytes", static_cast<double>(kClosureBytes)}},
      {"access_ratio", "fully_eager_s", "fully_lazy_s", "proposed_s"}, table,
      experiment().robustness(), &experiment().latency());
  benchmark::Shutdown();
  return 0;
}
