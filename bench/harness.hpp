// Shared bench harness: the paper's experimental setup (§4).
//
// "The system was created on SunOS 4.1.1 running on Sun SPARC (28.5 MIPS)
// workstations ... connected by a 10 Mbps Ethernet network." Our spaces run
// in-process; the SimNetwork cost model charges a virtual clock with what
// that hardware would have spent (see net/cost_model.hpp), and every
// measurement below reports those virtual seconds.
//
// The experimental subject is §4.1's: a complete binary tree built in the
// caller's address space, searched remotely by the callee with the three
// methods — fully eager, fully lazy, and the proposed (smart RPC) method.
// Each measurement runs in a fresh RPC session, so caching never leaks
// between data points; the measured window is the remote call itself
// (session end/write-back is protocol epilogue the paper's per-call times
// do not include).
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "baselines/eager_rpc.hpp"
#include "baselines/lazy_rpc.hpp"
#include "core/smart_rpc.hpp"
#include "workload/tree.hpp"

namespace srpc::bench {

struct Measurement {
  double seconds = 0;          // virtual processing time of one call
  std::uint64_t fetches = 0;   // proposed-method fetch round trips
  std::uint64_t callbacks = 0; // lazy-method DEREF round trips
  std::uint64_t wire_bytes = 0;
};

// One caller/callee pair with the paper's tree built in the caller heap.
class TreeExperiment {
 public:
  explicit TreeExperiment(std::uint32_t node_count,
                          std::uint64_t closure_bytes = 8192)
      : node_count_(node_count) {
    WorldOptions options;
    options.cost = CostModel::sparc_ethernet();
    options.cache.closure_bytes = closure_bytes;
    // 65535 nodes at ~36 B/slot plus prefetch slack: 64 Mi arena suffices.
    options.cache.page_count = 16384;
    world_ = std::make_unique<World>(options);
    caller_ = &world_->create_space("caller");
    callee_ = &world_->create_space("callee");

    tree_type_ = workload::register_tree_type(*world_).value();

    // Proposed method: the callee dereferences the swizzled root directly.
    callee_
        ->bind("visit",
               [](CallContext&, workload::TreeNode* root,
                  std::uint64_t limit) -> std::int64_t {
                 return workload::visit_prefix(root, limit);
               })
        .check();
    callee_
        ->bind("update",
               [](CallContext&, workload::TreeNode* root, std::uint64_t limit)
                   -> std::int64_t { return workload::update_prefix(root, limit, 1); })
        .check();
    callee_
        ->bind("paths",
               [](CallContext&, workload::TreeNode* root, std::uint32_t paths,
                  std::uint64_t seed) -> std::int64_t {
                 return workload::walk_random_paths(root, paths, seed);
               })
        .check();
    // Fig. 6's subject: within ONE call, visit the tree from the root to
    // the leaves `times` times; upper levels are cached and reused across
    // the repeats.
    callee_
        ->bind("visit_repeat",
               [](CallContext&, workload::TreeNode* root,
                  std::uint32_t times) -> std::int64_t {
                 std::int64_t sum = 0;
                 for (std::uint32_t i = 0; i < times; ++i) {
                   sum += workload::visit_prefix(root, ~0ULL);
                 }
                 return sum;
               })
        .check();

    // Fully-eager method: whole tree inline with the call (rpcgen-style).
    eager::bind(*callee_, "eager_visit", tree_type_,
                [](CallContext&, void* root, std::int64_t limit, std::int64_t)
                    -> Result<std::int64_t> {
                  return workload::visit_prefix(static_cast<workload::TreeNode*>(root),
                                                static_cast<std::uint64_t>(limit));
                })
        .check();

    // Fully-lazy method: one callback per pointer dereference, no cache.
    callee_
        ->bind("lazy_visit",
               [](CallContext& ctx, LongPointer root,
                  std::uint64_t limit) -> std::int64_t {
                 lazy::LazyClient client(ctx.runtime);
                 std::int64_t sum = 0;
                 std::uint64_t visited = 0;
                 // Depth-first with explicit stack, mirroring visit_prefix.
                 std::vector<LongPointer> stack;
                 if (!root.is_null()) stack.push_back(root);
                 while (!stack.empty() && visited < limit) {
                   const LongPointer node = stack.back();
                   stack.pop_back();
                   auto value = client.deref(node);  // the callback
                   value.status().check();
                   sum += value.value().view<workload::TreeNode>()->data;
                   ++visited;
                   const LongPointer right = value.value().pointers[1];
                   const LongPointer left = value.value().pointers[0];
                   if (!right.is_null()) stack.push_back(right);
                   if (!left.is_null()) stack.push_back(left);
                 }
                 return sum;
               })
        .check();

    caller_->run([&](Runtime& rt) {
      auto root = workload::build_complete_tree(rt, node_count_);
      root.status().check();
      root_ = root.value();
      return 0;
    });
  }

  [[nodiscard]] std::uint32_t node_count() const noexcept { return node_count_; }

  void set_closure_bytes(std::uint64_t bytes) {
    caller_->run([&](Runtime& rt) {
      rt.cache().set_closure_bytes(bytes);
      return 0;
    });
    callee_->run([&](Runtime& rt) {
      rt.cache().set_closure_bytes(bytes);
      return 0;
    });
  }

  // One smart-RPC call visiting `limit` nodes (optionally updating them).
  Measurement run_proposed(std::uint64_t limit, bool update = false) {
    return measure([&](Runtime& rt) {
      Session session(rt);
      auto sum = session.call<std::int64_t>(callee_->id(),
                                            update ? "update" : "visit", root_, limit);
      sum.status().check();
      const Measurement m = snapshot();
      session.end().check();
      return m;
    });
  }

  // One smart-RPC call performing `paths` root-to-leaf walks.
  Measurement run_paths(std::uint32_t paths, std::uint64_t seed) {
    return measure([&](Runtime& rt) {
      Session session(rt);
      auto sum = session.call<std::int64_t>(callee_->id(), "paths", root_, paths, seed);
      sum.status().check();
      const Measurement m = snapshot();
      session.end().check();
      return m;
    });
  }

  // One smart-RPC call repeating a full root-to-leaves search (Fig. 6).
  Measurement run_repeated_search(std::uint32_t times) {
    return measure([&](Runtime& rt) {
      Session session(rt);
      auto sum =
          session.call<std::int64_t>(callee_->id(), "visit_repeat", root_, times);
      sum.status().check();
      const Measurement m = snapshot();
      session.end().check();
      return m;
    });
  }

  Measurement run_eager(std::uint64_t limit) {
    return measure([&](Runtime& rt) {
      Session session(rt);
      auto sum = eager::call(rt, callee_->id(), "eager_visit", tree_type_, root_,
                             static_cast<std::int64_t>(limit), 0);
      sum.status().check();
      const Measurement m = snapshot();
      session.end().check();
      return m;
    });
  }

  Measurement run_lazy(std::uint64_t limit) {
    return measure([&](Runtime& rt) {
      Session session(rt);
      auto type = rt.host_types().find<workload::TreeNode>();
      type.status().check();
      auto root = lazy::export_pointer(rt, root_, type.value());
      root.status().check();
      auto sum =
          session.call<std::int64_t>(callee_->id(), "lazy_visit", root.value(), limit);
      sum.status().check();
      const Measurement m = snapshot();
      session.end().check();
      return m;
    });
  }

  [[nodiscard]] World& world() noexcept { return *world_; }

 private:
  template <typename F>
  Measurement measure(F body) {
    return caller_->run([&](Runtime& rt) -> Measurement {
      world_->reset_metering();
      callee_->run([](Runtime& callee_rt) {
        callee_rt.cache().reset_stats();
        return 0;
      });
      return body(rt);
    });
  }

  // Reads the meters inside the measured window (before session end).
  Measurement snapshot() {
    Measurement m;
    m.seconds = world_->virtual_seconds();
    const NetworkStats net = world_->net_stats();
    m.wire_bytes = net.wire_bytes;
    m.fetches = net.count(MessageType::kFetch);
    m.callbacks = net.count(MessageType::kDeref);
    return m;
  }

  std::uint32_t node_count_;
  std::unique_ptr<World> world_;
  AddressSpace* caller_ = nullptr;
  AddressSpace* callee_ = nullptr;
  workload::TreeNode* root_ = nullptr;
  TypeId tree_type_ = kInvalidTypeId;
};

// Paper-style table printer ("X-axis: ...; Y-axis: ...").
inline void print_table(const std::string& title,
                        const std::vector<std::string>& columns,
                        const std::vector<std::vector<double>>& rows) {
  std::printf("\n=== %s ===\n", title.c_str());
  for (const auto& c : columns) std::printf("%14s", c.c_str());
  std::printf("\n");
  for (const auto& row : rows) {
    for (const double v : row) std::printf("%14.3f", v);
    std::printf("\n");
  }
  std::fflush(stdout);
}

}  // namespace srpc::bench
