// Shared bench harness: the paper's experimental setup (§4).
//
// "The system was created on SunOS 4.1.1 running on Sun SPARC (28.5 MIPS)
// workstations ... connected by a 10 Mbps Ethernet network." Our spaces run
// in-process; the SimNetwork cost model charges a virtual clock with what
// that hardware would have spent (see net/cost_model.hpp), and every
// measurement below reports those virtual seconds.
//
// The experimental subject is §4.1's: a complete binary tree built in the
// caller's address space, searched remotely by the callee with the three
// methods — fully eager, fully lazy, and the proposed (smart RPC) method.
// Each measurement runs in a fresh RPC session, so caching never leaks
// between data points; the measured window is the remote call itself
// (session end/write-back is protocol epilogue the paper's per-call times
// do not include).
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "baselines/eager_rpc.hpp"
#include "baselines/lazy_rpc.hpp"
#include "common/logging.hpp"
#include "core/smart_rpc.hpp"
#include "obs/metrics.hpp"
#include "workload/tree.hpp"

namespace srpc::bench {

struct Measurement {
  double seconds = 0;          // virtual processing time of one call
  std::uint64_t fetches = 0;   // proposed-method fetch round trips
  std::uint64_t callbacks = 0; // lazy-method DEREF round trips
  std::uint64_t wire_bytes = 0;
  // Coherency traffic, summed over caller and callee (RuntimeStats).
  std::uint64_t modified_bytes = 0;  // wire bytes of modified-set sections
  std::uint64_t delta_bytes = 0;     // of which MODIFIED_DELTA entries
  std::uint64_t deltas_skipped = 0;  // epoch/fingerprint skips
  // Eagerness effectiveness at the callee (CacheStats): closure surplus
  // objects received vs. objects the callee still faulted for.
  std::uint64_t closure_hits = 0;
  std::uint64_t closure_misses = 0;
};

// Failure-containment counters, summed over every space a bench touched and
// emitted into BENCH_<name>.json. On a healthy bench wire the failure
// counters must stay zero — a nonzero abort/lease/orphan count in a bench
// run is itself a regression signal — while wb_prepares tracks the
// two-phase protocol's steady-state cost.
struct RobustnessCounters {
  std::uint64_t wb_prepares = 0;
  std::uint64_t wb_aborts = 0;
  std::uint64_t leases_expired = 0;
  std::uint64_t orphan_bytes_reclaimed = 0;
  std::uint64_t sessions_aborted = 0;

  void add(const RuntimeStats& s) {
    wb_prepares += s.wb_prepares;
    wb_aborts += s.wb_aborts;
    leases_expired += s.leases_expired;
    orphan_bytes_reclaimed += s.orphan_bytes_reclaimed;
    sessions_aborted += s.sessions_aborted;
  }

  // For benches that build one world per data point: fold the outcome of a
  // finished experiment into a running total.
  void merge(const RobustnessCounters& o) {
    wb_prepares += o.wb_prepares;
    wb_aborts += o.wb_aborts;
    leases_expired += o.leases_expired;
    orphan_bytes_reclaimed += o.orphan_bytes_reclaimed;
    sessions_aborted += o.sessions_aborted;
  }
};

// `SRPC_BENCH_NODES` overrides a figure's default tree size — the smoke
// ctest target runs every figure at a few hundred nodes under sanitizers.
inline std::uint32_t node_count_from_env(std::uint32_t fallback) {
  const char* env = std::getenv("SRPC_BENCH_NODES");
  if (env == nullptr || *env == '\0') return fallback;
  const long parsed = std::strtol(env, nullptr, 10);
  return parsed > 0 ? static_cast<std::uint32_t>(parsed) : fallback;
}

// One caller/callee pair with the paper's tree built in the caller heap.
class TreeExperiment {
 public:
  explicit TreeExperiment(std::uint32_t node_count,
                          std::uint64_t closure_bytes = 8192,
                          bool shm_payload = false)
      : node_count_(node_count) {
    WorldOptions options;
    options.cost = CostModel::sparc_ethernet();
    options.cache.closure_bytes = closure_bytes;
    // Zero-copy payload lane (opt-in): payloads travel as arena views and
    // shm-lane messages are charged header+descriptor wire bytes only.
    options.shm_payload = shm_payload;
    // 65535 nodes at ~36 B/slot plus prefetch slack: 64 Mi arena suffices.
    options.cache.page_count = 16384;
    world_ = std::make_unique<World>(options);
    caller_ = &world_->create_space("caller");
    callee_ = &world_->create_space("callee");

    tree_type_ = workload::register_tree_type(*world_).value();

    // Proposed method: the callee dereferences the swizzled root directly.
    callee_
        ->bind("visit",
               [](CallContext&, workload::TreeNode* root,
                  std::uint64_t limit) -> std::int64_t {
                 return workload::visit_prefix(root, limit);
               })
        .check();
    callee_
        ->bind("update",
               [](CallContext&, workload::TreeNode* root, std::uint64_t limit)
                   -> std::int64_t { return workload::update_prefix(root, limit, 1); })
        .check();
    // Sparse update: every stride-th visited node — pages go dirty but only
    // a few bytes per page change (the delta encoder's best case).
    callee_
        ->bind("update_sparse",
               [](CallContext&, workload::TreeNode* root, std::uint64_t limit,
                  std::uint64_t stride) -> std::int64_t {
                 return workload::update_sparse(root, limit, stride, 1);
               })
        .check();
    callee_
        ->bind("paths",
               [](CallContext&, workload::TreeNode* root, std::uint32_t paths,
                  std::uint64_t seed) -> std::int64_t {
                 return workload::walk_random_paths(root, paths, seed);
               })
        .check();
    // Fig. 6's subject: within ONE call, visit the tree from the root to
    // the leaves `times` times; upper levels are cached and reused across
    // the repeats.
    callee_
        ->bind("visit_repeat",
               [](CallContext&, workload::TreeNode* root,
                  std::uint32_t times) -> std::int64_t {
                 std::int64_t sum = 0;
                 for (std::uint32_t i = 0; i < times; ++i) {
                   sum += workload::visit_prefix(root, ~0ULL);
                 }
                 return sum;
               })
        .check();

    // Fully-eager method: whole tree inline with the call (rpcgen-style).
    eager::bind(*callee_, "eager_visit", tree_type_,
                [](CallContext&, void* root, std::int64_t limit, std::int64_t)
                    -> Result<std::int64_t> {
                  return workload::visit_prefix(static_cast<workload::TreeNode*>(root),
                                                static_cast<std::uint64_t>(limit));
                })
        .check();

    // Fully-lazy method: one callback per pointer dereference, no cache.
    callee_
        ->bind("lazy_visit",
               [](CallContext& ctx, LongPointer root,
                  std::uint64_t limit) -> std::int64_t {
                 lazy::LazyClient client(ctx.runtime);
                 std::int64_t sum = 0;
                 std::uint64_t visited = 0;
                 // Depth-first with explicit stack, mirroring visit_prefix.
                 std::vector<LongPointer> stack;
                 if (!root.is_null()) stack.push_back(root);
                 while (!stack.empty() && visited < limit) {
                   const LongPointer node = stack.back();
                   stack.pop_back();
                   auto value = client.deref(node);  // the callback
                   value.status().check();
                   sum += value.value().view<workload::TreeNode>()->data;
                   ++visited;
                   const LongPointer right = value.value().pointers[1];
                   const LongPointer left = value.value().pointers[0];
                   if (!right.is_null()) stack.push_back(right);
                   if (!left.is_null()) stack.push_back(left);
                 }
                 return sum;
               })
        .check();

    caller_->run([&](Runtime& rt) {
      auto root = workload::build_complete_tree(rt, node_count_);
      root.status().check();
      root_ = root.value();
      return 0;
    });
  }

  [[nodiscard]] std::uint32_t node_count() const noexcept { return node_count_; }

  void set_closure_bytes(std::uint64_t bytes) {
    caller_->run([&](Runtime& rt) {
      rt.cache().set_closure_bytes(bytes).check();
      return 0;
    });
    callee_->run([&](Runtime& rt) {
      rt.cache().set_closure_bytes(bytes).check();
      return 0;
    });
  }

  // Ablation switch over a shm-enabled world: off sends every payload down
  // the legacy byte lane (elevation disabled, capability still advertised).
  // No effect unless the experiment was built with shm_payload = true.
  void set_shm_payload(bool on) {
    caller_->run([&](Runtime& rt) {
      rt.set_shm_payload(on);
      return 0;
    });
    callee_->run([&](Runtime& rt) {
      rt.set_shm_payload(on);
      return 0;
    });
  }

  // Ablation switch: off forces every modified object back to full graph
  // payloads (the pre-delta wire behaviour).
  void set_modified_deltas(bool on) {
    caller_->run([&](Runtime& rt) {
      rt.set_modified_deltas(on);
      return 0;
    });
    callee_->run([&](Runtime& rt) {
      rt.set_modified_deltas(on);
      return 0;
    });
  }

  // One smart-RPC call visiting `limit` nodes (optionally updating them).
  Measurement run_proposed(std::uint64_t limit, bool update = false) {
    return measure([&](Runtime& rt) {
      Session session(rt);
      auto sum = session.call<std::int64_t>(callee_->id(),
                                            update ? "update" : "visit", root_, limit);
      sum.status().check();
      const Measurement m = snapshot();
      session.end().check();
      return m;
    });
  }

  // One smart-RPC call updating every `stride`-th of `limit` visited nodes.
  // The modified-set meters include the session-end write-back, which is
  // where the coalesced delta batches pay off.
  Measurement run_sparse_update(std::uint64_t limit, std::uint64_t stride) {
    return measure([&](Runtime& rt) {
      Session session(rt);
      auto sum = session.call<std::int64_t>(callee_->id(), "update_sparse",
                                            root_, limit, stride);
      sum.status().check();
      session.end().check();
      return snapshot();
    });
  }

  // One smart-RPC call performing `paths` root-to-leaf walks.
  Measurement run_paths(std::uint32_t paths, std::uint64_t seed) {
    return measure([&](Runtime& rt) {
      Session session(rt);
      auto sum = session.call<std::int64_t>(callee_->id(), "paths", root_, paths, seed);
      sum.status().check();
      const Measurement m = snapshot();
      session.end().check();
      return m;
    });
  }

  // One smart-RPC call repeating a full root-to-leaves search (Fig. 6).
  Measurement run_repeated_search(std::uint32_t times) {
    return measure([&](Runtime& rt) {
      Session session(rt);
      auto sum =
          session.call<std::int64_t>(callee_->id(), "visit_repeat", root_, times);
      sum.status().check();
      const Measurement m = snapshot();
      session.end().check();
      return m;
    });
  }

  Measurement run_eager(std::uint64_t limit) {
    return measure([&](Runtime& rt) {
      Session session(rt);
      auto sum = eager::call(rt, callee_->id(), "eager_visit", tree_type_, root_,
                             static_cast<std::int64_t>(limit), 0);
      sum.status().check();
      const Measurement m = snapshot();
      session.end().check();
      return m;
    });
  }

  Measurement run_lazy(std::uint64_t limit) {
    return measure([&](Runtime& rt) {
      Session session(rt);
      auto type = rt.host_types().find<workload::TreeNode>();
      type.status().check();
      auto root = lazy::export_pointer(rt, root_, type.value());
      root.status().check();
      auto sum =
          session.call<std::int64_t>(callee_->id(), "lazy_visit", root.value(), limit);
      sum.status().check();
      const Measurement m = snapshot();
      session.end().check();
      return m;
    });
  }

  [[nodiscard]] World& world() noexcept { return *world_; }

  // Cumulative failure-containment counters over both spaces (reset_stats
  // in measure() zeroes per-measurement, so read this after the last run).
  [[nodiscard]] RobustnessCounters robustness() {
    RobustnessCounters r;
    r.add(caller_->runtime().stats());
    r.add(callee_->run([](Runtime& rt) { return rt.stats(); }));
    return r;
  }

  // Roundtrip latency histograms (rpc.roundtrip_ns{kind=...}) accumulated
  // over every measurement on both spaces — what write_bench_json turns
  // into per-kind p50/p95/p99.
  [[nodiscard]] const MetricsRegistry& latency() const noexcept {
    return latency_;
  }

 private:
  template <typename F>
  Measurement measure(F body) {
    return caller_->run([&](Runtime& rt) -> Measurement {
      world_->reset_metering();
      rt.reset_stats();
      callee_->run([](Runtime& callee_rt) {
        callee_rt.cache().reset_stats();
        callee_rt.reset_stats();
        return 0;
      });
      Measurement m = body(rt);
      // Fold this measurement's latency histograms into the accumulated
      // registry before the next measurement's reset wipes them.
      latency_.merge(rt.metrics());
      latency_.merge(callee_->run(
          [](Runtime& callee_rt) -> MetricsRegistry { return callee_rt.metrics(); }));
      return m;
    });
  }

  // Reads the meters inside the measured window (before session end).
  Measurement snapshot() {
    Measurement m;
    m.seconds = world_->virtual_seconds();
    const NetworkStats net = world_->net_stats();
    m.wire_bytes = net.wire_bytes;
    m.fetches = net.count(MessageType::kFetch);
    m.callbacks = net.count(MessageType::kDeref);
    const RuntimeStats caller_stats = caller_->runtime().stats();
    const RuntimeStats callee_stats =
        callee_->run([](Runtime& rt) { return rt.stats(); });
    m.modified_bytes =
        caller_stats.modified_bytes_shipped + callee_stats.modified_bytes_shipped;
    m.delta_bytes =
        caller_stats.delta_bytes_shipped + callee_stats.delta_bytes_shipped;
    m.deltas_skipped = caller_stats.deltas_skipped_by_epoch +
                       callee_stats.deltas_skipped_by_epoch;
    const CacheStats callee_cache =
        callee_->run([](Runtime& rt) { return rt.cache().stats(); });
    m.closure_hits = callee_cache.closure_prefetch_hits;
    m.closure_misses = callee_cache.closure_prefetch_misses;
    return m;
  }

  std::uint32_t node_count_;
  std::unique_ptr<World> world_;
  AddressSpace* caller_ = nullptr;
  AddressSpace* callee_ = nullptr;
  workload::TreeNode* root_ = nullptr;
  TypeId tree_type_ = kInvalidTypeId;
  MetricsRegistry latency_;
};

// Machine-readable results: every figure binary writes BENCH_<name>.json
// into the working directory alongside its stdout table, so runs can be
// compared without scraping the console (scripts/bench.sh aggregates them
// into BENCH_summary.json).
// Layout: {"bench": ..., "config": {...}, "robustness": {...},
//          "latency_ns": {"CALL": {count,p50,p95,p99,p999}, ...},
//          "slo": {"violations": {...}, "total_violations": N, ...},
//          "columns": [...], "rows": [[...]], <extra sections>}.
// `latency` supplies the rpc.roundtrip_ns{kind=...} histograms (virtual-
// clock nanoseconds on the simulated transport) — typically
// TreeExperiment::latency() or an accumulator merged across worlds. The
// same registry carries the slo.observed/slo.violations/slo.breaches
// counters the SLO engine emits, which become the "slo" section. `extra`
// appends pre-rendered JSON sections ({"critical_path": "...json..."}).
inline void write_bench_json(
    const std::string& name,
    const std::vector<std::pair<std::string, double>>& config,
    const std::vector<std::string>& columns,
    const std::vector<std::vector<double>>& rows,
    const RobustnessCounters& robustness = {},
    const MetricsRegistry* latency = nullptr,
    const std::vector<std::pair<std::string, std::string>>& extra = {}) {
  const std::string path = "BENCH_" + name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"config\": {", name.c_str());
  for (std::size_t i = 0; i < config.size(); ++i) {
    std::fprintf(f, "%s\"%s\": %.17g", i ? ", " : "", config[i].first.c_str(),
                 config[i].second);
  }
  std::fprintf(f,
               "},\n  \"robustness\": {\"wb_prepares\": %llu, "
               "\"wb_aborts\": %llu, \"leases_expired\": %llu, "
               "\"orphan_bytes_reclaimed\": %llu, \"sessions_aborted\": %llu",
               static_cast<unsigned long long>(robustness.wb_prepares),
               static_cast<unsigned long long>(robustness.wb_aborts),
               static_cast<unsigned long long>(robustness.leases_expired),
               static_cast<unsigned long long>(robustness.orphan_bytes_reclaimed),
               static_cast<unsigned long long>(robustness.sessions_aborted));
  std::fprintf(f, "},\n  \"latency_ns\": {");
  if (latency != nullptr) {
    const std::string prefix = "rpc.roundtrip_ns{kind=";
    bool first = true;
    for (const auto& [key, hist] : latency->histograms()) {
      if (key.rfind(prefix, 0) != 0 || hist.count() == 0) continue;
      std::string kind = key.substr(prefix.size());
      if (!kind.empty() && kind.back() == '}') kind.pop_back();
      std::fprintf(f,
                   "%s\"%s\": {\"count\": %llu, \"p50\": %.1f, "
                   "\"p95\": %.1f, \"p99\": %.1f, \"p999\": %.1f}",
                   first ? "" : ", ", kind.c_str(),
                   static_cast<unsigned long long>(hist.count()),
                   hist.percentile(0.50), hist.percentile(0.95),
                   hist.percentile(0.99), hist.percentile(0.999));
      first = false;
    }
  }
  // SLO accounting: per-kind violation counts plus totals. The counters
  // ride the same registry merges as the latency histograms, so a bench
  // that accumulates latency gets its SLO verdicts for free; zero
  // violations on a healthy wire is the expected (and asserted) shape.
  std::uint64_t slo_observed = 0, slo_violations = 0, slo_breaches = 0;
  std::fprintf(f, "},\n  \"slo\": {\"violations\": {");
  if (latency != nullptr) {
    const std::string vprefix = "slo.violations{";
    bool first = true;
    for (const auto& [key, c] : latency->counters()) {
      if (key.rfind("slo.observed{", 0) == 0) slo_observed += c.value;
      if (key.rfind("slo.breaches{", 0) == 0) slo_breaches += c.value;
      if (key.rfind(vprefix, 0) != 0) continue;
      std::string kind = key.substr(vprefix.size());
      if (!kind.empty() && kind.back() == '}') kind.pop_back();
      std::fprintf(f, "%s\"%s\": %llu", first ? "" : ", ", kind.c_str(),
                   static_cast<unsigned long long>(c.value));
      slo_violations += c.value;
      first = false;
    }
  }
  std::fprintf(f,
               "}, \"observed\": %llu, \"total_violations\": %llu, "
               "\"breaches\": %llu",
               static_cast<unsigned long long>(slo_observed),
               static_cast<unsigned long long>(slo_violations),
               static_cast<unsigned long long>(slo_breaches));
  std::fprintf(f, "},\n  \"columns\": [");
  for (std::size_t i = 0; i < columns.size(); ++i) {
    std::fprintf(f, "%s\"%s\"", i ? ", " : "", columns[i].c_str());
  }
  std::fprintf(f, "],\n  \"rows\": [\n");
  for (std::size_t r = 0; r < rows.size(); ++r) {
    std::fprintf(f, "    [");
    for (std::size_t c = 0; c < rows[r].size(); ++c) {
      std::fprintf(f, "%s%.17g", c ? ", " : "", rows[r][c]);
    }
    std::fprintf(f, "]%s\n", r + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]");
  for (const auto& [key, json] : extra) {
    std::fprintf(f, ",\n  \"%s\": %s", key.c_str(), json.c_str());
  }
  std::fprintf(f, "\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

// Paper-style table printer ("X-axis: ...; Y-axis: ...").
inline void print_table(const std::string& title,
                        const std::vector<std::string>& columns,
                        const std::vector<std::vector<double>>& rows) {
  std::printf("\n=== %s ===\n", title.c_str());
  for (const auto& c : columns) std::printf("%14s", c.c_str());
  std::printf("\n");
  for (const auto& row : rows) {
    for (const double v : row) std::printf("%14.3f", v);
    std::printf("\n");
  }
  std::fflush(stdout);
}

}  // namespace srpc::bench
