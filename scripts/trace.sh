#!/usr/bin/env bash
# Build and exercise the distributed-tracing pipeline end to end:
#
#   1. run the `obs`-labelled test suite (span-tree invariants under fault
#      injection),
#   2. run the three-space trace_demo with SRPC_TRACE=1 and validate the
#      merged Chrome trace-event JSON it writes — parses, every non-root
#      span's parent resolves, and every wire kind the run exercises has at
#      least one span,
#   3. run a traced bench figure and check its BENCH json carries the
#      per-kind p50/p95/p99 roundtrip latency block.
#
#   scripts/trace.sh            # default build dir ./build
#   SRPC_TRACE_OUT=/tmp/t scripts/trace.sh
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${ROOT}/build"
OUT="${SRPC_TRACE_OUT:-${ROOT}/trace-results}"

cmake -B "${BUILD}" -S "${ROOT}" -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${BUILD}" -j "$(nproc)" --target trace_test trace_demo fig4_methods

ctest --test-dir "${BUILD}" --output-on-failure -L obs

mkdir -p "${OUT}"
cd "${OUT}"

echo "=== trace_demo (SRPC_TRACE=1) ==="
SRPC_TRACE=1 "${BUILD}/examples/trace_demo"

echo "=== validating trace_demo.json ==="
python3 - <<'EOF'
import json, sys

with open("trace_demo.json") as f:
    doc = json.load(f)

events = doc["traceEvents"]
spans = [e for e in events if e["ph"] == "X"]
by_id = {e["args"]["span_id"]: e for e in spans}
if not spans:
    sys.exit("no spans in trace")

orphans = [e for e in spans
           if e["args"]["parent_span_id"] not in (0, *by_id)]
if orphans:
    sys.exit(f"{len(orphans)} orphaned spans, first: {orphans[0]['name']}")

roots = [e for e in spans if e["args"]["parent_span_id"] == 0]
names = " ".join(e["name"] for e in spans)
# The demo's three-space nested-call run exercises every wire kind below;
# each must appear as at least one serve-side span.
missing = [k for k in ("CALL", "FETCH", "ALLOC_BATCH", "DEREF", "INVALIDATE",
                       "WB_PREPARE", "WB_COMMIT", "WRITE_BACK")
           if f"serve {k}" not in names]
if missing:
    sys.exit(f"wire kinds with no span: {missing}")

procs = {e["args"]["name"] for e in events if e["ph"] == "M"}
print(f"OK: {len(spans)} spans across {sorted(procs)}, "
      f"{len(roots)} root(s), all parents resolve")
EOF

echo "=== traced bench figure (fig4, smoke size) ==="
SRPC_TRACE=1 SRPC_BENCH_NODES=511 "${BUILD}/bench/fig4_methods" > /dev/null

echo "=== validating BENCH_fig4_methods.json latency block ==="
python3 - <<'EOF'
import json, sys

with open("BENCH_fig4_methods.json") as f:
    doc = json.load(f)

latency = doc.get("latency_ns")
if not latency:
    sys.exit("BENCH json has no latency_ns block")
for kind, h in latency.items():
    for key in ("count", "p50", "p95", "p99"):
        if key not in h:
            sys.exit(f"latency_ns[{kind}] missing {key}")
print(f"OK: per-kind latency for {sorted(latency)}")
EOF

echo "trace pipeline OK; artifacts in ${OUT}"
