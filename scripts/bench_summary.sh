#!/usr/bin/env bash
# Aggregates every BENCH_<name>.json in a directory into one
# BENCH_summary.json: per-bench config, SLO violation/breach counts, and
# the critical-path breakdown where a bench emitted one, plus roll-up
# totals across the suite. Pure bash + python3 (stdlib only).
#
#   scripts/bench_summary.sh [dir]    # default: bench-results/
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
DIR="${1:-${ROOT}/bench-results}"

if ! compgen -G "${DIR}/BENCH_*.json" > /dev/null; then
  echo "no BENCH_*.json in ${DIR}" >&2
  exit 1
fi

python3 - "${DIR}" <<'PY'
import glob, json, os, sys

out_dir = sys.argv[1]
summary = {"benches": {}, "totals": {
    "benches": 0, "slo_observed": 0, "slo_violations": 0, "slo_breaches": 0}}
for path in sorted(glob.glob(os.path.join(out_dir, "BENCH_*.json"))):
    if os.path.basename(path) == "BENCH_summary.json":
        continue  # never aggregate a previous aggregate
    with open(path) as f:
        doc = json.load(f)
    name = doc.get("bench", os.path.basename(path)[len("BENCH_"):-len(".json")])
    entry = {"file": os.path.basename(path)}
    if "config" in doc:
        entry["config"] = doc["config"]
    slo = doc.get("slo")
    if slo is not None:
        entry["slo"] = slo
        summary["totals"]["slo_observed"] += slo.get("observed", 0)
        summary["totals"]["slo_violations"] += slo.get("total_violations", 0)
        summary["totals"]["slo_breaches"] += slo.get("breaches", 0)
    if "critical_path" in doc:
        cp = doc["critical_path"]
        entry["critical_path"] = cp
        total = cp.get("total_ns", 0)
        if total:
            entry["critical_path_attributed_pct"] = round(
                100.0 * cp.get("attributed_ns", 0) / total, 2)
    if "robustness" in doc:
        entry["robustness"] = doc["robustness"]
    summary["benches"][name] = entry
    summary["totals"]["benches"] += 1

out_path = os.path.join(out_dir, "BENCH_summary.json")
with open(out_path, "w") as f:
    json.dump(summary, f, indent=2, sort_keys=True)
    f.write("\n")
t = summary["totals"]
print(f"wrote {out_path}: {t['benches']} benches, "
      f"{t['slo_violations']} SLO violations / {t['slo_observed']} observed, "
      f"{t['slo_breaches']} breaches")
PY
