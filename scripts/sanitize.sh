#!/usr/bin/env bash
# Configure, build, and run the test suite under a sanitizer.
#
#   scripts/sanitize.sh address    # ASan + LSan
#   scripts/sanitize.sh undefined  # UBSan
#   scripts/sanitize.sh thread     # TSan (uses scripts/tsan.supp)
#
# Each sanitizer needs runtime options because the runtime installs its own
# SIGSEGV handler (the MMU-fault path IS the product, see src/vm):
#
# - ASan intercepts SIGSEGV by default and would report our intentional
#   faults on protected cache pages as crashes. handle_segv=0 plus
#   allow_user_segv_handler=1 hands the signal straight to our
#   FaultDispatcher.
# - TSan flags signal handlers that run "signal-unsafe" code; our handler
#   deliberately performs a full fetch RPC inside the fault (the paper's
#   design), so report_signal_unsafe=0 is required; tsan.supp covers only
#   the handler's allocator attribution.
set -euo pipefail

SAN="${1:-address}"
if [ "$#" -gt 0 ]; then shift; fi  # remaining args go to ctest (e.g. -R foo)
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${ROOT}/build-${SAN}"

case "${SAN}" in
  address)
    export ASAN_OPTIONS="handle_segv=0:allow_user_segv_handler=1:detect_leaks=1"
    ;;
  undefined)
    export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
    ;;
  thread)
    export TSAN_OPTIONS="report_signal_unsafe=0:suppressions=${ROOT}/scripts/tsan.supp"
    ;;
  *)
    echo "usage: $0 [address|undefined|thread]" >&2
    exit 2
    ;;
esac

cmake -B "${BUILD}" -S "${ROOT}" -DSRPC_SANITIZE="${SAN}" -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${BUILD}" -j "$(nproc)"
# The concurrency suite first: the multi-session runtime runs truly
# parallel ground workers against one home arbiter, so it is the suite
# ThreadSanitizer exists for — but it runs under every sanitizer so a
# data race that ASan happens to crash on is caught too.
ctest --test-dir "${BUILD}" --output-on-failure -L concurrency
# Failure-containment matrix next (crash points, partitions, soak): it is
# the suite most likely to trip a sanitizer, so fail fast on it before the
# rest of the tests. scripts/soak.sh layers a many-seed sweep on top. Then
# the observability suite (tracing touches every wire path), then the rest.
ctest --test-dir "${BUILD}" --output-on-failure -L fault -LE concurrency
# Space reincarnation explicitly (also part of -L fault above): the
# kill-and-restart matrix hands one space's state across worker threads —
# halt/join, zombie heap, world-owned RecoveryLog — which is exactly the
# surface TSan must see race-free.
ctest --test-dir "${BUILD}" --output-on-failure -L recovery
ctest --test-dir "${BUILD}" --output-on-failure -L obs
# Pipelining suite explicitly: the future pump and the mailbox
# single-consumer guard are the racy surfaces TSan must see; the fault half
# of the matrix (pipeline_fault_test) already ran under -L fault above.
ctest --test-dir "${BUILD}" --output-on-failure -L pipeline -LE fault
# Zero-copy payload lane: the arena refcounts and the borrowed ByteBuffer's
# copy-on-write are exactly what ASan/LSan (leaked pins) and TSan
# (cross-thread release of the last view) exist to check.
ctest --test-dir "${BUILD}" --output-on-failure -L shm
ctest --test-dir "${BUILD}" --output-on-failure -LE "fault|obs|pipeline|shm" "$@"
