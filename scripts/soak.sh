#!/usr/bin/env bash
# Many-seed soak sweep over the fault-injection suites.
#
#   scripts/soak.sh             # 20 seed bases against ./build
#   scripts/soak.sh 50          # 50 seed bases
#   scripts/soak.sh 20 build-x  # against an alternate build directory
#
# Each round exports SRPC_SOAK_SEED_BASE so soak_test and the pipelining
# torture matrix (pipeline_fault_test's seeded chaos sweep) derive disjoint
# per-iteration seed schedules, then runs every `fault`-, `shm`- and
# `recovery`-labelled ctest (crash-point matrix, partition/timeout suites,
# pipeline reorder/dup torture, zero-copy lane pin-leak checks, the
# kill-and-restart reincarnation matrix, soak). Any failure reproduces
# deterministically from the seed base printed in the trace.
set -euo pipefail

ROUNDS="${1:-20}"
BUILD="${2:-build}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${ROOT}/${BUILD#"${ROOT}/"}"

if [ ! -d "${BUILD}" ]; then
  echo "soak: build directory ${BUILD} not found (run cmake first)" >&2
  exit 2
fi

# A fixed stride keeps the sweep reproducible; 0x9E3779B9 spreads the
# bases far apart so per-iteration seeds never collide across rounds.
BASE=$((0x50AB5EED))
STRIDE=$((0x9E3779B9))

fails=0
for ((round = 0; round < ROUNDS; ++round)); do
  seed=$(( (BASE + round * STRIDE) & 0xFFFFFFFF ))
  printf 'soak round %d/%d: SRPC_SOAK_SEED_BASE=0x%08x\n' \
    "$((round + 1))" "${ROUNDS}" "${seed}"
  if ! SRPC_SOAK_SEED_BASE="$(printf '0x%08x' "${seed}")" \
      ctest --test-dir "${BUILD}" --output-on-failure -L 'fault|shm|recovery'; then
    echo "soak: FAILED at seed base $(printf '0x%08x' "${seed}")" >&2
    fails=$((fails + 1))
  fi
done

if [ "${fails}" -gt 0 ]; then
  echo "soak: ${fails}/${ROUNDS} rounds failed" >&2
  exit 1
fi
echo "soak: all ${ROUNDS} rounds passed"
