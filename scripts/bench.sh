#!/usr/bin/env bash
# Build and run the full benchmark suite; every binary prints its paper
# table and drops a machine-readable BENCH_<name>.json into the output
# directory (bench-results/ by default).
#
#   scripts/bench.sh                 # all benches, full size
#   scripts/bench.sh fig7            # only binaries matching "fig7"
#   SRPC_BENCH_NODES=1023 scripts/bench.sh   # scaled-down trees
set -euo pipefail

FILTER="${1:-}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${ROOT}/build"
OUT="${SRPC_BENCH_OUT:-${ROOT}/bench-results}"

BENCHES=(
  fig4_methods
  fig5_callbacks
  fig6_closure
  fig7_update
  fig8_multisession
  fig9_pipeline
  table1_allocation
  micro_xdr
  micro_fault
  ablation_alloc
  ablation_closure_shape
  ablation_alloc_batch
)

cmake -B "${BUILD}" -S "${ROOT}" -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${BUILD}" -j "$(nproc)" --target "${BENCHES[@]}"

mkdir -p "${OUT}"
cd "${OUT}"
for b in "${BENCHES[@]}"; do
  if [ -n "${FILTER}" ] && [[ "${b}" != *"${FILTER}"* ]]; then continue; fi
  echo "=== ${b} ==="
  "${BUILD}/bench/${b}"
done
"${ROOT}/scripts/bench_summary.sh" "${OUT}" || true
echo "results in ${OUT}:"
ls -1 "${OUT}"/BENCH_*.json 2>/dev/null || echo "  (no JSON emitted)"
