// Rich data types over smart RPC: inline arrays, nested structs, mixed
// scalars, and pointer arrays — everything the descriptor system can say,
// exercised end to end through faults and write-back.
#include <gtest/gtest.h>

#include <cmath>

#include "core/smart_rpc.hpp"

namespace srpc {
namespace {

// A "sensor record": nested header, fixed matrix, link to the next record.
struct Header {
  std::uint32_t id;
  std::uint16_t flags;
  bool valid;
};

struct Record {
  Header header;
  double matrix[4];
  std::int32_t counts[3];
  Record* next;
};

class RichTypesTest : public ::testing::Test {
 protected:
  RichTypesTest() : world_([] {
          WorldOptions options;
          options.cost = CostModel::zero();
          return options;
        }()) {
    a_ = &world_.create_space("A");
    b_ = &world_.create_space("B");

    auto header = world_.describe<Header>("Header");
    header.field("id", &Header::id)
        .field("flags", &Header::flags)
        .field("valid", &Header::valid);
    world_.register_type(header).status().check();

    auto record = world_.describe<Record>("Record");
    record.struct_field("header", &Record::header,
                        world_.host_types().find<Header>().value())
        .array_field("matrix", &Record::matrix)
        .array_field("counts", &Record::counts)
        .pointer_field("next", &Record::next, record.id());
    world_.register_type(record).status().check();
  }

  Result<Record*> make_record(Runtime& rt, std::uint32_t id) {
    auto type = rt.host_types().find<Record>();
    if (!type) return type.status();
    auto mem = rt.heap().allocate(type.value());
    if (!mem) return mem.status();
    auto* r = static_cast<Record*>(mem.value());
    r->header = {id, static_cast<std::uint16_t>(id * 3), id % 2 == 0};
    for (int i = 0; i < 4; ++i) r->matrix[i] = id + i / 10.0;
    for (int i = 0; i < 3; ++i) r->counts[i] = static_cast<std::int32_t>(id * 10 + i);
    return r;
  }

  World world_;
  AddressSpace* a_ = nullptr;
  AddressSpace* b_ = nullptr;
};

TEST_F(RichTypesTest, HostLayoutVerified) {
  // The builder cross-checked engine offsets against the compiler's; a
  // mismatch would have failed register_type in the constructor. Sanity:
  const TypeId record = world_.host_types().find<Record>().value();
  EXPECT_EQ(world_.layouts().size_of(host_arch(), record), sizeof(Record));
}

TEST_F(RichTypesTest, NestedAndArrayFieldsCrossTheWire) {
  b_->bind("digest",
           [](CallContext&, Record* head) -> double {
             double acc = 0;
             for (Record* r = head; r != nullptr; r = r->next) {
               if (!r->header.valid) continue;
               for (double m : r->matrix) acc += m;
               for (std::int32_t c : r->counts) acc += c;
               acc += r->header.flags;
             }
             return acc;
           })
      .check();

  a_->run([&](Runtime& rt) {
    Record* head = nullptr;
    Record* tail = nullptr;
    double expected = 0;
    for (std::uint32_t id = 0; id < 8; ++id) {
      auto r = make_record(rt, id);
      r.status().check();
      if (tail == nullptr) {
        head = r.value();
      } else {
        tail->next = r.value();
      }
      tail = r.value();
      if (id % 2 == 0) {
        for (double m : r.value()->matrix) expected += m;
        for (std::int32_t c : r.value()->counts) expected += c;
        expected += r.value()->header.flags;
      }
    }

    Session session(rt);
    auto acc = session.call<double>(b_->id(), "digest", head);
    ASSERT_TRUE(acc.is_ok()) << acc.status().to_string();
    EXPECT_DOUBLE_EQ(acc.value(), expected);
    ASSERT_TRUE(session.end().is_ok());
  });
}

TEST_F(RichTypesTest, RemoteWritesToNestedFieldsComeHome) {
  b_->bind("normalise",
           [](CallContext&, Record* r) -> bool {
             double norm = 0;
             for (double m : r->matrix) norm += m * m;
             norm = std::sqrt(norm);
             if (norm == 0) return false;
             for (double& m : r->matrix) m /= norm;
             r->header.valid = true;
             r->header.flags = 0xBEEF;
             return true;
           })
      .check();

  a_->run([&](Runtime& rt) {
    auto r = make_record(rt, 3);  // odd id: valid == false
    r.status().check();
    ASSERT_FALSE(r.value()->header.valid);

    Session session(rt);
    auto ok = session.call<bool>(b_->id(), "normalise", r.value());
    ASSERT_TRUE(ok.is_ok()) << ok.status().to_string();
    EXPECT_TRUE(ok.value());

    // Nested-struct and array writes all landed at home.
    EXPECT_TRUE(r.value()->header.valid);
    EXPECT_EQ(r.value()->header.flags, 0xBEEF);
    double norm = 0;
    for (double m : r.value()->matrix) norm += m * m;
    EXPECT_NEAR(norm, 1.0, 1e-9);
    ASSERT_TRUE(session.end().is_ok());
  });
}

TEST_F(RichTypesTest, WireSizeIsExactForComposites) {
  // Record canonical form: header (4 + 4 + 4) + matrix 4*8 + counts 3*4 +
  // pointer (4 packed in graph payloads, 16 in argument form).
  const TypeId record = world_.host_types().find<Record>().value();
  TypeRegistry& reg = world_.registry();
  (void)reg;
  ValueCodec codec{world_.registry(), world_.layouts()};
  EXPECT_EQ(codec.wire_size(record).value(), 12u + 32u + 12u + 16u);
  EXPECT_EQ(codec.wire_size(record, /*pointer_wire_bytes=*/4).value(),
            12u + 32u + 12u + 4u);
}

}  // namespace
}  // namespace srpc
