// RPC session semantics (paper §3.1): ground-thread bracketing, lifecycle
// errors, invalidation boundaries, and sequential sessions.
#include <gtest/gtest.h>

#include "core/smart_rpc.hpp"
#include "workload/list.hpp"

namespace srpc {
namespace {

using workload::ListNode;

WorldOptions fast_world() {
  WorldOptions options;
  options.cost = CostModel::zero();
  return options;
}

class SessionTest : public ::testing::Test {
 protected:
  SessionTest() : world_(fast_world()) {
    a_ = &world_.create_space("A");
    b_ = &world_.create_space("B");
    workload::register_list_type(world_).status().check();
    b_->bind("sum",
             [](CallContext&, ListNode* head) -> std::int64_t {
               return workload::sum_list(head);
             })
        .check();
  }

  World world_;
  AddressSpace* a_ = nullptr;
  AddressSpace* b_ = nullptr;
};

TEST_F(SessionTest, BeginTwiceFails) {
  a_->run([&](Runtime& rt) {
    ASSERT_TRUE(rt.begin_session().is_ok());
    auto second = rt.begin_session();
    ASSERT_FALSE(second.is_ok());
    EXPECT_EQ(second.status().code(), StatusCode::kFailedPrecondition);
    ASSERT_TRUE(rt.end_session().is_ok());

  });
}

TEST_F(SessionTest, EndWithoutBeginFails) {
  a_->run([&](Runtime& rt) {
    auto ended = rt.end_session();
    ASSERT_FALSE(ended.is_ok());
    EXPECT_EQ(ended.code(), StatusCode::kFailedPrecondition);

  });
}

TEST_F(SessionTest, SessionIdsAreUniquePerGround) {
  a_->run([&](Runtime& rt) {
    auto s1 = rt.begin_session();
    ASSERT_TRUE(s1.is_ok());
    ASSERT_TRUE(rt.end_session().is_ok());
    auto s2 = rt.begin_session();
    ASSERT_TRUE(s2.is_ok());
    EXPECT_NE(s1.value(), s2.value());
    ASSERT_TRUE(rt.end_session().is_ok());

  });
}

TEST_F(SessionTest, DestructorEndsAnOpenSession) {
  a_->run([&](Runtime& rt) {
    {
      Session session(rt);
      EXPECT_NE(rt.current_session(), kNoSession);
      // no explicit end()
    }
    EXPECT_EQ(rt.current_session(), kNoSession);

  });
}

TEST_F(SessionTest, SequentialSessionsStartFromCleanCaches) {
  b_->bind("give",
           [](CallContext& ctx, std::int32_t n) -> ListNode* {
             auto head = workload::build_list(
                 ctx.runtime, static_cast<std::uint32_t>(n),
                 [](std::uint32_t i) { return static_cast<std::int64_t>(i); });
             head.status().check();
             return head.value();
           })
      .check();

  a_->run([&](Runtime& rt) {
    for (int round = 0; round < 3; ++round) {
      Session session(rt);
      auto head = session.call<ListNode*>(b_->id(), "give", 5);
      ASSERT_TRUE(head.is_ok());
      EXPECT_EQ(workload::sum_list(head.value()), 10);
      ASSERT_TRUE(session.end().is_ok());
      EXPECT_EQ(rt.cache().table().size(), 0u);
    }

  });
}

TEST_F(SessionTest, CrossSessionRemotePointerFaultsAreDetected) {
  ListNode* stale = nullptr;
  b_->bind("give_one",
           [](CallContext& ctx, std::int32_t) -> ListNode* {
             auto head = workload::build_list(ctx.runtime, 1, [](std::uint32_t) {
               return std::int64_t{9};
             });
             head.status().check();
             return head.value();
           })
      .check();
  a_->run([&](Runtime& rt) {
    Session session(rt);
    auto head = session.call<ListNode*>(b_->id(), "give_one", 0);
    ASSERT_TRUE(head.is_ok());
    stale = head.value();
    EXPECT_EQ(stale->value, 9);
    ASSERT_TRUE(session.end().is_ok());

    // "The remote pointer is effective only within the session; after the
    // RPC session, the remote pointer has no meaning" (§3.1). The location
    // is protected again and the fault handler refuses to resolve it.
    EXPECT_FALSE(
        rt.cache().on_fault(static_cast<void*>(stale), FaultAccess::kRead));

  });
}

TEST_F(SessionTest, CallsRequireDistinctTargetSpace) {
  a_->run([&](Runtime& rt) {
    Session session(rt);
    auto self_call = typed_call<std::int64_t>(rt, rt.id(), "sum",
                                              static_cast<ListNode*>(nullptr));
    ASSERT_FALSE(self_call.is_ok());
    EXPECT_EQ(self_call.status().code(), StatusCode::kInvalidArgument);
    ASSERT_TRUE(session.end().is_ok());

  });
}

TEST_F(SessionTest, ArgumentSignatureMismatchIsReported) {
  a_->run([&](Runtime& rt) {
    Session session(rt);
    // "sum" expects one pointer; send an extra argument.
    auto wrong = session.call<std::int64_t>(b_->id(), "sum",
                                            static_cast<ListNode*>(nullptr), 5);
    ASSERT_FALSE(wrong.is_ok());
    EXPECT_EQ(wrong.status().code(), StatusCode::kInvalidArgument);
    ASSERT_TRUE(session.end().is_ok());

  });
}

TEST_F(SessionTest, OverlappingSessionsAreRefused) {
  // Ground X's session leaves cached data in B; ground Y's call into B
  // must be refused until X's session ends (one session at a time, §3.1).
  AddressSpace& y = world_.create_space("Y");
  b_->bind("give",
           [](CallContext& ctx, std::int32_t n) -> ListNode* {
             auto head = workload::build_list(
                 ctx.runtime, static_cast<std::uint32_t>(n),
                 [](std::uint32_t) { return std::int64_t{1}; });
             head.status().check();
             return head.value();
           })
      .check();
  // X caches B-homed data (and B itself stays clean) — instead make B the
  // holder: B caches X-homed data by serving a call with a pointer arg.
  b_->bind("hold",
           [](CallContext&, ListNode* head) -> std::int64_t {
             return workload::sum_list(head);  // B now caches X's list
           })
      .check();

  // Phase 1 (ground A): open a session and make B cache A's data.
  a_->run([&](Runtime& rt) {
    auto head = workload::build_list(rt, 4, [](std::uint32_t) { return std::int64_t{2}; });
    head.status().check();
    ASSERT_TRUE(rt.begin_session().is_ok());
    ASSERT_TRUE(typed_call<std::int64_t>(rt, b_->id(), "hold", head.value()).is_ok());
  });

  // Phase 2 (ground Y, while A's session is open): refused by B, and Y's
  // session-end invalidation must NOT disturb A's session (it is scoped).
  y.run([&](Runtime& yrt) {
    Session other(yrt);
    auto refused = other.call<ListNode*>(b_->id(), "give", 1);
    ASSERT_FALSE(refused.is_ok());
    EXPECT_EQ(refused.status().code(), StatusCode::kFailedPrecondition);
    ASSERT_TRUE(other.end().is_ok());
  });

  // Phase 3: A's session still works and ends cleanly...
  a_->run([&](Runtime& rt) {
    EXPECT_NE(rt.current_session(), kNoSession);
    ASSERT_TRUE(rt.end_session().is_ok());
  });

  // ...after which Y can use B freely.
  y.run([&](Runtime& yrt) {
    Session other(yrt);
    auto allowed = other.call<ListNode*>(b_->id(), "give", 1);
    EXPECT_TRUE(allowed.is_ok()) << allowed.status().to_string();
    ASSERT_TRUE(other.end().is_ok());
  });
}

TEST_F(SessionTest, HandlerExceptionsDoNotExist_ButErrorsPropagate) {
  b_->bind("fail",
           [](CallContext&, std::int32_t) -> std::int32_t { return 7; })
      .check();
  a_->run([&](Runtime& rt) {
    Session session(rt);
    // Wrong result type expectation: the reply decodes short and errors.
    auto wrong = session.call<std::string>(b_->id(), "fail", 1);
    ASSERT_FALSE(wrong.is_ok());
    ASSERT_TRUE(session.end().is_ok());

  });
}

}  // namespace
}  // namespace srpc
