// Deadline behaviour under message loss: a lost FETCH_REPLY, a lost
// write-back ack, and a lost invalidation ack must each surface
// DEADLINE_EXCEEDED within the configured bound — never hang the caller —
// and a graceful abort must leave the runtime reusable for a fresh session.
#include <gtest/gtest.h>

#include <chrono>

#include "core/smart_rpc.hpp"
#include "net/fault_transport.hpp"
#include "workload/list.hpp"

namespace srpc {
namespace {

using workload::ListNode;
using Clock = std::chrono::steady_clock;

// Generous ceiling for "bounded": the aggressive policy gives up after at
// most 250 ms per request, so anything near this limit means a real hang.
constexpr auto kBound = std::chrono::seconds(5);

WorldOptions timeout_world() {
  WorldOptions options;
  options.cost = CostModel::zero();
  options.cache.closure_bytes = 0;  // every remote datum needs a FETCH
  options.fault_injection = true;
  options.timeouts = TimeoutConfig::aggressive();
  return options;
}

class TimeoutTest : public ::testing::Test {
 protected:
  TimeoutTest() : world_(timeout_world()) {
    a_ = &world_.create_space("A");
    b_ = &world_.create_space("B");
    workload::register_list_type(world_).status().check();
    b_->bind("sum",
             [](CallContext&, ListNode* head) -> std::int64_t {
               return workload::sum_list(head);
             })
        .check();
    b_->bind("head", [this](CallContext&) -> ListNode* { return remote_head_; })
        .check();
    b_->bind("sumall",
             [this](CallContext&) -> std::int64_t {
               return workload::sum_list(remote_head_);
             })
        .check();
    b_->run([&](Runtime& rt) {
      auto head = workload::build_list(rt, 3, [](std::uint32_t i) {
        return static_cast<std::int64_t>(10 + i);
      });
      head.status().check();
      remote_head_ = head.value();
    });
    fault_ = world_.fault();
  }

  ~TimeoutTest() override { fault_->disarm(); }

  // Drops every message of `kind` until disarm().
  void drop_all(MessageType kind) {
    FaultOptions opts;
    opts.drop = 1.0;
    fault_->target({kind});
    fault_->arm(opts);
  }

  // A fresh session must work end to end once injection is off.
  void expect_fresh_session_works(Runtime& rt) {
    Session session(rt);
    auto head = typed_call<ListNode*>(rt, 1, "head");
    ASSERT_TRUE(head.is_ok()) << head.status().to_string();
    ASSERT_TRUE(rt.prefetch(head.value(), 1 << 16).is_ok());
    EXPECT_EQ(workload::sum_list(head.value()), 10 + 11 + 12);
    ASSERT_TRUE(session.end().is_ok());
  }

  World world_;
  AddressSpace* a_ = nullptr;
  AddressSpace* b_ = nullptr;
  FaultTransport* fault_ = nullptr;
  ListNode* remote_head_ = nullptr;
};

TEST_F(TimeoutTest, LostFetchReplyReturnsDeadlineExceeded) {
  a_->run([&](Runtime& rt) {
    ASSERT_TRUE(rt.begin_session().is_ok());
    auto head = typed_call<ListNode*>(rt, 1, "head");
    ASSERT_TRUE(head.is_ok()) << head.status().to_string();

    drop_all(MessageType::kFetchReply);
    const auto start = Clock::now();
    auto st = rt.prefetch(head.value(), 0);
    const auto elapsed = Clock::now() - start;
    ASSERT_FALSE(st.is_ok());
    EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded) << st.to_string();
    EXPECT_LT(elapsed, kBound);

    // Graceful abort (the fetch-reply drop does not affect INVALIDATE/ack),
    // then a disarmed wire must give a fully working session again.
    ASSERT_TRUE(rt.abort_session().is_ok());
    fault_->disarm();
    expect_fresh_session_works(rt);
    EXPECT_GE(rt.stats().sessions_aborted, 1u);
  });
}

TEST_F(TimeoutTest, LostPrepareAckRollsBackCleanly) {
  a_->run([&](Runtime& rt) {
    ASSERT_TRUE(rt.begin_session().is_ok());
    auto head = typed_call<ListNode*>(rt, 1, "head");
    ASSERT_TRUE(head.is_ok()) << head.status().to_string();
    // Make the head resident and dirty so session end must write it back.
    ASSERT_TRUE(rt.prefetch(head.value(), 1 << 16).is_ok());
    head.value()->value = 999;

    drop_all(MessageType::kWbPrepareAck);
    const auto start = Clock::now();
    auto ended = rt.end_session();
    const auto elapsed = Clock::now() - start;
    ASSERT_FALSE(ended.is_ok());
    EXPECT_EQ(ended.code(), StatusCode::kDeadlineExceeded) << ended.to_string();
    EXPECT_LT(elapsed, kBound);

    ASSERT_TRUE(rt.abort_session().is_ok());
    fault_->disarm();
    // Two-phase write-back: the PREPARE may have been staged at the home
    // but was never committed, and the abort discarded the stage — the
    // home must still hold the original value, not the half-shipped 999.
    Session session(rt);
    auto sum = typed_call<std::int64_t>(rt, 1, "sumall");
    ASSERT_TRUE(sum.is_ok()) << sum.status().to_string();
    EXPECT_EQ(sum.value(), 10 + 11 + 12);
    ASSERT_TRUE(session.end().is_ok());
  });
}

TEST_F(TimeoutTest, LostCommitAckConvergesOnRetry) {
  a_->run([&](Runtime& rt) {
    ASSERT_TRUE(rt.begin_session().is_ok());
    auto head = typed_call<ListNode*>(rt, 1, "head");
    ASSERT_TRUE(head.is_ok()) << head.status().to_string();
    ASSERT_TRUE(rt.prefetch(head.value(), 1 << 16).is_ok());
    head.value()->value = 777;

    // The COMMIT itself lands (the home applies), only its ack is eaten:
    // end_session must report failure and stay retryable.
    drop_all(MessageType::kWbCommitAck);
    auto ended = rt.end_session();
    ASSERT_FALSE(ended.is_ok());
    EXPECT_EQ(ended.code(), StatusCode::kDeadlineExceeded) << ended.to_string();

    // Once the wire heals, retrying end() converges: the home re-acks the
    // duplicate prepare/commit and the value is applied exactly as written.
    fault_->disarm();
    ASSERT_TRUE(rt.end_session().is_ok());
    Session session(rt);
    auto sum = typed_call<std::int64_t>(rt, 1, "sumall");
    ASSERT_TRUE(sum.is_ok()) << sum.status().to_string();
    EXPECT_EQ(sum.value(), 777 + 11 + 12);
    ASSERT_TRUE(session.end().is_ok());
  });
}

// Home partitioned while end_session() runs: the caller must get a bounded
// typed failure, the session must be abortable (tombstoning it), and the
// home must not be left half-committed — its data still reads as the
// original after the partition heals.
TEST_F(TimeoutTest, PartitionDuringEndSessionLeavesNoHalfCommit) {
  a_->run([&](Runtime& rt) {
    ASSERT_TRUE(rt.begin_session().is_ok());
    auto head = typed_call<ListNode*>(rt, 1, "head");
    ASSERT_TRUE(head.is_ok()) << head.status().to_string();
    ASSERT_TRUE(rt.prefetch(head.value(), 1 << 16).is_ok());
    head.value()->value = 555;

    fault_->partition(1);  // sever A <-> B both directions
    const auto start = Clock::now();
    auto ended = rt.end_session();
    const auto elapsed = Clock::now() - start;
    ASSERT_FALSE(ended.is_ok());
    EXPECT_TRUE(ended.code() == StatusCode::kDeadlineExceeded ||
                ended.code() == StatusCode::kUnavailable ||
                ended.code() == StatusCode::kSpaceDead)
        << ended.to_string();
    EXPECT_LT(elapsed, kBound);

    // Abort while still partitioned: the local unwind completes, bounded,
    // and the unreachable peer is reported (it relies on tombstones).
    const auto abort_start = Clock::now();
    EXPECT_FALSE(rt.abort_session().is_ok());
    EXPECT_LT(Clock::now() - abort_start, kBound);
    EXPECT_GE(rt.stats().sessions_aborted, 1u);

    fault_->heal(1);
    expect_fresh_session_works(rt);
    // No half-commit: the orderly end never reached COMMIT, so the home
    // still serves the original list.
    Session session(rt);
    auto sum = typed_call<std::int64_t>(rt, 1, "sumall");
    ASSERT_TRUE(sum.is_ok()) << sum.status().to_string();
    EXPECT_EQ(sum.value(), 10 + 11 + 12);
    ASSERT_TRUE(session.end().is_ok());
  });
}

// Regression for the silent-swallow in ~Session: when the implicit end
// fails and the abort fallback cannot invalidate peers either, the failure
// must be recorded in RuntimeStats, not just logged.
TEST_F(TimeoutTest, SessionDtorRecordsDoubleTeardownFailure) {
  a_->run([&](Runtime& rt) {
    const auto before = rt.stats().session_teardown_failures;
    {
      Session session(rt);
      auto head = typed_call<ListNode*>(rt, 1, "head");
      ASSERT_TRUE(head.is_ok()) << head.status().to_string();
      ASSERT_TRUE(rt.prefetch(head.value(), 1 << 16).is_ok());
      head.value()->value = 321;
      // Cut the home off entirely: end() fails (no prepare ack) and the
      // abort fallback's own unwind hits the same dead wire.
      fault_->partition(1);
    }
    EXPECT_GE(rt.stats().session_teardown_failures, before + 1);
    fault_->heal(1);
    expect_fresh_session_works(rt);
  });
}

TEST_F(TimeoutTest, LostInvalidateAckReturnsDeadlineExceeded) {
  a_->run([&](Runtime& rt) {
    ASSERT_TRUE(rt.begin_session().is_ok());
    auto head = typed_call<ListNode*>(rt, 1, "head");
    ASSERT_TRUE(head.is_ok()) << head.status().to_string();
    ASSERT_TRUE(rt.prefetch(head.value(), 1 << 16).is_ok());

    drop_all(MessageType::kInvalidateAck);
    const auto start = Clock::now();
    auto ended = rt.end_session();
    const auto elapsed = Clock::now() - start;
    ASSERT_FALSE(ended.is_ok());
    EXPECT_EQ(ended.code(), StatusCode::kDeadlineExceeded) << ended.to_string();
    EXPECT_LT(elapsed, kBound);

    // Abort's invalidation multicast also loses its acks: the local unwind
    // still completes, bounded, but the failure to reach the peer is now
    // reported instead of swallowed.
    const auto abort_start = Clock::now();
    EXPECT_FALSE(rt.abort_session().is_ok());
    EXPECT_LT(Clock::now() - abort_start, kBound);
    fault_->disarm();
    expect_fresh_session_works(rt);
  });
}

TEST_F(TimeoutTest, RetransmitRecoversSingleLostReply) {
  a_->run([&](Runtime& rt) {
    Session session(rt);
    auto head = typed_call<ListNode*>(rt, 1, "head");
    ASSERT_TRUE(head.is_ok()) << head.status().to_string();

    const auto retransmits_before = rt.endpoint().retransmits();
    fault_->drop_next(MessageType::kFetchReply, 1);
    // First attempt's reply is eaten; the idempotent FETCH retransmits with
    // the same wire id and the second reply completes the prefetch.
    ASSERT_TRUE(rt.prefetch(head.value(), 1 << 16).is_ok());
    EXPECT_GE(rt.endpoint().retransmits(), retransmits_before + 1);
    EXPECT_EQ(workload::sum_list(head.value()), 10 + 11 + 12);
    ASSERT_TRUE(session.end().is_ok());
  });
  EXPECT_EQ(fault_->stats().dropped, 1u);
}

// The deadline machinery must not fire on a healthy wire: a full session
// with fetch, write-back, and invalidation completes with zero retransmits.
TEST_F(TimeoutTest, HealthyWireNeverTripsDeadlines) {
  a_->run([&](Runtime& rt) {
    expect_fresh_session_works(rt);
    EXPECT_EQ(rt.endpoint().retransmits(), 0u);
    EXPECT_EQ(rt.stats().sessions_aborted, 0u);
  });
}

}  // namespace
}  // namespace srpc
