// Introspection dumps: shape checks (exact formats are for humans, but the
// load-bearing facts must be present).
#include <gtest/gtest.h>

#include "core/debug.hpp"
#include "core/smart_rpc.hpp"
#include "workload/list.hpp"

namespace srpc {
namespace {

using workload::ListNode;

TEST(DebugDump, ShowsTableEntriesAndStates) {
  WorldOptions options;
  options.cost = CostModel::zero();
  options.cache.page_count = 64;
  World world(options);
  auto& a = world.create_space("A");
  auto& b = world.create_space("B");
  workload::register_list_type(world).status().check();
  b.bind("sum",
         [](CallContext&, ListNode* head) -> std::int64_t {
           return workload::sum_list(head);
         })
      .check();

  a.run([&](Runtime& rt) {
    auto head = workload::build_list(rt, 5, [](std::uint32_t i) {
      return static_cast<std::int64_t>(i);
    });
    head.status().check();
    Session session(rt);
    session.call<std::int64_t>(b.id(), "sum", head.value()).status().check();

    const std::string heap = dump_heap(rt);
    EXPECT_NE(heap.find("5 allocations"), std::string::npos);

    const std::string counters = dump_counters(rt);
    EXPECT_NE(counters.find("calls sent=1"), std::string::npos);

    b.run([&](Runtime& brt) {
      const std::string table = dump_allocation_table(brt);
      EXPECT_NE(table.find("5 entries"), std::string::npos);
      EXPECT_NE(table.find("long pointer"), std::string::npos);
      const std::string pages = dump_page_states(brt);
      EXPECT_NE(pages.find("clean="), std::string::npos);
    });
    session.end().check();

    // After invalidation the callee's table is empty again.
    b.run([&](Runtime& brt) {
      EXPECT_NE(dump_allocation_table(brt).find("0 entries"), std::string::npos);
    });
  });
}

}  // namespace
}  // namespace srpc
