// Type system: registry, layout engine (host + foreign arch), value codec.
#include <gtest/gtest.h>

#include <cstring>

#include "types/arch.hpp"
#include "types/layout.hpp"
#include "types/type_builder.hpp"
#include "types/type_registry.hpp"
#include "types/value_codec.hpp"

namespace srpc {
namespace {

TEST(TypeRegistry, ScalarsArePreRegistered) {
  TypeRegistry registry;
  auto id = registry.find_by_name("i64");
  ASSERT_TRUE(id.is_ok());
  EXPECT_EQ(id.value(), TypeRegistry::scalar_id(ScalarType::kI64));
  EXPECT_EQ(registry.get(id.value()).kind(), TypeKind::kScalar);
}

TEST(TypeRegistry, RejectsDuplicateNames) {
  TypeRegistry registry;
  ASSERT_TRUE(registry.declare_struct("Node").is_ok());
  auto dup = registry.declare_struct("Node");
  ASSERT_FALSE(dup.is_ok());
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
}

TEST(TypeRegistry, PointerTypesAreInterned) {
  TypeRegistry registry;
  const TypeId i32 = TypeRegistry::scalar_id(ScalarType::kI32);
  EXPECT_EQ(registry.pointer_to(i32), registry.pointer_to(i32));
  EXPECT_NE(registry.pointer_to(i32),
            registry.pointer_to(TypeRegistry::scalar_id(ScalarType::kI64)));
}

TEST(TypeRegistry, ArrayTypesAreInternedByElementAndCount) {
  TypeRegistry registry;
  const TypeId i8 = TypeRegistry::scalar_id(ScalarType::kI8);
  EXPECT_EQ(registry.array_of(i8, 16), registry.array_of(i8, 16));
  EXPECT_NE(registry.array_of(i8, 16), registry.array_of(i8, 17));
}

TEST(TypeRegistry, SelfReferentialStructViaDeclare) {
  TypeRegistry registry;
  auto id = registry.declare_struct("Node");
  ASSERT_TRUE(id.is_ok());
  const TypeId ptr = registry.pointer_to(id.value());
  ASSERT_TRUE(registry
                  .define_struct(id.value(),
                                 {{"next", ptr},
                                  {"value", TypeRegistry::scalar_id(ScalarType::kI64)}})
                  .is_ok());
  EXPECT_FALSE(registry.get(id.value()).is_incomplete());
}

TEST(LayoutEngine, HostStructMatchesCompiler) {
  struct Node {
    Node* next;
    std::int32_t a;
    std::int64_t b;
    std::uint8_t c;
  };
  TypeRegistry registry;
  LayoutEngine layouts(registry);
  HostStructBuilder<Node> builder(registry, layouts, "Node");
  builder.pointer_field("next", &Node::next, builder.id())
      .field("a", &Node::a)
      .field("b", &Node::b)
      .field("c", &Node::c);
  auto id = builder.build();
  ASSERT_TRUE(id.is_ok()) << id.status().to_string();
  auto layout = layouts.layout_of(host_arch(), id.value());
  ASSERT_TRUE(layout.is_ok());
  EXPECT_EQ(layout.value()->size, sizeof(Node));
  EXPECT_EQ(layout.value()->align, alignof(Node));
}

TEST(LayoutEngine, Sparc32ShrinksPointers) {
  TypeRegistry registry;
  LayoutEngine layouts(registry);
  auto node = registry.declare_struct("N");
  ASSERT_TRUE(node.is_ok());
  const TypeId ptr = registry.pointer_to(node.value());
  ASSERT_TRUE(registry
                  .define_struct(node.value(),
                                 {{"left", ptr},
                                  {"right", ptr},
                                  {"data", TypeRegistry::scalar_id(ScalarType::kI64)}})
                  .is_ok());
  // The paper's node: two 4-byte pointers + 8-byte data = 16 bytes on SPARC.
  EXPECT_EQ(layouts.size_of(sparc32_arch(), node.value()), 16u);
  // Same logical type, 24 bytes on the 64-bit host.
  EXPECT_EQ(layouts.size_of(host_arch(), node.value()), 24u);
}

TEST(LayoutEngine, RejectsValueSelfContainment) {
  TypeRegistry registry;
  LayoutEngine layouts(registry);
  auto id = registry.declare_struct("Recursive");
  ASSERT_TRUE(id.is_ok());
  ASSERT_TRUE(registry.define_struct(id.value(), {{"self", id.value()}}).is_ok());
  auto layout = layouts.layout_of(host_arch(), id.value());
  ASSERT_FALSE(layout.is_ok());
  EXPECT_EQ(layout.status().code(), StatusCode::kInvalidArgument);
}

TEST(LayoutEngine, RejectsIncompleteStruct) {
  TypeRegistry registry;
  LayoutEngine layouts(registry);
  auto id = registry.declare_struct("Pending");
  ASSERT_TRUE(id.is_ok());
  auto layout = layouts.layout_of(host_arch(), id.value());
  ASSERT_FALSE(layout.is_ok());
  EXPECT_EQ(layout.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ReadWriteScaledUint, BothEndiannesses) {
  std::uint8_t buf[4];
  write_scaled_uint(buf, 4, Endian::kBig, 0x01020304U);
  EXPECT_EQ(buf[0], 0x01);
  EXPECT_EQ(buf[3], 0x04);
  EXPECT_EQ(read_scaled_uint(buf, 4, Endian::kBig), 0x01020304U);
  write_scaled_uint(buf, 4, Endian::kLittle, 0x01020304U);
  EXPECT_EQ(buf[0], 0x04);
  EXPECT_EQ(read_scaled_uint(buf, 4, Endian::kLittle), 0x01020304U);
}

// Codec fixture with a small struct on both architectures.
class ValueCodecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto id = registry_.declare_struct("Mix");
    ASSERT_TRUE(id.is_ok());
    mix_ = id.value();
    ASSERT_TRUE(registry_
                    .define_struct(mix_,
                                   {{"a", TypeRegistry::scalar_id(ScalarType::kI16)},
                                    {"b", TypeRegistry::scalar_id(ScalarType::kF64)},
                                    {"c", TypeRegistry::scalar_id(ScalarType::kU8)},
                                    {"d", TypeRegistry::scalar_id(ScalarType::kBool)}})
                    .is_ok());
  }

  TypeRegistry registry_;
  LayoutEngine layouts_{registry_};
  ValueCodec codec_{registry_, layouts_};
  TypeId mix_ = kInvalidTypeId;
};

TEST_F(ValueCodecTest, HostRoundTrip) {
  struct Mix {
    std::int16_t a;
    double b;
    std::uint8_t c;
    bool d;
  };
  ASSERT_EQ(layouts_.size_of(host_arch(), mix_), sizeof(Mix));
  Mix in{-123, 2.5, 200, true};
  ByteBuffer wire;
  xdr::Encoder enc(wire);
  NullOnlyFieldCodec no_pointers;
  ASSERT_TRUE(codec_.encode(host_arch(), mix_, &in, enc, no_pointers).is_ok());

  Mix out{};
  xdr::Decoder dec(wire);
  ASSERT_TRUE(codec_.decode(host_arch(), mix_, &out, dec, no_pointers).is_ok());
  EXPECT_EQ(out.a, in.a);
  EXPECT_EQ(out.b, in.b);
  EXPECT_EQ(out.c, in.c);
  EXPECT_EQ(out.d, in.d);
}

TEST_F(ValueCodecTest, HostToSparcConversion) {
  struct Mix {
    std::int16_t a;
    double b;
    std::uint8_t c;
    bool d;
  };
  Mix in{-7, -1.25, 99, true};
  ByteBuffer wire;
  xdr::Encoder enc(wire);
  NullOnlyFieldCodec no_pointers;
  ASSERT_TRUE(codec_.encode(host_arch(), mix_, &in, enc, no_pointers).is_ok());

  // Decode into a synthetic big-endian image, then read fields manually.
  auto sparc_layout = layouts_.layout_of(sparc32_arch(), mix_);
  ASSERT_TRUE(sparc_layout.is_ok());
  std::vector<std::uint8_t> image(sparc_layout.value()->size, 0);
  xdr::Decoder dec(wire);
  ASSERT_TRUE(
      codec_.decode(sparc32_arch(), mix_, image.data(), dec, no_pointers).is_ok());

  const auto& offsets = sparc_layout.value()->field_offsets;
  const std::uint64_t raw_a = read_scaled_uint(image.data() + offsets[0], 2, Endian::kBig);
  EXPECT_EQ(static_cast<std::int16_t>(raw_a), -7);
  const std::uint64_t raw_b = read_scaled_uint(image.data() + offsets[1], 8, Endian::kBig);
  double b = 0;
  std::memcpy(&b, &raw_b, sizeof b);
  EXPECT_EQ(b, -1.25);
  EXPECT_EQ(image[offsets[2]], 99);
  EXPECT_EQ(image[offsets[3]], 1);
}

TEST_F(ValueCodecTest, WireSizeIsDeterministic) {
  // i16->4, f64->8, u8->4, bool->4 = 20 canonical bytes.
  auto size = codec_.wire_size(mix_);
  ASSERT_TRUE(size.is_ok());
  EXPECT_EQ(size.value(), 20u);
}

TEST_F(ValueCodecTest, NullOnlyCodecRejectsPointers) {
  auto node = registry_.declare_struct("P");
  ASSERT_TRUE(node.is_ok());
  ASSERT_TRUE(
      registry_.define_struct(node.value(), {{"p", registry_.pointer_to(mix_)}}).is_ok());
  struct P {
    void* p;
  };
  P in{reinterpret_cast<void*>(0x1234)};
  ByteBuffer wire;
  xdr::Encoder enc(wire);
  NullOnlyFieldCodec no_pointers;
  auto s = codec_.encode(host_arch(), node.value(), &in, enc, no_pointers);
  ASSERT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
}

TEST(HostStructBuilder, ArrayAndNestedFields) {
  struct Inner {
    std::int32_t x;
    std::int32_t y;
  };
  struct Outer {
    Inner inner;
    double values[3];
    std::uint16_t tag;
  };
  TypeRegistry registry;
  LayoutEngine layouts(registry);
  HostStructBuilder<Inner> inner_builder(registry, layouts, "Inner");
  inner_builder.field("x", &Inner::x).field("y", &Inner::y);
  auto inner_id = inner_builder.build();
  ASSERT_TRUE(inner_id.is_ok());

  HostStructBuilder<Outer> outer_builder(registry, layouts, "Outer");
  outer_builder.struct_field("inner", &Outer::inner, inner_id.value())
      .array_field("values", &Outer::values)
      .field("tag", &Outer::tag);
  auto outer_id = outer_builder.build();
  ASSERT_TRUE(outer_id.is_ok()) << outer_id.status().to_string();
  EXPECT_EQ(layouts.size_of(host_arch(), outer_id.value()), sizeof(Outer));
}

}  // namespace
}  // namespace srpc
