// Graph payload codec: compact tagged pointers, wide mode, fixups, canary.
#include <gtest/gtest.h>

#include <cstring>
#include <map>

#include "core/graph_payload.hpp"
#include "types/type_registry.hpp"

namespace srpc {
namespace {

struct Node {
  Node* next;
  std::int64_t value;
};

// Encoder-side translator over a fixed address->identity map.
class MapTranslator final : public PointerTranslator {
 public:
  explicit MapTranslator(SpaceId space) : space_(space) {}

  void put(std::uint64_t ordinary, const LongPointer& id) { map_[ordinary] = id; }

  Result<LongPointer> unswizzle(std::uint64_t ordinary, TypeId) override {
    auto it = map_.find(ordinary);
    if (it == map_.end()) return not_found("unknown ordinary pointer");
    return it->second;
  }
  Result<std::uint64_t> swizzle(const LongPointer&, TypeId) override {
    return internal_error("encode-only translator");
  }

 private:
  SpaceId space_;
  std::map<std::uint64_t, LongPointer> map_;
};

// Decoder-side sink collecting everything into plain buffers.
class CollectSink : public GraphSink {
 public:
  struct Slot {
    LongPointer id;
    std::vector<std::uint8_t> bytes;
  };

  explicit CollectSink(const LayoutEngine& layouts) : layouts_(layouts) {}

  Result<void*> prepare(std::uint32_t index, const LongPointer& id) override {
    if (slots_.size() <= index) slots_.resize(index + 1);
    slots_[index].id = id;
    slots_[index].bytes.assign(layouts_.size_of(host_arch(), id.type), 0);
    return slots_[index].bytes.data();
  }

  Result<std::uint64_t> address_of(std::uint32_t index) override {
    // Local address = a synthetic stable number derived from the index.
    return 0xA0000 + index * 0x100;
  }

  Result<std::uint64_t> swizzle(const LongPointer& target, TypeId) override {
    external.push_back(target);
    return 0xE0000 + external.size() * 0x100;
  }

  std::vector<Slot> slots_;
  std::vector<LongPointer> external;

 private:
  const LayoutEngine& layouts_;
};

class GraphPayloadTest : public ::testing::Test {
 protected:
  GraphPayloadTest() : layouts_(registry_), codec_{registry_, layouts_} {
    auto node = registry_.declare_struct("GNode");
    node.status().check();
    node_ = node.value();
    registry_
        .define_struct(node_, {{"next", registry_.pointer_to(node_)},
                               {"value", TypeRegistry::scalar_id(ScalarType::kI64)}})
        .check();
  }

  TypeRegistry registry_;
  LayoutEngine layouts_;
  ValueCodec codec_;
  TypeId node_ = kInvalidTypeId;
};

TEST_F(GraphPayloadTest, IntraPayloadPointersRoundTrip) {
  // Two nodes; first points to second (intra tag expected).
  Node n2{nullptr, 22};
  Node n1{&n2, 11};
  MapTranslator translator(5);
  translator.put(reinterpret_cast<std::uint64_t>(&n2), {5, 0x2000, node_});

  const GraphObjectRef objects[] = {{0x1000, node_, &n1}, {0x2000, node_, &n2}};
  ByteBuffer wire;
  ASSERT_TRUE(encode_graph_payload(codec_, host_arch(), 5, objects, translator, wire)
                  .is_ok());

  CollectSink sink(layouts_);
  ASSERT_TRUE(decode_graph_payload(codec_, host_arch(), wire, sink).is_ok());
  ASSERT_EQ(sink.slots_.size(), 2u);
  EXPECT_EQ(sink.slots_[0].id, (LongPointer{5, 0x1000, node_}));
  EXPECT_EQ(sink.slots_[1].id, (LongPointer{5, 0x2000, node_}));
  EXPECT_TRUE(sink.external.empty());  // intra resolution, no swizzle calls

  const Node* decoded1 = reinterpret_cast<const Node*>(sink.slots_[0].bytes.data());
  EXPECT_EQ(decoded1->value, 11);
  // Pointer field resolved via address_of(1).
  EXPECT_EQ(reinterpret_cast<std::uint64_t>(decoded1->next), 0xA0000u + 0x100);
}

TEST_F(GraphPayloadTest, SameSpaceDeltaPointers) {
  // Node points to a same-space datum OUTSIDE the payload, 8-aligned.
  Node n1{reinterpret_cast<Node*>(0x5555), 1};
  MapTranslator translator(5);
  translator.put(0x5555, {5, 0x1000 + 64, node_});  // delta 64 from base

  const GraphObjectRef objects[] = {{0x1000, node_, &n1}};
  ByteBuffer wire;
  ASSERT_TRUE(encode_graph_payload(codec_, host_arch(), 5, objects, translator, wire)
                  .is_ok());

  CollectSink sink(layouts_);
  ASSERT_TRUE(decode_graph_payload(codec_, host_arch(), wire, sink).is_ok());
  ASSERT_EQ(sink.external.size(), 1u);
  EXPECT_EQ(sink.external[0], (LongPointer{5, 0x1000 + 64, node_}));
}

TEST_F(GraphPayloadTest, ForeignSpacePointersUseFullForm) {
  Node n1{reinterpret_cast<Node*>(0x7777), 1};
  MapTranslator translator(5);
  translator.put(0x7777, {9, 0xBEEF, node_});  // different home space

  const GraphObjectRef objects[] = {{0x1000, node_, &n1}};
  ByteBuffer wire;
  ASSERT_TRUE(encode_graph_payload(codec_, host_arch(), 5, objects, translator, wire)
                  .is_ok());
  CollectSink sink(layouts_);
  ASSERT_TRUE(decode_graph_payload(codec_, host_arch(), wire, sink).is_ok());
  ASSERT_EQ(sink.external.size(), 1u);
  EXPECT_EQ(sink.external[0], (LongPointer{9, 0xBEEF, node_}));
}

TEST_F(GraphPayloadTest, NullPointersStayNull) {
  Node n1{nullptr, 42};
  MapTranslator translator(5);
  const GraphObjectRef objects[] = {{0x1000, node_, &n1}};
  ByteBuffer wire;
  ASSERT_TRUE(encode_graph_payload(codec_, host_arch(), 5, objects, translator, wire)
                  .is_ok());
  CollectSink sink(layouts_);
  ASSERT_TRUE(decode_graph_payload(codec_, host_arch(), wire, sink).is_ok());
  const Node* decoded = reinterpret_cast<const Node*>(sink.slots_[0].bytes.data());
  EXPECT_EQ(decoded->next, nullptr);
  EXPECT_EQ(decoded->value, 42);
}

TEST_F(GraphPayloadTest, WideModeHandlesHugeAddressSpread) {
  Node n1{nullptr, 1};
  Node n2{nullptr, 2};
  MapTranslator translator(5);
  const GraphObjectRef objects[] = {{0x1000, node_, &n1},
                                    {0x1000 + (8ULL << 32), node_, &n2}};
  ByteBuffer wire;
  ASSERT_TRUE(encode_graph_payload(codec_, host_arch(), 5, objects, translator, wire)
                  .is_ok());
  CollectSink sink(layouts_);
  ASSERT_TRUE(decode_graph_payload(codec_, host_arch(), wire, sink).is_ok());
  ASSERT_EQ(sink.slots_.size(), 2u);
  EXPECT_EQ(sink.slots_[1].id.address, 0x1000 + (8ULL << 32));
}

TEST_F(GraphPayloadTest, TypeFixupsForMixedPayloads) {
  const TypeId other = registry_.array_of(TypeRegistry::scalar_id(ScalarType::kI64), 2);
  Node n1{nullptr, 1};
  std::int64_t pair[2] = {7, 8};
  MapTranslator translator(5);
  const GraphObjectRef objects[] = {{0x1000, node_, &n1}, {0x2000, other, pair}};
  ByteBuffer wire;
  ASSERT_TRUE(encode_graph_payload(codec_, host_arch(), 5, objects, translator, wire)
                  .is_ok());
  CollectSink sink(layouts_);
  ASSERT_TRUE(decode_graph_payload(codec_, host_arch(), wire, sink).is_ok());
  EXPECT_EQ(sink.slots_[0].id.type, node_);
  EXPECT_EQ(sink.slots_[1].id.type, other);
  const auto* decoded = reinterpret_cast<const std::int64_t*>(sink.slots_[1].bytes.data());
  EXPECT_EQ(decoded[0], 7);
  EXPECT_EQ(decoded[1], 8);
}

TEST_F(GraphPayloadTest, SkippedObjectsKeepTheStreamAligned) {
  Node n1{nullptr, 1};
  Node n2{nullptr, 2};
  MapTranslator translator(5);
  const GraphObjectRef objects[] = {{0x1000, node_, &n1}, {0x2000, node_, &n2}};
  ByteBuffer wire;
  ASSERT_TRUE(encode_graph_payload(codec_, host_arch(), 5, objects, translator, wire)
                  .is_ok());

  // A sink that skips the first object: the second must still decode.
  class SkipFirst final : public CollectSink {
   public:
    using CollectSink::CollectSink;
    Result<void*> prepare(std::uint32_t index, const LongPointer& id) override {
      auto dest = CollectSink::prepare(index, id);
      if (!dest) return dest;
      return index == 0 ? Result<void*>(static_cast<void*>(nullptr)) : dest;
    }
  };
  SkipFirst sink(layouts_);
  ASSERT_TRUE(decode_graph_payload(codec_, host_arch(), wire, sink).is_ok());
  const Node* second = reinterpret_cast<const Node*>(sink.slots_[1].bytes.data());
  EXPECT_EQ(second->value, 2);
}

TEST_F(GraphPayloadTest, CorruptionTripsTheCanary) {
  Node n1{nullptr, 1};
  MapTranslator translator(5);
  const GraphObjectRef objects[] = {{0x1000, node_, &n1}};
  ByteBuffer wire;
  ASSERT_TRUE(encode_graph_payload(codec_, host_arch(), 5, objects, translator, wire)
                  .is_ok());
  // Truncate four bytes: decode must fail loudly, not desynchronise.
  ByteBuffer truncated;
  truncated.append(wire.data(), wire.size() - 4);
  CollectSink sink(layouts_);
  auto status = decode_graph_payload(codec_, host_arch(), truncated, sink);
  ASSERT_FALSE(status.is_ok());
}

TEST_F(GraphPayloadTest, EmptyPayloadRoundTrips) {
  MapTranslator translator(5);
  ByteBuffer wire;
  ASSERT_TRUE(
      encode_graph_payload(codec_, host_arch(), 5, {}, translator, wire).is_ok());
  CollectSink sink(layouts_);
  std::vector<LongPointer> ids;
  ASSERT_TRUE(decode_graph_payload(codec_, host_arch(), wire, sink, &ids).is_ok());
  EXPECT_TRUE(ids.empty());
}

TEST_F(GraphPayloadTest, DuplicateAddressesRejected) {
  Node n1{nullptr, 1};
  MapTranslator translator(5);
  const GraphObjectRef objects[] = {{0x1000, node_, &n1}, {0x1000, node_, &n1}};
  ByteBuffer wire;
  auto status =
      encode_graph_payload(codec_, host_arch(), 5, objects, translator, wire);
  ASSERT_FALSE(status.is_ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace srpc
