// Long pointers and the data allocation table (paper §3.2, Table 1).
#include <gtest/gtest.h>

#include "swizzle/allocation_table.hpp"
#include "swizzle/long_pointer.hpp"
#include "xdr/xdr_decoder.hpp"
#include "xdr/xdr_encoder.hpp"

namespace srpc {
namespace {

TEST(LongPointer, NullAndEquality) {
  EXPECT_TRUE(LongPointer::null().is_null());
  LongPointer a{1, 0x1000, 64};
  LongPointer b{1, 0x1000, 64};
  LongPointer c{2, 0x1000, 64};
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  EXPECT_FALSE(a.is_null());
}

TEST(LongPointer, WireRoundTrip) {
  ByteBuffer buf;
  xdr::Encoder enc(buf);
  LongPointer p{42, 0xDEADBEEFCAFEULL, 77};
  encode_long_pointer(enc, p);
  EXPECT_EQ(buf.size(), kLongPointerWireSize);
  xdr::Decoder dec(buf);
  auto out = decode_long_pointer(dec);
  ASSERT_TRUE(out.is_ok());
  EXPECT_EQ(out.value(), p);
}

TEST(LongPointer, HashDistinguishesComponents) {
  LongPointerHash hash;
  LongPointer a{1, 0x1000, 64};
  LongPointer b{1, 0x1008, 64};
  EXPECT_NE(hash(a), hash(b));
}

class AllocationTableTest : public ::testing::Test {
 protected:
  // Builds an entry at a fake local address.
  static AllocationEntry entry(SpaceId space, std::uint64_t home, TypeId type,
                               PageIndex page, std::uint32_t offset,
                               std::uint32_t size, std::uint64_t local) {
    AllocationEntry e;
    e.pointer = {space, home, type};
    e.page = page;
    e.offset = offset;
    e.size = size;
    e.local = reinterpret_cast<std::uint8_t*>(local);
    return e;
  }

  DataAllocationTable table_;
};

// Reproduces the structure of the paper's Table 1: two pointers A and B
// swizzled into page 5 at distinct offsets.
TEST_F(AllocationTableTest, PaperTableOne) {
  const auto a = entry(1, 0xA000, 64, 5, 0, 24, 0x500000);
  const auto b = entry(1, 0xB000, 64, 5, 24, 24, 0x500018);
  ASSERT_TRUE(table_.insert(a).is_ok());
  ASSERT_TRUE(table_.insert(b).is_ok());

  auto on_page = table_.entries_on_page(5);
  ASSERT_EQ(on_page.size(), 2u);
  EXPECT_EQ(on_page[0]->pointer.address, 0xA000u);
  EXPECT_EQ(on_page[0]->offset, 0u);
  EXPECT_EQ(on_page[1]->pointer.address, 0xB000u);
  EXPECT_EQ(on_page[1]->offset, 24u);
  EXPECT_TRUE(table_.entries_on_page(4).empty());
}

TEST_F(AllocationTableTest, ForwardAndReverseLookups) {
  const auto a = entry(1, 0xA000, 64, 0, 0, 24, 0x500000);
  ASSERT_TRUE(table_.insert(a).is_ok());

  const AllocationEntry* found = table_.find({1, 0xA000, 64});
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->local, reinterpret_cast<std::uint8_t*>(0x500000));

  // Identity ignores the type component.
  EXPECT_NE(table_.find({1, 0xA000, 99}), nullptr);
  EXPECT_EQ(table_.find({2, 0xA000, 64}), nullptr);

  // Reverse: base, interior, and out-of-range.
  EXPECT_EQ(table_.find_by_local(reinterpret_cast<void*>(0x500000)), found);
  EXPECT_EQ(table_.find_by_local(reinterpret_cast<void*>(0x500017)), found);
  EXPECT_EQ(table_.find_by_local(reinterpret_cast<void*>(0x500018)), nullptr);
  EXPECT_EQ(table_.find_by_local(reinterpret_cast<void*>(0x4FFFFF)), nullptr);
}

TEST_F(AllocationTableTest, HomeIntervalLookupForInteriorPointers) {
  const auto a = entry(1, 0xA000, 64, 0, 0, 64, 0x500000);
  ASSERT_TRUE(table_.insert(a).is_ok());
  EXPECT_NE(table_.find_containing_home(1, 0xA000), nullptr);
  EXPECT_NE(table_.find_containing_home(1, 0xA03F), nullptr);
  EXPECT_EQ(table_.find_containing_home(1, 0xA040), nullptr);
  EXPECT_EQ(table_.find_containing_home(2, 0xA000), nullptr);
}

TEST_F(AllocationTableTest, RejectsOverlapsAndDuplicates) {
  ASSERT_TRUE(table_.insert(entry(1, 0xA000, 64, 0, 0, 24, 0x500000)).is_ok());
  // Same long pointer again.
  EXPECT_EQ(table_.insert(entry(1, 0xA000, 64, 1, 0, 24, 0x600000)).code(),
            StatusCode::kAlreadyExists);
  // Overlapping local range.
  EXPECT_EQ(table_.insert(entry(1, 0xC000, 64, 0, 8, 24, 0x500008)).code(),
            StatusCode::kAlreadyExists);
  // Overlapping home range (same space).
  EXPECT_EQ(table_.insert(entry(1, 0xA008, 64, 1, 0, 24, 0x600000)).code(),
            StatusCode::kAlreadyExists);
  // Same home address range in a different space is fine.
  EXPECT_TRUE(table_.insert(entry(2, 0xA008, 64, 1, 0, 24, 0x600000)).is_ok());
}

TEST_F(AllocationTableTest, RebindProvisionalIdentity) {
  const std::uint64_t provisional = (1ULL << 63) | 7;
  ASSERT_TRUE(table_.insert(entry(3, provisional, 64, 0, 0, 24, 0x500000)).is_ok());
  ASSERT_TRUE(table_.rebind({3, provisional, 64}, {3, 0xBEEF, 64}).is_ok());
  EXPECT_EQ(table_.find({3, provisional, 64}), nullptr);
  const AllocationEntry* found = table_.find({3, 0xBEEF, 64});
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->local, reinterpret_cast<std::uint8_t*>(0x500000));
  // Reverse map still works after rebinding.
  EXPECT_EQ(table_.find_by_local(reinterpret_cast<void*>(0x500010)), found);
}

TEST_F(AllocationTableTest, RemoveDropsAllIndexes) {
  ASSERT_TRUE(table_.insert(entry(1, 0xA000, 64, 5, 0, 24, 0x500000)).is_ok());
  ASSERT_TRUE(table_.remove({1, 0xA000, 64}).is_ok());
  EXPECT_EQ(table_.size(), 0u);
  EXPECT_EQ(table_.find({1, 0xA000, 64}), nullptr);
  EXPECT_EQ(table_.find_by_local(reinterpret_cast<void*>(0x500000)), nullptr);
  EXPECT_TRUE(table_.entries_on_page(5).empty());
  // The local range can be reused afterwards.
  EXPECT_TRUE(table_.insert(entry(2, 0xB000, 64, 5, 0, 24, 0x500000)).is_ok());
}

TEST_F(AllocationTableTest, MultiPageEntriesIndexEveryPage) {
  auto big = entry(1, 0xA000, 64, 2, 0, 24, 0x500000);
  big.size = 4096 * 3;
  ASSERT_TRUE(table_.insert(big, /*page_count=*/3).is_ok());
  EXPECT_EQ(table_.entries_on_page(2).size(), 1u);
  EXPECT_EQ(table_.entries_on_page(3).size(), 1u);
  EXPECT_EQ(table_.entries_on_page(4).size(), 1u);
  EXPECT_TRUE(table_.entries_on_page(5).empty());
}

TEST_F(AllocationTableTest, ClearEmptiesTable) {
  ASSERT_TRUE(table_.insert(entry(1, 0xA000, 64, 0, 0, 24, 0x500000)).is_ok());
  table_.clear();
  EXPECT_EQ(table_.size(), 0u);
  EXPECT_EQ(table_.find({1, 0xA000, 64}), nullptr);
}

}  // namespace
}  // namespace srpc
