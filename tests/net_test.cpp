// Network substrate: mailbox, cost model, simulated network, frames, and
// the real-socket hub.
#include <gtest/gtest.h>

#include <thread>

#include "net/cost_model.hpp"
#include "net/mailbox.hpp"
#include "net/sim_network.hpp"
#include "net/socket_transport.hpp"
#include "rpc/wire.hpp"
#include "xdr/xdr_encoder.hpp"

namespace srpc {
namespace {

Message make_message(MessageType type, SpaceId from, SpaceId to, std::uint64_t seq,
                     std::size_t payload_bytes = 0) {
  Message msg;
  msg.type = type;
  msg.from = from;
  msg.to = to;
  msg.session = 7;
  msg.seq = seq;
  msg.payload.append_zeros(payload_bytes);
  return msg;
}

TEST(Mailbox, FifoDelivery) {
  Mailbox box;
  ASSERT_TRUE(box.push(make_message(MessageType::kCall, 0, 1, 1)).is_ok());
  ASSERT_TRUE(box.push(make_message(MessageType::kFetch, 0, 1, 2)).is_ok());
  auto first = box.pop();
  ASSERT_TRUE(first.is_ok());
  EXPECT_EQ(std::get<Message>(first.value()).seq, 1u);
  auto second = box.pop();
  ASSERT_TRUE(second.is_ok());
  EXPECT_EQ(std::get<Message>(second.value()).seq, 2u);
}

TEST(Mailbox, TasksInterleaveWithMessages) {
  Mailbox box;
  int ran = 0;
  ASSERT_TRUE(box.push_task([&ran] { ++ran; }).is_ok());
  auto item = box.pop();
  ASSERT_TRUE(item.is_ok());
  std::get<Task>(item.value())();
  EXPECT_EQ(ran, 1);
}

TEST(Mailbox, CloseWakesBlockedPop) {
  Mailbox box;
  std::thread waiter([&box] {
    auto item = box.pop();
    EXPECT_FALSE(item.is_ok());
    EXPECT_EQ(item.status().code(), StatusCode::kUnavailable);
  });
  box.close();
  waiter.join();
  EXPECT_FALSE(box.push(make_message(MessageType::kCall, 0, 1, 1)).is_ok());
}

TEST(Mailbox, DrainsQueueBeforeReportingClosed) {
  Mailbox box;
  ASSERT_TRUE(box.push(make_message(MessageType::kCall, 0, 1, 9)).is_ok());
  box.close();
  auto item = box.pop();
  ASSERT_TRUE(item.is_ok());
  EXPECT_EQ(std::get<Message>(item.value()).seq, 9u);
  EXPECT_FALSE(box.pop().is_ok());
}

TEST(CostModel, MessageCostComposition) {
  CostModel cost{100, 10, 5, 0};
  // fixed + bytes * (wire + 2 * marshal) = 100 + 8 * 20.
  EXPECT_EQ(cost.message_cost(8), 100u + 8u * 20u);
  EXPECT_EQ(CostModel::zero().message_cost(1000), 0u);
}

TEST(SimNetwork, ChargesClockAndCountsMessages) {
  SimNetwork net(CostModel{1000, 1, 0, 500});
  Mailbox box;
  net.attach(1, &box);
  ASSERT_TRUE(net.send(make_message(MessageType::kCall, 0, 1, 1, 68)).is_ok());
  const std::uint64_t wire = kMessageHeaderWireSize + 68;
  // send() charges only the sender-side marshal cost (zero in this model);
  // transit + delivery ride on the message as its arrival timestamp, which
  // the receiver applies with advance_to when it picks the message up.
  EXPECT_EQ(net.clock().now(), 0u);
  auto item = box.try_pop();
  ASSERT_TRUE(item.has_value());
  const Message& delivered = std::get<Message>(*item);
  EXPECT_EQ(delivered.arrive_ns, 1000 + wire);
  net.clock().advance_to(delivered.arrive_ns);
  EXPECT_EQ(net.clock().now(), 1000 + wire);
  net.charge_fault();
  EXPECT_EQ(net.clock().now(), 1000 + wire + 500);

  auto stats = net.stats();
  EXPECT_EQ(stats.messages, 1u);
  EXPECT_EQ(stats.wire_bytes, wire);
  EXPECT_EQ(stats.count(MessageType::kCall), 1u);
  EXPECT_EQ(stats.count(MessageType::kFetch), 0u);
}

TEST(SimNetwork, SerializesConcurrentSendsOnTheLink) {
  SimNetwork net(CostModel{1000, 1, 0, 0});
  Mailbox box;
  net.attach(1, &box);
  ASSERT_TRUE(net.send(make_message(MessageType::kCall, 0, 1, 1, 68)).is_ok());
  ASSERT_TRUE(net.send(make_message(MessageType::kCall, 0, 1, 2, 68)).is_ok());
  const std::uint64_t wire = kMessageHeaderWireSize + 68;
  auto first = box.try_pop();
  auto second = box.try_pop();
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  // Two back-to-back frames share one link: the second departs only once
  // the first has cleared the wire, so their arrivals are staggered by the
  // wire time even though both were issued at virtual time zero.
  EXPECT_EQ(std::get<Message>(*first).arrive_ns, wire + 1000);
  EXPECT_EQ(std::get<Message>(*second).arrive_ns, 2 * wire + 1000);
}

TEST(SimNetwork, RejectsUnknownDestination) {
  SimNetwork net;
  auto s = net.send(make_message(MessageType::kCall, 0, 9, 1));
  ASSERT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

TEST(WireFrames, RoundTripThroughBuffer) {
  Message in = make_message(MessageType::kFetchReply, 3, 4, 99);
  xdr::Encoder enc(in.payload);
  enc.put_string("payload-data");
  ByteBuffer wire;
  encode_frame(in, wire);
  EXPECT_EQ(wire.size(), kFrameHeaderSize + in.payload.size());

  auto out = decode_frame(wire);
  ASSERT_TRUE(out.is_ok()) << out.status().to_string();
  EXPECT_EQ(out.value().type, MessageType::kFetchReply);
  EXPECT_EQ(out.value().from, 3u);
  EXPECT_EQ(out.value().to, 4u);
  EXPECT_EQ(out.value().session, 7u);
  EXPECT_EQ(out.value().seq, 99u);
  EXPECT_EQ(out.value().payload.size(), in.payload.size());
}

TEST(WireFrames, RejectsBadMagicAndType) {
  ByteBuffer wire;
  xdr::Encoder enc(wire);
  enc.put_u32(0x12345678);
  auto bad_magic = decode_frame(wire);
  ASSERT_FALSE(bad_magic.is_ok());

  ByteBuffer wire2;
  Message msg = make_message(MessageType::kCall, 0, 1, 1);
  encode_frame(msg, wire2);
  wire2.data()[7] = 0xEE;  // corrupt the type word
  auto bad_type = decode_frame(wire2);
  ASSERT_FALSE(bad_type.is_ok());
  EXPECT_EQ(bad_type.status().code(), StatusCode::kProtocolError);
}

TEST(SocketHub, DeliversFramesBetweenSpaces) {
  SocketHub hub;
  Mailbox box_a;
  Mailbox box_b;
  ASSERT_TRUE(hub.attach(0, &box_a).is_ok());
  ASSERT_TRUE(hub.attach(1, &box_b).is_ok());
  ASSERT_TRUE(hub.start().is_ok());

  Message msg = make_message(MessageType::kCall, 0, 1, 5);
  xdr::Encoder enc(msg.payload);
  enc.put_u32(0xCAFEBABE);
  ASSERT_TRUE(hub.send(std::move(msg)).is_ok());

  auto item = box_b.pop();
  ASSERT_TRUE(item.is_ok());
  const Message& got = std::get<Message>(item.value());
  EXPECT_EQ(got.type, MessageType::kCall);
  EXPECT_EQ(got.seq, 5u);
  EXPECT_EQ(got.payload.size(), 4u);

  // And the reverse direction.
  ASSERT_TRUE(hub.send(make_message(MessageType::kReturn, 1, 0, 5)).is_ok());
  auto reply = box_a.pop();
  ASSERT_TRUE(reply.is_ok());
  EXPECT_EQ(std::get<Message>(reply.value()).type, MessageType::kReturn);

  hub.stop();
}

TEST(SocketHub, RejectsUnknownSpaces) {
  SocketHub hub;
  Mailbox box;
  ASSERT_TRUE(hub.attach(0, &box).is_ok());
  ASSERT_TRUE(hub.start().is_ok());
  EXPECT_FALSE(hub.send(make_message(MessageType::kCall, 0, 7, 1)).is_ok());
  EXPECT_FALSE(hub.send(make_message(MessageType::kCall, 7, 0, 1)).is_ok());
  hub.stop();
}

TEST(VirtualClock, AdvanceSemantics) {
  VirtualClock clock;
  clock.advance(100);
  clock.advance_to(50);  // no going backwards
  EXPECT_EQ(clock.now(), 100u);
  clock.advance_to(250);
  EXPECT_EQ(clock.now(), 250u);
  EXPECT_DOUBLE_EQ(VirtualClock::to_seconds(1'500'000'000ULL), 1.5);
}

}  // namespace
}  // namespace srpc
