// Runtime edge cases: failure surfaces, resource exhaustion, large data,
// pass-through pointers, and re-entrancy corners.
#include <gtest/gtest.h>

#include "core/smart_rpc.hpp"
#include "workload/list.hpp"

namespace srpc {
namespace {

using workload::ListNode;

WorldOptions fast_world() {
  WorldOptions options;
  options.cost = CostModel::zero();
  return options;
}

class RuntimeEdgeTest : public ::testing::Test {
 protected:
  RuntimeEdgeTest() : world_(fast_world()) {
    a_ = &world_.create_space("A");
    b_ = &world_.create_space("B");
    workload::register_list_type(world_).status().check();
  }

  World world_;
  AddressSpace* a_ = nullptr;
  AddressSpace* b_ = nullptr;
};

TEST_F(RuntimeEdgeTest, CallToUnknownSpaceFails) {
  a_->run([&](Runtime& rt) {
    Session session(rt);
    auto bad = session.call<std::int64_t>(SpaceId{99}, "x", std::int64_t{1});
    ASSERT_FALSE(bad.is_ok());
    EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
    ASSERT_TRUE(session.end().is_ok());
  });
}

TEST_F(RuntimeEdgeTest, LargeArrayTransfersEndToEnd) {
  b_->bind("sum_array",
           [](CallContext&, std::int64_t* data, std::uint32_t n) -> std::int64_t {
             std::int64_t sum = 0;
             for (std::uint32_t i = 0; i < n; ++i) sum += data[i];  // spans pages
             return sum;
           })
      .check();
  world_.host_types().bind<std::int64_t>(TypeRegistry::scalar_id(ScalarType::kI64))
      .check();
  a_->run([&](Runtime& rt) {
    constexpr std::uint32_t kN = 5000;  // 40 KB: ten pages
    auto mem = rt.heap().allocate(TypeRegistry::scalar_id(ScalarType::kI64), kN);
    mem.status().check();
    auto* data = static_cast<std::int64_t*>(mem.value());
    std::int64_t expected = 0;
    for (std::uint32_t i = 0; i < kN; ++i) {
      data[i] = static_cast<std::int64_t>(i) * 7 - 3;
      expected += data[i];
    }
    Session session(rt);
    auto sum = session.call<std::int64_t>(b_->id(), "sum_array", data, kN);
    ASSERT_TRUE(sum.is_ok()) << sum.status().to_string();
    EXPECT_EQ(sum.value(), expected);
    ASSERT_TRUE(session.end().is_ok());
  });
}

TEST_F(RuntimeEdgeTest, RemoteArrayAllocationRoundTrip) {
  world_.host_types().bind<std::int32_t>(TypeRegistry::scalar_id(ScalarType::kI32))
      .check();
  b_->bind("sum_i32",
           [](CallContext&, std::int32_t* data, std::uint32_t n) -> std::int64_t {
             std::int64_t sum = 0;
             for (std::uint32_t i = 0; i < n; ++i) sum += data[i];
             return sum;
           })
      .check();
  a_->run([&](Runtime& rt) {
    Session session(rt);
    // Allocate an i32[100] in B's heap, fill it locally, let B sum it.
    auto mem = rt.extended_malloc(b_->id(), TypeRegistry::scalar_id(ScalarType::kI32),
                                  100);
    ASSERT_TRUE(mem.is_ok()) << mem.status().to_string();
    auto* data = static_cast<std::int32_t*>(mem.value());
    for (int i = 0; i < 100; ++i) data[i] = i;
    auto sum = session.call<std::int64_t>(b_->id(), "sum_i32", data,
                                          std::uint32_t{100});
    ASSERT_TRUE(sum.is_ok()) << sum.status().to_string();
    EXPECT_EQ(sum.value(), 99 * 100 / 2);
    ASSERT_TRUE(session.end().is_ok());
  });
}

TEST_F(RuntimeEdgeTest, InteriorArrayPointerAsArgument) {
  world_.host_types().bind<std::int64_t>(TypeRegistry::scalar_id(ScalarType::kI64))
      .check();
  b_->bind("read_three",
           [](CallContext&, std::int64_t* p) -> std::int64_t {
             return p[0] + p[1] + p[2];
           })
      .check();
  a_->run([&](Runtime& rt) {
    auto mem = rt.heap().allocate(TypeRegistry::scalar_id(ScalarType::kI64), 10);
    mem.status().check();
    auto* data = static_cast<std::int64_t*>(mem.value());
    for (int i = 0; i < 10; ++i) data[i] = i * 100;
    Session session(rt);
    // Pass &data[4]: an interior pointer into the array.
    auto sum = session.call<std::int64_t>(b_->id(), "read_three", data + 4);
    ASSERT_TRUE(sum.is_ok()) << sum.status().to_string();
    EXPECT_EQ(sum.value(), 400 + 500 + 600);
    ASSERT_TRUE(session.end().is_ok());
  });
}

TEST_F(RuntimeEdgeTest, TasksPostedMidCallRunAfterwards) {
  b_->bind("slowish",
           [](CallContext&, std::int64_t x) -> std::int64_t { return x; })
      .check();
  std::atomic<bool> task_ran{false};
  a_->run([&](Runtime& rt) {
    Session session(rt);
    // Post a task to our own mailbox; it must be deferred until the call
    // completes, not executed on the re-entrant await stack.
    rt.mailbox().push_task([&task_ran] { task_ran.store(true); }).check();
    auto v = session.call<std::int64_t>(b_->id(), "slowish", std::int64_t{1});
    ASSERT_TRUE(v.is_ok());
    EXPECT_FALSE(task_ran.load());  // still deferred
    ASSERT_TRUE(session.end().is_ok());
  });
  // The worker drains deferred items once idle.
  a_->run([&](Runtime&) { EXPECT_TRUE(task_ran.load()); });
}

TEST_F(RuntimeEdgeTest, CacheArenaExhaustionSurfacesAsCallError) {
  WorldOptions tiny = fast_world();
  tiny.cache.page_count = 2;       // almost no cache
  tiny.cache.closure_bytes = 8192; // eager budget = the whole arena
  World small(tiny);
  auto& x = small.create_space("X");
  auto& y = small.create_space("Y");
  workload::register_list_type(small).status().check();
  y.bind("sum",
         [](CallContext&, ListNode* head) -> std::int64_t {
           return workload::sum_list(head);
         })
      .check();
  x.run([&](Runtime& rt) {
    auto head = workload::build_list(rt, 4000, [](std::uint32_t) {
      return std::int64_t{1};
    });
    head.status().check();
    Session session(rt);
    auto sum = session.call<std::int64_t>(y.id(), "sum", head.value());
    ASSERT_FALSE(sum.is_ok());
    EXPECT_EQ(sum.status().code(), StatusCode::kResourceExhausted);
    ASSERT_TRUE(session.end().is_ok());
  });
}

TEST_F(RuntimeEdgeTest, ProceduresCanReturnFreshRemoteObjects) {
  // Handler extended_mallocs into the CALLER's space and returns the
  // pointer: the caller receives a pointer to its own (new) home data.
  const SpaceId a_id = a_->id();
  b_->bind("make_in_caller",
           [a_id](CallContext& ctx, std::int64_t v) -> ListNode* {
             auto type = ctx.runtime.host_types().find<ListNode>();
             type.status().check();
             auto mem = ctx.runtime.extended_malloc(a_id, type.value());
             mem.status().check();
             auto* node = static_cast<ListNode*>(mem.value());
             node->value = v;
             return node;
           })
      .check();
  a_->run([&](Runtime& rt) {
    Session session(rt);
    auto node = session.call<ListNode*>(b_->id(), "make_in_caller", std::int64_t{64});
    ASSERT_TRUE(node.is_ok()) << node.status().to_string();
    ASSERT_NE(node.value(), nullptr);
    // It's home data here: readable without faults, owned by our heap.
    EXPECT_TRUE(rt.heap().contains(node.value()));
    EXPECT_EQ(node.value()->value, 64);
    ASSERT_TRUE(session.end().is_ok());
  });
}

TEST_F(RuntimeEdgeTest, ExtendedFreeRejectsGarbage) {
  a_->run([&](Runtime& rt) {
    EXPECT_FALSE(rt.extended_free(nullptr).is_ok());
    int local = 0;
    EXPECT_FALSE(rt.extended_free(&local).is_ok());
  });
}

TEST_F(RuntimeEdgeTest, ExplicitPrefetchAvoidsTheFault) {
  b_->bind("give",
           [](CallContext& ctx, std::int32_t n) -> ListNode* {
             auto head = workload::build_list(
                 ctx.runtime, static_cast<std::uint32_t>(n),
                 [](std::uint32_t i) { return static_cast<std::int64_t>(i); });
             head.status().check();
             return head.value();
           })
      .check();
  // Disable eager transfer everywhere so the prefetch is the only thing
  // that can move the data ahead of access.
  b_->run([](Runtime& rt) { rt.cache().set_closure_bytes(0).check(); });
  a_->run([&](Runtime& rt) {
    rt.cache().set_closure_bytes(0).check();
    Session session(rt);
    auto head = session.call<ListNode*>(b_->id(), "give", 32);
    ASSERT_TRUE(head.is_ok());

    // Programmer suggestion (paper §6): fetch the list now.
    ASSERT_TRUE(session.prefetch(head.value(), 1 << 16).is_ok());
    const std::uint64_t faults_before = rt.cache().stats().read_faults;
    EXPECT_EQ(workload::sum_list(head.value()), 31 * 32 / 2);
    // The traversal hit only prefetched pages: no access violations.
    EXPECT_EQ(rt.cache().stats().read_faults, faults_before);

    // Prefetch of home data and of resident data are clean no-ops.
    ASSERT_TRUE(session.prefetch(head.value(), 64).is_ok());
    ASSERT_TRUE(session.end().is_ok());
  });
}

TEST_F(RuntimeEdgeTest, StatsCountServedWork) {
  b_->bind("noop", [](CallContext&, std::int64_t x) -> std::int64_t { return x; })
      .check();
  a_->run([&](Runtime& rt) {
    Session session(rt);
    for (int i = 0; i < 3; ++i) {
      session.call<std::int64_t>(b_->id(), "noop", std::int64_t{i}).status().check();
    }
    ASSERT_TRUE(session.end().is_ok());
    EXPECT_EQ(rt.stats().calls_sent, 3u);
  });
  b_->run([](Runtime& rt) { EXPECT_EQ(rt.stats().calls_served, 3u); });
}

}  // namespace
}  // namespace srpc
