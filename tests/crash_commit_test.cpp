// Crash-safe session commit: the two-phase write-back must leave every
// surviving home byte-identical — all committed or all rolled back — for
// every injected crash point (lost PREPARE, lost PREPARE_ACK, lost COMMIT,
// lost COMMIT_ACK, duplicated deliveries, partitions before and between
// the phases), in both delta and full-image shipping modes. Dead spaces
// are contained: calls and cached-page dereferences fail fast with a
// typed SPACE_DEAD error, leases expire, and orphaned extended_malloc
// storage is reclaimed with matching accounting.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>

#include "core/smart_rpc.hpp"
#include "net/fault_transport.hpp"
#include "workload/list.hpp"

namespace srpc {
namespace {

using workload::ListNode;
using Clock = std::chrono::steady_clock;

constexpr auto kBound = std::chrono::seconds(5);

constexpr std::int64_t kOldB = 10 + 11 + 12;
constexpr std::int64_t kOldC = 20 + 21 + 22;
constexpr std::int64_t kNewB = 1000 + 11 + 12;
constexpr std::int64_t kNewC = 2000 + 21 + 22;

// Parameter: ship modified sets as byte-range deltas (true) or full graph
// images (false). The atomicity guarantee must hold for both encodings.
class CrashCommitTest : public ::testing::TestWithParam<bool> {
 protected:
  CrashCommitTest() {
    WorldOptions options;
    options.cost = CostModel::zero();
    options.cache.closure_bytes = 0;
    options.fault_injection = true;
    options.timeouts = TimeoutConfig::aggressive();
    options.modified_deltas = GetParam();
    world_ = std::make_unique<World>(options);
    a_ = &world_->create_space("A");
    b_ = &world_->create_space("B");
    c_ = &world_->create_space("C");
    workload::register_list_type(*world_).status().check();
    b_->bind("headB", [this](CallContext&) -> ListNode* { return head_b_; })
        .check();
    b_->bind("sumB",
             [this](CallContext&) -> std::int64_t {
               return workload::sum_list(head_b_);
             })
        .check();
    c_->bind("headC", [this](CallContext&) -> ListNode* { return head_c_; })
        .check();
    c_->bind("sumC",
             [this](CallContext&) -> std::int64_t {
               return workload::sum_list(head_c_);
             })
        .check();
    b_->run([this](Runtime& rt) {
      auto head = workload::build_list(rt, 3, [](std::uint32_t i) {
        return static_cast<std::int64_t>(10 + i);
      });
      head.status().check();
      head_b_ = head.value();
    });
    c_->run([this](Runtime& rt) {
      auto head = workload::build_list(rt, 3, [](std::uint32_t i) {
        return static_cast<std::int64_t>(20 + i);
      });
      head.status().check();
      head_c_ = head.value();
    });
    fault_ = world_->fault();
  }

  ~CrashCommitTest() override {
    if (fault_ != nullptr) fault_->disarm();
  }

  void drop_all(MessageType kind) {
    FaultOptions opts;
    opts.drop = 1.0;
    fault_->target({kind});
    fault_->arm(opts);
  }

  // Opens a session on A, caches both heads, and dirties one datum per
  // home — the canonical two-home modified set for the commit matrix.
  void dirty_both_homes(Runtime& rt) {
    ASSERT_TRUE(rt.begin_session().is_ok());
    auto hb = typed_call<ListNode*>(rt, 1, "headB");
    ASSERT_TRUE(hb.is_ok()) << hb.status().to_string();
    ASSERT_TRUE(rt.prefetch(hb.value(), 1 << 16).is_ok());
    auto hc = typed_call<ListNode*>(rt, 2, "headC");
    ASSERT_TRUE(hc.is_ok()) << hc.status().to_string();
    ASSERT_TRUE(rt.prefetch(hc.value(), 1 << 16).is_ok());
    hb.value()->value = 1000;
    hc.value()->value = 2000;
  }

  // Reads both homes through a fresh session on a healed wire and asserts
  // they are consistent: both committed or both still the original — a
  // mixed outcome is the atomicity violation this suite exists to catch.
  void expect_homes(std::int64_t expect_b, std::int64_t expect_c) {
    a_->run([&](Runtime& rt) {
      Session session(rt);
      auto sb = typed_call<std::int64_t>(rt, 1, "sumB");
      ASSERT_TRUE(sb.is_ok()) << sb.status().to_string();
      auto sc = typed_call<std::int64_t>(rt, 2, "sumC");
      ASSERT_TRUE(sc.is_ok()) << sc.status().to_string();
      EXPECT_EQ(sb.value(), expect_b);
      EXPECT_EQ(sc.value(), expect_c);
      const bool b_committed = sb.value() == kNewB;
      const bool c_committed = sc.value() == kNewC;
      EXPECT_EQ(b_committed, c_committed)
          << "half-committed session: B=" << sb.value() << " C=" << sc.value();
      ASSERT_TRUE(session.end().is_ok());
    });
  }

  std::unique_ptr<World> world_;
  AddressSpace* a_ = nullptr;
  AddressSpace* b_ = nullptr;
  AddressSpace* c_ = nullptr;
  FaultTransport* fault_ = nullptr;
  ListNode* head_b_ = nullptr;
  ListNode* head_c_ = nullptr;
  ListNode* remembered_ = nullptr;  // cached pointer carried across run()s
};

TEST_P(CrashCommitTest, HealthyWireCommitsBothHomes) {
  a_->run([&](Runtime& rt) {
    dirty_both_homes(rt);
    ASSERT_TRUE(rt.end_session().is_ok());
    EXPECT_EQ(rt.stats().wb_prepares, 2u);
    EXPECT_EQ(rt.stats().wb_commits, 2u);
    EXPECT_EQ(rt.stats().wb_aborts, 0u);
  });
  expect_homes(kNewB, kNewC);
}

TEST_P(CrashCommitTest, LostPrepareRollsBackEveryHome) {
  a_->run([&](Runtime& rt) {
    dirty_both_homes(rt);
    drop_all(MessageType::kWbPrepare);
    const auto start = Clock::now();
    auto ended = rt.end_session();
    ASSERT_FALSE(ended.is_ok());
    EXPECT_LT(Clock::now() - start, kBound);
    fault_->disarm();
    ASSERT_TRUE(rt.abort_session().is_ok());
  });
  expect_homes(kOldB, kOldC);
}

TEST_P(CrashCommitTest, LostPrepareAckDiscardsStagedBytes) {
  a_->run([&](Runtime& rt) {
    dirty_both_homes(rt);
    // The PREPARE lands and is staged at the home, only the ack is eaten:
    // nothing may be applied, and the abort must discard the stage.
    drop_all(MessageType::kWbPrepareAck);
    auto ended = rt.end_session();
    ASSERT_FALSE(ended.is_ok());
    fault_->disarm();
    ASSERT_TRUE(rt.abort_session().is_ok());
  });
  b_->run([](Runtime& rt) { EXPECT_GE(rt.stats().wb_prepares_served, 1u); });
  expect_homes(kOldB, kOldC);
}

TEST_P(CrashCommitTest, SecondHomePrepareFailureAbortsFirst) {
  a_->run([&](Runtime& rt) {
    dirty_both_homes(rt);
    // B prepares fine; C is unreachable. Phase one fails and the prepared
    // B stage must be rolled back with an explicit WB_ABORT.
    fault_->partition(2);
    auto ended = rt.end_session();
    ASSERT_FALSE(ended.is_ok());
    EXPECT_GE(rt.stats().wb_aborts, 1u);
    // Abort while C is still cut off: local unwind completes, the
    // unreachable peer is reported.
    EXPECT_FALSE(rt.abort_session().is_ok());
    fault_->heal_all();
  });
  b_->run([](Runtime& rt) { EXPECT_GE(rt.stats().wb_aborts_served, 1u); });
  expect_homes(kOldB, kOldC);
}

TEST_P(CrashCommitTest, LostCommitConvergesOnRetry) {
  a_->run([&](Runtime& rt) {
    dirty_both_homes(rt);
    drop_all(MessageType::kWbCommit);
    auto ended = rt.end_session();
    ASSERT_FALSE(ended.is_ok());
    // Both homes hold acknowledged stages; once the wire heals the retried
    // end re-drives the protocol to completion.
    fault_->disarm();
    ASSERT_TRUE(rt.end_session().is_ok());
  });
  expect_homes(kNewB, kNewC);
}

TEST_P(CrashCommitTest, HalfCommittedEpochRollsForward) {
  a_->run([&](Runtime& rt) {
    // Sequential commit order: the drop budget below eats exactly B's ack
    // attempts before C's commit is even issued. Under the parallel
    // fan-out both commits share the wire and the drops spread across
    // them (that in-doubt shape is pipeline_fault_test's
    // PartitionDuringParallelPrepareRollsForward).
    rt.set_parallel_commit(false);
    dirty_both_homes(rt);
    // B's COMMIT applies but every ack is eaten (3 = max_attempts), so the
    // coordinator stops with B committed and C still staged — the exact
    // in-doubt crash point. The resolution is roll-forward: retrying
    // end_session() re-prepares and commits idempotently on both.
    fault_->drop_next(MessageType::kWbCommitAck, 3);
    auto ended = rt.end_session();
    ASSERT_FALSE(ended.is_ok());
    ASSERT_TRUE(rt.end_session().is_ok());
  });
  expect_homes(kNewB, kNewC);
}

TEST_P(CrashCommitTest, DuplicatedPrepareAndCommitAreIdempotent) {
  a_->run([&](Runtime& rt) {
    dirty_both_homes(rt);
    FaultOptions opts;
    opts.seed = 0xC0FFEEULL;
    opts.duplicate = 1.0;
    fault_->target({MessageType::kWbPrepare, MessageType::kWbCommit});
    fault_->arm(opts);
    ASSERT_TRUE(rt.end_session().is_ok());
    fault_->disarm();
  });
  // Every prepare and commit was delivered twice; the duplicates re-stage
  // and re-ack without double-applying.
  b_->run([](Runtime& rt) { EXPECT_GE(rt.stats().wb_prepares_served, 2u); });
  expect_homes(kNewB, kNewC);
}

TEST_P(CrashCommitTest, PartitionBeforePrepareLeavesHomesUntouched) {
  a_->run([&](Runtime& rt) {
    dirty_both_homes(rt);
    fault_->partition(1);
    const auto start = Clock::now();
    auto ended = rt.end_session();
    ASSERT_FALSE(ended.is_ok());
    EXPECT_LT(Clock::now() - start, kBound);
    EXPECT_FALSE(rt.abort_session().is_ok());  // B unreachable, reported
    fault_->heal_all();
  });
  expect_homes(kOldB, kOldC);
}

TEST_P(CrashCommitTest, LegacyToggleKeepsOneShotWriteBack) {
  a_->run([&](Runtime& rt) {
    rt.set_two_phase_writeback(false);
    dirty_both_homes(rt);
    ASSERT_TRUE(rt.end_session().is_ok());
    EXPECT_EQ(rt.stats().wb_prepares, 0u);
    EXPECT_EQ(rt.stats().wb_commits, 0u);
    rt.set_two_phase_writeback(true);
  });
  expect_homes(kNewB, kNewC);
}

TEST_P(CrashCommitTest, DeadSpaceFailsFastAndRevokesCachedPages) {
  a_->run([&](Runtime& rt) {
    ASSERT_TRUE(rt.begin_session().is_ok());
    auto hb = typed_call<ListNode*>(rt, 1, "headB");
    ASSERT_TRUE(hb.is_ok()) << hb.status().to_string();
    ASSERT_TRUE(rt.prefetch(hb.value(), 1 << 16).is_ok());
    EXPECT_EQ(workload::sum_list(hb.value()), kOldB);
    remembered_ = hb.value();
  });
  // B's process is gone: the transport cut is permanent and every space is
  // told. A's worker revokes B's cached pages and reclaims before the next
  // closure runs.
  world_->crash_space(1);
  a_->run([&](Runtime& rt) {
    EXPECT_EQ(rt.stats().peers_died, 1u);
    EXPECT_GE(rt.stats().leases_expired, 1u);

    // A new call into the dead space fails fast with the typed error —
    // no deadline burn, no probe.
    const auto call_start = Clock::now();
    auto sum = typed_call<std::int64_t>(rt, 1, "sumB");
    ASSERT_FALSE(sum.is_ok());
    EXPECT_EQ(sum.status().code(), StatusCode::kSpaceDead)
        << sum.status().to_string();
    EXPECT_LT(Clock::now() - call_start, kBound);

    // The cached page was revoked, so re-touching it re-faults into the
    // fetch path, which converts the peer's health into the same typed
    // error instead of serving stale bytes.
    const auto fetch_start = Clock::now();
    auto refetch = rt.prefetch(remembered_, 0);
    ASSERT_FALSE(refetch.is_ok());
    EXPECT_EQ(refetch.code(), StatusCode::kSpaceDead) << refetch.to_string();
    EXPECT_LT(Clock::now() - fetch_start, kBound);
    EXPECT_GE(rt.stats().failfast_rejections, 2u);

    // Abort skips the dead peer and still unwinds: C acks its invalidate.
    ASSERT_TRUE(rt.abort_session().is_ok());
  });
}

TEST_P(CrashCommitTest, OwnerCrashReclaimsOrphanedRemoteHeap) {
  // C plays the ground: it extended_mallocs storage on home B and then
  // dies with the session still open.
  c_->run([](Runtime& rt) {
    ASSERT_TRUE(rt.begin_session().is_ok());
    auto type = rt.host_types().find<ListNode>();
    ASSERT_TRUE(type.is_ok());
    auto mem = rt.extended_malloc(1, type.value(), 4);
    ASSERT_TRUE(mem.is_ok()) << mem.status().to_string();
    ASSERT_TRUE(rt.flush_pending_memory_ops().is_ok());
  });
  const std::uint64_t owned =
      b_->run([](Runtime& rt) { return rt.heap().owned_bytes(2); });
  ASSERT_GT(owned, 0u);

  world_->crash_space(2);
  b_->run([owned](Runtime& rt) {
    EXPECT_EQ(rt.heap().owned_bytes(2), 0u);
    EXPECT_EQ(rt.stats().orphan_bytes_reclaimed, owned);
    EXPECT_EQ(rt.stats().peers_died, 1u);
  });
}

TEST_P(CrashCommitTest, AbortedSessionReclaimsItsAllocations) {
  a_->run([](Runtime& rt) {
    ASSERT_TRUE(rt.begin_session().is_ok());
    auto type = rt.host_types().find<ListNode>();
    ASSERT_TRUE(type.is_ok());
    auto mem = rt.extended_malloc(1, type.value(), 2);
    ASSERT_TRUE(mem.is_ok()) << mem.status().to_string();
    ASSERT_TRUE(rt.flush_pending_memory_ops().is_ok());
    ASSERT_TRUE(rt.abort_session().is_ok());
  });
  // The abort's INVALIDATE carried aborted=1: B reclaimed the storage the
  // session had created there and accounted for it.
  b_->run([](Runtime& rt) {
    EXPECT_EQ(rt.heap().owned_bytes(0), 0u);
    EXPECT_GT(rt.stats().orphan_bytes_reclaimed, 0u);
  });
}

TEST_P(CrashCommitTest, CommittedSessionPromotesItsAllocations) {
  a_->run([](Runtime& rt) {
    ASSERT_TRUE(rt.begin_session().is_ok());
    auto type = rt.host_types().find<ListNode>();
    ASSERT_TRUE(type.is_ok());
    auto mem = rt.extended_malloc(1, type.value(), 2);
    ASSERT_TRUE(mem.is_ok()) << mem.status().to_string();
    ASSERT_TRUE(rt.flush_pending_memory_ops().is_ok());
    ASSERT_TRUE(rt.end_session().is_ok());
  });
  // A committed end promotes the storage to durable home data — owner tags
  // cleared, nothing reclaimed.
  b_->run([](Runtime& rt) {
    EXPECT_EQ(rt.heap().owned_bytes(0), 0u);
    EXPECT_EQ(rt.stats().orphan_bytes_reclaimed, 0u);
    EXPECT_GT(rt.heap().live_bytes(), 0u);
  });
}

TEST_P(CrashCommitTest, LapsedLeaseRevokesAndRecovers) {
  ASSERT_NE(world_->sim(), nullptr);
  a_->run([&](Runtime& rt) {
    rt.set_lease_ttl_ns(1'000'000);  // 1 ms of virtual time
    ASSERT_TRUE(rt.begin_session().is_ok());
    auto hb = typed_call<ListNode*>(rt, 1, "headB");
    ASSERT_TRUE(hb.is_ok()) << hb.status().to_string();
    ASSERT_TRUE(rt.prefetch(hb.value(), 1 << 16).is_ok());
    EXPECT_EQ(workload::sum_list(hb.value()), kOldB);

    // A long silence from B: the lease lapses and the next safe point
    // (an unrelated call to C) revokes its cached pages.
    world_->sim()->clock().advance(1'000'000'000);
    auto sc = typed_call<std::int64_t>(rt, 2, "sumC");
    ASSERT_TRUE(sc.is_ok()) << sc.status().to_string();
    EXPECT_GE(rt.stats().leases_expired, 1u);
    EXPECT_EQ(rt.detector().health(1), PeerHealth::kSuspect);

    // B is merely silent, not dead: re-touching the data re-fetches it,
    // which renews the lease and clears the suspicion.
    ASSERT_TRUE(rt.prefetch(hb.value(), 1 << 16).is_ok());
    EXPECT_EQ(workload::sum_list(hb.value()), kOldB);
    EXPECT_EQ(rt.detector().health(1), PeerHealth::kAlive);
    ASSERT_TRUE(rt.end_session().is_ok());
    rt.set_lease_ttl_ns(0);
  });
}

INSTANTIATE_TEST_SUITE_P(ShipModes, CrashCommitTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Delta" : "FullImage";
                         });

}  // namespace
}  // namespace srpc
